// Package squery is a from-scratch Go implementation of S-QUERY
// (Verheijde, Karakoidas, Fragkoulis, Katsifodimos: "S-QUERY: Opening the
// Black Box of Internal Stream Processor State", ICDE 2022): a distributed
// stream processor whose internal operator state — both the live state and
// the snapshot state captured by periodic coordinated checkpoints — is
// exposed to external applications as queryable key-value tables, through
// a SQL interface with joins and aggregates and through a direct object
// interface, with well-defined isolation levels.
//
// The Engine is the entry point: it owns a (simulated) cluster, runs
// stream processing jobs, and answers queries over their state.
//
//	eng := squery.New(squery.Config{Nodes: 3})
//	job, _ := eng.SubmitJob(dag, squery.JobSpec{
//		State:            squery.StateConfig{Live: true, Snapshots: true},
//		SnapshotInterval: time.Second,
//	})
//	res, _ := eng.Query(`SELECT COUNT(*), zone FROM snapshot_orders GROUP BY zone`)
//
// Every substrate — the dataflow runtime (the role Hazelcast Jet plays in
// the paper), the partitioned in-memory KV store (the role of Hazelcast
// IMDG), the SQL engine, the checkpoint/2PC machinery — is implemented in
// this module; see DESIGN.md for the system inventory and the mapping
// from the paper's experiments to the benchmark harness.
package squery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/persist"
	"squery/internal/sql"
	"squery/internal/trace"
	"squery/internal/transport"
)

// Re-exported building blocks. These are aliases, not copies: the public
// API and the internal implementation are the same types.
type (
	// Record is one data item flowing through a job.
	Record = dataflow.Record
	// DAG is a job graph.
	DAG = dataflow.DAG
	// Vertex is a DAG node.
	Vertex = dataflow.Vertex
	// Edge connects two vertices.
	Edge = dataflow.Edge
	// ProcContext is passed to processor factories.
	ProcContext = dataflow.ProcContext
	// Processor handles records of one operator instance.
	Processor = dataflow.Processor
	// Emit sends a record downstream.
	Emit = dataflow.Emit
	// SourceInstance is one parallel source instance.
	SourceInstance = dataflow.SourceInstance
	// SourceStatus is the result of a source poll.
	SourceStatus = dataflow.SourceStatus
	// StateConfig selects the state representations S-QUERY maintains.
	StateConfig = core.Config
	// PersistPolicy tunes the full-vs-delta decision of persisted
	// checkpoint commits (see core.PersistPolicy).
	PersistPolicy = core.PersistPolicy
	// StateBackend is the keyed state store of one operator instance.
	StateBackend = core.Backend
	// Result is a materialized SQL result set.
	Result = sql.Result
	// Key is a state/partitioning key.
	Key = partition.Key
	// KVEntry is one key-value pair returned by raw store scans.
	KVEntry = kv.Entry
	// Row exposes named columns of a state object.
	Row = kv.Row
	// WatermarkPolicy configures event-time watermark emission on a
	// source vertex.
	WatermarkPolicy = dataflow.WatermarkPolicy
	// WindowResult is the output of a closed event-time window.
	WindowResult = dataflow.WindowResult
	// WindowState is the queryable per-key state of a windowing operator.
	WindowState = dataflow.WindowState
	// FaultHook intercepts KV partition access checks for fault injection
	// (implemented by *chaos.Injector; see internal/chaos).
	FaultHook = kv.FaultHook
	// ChaosHook intercepts checkpoint control-plane messages for fault
	// injection (implemented by *chaos.Injector).
	ChaosHook = dataflow.ChaosHook
	// IndexKind selects a secondary index structure (IndexHash for
	// equality probes, IndexBTree for ranges).
	IndexKind = core.IndexKind
	// IndexInfo describes one secondary index: footprint and
	// maintenance/lookup accounting (the programmatic twin of
	// sys.indexes).
	IndexInfo = kv.IndexInfo
)

// Secondary index kinds.
const (
	// IndexHash serves equality probes in O(1).
	IndexHash = core.IndexHash
	// IndexBTree serves equality and inclusive-range probes in O(log n).
	IndexBTree = core.IndexBTree
)

// Vertex and edge constructors re-exported from the dataflow runtime.
var (
	// NewDAG returns an empty job graph.
	NewDAG = dataflow.NewDAG
	// MapVertex builds a stateless map/filter operator.
	MapVertex = dataflow.MapVertex
	// StatefulMapVertex builds a keyed stateful operator whose state is
	// live- and snapshot-queryable under the vertex name.
	StatefulMapVertex = dataflow.StatefulMapVertex
	// SinkVertex builds a sink from a per-record function.
	SinkVertex = dataflow.SinkVertex
	// LatencySinkVertex builds a sink recording source→sink latency.
	LatencySinkVertex = dataflow.LatencySinkVertex
	// SliceSource builds a finite replayable source from a record slice.
	SliceSource = dataflow.SliceSource
	// GeneratorSource builds a deterministic (optionally rate-limited)
	// generated source.
	GeneratorSource = dataflow.GeneratorSource
	// TumblingWindowVertex builds a keyed event-time tumbling-window
	// operator whose open windows are live- and snapshot-queryable.
	TumblingWindowVertex = dataflow.TumblingWindowVertex
	// SlidingWindowVertex builds overlapping event-time windows (size /
	// hop), tumbling when hop == size.
	SlidingWindowVertex = dataflow.SlidingWindowVertex
)

// Edge kinds.
const (
	// EdgePartitioned routes records by key hash (co-located with state).
	EdgePartitioned = dataflow.EdgePartitioned
	// EdgeForward connects equal-parallelism vertices one-to-one.
	EdgeForward = dataflow.EdgeForward
	// EdgeRoundRobin spreads records without keying.
	EdgeRoundRobin = dataflow.EdgeRoundRobin
)

// Vertex kinds.
const (
	// KindSource marks a source vertex.
	KindSource = dataflow.KindSource
	// KindOperator marks an inner operator vertex.
	KindOperator = dataflow.KindOperator
	// KindSink marks a sink vertex.
	KindSink = dataflow.KindSink
)

// Source poll statuses.
const (
	// SourceOK means a record was produced.
	SourceOK = dataflow.SourceOK
	// SourceIdle means nothing is available right now.
	SourceIdle = dataflow.SourceIdle
	// SourceDone means end of stream.
	SourceDone = dataflow.SourceDone
)

// Config describes the cluster an Engine manages.
type Config struct {
	// Nodes is the cluster size (default 3, like the paper's overhead
	// experiments; the snapshot experiments use 7).
	Nodes int
	// Partitions is the number of state partitions (default 271).
	Partitions int
	// NetworkLatency is the simulated one-way inter-node message cost;
	// 0 keeps the network free but still counts messages.
	NetworkLatency time.Duration
	// NetworkJitter adds up to this much random extra latency.
	NetworkJitter time.Duration
	// ReplicateState keeps a synchronous backup copy of every state
	// partition, so a node failure promotes replicas instead of losing
	// state (§V.A).
	ReplicateState bool
	// Transport, when non-nil, overrides the wire inter-node messages
	// cross (e.g. transport.NewLoopback() for real loopback-TCP frames).
	// Nil builds the in-process simulated transport from NetworkLatency
	// and NetworkJitter. The engine owns the transport either way; Close
	// tears it down.
	Transport transport.Transport
	// DisableMetrics runs the engine without a metrics registry: every
	// instrument resolves to a nil no-op, the sys.* system tables are not
	// registered, and MetricsDump reports metrics disabled. This is the
	// baseline of the instrumentation-overhead experiment in
	// EXPERIMENTS.md.
	DisableMetrics bool
	// DisableTracing runs the engine without a span tracer: no record,
	// checkpoint or query spans are recorded, the sys.spans/sys.traces
	// system tables are not registered, and /tracez serves an empty list.
	// This is the baseline of the tracing-overhead experiment.
	DisableTracing bool
	// TraceSampleEvery is the head-sampling rate for record traces: one
	// source record in every TraceSampleEvery starts a trace that is
	// carried through every hop to the sink (default 256). Checkpoint and
	// query traces are always sampled. 1 traces every record.
	TraceSampleEvery int
	// TraceCapacity bounds the number of completed spans retained in the
	// tracer's ring buffer (default 4096); older spans are overwritten.
	TraceCapacity int
	// HistoryInterval is the period of metric-history snapshots feeding
	// sys.history and the /statusz sparklines (default 1s).
	HistoryInterval time.Duration
	// HistoryWindow is how much history the snapshot ring retains
	// (default 60s; the ring holds HistoryWindow/HistoryInterval
	// snapshots, capped at 512).
	HistoryWindow time.Duration
	// DisableHistory turns periodic metric-history retention off;
	// sys.history then stays empty unless Metrics().Capture is called by
	// hand. The baseline of the health-plane overhead experiment.
	DisableHistory bool
	// SlowQueryThreshold is the wall time at or above which a query is
	// also recorded in sys.slow_queries (default 100ms; negative disables
	// the slow log).
	SlowQueryThreshold time.Duration
	// QueryLogCapacity caps the sys.queries event ring (default 256).
	QueryLogCapacity int
	// SlowQueryLogCapacity caps the sys.slow_queries ring (default 64).
	SlowQueryLogCapacity int
}

// Engine owns a cluster, its state store, and the query subsystem, and
// runs stream processing jobs whose state becomes queryable.
type Engine struct {
	clu    *cluster.Cluster
	cat    *core.Catalog
	ex     *sql.Executor
	reg    *metrics.Registry // nil when Config.DisableMetrics
	tracer *trace.Tracer     // nil when Config.DisableTracing
	lim    sql.MetricsLimits // resolved query-log/slow-query config
	arr    *core.ArrangeRegistry

	mu   sync.Mutex
	jobs map[string]*Job

	// Standing-query registry (see subscribe.go).
	subMu  sync.Mutex
	subs   map[int64]*Subscription
	subSeq int64
	subIns subInstruments
}

// subInstruments aggregates subscription accounting under the ("sub",
// "reg") metric family; every field is a nil-safe no-op without metrics.
type subInstruments struct {
	active    atomic.Int64 // live subscriptions (squery_sub_active)
	delivered *metrics.Counter
	shed      *metrics.Counter
	resyncs   *metrics.Counter
	failfast  *metrics.Counter
}

// New creates an engine over a fresh simulated cluster.
func New(cfg Config) *Engine {
	clu := cluster.New(cluster.Config{
		Nodes:          cfg.Nodes,
		Partitions:     cfg.Partitions,
		NetworkLatency: cfg.NetworkLatency,
		NetworkJitter:  cfg.NetworkJitter,
		ReplicateState: cfg.ReplicateState,
		Transport:      cfg.Transport,
	})
	var reg *metrics.Registry
	if !cfg.DisableMetrics {
		reg = metrics.NewRegistry()
		if !cfg.DisableHistory {
			interval := cfg.HistoryInterval
			if interval <= 0 {
				interval = time.Second
			}
			window := cfg.HistoryWindow
			if window <= 0 {
				window = time.Minute
			}
			reg.Retain(interval, window)
		}
	}
	var tracer *trace.Tracer
	if !cfg.DisableTracing {
		tracer = trace.New(trace.Config{
			Capacity:    cfg.TraceCapacity,
			SampleEvery: cfg.TraceSampleEvery,
		})
	}
	clu.Store().SetMetrics(reg)
	cat := core.NewCatalog(clu.Store())
	e := &Engine{
		clu:    clu,
		cat:    cat,
		ex:     sql.NewExecutor(cat, clu.Nodes()),
		reg:    reg,
		tracer: tracer,
		jobs:   make(map[string]*Job),
		subs:   make(map[int64]*Subscription),
	}
	e.arr = core.NewArrangeRegistry(clu.Store())
	e.ex.SetArrangements(e.arr)
	e.subIns.delivered = reg.Counter("sub", "reg", "delivered")
	e.subIns.shed = reg.Counter("sub", "reg", "shed")
	e.subIns.resyncs = reg.Counter("sub", "reg", "resyncs")
	e.subIns.failfast = reg.Counter("sub", "reg", "failfast")
	reg.GaugeFunc("sub", "reg", "active", e.subIns.active.Load)
	e.lim = sql.MetricsLimits{
		QueryLogCapacity:     cfg.QueryLogCapacity,
		SlowQueryLogCapacity: cfg.SlowQueryLogCapacity,
		SlowQueryThreshold:   cfg.SlowQueryThreshold,
	}.WithDefaults()
	e.ex.SetMetricsLimits(reg, e.lim)
	e.ex.SetTracer(tracer)
	clu.SetInstruments(reg, tracer)
	e.registerSystemTables()
	return e
}

// Nodes returns the cluster size, including joined and failed/left
// members (node ids are dense and never reused).
func (e *Engine) Nodes() int { return e.clu.Nodes() }

// FailNode simulates the loss of a cluster member: its partitions' data
// is dropped (or recovered from backups when Config.ReplicateState is
// on) and ownership moves to the backup nodes. Jobs keep running; to
// also crash and recover a job, call Job.InjectFailure. Failing the last
// live node is refused with an error.
func (e *Engine) FailNode(node int) error { return e.clu.Fail(node) }

// JoinNode adds a new member to the cluster and rebalances partitions
// onto it online, one migration at a time, while jobs keep running —
// fenced state writes racing a migration are transparently retried
// against the new owner. It returns the new node's id. Watch the
// rebalance through the sys.membership and sys.rebalances tables.
func (e *Engine) JoinNode() (int, error) {
	node, err := e.clu.Join()
	e.ex.SetClusterNodes(e.clu.Nodes())
	return node, err
}

// LeaveNode retires a member gracefully: its partitions are drained to
// the remaining live nodes online, then the node leaves. Unlike FailNode
// no data is ever at risk — the handoff completes before ownership flips.
func (e *Engine) LeaveNode(node int) error { return e.clu.Leave(node) }

// Members returns the membership view: every node ever provisioned with
// its state-machine state and current partition counts — the programmatic
// twin of the sys.membership table.
func (e *Engine) Members() []cluster.Member { return e.clu.Members() }

// Rebalances returns the rebalance history, oldest first, including one
// still in flight — the programmatic twin of sys.rebalances.
func (e *Engine) Rebalances() []cluster.Rebalance { return e.clu.Rebalances() }

// TableEpoch returns the partition table's current global epoch: 0 at
// birth, bumped by every failover promotion, migration flip, and join.
func (e *Engine) TableEpoch() int64 { return e.clu.Epoch() }

// Messages returns the number of inter-node messages sent so far.
func (e *Engine) Messages() uint64 { return e.clu.Messages() }

// Transport returns the wire the engine's cluster sends through.
func (e *Engine) Transport() transport.Transport { return e.clu.Transport() }

// Close stops the metric-history retention ticker and releases the
// engine's transport: the listener and connections of a networked
// transport, a no-op for the simulated one. Jobs should be stopped first.
func (e *Engine) Close() error {
	e.reg.StopRetain()
	return e.clu.Close()
}

// SetFaultHook installs a fault-injection hook on the cluster's KV access
// checks — stalled and unreachable partitions for guarded queries (see
// QueryWithOptions). Nil clears it. Faults only affect fallible query
// paths, never the data plane.
func (e *Engine) SetFaultHook(h FaultHook) { e.clu.SetFaultHook(h) }

// SetMigrationHook installs a migration fault-injection hook on the
// cluster's rebalancer (see internal/chaos): killed sources and targets
// mid-handoff, dropped epoch-bump broadcasts, stalled migrations. Nil
// clears it.
func (e *Engine) SetMigrationHook(h cluster.MigrationHook) { e.clu.SetMigrationHook(h) }

// CreateIndex builds a secondary index on one column of a state table and
// keeps it maintained inline on every subsequent state update, partition
// migration and failover. The planner then serves equality (IndexHash or
// IndexBTree) and range (IndexBTree) predicates on that column from the
// index instead of full partition scans — EXPLAIN shows the chosen access
// path, ExecOpts.DisableIndexes restores the full-scan baseline. Table
// names follow the query surface: <operator> indexes live state,
// snapshot_<operator> indexes committed snapshots (one index serves every
// queryable snapshot id). Creating the same index twice is idempotent;
// indexing a virtual sys.* table or a pseudo-column is an error.
func (e *Engine) CreateIndex(table, column string, kind IndexKind) error {
	return e.cat.CreateIndex(table, column, kind)
}

// IndexInfos returns accounting for every secondary index, sorted by
// table then column — the programmatic twin of sys.indexes.
func (e *Engine) IndexInfos() []IndexInfo { return e.clu.Store().IndexInfos() }

// FenceStats returns the cumulative epoch-fencing counters of the state
// store: writes rejected for carrying a stale partition-table epoch,
// retries that followed, and writes forced through after exhausting
// retries (the liveness backstop; a healthy run keeps it at zero).
func (e *Engine) FenceStats() kv.FenceStats { return e.clu.Store().FenceStats() }

// JobSpec configures a submitted job.
type JobSpec struct {
	// Name identifies the job; defaults to "job".
	Name string
	// State is the default state configuration for stateful vertices.
	State StateConfig
	// SnapshotInterval is the checkpoint period (0 = manual checkpoints
	// via Job.CheckpointNow).
	SnapshotInterval time.Duration
	// Retention is the number of committed snapshot versions kept
	// (default 2, the paper's constant-memory configuration).
	Retention int
	// ChannelCapacity bounds operator input queues.
	ChannelCapacity int
	// PersistDir, when set, writes every committed snapshot durably to
	// that directory; Engine.OpenArchive can later query it without the
	// job (stable-storage checkpoints, §IV). Commits are incremental:
	// each writes a delta segment holding only the changes since the
	// last durable snapshot, compacting per Persist policy.
	PersistDir string
	// Persist tunes the full-vs-delta decision of persisted commits
	// (zero value selects the defaults). Only meaningful with PersistDir.
	Persist PersistPolicy
	// SyncPhase1 restores the synchronous checkpoint prepare (state
	// serialized inside the barrier stall) instead of the asynchronous
	// pin-and-drain default. The A/B baseline for -exp ckpt-scale.
	SyncPhase1 bool
	// CheckpointTimeout bounds phase 1 of every checkpoint; a checkpoint
	// whose acks do not arrive in time aborts and retries with backoff
	// instead of hanging. 0 disables the deadline.
	CheckpointTimeout time.Duration
	// CheckpointRetries is how many times an aborted checkpoint is
	// retried (default 3).
	CheckpointRetries int
	// CheckpointBackoff is the base retry delay, doubling per attempt
	// (default 10ms).
	CheckpointBackoff time.Duration
	// Chaos, when set, injects deterministic faults into the checkpoint
	// control plane (see internal/chaos).
	Chaos ChaosHook
}

// SubmitJob starts a job and registers its stateful operators' live and
// snapshot tables with the query catalog. Operator names must be unique
// across all running jobs — they are the SQL table names.
func (e *Engine) SubmitJob(dag *DAG, spec JobSpec) (*Job, error) {
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:              spec.Name,
		Cluster:           e.clu,
		State:             spec.State,
		SnapshotInterval:  spec.SnapshotInterval,
		Retention:         spec.Retention,
		ChannelCapacity:   spec.ChannelCapacity,
		PersistDir:        spec.PersistDir,
		Persist:           spec.Persist,
		SyncPhase1:        spec.SyncPhase1,
		CheckpointTimeout: spec.CheckpointTimeout,
		CheckpointRetries: spec.CheckpointRetries,
		CheckpointBackoff: spec.CheckpointBackoff,
		Chaos:             spec.Chaos,
		Metrics:           e.reg,
		Tracer:            e.tracer,
	})
	if err != nil {
		return nil, err
	}
	ops := job.StatefulOperators()
	if err := e.cat.RegisterJob(job.Manager().Registry(), ops...); err != nil {
		job.Stop()
		return nil, err
	}
	j := &Job{inner: job, engine: e, operators: ops, autoCkpt: spec.SnapshotInterval > 0}
	e.mu.Lock()
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("job-%d", len(e.jobs)+1)
	}
	e.jobs[name] = j
	e.mu.Unlock()
	return j, nil
}

// cancelJob removes a job's tables from the catalog.
func (e *Engine) cancelJob(j *Job) {
	e.cat.UnregisterJob(j.operators...)
}

// OpenArchive imports the latest snapshot persisted in dir (written by a
// job with JobSpec.PersistDir) and registers its operators' snapshot
// tables with the query catalog, so historical state can be queried
// without the job running — the audit/compliance use case of §III. It
// returns the imported snapshot id and the operator names.
func (e *Engine) OpenArchive(dir string) (int64, []string, error) {
	p, err := persist.Open(dir)
	if err != nil {
		return 0, nil, err
	}
	mgr := core.NewManager(e.clu.Store(), 0)
	ssid, err := mgr.ImportPersisted(p)
	if err != nil {
		return 0, nil, err
	}
	if ssid == 0 {
		return 0, nil, fmt.Errorf("squery: no committed snapshot in archive %s", dir)
	}
	ops, err := p.Operators(ssid)
	if err != nil {
		return 0, nil, err
	}
	if err := e.cat.RegisterJob(mgr.Registry(), ops...); err != nil {
		return 0, nil, err
	}
	return ssid, ops, nil
}
