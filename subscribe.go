package squery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/core"
	sqlpkg "squery/internal/sql"
)

// Standing queries. Engine.Subscribe turns a SELECT into a continuously
// maintained result: the subscriber first receives a snapshot frame with
// the full current result, then ordered delta frames as operator state
// changes. Subscriptions over the same table share one arrangement (a
// refcounted maintained view fed by the store's change-stream tap), so N
// subscriptions cost one tap and one mirror, not N scans — the
// steady-state economics the -exp subscribe experiment measures against
// polling.

// Re-exported standing-query types.
type (
	// SubEvent is one ordered delivery to a subscriber: a snapshot frame
	// (initial result or post-shed resync) or a delta frame.
	SubEvent = sqlpkg.SubEvent
	// SubDelta is one output-row upsert or delete within a SubEvent.
	SubDelta = sqlpkg.SubDelta
	// ArrangementInfo describes one shared arrangement (refcount, rows,
	// delta/reset accounting) — the programmatic twin of sys.arrangements.
	ArrangementInfo = core.ArrangementInfo
)

// SubOptions tunes one subscription.
type SubOptions struct {
	// Queue is the bounded event-queue capacity between the standing
	// query and the consumer (default 64, minimum 1).
	Queue int
	// Policy selects the overload behavior when the queue is full because
	// the consumer is slow (the shed-on-overload vocabulary of guarded
	// queries, reused): PolicyNone — the default — sheds the queued
	// frames and replaces them with one fresh snapshot frame the consumer
	// re-converges from; PolicyFailFast terminates the subscription
	// instead. Other policies are rejected.
	Policy QueryPolicy
}

// SubStats is a point-in-time account of one subscription — the
// programmatic twin of one sys.subscriptions row.
type SubStats struct {
	ID        int64
	Query     string
	Tables    []string
	Policy    QueryPolicy
	QueueCap  int
	Queued    int    // frames waiting in the queue right now
	Delivered uint64 // frames enqueued to the consumer
	Shed      uint64 // frames dropped by overload shedding
	Resyncs   uint64 // snapshot frames issued after shedding
	Watermark uint64 // source deltas folded into the standing result
	Age       time.Duration
	Done      bool
}

// Subscription is one standing query's consumer handle. Receive from
// Events; Done closes when the subscription ends (Close, a FailFast
// overflow, or a standing-query error — Err tells which).
type Subscription struct {
	id     int64
	query  string
	eng    *Engine
	sq     *sqlpkg.StandingQuery
	ch     chan SubEvent
	done   chan struct{}
	policy QueryPolicy
	born   time.Time

	closing   sync.Once
	delivered atomic.Uint64
	shed      atomic.Uint64
	resyncs   atomic.Uint64
	failed    atomic.Pointer[error]
	ended     atomic.Bool
}

// Subscribe starts a standing query with default options. The query may
// carry the SUBSCRIBE prefix or be a bare SELECT.
func (e *Engine) Subscribe(query string) (*Subscription, error) {
	return e.SubscribeWithOptions(query, SubOptions{})
}

// SubscribeWithOptions starts a standing query. The first event on
// Events is always a snapshot frame holding the full current result; it
// is already enqueued when SubscribeWithOptions returns.
func (e *Engine) SubscribeWithOptions(query string, o SubOptions) (*Subscription, error) {
	if o.Queue <= 0 {
		o.Queue = 64
	}
	if o.Policy != PolicyNone && o.Policy != PolicyFailFast {
		return nil, fmt.Errorf("squery: subscription policy must be PolicyNone (shed+resync) or PolicyFailFast, got %v", o.Policy)
	}
	s := &Subscription{
		query:  query,
		eng:    e,
		ch:     make(chan SubEvent, o.Queue),
		done:   make(chan struct{}),
		policy: o.Policy,
		born:   time.Now(),
	}
	sq, err := e.ex.SubscribeQuery(query, s.deliver)
	if err != nil {
		return nil, err
	}
	s.sq = sq
	e.subMu.Lock()
	e.subSeq++
	s.id = e.subSeq
	e.subs[s.id] = s
	e.subMu.Unlock()
	e.subIns.active.Add(1)
	return s, nil
}

// Events is the subscription's ordered event stream. It is closed after
// the subscription ends and the queue drains.
func (s *Subscription) Events() <-chan SubEvent { return s.ch }

// Done closes when the subscription has ended for any reason.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Err returns the terminal error: nil after a plain Close, the overflow
// or evaluation error otherwise.
func (s *Subscription) Err() error {
	if p := s.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// ID returns the engine-unique subscription id (the sys.subscriptions key).
func (s *Subscription) ID() int64 { return s.id }

// Columns returns the output column names, aligned with SubDelta.Vals.
func (s *Subscription) Columns() []string { return s.sq.Columns() }

// Query returns the statement the subscription runs.
func (s *Subscription) Query() string { return s.query }

// Stats returns the subscription's current accounting.
func (s *Subscription) Stats() SubStats {
	return SubStats{
		ID:        s.id,
		Query:     s.query,
		Tables:    s.sq.Tables(),
		Policy:    s.policy,
		QueueCap:  cap(s.ch),
		Queued:    len(s.ch),
		Delivered: s.delivered.Load(),
		Shed:      s.shed.Load(),
		Resyncs:   s.resyncs.Load(),
		Watermark: s.sq.Watermark(),
		Age:       time.Since(s.born),
		Done:      s.ended.Load(),
	}
}

// Close ends the subscription: the standing query detaches from its
// arrangements (dropping them at zero readers), Events is closed after
// the already-queued frames, and Done closes. Idempotent.
func (s *Subscription) Close() { s.close(nil) }

func (s *Subscription) close(err error) {
	s.closing.Do(func() {
		if err != nil {
			s.failed.Store(&err)
		}
		// Stopping the standing query first guarantees no deliver call is
		// in flight or coming, making close(s.ch) safe.
		s.sq.Close()
		s.ended.Store(true)
		s.eng.dropSub(s.id)
		close(s.ch)
		close(s.done)
	})
}

// deliver is the standing query's sink: enqueue without blocking — the
// caller is the standing query's applier, which must never stall on a
// slow consumer. On overflow the subscription's policy decides: shed the
// queue and enqueue one fresh snapshot frame (re-convergence), or fail
// fast and terminate.
func (s *Subscription) deliver(ev SubEvent) {
	ins := &s.eng.subIns
	if ev.Err != nil {
		// Terminal evaluation error: make room if needed, deliver it, end
		// the subscription. The async close is safe — it waits for this
		// very sink call to return before tearing the applier down.
		select {
		case s.ch <- ev:
		default:
			select {
			case <-s.ch:
				s.shed.Add(1)
				ins.shed.Inc()
			default:
			}
			s.ch <- ev
		}
		s.delivered.Add(1)
		ins.delivered.Inc()
		go s.close(ev.Err)
		return
	}
	select {
	case s.ch <- ev:
		s.delivered.Add(1)
		ins.delivered.Inc()
		return
	default:
	}
	if s.policy == PolicyFailFast {
		err := fmt.Errorf("squery: subscription %d overflowed its queue (cap %d) under PolicyFailFast", s.id, cap(s.ch))
		ins.failfast.Inc()
		go s.close(err)
		return
	}
	// Shed and resync: everything still queued (and the frame that did
	// not fit) is superseded by one snapshot of the standing result.
	dropped := uint64(1)
	for {
		select {
		case <-s.ch:
			dropped++
			continue
		default:
		}
		break
	}
	s.shed.Add(dropped)
	ins.shed.Add(int64(dropped))
	snap := s.sq.Snapshot()
	select {
	case s.ch <- snap:
		s.delivered.Add(1)
		ins.delivered.Inc()
		s.resyncs.Add(1)
		ins.resyncs.Inc()
	default:
		// A racing consumer refilling the queue is impossible (only this
		// goroutine sends), so the slot freed above is still free.
	}
}

// dropSub unregisters an ended subscription.
func (e *Engine) dropSub(id int64) {
	e.subMu.Lock()
	delete(e.subs, id)
	e.subMu.Unlock()
	e.subIns.active.Add(-1)
}

// Subscriptions returns the accounting of every live subscription,
// ordered by id — the programmatic twin of sys.subscriptions.
func (e *Engine) Subscriptions() []SubStats {
	e.subMu.Lock()
	ids := make([]int64, 0, len(e.subs))
	for id := range e.subs {
		ids = append(ids, id)
	}
	subs := make([]*Subscription, 0, len(ids))
	for _, s := range e.subs {
		subs = append(subs, s)
	}
	e.subMu.Unlock()
	out := make([]SubStats, len(subs))
	for i, s := range subs {
		out[i] = s.Stats()
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Arrangements returns the shared arrangements currently maintained,
// sorted by table — the programmatic twin of sys.arrangements.
func (e *Engine) Arrangements() []ArrangementInfo { return e.arr.Infos() }

// HTTPSubscribe adapts Subscribe to obshttp.Options.Subscribe, backing
// the /subscribe Server-Sent Events endpoint.
func (e *Engine) HTTPSubscribe(query string) ([]string, <-chan SubEvent, func(), error) {
	s, err := e.Subscribe(query)
	if err != nil {
		return nil, nil, nil, err
	}
	return s.Columns(), s.Events(), s.Close, nil
}
