package squery

import (
	"fmt"
	"sort"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/trace"
)

// Tracing applies the same thesis as metrics.go one level deeper: not just
// counters about the runtime, but causally linked spans through it. A
// sampled source record carries its trace context in-band through every
// hop to the sink; every checkpoint is one trace from barrier injection
// through per-worker alignment to the 2PC phases; every SQL query is one
// trace with a child span per plan stage. Completed spans land in a fixed
// lock-striped ring and surface two ways: the sys.spans / sys.traces
// virtual tables (joinable with sys.checkpoints on ssid) and the /tracez
// endpoint of the HTTP observability plane (internal/obshttp).

// Tracer returns the engine's span tracer, or nil when
// Config.DisableTracing was set. Callers (the chaos injector, the soak
// harness, obshttp) may record their own spans against it; the nil tracer
// is a valid no-op.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Health reports the engine's liveness: nil while every submitted job is
// running, an error naming the first stopped job otherwise. The /healthz
// endpoint serves 503 when this returns an error.
func (e *Engine) Health() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.jobs))
	for name := range e.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !e.jobs[name].Running() {
			return fmt.Errorf("job %q is not running", name)
		}
	}
	return nil
}

// Ready reports whether the engine is ready to serve queries: healthy,
// and every job with automatic checkpointing has committed at least one
// snapshot (before that, snapshot_* tables answer from an empty epoch).
// The /readyz endpoint serves 503 when this returns an error.
func (e *Engine) Ready() error {
	if err := e.Health(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.jobs))
	for name := range e.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		j := e.jobs[name]
		if j.autoCkpt && j.LatestSnapshotID() == 0 {
			return fmt.Errorf("job %q has no committed snapshot yet", name)
		}
	}
	return nil
}

// sysSpans is one row per completed span in the tracer's ring, oldest
// first. The span's ssid (checkpoint spans and query spans over pinned
// snapshot scans carry one) is mirrored into the row's SSID so
// `sys.spans ⋈ sys.checkpoints ON ssid` works like any state join.
func (e *Engine) sysSpans() []core.TableRow {
	spans := e.tracer.Spans()
	rows := make([]core.TableRow, 0, len(spans))
	for _, d := range spans {
		rows = append(rows, core.TableRow{Key: int64(d.SpanID), SSID: d.SSID, Value: kv.MapRow{
			"traceId":  int64(d.TraceID),
			"spanId":   int64(d.SpanID),
			"parentId": int64(d.ParentID),
			"name":     d.Name,
			"kind":     d.Kind,
			"vertex":   d.Vertex,
			"instance": d.Instance,
			"ssid":     d.SSID,
			"startUs":  d.Start.UnixMicro(),
			"durUs":    d.Dur.Microseconds(),
			"queueUs":  d.QueueWait.Microseconds(),
			"failed":   d.Failed,
			"note":     d.Note,
		}})
	}
	return rows
}

// sysTraces aggregates the ring into one row per trace: the root span's
// name and kind (falling back to the earliest retained span if the root
// was overwritten), span count, end-to-end duration, and whether any span
// failed. Rows are ordered by traceId.
func (e *Engine) sysTraces() []core.TableRow {
	type agg struct {
		root    *trace.SpanData
		first   trace.SpanData
		spans   int64
		startUs int64
		endUs   int64
		failed  bool
		ssid    int64
	}
	byTrace := map[uint64]*agg{}
	for _, d := range e.tracer.Spans() {
		a := byTrace[d.TraceID]
		start := d.Start.UnixMicro()
		end := d.Start.Add(d.Dur).UnixMicro()
		if a == nil {
			a = &agg{first: d, startUs: start, endUs: end}
			byTrace[d.TraceID] = a
		}
		a.spans++
		if start < a.startUs {
			a.startUs = start
			a.first = d
		}
		if end > a.endUs {
			a.endUs = end
		}
		if d.Failed {
			a.failed = true
		}
		if a.ssid == 0 {
			a.ssid = d.SSID
		}
		if d.ParentID == 0 {
			root := d
			a.root = &root
		}
	}
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rows := make([]core.TableRow, 0, len(ids))
	for _, id := range ids {
		a := byTrace[id]
		head := a.first
		if a.root != nil {
			head = *a.root
		}
		rows = append(rows, core.TableRow{Key: int64(id), SSID: a.ssid, Value: kv.MapRow{
			"traceId": int64(id),
			"name":    head.Name,
			"kind":    head.Kind,
			"spans":   a.spans,
			"ssid":    a.ssid,
			"startUs": a.startUs,
			"durUs":   a.endUs - a.startUs,
			"failed":  a.failed,
		}})
	}
	return rows
}
