package squery

import (
	"squery/internal/dataflow"
	"squery/internal/metrics"
)

// Job is a running stream processing job whose state is queryable through
// the engine that submitted it.
type Job struct {
	inner     *dataflow.Job
	engine    *Engine
	operators []string
	autoCkpt  bool // submitted with a SnapshotInterval
}

// Running reports whether the job is still processing (its sources have
// not drained and it has not been stopped). Engine.Health turns false
// here into an unhealthy /healthz.
func (j *Job) Running() bool { return j.inner.Running() }

// Operators returns the names of the job's stateful operators — its SQL
// table names (live) and, prefixed snapshot_, its snapshot tables.
func (j *Job) Operators() []string { return append([]string(nil), j.operators...) }

// Wait blocks until the job drains (finite sources) or stops.
func (j *Job) Wait() { j.inner.Wait() }

// Stop cancels the job. Its state tables are removed from the catalog;
// already-captured snapshots in the state store become unreachable.
func (j *Job) Stop() {
	j.inner.Stop()
	j.engine.cancelJob(j)
}

// CheckpointNow triggers one checkpoint synchronously; only valid when the
// job was submitted without a SnapshotInterval.
func (j *Job) CheckpointNow() error { return j.inner.CheckpointNow() }

// InjectFailure crashes and recovers the job from its latest committed
// snapshot (§IV): uncommitted state vanishes, sources rewind, processing
// resumes exactly-once. It returns the snapshot id recovered to (0 if no
// snapshot had committed).
func (j *Job) InjectFailure() (int64, error) { return j.inner.InjectFailure() }

// Reschedule gracefully restarts the job's workers over the cluster's
// current live topology via the recovery path (restore from the latest
// committed snapshot, rewind sources, replay). Jobs also reschedule
// themselves automatically when a node joins or leaves.
func (j *Job) Reschedule() (int64, error) { return j.inner.Reschedule() }

// Reschedules returns how many times the job has been rescheduled over a
// changed topology (membership-triggered or explicit), across its life.
func (j *Job) Reschedules() int64 { return j.inner.Reschedules() }

// CheckpointAborts returns how many checkpoints have been aborted so far
// (phase-1 deadline expiry, job kill, or injected crash) across the job's
// life, including restarts.
func (j *Job) CheckpointAborts() int64 { return j.inner.CheckpointAborts() }

// LatestSnapshotID returns the id of the latest committed snapshot — the
// id unpinned snapshot queries resolve to — or 0 before the first
// checkpoint commits.
func (j *Job) LatestSnapshotID() int64 {
	return j.inner.Manager().Registry().LatestCommitted()
}

// QueryableSnapshots returns the retained committed snapshot ids, oldest
// first (by default the two most recent, §VI.A).
func (j *Job) QueryableSnapshots() []int64 {
	return j.inner.Manager().Registry().Committed()
}

// SnapshotStillQueryable reports whether ssid is committed and retained —
// useful to distinguish "result from a pruned snapshot" from a genuine
// anomaly when pinning ids under concurrent checkpoints.
func (j *Job) SnapshotStillQueryable(ssid int64) bool {
	return j.inner.Manager().Registry().IsQueryable(ssid)
}

// SnapshotPhase1 returns the histogram of phase-1 (prepare) 2PC latencies.
func (j *Job) SnapshotPhase1() *metrics.Histogram { return j.inner.SnapshotPhase1() }

// SnapshotTotal returns the histogram of full 2PC commit latencies.
func (j *Job) SnapshotTotal() *metrics.Histogram { return j.inner.SnapshotTotal() }

// SourceRecords returns the number of records emitted by the job's
// sources so far.
func (j *Job) SourceRecords() uint64 { return j.inner.SourceMeter().Count() }

// SourceRate returns the sources' aggregate emit rate in records/second.
func (j *Job) SourceRate() float64 { return j.inner.SourceMeter().Rate() }
