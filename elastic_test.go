package squery

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"squery/internal/cluster"
	"squery/internal/dataflow"
)

// migHookFunc adapts a function to cluster.MigrationHook.
type migHookFunc func(reb int64, part, from, to int) cluster.MigrationFate

func (f migHookFunc) MigrationFate(reb int64, part, from, to int) cluster.MigrationFate {
	return f(reb, part, from, to)
}

// stallHook stalls every ownership migration by d, so a rebalance stays
// observable long enough for the test to query it mid-flight.
func stallHook(d time.Duration) migHookFunc {
	return func(int64, int, int, int) cluster.MigrationFate {
		return cluster.MigrationFate{Stall: d}
	}
}

// TestSysTablesObserveRunningRebalance is the observability acceptance
// check: while a join's migrations are in flight, sys.rebalances reports
// the running rebalance and sys.membership shows the joining node; after
// it completes, the same tables report the epoch jump, the per-node
// partition counts, and the per-move durations.
func TestSysTablesObserveRunningRebalance(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	defer eng.Close()
	eng.SetMigrationHook(stallHook(5 * time.Millisecond))

	epochBefore := eng.TableEpoch()
	joinDone := make(chan error, 1)
	var joined atomic.Int64
	go func() {
		n, err := eng.JoinNode()
		joined.Store(int64(n))
		joinDone <- err
	}()

	// Mid-flight: the running rebalance and the joining node are visible
	// through plain SQL.
	sawRunning, sawJoining := false, false
	waitFor(t, func() bool {
		if !sawRunning {
			res, err := eng.Query(`SELECT rebalance, kind FROM "sys.rebalances" WHERE running = true`)
			sawRunning = err == nil && len(res.Rows) > 0
		}
		if !sawJoining {
			res, err := eng.Query(`SELECT node FROM "sys.membership" WHERE state = 'joining'`)
			sawJoining = err == nil && len(res.Rows) > 0
		}
		return sawRunning && sawJoining
	}, "running rebalance and joining node in sys tables")

	if err := <-joinDone; err != nil {
		t.Fatal(err)
	}
	node := int(joined.Load())

	// Completed: the joiner is live with its fair share of partitions, on
	// every row the epoch advanced past the pre-join table.
	rows := mustQuery(t, eng, `SELECT live, partitions, epoch FROM "sys.membership" WHERE node = `+strconv.Itoa(node))
	if rows == "[]" {
		t.Fatal("joined node missing from sys.membership")
	}
	res, err := eng.Query(`SELECT partitions, epoch FROM "sys.membership" WHERE node = ` + strconv.Itoa(node))
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n != 27/4 {
		t.Fatalf("joiner owns %d partitions, want fair share %d", n, 27/4)
	}
	if ep := res.Rows[0][1].(int64); ep <= epochBefore {
		t.Fatalf("epoch %d did not advance past %d across the join", ep, epochBefore)
	}

	// The finished rebalance row carries the epoch span and move timings;
	// with a 5ms stall per ownership move, maxMoveUs must show it.
	res, err = eng.Query(`SELECT epochBefore, epochAfter, moves, maxMoveUs, durationUs FROM "sys.rebalances" WHERE running = false`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("finished rebalances = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if eb, ea := row[0].(int64), row[1].(int64); ea <= eb {
		t.Fatalf("rebalance epochs did not advance: %d -> %d", eb, ea)
	}
	if moves := row[2].(int64); moves == 0 {
		t.Fatal("rebalance recorded no moves")
	}
	if maxUs := row[3].(int64); maxUs < (5 * time.Millisecond).Microseconds() {
		t.Fatalf("maxMoveUs = %d, want >= the 5ms stall", maxUs)
	}
	if durUs := row[4].(int64); durUs <= 0 {
		t.Fatalf("durationUs = %d", durUs)
	}
}

// TestCheckpointOverlappingMigrationConsistentCut: a checkpoint taken
// while a join's migrations are mid-flight still commits a consistent
// cut — every key appears exactly once in the snapshot, with the same
// totals as the live state (no partition counted twice or zero times).
func TestCheckpointOverlappingMigrationConsistentCut(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	defer eng.Close()

	const records = 300
	recs := make([]Record, records)
	for i := range recs {
		recs[i] = Record{Key: i % 10, Value: i%7 + 1}
	}
	gate := make(chan struct{})
	src := &Vertex{
		Name:        "source",
		Kind:        KindSource,
		Parallelism: 1,
		NewSource: func(int, int) dataflow.SourceInstance {
			return &gatedParitySource{recs: recs, gate: gate}
		},
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("elasticavg", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "elasticavg", EdgePartitioned).
		Connect("elasticavg", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "elastic", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	waitFor(t, func() bool { return sunk.Load() >= records }, "records sunk")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	const totals = `SELECT COUNT(*), SUM(count), SUM(total) FROM `
	want := mustQuery(t, eng, totals+`elasticavg`)

	// Stall each ownership move so the checkpoint below genuinely
	// overlaps the rebalance instead of slipping in before or after it.
	eng.SetMigrationHook(stallHook(10 * time.Millisecond))
	joinDone := make(chan error, 1)
	go func() {
		_, err := eng.JoinNode()
		joinDone <- err
	}()
	waitFor(t, func() bool {
		for _, r := range eng.Rebalances() {
			if r.Running {
				return true
			}
		}
		return false
	}, "join's rebalance to start")

	if err := job.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint overlapping migration: %v", err)
	}
	if got := mustQuery(t, eng, totals+`snapshot_elasticavg`); got != want {
		t.Fatalf("snapshot cut inconsistent:\n got  %s\n want %s", got, want)
	}
	if err := <-joinDone; err != nil {
		t.Fatal(err)
	}
	if st := eng.FenceStats(); st.Forced != 0 {
		t.Fatalf("liveness backstop fired: %d forced writes", st.Forced)
	}
	// After the join (and the reschedule it triggers), the live totals
	// are still exact: migration plus recovery lost and duplicated
	// nothing.
	waitFor(t, func() bool { return job.Reschedules() >= 1 }, "post-join reschedule")
	waitFor(t, func() bool {
		return mustQuery(t, eng, totals+`elasticavg`) == want
	}, "live totals to re-converge after reschedule")
	close(gate)
	job.Wait()
	if got := mustQuery(t, eng, totals+`elasticavg`); got != want {
		t.Fatalf("live totals after elastic join:\n got  %s\n want %s", got, want)
	}
}

// TestJoinReschedulesInstancesOntoNewNode: after a join completes, the
// job restarts over the widened topology and sys.operators shows
// instances scheduled on the joined node.
func TestJoinReschedulesInstancesOntoNewNode(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	defer eng.Close()

	recs := make([]Record, 120)
	for i := range recs {
		recs[i] = Record{Key: i % 10, Value: 1}
	}
	gate := make(chan struct{})
	src := &Vertex{
		Name:        "source",
		Kind:        KindSource,
		Parallelism: 1,
		NewSource: func(int, int) dataflow.SourceInstance {
			return &gatedParitySource{recs: recs, gate: gate}
		},
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("reschedavg", 4, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "reschedavg", EdgePartitioned).
		Connect("reschedavg", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "resched", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	waitFor(t, func() bool { return sunk.Load() >= 120 }, "records sunk")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	node, err := eng.JoinNode()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.Reschedules() >= 1 }, "join to trigger a reschedule")
	waitFor(t, func() bool {
		res, err := eng.Query(`SELECT vertex FROM "sys.operators" WHERE node = ` + strconv.Itoa(node))
		return err == nil && len(res.Rows) > 0
	}, "instances to land on the joined node")
	close(gate)
	job.Wait()
}
