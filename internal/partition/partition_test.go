package partition

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestOfInRange(t *testing.T) {
	p := New(DefaultCount)
	f := func(key string) bool {
		part := p.Of(key)
		return part >= 0 && part < DefaultCount
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hashing is deterministic and type-consistent for the canonical
// integer types (an int key and its int64 widening land in the same
// partition — the compute layer uses int keys, serialized state int64).
func TestHashIntWideningConsistent(t *testing.T) {
	f := func(k int32) bool {
		return Hash(int(k)) == Hash(int64(k)) && Hash(int32(k)) == Hash(int64(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	f := func(s string) bool { return Hash(s) == Hash(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDistinguishesTypes(t *testing.T) {
	// A string "1" and the int 1 are different keys.
	if Hash("1") == Hash(1) {
		t.Error(`Hash("1") == Hash(1); string and int keys must not collide structurally`)
	}
}

func TestHashFloatAndBool(t *testing.T) {
	if Hash(1.5) == Hash(2.5) {
		t.Error("distinct floats hash equal")
	}
	if Hash(true) == Hash(false) {
		t.Error("booleans hash equal")
	}
	if Hash(math.Copysign(0, -1)) == Hash(1.0) {
		t.Error("-0.0 and 1.0 hash equal")
	}
}

func TestKeyString(t *testing.T) {
	cases := []struct {
		key  Key
		want string
	}{
		{"abc", "abc"},
		{42, "42"},
		{int32(-7), "-7"},
		{int64(1 << 40), "1099511627776"},
		{uint64(9), "9"},
		{3.5, "3.5"},
	}
	for _, c := range cases {
		if got := KeyString(c.key); got != c.want {
			t.Errorf("KeyString(%v) = %q, want %q", c.key, got, c.want)
		}
	}
}

// Distribution sanity: over many keys, no partition should be grossly
// over- or under-loaded.
func TestDistributionBalance(t *testing.T) {
	p := New(DefaultCount)
	counts := make([]int, DefaultCount)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.Of(i)]++
	}
	mean := float64(n) / DefaultCount
	for part, c := range counts {
		if float64(c) < mean*0.5 || float64(c) > mean*1.5 {
			t.Errorf("partition %d holds %d keys, mean %.0f — imbalance beyond 50%%", part, c, mean)
		}
	}
}

func TestAssignBalanced(t *testing.T) {
	a := Assign(DefaultCount, 7)
	perNode := make([]int, 7)
	for p := 0; p < a.Partitions(); p++ {
		perNode[a.Owner(p)]++
		if a.Backup(p) == a.Owner(p) {
			t.Errorf("partition %d: backup equals owner with 7 nodes", p)
		}
	}
	min, max := perNode[0], perNode[0]
	for _, c := range perNode {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("round-robin imbalance: min=%d max=%d", min, max)
	}
}

func TestAssignSingleNode(t *testing.T) {
	a := Assign(16, 1)
	for p := 0; p < 16; p++ {
		if a.Owner(p) != 0 || a.Backup(p) != 0 {
			t.Fatalf("single-node assignment wrong at partition %d", p)
		}
	}
}

func TestOwnedByCoversAllPartitions(t *testing.T) {
	a := Assign(DefaultCount, 5)
	seen := make(map[int]bool)
	for n := 0; n < 5; n++ {
		for _, p := range a.OwnedBy(n) {
			if seen[p] {
				t.Fatalf("partition %d owned by two nodes", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != DefaultCount {
		t.Fatalf("OwnedBy covers %d partitions, want %d", len(seen), DefaultCount)
	}
}

func TestPromoteMovesOwnershipOffFailedNode(t *testing.T) {
	a := Assign(DefaultCount, 3)
	a.Promote(1)
	for p := 0; p < a.Partitions(); p++ {
		if a.Owner(p) == 1 {
			t.Fatalf("partition %d still owned by failed node", p)
		}
		if a.Backup(p) == 1 {
			t.Fatalf("partition %d still backed up on failed node", p)
		}
		if a.Owner(p) == a.Backup(p) {
			t.Fatalf("partition %d owner == backup after promote", p)
		}
	}
}

// Property: promotion preserves the owner/backup disjointness invariant for
// any failed node in any cluster size ≥ 3.
func TestPromoteInvariant(t *testing.T) {
	f := func(nodesRaw, failedRaw uint8) bool {
		nodes := int(nodesRaw%5) + 3
		failed := int(failedRaw) % nodes
		a := Assign(DefaultCount, nodes)
		a.Promote(failed)
		for p := 0; p < a.Partitions(); p++ {
			if a.Owner(p) == failed || a.Owner(p) == a.Backup(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochStartsAtZeroAndBumpsOnApply(t *testing.T) {
	a := Assign(8, 2)
	if a.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", a.Epoch())
	}
	e := a.Apply([]Change{{Partition: 0, Owner: 1, Backup: 0}})
	if e != 1 || a.Epoch() != 1 {
		t.Fatalf("epoch after one Apply = %d/%d, want 1", e, a.Epoch())
	}
	if a.Owner(0) != 1 || a.Backup(0) != 0 {
		t.Fatalf("change not applied: owner=%d backup=%d", a.Owner(0), a.Backup(0))
	}
}

func TestApplyBumpsOnlyChangedPartitionEpochs(t *testing.T) {
	a := Assign(8, 2)
	before := make([]int64, 8)
	for p := range before {
		before[p] = a.PartitionEpoch(p)
	}
	moved := 3
	a.Apply([]Change{{Partition: moved, Owner: 1 - a.Owner(moved), Backup: a.Owner(moved)}})
	for p := 0; p < 8; p++ {
		got := a.PartitionEpoch(p)
		if p == moved && got == before[p] {
			t.Fatalf("moved partition %d epoch unchanged", p)
		}
		if p != moved && got != before[p] {
			t.Fatalf("untouched partition %d epoch bumped %d -> %d", p, before[p], got)
		}
	}
}

func TestApplyNoopChangeStillBumpsGlobalEpoch(t *testing.T) {
	a := Assign(8, 2)
	// Re-asserting the current seats changes nothing per-partition but
	// still versions the table (a rebalance that planned zero moves).
	pe := a.PartitionEpoch(0)
	a.Apply([]Change{{Partition: 0, Owner: a.Owner(0), Backup: a.Backup(0)}})
	if a.Epoch() != 1 {
		t.Fatalf("global epoch = %d, want 1", a.Epoch())
	}
	if a.PartitionEpoch(0) != pe {
		t.Fatal("unchanged seats bumped the partition epoch")
	}
}

func TestAddNodeGrowsAndBumps(t *testing.T) {
	a := Assign(8, 2)
	n := a.AddNode()
	if n != 2 || a.Nodes() != 3 {
		t.Fatalf("AddNode = %d (nodes %d), want 2 (nodes 3)", n, a.Nodes())
	}
	if a.Epoch() == 0 {
		t.Fatal("AddNode did not bump the epoch")
	}
	if len(a.OwnedBy(n)) != 0 {
		t.Fatal("new node owns partitions before any migration")
	}
}

func TestPromoteBumpsReseatedPartitionEpochs(t *testing.T) {
	a := Assign(27, 3)
	owned := a.OwnedBy(1)
	a.Promote(1)
	for _, p := range owned {
		if a.PartitionEpoch(p) == 0 {
			t.Fatalf("promoted partition %d kept epoch 0", p)
		}
	}
	if a.Epoch() == 0 {
		t.Fatal("promotion did not bump the global epoch")
	}
}

func TestTableSnapshotIsImmutable(t *testing.T) {
	a := Assign(8, 2)
	tab := a.Table()
	if !tab.Valid() {
		t.Fatal("snapshot of live table not valid")
	}
	owner0, epoch := tab.Owner(0), tab.Epoch()
	a.Apply([]Change{{Partition: 0, Owner: 1 - owner0, Backup: owner0}})
	if tab.Owner(0) != owner0 || tab.Epoch() != epoch {
		t.Fatal("table snapshot mutated by a later Apply")
	}
	if a.Table().Epoch() == epoch {
		t.Fatal("fresh snapshot does not see the new epoch")
	}
}
