// Package partition implements the hash-partitioning scheme shared by the
// KV store and the dataflow runtime. Sharing one partitioner is the
// co-location contract at the heart of S-QUERY (§II of the paper): because
// streams and state are split with the same function, the scheduler can
// place an operator instance on the node that owns its state partitions,
// and every live-state update or snapshot write stays local.
package partition

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultCount mirrors Hazelcast's default of 271 partitions: a prime,
// large enough to spread keys, small enough that per-partition overheads
// stay negligible.
const DefaultCount = 271

// Partitioner maps keys to a fixed number of partitions. The zero value is
// unusable; construct with New.
type Partitioner struct {
	count int
}

// New returns a partitioner over count partitions. It panics if count is
// not positive, as that is a programming error rather than runtime input.
func New(count int) Partitioner {
	if count <= 0 {
		panic(fmt.Sprintf("partition: count must be positive, got %d", count))
	}
	return Partitioner{count: count}
}

// Count returns the number of partitions.
func (p Partitioner) Count() int { return p.count }

// Of returns the partition that owns key, in [0, Count()).
func (p Partitioner) Of(key Key) int {
	return int(Hash(key) % uint64(p.count))
}

// Key is a partitioning key. Streaming operators key their state by values
// of these types; anything else must be converted by the caller (keeping
// the conversion explicit avoids silently inconsistent hashing between the
// compute and state layers).
type Key interface{}

// Hash returns a stable 64-bit FNV-1a hash of the key. Stability across
// processes matters: snapshots written by one run must hash identically
// when restored by another.
func Hash(key Key) uint64 {
	h := fnv.New64a()
	switch k := key.(type) {
	case string:
		h.Write([]byte(k))
	case int:
		writeInt(h, int64(k))
	case int32:
		writeInt(h, int64(k))
	case int64:
		writeInt(h, k)
	case uint64:
		writeInt(h, int64(k))
	case float64:
		writeInt(h, int64(math.Float64bits(k)))
	case bool:
		if k {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case fmt.Stringer:
		h.Write([]byte(k.String()))
	default:
		h.Write([]byte(fmt.Sprintf("%v", k)))
	}
	return h.Sum64()
}

func writeInt(h interface{ Write([]byte) (int, error) }, v int64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// KeyString renders a key in the canonical form used for map addressing
// and snapshot entry naming. Two keys with equal KeyString are the same
// key for state purposes.
func KeyString(key Key) string {
	switch k := key.(type) {
	case string:
		return k
	case int:
		return strconv.FormatInt(int64(k), 10)
	case int32:
		return strconv.FormatInt(int64(k), 10)
	case int64:
		return strconv.FormatInt(k, 10)
	case uint64:
		return strconv.FormatUint(k, 10)
	default:
		return fmt.Sprintf("%v", k)
	}
}

// Assignment maps every partition to an owner (and optional backup) node.
// It is shared by the KV store (data placement) and the job scheduler
// (compute placement) — and, since membership became elastic, it is a
// *live, versioned* object: every mutation (failover promotion, online
// migration, node join) swaps in a rewritten immutable table carrying a
// bumped global epoch plus per-partition epochs. Reads are lock-free (the
// table is on the hot path of every state operation); writers serialize on
// wmu and publish with one atomic store, so concurrent readers see either
// the old or the new table, never a torn mix. The epochs are the fencing
// tokens of the migration protocol: a KV op stamped with a stale partition
// epoch is rejected by the store (see kv.FencedView).
type Assignment struct {
	state atomic.Pointer[assignTable]
	wmu   sync.Mutex // serializes Apply/AddNode/Promote
}

// assignTable is an immutable owner/backup/epoch snapshot.
type assignTable struct {
	owners  []int
	backups []int
	nodes   int
	epoch   int64   // bumped once per table mutation
	pepochs []int64 // bumped per partition whose seat changed
}

// Assign distributes partitions round-robin over nodes, with the backup of
// each partition on the next node. Round-robin keeps ownership balanced
// within one partition per node, which the scalability experiment relies
// on. It panics if nodes is not positive.
func Assign(partitions, nodes int) *Assignment {
	if nodes <= 0 {
		panic(fmt.Sprintf("partition: nodes must be positive, got %d", nodes))
	}
	t := &assignTable{
		owners:  make([]int, partitions),
		backups: make([]int, partitions),
		nodes:   nodes,
		pepochs: make([]int64, partitions),
	}
	for p := 0; p < partitions; p++ {
		t.owners[p] = p % nodes
		t.backups[p] = (p + 1) % nodes
	}
	a := &Assignment{}
	a.state.Store(t)
	return a
}

// Owner returns the node owning partition p.
func (a *Assignment) Owner(p int) int { return a.state.Load().owners[p] }

// Backup returns the node holding the backup replica of partition p. With a
// single node the backup coincides with the owner.
func (a *Assignment) Backup(p int) int { return a.state.Load().backups[p] }

// Nodes returns the number of nodes in the assignment, including joined
// (and later failed or left) ones — node ids are never reused.
func (a *Assignment) Nodes() int { return a.state.Load().nodes }

// Epoch returns the table's global epoch: 0 at creation, bumped by one on
// every mutation (Apply, AddNode, Promote).
func (a *Assignment) Epoch() int64 { return a.state.Load().epoch }

// PartitionEpoch returns the epoch of partition p's current seat — the
// value a fenced op must carry to be accepted for p.
func (a *Assignment) PartitionEpoch(p int) int64 { return a.state.Load().pepochs[p] }

// Table is an immutable point-in-time handle on the assignment. Fenced KV
// views cache one and stamp its partition epochs on their operations; the
// store compares the stamp against the live table and rejects stale ones.
type Table struct{ t *assignTable }

// Table returns the current table. The handle never changes once obtained;
// call again to observe later mutations.
func (a *Assignment) Table() Table { return Table{t: a.state.Load()} }

// Valid reports whether the handle holds a table (the zero Table does not).
func (t Table) Valid() bool { return t.t != nil }

// Owner returns the node owning partition p as of this table.
func (t Table) Owner(p int) int { return t.t.owners[p] }

// Backup returns partition p's backup node as of this table.
func (t Table) Backup(p int) int { return t.t.backups[p] }

// Nodes returns the node count as of this table.
func (t Table) Nodes() int { return t.t.nodes }

// Epoch returns the table's global epoch.
func (t Table) Epoch() int64 { return t.t.epoch }

// PartitionEpoch returns partition p's epoch as of this table.
func (t Table) PartitionEpoch(p int) int64 { return t.t.pepochs[p] }

// Change reassigns one partition: the unit of an online migration flip.
type Change struct {
	Partition int
	Owner     int
	Backup    int
}

// Apply atomically applies a set of seat changes, bumping the global epoch
// once and the per-partition epoch of every partition whose owner or
// backup actually changed. It returns the new global epoch. An empty or
// all-no-op change set still publishes a table with a bumped global epoch
// (callers use that as a membership-change marker), but leaves partition
// epochs alone so in-flight fenced ops are not spuriously rejected.
func (a *Assignment) Apply(changes []Change) int64 {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return a.applyLocked(changes, 0)
}

// AddNode grows the assignment by one node, returning the new node's id.
// The new node owns nothing until partitions are migrated to it; only the
// global epoch is bumped.
func (a *Assignment) AddNode() int {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	a.applyLocked(nil, 1)
	return a.state.Load().nodes - 1
}

// applyLocked rewrites the table under wmu: applies changes, grows the
// node count by addNodes, bumps epochs, and publishes atomically.
func (a *Assignment) applyLocked(changes []Change, addNodes int) int64 {
	old := a.state.Load()
	t := &assignTable{
		owners:  append([]int(nil), old.owners...),
		backups: append([]int(nil), old.backups...),
		nodes:   old.nodes + addNodes,
		epoch:   old.epoch + 1,
		pepochs: append([]int64(nil), old.pepochs...),
	}
	for _, c := range changes {
		if t.owners[c.Partition] == c.Owner && t.backups[c.Partition] == c.Backup {
			continue
		}
		t.owners[c.Partition] = c.Owner
		t.backups[c.Partition] = c.Backup
		t.pepochs[c.Partition]++
	}
	a.state.Store(t)
	return t.epoch
}

// Partitions returns the number of partitions in the assignment.
func (a *Assignment) Partitions() int { return len(a.state.Load().owners) }

// OwnedBy returns the partitions owned by node, in ascending order.
func (a *Assignment) OwnedBy(node int) []int {
	t := a.state.Load()
	var out []int
	for p, o := range t.owners {
		if o == node {
			out = append(out, p)
		}
	}
	return out
}

// Promote reassigns every partition owned by failed to its backup and
// picks a new backup for affected partitions. It models the IMDG failover
// behaviour the paper relies on for recovery: the operator restarts on the
// node that already holds the snapshot replica. Concurrent readers see
// either the old or the new table, never a torn mix.
func (a *Assignment) Promote(failed int) {
	a.PromoteAvoiding(failed, nil)
}

// PromoteAvoiding is Promote with a caller-supplied predicate marking
// nodes that must not be chosen as replacement backups (other failed or
// departed members). The failed node itself is always avoided. A nil
// predicate avoids only the failed node — plain Promote's behaviour.
func (a *Assignment) PromoteAvoiding(failed int, avoid func(node int) bool) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	old := a.state.Load()
	bad := func(n int) bool { return n == failed || (avoid != nil && avoid(n)) }
	changes := make([]Change, 0, len(old.owners))
	for p := range old.owners {
		owner, backup := old.owners[p], old.backups[p]
		if owner == failed {
			owner = backup
		}
		if bad(backup) || backup == owner {
			// Re-seat the backup on the next usable node after the owner.
			backup = owner
			for i := 0; i < old.nodes; i++ {
				cand := (owner + 1 + i) % old.nodes
				if !bad(cand) && cand != owner {
					backup = cand
					break
				}
			}
		}
		if owner != old.owners[p] || backup != old.backups[p] {
			changes = append(changes, Change{Partition: p, Owner: owner, Backup: backup})
		}
	}
	a.applyLocked(changes, 0)
}
