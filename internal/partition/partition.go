// Package partition implements the hash-partitioning scheme shared by the
// KV store and the dataflow runtime. Sharing one partitioner is the
// co-location contract at the heart of S-QUERY (§II of the paper): because
// streams and state are split with the same function, the scheduler can
// place an operator instance on the node that owns its state partitions,
// and every live-state update or snapshot write stays local.
package partition

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultCount mirrors Hazelcast's default of 271 partitions: a prime,
// large enough to spread keys, small enough that per-partition overheads
// stay negligible.
const DefaultCount = 271

// Partitioner maps keys to a fixed number of partitions. The zero value is
// unusable; construct with New.
type Partitioner struct {
	count int
}

// New returns a partitioner over count partitions. It panics if count is
// not positive, as that is a programming error rather than runtime input.
func New(count int) Partitioner {
	if count <= 0 {
		panic(fmt.Sprintf("partition: count must be positive, got %d", count))
	}
	return Partitioner{count: count}
}

// Count returns the number of partitions.
func (p Partitioner) Count() int { return p.count }

// Of returns the partition that owns key, in [0, Count()).
func (p Partitioner) Of(key Key) int {
	return int(Hash(key) % uint64(p.count))
}

// Key is a partitioning key. Streaming operators key their state by values
// of these types; anything else must be converted by the caller (keeping
// the conversion explicit avoids silently inconsistent hashing between the
// compute and state layers).
type Key interface{}

// Hash returns a stable 64-bit FNV-1a hash of the key. Stability across
// processes matters: snapshots written by one run must hash identically
// when restored by another.
func Hash(key Key) uint64 {
	h := fnv.New64a()
	switch k := key.(type) {
	case string:
		h.Write([]byte(k))
	case int:
		writeInt(h, int64(k))
	case int32:
		writeInt(h, int64(k))
	case int64:
		writeInt(h, k)
	case uint64:
		writeInt(h, int64(k))
	case float64:
		writeInt(h, int64(math.Float64bits(k)))
	case bool:
		if k {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case fmt.Stringer:
		h.Write([]byte(k.String()))
	default:
		h.Write([]byte(fmt.Sprintf("%v", k)))
	}
	return h.Sum64()
}

func writeInt(h interface{ Write([]byte) (int, error) }, v int64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// KeyString renders a key in the canonical form used for map addressing
// and snapshot entry naming. Two keys with equal KeyString are the same
// key for state purposes.
func KeyString(key Key) string {
	switch k := key.(type) {
	case string:
		return k
	case int:
		return strconv.FormatInt(int64(k), 10)
	case int32:
		return strconv.FormatInt(int64(k), 10)
	case int64:
		return strconv.FormatInt(k, 10)
	case uint64:
		return strconv.FormatUint(k, 10)
	default:
		return fmt.Sprintf("%v", k)
	}
}

// Assignment maps every partition to an owner (and optional backup) node.
// It is computed once per topology and shared by the KV store (data
// placement) and the job scheduler (compute placement). Reads are
// lock-free (the table is on the hot path of every state operation);
// Promote swaps in a rewritten copy atomically.
type Assignment struct {
	state atomic.Pointer[assignTable]
	wmu   sync.Mutex // serializes Promote
	nodes int
}

// assignTable is an immutable owner/backup snapshot.
type assignTable struct {
	owners  []int
	backups []int
}

// Assign distributes partitions round-robin over nodes, with the backup of
// each partition on the next node. Round-robin keeps ownership balanced
// within one partition per node, which the scalability experiment relies
// on. It panics if nodes is not positive.
func Assign(partitions, nodes int) *Assignment {
	if nodes <= 0 {
		panic(fmt.Sprintf("partition: nodes must be positive, got %d", nodes))
	}
	t := &assignTable{
		owners:  make([]int, partitions),
		backups: make([]int, partitions),
	}
	for p := 0; p < partitions; p++ {
		t.owners[p] = p % nodes
		t.backups[p] = (p + 1) % nodes
	}
	a := &Assignment{nodes: nodes}
	a.state.Store(t)
	return a
}

// Owner returns the node owning partition p.
func (a *Assignment) Owner(p int) int { return a.state.Load().owners[p] }

// Backup returns the node holding the backup replica of partition p. With a
// single node the backup coincides with the owner.
func (a *Assignment) Backup(p int) int { return a.state.Load().backups[p] }

// Nodes returns the number of nodes in the assignment.
func (a *Assignment) Nodes() int { return a.nodes }

// Partitions returns the number of partitions in the assignment.
func (a *Assignment) Partitions() int { return len(a.state.Load().owners) }

// OwnedBy returns the partitions owned by node, in ascending order.
func (a *Assignment) OwnedBy(node int) []int {
	t := a.state.Load()
	var out []int
	for p, o := range t.owners {
		if o == node {
			out = append(out, p)
		}
	}
	return out
}

// Promote reassigns every partition owned by failed to its backup and
// picks a new backup for affected partitions. It models the IMDG failover
// behaviour the paper relies on for recovery: the operator restarts on the
// node that already holds the snapshot replica. Concurrent readers see
// either the old or the new table, never a torn mix.
func (a *Assignment) Promote(failed int) {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	old := a.state.Load()
	t := &assignTable{
		owners:  append([]int(nil), old.owners...),
		backups: append([]int(nil), old.backups...),
	}
	for p := range t.owners {
		if t.owners[p] == failed {
			t.owners[p] = t.backups[p]
		}
		if t.backups[p] == failed || t.backups[p] == t.owners[p] {
			// Re-seat the backup on the next live node after the owner.
			b := (t.owners[p] + 1) % a.nodes
			if b == failed {
				b = (b + 1) % a.nodes
			}
			t.backups[p] = b
		}
	}
	a.state.Store(t)
}
