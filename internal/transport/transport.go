// Package transport is the explicit wire of the cluster: every
// inter-node message — state put, replication hop, batched mirror flush,
// query scatter — is a Msg sent through a Transport. The seam was carved
// out of the DelayFunc/networkHop/ChargeHop plumbing that used to be
// smeared across internal/kv and internal/cluster; pulling it into one
// interface gives three things at once:
//
//   - accounting: one place counts messages, logical operations and
//     payload bytes, so "how many messages did that checkpoint cost?" is
//     answerable from sys.network instead of by code reading;
//   - fault injection: the chaos FaultHook lives at the seam the faults
//     notionally happen at (the network), not inside the store;
//   - reality: the Transport interface is implementable by a real
//     network. The loopback-TCP transport in this package proves the
//     seam carries everything the engine needs — a future PR can point
//     it at another machine.
//
// Senders identify themselves by node id; ClientNode (-1) is the
// external query client, remote to every node. From == To is always free
// and unaccounted: a node does not talk to itself over the wire.
package transport

import (
	"sync"
	"sync/atomic"

	"squery/internal/trace"
)

// ClientNode is the pseudo node id of external clients (the query
// system); it is remote to every cluster node.
const ClientNode = -1

// Msg is one inter-node message. Ops is the number of logical operations
// the message carries (1 for a unary put/get, n for a batched flush) and
// Bytes the wire-encoded payload size; both are accounting only — a
// transport may ignore them for delivery. Payload, when non-nil, is the
// encoded frame body a real transport ships; the simulated transport
// leaves it nil (state mutation happens in shared memory, only the cost
// is modelled).
type Msg struct {
	From, To int
	Ops      int
	Bytes    int
	Payload  []byte
}

// Stats is a transport's cumulative accounting. Messages is the unit the
// paper's overhead argument counts in: batching exists to shrink
// Messages while Ops stays the same.
type Stats struct {
	Messages uint64
	Ops      uint64
	Bytes    uint64
}

// FaultHook intercepts simulated network access to partitions for fault
// injection (see internal/chaos). Access is called with the accessing
// node, the node owning (or backing up) the target partition, and the
// partition itself; it may block (a stalled link) and/or return an error
// (an unreachable one). Hooks are consulted only on the fallible access
// paths the query layer uses — the data plane never routes through them,
// so injected faults degrade queries without corrupting processing.
type FaultHook interface {
	Access(from, owner, partition int) error
}

// Transport moves messages between nodes and accounts for them.
// Implementations must be safe for concurrent use by every node at once.
type Transport interface {
	// Send delivers m, blocking for the transport's cost of one message
	// from m.From to m.To. From == To is a no-op.
	Send(m Msg)
	// Check consults the fault hook for an access from node `from` to
	// partition `partition` held by node `to`. It may block (stalled
	// link) and returns the hook's error for an unreachable one. A nil
	// hook, or from == to, always passes.
	Check(from, to, partition int) error
	// SetFaultHook installs (or clears, with nil) the fault hook.
	SetFaultHook(h FaultHook)
	// SetTracer attaches a tracer; the transport emits sampled "net"
	// spans for batch messages. nil detaches.
	SetTracer(t *trace.Tracer)
	// Stats returns cumulative accounting.
	Stats() Stats
	// Close releases transport resources (listeners, connections). The
	// transport must not be used after Close.
	Close() error
}

// base carries the accounting, fault-hook and tracer state every
// transport shares, so Sim and Loopback count identically — the parity
// test depends on that.
type base struct {
	messages atomic.Uint64
	ops      atomic.Uint64
	bytes    atomic.Uint64

	netSpanSeq atomic.Uint64

	mu     sync.RWMutex
	fault  FaultHook
	tracer *trace.Tracer
}

// netSpanSampleEvery is the 1-in-N sampling rate for batch-message "net"
// spans. Unary sends are never traced (they would flood the ring);
// batches are rarer and are what the batching story needs visible.
const netSpanSampleEvery = 64

// account records m in the counters and, for a sampled batch message,
// emits a net span. It returns immediately for self-sends.
func (b *base) account(m Msg) bool {
	if m.From == m.To {
		return false
	}
	ops := m.Ops
	if ops <= 0 {
		ops = 1
	}
	b.messages.Add(1)
	b.ops.Add(uint64(ops))
	if m.Bytes > 0 {
		b.bytes.Add(uint64(m.Bytes))
	}
	if ops > 1 {
		if b.netSpanSeq.Add(1)%netSpanSampleEvery == 0 {
			b.emitNetSpan(m, ops)
		}
	}
	return true
}

func (b *base) emitNetSpan(m Msg, ops int) {
	b.mu.RLock()
	t := b.tracer
	b.mu.RUnlock()
	if t == nil {
		return
	}
	sp := t.StartTrace("batch", trace.KindNet)
	sp.SetVertex("net", m.From)
	sp.SetNote(noteFor(m.To, ops, m.Bytes))
	sp.End()
}

// noteFor formats "to=N ops=M bytes=B" without fmt (the span path must
// stay cheap even when sampled).
func noteFor(to, ops, bytes int) string {
	buf := make([]byte, 0, 48)
	buf = append(buf, "to="...)
	buf = appendInt(buf, to)
	buf = append(buf, " ops="...)
	buf = appendInt(buf, ops)
	buf = append(buf, " bytes="...)
	buf = appendInt(buf, bytes)
	return string(buf)
}

func appendInt(buf []byte, v int) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

func (b *base) Check(from, to, partition int) error {
	if from == to {
		return nil
	}
	b.mu.RLock()
	h := b.fault
	b.mu.RUnlock()
	if h == nil {
		return nil
	}
	return h.Access(from, to, partition)
}

func (b *base) SetFaultHook(h FaultHook) {
	b.mu.Lock()
	b.fault = h
	b.mu.Unlock()
}

func (b *base) SetTracer(t *trace.Tracer) {
	b.mu.Lock()
	b.tracer = t
	b.mu.Unlock()
}

func (b *base) Stats() Stats {
	return Stats{
		Messages: b.messages.Load(),
		Ops:      b.ops.Load(),
		Bytes:    b.bytes.Load(),
	}
}
