package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Loopback is a Transport that really ships every message through the
// kernel: one TCP listener on 127.0.0.1, one connection per (from, to)
// pair, a length-prefixed frame per message, and a one-byte ack the
// sender blocks on. State still lives in the shared store — the frame
// carries the message header and payload so the seam is exercised end to
// end — which makes Loopback the existence proof that the Transport
// interface carries everything a real multi-process deployment needs,
// and the "latency model" becomes the actual loopback RTT.
//
// Accounting is identical to Sim's (same counters, same sampling), which
// is what the sim/TCP parity test pins down.
type Loopback struct {
	base

	ln   net.Listener
	done chan struct{}

	mu     sync.Mutex
	conns  map[[2]int]*lconn
	closed bool
}

// lconn is one sender's connection for a (from, to) pair. Sends on a
// pair are serialized by mu (frame + ack is a round trip); distinct
// pairs proceed in parallel.
type lconn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewLoopback starts the listener and server loop.
func NewLoopback() (*Loopback, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: loopback listen: %w", err)
	}
	l := &Loopback{ln: ln, done: make(chan struct{}), conns: make(map[[2]int]*lconn)}
	go l.serve()
	return l, nil
}

// Addr returns the listener's address (tests and diagnostics).
func (l *Loopback) Addr() string { return l.ln.Addr().String() }

func (l *Loopback) serve() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.done:
				return
			default:
			}
			return
		}
		go l.handle(conn)
	}
}

// handle reads frames and acks each one. The frame content is discarded
// — delivery is the shared store's job in-process — but every byte has
// crossed the kernel's loopback path before the ack releases the sender.
func (l *Loopback) handle(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > 1<<24 {
			return // corrupt frame; drop the connection
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		if _, err := io.ReadFull(conn, buf[:n]); err != nil {
			return
		}
		if _, err := conn.Write([]byte{0x06}); err != nil {
			return
		}
	}
}

// Send accounts m, frames it, ships it through the kernel and blocks on
// the ack. Accounting happens first and unconditionally, so a transport
// torn down mid-run still counts identically to Sim; delivery errors are
// swallowed — the data plane cannot fail, faults are injected via Check.
func (l *Loopback) Send(m Msg) {
	if !l.account(m) {
		return
	}
	c := l.conn(m.From, m.To)
	if c == nil {
		return
	}
	frame := appendFrame(make([]byte, 0, 64+len(m.Payload)), m)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.conn.Write(frame); err != nil {
		return
	}
	var ack [1]byte
	_, _ = io.ReadFull(c.conn, ack[:])
}

// appendFrame encodes the 4-byte length prefix and the header/payload.
func appendFrame(buf []byte, m Msg) []byte {
	body := make([]byte, 0, 40+len(m.Payload))
	body = binary.AppendVarint(body, int64(m.From))
	body = binary.AppendVarint(body, int64(m.To))
	body = binary.AppendUvarint(body, uint64(max(m.Ops, 1)))
	body = binary.AppendUvarint(body, uint64(m.Bytes))
	body = binary.AppendUvarint(body, uint64(len(m.Payload)))
	body = append(body, m.Payload...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	return append(buf, body...)
}

// conn returns (dialling if needed) the connection for a (from, to)
// pair, or nil once the transport is closed.
func (l *Loopback) conn(from, to int) *lconn {
	key := [2]int{from, to}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if c, ok := l.conns[key]; ok {
		return c
	}
	conn, err := net.Dial("tcp", l.ln.Addr().String())
	if err != nil {
		return nil
	}
	c := &lconn{conn: conn}
	l.conns[key] = c
	return c
}

// Close tears down the listener and every connection.
func (l *Loopback) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.mu.Lock()
		c.conn.Close()
		c.mu.Unlock()
	}
	return err
}
