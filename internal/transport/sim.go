package transport

import (
	"math/rand"
	"sync"
	"time"
)

// SimConfig configures the in-process simulated transport.
type SimConfig struct {
	// Latency is the one-way cost of an inter-node message. Zero means a
	// free (but still counted) network.
	Latency time.Duration
	// Jitter adds up to this much uniformly random extra latency per
	// message, drawn from a deterministic seeded source.
	Jitter time.Duration
	// Seed seeds the jitter source; runs with the same seed observe the
	// same jitter sequence. Zero selects seed 1 (the historical value).
	Seed int64
}

// Sim is the in-process simulated transport: messages cost a configurable
// latency (plus seeded jitter) and are fully accounted, but carry no
// payload — state lives in shared memory, only the wire cost is
// modelled. This is the DelayFunc the cluster package used to build,
// promoted to the Transport seam.
type Sim struct {
	base
	cfg SimConfig

	jitterMu sync.Mutex
	rng      *rand.Rand
}

// NewSim builds a simulated transport.
func NewSim(cfg SimConfig) *Sim {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Sim{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Send accounts m and blocks for the configured latency and jitter.
func (s *Sim) Send(m Msg) {
	if !s.account(m) {
		return
	}
	d := s.cfg.Latency
	if j := s.cfg.Jitter; j > 0 {
		s.jitterMu.Lock()
		d += time.Duration(s.rng.Int63n(int64(j) + 1))
		s.jitterMu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Close is a no-op: the simulated transport holds no resources.
func (s *Sim) Close() error { return nil }
