package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"squery/internal/trace"
)

func TestSimAccounting(t *testing.T) {
	s := NewSim(SimConfig{})
	s.Send(Msg{From: 0, To: 0, Ops: 5}) // self-send: free
	s.Send(Msg{From: 0, To: 1})         // unary, Ops defaults to 1
	s.Send(Msg{From: 1, To: 2, Ops: 8, Bytes: 64})
	got := s.Stats()
	want := Stats{Messages: 2, Ops: 9, Bytes: 64}
	if got != want {
		t.Fatalf("Stats() = %+v, want %+v", got, want)
	}
}

func TestSimLatencyBlocks(t *testing.T) {
	s := NewSim(SimConfig{Latency: 5 * time.Millisecond})
	start := time.Now()
	s.Send(Msg{From: 0, To: 1})
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("remote send took %s, want >= 5ms", d)
	}
	start = time.Now()
	s.Send(Msg{From: 1, To: 1})
	if d := time.Since(start); d > 2*time.Millisecond {
		t.Fatalf("self send took %s, want ~0", d)
	}
}

func TestSimJitterDeterministic(t *testing.T) {
	run := func() time.Duration {
		s := NewSim(SimConfig{Latency: time.Microsecond, Jitter: time.Millisecond, Seed: 7})
		start := time.Now()
		for i := 0; i < 5; i++ {
			s.Send(Msg{From: 0, To: 1})
		}
		return time.Since(start)
	}
	a, b := run(), run()
	// Same seed, same jitter draws: total sleep targets are identical, so
	// wall times agree to scheduling noise.
	if diff := (a - b).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("same-seed runs diverged by %s (%s vs %s)", diff, a, b)
	}
}

type denyHook struct{ err error }

func (h denyHook) Access(from, owner, partition int) error { return h.err }

func TestFaultHookSeam(t *testing.T) {
	s := NewSim(SimConfig{})
	if err := s.Check(0, 1, 42); err != nil {
		t.Fatalf("no hook: Check = %v", err)
	}
	boom := errors.New("severed")
	s.SetFaultHook(denyHook{boom})
	if err := s.Check(0, 1, 42); !errors.Is(err, boom) {
		t.Fatalf("Check = %v, want %v", err, boom)
	}
	if err := s.Check(1, 1, 42); err != nil {
		t.Fatalf("self access must never fault, got %v", err)
	}
	s.SetFaultHook(nil)
	if err := s.Check(0, 1, 42); err != nil {
		t.Fatalf("cleared hook: Check = %v", err)
	}
}

func TestNetSpansSampled(t *testing.T) {
	s := NewSim(SimConfig{})
	tr := trace.New(trace.Config{Capacity: 1 << 12})
	s.SetTracer(tr)
	// Unary messages never produce net spans; batches are sampled 1-in-64.
	for i := 0; i < 10; i++ {
		s.Send(Msg{From: 0, To: 1})
	}
	for i := 0; i < 2*netSpanSampleEvery; i++ {
		s.Send(Msg{From: 0, To: 1, Ops: 16, Bytes: 128})
	}
	spans := tr.Spans()
	net := 0
	for _, sp := range spans {
		if sp.Kind != trace.KindNet {
			t.Fatalf("unexpected span kind %q", sp.Kind)
		}
		net++
	}
	if net != 2 {
		t.Fatalf("got %d net spans from %d batches, want 2", net, 2*netSpanSampleEvery)
	}
}

func TestLoopbackDeliversAndCounts(t *testing.T) {
	l, err := NewLoopback()
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	for from := 0; from < 3; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				l.Send(Msg{From: from, To: (from + 1) % 3, Ops: 4, Bytes: 10, Payload: []byte("payload")})
			}
		}(from)
	}
	wg.Wait()
	got := l.Stats()
	want := Stats{Messages: 60, Ops: 240, Bytes: 600}
	if got != want {
		t.Fatalf("Stats() = %+v, want %+v", got, want)
	}
}

func TestLoopbackMatchesSimAccounting(t *testing.T) {
	l, err := NewLoopback()
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewSim(SimConfig{})
	msgs := []Msg{
		{From: 0, To: 0, Ops: 3},
		{From: ClientNode, To: 2, Ops: 1, Bytes: 9},
		{From: 2, To: 1, Ops: 7},
		{From: 1, To: 0},
	}
	for _, m := range msgs {
		l.Send(m)
		s.Send(m)
	}
	if ls, ss := l.Stats(), s.Stats(); ls != ss {
		t.Fatalf("loopback %+v != sim %+v", ls, ss)
	}
}

func TestLoopbackSendAfterClose(t *testing.T) {
	l, err := NewLoopback()
	if err != nil {
		t.Fatal(err)
	}
	l.Send(Msg{From: 0, To: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Still accounted, never blocks, never panics.
	l.Send(Msg{From: 1, To: 2})
	if got := l.Stats().Messages; got != 2 {
		t.Fatalf("Messages = %d, want 2", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
