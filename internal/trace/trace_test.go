package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartTrace("x", KindQuery); sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	if sp := tr.SampleRecordTrace("x", "v", 0); sp != nil {
		t.Fatalf("nil tracer sampled a record")
	}
	if sp := tr.StartChild(SpanContext{TraceID: 1, SpanID: 1}, "x", KindRecord); sp != nil {
		t.Fatalf("nil tracer returned non-nil child")
	}
	tr.Emit(SpanData{TraceID: 1, SpanID: 1})
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer returned spans: %v", got)
	}
	if tr.Len() != 0 || tr.SampleEvery() != 0 || tr.NewID() != 0 {
		t.Fatalf("nil tracer accessors not zero")
	}
	// All nil-span methods must be safe.
	var sp *Span
	sp.SetVertex("v", 1)
	sp.SetSSID(7)
	sp.SetQueueWait(time.Millisecond)
	sp.SetNote("n")
	sp.End()
	sp.Fail("boom")
	if sp.Context().Valid() {
		t.Fatalf("nil span context valid")
	}
}

func TestHeadSamplingRate(t *testing.T) {
	tr := New(Config{SampleEvery: 4, Capacity: 1024})
	sampled := 0
	for i := 0; i < 400; i++ {
		if sp := tr.SampleRecordTrace("source", "src", 0); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 100 {
		t.Fatalf("SampleEvery=4 over 400 records: sampled %d, want 100", sampled)
	}
	if tr.Len() != 100 {
		t.Fatalf("ring holds %d spans, want 100", tr.Len())
	}
}

func TestChildLinksToParent(t *testing.T) {
	tr := New(Config{})
	root := tr.StartTrace("checkpoint", KindCheckpoint)
	root.SetSSID(17)
	child := tr.StartChild(root.Context(), "phase1", KindCheckpoint)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c := byName["checkpoint"], byName["phase1"]
	if r.TraceID == 0 || r.TraceID != c.TraceID {
		t.Fatalf("trace ids differ: root %d child %d", r.TraceID, c.TraceID)
	}
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent %d, want root span %d", c.ParentID, r.SpanID)
	}
	if r.ParentID != 0 {
		t.Fatalf("root has parent %d", r.ParentID)
	}
	if r.SSID != 17 {
		t.Fatalf("root ssid %d, want 17", r.SSID)
	}
	// A child of an unsampled context must be a no-op.
	if sp := tr.StartChild(SpanContext{}, "x", KindRecord); sp != nil {
		t.Fatalf("child of unsampled context not nil")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Config{Capacity: 32, SampleEvery: 1})
	for i := 0; i < 500; i++ {
		sp := tr.StartTrace("q", KindQuery)
		sp.End()
	}
	if got := tr.Len(); got != 32 {
		t.Fatalf("ring holds %d, want capacity 32", got)
	}
	// Survivors must be the most recent spans (highest ids).
	for _, s := range tr.Spans() {
		if s.SpanID <= 500-2*32 {
			t.Fatalf("span %d survived a full ring of 500 writes", s.SpanID)
		}
	}
}

func TestFailMarksSpan(t *testing.T) {
	tr := New(Config{})
	sp := tr.StartTrace("checkpoint", KindCheckpoint)
	sp.Fail("phase-1 deadline")
	spans := tr.Spans()
	if len(spans) != 1 || !spans[0].Failed || spans[0].Note != "phase-1 deadline" {
		t.Fatalf("fail not recorded: %+v", spans)
	}
}

// TestConcurrentWritersAndScans is the ring-buffer race wall: many writer
// goroutines completing spans while readers snapshot the ring, meaningful
// under -race.
func TestConcurrentWritersAndScans(t *testing.T) {
	tr := New(Config{Capacity: 256, SampleEvery: 1})
	const writers, perWriter, readers = 8, 2000, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Spans() {
					if s.TraceID == 0 {
						t.Error("scan observed zero-id span")
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				root := tr.SampleRecordTrace("source", "src", w)
				hop := tr.StartChild(root.Context(), "hop", KindRecord)
				hop.SetQueueWait(time.Microsecond)
				hop.End()
				root.End()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if tr.Len() != 256 {
		t.Fatalf("ring holds %d, want full capacity 256", tr.Len())
	}
}
