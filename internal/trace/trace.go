// Package trace is the engine's low-overhead span tracer. Where
// internal/metrics answers "how much / how fast on average", trace answers
// the causal questions aggregates cannot: where did this record's 40 ms
// go, which worker stalled phase-1 of checkpoint 17, which stage of this
// query scanned the most rows.
//
// The design mirrors metrics.Registry's nil-safety contract so call sites
// compile in unconditionally: a nil *Tracer hands out nil *Span handles
// and every method on both is a no-op. Completed spans land in a
// fixed-size lock-striped ring buffer (old spans are overwritten, never
// allocated-for or flushed), so steady-state tracing does no allocation
// beyond the span handle itself and never blocks a data-path goroutine on
// anything but one short stripe mutex.
//
// Sampling is head-based: record traces are sampled 1-in-N at the source
// (default 256) and the decision travels with the record, so a sampled
// record produces spans at every hop or none at all. Checkpoint and query
// traces are rare relative to records and are always sampled.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds — the taxonomy sys.spans exposes in its "kind" column.
const (
	KindRecord     = "record"     // source emission + per-operator hops
	KindCheckpoint = "checkpoint" // 2PC root, alignment, prepare, phases
	KindQuery      = "query"      // query root + per-stage plan spans
	KindChaos      = "chaos"      // injected-fault annotations
	KindNet        = "net"        // sampled inter-node batch messages (transport seam)
	KindRebalance  = "rebalance"  // membership changes + per-partition migrations
	KindHealth     = "health"     // backpressure stalls + watermark-lag annotations
)

// SpanContext is the propagated identity of a span: enough for a child in
// another goroutine (or carried inside a Record across channels) to link
// to its parent. The zero value is "not sampled".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// SpanData is one completed span as stored in the ring and surfaced by
// sys.spans. Start retains Go's monotonic clock reading, so durations
// computed against it are immune to wall-clock steps.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for trace roots
	Name     string // taxonomy: source, hop, checkpoint, align, prepare, ...
	Kind     string // KindRecord, KindCheckpoint, KindQuery, KindChaos
	Vertex   string // vertex / job / table the span belongs to ("" if n/a)
	Instance int    // operator instance (-1 if n/a)
	SSID     int64  // snapshot id for checkpoint-related spans (0 if n/a)
	Start    time.Time
	Dur      time.Duration
	// QueueWait, on hop spans, is how long the record sat in the
	// operator's inbox (including any barrier-alignment stall) before
	// processing began; Dur is pure process time.
	QueueWait time.Duration
	Failed    bool
	Note      string
}

// Span is an in-flight span handle. It is not safe for concurrent use —
// each span belongs to the goroutine that started it — but Context() may
// be read concurrently (it only touches fields frozen at creation).
type Span struct {
	t *Tracer
	d SpanData
}

// Context returns the span's propagation context, or the zero context on a
// nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.d.TraceID, SpanID: s.d.SpanID}
}

// SetVertex attaches the owning vertex/instance.
func (s *Span) SetVertex(vertex string, instance int) {
	if s == nil {
		return
	}
	s.d.Vertex = vertex
	s.d.Instance = instance
}

// SetSSID attaches a snapshot id (joins sys.spans to sys.checkpoints).
func (s *Span) SetSSID(ssid int64) {
	if s == nil {
		return
	}
	s.d.SSID = ssid
}

// SetQueueWait records the inbox wait preceding this span.
func (s *Span) SetQueueWait(d time.Duration) {
	if s == nil {
		return
	}
	s.d.QueueWait = d
}

// SetNote attaches a free-form annotation (query text, abort reason, ...).
func (s *Span) SetNote(note string) {
	if s == nil {
		return
	}
	s.d.Note = note
}

// End completes the span and commits it to the ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.d.Dur = time.Since(s.d.Start)
	s.t.Emit(s.d)
}

// Fail marks the span failed with a reason and commits it.
func (s *Span) Fail(note string) {
	if s == nil {
		return
	}
	s.d.Failed = true
	if note != "" {
		s.d.Note = note
	}
	s.End()
}

// Config configures a Tracer.
type Config struct {
	// Capacity is the total ring-buffer size in completed spans
	// (rounded up to a multiple of the stripe count). Default 4096.
	Capacity int
	// SampleEvery head-samples 1-in-N record traces at the source.
	// Default 256; 1 traces every record. Checkpoint and query traces
	// ignore it (always sampled).
	SampleEvery int
}

const stripes = 16 // power of two; span ids spread writers across stripes

// stripe is one lock-striped segment of the completed-span ring.
type stripe struct {
	mu   sync.Mutex
	buf  []SpanData
	next int
	full bool
	_    [24]byte // keep neighbouring stripes off one cache line
}

// Tracer allocates trace/span ids, makes sampling decisions, and owns the
// completed-span ring. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	sampleEvery uint64
	seq         atomic.Uint64 // head-sampling counter for record traces
	ids         atomic.Uint64 // shared trace/span id allocator (never 0)
	ring        [stripes]stripe
}

// New builds a tracer. Zero-value config fields select the defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 256
	}
	per := (cfg.Capacity + stripes - 1) / stripes
	t := &Tracer{sampleEvery: uint64(cfg.SampleEvery)}
	for i := range t.ring {
		t.ring[i].buf = make([]SpanData, per)
	}
	return t
}

// SampleEvery returns the record head-sampling rate (0 on a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery)
}

// NewID allocates a fresh id usable as either a trace or span id.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// StartTrace starts an always-sampled root span (checkpoints, queries).
func (t *Tracer) StartTrace(name, kind string) *Span {
	if t == nil {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{t: t, d: SpanData{
		TraceID: id, SpanID: id, Name: name, Kind: kind,
		Instance: -1, Start: time.Now(),
	}}
}

// SampleRecordTrace makes the 1-in-N head-sampling decision and, when it
// fires, starts the root span of a record trace. It returns nil (no-op)
// for unsampled records.
func (t *Tracer) SampleRecordTrace(name, vertex string, instance int) *Span {
	if t == nil {
		return nil
	}
	if t.seq.Add(1)%t.sampleEvery != 0 {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{t: t, d: SpanData{
		TraceID: id, SpanID: id, Name: name, Kind: KindRecord,
		Vertex: vertex, Instance: instance, Start: time.Now(),
	}}
}

// StartChild starts a span under parent. It returns nil when the tracer is
// nil or the parent context is unsampled, so propagation code never
// branches on sampling itself.
func (t *Tracer) StartChild(parent SpanContext, name, kind string) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return &Span{t: t, d: SpanData{
		TraceID: parent.TraceID, SpanID: t.ids.Add(1), ParentID: parent.SpanID,
		Name: name, Kind: kind, Instance: -1, Start: time.Now(),
	}}
}

// Emit commits an externally assembled completed span. Used for spans
// whose lifetime does not match a handle's scope: alignment waits measured
// from a stored start time, per-stage query spans synthesized from plan
// statistics, chaos annotations.
func (t *Tracer) Emit(d SpanData) {
	if t == nil || d.TraceID == 0 {
		return
	}
	s := &t.ring[d.SpanID%stripes]
	s.mu.Lock()
	s.buf[s.next] = d
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Spans snapshots the ring's completed spans, oldest first per stripe.
// The result is a copy; callers may sort or mutate it freely.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	var out []SpanData
	for i := range t.ring {
		s := &t.ring[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.buf[s.next:]...)
			out = append(out, s.buf[:s.next]...)
		} else {
			out = append(out, s.buf[:s.next]...)
		}
		s.mu.Unlock()
	}
	return out
}

// Len reports how many completed spans the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.ring {
		s := &t.ring[i]
		s.mu.Lock()
		if s.full {
			n += len(s.buf)
		} else {
			n += s.next
		}
		s.mu.Unlock()
	}
	return n
}
