package dataflow

import (
	"fmt"
	"testing"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/partition"
)

func testCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Nodes: 3, Partitions: 27})
}

// countingState is the counter state used throughout these tests.
type countingState struct {
	Count int
}

func countFn(state any, rec Record) (any, []Record) {
	c := countingState{}
	if state != nil {
		c = state.(countingState)
	}
	c.Count++
	return c, []Record{{Key: rec.Key, Value: c.Count, EventTime: rec.EventTime}}
}

func keyedRecords(n, keys int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: i % keys, Value: i}
	}
	return recs
}

func runCountJob(t *testing.T, clu *cluster.Cluster, recs []Record, cfg Config) (*Job, *CollectSink) {
	t.Helper()
	sink := &CollectSink{}
	dag := NewDAG().
		AddVertex(SliceSource("src", 3, recs)).
		AddVertex(StatefulMapVertex("counter", 3, countFn)).
		AddVertex(sink.Vertex("sink", 3)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	cfg.Cluster = clu
	job, err := Run(dag, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return job, sink
}

func TestPipelineProcessesAllRecords(t *testing.T) {
	clu := testCluster()
	job, sink := runCountJob(t, clu, keyedRecords(300, 10), Config{})
	job.Wait()
	defer job.Stop()

	if sink.Len() != 300 {
		t.Fatalf("sink saw %d records, want 300", sink.Len())
	}
	// Per-key final counts must equal per-key record counts.
	max := map[any]int{}
	for _, r := range sink.Records() {
		if c := r.Value.(int); c > max[r.Key] {
			max[r.Key] = c
		}
	}
	for k := 0; k < 10; k++ {
		if max[k] != 30 {
			t.Errorf("key %d final count = %d, want 30", k, max[k])
		}
	}
	if job.SourceMeter().Count() != 300 {
		t.Errorf("source meter = %d", job.SourceMeter().Count())
	}
}

func TestLiveStateMirrored(t *testing.T) {
	clu := testCluster()
	job, _ := runCountJob(t, clu, keyedRecords(100, 5), Config{State: core.Config{Live: true}})
	job.Wait()
	defer job.Stop()

	view := clu.ClientView()
	for k := 0; k < 5; k++ {
		v, ok := view.Get(core.LiveMapName("counter"), k)
		if !ok {
			t.Fatalf("key %d missing from live map", k)
		}
		if v.(countingState).Count != 20 {
			t.Errorf("live count for %d = %v, want 20", k, v)
		}
	}
}

func TestManualCheckpointWritesQueryableSnapshot(t *testing.T) {
	clu := testCluster()
	job, _ := runCountJob(t, clu, keyedRecords(90, 9), Config{State: core.Config{Snapshots: true}})
	job.Wait() // all records processed; workers retired

	// The checkpoint after retirement cannot commit (no live instances).
	if err := job.CheckpointNow(); err == nil {
		t.Fatal("checkpoint of a fully-drained job committed")
	}
	job.Stop()
}

func TestCheckpointMidStream(t *testing.T) {
	clu := testCluster()
	release := make(chan struct{})
	// A gated source: emits 50 records, waits for release, emits 50 more.
	src := &Vertex{
		Name: "src", Kind: KindSource, Parallelism: 1,
		NewSource: func(instance, par int) SourceInstance {
			return &gatedSource{release: release, total: 100}
		},
	}
	sink := &CollectSink{}
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("counter", 3, countFn)).
		AddVertex(sink.Vertex("sink", 1)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: clu, State: core.Config{Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool { return sink.Len() >= 50 }, "first 50 records")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ssid := job.Manager().Registry().LatestCommitted()
	if ssid != 1 {
		t.Fatalf("latest committed = %d, want 1", ssid)
	}
	// Snapshot state must reflect exactly the first 50 records: keys
	// 0..9, count 5 each.
	total := 0
	clu.ClientView().Scan(core.SnapshotMapName("counter"), func(e kv.Entry) bool {
		v, ok := e.Value.(*core.Chain).At(ssid)
		if !ok {
			t.Fatalf("key %v missing at ssid %d", e.Key, ssid)
		}
		total += v.Value.(countingState).Count
		return true
	})
	if total != 50 {
		t.Fatalf("snapshot total count = %d, want 50", total)
	}
	close(release)
	job.Wait()
	if sink.Len() != 100 {
		t.Fatalf("sink = %d, want 100", sink.Len())
	}
}

// gatedSource emits half its records, reports Idle until released, then
// emits the rest. Offset-based rewind keeps it exactly-once; staying Idle
// (not blocking) keeps barriers flowing while gated.
type gatedSource struct {
	release chan struct{}
	total   int64
	pos     int64
}

func (g *gatedSource) Next() (Record, SourceStatus) {
	if g.pos >= g.total {
		return Record{}, SourceDone
	}
	if g.pos == g.total/2 {
		select {
		case <-g.release:
		default:
			return Record{}, SourceIdle
		}
	}
	r := Record{Key: int(g.pos % 10), Value: int(g.pos)}
	g.pos++
	return r, SourceOK
}

func (g *gatedSource) Offset() int64  { return g.pos }
func (g *gatedSource) Rewind(o int64) { g.pos = o }

func TestAutomaticCheckpoints(t *testing.T) {
	clu := testCluster()
	stop := make(chan struct{})
	src := GeneratorSource("src", 2, 0, func(instance int, seq int64) (Record, bool) {
		select {
		case <-stop:
			return Record{}, false
		default:
		}
		time.Sleep(200 * time.Microsecond)
		return Record{Key: int(seq % 7), Value: seq}, true
	})
	sink := &CollectSink{}
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("counter", 2, countFn)).
		AddVertex(sink.Vertex("sink", 2)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{
		Cluster:          clu,
		State:            core.Config{Snapshots: true},
		SnapshotInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.Manager().Registry().LatestCommitted() >= 3 }, "3 automatic checkpoints")
	if job.SnapshotTotal().Count() < 3 || job.SnapshotPhase1().Count() < 3 {
		t.Errorf("2PC histograms: total=%d phase1=%d", job.SnapshotTotal().Count(), job.SnapshotPhase1().Count())
	}
	// CheckpointNow must refuse while a ticker drives checkpoints.
	if err := job.CheckpointNow(); err == nil {
		t.Error("CheckpointNow allowed alongside automatic checkpoints")
	}
	close(stop)
	job.Wait()
	job.Stop()
}

func TestExactlyOnceRecovery(t *testing.T) {
	clu := testCluster()
	const perInstance = 400
	const instances = 2
	release := make(chan struct{})
	src := GeneratorSource("src", instances, 0, func(instance int, seq int64) (Record, bool) {
		if seq >= perInstance {
			return Record{}, false
		}
		// From the midpoint on, pace the stream until the test releases
		// it: the checkpoint and the injected failure must both land on a
		// live, mid-stream pipeline instead of racing the stream running
		// to completion (a checkpoint against a fully-retired pipeline is
		// refused by the coordinator, which would fail the test early).
		if seq >= perInstance/2 {
			select {
			case <-release:
			default:
				time.Sleep(500 * time.Microsecond)
			}
		}
		return Record{Key: int(seq % 20), Value: seq}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("counter", 2, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 2)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: clu, State: core.Config{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	// Let some records flow, then checkpoint.
	waitFor(t, func() bool { return job.SourceMeter().Count() > 100 }, "warmup records")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// More records flow past the checkpoint (uncommitted), then crash.
	waitFor(t, func() bool { return job.SourceMeter().Count() > 300 }, "post-checkpoint records")
	ssid, err := job.InjectFailure()
	if err != nil {
		t.Fatal(err)
	}
	if ssid != 1 {
		t.Fatalf("recovered to ssid %d, want 1", ssid)
	}
	close(release)
	job.Wait()

	// Exactly-once: every key's final live count equals the number of
	// records generated for it across both instances, regardless of the
	// crash. Keys 0..19, perInstance*instances records, seq%20 keying:
	// each instance contributes perInstance/20 per key.
	want := perInstance / 20 * instances
	view := clu.ClientView()
	for k := 0; k < 20; k++ {
		v, ok := view.Get(core.LiveMapName("counter"), k)
		if !ok {
			t.Fatalf("key %d missing after recovery", k)
		}
		if got := v.(countingState).Count; got != want {
			t.Errorf("key %d count = %d, want %d (exactly-once violated)", k, got, want)
		}
	}
}

// LatencySinkVertexForTest builds a throwaway latency sink.
func LatencySinkVertexForTest(name string, par int) *Vertex {
	return SinkVertex(name, par, func(Record) {})
}

func TestRecoveryWithoutCommittedSnapshotRestartsClean(t *testing.T) {
	clu := testCluster()
	const perInstance = 200
	src := GeneratorSource("src", 1, 0, func(instance int, seq int64) (Record, bool) {
		if seq >= perInstance {
			return Record{}, false
		}
		time.Sleep(50 * time.Microsecond)
		return Record{Key: int(seq % 5), Value: seq}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("counter", 1, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 1)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: clu, State: core.Config{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	waitFor(t, func() bool { return job.SourceMeter().Count() > 20 }, "some records")
	ssid, err := job.InjectFailure()
	if err != nil {
		t.Fatal(err)
	}
	if ssid != 0 {
		t.Fatalf("recovered to %d, want 0 (no snapshot committed)", ssid)
	}
	job.Wait()
	v, ok := clu.ClientView().Get(core.LiveMapName("counter"), 0)
	if !ok || v.(countingState).Count != perInstance/5 {
		t.Fatalf("post-recovery count = %v, %v; want %d", v, ok, perInstance/5)
	}
}

func TestStopIsIdempotent(t *testing.T) {
	clu := testCluster()
	job, _ := runCountJob(t, clu, keyedRecords(10, 2), Config{})
	job.Stop()
	job.Stop()
	if _, err := job.InjectFailure(); err == nil {
		t.Error("InjectFailure on a stopped job succeeded")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(NewDAG(), Config{Cluster: testCluster()}); err == nil {
		t.Error("empty DAG ran")
	}
	d := NewDAG().
		AddVertex(SliceSource("src", 1, nil)).
		AddVertex(StatefulMapVertex("op", 1, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 1)).
		Connect("src", "op", EdgePartitioned).
		Connect("op", "sink", EdgePartitioned)
	if _, err := Run(d, Config{}); err == nil {
		t.Error("missing cluster accepted")
	}
}

func TestMultiInputAlignment(t *testing.T) {
	clu := testCluster()
	mk := func(name string, n int) *Vertex {
		return GeneratorSource(name, 1, 0, func(instance int, seq int64) (Record, bool) {
			if seq >= int64(n) {
				return Record{}, false
			}
			time.Sleep(20 * time.Microsecond)
			return Record{Key: fmt.Sprintf("k%d", seq%4), Value: seq}, true
		})
	}
	dag := NewDAG().
		AddVertex(mk("srcA", 500)).
		AddVertex(mk("srcB", 500)).
		AddVertex(StatefulMapVertex("counter", 2, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 1)).
		Connect("srcA", "counter", EdgePartitioned).
		Connect("srcB", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{
		Cluster:          clu,
		State:            core.Config{Snapshots: true},
		SnapshotInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	job.Stop()

	// Whatever checkpoints landed, the final state must count all 1000
	// records exactly once.
	if job.Manager().Registry().LatestCommitted() == 0 {
		t.Skip("no checkpoint landed before the sources drained")
	}
	total := 0
	for k := 0; k < 4; k++ {
		key := fmt.Sprintf("k%d", k)
		var ok bool
		var v any
		for _, w := range job.workers {
			if w.backend != nil {
				if got, has := w.backend.Get(key); has {
					v, ok = got, true
				}
			}
		}
		if !ok {
			t.Fatalf("key %s not found in any backend", key)
		}
		total += v.(countingState).Count
	}
	if total != 1000 {
		t.Fatalf("total counted = %d, want 1000", total)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRouteKeyStable(t *testing.T) {
	p := partition.New(27)
	for _, k := range []partition.Key{"a", 5, int64(7)} {
		i1 := routeKey(p, k, 4)
		i2 := routeKey(p, k, 4)
		if i1 != i2 || i1 < 0 || i1 >= 4 {
			t.Fatalf("routeKey unstable or out of range for %v: %d, %d", k, i1, i2)
		}
	}
}
