package dataflow

import (
	"encoding/gob"
	"sort"
	"time"

	"squery/internal/partition"
)

// Event-time windowing. Sources emit watermarks — monotone lower bounds
// on future event times — downstream; operators track the minimum
// watermark across their producers and fire event-time logic when it
// advances. Window state lives in the operator's S-QUERY backend like any
// other keyed state, so open windows are live- and snapshot-queryable —
// "opening the black box" applies to in-flight aggregations too.

// WatermarkPolicy configures watermark emission for a source vertex.
type WatermarkPolicy struct {
	// Lag is subtracted from the highest event time seen: events up to
	// Lag out of order are still on time.
	Lag time.Duration
	// Every is the number of records between watermark emissions
	// (default 64).
	Every int
}

func (p WatermarkPolicy) every() int {
	if p.Every <= 0 {
		return 64
	}
	return p.Every
}

// WatermarkHandler is implemented by processors with event-time logic;
// OnWatermark fires when the operator's combined watermark advances.
type WatermarkHandler interface {
	OnWatermark(wm time.Time, emit Emit)
}

// WindowResult is the output of a closed window.
type WindowResult struct {
	Start time.Time
	End   time.Time
	Value any
}

// WindowState is the queryable per-key state of a windowing operator:
// the open (not yet fired) windows and their running aggregates. Exported
// fields make it a SQL row (openWindows column).
type WindowState struct {
	// Open maps window start (unix nanos) to the running aggregate.
	Open map[int64]any
	// OpenWindows is the number of currently open windows.
	OpenWindows int
}

func init() { gob.Register(WindowState{}) }

// TumblingWindowVertex builds a keyed event-time tumbling-window operator:
// records are assigned to [start, start+size) by their EventTime and
// reduced with `reduce` (acc is nil for the window's first record); when
// the watermark passes a window's end, one WindowResult record per key is
// emitted and the window's state is dropped. End-of-stream flushes all
// remaining windows.
func TumblingWindowVertex(name string, parallelism int, size time.Duration, reduce func(acc any, rec Record) any) *Vertex {
	return SlidingWindowVertex(name, parallelism, size, size, reduce)
}

// SlidingWindowVertex generalizes TumblingWindowVertex: windows of the
// given size start every `hop` (hop == size degenerates to tumbling; hop <
// size means each record lands in size/hop overlapping windows). hop must
// evenly divide size.
func SlidingWindowVertex(name string, parallelism int, size, hop time.Duration, reduce func(acc any, rec Record) any) *Vertex {
	if size <= 0 || hop <= 0 {
		panic("dataflow: window size and hop must be positive")
	}
	if size%hop != 0 {
		panic("dataflow: window hop must evenly divide the size")
	}
	return &Vertex{
		Name:        name,
		Kind:        KindOperator,
		Parallelism: parallelism,
		Stateful:    true,
		NewProcessor: func(ctx ProcContext) Processor {
			return &windowProc{ctx: ctx, size: size, hop: hop, reduce: reduce}
		},
	}
}

type windowProc struct {
	ctx    ProcContext
	size   time.Duration
	hop    time.Duration
	reduce func(any, Record) any
}

// windowStarts returns the starts of every window containing t: the
// newest start is t floored to the hop; earlier ones step back by hop
// while still covering t.
func (p *windowProc) windowStarts(t time.Time) []int64 {
	n := t.UnixNano()
	h := int64(p.hop)
	newest := n - (n%h+h)%h
	count := int(p.size / p.hop)
	starts := make([]int64, 0, count)
	for i := 0; i < count; i++ {
		s := newest - int64(i)*h
		if s+int64(p.size) > n { // window must still cover t
			starts = append(starts, s)
		}
	}
	return starts
}

func (p *windowProc) Process(rec Record, emit Emit) {
	st := WindowState{Open: map[int64]any{}}
	if cur, ok := p.ctx.State.Get(rec.Key); ok {
		st = cur.(WindowState)
	}
	p.copyOnWrite(&st)
	for _, start := range p.windowStarts(rec.EventTime) {
		st.Open[start] = p.reduce(st.Open[start], rec)
	}
	st.OpenWindows = len(st.Open)
	p.ctx.State.Update(rec.Key, st)
}

// copyOnWrite clones the Open map before the first mutation of this call
// so that snapshot chains holding the previous WindowState stay frozen.
func (p *windowProc) copyOnWrite(st *WindowState) {
	cp := make(map[int64]any, len(st.Open)+1)
	for k, v := range st.Open {
		cp[k] = v
	}
	st.Open = cp
}

// OnWatermark fires every window whose end is at or before the watermark,
// for every key this instance owns.
func (p *windowProc) OnWatermark(wm time.Time, emit Emit) {
	type fired struct {
		key   any
		start int64
		val   any
	}
	var all []fired
	p.ctx.State.ForEach(func(key partition.Key, value any) bool {
		st := value.(WindowState)
		for start, acc := range st.Open {
			if start+int64(p.size) <= wm.UnixNano() {
				all = append(all, fired{key: key, start: start, val: acc})
			}
		}
		return true
	})
	// Deterministic firing order: by key string then window start.
	sort.Slice(all, func(i, j int) bool {
		if all[i].start != all[j].start {
			return all[i].start < all[j].start
		}
		return lessAny(all[i].key, all[j].key)
	})
	for _, f := range all {
		cur, _ := p.ctx.State.Get(f.key)
		st := cur.(WindowState)
		cp := make(map[int64]any, len(st.Open))
		for k, v := range st.Open {
			if k != f.start {
				cp[k] = v
			}
		}
		st.Open = cp
		st.OpenWindows = len(cp)
		if st.OpenWindows == 0 {
			p.ctx.State.Delete(f.key)
		} else {
			p.ctx.State.Update(f.key, st)
		}
		emit(Record{
			Key: f.key,
			Value: WindowResult{
				Start: time.Unix(0, f.start),
				End:   time.Unix(0, f.start+int64(p.size)),
				Value: f.val,
			},
			EventTime: time.Unix(0, f.start+int64(p.size)),
		})
	}
}

// Flush closes every remaining window at end-of-stream.
func (p *windowProc) Flush(emit Emit) {
	p.OnWatermark(time.Unix(0, 1<<62), emit)
}

func lessAny(a, b any) bool {
	switch x := a.(type) {
	case int:
		if y, ok := b.(int); ok {
			return x < y
		}
	case int64:
		if y, ok := b.(int64); ok {
			return x < y
		}
	case string:
		if y, ok := b.(string); ok {
			return x < y
		}
	}
	return false
}
