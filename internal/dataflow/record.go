// Package dataflow implements the distributed stream processor S-QUERY is
// layered on — the role Hazelcast Jet plays in the paper. Jobs are DAGs of
// operators; each vertex runs as a set of parallel single-threaded
// instances scheduled co-located with the state partitions they own;
// records flow over bounded channels (backpressure); and a checkpoint
// coordinator drives the aligned-barrier snapshot protocol (Chandy–Lamport
// adapted to dataflows, §IV of the paper) with a two-phase commit whose
// latency the paper's Figures 10–12 measure.
package dataflow

import (
	"time"

	"squery/internal/partition"
	"squery/internal/trace"
)

// Record is one data item flowing through a job. Key determines routing on
// keyed edges and state addressing in stateful operators. EventTime is
// stamped at the source; sinks subtract it from the wall clock to measure
// the source→sink latency of the paper's overhead experiments. Trace is
// the record's sampled span context (zero for the unsampled majority): it
// travels with the record so every operator hop can attach a child span to
// the same end-to-end trace.
type Record struct {
	Key       partition.Key
	Value     any
	EventTime time.Time
	Trace     trace.SpanContext
}

// itemKind tags items on operator input channels: data records, checkpoint
// barriers (the paper's markers), or end-of-stream.
type itemKind uint8

const (
	kindRecord itemKind = iota
	kindBarrier
	kindEOS
	kindWatermark
)

// producerID identifies one upstream instance on one edge — barrier
// alignment counts barriers per distinct producer.
type producerID struct {
	edge     int
	instance int
}

// item is one message on an operator input channel. enq is stamped only
// for records on a sampled trace: the consuming worker subtracts it from
// the dequeue time to split queue wait from process time per hop.
type item struct {
	kind itemKind
	rec  Record
	ssid int64
	wm   time.Time
	from producerID
	enq  time.Time
}
