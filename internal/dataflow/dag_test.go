package dataflow

import (
	"testing"
)

func nopProcessor(ProcContext) Processor {
	return mapProc{fn: func(r Record) (Record, bool) { return r, true }}
}

func nopSource(instance, par int) SourceInstance { return &sliceSource{} }

func vertex(name string, kind VertexKind, par int) *Vertex {
	v := &Vertex{Name: name, Kind: kind, Parallelism: par}
	if kind == KindSource {
		v.NewSource = nopSource
	} else {
		v.NewProcessor = nopProcessor
	}
	return v
}

func TestDAGValidateOK(t *testing.T) {
	d := NewDAG().
		AddVertex(vertex("src", KindSource, 2)).
		AddVertex(vertex("op", KindOperator, 4)).
		AddVertex(vertex("sink", KindSink, 2)).
		Connect("src", "op", EdgePartitioned).
		Connect("op", "sink", EdgeRoundRobin)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Vertices()) != 3 || len(d.Edges()) != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestDAGValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		dag  *DAG
	}{
		{"empty", NewDAG()},
		{"no source", NewDAG().
			AddVertex(vertex("op", KindOperator, 1)).
			AddVertex(vertex("sink", KindSink, 1)).
			Connect("op", "sink", EdgeForward)},
		{"unknown from", NewDAG().
			AddVertex(vertex("src", KindSource, 1)).
			Connect("ghost", "src", EdgeForward)},
		{"unknown to", NewDAG().
			AddVertex(vertex("src", KindSource, 1)).
			Connect("src", "ghost", EdgeForward)},
		{"source with input", NewDAG().
			AddVertex(vertex("src", KindSource, 1)).
			AddVertex(vertex("src2", KindSource, 1)).
			Connect("src", "src2", EdgeForward)},
		{"sink with output", NewDAG().
			AddVertex(vertex("src", KindSource, 1)).
			AddVertex(vertex("sink", KindSink, 1)).
			AddVertex(vertex("op", KindOperator, 1)).
			Connect("src", "sink", EdgeForward).
			Connect("sink", "op", EdgeForward)},
		{"orphan operator", NewDAG().
			AddVertex(vertex("src", KindSource, 1)).
			AddVertex(vertex("op", KindOperator, 1))},
		{"forward parallelism mismatch", NewDAG().
			AddVertex(vertex("src", KindSource, 2)).
			AddVertex(vertex("sink", KindSink, 3)).
			Connect("src", "sink", EdgeForward)},
		{"cycle", NewDAG().
			AddVertex(vertex("src", KindSource, 1)).
			AddVertex(vertex("a", KindOperator, 1)).
			AddVertex(vertex("b", KindOperator, 1)).
			Connect("src", "a", EdgeForward).
			Connect("a", "b", EdgeForward).
			Connect("b", "a", EdgeForward)},
	}
	for _, c := range cases {
		if err := c.dag.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", c.name)
		}
	}
}

func TestDAGPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty name", func() {
		NewDAG().AddVertex(&Vertex{Name: "", Kind: KindSource, Parallelism: 1})
	})
	expectPanic("duplicate", func() {
		NewDAG().AddVertex(vertex("x", KindSource, 1)).AddVertex(vertex("x", KindSource, 1))
	})
	expectPanic("zero parallelism", func() {
		NewDAG().AddVertex(&Vertex{Name: "x", Kind: KindSource, Parallelism: 0})
	})
}

func TestMissingFactories(t *testing.T) {
	d := NewDAG().
		AddVertex(&Vertex{Name: "src", Kind: KindSource, Parallelism: 1}).
		AddVertex(vertex("sink", KindSink, 1)).
		Connect("src", "sink", EdgeForward)
	if err := d.Validate(); err == nil {
		t.Error("source without factory validated")
	}
	d2 := NewDAG().
		AddVertex(vertex("src", KindSource, 1)).
		AddVertex(&Vertex{Name: "sink", Kind: KindSink, Parallelism: 1}).
		Connect("src", "sink", EdgeForward)
	if err := d2.Validate(); err == nil {
		t.Error("sink without factory validated")
	}
}
