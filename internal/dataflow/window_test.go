package dataflow

import (
	"sync"
	"testing"
	"time"

	"squery/internal/core"
)

// windowEvents builds records with explicit event times: key k at second
// `sec` with value v.
func windowEvent(key any, sec int, v int) Record {
	return Record{Key: key, Value: v, EventTime: time.Unix(int64(sec), 0)}
}

func sumReduce(acc any, rec Record) any {
	n := 0
	if acc != nil {
		n = acc.(int)
	}
	return n + rec.Value.(int)
}

func runWindowJob(t *testing.T, recs []Record, wm *WatermarkPolicy) []Record {
	t.Helper()
	sink := &CollectSink{}
	src := SliceSource("src", 1, recs)
	src.Watermarks = wm
	dag := NewDAG().
		AddVertex(src).
		AddVertex(TumblingWindowVertex("win", 2, 10*time.Second, sumReduce)).
		AddVertex(sink.Vertex("sink", 1)).
		Connect("src", "win", EdgePartitioned).
		Connect("win", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: testCluster(), State: core.Config{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	job.Stop()
	return sink.Records()
}

func TestTumblingWindowAggregates(t *testing.T) {
	recs := []Record{
		windowEvent("a", 1, 10),
		windowEvent("a", 5, 20),
		windowEvent("b", 7, 1),
		windowEvent("a", 12, 100), // next window
		windowEvent("b", 15, 2),
		windowEvent("a", 25, 1000), // third window
	}
	out := runWindowJob(t, recs, &WatermarkPolicy{Every: 1})

	got := map[string]map[int64]int{} // key -> window start sec -> sum
	for _, r := range out {
		wr := r.Value.(WindowResult)
		k := r.Key.(string)
		if got[k] == nil {
			got[k] = map[int64]int{}
		}
		got[k][wr.Start.Unix()] = wr.Value.(int)
		if wr.End.Sub(wr.Start) != 10*time.Second {
			t.Errorf("window span = %v", wr.End.Sub(wr.Start))
		}
	}
	want := map[string]map[int64]int{
		"a": {0: 30, 10: 100, 20: 1000},
		"b": {0: 1, 10: 2},
	}
	for k, ws := range want {
		for start, sum := range ws {
			if got[k][start] != sum {
				t.Errorf("window %s@%d = %d, want %d (all: %v)", k, start, got[k][start], sum, got)
			}
		}
	}
	if len(out) != 5 {
		t.Errorf("windows fired = %d, want 5", len(out))
	}
}

func TestWindowsFireOnWatermarkBeforeEOS(t *testing.T) {
	// With watermarks every record and zero lag, the first window (ends
	// t=10) must fire as soon as an event at t >= 10 arrives — before the
	// stream ends. Use a gated source that never ends within the test.
	sink := &CollectSink{}
	cs := &timedSource{
		recs: []Record{
			windowEvent("k", 2, 5),
			windowEvent("k", 8, 7),
			windowEvent("k", 11, 1), // watermark 11 > window end 10
		},
	}
	src := &Vertex{Name: "src", Kind: KindSource, Parallelism: 1,
		Watermarks: &WatermarkPolicy{Every: 1},
		NewSource:  func(int, int) SourceInstance { return cs },
	}
	dag := NewDAG().
		AddVertex(src).
		AddVertex(TumblingWindowVertex("win", 1, 10*time.Second, sumReduce)).
		AddVertex(sink.Vertex("sink", 1)).
		Connect("src", "win", EdgePartitioned).
		Connect("win", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: testCluster()})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool { return sink.Len() >= 1 }, "first window to fire")
	wr := sink.Records()[0].Value.(WindowResult)
	if wr.Value.(int) != 12 || wr.Start.Unix() != 0 {
		t.Fatalf("fired window = %+v", wr)
	}
}

// timedSource drains its records then idles forever; Feed appends more
// records safely while the source is live.
type timedSource struct {
	mu   sync.Mutex
	recs []Record
	pos  int64
}

func (s *timedSource) Next() (Record, SourceStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(s.pos) >= len(s.recs) {
		return Record{}, SourceIdle
	}
	r := s.recs[s.pos]
	s.pos++
	return r, SourceOK
}
func (s *timedSource) Offset() int64  { s.mu.Lock(); defer s.mu.Unlock(); return s.pos }
func (s *timedSource) Rewind(o int64) { s.mu.Lock(); defer s.mu.Unlock(); s.pos = o }
func (s *timedSource) Feed(recs ...Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, recs...)
}
func (s *timedSource) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.pos) >= len(s.recs)
}

// settle waits until the pipeline is quiescent: every source has consumed
// all fed records and every worker inbox has stayed empty across several
// consecutive polls. "Nothing (more) fired" assertions then check a
// settled pipeline instead of hoping a fixed sleep outlasted delivery.
func settle(t *testing.T, j *Job, sources ...*timedSource) {
	t.Helper()
	stable := 0
	waitFor(t, func() bool {
		for _, s := range sources {
			if !s.drained() {
				stable = 0
				return false
			}
		}
		for _, w := range j.workers {
			if len(w.inbox) != 0 {
				stable = 0
				return false
			}
		}
		stable++
		return stable >= 5
	}, "pipeline to settle")
}

func TestWatermarkLagHoldsWindowsOpen(t *testing.T) {
	// With 20s lag, an event at t=25 produces watermark 5 < 10, so the
	// first window only fires at EOS flush. All windows still fire
	// exactly once overall.
	recs := []Record{
		windowEvent("k", 1, 1),
		windowEvent("k", 25, 2),
	}
	out := runWindowJob(t, recs, &WatermarkPolicy{Every: 1, Lag: 20 * time.Second})
	if len(out) != 2 {
		t.Fatalf("windows = %d, want 2", len(out))
	}
}

func TestWatermarkMinAcrossSources(t *testing.T) {
	// Two sources with different event-time progress: the combined
	// watermark is the minimum, so windows only fire once BOTH sources
	// passed them. The slow source stalls at t=3; nothing may fire until
	// it advances.
	fast := &timedSource{recs: []Record{windowEvent("a", 50, 1)}}
	slow := &timedSource{recs: []Record{windowEvent("b", 3, 1)}}
	sink := &CollectSink{}
	mk := func(name string, s *timedSource) *Vertex {
		return &Vertex{Name: name, Kind: KindSource, Parallelism: 1,
			Watermarks: &WatermarkPolicy{Every: 1},
			NewSource:  func(int, int) SourceInstance { return s },
		}
	}
	dag := NewDAG().
		AddVertex(mk("fast", fast)).
		AddVertex(mk("slow", slow)).
		AddVertex(TumblingWindowVertex("win", 1, 10*time.Second, sumReduce)).
		AddVertex(sink.Vertex("sink", 1)).
		Connect("fast", "win", EdgePartitioned).
		Connect("slow", "win", EdgePartitioned).
		Connect("win", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: testCluster()})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	// Let both events flow through: nothing must fire (combined wm = 3).
	settle(t, job, fast, slow)
	if sink.Len() != 0 {
		t.Fatalf("windows fired with held-back watermark: %v", sink.Records())
	}
	// Advance the slow source: combined watermark becomes min(50, 60) =
	// 50, so exactly the windows ending at or before 50 fire — b's
	// [0,10) — while a's [50,60) and b's [60,70) stay open.
	slow.Feed(windowEvent("b", 60, 1))
	waitFor(t, func() bool { return sink.Len() >= 1 }, "b's first window to fire")
	settle(t, job, fast, slow)
	recs := sink.Records()
	if len(recs) != 1 {
		t.Fatalf("fired %d windows, want exactly 1: %v", len(recs), recs)
	}
	if recs[0].Key != "b" || recs[0].Value.(WindowResult).Start.Unix() != 0 {
		t.Fatalf("fired window = %v", recs[0])
	}
}

func TestWindowStateIsQueryable(t *testing.T) {
	clu := testCluster()
	cs := &timedSource{recs: []Record{
		windowEvent("k1", 2, 5),
		windowEvent("k1", 12, 7), // two open windows for k1
		windowEvent("k2", 3, 1),
	}}
	src := &Vertex{Name: "src", Kind: KindSource, Parallelism: 1,
		// Large lag: windows stay open, visible in state.
		Watermarks: &WatermarkPolicy{Every: 1, Lag: time.Hour},
		NewSource:  func(int, int) SourceInstance { return cs },
	}
	dag := NewDAG().
		AddVertex(src).
		AddVertex(TumblingWindowVertex("win", 2, 10*time.Second, sumReduce)).
		AddVertex(LatencySinkVertexForTest("sink", 1)).
		Connect("src", "win", EdgePartitioned).
		Connect("win", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: clu, State: core.Config{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool {
		v, ok := clu.ClientView().Get(core.LiveMapName("win"), "k1")
		return ok && v.(WindowState).OpenWindows == 2
	}, "open windows in live state")
	v, _ := clu.ClientView().Get(core.LiveMapName("win"), "k1")
	st := v.(WindowState)
	if st.Open[0] != 5 || st.Open[10*int64(time.Second)] != 7 {
		t.Fatalf("open windows = %v", st.Open)
	}
	// A checkpoint snapshots the open windows too.
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	snap, ok := clu.ClientView().Get(core.SnapshotMapName("win"), "k1")
	if !ok {
		t.Fatal("window state missing from snapshot map")
	}
	got, ok := snap.(*core.Chain).At(1)
	if !ok || got.Value.(WindowState).OpenWindows != 2 {
		t.Fatalf("snapshot window state = %+v, %v", got, ok)
	}
}

func TestWindowVertexPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window size accepted")
		}
	}()
	TumblingWindowVertex("w", 1, 0, sumReduce)
}

func TestWindowStartNegativeTimes(t *testing.T) {
	p := &windowProc{size: 10 * time.Second, hop: 10 * time.Second}
	one := func(tt time.Time) int64 {
		starts := p.windowStarts(tt)
		if len(starts) != 1 {
			t.Fatalf("tumbling windowStarts(%v) = %v, want 1", tt, starts)
		}
		return starts[0]
	}
	if got := one(time.Unix(-3, 0)); got != -10*int64(time.Second) {
		t.Fatalf("windowStart(-3s) = %d", got)
	}
	if got := one(time.Unix(0, 0)); got != 0 {
		t.Fatalf("windowStart(0) = %d", got)
	}
	if got := one(time.Unix(10, 0)); got != 10*int64(time.Second) {
		t.Fatalf("windowStart(10s) = %d", got)
	}
}

func TestSlidingWindowsOverlap(t *testing.T) {
	// size 10s, hop 5s: an event at t=7 belongs to windows [0,10) and
	// [5,15); an event at t=2 only to [0,10) and [-5,5)... the latter
	// only if it covers t — t=2 is in [-5,5) and [0,10).
	sink := &CollectSink{}
	src := SliceSource("src", 1, []Record{
		windowEvent("k", 7, 1),
		windowEvent("k", 2, 10),
	})
	src.Watermarks = &WatermarkPolicy{Every: 1}
	dag := NewDAG().
		AddVertex(src).
		AddVertex(SlidingWindowVertex("slide", 1, 10*time.Second, 5*time.Second, sumReduce)).
		AddVertex(sink.Vertex("sink", 1)).
		Connect("src", "slide", EdgePartitioned).
		Connect("slide", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: testCluster()})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	job.Stop()

	got := map[int64]int{}
	for _, r := range sink.Records() {
		wr := r.Value.(WindowResult)
		got[wr.Start.Unix()] = wr.Value.(int)
	}
	want := map[int64]int{
		-5: 10, // covers t=2 only
		0:  11, // covers both
		5:  1,  // covers t=7 only
	}
	for start, sum := range want {
		if got[start] != sum {
			t.Errorf("window@%d = %d, want %d (all %v)", start, got[start], sum, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("windows = %v, want 3", got)
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { SlidingWindowVertex("w", 1, 10*time.Second, 3*time.Second, sumReduce) },
		func() { SlidingWindowVertex("w", 1, 10*time.Second, 0, sumReduce) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid sliding window accepted")
				}
			}()
			fn()
		}()
	}
}

func TestWindowStartsCoverEventTime(t *testing.T) {
	p := &windowProc{size: 10 * time.Second, hop: 5 * time.Second}
	for _, sec := range []int64{0, 2, 5, 7, 9, 10, 123, -3} {
		tt := time.Unix(sec, 0)
		starts := p.windowStarts(tt)
		if len(starts) == 0 {
			t.Fatalf("no windows cover t=%d", sec)
		}
		for _, s := range starts {
			if s > tt.UnixNano() || s+int64(p.size) <= tt.UnixNano() {
				t.Fatalf("window [%d,+size) does not cover t=%ds", s, sec)
			}
		}
	}
}
