package dataflow

import (
	"fmt"

	"squery/internal/core"
	"squery/internal/partition"
)

// VertexKind distinguishes the three roles a vertex can play.
type VertexKind int

// Vertex kinds.
const (
	KindSource VertexKind = iota
	KindOperator
	KindSink
)

// Vertex is one node of a job DAG.
type Vertex struct {
	Name        string
	Kind        VertexKind
	Parallelism int

	// Stateful marks the vertex as holding keyed state; the runtime
	// creates a core.Backend per instance and registers the operator
	// with the snapshot manager and query catalog.
	Stateful bool
	// StateOverride replaces the job-wide state config for this vertex
	// when non-nil (e.g. a source that snapshots offsets in blob mode
	// while operators use queryable snapshots).
	StateOverride *core.Config

	// Watermarks, when set on a source vertex, makes the runtime emit
	// event-time watermarks derived from the source's records; windowing
	// operators downstream fire on them.
	Watermarks *WatermarkPolicy

	// Exactly one of these is set, matching Kind.
	NewSource    SourceFactory
	NewProcessor ProcessorFactory
}

// EdgeKind selects the routing discipline of an edge.
type EdgeKind int

// Edge kinds.
const (
	// EdgePartitioned routes each record by the hash of its key — the
	// discipline shared with the state store, which is what lets the
	// scheduler co-locate compute with state.
	EdgePartitioned EdgeKind = iota
	// EdgeForward sends records to the same-index downstream instance
	// (requires equal parallelism upstream and downstream).
	EdgeForward
	// EdgeRoundRobin spreads records evenly without keying.
	EdgeRoundRobin
)

// Edge connects two vertices.
type Edge struct {
	From, To string
	Kind     EdgeKind
}

// DAG is a job graph under construction.
type DAG struct {
	vertices map[string]*Vertex
	order    []string
	edges    []Edge
}

// NewDAG returns an empty DAG.
func NewDAG() *DAG {
	return &DAG{vertices: make(map[string]*Vertex)}
}

// AddVertex adds a vertex; names must be unique within the DAG.
func (d *DAG) AddVertex(v *Vertex) *DAG {
	if v.Name == "" {
		panic("dataflow: vertex name must not be empty")
	}
	if _, dup := d.vertices[v.Name]; dup {
		panic(fmt.Sprintf("dataflow: duplicate vertex %q", v.Name))
	}
	if v.Parallelism < 1 {
		panic(fmt.Sprintf("dataflow: vertex %q parallelism %d", v.Name, v.Parallelism))
	}
	d.vertices[v.Name] = v
	d.order = append(d.order, v.Name)
	return d
}

// Connect adds an edge between two existing vertices.
func (d *DAG) Connect(from, to string, kind EdgeKind) *DAG {
	d.edges = append(d.edges, Edge{From: from, To: to, Kind: kind})
	return d
}

// Vertices returns the vertices in insertion order.
func (d *DAG) Vertices() []*Vertex {
	out := make([]*Vertex, len(d.order))
	for i, n := range d.order {
		out[i] = d.vertices[n]
	}
	return out
}

// Edges returns the edges in insertion order.
func (d *DAG) Edges() []Edge { return append([]Edge(nil), d.edges...) }

// Validate checks structural invariants: known endpoints, sources without
// inputs, sinks without outputs, acyclicity, every vertex reachable, and
// forward edges connecting equal parallelism.
func (d *DAG) Validate() error {
	if len(d.vertices) == 0 {
		return fmt.Errorf("dataflow: empty DAG")
	}
	in := map[string]int{}
	out := map[string]int{}
	for _, e := range d.edges {
		f, ok := d.vertices[e.From]
		if !ok {
			return fmt.Errorf("dataflow: edge from unknown vertex %q", e.From)
		}
		t, ok := d.vertices[e.To]
		if !ok {
			return fmt.Errorf("dataflow: edge to unknown vertex %q", e.To)
		}
		if e.Kind == EdgeForward && f.Parallelism != t.Parallelism {
			return fmt.Errorf("dataflow: forward edge %s->%s requires equal parallelism (%d != %d)",
				e.From, e.To, f.Parallelism, t.Parallelism)
		}
		in[e.To]++
		out[e.From]++
	}
	hasSource := false
	for name, v := range d.vertices {
		switch v.Kind {
		case KindSource:
			hasSource = true
			if in[name] > 0 {
				return fmt.Errorf("dataflow: source %q has input edges", name)
			}
			if v.NewSource == nil {
				return fmt.Errorf("dataflow: source %q has no source factory", name)
			}
		case KindSink:
			if out[name] > 0 {
				return fmt.Errorf("dataflow: sink %q has output edges", name)
			}
			if v.NewProcessor == nil {
				return fmt.Errorf("dataflow: sink %q has no processor factory", name)
			}
			if in[name] == 0 {
				return fmt.Errorf("dataflow: sink %q has no inputs", name)
			}
		default:
			if v.NewProcessor == nil {
				return fmt.Errorf("dataflow: operator %q has no processor factory", name)
			}
			if in[name] == 0 {
				return fmt.Errorf("dataflow: operator %q has no inputs", name)
			}
		}
	}
	if !hasSource {
		return fmt.Errorf("dataflow: DAG has no source vertex")
	}
	return d.checkAcyclic()
}

func (d *DAG) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	adj := map[string][]string{}
	for _, e := range d.edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	var visit func(string) error
	visit = func(n string) error {
		color[n] = gray
		for _, m := range adj[n] {
			switch color[m] {
			case gray:
				return fmt.Errorf("dataflow: cycle through %q", m)
			case white:
				if err := visit(m); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for name := range d.vertices {
		if color[name] == white {
			if err := visit(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// ProcContext is handed to processor factories when instances start.
type ProcContext struct {
	// Vertex is the vertex name.
	Vertex string
	// Instance is this instance's index in [0, Parallelism).
	Instance int
	// Parallelism of the vertex.
	Parallelism int
	// State is the instance's S-QUERY state backend; nil for stateless
	// vertices.
	State *core.Backend
}

// Emit sends a record downstream.
type Emit func(Record)

// Processor handles the records of one operator or sink instance. An
// instance is single-threaded: Process calls are never concurrent.
type Processor interface {
	Process(rec Record, emit Emit)
}

// Flusher is implemented by processors that emit residual output at
// end-of-stream.
type Flusher interface {
	Flush(emit Emit)
}

// ProcessorFactory builds a processor for one instance.
type ProcessorFactory func(ctx ProcContext) Processor

// SourceStatus is the result of one source poll.
type SourceStatus int

// Source poll outcomes.
const (
	// SourceOK: a record was produced.
	SourceOK SourceStatus = iota
	// SourceIdle: no record available right now; poll again shortly.
	// Sources must return Idle instead of blocking internally so the
	// runtime can keep injecting checkpoint barriers while they wait.
	SourceIdle
	// SourceDone: end of stream.
	SourceDone
)

// SourceInstance produces the records of one parallel source instance
// through a non-blocking poll, like Jet's cooperative source API.
// Instances must be deterministic given their offset: recovery rewinds to
// the offset captured in the last committed snapshot and replays — the
// paper's exactly-once contract (§IV).
type SourceInstance interface {
	// Next polls for the next record.
	Next() (rec Record, status SourceStatus)
	// Offset reports the replay position *after* the last record
	// returned by Next.
	Offset() int64
	// Rewind rewinds (or forwards) the instance to a prior offset.
	Rewind(offset int64)
}

// SourceFactory builds the source instance for index in [0, parallelism).
type SourceFactory func(instance, parallelism int) SourceInstance

// routeKey maps a record key to a downstream instance index on a
// partitioned edge — the same partitioner as the state layer, mod the
// vertex parallelism, keeping compute and state aligned.
func routeKey(p partition.Partitioner, key partition.Key, parallelism int) int {
	return p.Of(key) % parallelism
}
