package dataflow

import (
	"fmt"

	"squery/internal/core"
	"squery/internal/snapshot"
)

// InjectFailure crashes the running job — all workers stop where they
// stand, in-flight records and uncommitted state are lost — and then
// recovers it: every stateful instance restores from the latest committed
// snapshot, sources rewind to the offsets captured by that snapshot, and
// processing resumes. This is the paper's recovery path (§IV) and the
// mechanism behind the dirty-read demonstration of Figure 5: live state
// written after the last checkpoint vanishes, so a live query issued
// before the failure may have observed state that "never happened".
//
// It returns the snapshot id recovered to, or 0 when no snapshot had
// committed yet (the job restarts from scratch).
func (j *Job) InjectFailure() (int64, error) {
	j.mu.Lock()
	if !j.running {
		j.mu.Unlock()
		return 0, fmt.Errorf("dataflow: job is not running")
	}
	j.running = false
	close(j.killCh)
	j.stopCoordinatorLocked()
	j.mu.Unlock()

	// Wait for the crash to complete: all workers, drainers and the
	// coordinator gone — a drainer mid-write must not race the restore
	// below. An in-flight checkpoint is aborted by the coordinator when
	// it observes the closed kill channel.
	j.wg.Wait()
	j.drainWg.Wait()
	j.waitCoordinator()
	if in := j.mgr.Registry().InProgress(); in != 0 {
		j.mgr.Abort(in)
		j.ckptAborts.Add(1)
	}

	// With active standby replicas (§VII, read committed) the failure is
	// masked by promoting the replicas: no rollback, sources resume from
	// their live offsets.
	if j.cfg.State.ActiveStandby {
		j.start(0, true)
		return j.mgr.Registry().LatestCommitted(), nil
	}

	restoreSSID := j.mgr.Registry().LatestCommitted()
	if restoreSSID == snapshot.NoSnapshot {
		// Nothing ever committed: clear any live state the crashed run
		// mirrored and start over.
		j.clearLiveState()
		j.start(0, false)
		return 0, nil
	}
	j.start(restoreSSID, false)
	return restoreSSID, nil
}

// crashAndRecover realizes an injected coordinator crash between phase 1
// and commit of a checkpoint (chaos CrashPreCommit): the named cluster
// node fails with the job, then the normal crash-recovery path runs. The
// in-flight snapshot id is deliberately left open — InjectFailure's
// cleanup must abort it, proving a prepared-but-uncommitted checkpoint is
// never published. Called from the coordinator goroutine via `go` so the
// recovery's coordinator-wait does not deadlock on its own caller.
func (j *Job) crashAndRecover(node int) {
	if node >= 0 && node < j.clu.Nodes() && !j.clu.Failed(node) && len(j.clu.LiveNodes()) > 1 {
		// The error return (racing another kill for the last live node)
		// just means the node survives; the recovery below still runs.
		_ = j.clu.Fail(node)
	}
	// The error path only fires when the job already stopped for another
	// reason; the crash is then moot.
	_, _ = j.InjectFailure()
}

// clearLiveState wipes the live maps of all stateful operators; used when
// recovering a job that never committed a snapshot. ClearMap, not
// DropMap: secondary indexes created on the tables are schema and must
// survive the restart — only the data is rolled back.
func (j *Job) clearLiveState() {
	for _, meta := range j.mgr.Operators() {
		if meta.Config.Live {
			j.clu.Store().ClearMap(core.LiveMapName(meta.Name))
		}
	}
}
