package dataflow

import (
	"testing"
	"time"

	"squery/internal/chaos"
	"squery/internal/trace"
)

// spansByTrace groups the tracer's retained spans by trace id.
func spansByTrace(tr *trace.Tracer) map[uint64][]trace.SpanData {
	out := map[uint64][]trace.SpanData{}
	for _, d := range tr.Spans() {
		out[d.TraceID] = append(out[d.TraceID], d)
	}
	return out
}

func findSpan(spans []trace.SpanData, name string) (trace.SpanData, bool) {
	for _, d := range spans {
		if d.Name == name {
			return d, true
		}
	}
	return trace.SpanData{}, false
}

// TestRecordTraceEndToEnd: with 1-in-1 sampling, every record produces one
// trace whose spans chain source → counter hop → sink hop, each hop
// parented to the previous stage's span.
func TestRecordTraceEndToEnd(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1, Capacity: 4096})
	clu := testCluster()
	job, sink := runCountJob(t, clu, keyedRecords(50, 5), Config{Tracer: tr})
	job.Wait()
	defer job.Stop()
	if sink.Len() != 50 {
		t.Fatalf("sink saw %d records, want 50", sink.Len())
	}

	traces := spansByTrace(tr)
	if len(traces) != 50 {
		t.Fatalf("%d traces retained, want 50 (one per record)", len(traces))
	}
	for id, spans := range traces {
		if len(spans) != 3 {
			t.Fatalf("trace %d has %d spans %v, want 3 (source + 2 hops)", id, len(spans), spans)
		}
		src, ok := findSpan(spans, "source")
		if !ok || src.ParentID != 0 || src.Kind != trace.KindRecord || src.Vertex != "src" {
			t.Fatalf("trace %d: bad source root: %+v", id, spans)
		}
		var counterHop, sinkHop trace.SpanData
		for _, d := range spans {
			switch {
			case d.Name == "hop" && d.Vertex == "counter":
				counterHop = d
			case d.Name == "hop" && d.Vertex == "sink":
				sinkHop = d
			}
		}
		if counterHop.SpanID == 0 || sinkHop.SpanID == 0 {
			t.Fatalf("trace %d missing hop spans: %+v", id, spans)
		}
		if counterHop.ParentID != src.SpanID {
			t.Fatalf("trace %d: counter hop parent = %d, want source span %d", id, counterHop.ParentID, src.SpanID)
		}
		if sinkHop.ParentID != counterHop.SpanID {
			t.Fatalf("trace %d: sink hop parent = %d, want counter hop %d", id, sinkHop.ParentID, counterHop.SpanID)
		}
		if counterHop.QueueWait < 0 || sinkHop.QueueWait < 0 {
			t.Fatalf("trace %d: negative queue wait: %+v", id, spans)
		}
	}
}

// TestRecordTraceSampling: with 1-in-4 sampling only a quarter of the
// records trace, and unsampled records produce no hop spans at all.
func TestRecordTraceSampling(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 4, Capacity: 4096})
	clu := testCluster()
	job, _ := runCountJob(t, clu, keyedRecords(200, 10), Config{Tracer: tr})
	job.Wait()
	defer job.Stop()

	traces := spansByTrace(tr)
	if len(traces) != 50 {
		t.Fatalf("%d traces, want 200/4 = 50", len(traces))
	}
	if got := tr.Len(); got != 50*3 {
		t.Fatalf("%d spans retained, want 150 — unsampled records must not emit hops", got)
	}
}

// TestCheckpointTraceStructure: one committed checkpoint is one trace —
// root span with the snapshot id, a barrier_inject child, an align child
// per worker instance (counter ×2, sink ×1), a prepare child per stateful
// instance, and the two 2PC phase children.
func TestCheckpointTraceStructure(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1 << 20, Capacity: 4096}) // record tracing effectively off
	clu := testCluster()
	job, release := chaosJob(t, clu, []string{"src"}, 200, Config{Tracer: tr})
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() >= 100 }, "first half")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	var root trace.SpanData
	var found bool
	for _, spans := range spansByTrace(tr) {
		for _, d := range spans {
			if d.Name == "checkpoint" && d.ParentID == 0 {
				root, found = d, true
			}
		}
	}
	if !found {
		t.Fatalf("no checkpoint root span among %d spans", tr.Len())
	}
	if root.Kind != trace.KindCheckpoint || root.SSID != 1 || root.Failed {
		t.Fatalf("bad checkpoint root: %+v", root)
	}
	children := map[string]int{}
	for _, d := range spansByTrace(tr)[root.TraceID] {
		if d.SpanID == root.SpanID {
			continue
		}
		if d.ParentID != root.SpanID {
			t.Fatalf("span %+v not parented to checkpoint root %d", d, root.SpanID)
		}
		if d.SSID != 1 {
			t.Fatalf("child span %+v has ssid %d, want 1", d, d.SSID)
		}
		children[d.Name]++
	}
	// counter has 2 instances, sink 1; only counter instances have state.
	// With asynchronous phase 1 (the default), each stateful instance pins
	// its delta at the barrier ("pin"), its drainer ships it off the
	// barrier path ("drain"), and the coordinator's drain gate shows up as
	// one "drain_wait" child before phase 2.
	want := map[string]int{
		"barrier_inject": 1, "align": 3, "pin": 2, "drain": 2,
		"drain_wait": 1, "phase1": 1, "phase2": 1,
	}
	for name, n := range want {
		if children[name] != n {
			t.Fatalf("checkpoint children = %v, want %v", children, want)
		}
	}

	close(release)
	job.Wait()
}

// TestAbortedCheckpointTraceFailed: under a dropped ack the first attempt's
// trace root is marked failed, the retry's trace commits cleanly, every
// checkpoint trace has a closed root (nothing leaks), and the job's trace
// context map stays bounded.
func TestAbortedCheckpointTraceFailed(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1 << 20, Capacity: 4096})
	clu := testCluster()
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.DropAck, SSIDFrom: 1, Vertex: "counter",
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
		MaxFires: 1,
	})
	job, release := chaosJob(t, clu, []string{"src"}, 200, Config{
		CheckpointTimeout: 50 * time.Millisecond,
		CheckpointRetries: 3,
		CheckpointBackoff: 2 * time.Millisecond,
		Chaos:             inj,
		Tracer:            tr,
	})
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() >= 100 }, "first half")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	roots := map[int64]trace.SpanData{} // ssid → root
	ckptTraces := map[uint64]bool{}
	rootCount := 0
	for _, d := range tr.Spans() {
		if d.Kind != trace.KindCheckpoint {
			continue
		}
		ckptTraces[d.TraceID] = true
		if d.ParentID == 0 {
			roots[d.SSID] = d
			rootCount++
		}
	}
	if rootCount != len(ckptTraces) {
		t.Fatalf("%d checkpoint traces but %d closed roots — an attempt leaked its root span", len(ckptTraces), rootCount)
	}
	if r, ok := roots[1]; !ok || !r.Failed {
		t.Fatalf("aborted attempt's root = %+v, want failed", roots[1])
	}
	if r, ok := roots[2]; !ok || r.Failed {
		t.Fatalf("retry's root = %+v, want committed (not failed)", roots[2])
	}
	if got := job.trackedCkptTraces(); got > 8 {
		t.Fatalf("job tracks %d checkpoint trace contexts, want ≤ 8", got)
	}

	close(release)
	job.Wait()
}

// TestSupersededAlignmentSpan: when a retry's higher barrier supersedes a
// stuck alignment, the abandoned round's partial wait is closed as a
// failed align_superseded span on the aborted attempt's trace.
func TestSupersededAlignmentSpan(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1 << 20, Capacity: 4096})
	clu := testCluster()
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.DropBarrier, SSIDFrom: 1, Vertex: "srcB",
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
		MaxFires: 1,
	})
	job, release := chaosJob(t, clu, []string{"srcA", "srcB"}, 200, Config{
		CheckpointTimeout: 50 * time.Millisecond,
		CheckpointRetries: 3,
		CheckpointBackoff: 2 * time.Millisecond,
		Chaos:             inj,
		Tracer:            tr,
	})
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() >= 200 }, "both halves before the gate")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	var aborted trace.SpanData
	for _, d := range tr.Spans() {
		if d.Name == "checkpoint" && d.SSID == 1 {
			aborted = d
		}
	}
	if aborted.SpanID == 0 || !aborted.Failed {
		t.Fatalf("aborted root = %+v, want failed checkpoint ssid=1", aborted)
	}
	superseded := 0
	for _, d := range tr.Spans() {
		if d.Name != "align_superseded" {
			continue
		}
		superseded++
		if d.TraceID != aborted.TraceID || !d.Failed || d.SSID != 1 {
			t.Fatalf("align_superseded span %+v not attached to aborted trace %d", d, aborted.TraceID)
		}
	}
	if superseded == 0 {
		t.Fatal("no align_superseded span recorded for the stuck alignment")
	}

	close(release)
	job.Wait()
}
