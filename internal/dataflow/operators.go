package dataflow

import (
	"sync"
	"time"

	"squery/internal/metrics"
)

// This file provides the built-in vertices jobs are assembled from: map /
// filter operators, the keyed stateful-map operator backing every stateful
// computation in the workloads, and the standard sinks and sources used by
// the experiments.

// MapVertex builds a stateless operator applying fn to every record.
// Returning ok=false drops the record (filtering).
func MapVertex(name string, parallelism int, fn func(Record) (Record, bool)) *Vertex {
	return &Vertex{
		Name:        name,
		Kind:        KindOperator,
		Parallelism: parallelism,
		NewProcessor: func(ProcContext) Processor {
			return mapProc{fn: fn}
		},
	}
}

type mapProc struct {
	fn func(Record) (Record, bool)
}

func (p mapProc) Process(rec Record, emit Emit) {
	if out, ok := p.fn(rec); ok {
		emit(out)
	}
}

// StatefulMapVertex builds the canonical stateful keyed operator: for each
// record, fn receives the current state for the record's key (nil at
// first) and returns the new state plus zero or more output records. The
// state lives in the S-QUERY backend, making it live- and
// snapshot-queryable under the vertex name.
func StatefulMapVertex(name string, parallelism int, fn func(state any, rec Record) (newState any, out []Record)) *Vertex {
	return &Vertex{
		Name:        name,
		Kind:        KindOperator,
		Parallelism: parallelism,
		Stateful:    true,
		NewProcessor: func(ctx ProcContext) Processor {
			return &statefulMapProc{ctx: ctx, fn: fn}
		},
	}
}

type statefulMapProc struct {
	ctx ProcContext
	fn  func(any, Record) (any, []Record)
}

func (p *statefulMapProc) Process(rec Record, emit Emit) {
	cur, _ := p.ctx.State.Get(rec.Key)
	next, outs := p.fn(cur, rec)
	if next == nil {
		p.ctx.State.Delete(rec.Key)
	} else {
		p.ctx.State.Update(rec.Key, next)
	}
	for _, o := range outs {
		emit(o)
	}
}

// SinkVertex builds a sink from a per-record function.
func SinkVertex(name string, parallelism int, fn func(Record)) *Vertex {
	return &Vertex{
		Name:        name,
		Kind:        KindSink,
		Parallelism: parallelism,
		NewProcessor: func(ProcContext) Processor {
			return sinkProc{fn: fn}
		},
	}
}

type sinkProc struct {
	fn func(Record)
}

func (p sinkProc) Process(rec Record, _ Emit) { p.fn(rec) }

// LatencySinkVertex builds the measurement sink of the overhead
// experiments: it records source→sink latency for every arriving record.
func LatencySinkVertex(name string, parallelism int, hist *metrics.Histogram) *Vertex {
	return SinkVertex(name, parallelism, func(rec Record) {
		hist.Record(time.Since(rec.EventTime))
	})
}

// CollectSink gathers records for test assertions.
type CollectSink struct {
	mu   sync.Mutex
	recs []Record
}

// Vertex returns a sink vertex feeding this collector.
func (c *CollectSink) Vertex(name string, parallelism int) *Vertex {
	return SinkVertex(name, parallelism, func(rec Record) {
		c.mu.Lock()
		c.recs = append(c.recs, rec)
		c.mu.Unlock()
	})
}

// Records returns a copy of the collected records.
func (c *CollectSink) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.recs...)
}

// Len returns the number of collected records.
func (c *CollectSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// SliceSource builds a finite, replayable source vertex that partitions a
// fixed record slice over its instances round-robin. Rewind support makes
// it exactly-once under recovery.
func SliceSource(name string, parallelism int, recs []Record) *Vertex {
	return &Vertex{
		Name:        name,
		Kind:        KindSource,
		Parallelism: parallelism,
		NewSource: func(instance, par int) SourceInstance {
			var own []Record
			for i := instance; i < len(recs); i += par {
				own = append(own, recs[i])
			}
			return &sliceSource{recs: own}
		},
	}
}

type sliceSource struct {
	recs []Record
	pos  int64
}

func (s *sliceSource) Next() (Record, SourceStatus) {
	if int(s.pos) >= len(s.recs) {
		return Record{}, SourceDone
	}
	r := s.recs[s.pos]
	s.pos++
	return r, SourceOK
}

func (s *sliceSource) Offset() int64  { return s.pos }
func (s *sliceSource) Rewind(o int64) { s.pos = o }

// GeneratorSource builds a deterministic, possibly infinite source: gen
// produces the record at sequence seq for this instance (ok=false ends the
// stream). Determinism in seq is what makes recovery exactly-once. A
// non-positive rate means unthrottled; otherwise each instance emits at
// most `rate` records per second, and Throttled sources measure offered
// load for the sustainable-throughput experiments.
func GeneratorSource(name string, parallelism int, rate float64, gen func(instance int, seq int64) (Record, bool)) *Vertex {
	return &Vertex{
		Name:        name,
		Kind:        KindSource,
		Parallelism: parallelism,
		NewSource: func(instance, par int) SourceInstance {
			return &genSource{instance: instance, rate: rate, gen: gen}
		},
	}
}

type genSource struct {
	instance int
	rate     float64
	gen      func(int, int64) (Record, bool)
	seq      int64
	started  time.Time
}

func (g *genSource) Next() (Record, SourceStatus) {
	var due time.Time
	if g.rate > 0 {
		if g.started.IsZero() {
			g.started = time.Now()
		}
		// Pace to the configured rate: the seq-th record is due at
		// started + seq/rate. Report Idle (rather than sleeping) while
		// it is not due, so barriers keep flowing.
		due = g.started.Add(time.Duration(float64(g.seq) / g.rate * float64(time.Second)))
		if time.Until(due) > 0 {
			return Record{}, SourceIdle
		}
	}
	rec, ok := g.gen(g.instance, g.seq)
	if !ok {
		return Record{}, SourceDone
	}
	// Coordinated-omission safety: latency is measured from the record's
	// *scheduled* emission time, not from whenever the backpressured
	// source got around to producing it — a stalled pipeline shows up as
	// tail latency instead of silently pausing the latency clock.
	if !due.IsZero() && rec.EventTime.IsZero() {
		rec.EventTime = due
	}
	g.seq++
	return rec, SourceOK
}

func (g *genSource) Offset() int64  { return g.seq }
func (g *genSource) Rewind(o int64) { g.seq = o }
