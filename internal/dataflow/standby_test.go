package dataflow

import (
	"testing"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/kv"
)

// liveTotal sums the counter state across keys via the live map.
func liveTotal(clu *cluster.Cluster) int {
	total := 0
	clu.ClientView().Scan(core.LiveMapName("counter"), func(e kv.Entry) bool {
		total += e.Value.(countingState).Count
		return true
	})
	return total
}

// TestStandbyFailoverNoRollback exercises the §VII read-committed setup:
// with active standby replicas, a failure promotes the replica instead of
// rolling back to the last checkpoint, so observed state never regresses.
func TestStandbyFailoverNoRollback(t *testing.T) {
	clu := testCluster()
	const perInstance = 300
	// Throttled so the stream outlives the mid-stream checkpoint and
	// failure injection below.
	src := GeneratorSource("src", 2, 2000, func(instance int, seq int64) (Record, bool) {
		if seq >= perInstance {
			return Record{}, false
		}
		return Record{Key: int(seq % 10), Value: seq}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("counter", 2, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 2)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{
		Cluster: clu,
		State:   core.Config{Live: true, Snapshots: true, ActiveStandby: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() > 50 }, "records flowing")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.SourceMeter().Count() > 200 }, "more records")

	// Observe live totals just before the crash.
	before := liveTotal(clu)

	if _, err := job.InjectFailure(); err != nil {
		t.Fatal(err)
	}
	// Promoted state must not be behind what was already observable: no
	// rollback means no dirty reads.
	after := liveTotal(clu)
	if after < before {
		t.Fatalf("live state regressed after standby failover: %d -> %d", before, after)
	}
	job.Wait()

	// The final total can be at most the full stream (no duplicates) and
	// must include everything processed before the crash.
	final := liveTotal(clu)
	if final > perInstance*2 {
		t.Fatalf("duplicates after failover: total %d > %d", final, perInstance*2)
	}
	if final < before {
		t.Fatalf("final total %d below pre-crash observation %d", final, before)
	}
}
