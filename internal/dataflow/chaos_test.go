package dataflow

import (
	"errors"
	"testing"
	"time"

	"squery/internal/chaos"
	"squery/internal/cluster"
	"squery/internal/core"
)

// chaosJob builds the standard chaos fixture: a gated source per name
// (emits half its records, idles until release, emits the rest) feeding a
// stateful counter and a sink. Gated sources stay responsive to barriers
// while idle, so checkpoints keep flowing at the gate.
func chaosJob(t *testing.T, clu *cluster.Cluster, sources []string, perSource int, cfg Config) (*Job, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	dag := NewDAG()
	for _, name := range sources {
		total := int64(perSource)
		dag.AddVertex(&Vertex{
			Name: name, Kind: KindSource, Parallelism: 1,
			NewSource: func(instance, par int) SourceInstance {
				return &gatedSource{release: release, total: total}
			},
		})
	}
	dag.AddVertex(StatefulMapVertex("counter", 2, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 1))
	for _, name := range sources {
		dag.Connect(name, "counter", EdgePartitioned)
	}
	dag.Connect("counter", "sink", EdgePartitioned)
	cfg.Cluster = clu
	if cfg.State.Snapshots == false && cfg.State.Live == false {
		cfg.State = core.Config{Live: true, Snapshots: true}
	}
	job, err := Run(dag, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return job, release
}

// waitLiveCounts polls until every key 0..9 reaches the expected final
// live count — the eventual exactly-once check (a lost record never gets
// there; a duplicated record overshoots and never equals it either).
func waitLiveCounts(t *testing.T, clu *cluster.Cluster, want int) {
	t.Helper()
	waitFor(t, func() bool {
		for k := 0; k < 10; k++ {
			v, ok := clu.ClientView().Get(core.LiveMapName("counter"), k)
			if !ok || v.(countingState).Count != want {
				return false
			}
		}
		return true
	}, "exactly-once final counts")
}

// TestAckLossAbortsAndRetries: a checkpoint that loses one worker ack must
// abort when its phase-1 deadline expires, retry with backoff under a
// fresh snapshot id, and commit; the aborted id is never queryable and no
// record is lost or duplicated.
func TestAckLossAbortsAndRetries(t *testing.T) {
	clu := testCluster()
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.DropAck, SSIDFrom: 1, Vertex: "counter",
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
		MaxFires: 1,
	})
	job, release := chaosJob(t, clu, []string{"src"}, 200, Config{
		CheckpointTimeout: 50 * time.Millisecond,
		CheckpointRetries: 3,
		CheckpointBackoff: 2 * time.Millisecond,
		Chaos:             inj,
	})
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() >= 100 }, "first half")
	start := time.Now()
	if err := job.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint did not survive the dropped ack: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("checkpoint committed in %s — the deadline never fired", d)
	}
	if got := job.CheckpointAborts(); got != 1 {
		t.Fatalf("aborts = %d, want 1", got)
	}
	reg := job.Manager().Registry()
	if reg.LatestCommitted() != 2 {
		t.Fatalf("latest committed = %d, want 2 (retry id)", reg.LatestCommitted())
	}
	if reg.IsQueryable(1) {
		t.Fatal("aborted checkpoint 1 is queryable")
	}
	if inj.Fired(chaos.DropAck) != 1 {
		t.Fatalf("drop-ack fired %d times, want 1", inj.Fired(chaos.DropAck))
	}

	close(release)
	job.Wait()
	waitLiveCounts(t, clu, 20) // 200 records, keys 0..9
}

// TestBarrierDropSupersededByRetry: dropping the coordinator's barrier to
// one of two sources leaves downstream workers partially aligned forever;
// the deadline aborts, and the retry's higher barrier must supersede the
// stuck alignment (stash released, alignment restarted) and commit.
func TestBarrierDropSupersededByRetry(t *testing.T) {
	clu := testCluster()
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.DropBarrier, SSIDFrom: 1, Vertex: "srcB",
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
		MaxFires: 1,
	})
	job, release := chaosJob(t, clu, []string{"srcA", "srcB"}, 200, Config{
		CheckpointTimeout: 50 * time.Millisecond,
		CheckpointRetries: 3,
		CheckpointBackoff: 2 * time.Millisecond,
		Chaos:             inj,
	})
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() >= 200 }, "both halves before the gate")
	if err := job.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint did not survive the dropped barrier: %v", err)
	}
	if got := job.CheckpointAborts(); got != 1 {
		t.Fatalf("aborts = %d, want 1", got)
	}
	reg := job.Manager().Registry()
	if reg.LatestCommitted() != 2 || reg.IsQueryable(1) {
		t.Fatalf("latest = %d, queryable(1) = %v; want 2, false",
			reg.LatestCommitted(), reg.IsQueryable(1))
	}

	close(release)
	job.Wait()
	waitLiveCounts(t, clu, 40) // 2 sources x 200 records, keys 0..9
}

// TestPreCommitCrashNeverPublishes: the coordinator dies between phase 1
// and commit, taking a cluster node with it (the mid-checkpoint node crash
// of the acceptance criteria). The prepared snapshot must never become
// queryable, recovery must abort it exactly once, and a later checkpoint
// commits with exactly-once state intact.
func TestPreCommitCrashNeverPublishes(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.CrashPreCommit, SSIDFrom: 1,
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any,
		CrashNode: 1, MaxFires: 1,
	})
	job, release := chaosJob(t, clu, []string{"src"}, 200, Config{Chaos: inj})
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceMeter().Count() >= 100 }, "first half")
	if err := job.CheckpointNow(); err == nil {
		t.Fatal("checkpoint committed despite the injected pre-commit crash")
	}
	// Recovery runs asynchronously: wait for the node failure, for the
	// in-flight snapshot id to be aborted, and for the restart to finish
	// (running only flips back to true at the end of start()).
	reg := job.Manager().Registry()
	waitFor(t, func() bool {
		job.mu.Lock()
		restarted := job.running
		job.mu.Unlock()
		return clu.Failed(1) && reg.InProgress() == 0 && restarted
	}, "crash recovery")
	if reg.IsQueryable(1) || reg.LatestCommitted() != 0 {
		t.Fatalf("crashed checkpoint published: queryable(1)=%v latest=%d",
			reg.IsQueryable(1), reg.LatestCommitted())
	}
	if got := job.CheckpointAborts(); got != 1 {
		t.Fatalf("aborts = %d, want exactly 1", got)
	}

	// The recovered job checkpoints normally.
	if err := job.CheckpointNow(); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	if reg.LatestCommitted() == 0 {
		t.Fatal("no checkpoint committed after recovery")
	}
	close(release)
	waitLiveCounts(t, clu, 20)
}

// TestConcurrentCheckpointNow: a second CheckpointNow while one is in
// flight must fail fast with the typed error instead of racing the first
// caller for acks (satellite: explicit mutex guard).
func TestConcurrentCheckpointNow(t *testing.T) {
	clu := testCluster()
	job, release := chaosJob(t, clu, []string{"src"}, 100, Config{})
	defer job.Stop()
	waitFor(t, func() bool { return job.SourceMeter().Count() >= 50 }, "first half")

	job.ckptMu.Lock() // stand in for a caller mid-checkpoint
	err := job.CheckpointNow()
	job.ckptMu.Unlock()
	if !errors.Is(err, ErrConcurrentCheckpoint) {
		t.Fatalf("concurrent CheckpointNow = %v, want ErrConcurrentCheckpoint", err)
	}
	// Once the first caller is done the guard releases.
	if err := job.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint after guard released: %v", err)
	}
	close(release)
	job.Wait()
}

// TestDuplicatedAckIsDeduped: an ack delivered twice must not let a
// checkpoint commit before every instance actually prepared.
func TestDuplicatedAckIsDeduped(t *testing.T) {
	clu := testCluster()
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.DupAck, Vertex: "counter",
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
	})
	job, release := chaosJob(t, clu, []string{"src"}, 200, Config{Chaos: inj})
	defer job.Stop()
	waitFor(t, func() bool { return job.SourceMeter().Count() >= 100 }, "first half")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if aborts := job.CheckpointAborts(); aborts != 0 {
		t.Fatalf("aborts = %d, want 0", aborts)
	}
	close(release)
	job.Wait()
	waitLiveCounts(t, clu, 20)
}
