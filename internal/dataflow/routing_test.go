package dataflow

import (
	"sync"
	"testing"

	"squery/internal/core"
)

// recordingProc notes which instance processed each key.
type recordingProc struct {
	mu       *sync.Mutex
	seen     map[any][]int
	instance int
}

func (p recordingProc) Process(rec Record, emit Emit) {
	p.mu.Lock()
	p.seen[rec.Key] = append(p.seen[rec.Key], p.instance)
	p.mu.Unlock()
	emit(rec)
}

func runRoutingJob(t *testing.T, kind EdgeKind, par int, recs []Record) map[any][]int {
	t.Helper()
	mu := &sync.Mutex{}
	seen := map[any][]int{}
	dag := NewDAG().
		AddVertex(SliceSource("src", par, recs)).
		AddVertex(&Vertex{
			Name: "op", Kind: KindOperator, Parallelism: par,
			NewProcessor: func(ctx ProcContext) Processor {
				return recordingProc{mu: mu, seen: seen, instance: ctx.Instance}
			},
		}).
		AddVertex(LatencySinkVertexForTest("sink", par)).
		Connect("src", "op", kind).
		Connect("op", "sink", EdgeRoundRobin)
	job, err := Run(dag, Config{Cluster: testCluster()})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	job.Stop()
	mu.Lock()
	defer mu.Unlock()
	out := map[any][]int{}
	for k, v := range seen {
		out[k] = append([]int(nil), v...)
	}
	return out
}

func TestPartitionedRoutingIsSticky(t *testing.T) {
	recs := keyedRecords(200, 10)
	seen := runRoutingJob(t, EdgePartitioned, 4, recs)
	if len(seen) != 10 {
		t.Fatalf("keys seen = %d", len(seen))
	}
	for k, insts := range seen {
		first := insts[0]
		for _, i := range insts {
			if i != first {
				t.Fatalf("key %v visited instances %v — partitioned routing must be sticky", k, insts)
			}
		}
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	recs := make([]Record, 400)
	for i := range recs {
		recs[i] = Record{Key: 0, Value: i} // all the same key
	}
	seen := runRoutingJob(t, EdgeRoundRobin, 4, recs)
	counts := map[int]int{}
	for _, insts := range seen {
		for _, i := range insts {
			counts[i]++
		}
	}
	if len(counts) != 4 {
		t.Fatalf("round-robin used %d instances, want 4", len(counts))
	}
	for inst, n := range counts {
		if n < 50 {
			t.Errorf("instance %d got only %d records", inst, n)
		}
	}
}

func TestForwardRoutingPreservesInstance(t *testing.T) {
	// With a forward edge, records stay on the same instance index as
	// their source instance. SliceSource partitions its slice round-
	// robin over instances, so instance i holds records i, i+par, ...
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{Key: i, Value: i}
	}
	par := 4
	seen := runRoutingJob(t, EdgeForward, par, recs)
	for k, insts := range seen {
		want := k.(int) % par
		for _, got := range insts {
			if got != want {
				t.Fatalf("key %v processed by instance %d, want %d", k, got, want)
			}
		}
	}
}

// flushingProc counts records and emits the count at end-of-stream.
type flushingProc struct {
	n int
}

func (p *flushingProc) Process(rec Record, emit Emit) { p.n++ }
func (p *flushingProc) Flush(emit Emit) {
	emit(Record{Key: "total", Value: p.n})
}

func TestFlusherRunsAtEOS(t *testing.T) {
	sink := &CollectSink{}
	dag := NewDAG().
		AddVertex(SliceSource("src", 1, keyedRecords(25, 5))).
		AddVertex(&Vertex{
			Name: "op", Kind: KindOperator, Parallelism: 1,
			NewProcessor: func(ProcContext) Processor { return &flushingProc{} },
		}).
		AddVertex(sink.Vertex("sink", 1)).
		Connect("src", "op", EdgePartitioned).
		Connect("op", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: testCluster()})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	job.Stop()
	recs := sink.Records()
	if len(recs) != 1 || recs[0].Value != 25 {
		t.Fatalf("flush output = %v", recs)
	}
}

func TestStateOverridePerVertex(t *testing.T) {
	clu := testCluster()
	// Job default disables everything; the override enables live state
	// for just one vertex.
	override := &core.Config{Live: true}
	v := StatefulMapVertex("overridden", 1, countFn)
	v.StateOverride = override
	dag := NewDAG().
		AddVertex(SliceSource("src", 1, keyedRecords(10, 2))).
		AddVertex(v).
		AddVertex(StatefulMapVertex("plain", 1, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 1)).
		Connect("src", "overridden", EdgePartitioned).
		Connect("overridden", "plain", EdgePartitioned).
		Connect("plain", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: clu})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	job.Stop()
	if clu.Store().GetMap(core.LiveMapName("overridden")).Size() == 0 {
		t.Error("override vertex has no live state")
	}
	if clu.Store().HasMap(core.LiveMapName("plain")) && clu.Store().GetMap(core.LiveMapName("plain")).Size() > 0 {
		t.Error("plain vertex unexpectedly mirrored live state")
	}
}
