package dataflow

import (
	"sync/atomic"
	"time"

	"squery/internal/core"
	"squery/internal/trace"
)

// edgeOut is the output side of one edge for one upstream instance.
type edgeOut struct {
	kind    EdgeKind
	targets []chan item
	prod    producerID
	rr      int
}

// worker runs one instance of an operator or sink vertex: a single
// goroutine consuming a bounded inbox, aligning checkpoint barriers, and
// snapshotting its state backend at each checkpoint.
type worker struct {
	job       *Job
	vertex    string
	instance  int
	node      int // cluster node the instance is scheduled on
	inbox     chan item
	producers int
	outs      []*edgeOut
	proc      Processor
	backend   *core.Backend
	drain     *drainer // nil in SyncPhase1 mode (and for stateless workers)
	killCh    chan struct{}
	ins       opInstruments

	// Barrier alignment state (§IV, Figure 3): producers that already
	// delivered the current barrier are "aligned"; their subsequent
	// items are stashed until the snapshot completes.
	aligned      map[producerID]bool
	alignedCount int
	curSSID      int64
	lastCkpt     int64 // highest ssid this instance has prepared
	stash        []item
	eos          map[producerID]bool
	killed       bool
	// barrierStart is when the first barrier of the in-flight alignment
	// round arrived; barrier-wait is measured from it to alignment
	// completion (the stall Figure 3's top channel pays at the marker).
	barrierStart time.Time

	// Event-time state: the last watermark received per producer and
	// the operator's combined (minimum) watermark.
	wmFrom map[producerID]time.Time
	curWM  time.Time

	// curTrace is the hop span of the traced record currently being
	// processed; emit stamps it onto outgoing records so the next hop
	// parents to this one. Only this worker's goroutine touches it.
	curTrace trace.SpanContext
}

func (w *worker) run() {
	defer w.job.wg.Done()
	for {
		select {
		case <-w.killCh:
			return
		case it := <-w.inbox:
			done := w.handle(it)
			if w.killed {
				return
			}
			if done {
				w.job.retire(w.vertex, w.instance, -1)
				return
			}
			if w.backend != nil && len(w.inbox) == 0 {
				// Quiescence flush: live-state mirroring is batched per
				// record-batch, and an empty inbox bounds how stale the
				// live map may get — a drained worker has fully mirrored.
				w.backend.Flush()
			}
		}
	}
}

// handle processes one inbox item; it reports whether the worker is done.
func (w *worker) handle(it item) bool {
	// Items from producers that already delivered the current barrier
	// wait until alignment completes (Figure 3a: the top channel at the
	// marker must wait for the bottom one).
	if w.aligned[it.from] {
		w.stash = append(w.stash, it)
		return false
	}
	switch it.kind {
	case kindRecord:
		w.ins.recordsIn.Inc()
		if g := w.ins.lastRecordUs; g != nil {
			// Idle detection: the wall-clock time of the last processed
			// record. Guarded so metrics-off runs skip the clock read.
			g.Set(time.Now().UnixMicro())
		}
		if hook := w.job.cfg.Chaos; hook != nil {
			if d := hook.StageDelay(w.vertex, w.instance, w.node); d > 0 {
				// Interruptible: a frozen stage must not hold Stop hostage
				// for the remainder of the injected delay.
				select {
				case <-time.After(d):
				case <-w.killCh:
				}
			}
		}
		tr := w.job.cfg.Tracer
		if tr == nil || !it.rec.Trace.Valid() {
			w.proc.Process(it.rec, w.emit)
			break
		}
		// Traced record: one hop span per operator instance. Queue wait
		// (enqueue→dequeue, including any alignment stall while stashed)
		// is recorded separately from process time.
		sp := tr.StartChild(it.rec.Trace, "hop", trace.KindRecord)
		sp.SetVertex(w.vertex, w.instance)
		if !it.enq.IsZero() {
			sp.SetQueueWait(time.Since(it.enq))
		}
		w.curTrace = sp.Context()
		w.proc.Process(it.rec, w.emit)
		w.curTrace = trace.SpanContext{}
		sp.End()
	case kindBarrier:
		if it.ssid <= w.lastCkpt {
			// Duplicate or stale barrier — from an aborted checkpoint that
			// this instance already superseded, or an injected duplicate.
			return false
		}
		if w.alignedCount > 0 && it.ssid > w.curSSID {
			// A higher barrier supersedes an in-flight alignment: the
			// coordinator aborted the old checkpoint (phase-1 deadline) and
			// retried under a fresh id. Release the old round's stash and
			// restart alignment — no extra control messages needed. The
			// abandoned round's partial wait is still closed as a failed
			// span so the aborted trace accounts for it.
			w.emitCkptSpan("align_superseded", w.curSSID, w.barrierStart, true)
			if done := w.resetAlignment(); done {
				return true
			}
		}
		if w.alignedCount == 0 {
			w.barrierStart = time.Now()
		}
		w.aligned[it.from] = true
		w.alignedCount++
		w.curSSID = it.ssid
		if w.alignmentComplete() {
			return w.completeCheckpoint()
		}
	case kindWatermark:
		w.handleWatermark(it)
	case kindEOS:
		w.eos[it.from] = true
		// A finished producer no longer gates the combined watermark.
		w.advanceWatermark()
		// A finished producer can no longer deliver barriers; check
		// whether it was the last straggler of an in-flight alignment.
		if w.alignedCount > 0 && w.alignmentComplete() {
			if done := w.completeCheckpoint(); done {
				return true
			}
		}
		if len(w.eos) == w.producers {
			w.finish()
			return true
		}
	}
	return false
}

// handleWatermark records a producer's watermark and advances the
// operator watermark when the minimum over live producers moves.
func (w *worker) handleWatermark(it item) {
	if w.wmFrom == nil {
		w.wmFrom = make(map[producerID]time.Time, w.producers)
	}
	if cur, ok := w.wmFrom[it.from]; !ok || it.wm.After(cur) {
		w.wmFrom[it.from] = it.wm
	}
	w.advanceWatermark()
}

func (w *worker) advanceWatermark() {
	// The combined watermark is the minimum over live producers; it can
	// only advance once every live producer has reported.
	var min time.Time
	reported := 0
	for p, t := range w.wmFrom {
		if w.eos[p] {
			continue
		}
		reported++
		if min.IsZero() || t.Before(min) {
			min = t
		}
	}
	if reported < w.producers-len(w.eos) || reported == 0 {
		return
	}
	if !min.After(w.curWM) {
		return
	}
	w.curWM = min
	w.ins.watermarkUs.Set(min.UnixMicro())
	if h, ok := w.proc.(WatermarkHandler); ok {
		h.OnWatermark(min, w.emit)
	}
	w.broadcast(item{kind: kindWatermark, wm: min})
}

// alignmentComplete reports whether every producer still alive has
// delivered the current barrier.
func (w *worker) alignmentComplete() bool {
	live := 0
	for p := range w.aligned {
		if !w.eos[p] {
			live++
		}
	}
	needed := w.producers - len(w.eos)
	return needed > 0 && live == needed || (needed == 0 && w.alignedCount > 0)
}

// completeCheckpoint runs phase 1 for this instance: snapshot the state,
// ack the coordinator, forward the barrier downstream (Figure 3c), then
// replay the stashed items. It reports whether the worker finished while
// replaying.
func (w *worker) completeCheckpoint() bool {
	w.ins.barrierWait.Record(time.Since(w.barrierStart))
	w.ins.checkpoints.Inc()
	// Per-worker alignment wait as a child of the checkpoint trace: the
	// stall Figure 3's top channel pays at the marker, per instance.
	w.emitCkptSpan("align", w.curSSID, w.barrierStart, false)
	drains := false
	if w.backend != nil {
		prepStart := time.Now()
		if w.drain != nil {
			// Asynchronous phase 1: pin the version set (cheap — no
			// serialization, no KV writes) and hand it to the drainer; the
			// coordinator gates commit on the drain acknowledgement.
			pin, err := w.backend.SnapshotPin(w.curSSID)
			if err != nil {
				panic("dataflow: snapshot pin failed: " + err.Error())
			}
			if pin != nil {
				select {
				case w.drain.queue <- pin:
					drains = true
				case <-w.killCh:
					w.killed = true
					return true
				}
			}
			w.emitCkptSpan("pin", w.curSSID, prepStart, false)
		} else {
			if _, err := w.backend.SnapshotPrepare(w.curSSID); err != nil {
				panic("dataflow: snapshot prepare failed: " + err.Error())
			}
			// State serialization (phase-1 prepare work) per instance.
			w.emitCkptSpan("prepare", w.curSSID, prepStart, false)
		}
	}
	w.job.sendAck(ack{vertex: w.vertex, instance: w.instance, ssid: w.curSSID, offset: -1, drains: drains}, w.node)
	w.broadcast(item{kind: kindBarrier, ssid: w.curSSID})
	w.lastCkpt = w.curSSID
	return w.resetAlignment()
}

// emitCkptSpan attaches a completed child span for this instance to the
// coordinator's trace for ssid. A no-op when tracing is off or the trace
// is no longer tracked (the checkpoint aborted long ago and its context
// was pruned) — late spans are dropped, never leaked.
func (w *worker) emitCkptSpan(name string, ssid int64, start time.Time, failed bool) {
	tr := w.job.cfg.Tracer
	if tr == nil {
		return
	}
	ctx, ok := w.job.ckptTraceCtx(ssid)
	if !ok {
		return
	}
	tr.Emit(trace.SpanData{
		TraceID: ctx.TraceID, SpanID: tr.NewID(), ParentID: ctx.SpanID,
		Name: name, Kind: trace.KindCheckpoint,
		Vertex: w.vertex, Instance: w.instance, SSID: ssid,
		Start: start, Dur: time.Since(start), Failed: failed,
	})
}

// resetAlignment clears the alignment state and replays the stashed items
// of the finished (or superseded) round. It reports whether the worker
// finished while replaying.
func (w *worker) resetAlignment() bool {
	w.aligned = make(map[producerID]bool)
	w.alignedCount = 0
	stash := w.stash
	w.stash = nil
	for _, it := range stash {
		if w.killed {
			return true
		}
		if done := w.handle(it); done {
			return true
		}
	}
	return false
}

// finish flushes the processor and propagates end-of-stream.
func (w *worker) finish() {
	if f, ok := w.proc.(Flusher); ok {
		f.Flush(w.emit)
	}
	if w.backend != nil {
		// Final state the processor's Flush produced must be queryable
		// after the job drains.
		w.backend.Flush()
	}
	w.broadcast(item{kind: kindEOS})
}

// emit routes one record over every out edge. Records produced while a
// traced record is being processed inherit its hop span as parent, so the
// trace follows derived records downstream.
func (w *worker) emit(rec Record) {
	w.ins.recordsOut.Inc()
	if w.curTrace.Valid() {
		rec.Trace = w.curTrace
	}
	for _, o := range w.outs {
		var t int
		switch o.kind {
		case EdgePartitioned:
			t = routeKey(w.job.part, rec.Key, len(o.targets))
		case EdgeForward:
			t = w.instance
		default:
			t = o.rr
			o.rr = (o.rr + 1) % len(o.targets)
		}
		it := item{kind: kindRecord, rec: rec, from: o.prod}
		if rec.Trace.Valid() {
			it.enq = time.Now()
		}
		w.send(o.targets[t], it)
	}
}

// broadcast sends a control item to every downstream instance of every
// out edge.
func (w *worker) broadcast(it item) {
	for _, o := range w.outs {
		it := it
		it.from = o.prod
		for _, ch := range o.targets {
			w.send(ch, it)
		}
	}
}

// send delivers an item with backpressure; a closed kill channel aborts
// the send so failure injection cannot deadlock on full queues. The fast
// path is a non-blocking send: only a full downstream inbox pays the
// blocked-send stopwatch, so an uncongested pipeline sees no extra clock
// reads.
func (w *worker) send(ch chan item, it item) {
	select {
	case ch <- it:
		return
	default:
	}
	start := time.Now()
	select {
	case ch <- it:
	case <-w.killCh:
		w.killed = true
	}
	d := time.Since(start)
	w.ins.noteBlocked(d)
	emitPressureSpan(w.job.cfg.Tracer, w.vertex, w.instance, start, d)
}

// pressureSpanMin is the blocked-send duration above which a health span
// is emitted — long stalls become visible on /tracez and sys.spans
// without flooding the ring with every brief full-buffer blip.
const pressureSpanMin = 5 * time.Millisecond

// emitPressureSpan records one blocked send as a single-span health trace.
func emitPressureSpan(tr *trace.Tracer, vertex string, instance int, start time.Time, d time.Duration) {
	if tr == nil || d < pressureSpanMin {
		return
	}
	id := tr.NewID()
	tr.Emit(trace.SpanData{
		TraceID: id, SpanID: id,
		Name: "backpressure:send", Kind: trace.KindHealth,
		Vertex: vertex, Instance: instance,
		Start: start, Dur: d,
		Note: "downstream inbox full",
	})
}

// sourceWorker drives one source instance: it pulls records, stamps event
// time, and injects checkpoint barriers on the coordinator's request.
type sourceWorker struct {
	job       *Job
	vertex    string
	instance  int
	node      int // cluster node the instance is scheduled on
	src       SourceInstance
	outs      []*edgeOut
	barrierCh chan int64
	killCh    chan struct{}
	killed    bool
	// offset mirrors the source's replay position after every record;
	// standby failover resumes from it.
	offset *atomic.Int64
	ins    opInstruments

	// Watermark emission (nil = none).
	wmPolicy *WatermarkPolicy
	maxEvent time.Time
	sinceWM  int
}

func (s *sourceWorker) run() {
	defer s.job.wg.Done()
	for {
		select {
		case <-s.killCh:
			return
		case ssid := <-s.barrierCh:
			// Phase 1 for a source: its snapshot is the replay offset.
			s.job.sendAck(ack{vertex: s.vertex, instance: s.instance, ssid: ssid, offset: s.src.Offset()}, s.node)
			s.broadcast(item{kind: kindBarrier, ssid: ssid})
		default:
			rec, st := s.src.Next()
			switch st {
			case SourceDone:
				s.drainBarriers()
				s.broadcast(item{kind: kindEOS})
				s.job.retire(s.vertex, s.instance, s.src.Offset())
				return
			case SourceIdle:
				// Stay responsive to barriers and shutdown while the
				// source has nothing to offer.
				select {
				case <-s.killCh:
					return
				case ssid := <-s.barrierCh:
					s.job.sendAck(ack{vertex: s.vertex, instance: s.instance, ssid: ssid, offset: s.src.Offset()}, s.node)
					s.broadcast(item{kind: kindBarrier, ssid: ssid})
				case <-time.After(20 * time.Microsecond):
				}
			default:
				if rec.EventTime.IsZero() {
					rec.EventTime = time.Now()
				}
				// Head sampling: 1-in-N records start a trace here; the
				// decision rides in rec.Trace so every downstream hop of a
				// sampled record traces, and no hop of an unsampled one does.
				if sp := s.job.cfg.Tracer.SampleRecordTrace("source", s.vertex, s.instance); sp != nil {
					rec.Trace = sp.Context()
					sp.End()
				}
				s.emit(rec)
				s.offset.Store(s.src.Offset())
				s.job.sourceOut.Inc()
				s.ins.recordsOut.Inc()
				if g := s.ins.lastRecordUs; g != nil {
					g.Set(time.Now().UnixMicro())
				}
				s.maybeWatermark(rec.EventTime)
			}
		}
		if s.killed {
			return
		}
	}
}

// maybeWatermark emits a watermark every policy.Every records, lagged by
// policy.Lag behind the highest event time seen.
func (s *sourceWorker) maybeWatermark(et time.Time) {
	if s.wmPolicy == nil {
		return
	}
	if et.After(s.maxEvent) {
		s.maxEvent = et
	}
	s.sinceWM++
	if s.sinceWM < s.wmPolicy.every() {
		return
	}
	s.sinceWM = 0
	wm := s.maxEvent.Add(-s.wmPolicy.Lag)
	s.ins.watermarkUs.Set(wm.UnixMicro())
	s.broadcast(item{kind: kindWatermark, wm: wm})
}

// drainBarriers acks any barrier requests that raced with end-of-stream
// so the coordinator's in-flight checkpoint can still complete.
func (s *sourceWorker) drainBarriers() {
	for {
		select {
		case ssid := <-s.barrierCh:
			s.job.sendAck(ack{vertex: s.vertex, instance: s.instance, ssid: ssid, offset: s.src.Offset()}, s.node)
			s.broadcast(item{kind: kindBarrier, ssid: ssid})
		default:
			return
		}
	}
}

func (s *sourceWorker) emit(rec Record) {
	for _, o := range s.outs {
		var t int
		switch o.kind {
		case EdgePartitioned:
			t = routeKey(s.job.part, rec.Key, len(o.targets))
		case EdgeForward:
			t = s.instance
		default:
			t = o.rr
			o.rr = (o.rr + 1) % len(o.targets)
		}
		it := item{kind: kindRecord, rec: rec, from: o.prod}
		if rec.Trace.Valid() {
			it.enq = time.Now()
		}
		s.send(o.targets[t], it)
	}
}

func (s *sourceWorker) broadcast(it item) {
	for _, o := range s.outs {
		it := it
		it.from = o.prod
		for _, ch := range o.targets {
			s.send(ch, it)
		}
	}
}

func (s *sourceWorker) send(ch chan item, it item) {
	select {
	case ch <- it:
		return
	default:
	}
	start := time.Now()
	select {
	case ch <- it:
	case <-s.killCh:
		s.killed = true
	}
	d := time.Since(start)
	s.ins.noteBlocked(d)
	emitPressureSpan(s.job.cfg.Tracer, s.vertex, s.instance, start, d)
}

// sendAck delivers a phase-1 ack to the coordinator without blocking the
// worker if the job is being torn down. The chaos hook can drop, delay or
// duplicate the ack — the control-plane message loss the checkpoint
// deadline exists to survive.
func (j *Job) sendAck(a ack, node int) {
	if hook := j.cfg.Chaos; hook != nil {
		fate := hook.AckFate(a.ssid, a.vertex, a.instance, node)
		if fate.Drop {
			return
		}
		if fate.Delay > 0 {
			// Capture the current channels: after a crash-and-restart the
			// stale goroutine must drain into the closed old kill channel,
			// not pollute the new run's ack channel.
			ackCh, killCh := j.ackCh, j.killCh
			n := 1
			if fate.Duplicate {
				n = 2
			}
			go func() {
				select {
				case <-time.After(fate.Delay):
				case <-killCh:
					return
				}
				for i := 0; i < n; i++ {
					select {
					case ackCh <- a:
					case <-killCh:
						return
					}
				}
			}()
			return
		}
		if fate.Duplicate {
			j.deliverAck(a)
		}
	}
	j.deliverAck(a)
}

func (j *Job) deliverAck(a ack) {
	select {
	case j.ackCh <- a:
	case <-j.killCh:
	}
}
