package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/persist"
	"squery/internal/trace"
)

// Config configures a job.
type Config struct {
	// Name identifies the job (used for internal KV map names).
	Name string
	// Cluster the job runs on.
	Cluster *cluster.Cluster
	// State is the default S-QUERY state configuration for stateful
	// vertices (overridable per vertex).
	State core.Config
	// SnapshotInterval is the checkpoint period; 0 disables automatic
	// checkpoints (tests drive them via CheckpointNow).
	SnapshotInterval time.Duration
	// Retention is the number of committed snapshot versions kept
	// (<1 selects the paper's default of 2).
	Retention int
	// ChannelCapacity bounds operator input queues (backpressure).
	// Default 1024.
	ChannelCapacity int
	// PersistDir, when set, writes every committed snapshot to stable
	// storage in that directory (see internal/persist) before it is
	// published. Opt-in durability; commits are O(delta) — each writes
	// only the versions minted since the last durable snapshot, with
	// periodic compaction into full segments per Persist policy.
	PersistDir string
	// Persist tunes the full-vs-delta decision of persisted commits
	// (zero value selects the defaults; see core.PersistPolicy). Only
	// meaningful with PersistDir set.
	Persist core.PersistPolicy
	// SyncPhase1 restores the synchronous checkpoint prepare: every
	// stateful instance serializes and ships its snapshot delta inside
	// the barrier stall, instead of pinning its version set and draining
	// it in the background while processing resumes. It exists as the A/B
	// baseline for `squery-bench -exp ckpt-scale`; production paths leave
	// it off (asynchronous drains, commit gated on drain completion).
	SyncPhase1 bool
	// CheckpointTimeout bounds phase 1 of every checkpoint: if the acks of
	// all live instances have not arrived within it, the checkpoint is
	// aborted and retried with exponential backoff instead of hanging
	// forever on a lost ack. 0 disables the deadline (a checkpoint then
	// waits indefinitely, the pre-chaos behavior).
	CheckpointTimeout time.Duration
	// CheckpointRetries is how many times an aborted (timed-out)
	// checkpoint is retried before the driver gives up (the ticker then
	// simply tries again at the next tick). Default 3.
	CheckpointRetries int
	// CheckpointBackoff is the base delay between checkpoint retries; it
	// doubles per attempt. Default 10ms.
	CheckpointBackoff time.Duration
	// Chaos, when set, intercepts checkpoint control-plane messages for
	// deterministic fault injection (see internal/chaos).
	Chaos ChaosHook
	// Metrics, when set, receives the job's runtime telemetry: per-instance
	// operator counters and barrier-wait/state-update histograms under the
	// "operator" subsystem, checkpoint 2PC counters and phase timings under
	// "checkpoint", and a "checkpoints" event log. Nil disables all of it
	// (instruments resolve to nil no-ops).
	Metrics *metrics.Registry
	// Tracer, when set, records causal spans: head-sampled record lineage
	// (source→every hop→sink with queue wait vs process time), one trace
	// per checkpoint 2PC (barrier injection, per-worker alignment and
	// prepare, phase-1/phase-2), and chaos annotations. Nil disables
	// tracing (all span operations are no-ops).
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.ChannelCapacity <= 0 {
		c.ChannelCapacity = 1024
	}
	if c.Name == "" {
		c.Name = "job"
	}
	if c.CheckpointRetries <= 0 {
		c.CheckpointRetries = 3
	}
	if c.CheckpointBackoff <= 0 {
		c.CheckpointBackoff = 10 * time.Millisecond
	}
	return c
}

// ack is one instance's phase-1 acknowledgement of a checkpoint barrier.
type ack struct {
	vertex   string
	instance int
	ssid     int64
	offset   int64 // source replay offset; -1 for non-sources
	// drains marks that the instance pinned its state instead of writing
	// it: a drain acknowledgement will follow, and commit must wait for
	// it.
	drains bool
}

// Job is a running dataflow job.
type Job struct {
	cfg Config
	dag *DAG
	clu *cluster.Cluster
	mgr *core.Manager

	part        partition.Partitioner
	acksNeeded  int
	statefulOps []string
	// statefulIDs holds offsetKey(vertex, instance) for every stateful
	// instance. The coordinator consults it when an instance retires
	// mid-checkpoint: a stateful instance that finishes without acking the
	// in-flight barrier takes its un-snapshotted tail state with it, so
	// the round must not commit (see checkpointOnce).
	statefulIDs map[string]bool

	phase1Hist *metrics.Histogram // barrier injection -> all prepared
	totalHist  *metrics.Histogram // barrier injection -> committed
	sourceOut  *metrics.Meter
	ckptAborts atomic.Int64 // checkpoints aborted (timeout, kill, crash)
	ckptIns    ckptInstruments

	liveOffsets sync.Map // offsetKey -> *atomic.Int64, survives restarts

	// ckptTraces maps in-flight (and recently finished) checkpoint ids to
	// their root span context so workers can attach align/prepare child
	// spans. Bounded: entries older than the last few ids are pruned, so
	// stragglers from long-aborted rounds drop their spans instead of
	// leaking map entries.
	ckptTraceMu sync.Mutex
	ckptTraces  map[int64]trace.SpanContext

	// ckptMu serializes CheckpointNow callers: a second concurrent call
	// gets ErrConcurrentCheckpoint instead of racing the first for acks.
	ckptMu sync.Mutex

	// Membership watcher: Join/Leave completions on the cluster signal
	// membershipCh (coalesced), and the watcher goroutine reschedules the
	// job over the new live topology via the recovery path.
	reschedules  atomic.Int64
	membershipCh chan struct{}
	lisID        int
	reschedStop  chan struct{}
	reschedWg    sync.WaitGroup

	mu          sync.Mutex
	running     bool
	killCh      chan struct{}
	ackCh       chan ack
	retiredCh   chan retireMsg
	drainCh     chan drainMsg
	manualCoord *coordState
	workers     []*worker
	sources     []*sourceWorker
	wg          sync.WaitGroup
	drainWg     sync.WaitGroup
	coordWg     sync.WaitGroup
	coordTkr    *time.Ticker
	stopTick    chan struct{}
}

// ckptInstruments is the coordinator's registry-backed instrument set,
// keyed ("checkpoint", <job name>). All fields are nil (no-op) when the
// job runs without a registry.
type ckptInstruments struct {
	commits *metrics.Counter
	aborts  *metrics.Counter
	retries *metrics.Counter
	phase1  *metrics.Histogram
	phase2  *metrics.Histogram
	total   *metrics.Histogram
	log     *metrics.EventLog

	// Asynchronous-drain and incremental-persistence telemetry: how long
	// pinned deltas take to land (pin -> drained), drains cancelled by
	// aborted rounds, and the cumulative segment mix the persister wrote.
	drainLag        *metrics.Histogram
	drainsAbandoned *metrics.Counter
	deltaSegs       *metrics.Counter
	fullSegs        *metrics.Counter
	compactions     *metrics.Counter
	chainLen        *metrics.Gauge
}

// opInstruments is one operator instance's registry-backed instrument set,
// keyed ("operator", "<vertex>/<instance>"). The zero value is the no-op
// set.
type opInstruments struct {
	recordsIn   *metrics.Counter
	recordsOut  *metrics.Counter
	checkpoints *metrics.Counter
	barrierWait *metrics.Histogram

	// Health plane: event-time progress and backpressure. watermarkUs and
	// lastRecordUs are written on the data path (one atomic store each);
	// the lag/depth/pressure series derived from them are registered as
	// read-time GaugeFuncs in opInstrumentsFor, so they cost nothing per
	// record and are always fresh — a frozen stage still reports growing
	// lag.
	watermarkUs   *metrics.Gauge
	lastRecordUs  *metrics.Gauge
	blockedSends  *metrics.Counter
	blockedSendNs *metrics.Counter
}

// noteBlocked records one downstream send that found the channel full,
// measured from start. Nil-safe (no-op instruments).
func (ins *opInstruments) noteBlocked(d time.Duration) {
	ins.blockedSends.Inc()
	ins.blockedSendNs.Add(d.Nanoseconds())
}

// opInstrumentsFor resolves one instance's instruments (and publishes its
// scheduled node as a gauge). Resolution happens once at (re)start so the
// data path pays one atomic op per event, never a registry lookup. inbox
// is the instance's bounded input channel (nil for sources); the derived
// depth/pressure gauges close over it, and a restart re-registers them
// over the new run's channel.
func (j *Job) opInstrumentsFor(vertex string, instance, node int, inbox chan item) opInstruments {
	reg := j.cfg.Metrics
	if reg == nil {
		return opInstruments{}
	}
	id := fmt.Sprintf("%s/%d", vertex, instance)
	reg.Gauge("operator", id, "node").Set(int64(node))
	ins := opInstruments{
		recordsIn:     reg.Counter("operator", id, "records_in"),
		recordsOut:    reg.Counter("operator", id, "records_out"),
		checkpoints:   reg.Counter("operator", id, "checkpoints"),
		barrierWait:   reg.Histogram("operator", id, "barrier_wait"),
		watermarkUs:   reg.Gauge("operator", id, "watermark_us"),
		lastRecordUs:  reg.Gauge("operator", id, "last_record_us"),
		blockedSends:  reg.Counter("operator", id, "blocked_sends"),
		blockedSendNs: reg.Counter("operator", id, "blocked_send_ns"),
	}
	wm := ins.watermarkUs
	reg.GaugeFunc("operator", id, "watermark_lag_us", func() int64 {
		w := wm.Value()
		if w == 0 {
			return 0 // no watermark yet — lag is undefined, not huge
		}
		if lag := time.Now().UnixMicro() - w; lag > 0 {
			return lag
		}
		return 0
	})
	// Blocked-send share of lifetime, in permille. The counter survives
	// restarts while the epoch resets with this resolution, so clamp.
	blockedNs := ins.blockedSendNs
	epoch := time.Now()
	blockedShare := func() int64 {
		up := time.Since(epoch).Nanoseconds()
		if up <= 0 {
			return 0
		}
		p := blockedNs.Value() * 1000 / up
		if p > 1000 {
			p = 1000
		}
		return p
	}
	reg.GaugeFunc("operator", id, "send_blocked_permille", blockedShare)
	if inbox == nil {
		// Sources have no inbox; their only pressure signal is being
		// blocked sending downstream.
		reg.Gauge("operator", id, "inbox_capacity").Set(0)
		reg.GaugeFunc("operator", id, "inbox_depth", func() int64 { return 0 })
		reg.GaugeFunc("operator", id, "pressure_permille", blockedShare)
		return ins
	}
	capacity := int64(cap(inbox))
	reg.Gauge("operator", id, "inbox_capacity").Set(capacity)
	reg.GaugeFunc("operator", id, "inbox_depth", func() int64 { return int64(len(inbox)) })
	// Pressure blames the right stage: a stalled stage's own inbox fills
	// (fill fraction), while a stage throttled by its downstream spends
	// its time in blocked sends. Either signal alone marks the stage.
	reg.GaugeFunc("operator", id, "pressure_permille", func() int64 {
		var fill int64
		if capacity > 0 {
			fill = int64(len(inbox)) * 1000 / capacity
		}
		if b := blockedShare(); b > fill {
			return b
		}
		return fill
	})
	return ins
}

// Run validates the DAG, registers its stateful operators with a fresh
// snapshot manager, and starts the job.
func Run(dag *DAG, cfg Config) (*Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("dataflow: Config.Cluster is required")
	}
	if err := dag.Validate(); err != nil {
		return nil, err
	}
	j := &Job{
		cfg:        cfg,
		dag:        dag,
		clu:        cfg.Cluster,
		mgr:        core.NewManager(cfg.Cluster.Store(), cfg.Retention),
		part:       cfg.Cluster.Partitioner(),
		phase1Hist: metrics.NewHistogram(),
		totalHist:  metrics.NewHistogram(),
		sourceOut:  metrics.NewMeter(),
	}
	if reg := cfg.Metrics; reg != nil {
		j.ckptIns = ckptInstruments{
			commits: reg.Counter("checkpoint", cfg.Name, "commits"),
			aborts:  reg.Counter("checkpoint", cfg.Name, "aborts"),
			retries: reg.Counter("checkpoint", cfg.Name, "retries"),
			phase1:  reg.Histogram("checkpoint", cfg.Name, "phase1"),
			phase2:  reg.Histogram("checkpoint", cfg.Name, "phase2"),
			total:   reg.Histogram("checkpoint", cfg.Name, "total"),
			log:     reg.Log("checkpoints", 256),

			drainLag:        reg.Histogram("checkpoint", cfg.Name, "drain_lag"),
			drainsAbandoned: reg.Counter("checkpoint", cfg.Name, "drains_abandoned"),
			deltaSegs:       reg.Counter("checkpoint", cfg.Name, "delta_segments"),
			fullSegs:        reg.Counter("checkpoint", cfg.Name, "full_segments"),
			compactions:     reg.Counter("checkpoint", cfg.Name, "compactions"),
			chainLen:        reg.Gauge("checkpoint", cfg.Name, "chain_len"),
		}
	}
	if cfg.PersistDir != "" {
		p, err := persist.Open(cfg.PersistDir)
		if err != nil {
			return nil, err
		}
		j.mgr.SetPersister(p)
		j.mgr.SetPersistPolicy(cfg.Persist)
	}
	j.statefulIDs = map[string]bool{}
	for _, v := range dag.Vertices() {
		j.acksNeeded += v.Parallelism
		if v.Stateful {
			for i := 0; i < v.Parallelism; i++ {
				j.statefulIDs[offsetKey(v.Name, i)] = true
			}
			if err := j.mgr.RegisterOperator(core.OperatorMeta{
				Name:        v.Name,
				Parallelism: v.Parallelism,
				Config:      j.stateConfigFor(v),
			}); err != nil {
				return nil, err
			}
			j.statefulOps = append(j.statefulOps, v.Name)
		}
	}
	j.start(0, false)
	// React to cluster membership changes: when a node joins or leaves
	// (and its rebalance has completed), restart the workers over the new
	// live topology so instances actually land on joined nodes and vacate
	// left ones. Node *failures* deliberately do not signal — tests and
	// operators drive that recovery explicitly (InjectFailure).
	j.membershipCh = make(chan struct{}, 1)
	j.reschedStop = make(chan struct{})
	j.lisID = j.clu.OnMembershipChange(func() {
		select {
		case j.membershipCh <- struct{}{}:
		default: // a reschedule is already pending; it will see the final topology
		}
	})
	j.reschedWg.Add(1)
	go j.watchMembership(j.reschedStop, j.membershipCh)
	return j, nil
}

// watchMembership is the goroutine that turns membership-change signals
// into reschedules. Bursts are coalesced: a Join immediately followed by
// a Leave restarts the workers once, over the final topology.
func (j *Job) watchMembership(stop, signal <-chan struct{}) {
	defer j.reschedWg.Done()
	for {
		select {
		case <-stop:
			return
		case <-signal:
		drain:
			for {
				select {
				case <-signal:
				default:
					break drain
				}
			}
			// Failure ("job is not running") only means the job stopped
			// or crashed between the signal and now; the restart that
			// follows schedules over the current topology anyway.
			_, _ = j.Reschedule()
		}
	}
}

// Reschedule gracefully restarts the job's workers over the cluster's
// current live topology. It reuses the recovery path: workers stop where
// they stand, stateful instances restore from the latest committed
// snapshot (or promote standbys), sources rewind to that snapshot's
// offsets and replay — so a reschedule is exactly-once in the same sense
// a crash-recovery is. Returns the snapshot id recovered to.
func (j *Job) Reschedule() (int64, error) {
	ssid, err := j.InjectFailure()
	if err == nil {
		j.reschedules.Add(1)
	}
	return ssid, err
}

// Reschedules returns how many times the job has been rescheduled
// (membership-triggered or explicit), across its whole life.
func (j *Job) Reschedules() int64 { return j.reschedules.Load() }

func (j *Job) stateConfigFor(v *Vertex) core.Config {
	if v.StateOverride != nil {
		return *v.StateOverride
	}
	return j.cfg.State
}

// Manager returns the job's snapshot manager (registry + pruning).
func (j *Job) Manager() *core.Manager { return j.mgr }

// StatefulOperators returns the names of the job's stateful vertices, for
// catalog registration.
func (j *Job) StatefulOperators() []string {
	return append([]string(nil), j.statefulOps...)
}

// SnapshotPhase1 returns the histogram of phase-1 (prepare) latencies.
func (j *Job) SnapshotPhase1() *metrics.Histogram { return j.phase1Hist }

// SnapshotTotal returns the histogram of full 2PC (prepare+commit)
// latencies.
func (j *Job) SnapshotTotal() *metrics.Histogram { return j.totalHist }

// SourceMeter counts records emitted by all sources.
func (j *Job) SourceMeter() *metrics.Meter { return j.sourceOut }

// start builds channels, workers and sources and launches them. When
// restoreSSID > 0, stateful instances restore their state and sources
// rewind to the offsets captured by that snapshot before processing
// begins. With standby set, instances instead promote their active
// replicas and sources resume from their live offsets — the §VII
// read-committed failover (no rollback).
func (j *Job) start(restoreSSID int64, standby bool) {
	j.mu.Lock()
	defer j.mu.Unlock()

	j.killCh = make(chan struct{})
	j.ackCh = make(chan ack, j.acksNeeded)
	j.retiredCh = make(chan retireMsg, j.acksNeeded)
	// Sized so every drainer can deposit a few acknowledgements without
	// blocking even when no coordinator is waiting (stale ones are purged
	// at the next checkpoint).
	j.drainCh = make(chan drainMsg, 4*j.acksNeeded+4)
	j.manualCoord = nil
	j.workers = nil
	j.sources = nil

	vertices := j.dag.Vertices()
	nodesOf := map[string][]int{}
	inboxes := map[string][]chan item{}
	producers := map[string]int{}
	for _, v := range vertices {
		nodesOf[v.Name] = j.clu.ScheduleInstances(v.Parallelism)
		if v.Kind != KindSource {
			chans := make([]chan item, v.Parallelism)
			for i := range chans {
				chans[i] = make(chan item, j.cfg.ChannelCapacity)
			}
			inboxes[v.Name] = chans
		}
	}
	for _, e := range j.dag.Edges() {
		producers[e.To] += j.dag.vertices[e.From].Parallelism
	}

	// Output wiring per upstream instance: one edgeOut per out-edge.
	outsFor := func(name string, instance int) []*edgeOut {
		var outs []*edgeOut
		for ei, e := range j.dag.Edges() {
			if e.From != name {
				continue
			}
			outs = append(outs, &edgeOut{
				kind:    e.Kind,
				targets: inboxes[e.To],
				prod:    producerID{edge: ei, instance: instance},
			})
		}
		return outs
	}

	offsets := map[string]int64{}
	if restoreSSID > 0 && !standby {
		offsets = j.loadOffsets(restoreSSID)
	}

	for _, v := range vertices {
		for i := 0; i < v.Parallelism; i++ {
			node := nodesOf[v.Name][i]
			var backend *core.Backend
			if v.Stateful {
				// Fenced view: every mirror batch and snapshot write carries
				// the epoch of the partition table the instance believes in,
				// so a migration or failover reseating a partition rejects
				// the instance's stale writes instead of splitting ownership.
				backend = core.NewBackend(v.Name, i, j.clu.FencedNodeView(node), j.stateConfigFor(v))
				// Report chain writes into the manager's changed-key index:
				// this is what lets persisted commits and chain pruning walk
				// only the checkpoint's delta instead of the whole map.
				backend.SetChangeNotifier(j.mgr.NoteChanged)
				if reg := j.cfg.Metrics; reg != nil {
					id := fmt.Sprintf("%s/%d", v.Name, i)
					backend.SetInstruments(
						reg.Counter("operator", id, "state_updates"),
						reg.Histogram("operator", id, "state_update"))
				}
				par := v.Parallelism
				inst := i
				ownsKey := func(k partition.Key) bool {
					return routeKey(j.part, k, par) == inst
				}
				switch {
				case standby:
					if err := backend.PromoteStandby(ownsKey); err != nil {
						panic(fmt.Sprintf("dataflow: promote %s/%d: %v", v.Name, i, err))
					}
				case restoreSSID > 0:
					if err := backend.Restore(restoreSSID, ownsKey); err != nil {
						panic(fmt.Sprintf("dataflow: restore %s/%d: %v", v.Name, i, err))
					}
				}
			}
			if v.Kind == KindSource {
				src := v.NewSource(i, v.Parallelism)
				switch {
				case standby:
					src.Rewind(j.liveOffset(v.Name, i).Load())
				case restoreSSID > 0:
					src.Rewind(offsets[offsetKey(v.Name, i)])
				}
				sw := &sourceWorker{
					job:       j,
					vertex:    v.Name,
					instance:  i,
					node:      node,
					src:       src,
					outs:      outsFor(v.Name, i),
					barrierCh: make(chan int64, 4),
					killCh:    j.killCh,
					offset:    j.liveOffset(v.Name, i),
					wmPolicy:  v.Watermarks,
					ins:       j.opInstrumentsFor(v.Name, i, node, nil),
				}
				j.sources = append(j.sources, sw)
				continue
			}
			w := &worker{
				job:       j,
				vertex:    v.Name,
				instance:  i,
				node:      node,
				inbox:     inboxes[v.Name][i],
				producers: producers[v.Name],
				outs:      outsFor(v.Name, i),
				backend:   backend,
				killCh:    j.killCh,
				aligned:   make(map[producerID]bool),
				eos:       make(map[producerID]bool),
				ins:       j.opInstrumentsFor(v.Name, i, node, inboxes[v.Name][i]),
			}
			if backend != nil && !j.cfg.SyncPhase1 {
				// Asynchronous phase 1: the worker pins at the barrier and
				// this drainer ships the pinned delta in the background.
				// Drainers live until the run's kill channel closes (not in
				// j.wg: a finite job's Wait must not hang on them).
				w.drain = &drainer{
					job: j, backend: backend,
					vertex: v.Name, instance: i, node: node,
					queue:   make(chan *core.SnapshotPin, 4),
					killCh:  j.killCh,
					drainCh: j.drainCh,
				}
				j.drainWg.Add(1)
				go w.drain.run()
			}
			w.proc = v.NewProcessor(ProcContext{
				Vertex:      v.Name,
				Instance:    i,
				Parallelism: v.Parallelism,
				State:       backend,
			})
			j.workers = append(j.workers, w)
		}
	}

	for _, w := range j.workers {
		j.wg.Add(1)
		go w.run()
	}
	for _, sw := range j.sources {
		j.wg.Add(1)
		go sw.run()
	}
	if j.cfg.SnapshotInterval > 0 {
		j.stopTick = make(chan struct{})
		j.coordTkr = time.NewTicker(j.cfg.SnapshotInterval)
		j.coordWg.Add(1)
		go j.coordinate(j.coordTkr.C, j.stopTick)
	}
	j.running = true
}

// Wait blocks until all workers have exited (finite sources drained, the
// job was stopped, or a failure was injected).
func (j *Job) Wait() { j.wg.Wait() }

// Stop terminates the job. In-flight records may be dropped; state already
// checkpointed remains queryable.
func (j *Job) Stop() {
	j.stopMembershipWatch()
	j.mu.Lock()
	if !j.running {
		j.mu.Unlock()
		return
	}
	j.running = false
	close(j.killCh)
	j.stopCoordinatorLocked()
	j.mu.Unlock()
	j.wg.Wait()
	j.drainWg.Wait()
	// A checkpoint the coordinator is mid-way through keeps writing to the
	// registry (and the persist directory) until it observes the kill; Stop
	// must not return while that is still in flight — callers are entitled
	// to tear down the persist directory the moment Stop returns.
	j.waitCoordinator()
}

// stopMembershipWatch deregisters the cluster listener and waits out the
// watcher goroutine (including a reschedule it may be mid-way through).
func (j *Job) stopMembershipWatch() {
	j.mu.Lock()
	stop := j.reschedStop
	if stop != nil {
		j.reschedStop = nil
		j.clu.RemoveMembershipListener(j.lisID)
	}
	j.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	j.reschedWg.Wait()
}

func (j *Job) stopCoordinatorLocked() {
	if j.coordTkr != nil {
		j.coordTkr.Stop()
		close(j.stopTick)
		j.coordTkr = nil
	}
}

func (j *Job) waitCoordinator() { j.coordWg.Wait() }

// Running reports whether the job's workers and coordinator are live —
// false after Stop or mid-crash-recovery. The HTTP health endpoint keys
// off it.
func (j *Job) Running() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.running
}

// noteCkptTrace registers the root span context of checkpoint ssid and
// prunes contexts more than a few ids old (snapshot ids are monotonic).
func (j *Job) noteCkptTrace(ssid int64, ctx trace.SpanContext) {
	j.ckptTraceMu.Lock()
	defer j.ckptTraceMu.Unlock()
	if j.ckptTraces == nil {
		j.ckptTraces = make(map[int64]trace.SpanContext)
	}
	j.ckptTraces[ssid] = ctx
	for id := range j.ckptTraces {
		if id <= ssid-8 {
			delete(j.ckptTraces, id)
		}
	}
}

// ckptTraceCtx looks up the trace context of checkpoint ssid.
func (j *Job) ckptTraceCtx(ssid int64) (trace.SpanContext, bool) {
	j.ckptTraceMu.Lock()
	defer j.ckptTraceMu.Unlock()
	ctx, ok := j.ckptTraces[ssid]
	return ctx, ok
}

// trackedCkptTraces reports how many checkpoint trace contexts are
// currently retained (tests assert the pruning bound holds under chaos).
func (j *Job) trackedCkptTraces() int {
	j.ckptTraceMu.Lock()
	defer j.ckptTraceMu.Unlock()
	return len(j.ckptTraces)
}

// liveOffset returns the shared live-offset cell of a source instance;
// the cell survives restarts so standby failover can resume from it.
func (j *Job) liveOffset(vertex string, instance int) *atomic.Int64 {
	key := offsetKey(vertex, instance)
	if v, ok := j.liveOffsets.Load(key); ok {
		return v.(*atomic.Int64)
	}
	v, _ := j.liveOffsets.LoadOrStore(key, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// offsetKey names one source instance in the offsets snapshot.
func offsetKey(vertex string, instance int) string {
	return fmt.Sprintf("%s/%d", vertex, instance)
}

func (j *Job) offsetsMapName() string { return "__offsets_" + j.cfg.Name }

func (j *Job) saveOffsets(ssid int64, offsets map[string]int64) {
	j.clu.Store().View(0).Put(j.offsetsMapName(), fmt.Sprintf("ss-%d", ssid), offsets)
}

func (j *Job) loadOffsets(ssid int64) map[string]int64 {
	v, ok := j.clu.Store().View(0).Get(j.offsetsMapName(), fmt.Sprintf("ss-%d", ssid))
	if !ok {
		return map[string]int64{}
	}
	return v.(map[string]int64)
}

func (j *Job) dropOffsets(ssids []int64) {
	for _, s := range ssids {
		j.clu.Store().View(0).Delete(j.offsetsMapName(), fmt.Sprintf("ss-%d", s))
	}
}
