package dataflow

import (
	"errors"
	"fmt"
	"time"

	"squery/internal/trace"
)

// The checkpoint coordinator implements the paper's snapshot protocol end
// to end: it injects barriers carrying a fresh snapshot id into every
// source (the markers of Figure 3), waits for the phase-1 ack of every
// live instance (all operators aligned and their state written to the
// state store), then commits — atomically publishing the id as the latest
// queryable snapshot and pruning evicted versions. The two latencies the
// paper plots in Figures 10–12 are measured here: injection→all-prepared
// and injection→committed.
//
// Under partial failures (see internal/chaos) the protocol must not hang:
// when Config.CheckpointTimeout is set, a checkpoint whose acks do not all
// arrive in time is aborted through the registry's Abort path and retried
// with exponential backoff under a fresh snapshot id. Workers treat a
// barrier with a higher id than their in-flight alignment as superseding
// it (the aborted round's stash is released and alignment restarts), so an
// abort needs no extra control messages.

// ErrConcurrentCheckpoint is returned by CheckpointNow when another
// CheckpointNow call is still in flight; the two would race for acks.
var ErrConcurrentCheckpoint = errors.New("dataflow: a checkpoint is already in progress")

// ckptOutcome classifies one checkpoint attempt.
type ckptOutcome int

const (
	// ckptCommitted: the snapshot was published.
	ckptCommitted ckptOutcome = iota
	// ckptAborted: the phase-1 deadline expired; the id was aborted and
	// the attempt may be retried under a fresh id.
	ckptAborted
	// ckptStopped: the job is shutting down (or crashed mid-2PC); do not
	// retry.
	ckptStopped
	// ckptSkipped: nothing to checkpoint (all instances finished) or a
	// previous checkpoint still holds the registry.
	ckptSkipped
)

// retireMsg signals that an instance exited naturally (finite source
// drained); the coordinator stops expecting acks from it. For sources the
// message carries the final replay offset, which later checkpoints must
// still record: a snapshot taken after a source drained is only a
// consistent cut if recovery knows not to replay that source from zero.
type retireMsg struct {
	id     string
	offset int64 // final source offset; -1 for non-sources
}

// coordState is the per-run bookkeeping of whichever driver runs
// checkpoints (the ticker goroutine or manual CheckpointNow calls).
type coordState struct {
	retired    map[string]bool
	srcOffsets map[string]int64 // final offsets of retired sources
}

func newCoordState() *coordState {
	return &coordState{retired: map[string]bool{}, srcOffsets: map[string]int64{}}
}

func (c *coordState) note(r retireMsg) {
	c.retired[r.id] = true
	if r.offset >= 0 {
		c.srcOffsets[r.id] = r.offset
	}
}

// coordinate is the coordinator goroutine for jobs with automatic
// checkpoints.
func (j *Job) coordinate(tick <-chan time.Time, stop <-chan struct{}) {
	defer j.coordWg.Done()
	st := newCoordState()
	for {
		select {
		case <-stop:
			return
		case <-j.killCh:
			return
		case <-tick:
			if j.checkpointWithRetry(st) == ckptStopped {
				return
			}
		}
	}
}

// CheckpointNow triggers one checkpoint synchronously and reports whether
// it committed. It is intended for jobs configured without automatic
// checkpoints (SnapshotInterval == 0); with a ticker running the two
// drivers would race for acks. Concurrent calls are serialized by an
// explicit guard: the loser returns ErrConcurrentCheckpoint immediately.
func (j *Job) CheckpointNow() error {
	if j.cfg.SnapshotInterval > 0 {
		return fmt.Errorf("dataflow: CheckpointNow is only available when SnapshotInterval is 0")
	}
	if !j.ckptMu.TryLock() {
		return ErrConcurrentCheckpoint
	}
	defer j.ckptMu.Unlock()
	j.mu.Lock()
	st := j.manualCoord
	if st == nil {
		st = newCoordState()
		j.manualCoord = st
	}
	j.mu.Unlock()
	switch out := j.checkpointWithRetry(st); out {
	case ckptCommitted:
		return nil
	case ckptAborted:
		return fmt.Errorf("dataflow: checkpoint aborted: phase-1 deadline %s exceeded %d time(s)",
			j.cfg.CheckpointTimeout, j.cfg.CheckpointRetries+1)
	default:
		return fmt.Errorf("dataflow: checkpoint did not commit (job stopping or all instances finished)")
	}
}

// CheckpointAborts returns the number of checkpoints aborted so far
// (deadline expiry, job kill, or injected crash) across the job's life,
// including restarts.
func (j *Job) CheckpointAborts() int64 { return j.ckptAborts.Load() }

// checkpointWithRetry drives one logical checkpoint: an aborted attempt
// (phase-1 deadline expired) is retried under a fresh snapshot id with
// exponential backoff, up to Config.CheckpointRetries times.
func (j *Job) checkpointWithRetry(st *coordState) ckptOutcome {
	for attempt := 0; ; attempt++ {
		out := j.checkpointOnce(st, attempt)
		if out != ckptAborted || attempt >= j.cfg.CheckpointRetries {
			return out
		}
		j.ckptIns.retries.Inc()
		backoff := j.cfg.CheckpointBackoff << attempt
		select {
		case <-time.After(backoff):
		case <-j.killCh:
			return ckptStopped
		}
	}
}

// checkpointOnce runs one full 2PC checkpoint attempt.
func (j *Job) checkpointOnce(st *coordState, attempt int) ckptOutcome {
	// Collect retirements that happened since the last checkpoint, and
	// purge drain acknowledgements left over from aborted rounds.
	j.drainRetired(st)
	j.purgeDrains()
	needed := j.acksNeeded - len(st.retired)
	if needed <= 0 {
		return ckptSkipped
	}
	// Fence the whole 2PC against partition migrations: a migration
	// committing between the prepares of two instances could move a
	// partition across the cut, counting its state twice or not at all.
	// The gate is read-side, and the rebalancer takes the write side per
	// move — so checkpoints interleave with a long rebalance move-by-move
	// instead of starving behind it.
	release := j.clu.CheckpointGate()
	defer release()
	ssid, err := j.mgr.Begin()
	if err != nil {
		// A previous checkpoint still holds the registry — either a second
		// coordinator (should not happen) or an in-flight id abandoned by
		// an injected crash that recovery has not aborted yet. Skip this
		// tick like Jet does.
		return ckptSkipped
	}

	// One trace per snapshot id: the root span covers the full 2PC;
	// barrier injection, each worker's alignment wait and prepare, and the
	// two commit phases hang off it as children. Checkpoints are rare, so
	// they bypass head sampling. Everything below is nil-safe when
	// tracing is off.
	tr := j.cfg.Tracer
	root := tr.StartTrace("checkpoint", trace.KindCheckpoint)
	root.SetVertex(j.cfg.Name, -1)
	root.SetSSID(ssid)
	if attempt > 0 {
		root.SetNote(fmt.Sprintf("retry attempt %d", attempt))
	}
	if root != nil {
		j.noteCkptTrace(ssid, root.Context())
	}
	// child emits a completed coordinator-side child span of the root.
	child := func(name string, start time.Time, dur time.Duration, vertex string, instance int, failed bool) {
		if root == nil {
			return
		}
		tr.Emit(trace.SpanData{
			TraceID: root.Context().TraceID, SpanID: tr.NewID(),
			ParentID: root.Context().SpanID,
			Name:     name, Kind: trace.KindCheckpoint,
			Vertex: vertex, Instance: instance, SSID: ssid,
			Start: start, Dur: dur, Failed: failed,
		})
	}

	// Phase-1 deadline: a nil channel never fires, so zero timeout keeps
	// the wait unbounded.
	var deadline <-chan time.Time
	if j.cfg.CheckpointTimeout > 0 {
		tm := time.NewTimer(j.cfg.CheckpointTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
	start := time.Now()
	// noteAbort rolls the in-flight id back and counts the abort; outcome
	// names why in the checkpoints event log. The trace root is closed as
	// failed — aborted checkpoints never leave an open span behind.
	noteAbort := func(outcome string) {
		j.mgr.Abort(ssid)
		j.ckptAborts.Add(1)
		j.ckptIns.aborts.Inc()
		j.ckptIns.log.Append(map[string]any{
			"job": j.cfg.Name, "ssid": ssid, "outcome": outcome,
			"attempt": attempt, "phase1Us": time.Since(start).Microseconds(),
			"totalUs": time.Since(start).Microseconds(),
		})
		root.Fail(outcome)
	}
	abort := func() ckptOutcome {
		noteAbort("aborted")
		return ckptAborted
	}
	// Inject barriers into all live sources, subject to injected faults:
	// a dropped barrier leaves the ack missing and the deadline aborts.
	j.mu.Lock()
	sources := j.sources
	j.mu.Unlock()
	hook := j.cfg.Chaos
	injStart := time.Now()
	for _, sw := range sources {
		if st.retired[offsetKey(sw.vertex, sw.instance)] {
			continue
		}
		if hook != nil {
			fate := hook.BarrierFate(ssid, sw.vertex, sw.instance, sw.node)
			if fate.Drop {
				// The fault is visible in the trace: the barrier this
				// source never saw is exactly why phase 1 will stall.
				child("barrier_dropped", time.Now(), 0, sw.vertex, sw.instance, true)
				continue
			}
			if fate.Delay > 0 {
				delayStart := time.Now()
				select {
				case <-time.After(fate.Delay):
					child("barrier_delayed", delayStart, fate.Delay, sw.vertex, sw.instance, false)
				case <-j.killCh:
					noteAbort("stopped")
					return ckptStopped
				}
			}
		}
		select {
		case sw.barrierCh <- ssid:
		case <-deadline:
			return abort()
		case <-j.killCh:
			noteAbort("stopped")
			return ckptStopped
		}
	}
	child("barrier_inject", injStart, time.Since(injStart), j.cfg.Name, -1, false)

	// Phase 1: wait for every live instance to prepare (or pin).
	offsets := map[string]int64{}
	acked := map[string]bool{}
	got := 0
	drainsExpected := 0
	for got < needed {
		select {
		case a := <-j.ackCh:
			if a.ssid != ssid {
				continue // stale ack from an aborted checkpoint
			}
			id := offsetKey(a.vertex, a.instance)
			if acked[id] {
				continue // duplicate delivery
			}
			acked[id] = true
			got++
			if a.drains {
				drainsExpected++
			}
			if a.offset >= 0 {
				offsets[id] = a.offset
			}
		case r := <-j.retiredCh:
			if !st.retired[r.id] {
				st.note(r)
				if !acked[r.id] {
					// A stateful instance that finished before acking never
					// snapshotted its tail state — the versions written since
					// the last checkpoint exist only in its (now gone) live
					// run. Publishing this cut would pair post-retirement
					// source offsets with pre-retirement state and silently
					// lose records on recovery. The instance is not coming
					// back, so a retry cannot help either: give up on the id.
					if j.statefulIDs[r.id] {
						noteAbort("stateful instance retired mid-checkpoint")
						return ckptSkipped
					}
					needed--
				}
			}
		case <-deadline:
			return abort()
		case <-j.killCh:
			noteAbort("stopped")
			return ckptStopped
		}
	}
	phase1 := time.Since(start)

	// Drain gate: instances that pinned instead of serializing resumed
	// processing at the barrier, but their deltas are still in flight —
	// commit must not publish until every drain has landed in the state
	// store. The drain wait shares the phase-1 deadline budget; a stall
	// here aborts and retries like a lost ack would.
	drained := map[string]bool{}
	deltaKeys := 0
	var drainDur time.Duration
	for drainsGot := 0; drainsGot < drainsExpected; {
		select {
		case d := <-j.drainCh:
			if d.ssid != ssid {
				continue // late drain of an aborted round
			}
			id := offsetKey(d.vertex, d.instance)
			if drained[id] {
				continue
			}
			drained[id] = true
			drainsGot++
			deltaKeys += d.written
			j.ckptIns.drainLag.Record(d.lag)
		case r := <-j.retiredCh:
			// A retiring instance's drainer outlives it (drainers are
			// job-scoped), so its expected drain still arrives; just record
			// the retirement for the next round.
			if !st.retired[r.id] {
				st.note(r)
			}
		case <-deadline:
			return abort()
		case <-j.killCh:
			noteAbort("stopped")
			return ckptStopped
		}
	}
	if drainsExpected > 0 {
		drainDur = time.Since(start) - phase1
	}

	// Injected coordinator death between phase 1 and commit: the id stays
	// in flight (recovery's cleanup aborts it — it must never publish) and
	// the job crashes, optionally taking a cluster node with it.
	if hook != nil {
		if crash, node := hook.CrashPreCommit(ssid); crash {
			// The id is aborted by recovery, not here — but the trace must
			// still close: mark the root failed so the crash is visible on
			// /tracez instead of leaving a dangling open span.
			root.Fail("crashed pre-commit")
			go j.crashAndRecover(node)
			return ckptStopped
		}
	}

	// Persist source offsets as part of the snapshot — including the
	// final offsets of sources that already drained — then phase 2:
	// atomic publication + pruning.
	for id, off := range st.srcOffsets {
		if _, live := offsets[id]; !live {
			offsets[id] = off
		}
	}
	j.saveOffsets(ssid, offsets)
	evicted := j.mgr.Commit(ssid)
	j.dropOffsets(evicted)
	total := time.Since(start)

	j.phase1Hist.Record(phase1)
	j.totalHist.Record(total)
	j.ckptIns.commits.Inc()
	j.ckptIns.phase1.Record(phase1)
	j.ckptIns.phase2.Record(total - phase1 - drainDur)
	j.ckptIns.total.Record(total)
	event := map[string]any{
		"job": j.cfg.Name, "ssid": ssid, "outcome": "committed",
		"attempt": attempt, "phase1Us": phase1.Microseconds(),
		"totalUs": total.Microseconds(),
		"drainUs": drainDur.Microseconds(), "deltaKeys": deltaKeys,
	}
	// Surface what the persisted commit wrote — segment mix, bytes,
	// chain depth — on the event log and the registry, so sys.checkpoints
	// and the obs plane see the incremental-persistence behaviour.
	if pi := j.mgr.LastPersist(); pi.SSID == ssid {
		event["persistMode"] = pi.Mode
		event["persistBytes"] = pi.Bytes
		event["persistEntries"] = pi.Entries
		event["chainLen"] = pi.MaxChainLen
		j.ckptIns.deltaSegs.Add(int64(pi.DeltaSegs))
		j.ckptIns.fullSegs.Add(int64(pi.FullSegs))
		j.ckptIns.compactions.Add(int64(pi.Compactions))
		j.ckptIns.chainLen.Set(int64(pi.MaxChainLen))
	}
	j.ckptIns.log.Append(event)
	child("phase1", start, phase1, j.cfg.Name, -1, false)
	if drainDur > 0 {
		child("drain_wait", start.Add(phase1), drainDur, j.cfg.Name, -1, false)
	}
	child("phase2", start.Add(phase1+drainDur), total-phase1-drainDur, j.cfg.Name, -1, false)
	root.End()
	return ckptCommitted
}

// purgeDrains discards drain acknowledgements queued by rounds that no
// longer matter (aborted checkpoints whose drains completed late), so
// the channel never fills between checkpoints.
func (j *Job) purgeDrains() {
	for {
		select {
		case <-j.drainCh:
		default:
			return
		}
	}
}

func (j *Job) drainRetired(st *coordState) {
	for {
		select {
		case r := <-j.retiredCh:
			st.note(r)
		default:
			return
		}
	}
}

// retire notifies the coordinator that an instance exited naturally.
// Sources pass their final offset; other instances pass -1.
func (j *Job) retire(vertex string, instance int, offset int64) {
	select {
	case j.retiredCh <- retireMsg{id: offsetKey(vertex, instance), offset: offset}:
	default:
		// Buffer full can only mean the job is tearing down.
	}
}
