package dataflow

import (
	"fmt"
	"time"
)

// The checkpoint coordinator implements the paper's snapshot protocol end
// to end: it injects barriers carrying a fresh snapshot id into every
// source (the markers of Figure 3), waits for the phase-1 ack of every
// live instance (all operators aligned and their state written to the
// state store), then commits — atomically publishing the id as the latest
// queryable snapshot and pruning evicted versions. The two latencies the
// paper plots in Figures 10–12 are measured here: injection→all-prepared
// and injection→committed.

// retireMsg signals that an instance exited naturally (finite source
// drained); the coordinator stops expecting acks from it. For sources the
// message carries the final replay offset, which later checkpoints must
// still record: a snapshot taken after a source drained is only a
// consistent cut if recovery knows not to replay that source from zero.
type retireMsg struct {
	id     string
	offset int64 // final source offset; -1 for non-sources
}

// coordState is the per-run bookkeeping of whichever driver runs
// checkpoints (the ticker goroutine or manual CheckpointNow calls).
type coordState struct {
	retired    map[string]bool
	srcOffsets map[string]int64 // final offsets of retired sources
}

func newCoordState() *coordState {
	return &coordState{retired: map[string]bool{}, srcOffsets: map[string]int64{}}
}

func (c *coordState) note(r retireMsg) {
	c.retired[r.id] = true
	if r.offset >= 0 {
		c.srcOffsets[r.id] = r.offset
	}
}

// coordinate is the coordinator goroutine for jobs with automatic
// checkpoints.
func (j *Job) coordinate(tick <-chan time.Time, stop <-chan struct{}) {
	defer j.coordWg.Done()
	st := newCoordState()
	for {
		select {
		case <-stop:
			return
		case <-j.killCh:
			return
		case <-tick:
			j.checkpointOnce(st)
		}
	}
}

// CheckpointNow triggers one checkpoint synchronously and reports whether
// it committed. It must not be called concurrently with itself and is
// intended for jobs configured without automatic checkpoints
// (SnapshotInterval == 0); with a ticker running the two drivers would
// race for acks.
func (j *Job) CheckpointNow() error {
	if j.cfg.SnapshotInterval > 0 {
		return fmt.Errorf("dataflow: CheckpointNow is only available when SnapshotInterval is 0")
	}
	j.mu.Lock()
	st := j.manualCoord
	if st == nil {
		st = newCoordState()
		j.manualCoord = st
	}
	j.mu.Unlock()
	if !j.checkpointOnce(st) {
		return fmt.Errorf("dataflow: checkpoint did not commit (job stopping or all instances finished)")
	}
	return nil
}

// checkpointOnce runs one full 2PC checkpoint. It reports whether the
// snapshot committed.
func (j *Job) checkpointOnce(st *coordState) bool {
	// Collect retirements that happened since the last checkpoint.
	j.drainRetired(st)
	needed := j.acksNeeded - len(st.retired)
	if needed <= 0 {
		return false
	}
	ssid, err := j.mgr.Begin()
	if err != nil {
		// A previous checkpoint is still in flight (should not happen
		// with a single coordinator) — skip this tick like Jet does.
		return false
	}

	start := time.Now()
	// Inject barriers into all live sources.
	j.mu.Lock()
	sources := j.sources
	j.mu.Unlock()
	for _, sw := range sources {
		if st.retired[offsetKey(sw.vertex, sw.instance)] {
			continue
		}
		select {
		case sw.barrierCh <- ssid:
		case <-j.killCh:
			j.mgr.Abort(ssid)
			return false
		}
	}

	// Phase 1: wait for every live instance to prepare.
	offsets := map[string]int64{}
	acked := map[string]bool{}
	got := 0
	for got < needed {
		select {
		case a := <-j.ackCh:
			if a.ssid != ssid {
				continue // stale ack from an aborted checkpoint
			}
			id := offsetKey(a.vertex, a.instance)
			if acked[id] {
				continue
			}
			acked[id] = true
			got++
			if a.offset >= 0 {
				offsets[id] = a.offset
			}
		case r := <-j.retiredCh:
			if !st.retired[r.id] {
				st.note(r)
				if !acked[r.id] {
					needed--
				}
			}
		case <-j.killCh:
			j.mgr.Abort(ssid)
			return false
		}
	}
	phase1 := time.Since(start)

	// Persist source offsets as part of the snapshot — including the
	// final offsets of sources that already drained — then phase 2:
	// atomic publication + pruning.
	for id, off := range st.srcOffsets {
		if _, live := offsets[id]; !live {
			offsets[id] = off
		}
	}
	j.saveOffsets(ssid, offsets)
	evicted := j.mgr.Commit(ssid)
	j.dropOffsets(evicted)
	total := time.Since(start)

	j.phase1Hist.Record(phase1)
	j.totalHist.Record(total)
	return true
}

func (j *Job) drainRetired(st *coordState) {
	for {
		select {
		case r := <-j.retiredCh:
			st.note(r)
		default:
			return
		}
	}
}

// retire notifies the coordinator that an instance exited naturally.
// Sources pass their final offset; other instances pass -1.
func (j *Job) retire(vertex string, instance int, offset int64) {
	select {
	case j.retiredCh <- retireMsg{id: offsetKey(vertex, instance), offset: offset}:
	default:
		// Buffer full can only mean the job is tearing down.
	}
}
