package dataflow

import (
	"fmt"
	"testing"
	"time"

	"squery/internal/chaos"
	"squery/internal/core"
	"squery/internal/kv"
)

// TestSnapshotIsConsistentCut verifies the serializable-isolation claim
// of §VII at the mechanism level: a committed snapshot must be a
// consistent cut across operators. Two stateful operators in series both
// count every record per key; barrier alignment guarantees that any
// committed snapshot contains exactly the same per-key counts in both
// operators — even though the operators run in different goroutines with
// queues between them. A concurrent reader continuously cross-checks the
// two snapshot tables while checkpoints race with processing.
func TestSnapshotIsConsistentCut(t *testing.T) {
	clu := testCluster()
	const perInstance = 4000
	src := GeneratorSource("src", 2, 30_000, func(instance int, seq int64) (Record, bool) {
		if seq >= perInstance {
			return Record{}, false
		}
		return Record{Key: int(seq % 16), Value: seq}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("first", 2, countFn)).
		AddVertex(StatefulMapVertex("second", 3, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 2)).
		Connect("src", "first", EdgePartitioned).
		Connect("first", "second", EdgePartitioned).
		Connect("second", "sink", EdgePartitioned)
	job, err := Run(dag, Config{
		Cluster:          clu,
		State:            core.Config{Snapshots: true},
		SnapshotInterval: 15 * time.Millisecond,
		Retention:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	// Continuously verify every queryable snapshot while the job runs.
	checked := 0
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ssid := job.Manager().Registry().LatestCommitted()
		if ssid == 0 {
			continue
		}
		// Pin the id; it may be pruned mid-scan if we fall behind, so
		// re-verify queryability afterwards and skip stale reads.
		c1 := snapshotCounts(clu, "first", ssid)
		c2 := snapshotCounts(clu, "second", ssid)
		if !job.Manager().Registry().IsQueryable(ssid) {
			continue
		}
		if len(c1) != len(c2) {
			t.Fatalf("snapshot %d: %d keys in first, %d in second", ssid, len(c1), len(c2))
		}
		for k, n1 := range c1 {
			if n2 := c2[k]; n1 != n2 {
				t.Fatalf("snapshot %d not a consistent cut: key %s first=%d second=%d",
					ssid, k, n1, n2)
			}
		}
		checked++
		if job.SourceMeter().Count() >= perInstance*2 {
			break
		}
	}
	if checked < 10 {
		t.Fatalf("only %d snapshots verified — checkpoints did not flow", checked)
	}
	job.Wait()
}

// TestKillDuringCheckpointAbortsExactlyOnce: a checkpoint that is still in
// phase 1 when the job is killed must be aborted exactly once and its
// snapshot id never published — a half-prepared cut that became queryable
// would break every isolation guarantee built on the registry.
func TestKillDuringCheckpointAbortsExactlyOnce(t *testing.T) {
	clu := testCluster()
	// Swallow one counter ack; with no phase-1 deadline configured the
	// checkpoint then hangs in phase 1 until the kill arrives.
	inj := chaos.New(1).Add(chaos.Rule{
		Kind: chaos.DropAck, Vertex: "counter",
		Instance: chaos.Any, Node: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
		MaxFires: 1,
	})
	release := make(chan struct{})
	src := &Vertex{
		Name: "src", Kind: KindSource, Parallelism: 1,
		NewSource: func(instance, par int) SourceInstance {
			return &gatedSource{release: release, total: 1000}
		},
	}
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("counter", 2, countFn)).
		AddVertex(LatencySinkVertexForTest("sink", 1)).
		Connect("src", "counter", EdgePartitioned).
		Connect("counter", "sink", EdgePartitioned)
	job, err := Run(dag, Config{Cluster: clu, State: core.Config{Snapshots: true}, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.SourceMeter().Count() >= 500 }, "records before the gate")

	errCh := make(chan error, 1)
	go func() { errCh <- job.CheckpointNow() }()
	reg := job.Manager().Registry()
	waitFor(t, func() bool { return reg.InProgress() == 1 }, "checkpoint in flight")
	job.Stop() // kill with the checkpoint mid-phase-1

	if err := <-errCh; err == nil {
		t.Fatal("checkpoint interrupted by the kill reported success")
	}
	if got := job.CheckpointAborts(); got != 1 {
		t.Fatalf("aborts = %d, want exactly 1", got)
	}
	if reg.InProgress() != 0 {
		t.Fatalf("snapshot %d still in progress after the kill", reg.InProgress())
	}
	if reg.IsQueryable(1) || reg.LatestCommitted() != 0 {
		t.Fatalf("killed checkpoint published: queryable(1)=%v latest=%d",
			reg.IsQueryable(1), reg.LatestCommitted())
	}
}

func snapshotCounts(clu interface{ Store() *kv.Store }, op string, ssid int64) map[string]int {
	out := map[string]int{}
	store := clu.Store()
	for p := 0; p < store.Partitioner().Count(); p++ {
		store.GetMap(core.SnapshotMapName(op)).ScanPartition(p, func(e kv.Entry) bool {
			if v, ok := e.Value.(*core.Chain).At(ssid); ok {
				out[fmt.Sprintf("%v", e.Key)] = v.Value.(countingState).Count
			}
			return true
		})
	}
	return out
}
