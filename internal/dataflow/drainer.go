package dataflow

import (
	"time"

	"squery/internal/core"
	"squery/internal/trace"
)

// drainer ships one stateful instance's pinned snapshot deltas into the
// state store off the barrier path — the asynchronous half of Carbone et
// al.'s lightweight snapshots. The owning worker's phase 1 shrinks to a
// version pin; the drainer serializes and writes the pinned delta while
// processing resumes, and the coordinator gates phase 2 on the drain
// acknowledgements, so a committed snapshot is always fully in the
// store.
//
// The queue is FIFO, which is what makes per-key version ordering hold
// without locks: pins of the same instance drain in pin order, and
// instances own disjoint key sets.
type drainMsg struct {
	vertex   string
	instance int
	ssid     int64
	written  int
	lag      time.Duration // pin taken -> drain complete
}

type drainer struct {
	job      *Job
	backend  *core.Backend
	vertex   string
	instance int
	node     int
	// queue, killCh and drainCh are captured at creation: after a
	// crash-and-restart a stale drainer must observe the closed old kill
	// channel, never the new run's channels.
	queue   chan *core.SnapshotPin
	killCh  chan struct{}
	drainCh chan drainMsg
	// carry accumulates pins whose checkpoint round aborted before their
	// drain ran; they fold into the next live round's drain (see
	// core.FoldPins — dropping them would lose committed-state updates).
	carry *core.SnapshotPin
}

func (d *drainer) run() {
	defer d.job.drainWg.Done()
	for {
		select {
		case <-d.killCh:
			return
		case pin := <-d.queue:
			d.process(pin)
		}
	}
}

func (d *drainer) process(pin *core.SnapshotPin) {
	// Abort/supersession cancels the in-flight drain: when the pin's
	// round is no longer the in-flight checkpoint (the coordinator
	// aborted it, and possibly began a retry under a fresh id), the
	// serialization work is skipped — but the pinned versions are folded
	// into the next round, not dropped. The race with a concurrent abort
	// is benign in both directions: draining an about-to-abort pin writes
	// versions at an id that never publishes (invisible to every query
	// and restore target), and carrying it is the normal cancel path.
	if d.job.mgr.Registry().InProgress() != pin.SSID {
		d.carry = core.FoldPins(d.carry, pin)
		d.job.ckptIns.drainsAbandoned.Inc()
		return
	}
	if d.carry != nil {
		pin = core.FoldPins(d.carry, pin)
		d.carry = nil
	}
	start := time.Now()
	written := d.backend.DrainPin(pin)
	d.emitSpan(pin.SSID, start)
	select {
	case d.drainCh <- drainMsg{
		vertex: d.vertex, instance: d.instance, ssid: pin.SSID,
		written: written, lag: time.Since(pin.PinnedAt()),
	}:
	case <-d.killCh:
	}
}

// emitSpan attaches the drain as a child span of the checkpoint trace,
// mirroring the worker-side "prepare" span of the synchronous path.
func (d *drainer) emitSpan(ssid int64, start time.Time) {
	tr := d.job.cfg.Tracer
	if tr == nil {
		return
	}
	ctx, ok := d.job.ckptTraceCtx(ssid)
	if !ok {
		return
	}
	tr.Emit(trace.SpanData{
		TraceID: ctx.TraceID, SpanID: tr.NewID(), ParentID: ctx.SpanID,
		Name: "drain", Kind: trace.KindCheckpoint,
		Vertex: d.vertex, Instance: d.instance, SSID: ssid,
		Start: start, Dur: time.Since(start),
	})
}
