package dataflow

import (
	"time"

	"squery/internal/chaos"
)

// ChaosHook is the fault-injection interface the checkpoint control plane
// consults (implemented by *chaos.Injector; nil disables injection). All
// methods must be safe for concurrent use and deterministic in their
// inputs — the coordinator and every worker call them from their own
// goroutines.
type ChaosHook interface {
	// BarrierFate rules on one coordinator→source barrier injection for
	// checkpoint ssid. Drop makes the coordinator skip the source (the
	// checkpoint then aborts on its deadline); Delay stalls the injection.
	BarrierFate(ssid int64, vertex string, instance, node int) chaos.Fate
	// AckFate rules on one phase-1 ack on its way to the coordinator.
	AckFate(ssid int64, vertex string, instance, node int) chaos.Fate
	// CrashPreCommit reports whether the job must crash after phase 1 of
	// checkpoint ssid completed but before commit, and which cluster node
	// (>= 0) fails with it.
	CrashPreCommit(ssid int64) (crash bool, node int)
	// StageDelay reports how long the operator instance must stall before
	// processing its next record — the data-plane fault behind the health
	// plane's chaos test (a stalled stage must surface as backpressure and
	// a frozen watermark in the sys tables). 0 means no stall. Workers call
	// it once per record, so implementations must keep the no-fault path
	// cheap.
	StageDelay(vertex string, instance, node int) time.Duration
}
