package cluster

import (
	"fmt"
	"strconv"
	"time"

	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/trace"
	"squery/internal/transport"
)

// Elastic membership: the cluster's node set is no longer fixed at New.
// Join provisions a new member and Leave retires one, each driving an
// online rebalance that migrates partitions one at a time over the
// transport — freeze, ship the state snapshot (and, with replication, the
// backup seed) as wire-encoded payload, flip the versioned partition
// table, thaw. Every flip bumps the table epoch, which is what fenced KV
// views stamp on their writes; a member that missed the change keeps
// writing with a stale epoch, bounces off the store, refreshes and
// retries against the new owner (see kv/migration.go). Migrations and
// checkpoints exclude each other through ckptGate so a 2PC cut never
// straddles an ownership flip.
//
// The per-node state machine:
//
//	          Join                     Leave
//	(absent) ─────→ Joining → Live ──────────→ Leaving → Left
//	                   │        │                 │
//	                   │ Fail   │ Fail            │ Fail
//	                   └──────→ Failed ←──────────┘
//
// Failed and Left are terminal; node ids are never reused.

// NodeState is one member's position in the membership state machine.
type NodeState int

const (
	// NodeLive members own partitions and host operator instances.
	NodeLive NodeState = iota
	// NodeJoining members are receiving partitions but not yet schedulable.
	NodeJoining
	// NodeLeaving members are draining their partitions to the rest.
	NodeLeaving
	// NodeFailed members crashed: their primaries were lost (or promoted
	// from backups) without a graceful drain.
	NodeFailed
	// NodeLeft members drained gracefully and exited.
	NodeLeft
)

func (s NodeState) String() string {
	switch s {
	case NodeLive:
		return "live"
	case NodeJoining:
		return "joining"
	case NodeLeaving:
		return "leaving"
	case NodeFailed:
		return "failed"
	case NodeLeft:
		return "left"
	}
	return "unknown"
}

// Member is one row of the membership view (sys.membership).
type Member struct {
	Node       int
	State      NodeState
	Partitions int // primaries currently owned
	Backups    int // backup seats currently held
}

// MigrationFate is chaos's verdict on one partition migration, consulted
// at the point of no return between the ship and the flip.
type MigrationFate struct {
	// KillSource crashes the source node mid-handoff: the move aborts and
	// the partition stays with (or fails over from) its last committed
	// owner — never with the half-seeded target.
	KillSource bool
	// KillTarget crashes the target before it acknowledges: the shipped
	// state dies with it and the move aborts without a flip.
	KillTarget bool
	// DropEpochBump suppresses the membership-change broadcast for the
	// whole rebalance: nobody is told to refresh, so stale writers learn
	// of the new table only through fencing rejections.
	DropEpochBump bool
	// Stall delays the move while the partition is frozen — long enough
	// for tests to observe an in-flight rebalance through sys.rebalances.
	Stall time.Duration
}

// MigrationHook injects migration faults (see internal/chaos). Implemented
// outside this package; a nil hook means every migration succeeds.
type MigrationHook interface {
	MigrationFate(rebalance int64, partition, from, to int) MigrationFate
}

// SetMigrationHook installs (or clears, with nil) the migration fault
// hook.
func (c *Cluster) SetMigrationHook(h MigrationHook) {
	c.hookMu.Lock()
	c.migHook = h
	c.hookMu.Unlock()
}

func (c *Cluster) migrationFate(reb int64, p, from, to int) MigrationFate {
	c.hookMu.Lock()
	h := c.migHook
	c.hookMu.Unlock()
	if h == nil {
		return MigrationFate{}
	}
	return h.MigrationFate(reb, p, from, to)
}

// Move is one partition migration within a rebalance, as surfaced by
// sys.rebalances.
type Move struct {
	Partition  int
	From, To   int
	BackupOnly bool // a backup-seat reseat, not an ownership migration
	Epoch      int64
	Ops        int // entries shipped
	Bytes      int // payload bytes shipped
	Duration   time.Duration
	Aborted    bool
	Reason     string // abort reason: "kill-source", "kill-target"
}

// Rebalance is one membership change and its migrations.
type Rebalance struct {
	ID          int64
	Kind        string // "join" or "leave"
	Node        int    // the joining/leaving node
	EpochBefore int64
	EpochAfter  int64 // 0 while running
	Start       time.Time
	Duration    time.Duration // 0 while running
	Running     bool
	DroppedBump bool // chaos dropped the membership broadcast
	Aborted     bool // a chaos kill cut the rebalance short
	Moves       []Move
}

// SetInstruments attaches the metrics registry and tracer the rebalancer
// reports through: counters and a move-duration histogram under
// ("cluster", "rebalance"), one KindRebalance span per rebalance with a
// child span per migration. Either may be nil.
func (c *Cluster) SetInstruments(reg *metrics.Registry, tracer *trace.Tracer) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.tracer = tracer
	if reg == nil {
		c.inst = nil
		return
	}
	c.inst = &clusterInstruments{
		joins:     reg.Counter("cluster", "rebalance", "joins"),
		leaves:    reg.Counter("cluster", "rebalance", "leaves"),
		fails:     reg.Counter("cluster", "rebalance", "fails"),
		moves:     reg.Counter("cluster", "rebalance", "moves"),
		aborts:    reg.Counter("cluster", "rebalance", "move_aborts"),
		shipBytes: reg.Counter("cluster", "rebalance", "ship_bytes"),
		moveDur:   reg.Histogram("cluster", "rebalance", "move_duration"),
	}
}

type clusterInstruments struct {
	joins, leaves, fails *metrics.Counter
	moves, aborts        *metrics.Counter
	shipBytes            *metrics.Counter
	moveDur              *metrics.Histogram
}

func (c *Cluster) instruments() *clusterInstruments {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.inst
}

// OnMembershipChange registers fn to run (in its own goroutine) after
// every completed membership change whose broadcast is not chaos-dropped.
// The returned id cancels the registration via RemoveMembershipListener.
// Jobs use this to re-schedule operator instances onto the new topology.
func (c *Cluster) OnMembershipChange(fn func()) int {
	c.lmu.Lock()
	defer c.lmu.Unlock()
	id := c.nextLis
	c.nextLis++
	c.listeners[id] = fn
	return id
}

// RemoveMembershipListener cancels a registration.
func (c *Cluster) RemoveMembershipListener(id int) {
	c.lmu.Lock()
	defer c.lmu.Unlock()
	delete(c.listeners, id)
}

func (c *Cluster) notifyMembershipChange() {
	c.lmu.Lock()
	fns := make([]func(), 0, len(c.listeners))
	for _, fn := range c.listeners {
		fns = append(fns, fn)
	}
	c.lmu.Unlock()
	for _, fn := range fns {
		go fn()
	}
}

// CheckpointGate fences a checkpoint's 2PC against partition migrations:
// while the returned release is undone, no migration can freeze or flip a
// partition, so the cut sees one consistent table — every partition
// counted exactly once, on exactly one owner. Migrations symmetrically
// exclude checkpoints for the duration of a single move, never the whole
// rebalance, so checkpoints interleave with a long rebalance move by
// move.
func (c *Cluster) CheckpointGate() func() {
	c.ckptGate.RLock()
	return c.ckptGate.RUnlock
}

// Epoch returns the partition table's current global epoch.
func (c *Cluster) Epoch() int64 { return c.assign.Epoch() }

// Members returns every node ever provisioned with its state and current
// partition counts — the rows of sys.membership.
func (c *Cluster) Members() []Member {
	c.mu.Lock()
	states := append([]NodeState(nil), c.states...)
	c.mu.Unlock()
	tab := c.assign.Table()
	out := make([]Member, len(states))
	for n := range out {
		out[n] = Member{Node: n, State: states[n]}
	}
	for p := 0; p < c.part.Count(); p++ {
		if o := tab.Owner(p); o < len(out) {
			out[o].Partitions++
		}
		if b := tab.Backup(p); b < len(out) {
			out[b].Backups++
		}
	}
	return out
}

// Rebalances returns the rebalance history, oldest first, including a
// still-running one — the rows of sys.rebalances.
func (c *Cluster) Rebalances() []Rebalance {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	out := make([]Rebalance, len(c.rebalances))
	for i, r := range c.rebalances {
		cp := *r
		cp.Moves = append([]Move(nil), r.Moves...)
		if cp.Running {
			cp.Duration = time.Since(cp.Start)
		}
		out[i] = cp
	}
	return out
}

// Join provisions a new member and rebalances partitions onto it online.
// It returns the new node's id. The node starts Joining, receives its
// fair share of partitions one migration at a time, then turns Live and
// the membership change is broadcast. If chaos kills the joiner
// mid-rebalance the join fails with an error and the node is Failed.
func (c *Cluster) Join() (int, error) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	node := c.assign.AddNode()
	c.mu.Lock()
	for len(c.states) < node+1 {
		c.states = append(c.states, NodeJoining)
	}
	c.mu.Unlock()
	if in := c.instruments(); in != nil {
		in.joins.Inc()
	}
	reb := c.beginRebalance("join", node)
	c.runRebalance(reb, c.planJoin(node))
	c.mu.Lock()
	joined := c.states[node] == NodeJoining
	if joined {
		c.states[node] = NodeLive
	}
	c.mu.Unlock()
	c.finishRebalance(reb)
	if !joined {
		return node, fmt.Errorf("cluster: join of node %d aborted: node failed mid-rebalance", node)
	}
	return node, nil
}

// Leave drains a member gracefully: its primaries are migrated to the
// remaining live nodes and its backup seats reseated, one partition at a
// time, then the node is Left. Leaving the last live node is an error, as
// is leaving a node that is not Live.
func (c *Cluster) Leave(node int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	c.mu.Lock()
	if node < 0 || node >= len(c.states) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", node)
	}
	if st := c.states[node]; st != NodeLive {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot leave node %d in state %s", node, st)
	}
	if c.liveCountLocked() <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot leave node %d: it is the last live node", node)
	}
	c.states[node] = NodeLeaving
	c.mu.Unlock()
	if in := c.instruments(); in != nil {
		in.leaves.Inc()
	}
	reb := c.beginRebalance("leave", node)
	c.runRebalance(reb, c.planLeave(node))
	c.mu.Lock()
	st := c.states[node]
	// Left only when the drain actually completed: a chaos kill of a
	// *target* aborts the remainder of the plan with the leaver intact, and
	// marking it Left then would strand its remaining partitions on a node
	// no future rebalance may move from. Such a node reverts to Live (the
	// leave failed; retry it), while a leaver that itself died mid-drain
	// stays Failed — its partitions already failed over.
	left := st == NodeLeaving && !reb.Aborted && len(c.assign.OwnedBy(node)) == 0
	if left {
		c.states[node] = NodeLeft
	} else if st == NodeLeaving {
		c.states[node] = NodeLive
	}
	c.mu.Unlock()
	c.finishRebalance(reb)
	switch {
	case left:
		return nil
	case st != NodeLeaving:
		return fmt.Errorf("cluster: leave of node %d aborted: node failed mid-rebalance", node)
	default:
		return fmt.Errorf("cluster: leave of node %d aborted mid-drain: node reverted to live", node)
	}
}

// plannedMove is one entry of a rebalance plan.
type plannedMove struct {
	p          int
	from, to   int // owner seats (or backup seats when backupOnly)
	backup     int // new backup seat of the partition
	backupOnly bool
}

// planJoin moves partitions from the most-loaded live nodes onto the
// joiner until it holds its fair (floor) share. Deterministic: partitions
// are taken in ascending order from any owner still above the post-join
// fair share.
func (c *Cluster) planJoin(node int) []plannedMove {
	tab := c.assign.Table()
	members := c.schedulable()
	members = append(members, node)
	fair := c.part.Count() / len(members)
	counts := make(map[int]int)
	for p := 0; p < c.part.Count(); p++ {
		counts[tab.Owner(p)]++
	}
	var plan []plannedMove
	got := 0
	for p := 0; p < c.part.Count() && got < fair; p++ {
		owner := tab.Owner(p)
		if owner == node || counts[owner] <= fair {
			continue
		}
		backup := c.nextBackupFor(node, members)
		plan = append(plan, plannedMove{p: p, from: owner, to: node, backup: backup})
		counts[owner]--
		got++
	}
	return plan
}

// planLeave drains every seat the leaver holds: primaries migrate to the
// least-loaded remaining live nodes; backup seats reseat next to their
// owners.
func (c *Cluster) planLeave(node int) []plannedMove {
	tab := c.assign.Table()
	rest := make([]int, 0)
	for _, n := range c.schedulable() {
		if n != node {
			rest = append(rest, n)
		}
	}
	counts := make(map[int]int)
	for p := 0; p < c.part.Count(); p++ {
		counts[tab.Owner(p)]++
	}
	var plan []plannedMove
	for p := 0; p < c.part.Count(); p++ {
		owner, backup := tab.Owner(p), tab.Backup(p)
		if owner == node {
			// Least-loaded remaining node, lowest id on ties.
			to := rest[0]
			for _, n := range rest[1:] {
				if counts[n] < counts[to] {
					to = n
				}
			}
			nb := backup
			if nb == node || nb == to {
				nb = c.nextBackupFor(to, rest)
			}
			plan = append(plan, plannedMove{p: p, from: owner, to: to, backup: nb})
			counts[owner]--
			counts[to]++
		} else if backup == node {
			nb := c.nextBackupFor(owner, rest)
			plan = append(plan, plannedMove{p: p, from: backup, to: nb, backup: nb, backupOnly: true})
		}
	}
	return plan
}

// nextBackupFor picks the first member after owner (cyclically, by id)
// from the candidate set, excluding owner itself. With one candidate the
// backup coincides with the owner — the single-node degenerate case.
func (c *Cluster) nextBackupFor(owner int, members []int) int {
	best, wrap := -1, -1
	for _, n := range members {
		if n == owner {
			continue
		}
		if n > owner && (best == -1 || n < best) {
			best = n
		}
		if wrap == -1 || n < wrap {
			wrap = n
		}
	}
	if best != -1 {
		return best
	}
	if wrap != -1 && wrap != owner {
		return wrap
	}
	return owner
}

// schedulable returns the Live node ids, ascending.
func (c *Cluster) schedulable() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for n, st := range c.states {
		if st == NodeLive {
			out = append(out, n)
		}
	}
	return out
}

func (c *Cluster) liveCountLocked() int {
	live := 0
	for _, st := range c.states {
		switch st {
		case NodeLive, NodeJoining, NodeLeaving:
			live++
		}
	}
	return live
}

func (c *Cluster) beginRebalance(kind string, node int) *Rebalance {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.nextReb++
	reb := &Rebalance{
		ID:          c.nextReb,
		Kind:        kind,
		Node:        node,
		EpochBefore: c.assign.Epoch(),
		Start:       time.Now(),
		Running:     true,
	}
	c.rebalances = append(c.rebalances, reb)
	if c.tracer != nil {
		c.rebSpans[reb.ID] = c.tracer.StartTrace(kind, trace.KindRebalance)
		c.rebSpans[reb.ID].SetVertex("rebalance", node)
	}
	return reb
}

func (c *Cluster) finishRebalance(reb *Rebalance) {
	c.rmu.Lock()
	reb.Running = false
	reb.EpochAfter = c.assign.Epoch()
	reb.Duration = time.Since(reb.Start)
	dropped := reb.DroppedBump
	sp := c.rebSpans[reb.ID]
	delete(c.rebSpans, reb.ID)
	c.rmu.Unlock()
	if sp != nil {
		sp.SetNote("moves=" + strconv.Itoa(len(reb.Moves)) + " epoch=" + strconv.FormatInt(reb.EpochAfter, 10))
		sp.End()
	}
	// The epoch-bump broadcast: chaos may drop it, in which case stale
	// members learn of the new table only through fencing rejections.
	if !dropped {
		c.notifyMembershipChange()
	}
}

// runRebalance executes a plan one move at a time. Each move excludes
// checkpoints (write side of ckptGate) only for its own duration, so a
// long rebalance interleaves with the 2PC instead of starving it. A chaos
// kill aborts the remainder of the plan — the cluster is consistent after
// every move, so stopping short only leaves the balance imperfect.
func (c *Cluster) runRebalance(reb *Rebalance, plan []plannedMove) {
	for _, mv := range plan {
		if !c.moveStillValid(mv) {
			continue
		}
		if aborted := c.executeMove(reb, mv); aborted {
			c.rmu.Lock()
			reb.Aborted = true
			c.rmu.Unlock()
			return
		}
	}
}

// moveStillValid re-checks a planned move against the live table and
// membership: an earlier chaos kill may have failed the source (its
// partitions promoted elsewhere) or the target.
func (c *Cluster) moveStillValid(mv plannedMove) bool {
	c.mu.Lock()
	stTo := c.states[mv.to]
	stFrom := c.states[mv.from]
	c.mu.Unlock()
	if stTo != NodeLive && stTo != NodeJoining {
		return false
	}
	if stFrom == NodeFailed || stFrom == NodeLeft {
		return false
	}
	if mv.backupOnly {
		return c.assign.Backup(mv.p) == mv.from
	}
	return c.assign.Owner(mv.p) == mv.from
}

// executeMove migrates one partition: freeze → chaos fate → ship the
// wire-encoded snapshot (plus backup seed) over the transport → flip the
// versioned table → thaw. It reports whether a chaos kill aborted the
// move (and with it the rebalance).
func (c *Cluster) executeMove(reb *Rebalance, mv plannedMove) (aborted bool) {
	c.ckptGate.Lock()
	defer c.ckptGate.Unlock()
	start := time.Now()
	in := c.instruments()

	fate := MigrationFate{}
	if !mv.backupOnly {
		fate = c.migrationFate(reb.ID, mv.p, mv.from, mv.to)
	}
	if fate.DropEpochBump {
		c.rmu.Lock()
		reb.DroppedBump = true
		c.rmu.Unlock()
	}
	if !c.store.BeginPartitionMigration(mv.p) {
		// Another migration of p in flight — impossible while memMu
		// serializes rebalances, so treat as a programming error.
		panic(fmt.Sprintf("cluster: partition %d already migrating", mv.p))
	}
	defer c.store.EndPartitionMigration(mv.p)
	if fate.Stall > 0 {
		time.Sleep(fate.Stall)
	}

	abort := func(reason string, node int) bool {
		c.recordMove(reb, Move{
			Partition: mv.p, From: mv.from, To: mv.to, BackupOnly: mv.backupOnly,
			Duration: time.Since(start), Aborted: true, Reason: reason,
		})
		if in != nil {
			in.aborts.Inc()
		}
		// Thaw before the failover so promoted writers are not bounced
		// off a frozen partition that no longer migrates.
		c.store.EndPartitionMigration(mv.p)
		_ = c.failInner(node)
		return true
	}

	if fate.KillSource {
		// The source dies mid-handoff: the partition rolls back to (fails
		// over from) its last committed owner; the half-seeded target
		// never appears in the table.
		return abort("kill-source", mv.from)
	}

	var ops, bytes int
	if mv.backupOnly {
		if c.store.Replicated() {
			// Seed the new backup seat from the primary.
			ops, bytes = c.store.ShipPartition(mv.p, c.assign.Owner(mv.p), mv.to)
		}
	} else {
		ops, bytes = c.store.ShipPartition(mv.p, mv.from, mv.to)
	}

	if fate.KillTarget {
		// The target dies before acking: the shipped bytes die with it,
		// nothing flips.
		return abort("kill-target", mv.to)
	}

	var change partition.Change
	if mv.backupOnly {
		change = partition.Change{Partition: mv.p, Owner: c.assign.Owner(mv.p), Backup: mv.backup}
	} else {
		change = partition.Change{Partition: mv.p, Owner: mv.to, Backup: mv.backup}
		if c.store.Replicated() && mv.backup != mv.to {
			// The new backup's seed copy: same entries, one more hop.
			c.tr.Send(transport.Msg{From: mv.to, To: mv.backup, Ops: ops, Bytes: bytes})
		}
	}
	epoch := c.assign.Apply([]partition.Change{change})
	if !mv.backupOnly {
		// The partition seats on a new owner at a new epoch: re-derive its
		// secondary indexes there so no stale posting survives the flip
		// (and any write fenced out during the freeze can never have
		// dirtied the rebuilt index — it retries against the new epoch and
		// is maintained normally).
		c.store.RebuildPartitionIndexes(mv.p)
	}

	d := time.Since(start)
	c.recordMove(reb, Move{
		Partition: mv.p, From: mv.from, To: mv.to, BackupOnly: mv.backupOnly,
		Epoch: epoch, Ops: ops, Bytes: bytes, Duration: d,
	})
	if in != nil {
		in.moves.Inc()
		in.shipBytes.Add(int64(bytes))
		in.moveDur.Record(d)
	}
	return false
}

func (c *Cluster) recordMove(reb *Rebalance, mv Move) {
	c.rmu.Lock()
	reb.Moves = append(reb.Moves, mv)
	sp := c.rebSpans[reb.ID]
	tracer := c.tracer
	c.rmu.Unlock()
	if tracer != nil && sp != nil {
		child := tracer.StartChild(sp.Context(), "move", trace.KindRebalance)
		child.SetVertex("rebalance", mv.Partition)
		note := "p=" + strconv.Itoa(mv.Partition) +
			" from=" + strconv.Itoa(mv.From) +
			" to=" + strconv.Itoa(mv.To) +
			" ops=" + strconv.Itoa(mv.Ops) +
			" bytes=" + strconv.Itoa(mv.Bytes)
		if mv.Aborted {
			note += " aborted=" + mv.Reason
		}
		child.SetNote(note)
		child.End()
	}
}
