// Package cluster simulates the multi-node deployment of the paper's
// experiments inside one process: a set of nodes, a partition table mapping
// KV partitions (and, via co-location, operator instances) onto nodes, and
// a transport that charges a configurable latency for every inter-node
// message. The public surface of the system is identical to a networked
// deployment; only the wire is simulated — which is exactly the
// substitution DESIGN.md documents for the paper's 7-node AWS cluster.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/trace"
	"squery/internal/transport"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of cluster members. Default 3 (the paper's
	// overhead experiments run on 3 nodes; snapshot experiments on 7).
	Nodes int
	// Partitions is the number of KV/state partitions. Default 271.
	Partitions int
	// NetworkLatency is the one-way cost of an inter-node message.
	// Zero disables the simulated network entirely.
	NetworkLatency time.Duration
	// NetworkJitter adds up to this much uniformly random extra latency
	// per message.
	NetworkJitter time.Duration
	// ReplicateState enables synchronous backup copies of every KV
	// partition: a node failure then promotes backups instead of losing
	// the partitions' data (§V.A).
	ReplicateState bool
	// Transport, when non-nil, overrides the wire the cluster sends
	// through (e.g. transport.NewLoopback()). Nil builds the in-process
	// simulated transport from NetworkLatency/NetworkJitter. The cluster
	// owns whatever transport it ends up with: Close tears it down.
	Transport transport.Transport
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Partitions == 0 {
		c.Partitions = partition.DefaultCount
	}
	return c
}

// Cluster owns the simulated topology: the partitioner, the live
// versioned partition assignment, the membership state machine, the
// shared KV store, and the transport every inter-node message crosses.
type Cluster struct {
	cfg    Config
	part   partition.Partitioner
	assign *partition.Assignment
	store  *kv.Store
	tr     transport.Transport

	mu     sync.Mutex
	states []NodeState // indexed by node id; grows on Join, never shrinks

	// memMu serializes whole membership operations (Join/Leave/Fail) so
	// at most one rebalance runs at a time.
	memMu sync.Mutex
	// ckptGate excludes partition migrations (write side, per move) from
	// checkpoints (read side, per 2PC); see CheckpointGate.
	ckptGate sync.RWMutex

	hookMu  sync.Mutex
	migHook MigrationHook

	lmu       sync.Mutex
	listeners map[int]func()
	nextLis   int

	rmu        sync.Mutex
	rebalances []*Rebalance
	nextReb    int64
	rebSpans   map[int64]*trace.Span
	tracer     *trace.Tracer
	inst       *clusterInstruments
}

// New builds a cluster from the config.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("cluster: Nodes must be >= 1, got %d", cfg.Nodes))
	}
	c := &Cluster{
		cfg:       cfg,
		part:      partition.New(cfg.Partitions),
		assign:    partition.Assign(cfg.Partitions, cfg.Nodes),
		states:    make([]NodeState, cfg.Nodes),
		listeners: make(map[int]func()),
		rebSpans:  make(map[int64]*trace.Span),
	}
	c.tr = cfg.Transport
	if c.tr == nil {
		c.tr = transport.NewSim(transport.SimConfig{
			Latency: cfg.NetworkLatency,
			Jitter:  cfg.NetworkJitter,
		})
	}
	c.store = kv.NewStore(c.part, c.assign, c.tr)
	if cfg.ReplicateState {
		if err := c.store.SetReplicated(); err != nil {
			// The store was created two lines up and holds no data yet, so
			// this is unreachable; panicking keeps New's signature.
			panic(fmt.Sprintf("cluster: %v", err))
		}
	}
	return c
}

// SetFaultHook installs a fault-injection hook (see internal/chaos) on the
// cluster's transport; nil clears it.
func (c *Cluster) SetFaultHook(h kv.FaultHook) { c.store.SetFaultHook(h) }

// Transport returns the wire the cluster sends through.
func (c *Cluster) Transport() transport.Transport { return c.tr }

// Close releases the cluster's transport (listener and connections for a
// networked transport; a no-op for the simulated one).
func (c *Cluster) Close() error { return c.tr.Close() }

// Nodes returns the number of nodes ever provisioned, including joined
// members and failed/left ones — node ids are dense in [0, Nodes()).
func (c *Cluster) Nodes() int { return c.assign.Nodes() }

// Partitioner returns the shared partitioner.
func (c *Cluster) Partitioner() partition.Partitioner { return c.part }

// Assignment returns the live partition table.
func (c *Cluster) Assignment() *partition.Assignment { return c.assign }

// Store returns the cluster-wide KV store.
func (c *Cluster) Store() *kv.Store { return c.store }

// NodeView returns the KV view for a member node. It panics on an unknown
// node id; use ClientView for external clients.
func (c *Cluster) NodeView(node int) kv.NodeView {
	if node < 0 || node >= c.assign.Nodes() {
		panic(fmt.Sprintf("cluster: no node %d in a %d-node cluster", node, c.assign.Nodes()))
	}
	return c.store.View(node)
}

// FencedNodeView is NodeView with epoch fencing: writes carry the epoch
// of a cached partition-table snapshot and are rejected-and-retried when
// a migration or failover reseats their partition. Operator state
// backends use fenced views so every mirror batch and snapshot write is
// stamped.
func (c *Cluster) FencedNodeView(node int) kv.NodeView {
	if node < 0 || node >= c.assign.Nodes() {
		panic(fmt.Sprintf("cluster: no node %d in a %d-node cluster", node, c.assign.Nodes()))
	}
	return c.store.FencedView(node)
}

// ClientView returns the KV view used by external query clients: every
// partition is remote to it.
func (c *Cluster) ClientView() kv.NodeView { return c.store.View(kv.ClientNode) }

// Messages returns the number of inter-node messages sent so far.
func (c *Cluster) Messages() uint64 { return c.tr.Stats().Messages }

// NodeForKey returns the node that owns the partition of key — the node a
// co-located operator instance for this key must run on.
func (c *Cluster) NodeForKey(key partition.Key) int {
	return c.assign.Owner(c.part.Of(key))
}

// ScheduleInstances assigns n operator instances round-robin over the
// *live* nodes — the same discipline as the partition table, so instance
// i of every vertex of a job lands with its peers. Failed, left, and
// still-joining nodes host nothing. It returns the node of each instance.
func (c *Cluster) ScheduleInstances(n int) []int {
	live := c.schedulable()
	if len(live) == 0 {
		// Unreachable: Fail and Leave both refuse to empty the cluster.
		live = []int{0}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = live[i%len(live)]
	}
	return out
}

// Fail marks a node failed and promotes its partitions to their backups,
// modelling the IMDG failover the paper's recovery path relies on. Failing
// an already-failed (or left) node is a no-op. Failing the last live node
// returns an error, so chaos schedules can probe the boundary without
// crashing the harness.
func (c *Cluster) Fail(node int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	return c.failInner(node)
}

// failInner is Fail without the membership lock — the form a rebalance
// uses to kill a node mid-migration (it already holds memMu).
func (c *Cluster) failInner(node int) error {
	c.mu.Lock()
	if node < 0 || node >= len(c.states) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", node)
	}
	switch c.states[node] {
	case NodeFailed, NodeLeft:
		c.mu.Unlock()
		return nil
	}
	if c.liveCountLocked() <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot fail node %d: it is the last live node", node)
	}
	c.states[node] = NodeFailed
	c.mu.Unlock()
	if in := c.instruments(); in != nil {
		in.fails.Inc()
	}
	// The failed node's memory is gone: its partitions' primary copies
	// are dropped (or recovered from backups when replication is on),
	// then ownership moves to the backups — with replacement backups
	// seated only on non-failed, non-left nodes. Every reseated
	// partition's epoch is bumped, fencing out writers that still hold
	// the pre-failure table.
	c.store.FailNode(c.assign.OwnedBy(node))
	c.assign.PromoteAvoiding(node, func(n int) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if n >= len(c.states) {
			return true
		}
		st := c.states[n]
		return st == NodeFailed || st == NodeLeft
	})
	return nil
}

// Failed reports whether node is failed.
func (c *Cluster) Failed(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return node >= 0 && node < len(c.states) && c.states[node] == NodeFailed
}

// LiveNodes returns the ids of live (schedulable) nodes, ascending.
func (c *Cluster) LiveNodes() []int { return c.schedulable() }
