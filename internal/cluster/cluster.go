// Package cluster simulates the multi-node deployment of the paper's
// experiments inside one process: a set of nodes, a partition table mapping
// KV partitions (and, via co-location, operator instances) onto nodes, and
// a transport that charges a configurable latency for every inter-node
// message. The public surface of the system is identical to a networked
// deployment; only the wire is simulated — which is exactly the
// substitution DESIGN.md documents for the paper's 7-node AWS cluster.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/transport"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of cluster members. Default 3 (the paper's
	// overhead experiments run on 3 nodes; snapshot experiments on 7).
	Nodes int
	// Partitions is the number of KV/state partitions. Default 271.
	Partitions int
	// NetworkLatency is the one-way cost of an inter-node message.
	// Zero disables the simulated network entirely.
	NetworkLatency time.Duration
	// NetworkJitter adds up to this much uniformly random extra latency
	// per message.
	NetworkJitter time.Duration
	// ReplicateState enables synchronous backup copies of every KV
	// partition: a node failure then promotes backups instead of losing
	// the partitions' data (§V.A).
	ReplicateState bool
	// Transport, when non-nil, overrides the wire the cluster sends
	// through (e.g. transport.NewLoopback()). Nil builds the in-process
	// simulated transport from NetworkLatency/NetworkJitter. The cluster
	// owns whatever transport it ends up with: Close tears it down.
	Transport transport.Transport
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Partitions == 0 {
		c.Partitions = partition.DefaultCount
	}
	return c
}

// Cluster owns the simulated topology: the partitioner, the partition
// assignment, the shared KV store, and the transport every inter-node
// message crosses.
type Cluster struct {
	cfg    Config
	part   partition.Partitioner
	assign *partition.Assignment
	store  *kv.Store
	tr     transport.Transport

	mu     sync.Mutex
	failed map[int]bool
}

// New builds a cluster from the config.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("cluster: Nodes must be >= 1, got %d", cfg.Nodes))
	}
	c := &Cluster{
		cfg:    cfg,
		part:   partition.New(cfg.Partitions),
		assign: partition.Assign(cfg.Partitions, cfg.Nodes),
		failed: make(map[int]bool),
	}
	c.tr = cfg.Transport
	if c.tr == nil {
		c.tr = transport.NewSim(transport.SimConfig{
			Latency: cfg.NetworkLatency,
			Jitter:  cfg.NetworkJitter,
		})
	}
	c.store = kv.NewStore(c.part, c.assign, c.tr)
	if cfg.ReplicateState {
		if err := c.store.SetReplicated(); err != nil {
			// The store was created two lines up and holds no data yet, so
			// this is unreachable; panicking keeps New's signature.
			panic(fmt.Sprintf("cluster: %v", err))
		}
	}
	return c
}

// SetFaultHook installs a fault-injection hook (see internal/chaos) on the
// cluster's transport; nil clears it.
func (c *Cluster) SetFaultHook(h kv.FaultHook) { c.store.SetFaultHook(h) }

// Transport returns the wire the cluster sends through.
func (c *Cluster) Transport() transport.Transport { return c.tr }

// Close releases the cluster's transport (listener and connections for a
// networked transport; a no-op for the simulated one).
func (c *Cluster) Close() error { return c.tr.Close() }

// Nodes returns the configured node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Partitioner returns the shared partitioner.
func (c *Cluster) Partitioner() partition.Partitioner { return c.part }

// Assignment returns the live partition table.
func (c *Cluster) Assignment() *partition.Assignment { return c.assign }

// Store returns the cluster-wide KV store.
func (c *Cluster) Store() *kv.Store { return c.store }

// NodeView returns the KV view for a member node. It panics on an unknown
// node id; use ClientView for external clients.
func (c *Cluster) NodeView(node int) kv.NodeView {
	if node < 0 || node >= c.cfg.Nodes {
		panic(fmt.Sprintf("cluster: no node %d in a %d-node cluster", node, c.cfg.Nodes))
	}
	return c.store.View(node)
}

// ClientView returns the KV view used by external query clients: every
// partition is remote to it.
func (c *Cluster) ClientView() kv.NodeView { return c.store.View(kv.ClientNode) }

// Messages returns the number of inter-node messages sent so far.
func (c *Cluster) Messages() uint64 { return c.tr.Stats().Messages }

// NodeForKey returns the node that owns the partition of key — the node a
// co-located operator instance for this key must run on.
func (c *Cluster) NodeForKey(key partition.Key) int {
	return c.assign.Owner(c.part.Of(key))
}

// ScheduleInstances assigns n operator instances to nodes round-robin, the
// same discipline as the partition table, so instance i of every vertex of
// a job lands with its peers. It returns the node of each instance.
func (c *Cluster) ScheduleInstances(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % c.cfg.Nodes
	}
	return out
}

// Fail marks a node failed and promotes its partitions to their backups,
// modelling the IMDG failover the paper's recovery path relies on. Failing
// an already-failed node is a no-op. Failing the last live node panics.
func (c *Cluster) Fail(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed[node] {
		return
	}
	live := 0
	for n := 0; n < c.cfg.Nodes; n++ {
		if !c.failed[n] {
			live++
		}
	}
	if live <= 1 {
		panic("cluster: cannot fail the last live node")
	}
	c.failed[node] = true
	// The failed node's memory is gone: its partitions' primary copies
	// are dropped (or recovered from backups when replication is on),
	// then ownership moves to the backups.
	c.store.FailNode(c.assign.OwnedBy(node))
	c.assign.Promote(node)
}

// Failed reports whether node is failed.
func (c *Cluster) Failed(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed[node]
}

// LiveNodes returns the ids of nodes that have not failed, ascending.
func (c *Cluster) LiveNodes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for n := 0; n < c.cfg.Nodes; n++ {
		if !c.failed[n] {
			out = append(out, n)
		}
	}
	return out
}
