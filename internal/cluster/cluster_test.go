package cluster

import (
	"testing"
	"time"

	"squery/internal/partition"
)

func TestDefaults(t *testing.T) {
	c := New(Config{})
	if c.Nodes() != 3 {
		t.Errorf("default Nodes = %d, want 3", c.Nodes())
	}
	if c.Partitioner().Count() != partition.DefaultCount {
		t.Errorf("default Partitions = %d, want %d", c.Partitioner().Count(), partition.DefaultCount)
	}
}

func TestMessageCounting(t *testing.T) {
	c := New(Config{Nodes: 2, Partitions: 8})
	v0 := c.NodeView(0)
	// Find one key owned by node 0 and one by node 1.
	var local, remote partition.Key
	for i := 0; local == nil || remote == nil; i++ {
		if c.NodeForKey(i) == 0 {
			local = i
		} else {
			remote = i
		}
	}
	v0.Put("m", local, 1)
	if c.Messages() != 0 {
		t.Fatalf("local put counted %d messages", c.Messages())
	}
	v0.Put("m", remote, 1)
	if c.Messages() != 1 {
		t.Fatalf("remote put counted %d messages, want 1", c.Messages())
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	c := New(Config{Nodes: 2, Partitions: 8, NetworkLatency: 2 * time.Millisecond})
	var remote partition.Key
	for i := 0; ; i++ {
		if c.NodeForKey(i) == 1 {
			remote = i
			break
		}
	}
	start := time.Now()
	c.NodeView(0).Put("m", remote, 1)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("remote put took %v, want >= 2ms", elapsed)
	}
}

func TestClientViewIsRemoteEverywhere(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 9})
	c.ClientView().Put("m", "k", 1)
	if c.Messages() == 0 {
		t.Error("client put was treated as local")
	}
}

func TestNodeViewPanicsOutOfRange(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("NodeView(5) did not panic")
		}
	}()
	c.NodeView(5)
}

func TestScheduleInstancesRoundRobin(t *testing.T) {
	c := New(Config{Nodes: 3})
	got := c.ScheduleInstances(7)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScheduleInstances = %v, want %v", got, want)
		}
	}
}

func TestFailPromotesPartitions(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27})
	if len(c.Assignment().OwnedBy(1)) == 0 {
		t.Fatal("node 1 owns nothing before failure")
	}
	c.Fail(1)
	if !c.Failed(1) {
		t.Fatal("node 1 not marked failed")
	}
	if got := c.Assignment().OwnedBy(1); len(got) != 0 {
		t.Fatalf("failed node still owns partitions: %v", got)
	}
	if live := c.LiveNodes(); len(live) != 2 || live[0] != 0 || live[1] != 2 {
		t.Fatalf("LiveNodes = %v", live)
	}
	c.Fail(1) // idempotent
}

func TestFailLastNodeErrors(t *testing.T) {
	c := New(Config{Nodes: 2})
	if err := c.Fail(0); err != nil {
		t.Fatalf("Fail(0): %v", err)
	}
	if err := c.Fail(1); err == nil {
		t.Fatal("failing the last live node did not error")
	}
	if c.Failed(1) {
		t.Fatal("node 1 marked failed despite the refusal")
	}
	// The refused node keeps serving.
	if live := c.LiveNodes(); len(live) != 1 || live[0] != 1 {
		t.Fatalf("LiveNodes = %v, want [1]", live)
	}
}

func TestDataSurvivesFailoverWithReplication(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	v := c.ClientView()
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	c.Fail(0)
	for i := 0; i < 100; i++ {
		got, ok := v.Get("m", i)
		if !ok || got != i {
			t.Fatalf("key %d lost after failover: %v, %v", i, got, ok)
		}
	}
	// A second failure is also survivable: backups were re-seeded.
	c.Fail(1)
	for i := 0; i < 100; i++ {
		if _, ok := v.Get("m", i); !ok {
			t.Fatalf("key %d lost after second failover", i)
		}
	}
}

func TestNodeFailureLosesDataWithoutReplication(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27})
	v := c.ClientView()
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	lostOwner := 0
	c.Fail(lostOwner)
	lost, kept := 0, 0
	for i := 0; i < 100; i++ {
		if _, ok := v.Get("m", i); ok {
			kept++
		} else {
			lost++
		}
	}
	// Roughly a third of the partitions were on the failed node; without
	// replication their entries are gone, the rest survive.
	if lost == 0 {
		t.Fatal("no data lost — failure semantics not enforced")
	}
	if kept == 0 {
		t.Fatal("all data lost — failure dropped too much")
	}
}

func TestReplicationMaintainsBackupCopies(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	v := c.ClientView()
	for i := 0; i < 50; i++ {
		v.Put("m", i, i)
	}
	m := c.Store().GetMap("m")
	if m.BackupSize() != 50 {
		t.Fatalf("backup copies = %d, want 50", m.BackupSize())
	}
	for i := 0; i < 25; i++ {
		v.Delete("m", i)
	}
	if m.BackupSize() != 25 {
		t.Fatalf("backup copies after deletes = %d, want 25", m.BackupSize())
	}
	m.Clear()
	if m.BackupSize() != 0 {
		t.Fatalf("backup copies after clear = %d", m.BackupSize())
	}
}
