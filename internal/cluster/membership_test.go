package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

// hookFunc adapts a function to MigrationHook.
type hookFunc func(reb int64, p, from, to int) MigrationFate

func (f hookFunc) MigrationFate(reb int64, p, from, to int) MigrationFate {
	return f(reb, p, from, to)
}

func ownerCounts(c *Cluster) map[int]int {
	counts := map[int]int{}
	for p := 0; p < c.Partitioner().Count(); p++ {
		counts[c.Assignment().Owner(p)]++
	}
	return counts
}

func TestJoinRebalancesOntoNewNode(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	v := c.ClientView()
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	epochBefore := c.Epoch()
	node, err := c.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if node != 3 {
		t.Fatalf("joined node id = %d, want 3", node)
	}
	if c.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance across the join: %d -> %d", epochBefore, c.Epoch())
	}
	// The joiner holds its fair (floor) share; nobody lost data.
	counts := ownerCounts(c)
	fair := 27 / 4
	if counts[node] != fair {
		t.Fatalf("joiner owns %d partitions, want %d (counts %v)", counts[node], fair, counts)
	}
	for i := 0; i < 100; i++ {
		if got, ok := v.Get("m", i); !ok || got != i {
			t.Fatalf("key %d lost across the join: %v, %v", i, got, ok)
		}
	}
	// The joiner is schedulable now.
	live := c.LiveNodes()
	if len(live) != 4 || live[3] != node {
		t.Fatalf("LiveNodes after join = %v", live)
	}
}

func TestLeaveDrainsAllSeats(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	v := c.ClientView()
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	if err := c.Leave(1); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	a := c.Assignment()
	for p := 0; p < 27; p++ {
		if a.Owner(p) == 1 {
			t.Fatalf("partition %d still owned by the left node", p)
		}
		if a.Backup(p) == 1 {
			t.Fatalf("partition %d still backed up on the left node", p)
		}
	}
	for i := 0; i < 100; i++ {
		if got, ok := v.Get("m", i); !ok || got != i {
			t.Fatalf("key %d lost across the leave: %v, %v", i, got, ok)
		}
	}
	members := c.Members()
	if members[1].State != NodeLeft {
		t.Fatalf("left node state = %s", members[1].State)
	}
	// Leaving again is an error: the node is gone.
	if err := c.Leave(1); err == nil {
		t.Fatal("second Leave of the same node did not error")
	}
}

func TestLeaveValidations(t *testing.T) {
	c := New(Config{Nodes: 2, Partitions: 8})
	if err := c.Leave(7); err == nil {
		t.Fatal("Leave of an unknown node did not error")
	}
	if err := c.Leave(0); err != nil {
		t.Fatalf("Leave(0): %v", err)
	}
	if err := c.Leave(1); err == nil {
		t.Fatal("Leave of the last live node did not error")
	}
}

func TestKillSourceMidHandoffRollsBack(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	v := c.ClientView()
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	var killed atomic.Int64
	c.SetMigrationHook(hookFunc(func(reb int64, p, from, to int) MigrationFate {
		if killed.CompareAndSwap(0, int64(from)+1) {
			return MigrationFate{KillSource: true}
		}
		return MigrationFate{}
	}))
	node, err := c.Join()
	if err != nil {
		t.Fatalf("Join (the joiner survived): %v", err)
	}
	src := int(killed.Load() - 1)
	if !c.Failed(src) {
		t.Fatalf("killed source %d not marked failed", src)
	}
	// The aborted move's partition never landed on the target half-seeded:
	// ownership failed over from the last committed owner, and no data was
	// lost (replication).
	for i := 0; i < 100; i++ {
		if got, ok := v.Get("m", i); !ok || got != i {
			t.Fatalf("key %d lost across the killed migration: %v, %v", i, got, ok)
		}
	}
	rebs := c.Rebalances()
	if len(rebs) != 1 || !rebs[0].Aborted {
		t.Fatalf("rebalance not recorded as aborted: %+v", rebs)
	}
	var aborts int
	for _, mv := range rebs[0].Moves {
		if mv.Aborted {
			aborts++
			if mv.Reason != "kill-source" {
				t.Fatalf("abort reason = %q", mv.Reason)
			}
		}
	}
	if aborts != 1 {
		t.Fatalf("aborted moves = %d, want 1", aborts)
	}
	// The cluster keeps serving and the joiner is live.
	if c.Failed(node) {
		t.Fatal("joiner marked failed after a source kill")
	}
}

func TestKillTargetPreAckAbortsJoin(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	v := c.ClientView()
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	c.SetMigrationHook(hookFunc(func(reb int64, p, from, to int) MigrationFate {
		return MigrationFate{KillTarget: true}
	}))
	node, err := c.Join()
	if err == nil {
		t.Fatal("Join succeeded although the joiner was killed pre-ack")
	}
	if !c.Failed(node) {
		t.Fatal("killed joiner not marked failed")
	}
	// No flip happened: the dead joiner owns nothing.
	if owned := c.Assignment().OwnedBy(node); len(owned) != 0 {
		t.Fatalf("dead joiner owns partitions: %v", owned)
	}
	for i := 0; i < 100; i++ {
		if got, ok := v.Get("m", i); !ok || got != i {
			t.Fatalf("key %d lost: %v, %v", i, got, ok)
		}
	}
}

func TestLeaveAbortedMidDrainRevertsToLive(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	// Kill the *target* of the first migration: the leaver survives, but
	// its drain cannot complete — it must revert to Live, not strand its
	// partitions on a Left node.
	fired := false
	c.SetMigrationHook(hookFunc(func(reb int64, p, from, to int) MigrationFate {
		if !fired {
			fired = true
			return MigrationFate{KillTarget: true}
		}
		return MigrationFate{}
	}))
	if err := c.Leave(1); err == nil {
		t.Fatal("aborted leave did not error")
	}
	if got := c.Members()[1].State; got != NodeLive {
		t.Fatalf("leaver state after aborted drain = %s, want live", got)
	}
	// The leave is retryable once the hook stops killing.
	c.SetMigrationHook(nil)
	if err := c.Leave(1); err != nil {
		t.Fatalf("retried Leave: %v", err)
	}
	if got := c.Members()[1].State; got != NodeLeft {
		t.Fatalf("leaver state after retry = %s, want left", got)
	}
}

func TestStalledRebalanceObservableWhileRunning(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 9, ReplicateState: true})
	c.SetMigrationHook(hookFunc(func(reb int64, p, from, to int) MigrationFate {
		return MigrationFate{Stall: 20 * time.Millisecond}
	}))
	done := make(chan error, 1)
	go func() {
		_, err := c.Join()
		done <- err
	}()
	// While the first move stalls, the rebalance must be visible: Running,
	// with the joiner in state joining.
	sawRunning, sawJoining := false, false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !(sawRunning && sawJoining) {
		for _, r := range c.Rebalances() {
			if r.Running {
				sawRunning = true
			}
		}
		for _, m := range c.Members() {
			if m.State == NodeJoining {
				sawJoining = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !sawRunning {
		t.Fatal("never observed a Running rebalance despite the stall")
	}
	if !sawJoining {
		t.Fatal("never observed the joiner in state joining")
	}
	// After completion the record is finalized with per-move durations.
	rebs := c.Rebalances()
	if len(rebs) != 1 || rebs[0].Running {
		t.Fatalf("rebalance not finalized: %+v", rebs)
	}
	if rebs[0].EpochAfter <= rebs[0].EpochBefore {
		t.Fatalf("epochs not advanced: %d -> %d", rebs[0].EpochBefore, rebs[0].EpochAfter)
	}
	var stalled int
	for _, mv := range rebs[0].Moves {
		if mv.Duration >= 20*time.Millisecond {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatal("no move recorded its stalled duration")
	}
}

func TestMembershipListenerFiresOnJoinAndLeaveNotFail(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 9, ReplicateState: true})
	var fires atomic.Int64
	id := c.OnMembershipChange(func() { fires.Add(1) })
	if _, err := c.Join(); err != nil {
		t.Fatalf("Join: %v", err)
	}
	waitFor(t, func() bool { return fires.Load() == 1 }, "listener after join")
	if err := c.Leave(1); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitFor(t, func() bool { return fires.Load() == 2 }, "listener after leave")
	// Fail is not a membership *change* broadcast: recovery paths drive
	// their own rescheduling explicitly.
	if err := c.Fail(2); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := fires.Load(); got != 2 {
		t.Fatalf("listener fired %d times after a Fail, want still 2", got)
	}
	c.RemoveMembershipListener(id)
	if _, err := c.Join(); err != nil {
		t.Fatalf("second Join: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := fires.Load(); got != 2 {
		t.Fatalf("removed listener fired: %d", got)
	}
}

func TestDropEpochBumpSuppressesBroadcast(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 9, ReplicateState: true})
	var fires atomic.Int64
	c.OnMembershipChange(func() { fires.Add(1) })
	c.SetMigrationHook(hookFunc(func(reb int64, p, from, to int) MigrationFate {
		return MigrationFate{DropEpochBump: true}
	}))
	if _, err := c.Join(); err != nil {
		t.Fatalf("Join: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := fires.Load(); got != 0 {
		t.Fatalf("dropped epoch bump still fired the listener %d time(s)", got)
	}
	rebs := c.Rebalances()
	if len(rebs) != 1 || !rebs[0].DroppedBump {
		t.Fatalf("rebalance not recorded as dropped-bump: %+v", rebs)
	}
}

// TestScheduleInstancesOverLiveNodes is the regression test for the
// scheduling bug: instances must land only on live nodes, not round-robin
// over the provisioned node count.
func TestScheduleInstancesOverLiveNodes(t *testing.T) {
	c := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	if err := c.Fail(1); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	for i, n := range c.ScheduleInstances(6) {
		if n == 1 {
			t.Fatalf("instance %d scheduled on the failed node", i)
		}
	}
	// After a join the new node hosts instances too.
	node, err := c.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	onJoined := false
	for _, n := range c.ScheduleInstances(6) {
		if n == 1 {
			t.Fatal("instance scheduled on the failed node after join")
		}
		if n == node {
			onJoined = true
		}
	}
	if !onJoined {
		t.Fatalf("no instance scheduled on the joined node %d", node)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
