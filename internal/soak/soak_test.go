package soak

import (
	"fmt"
	"testing"

	"squery/internal/chaos"
)

// TestChaosSoakExactlyOnce is the acceptance check of the chaos layer:
// for several distinct seeds, the seed-derived fault schedule — which
// always contains a mid-checkpoint node crash and a coordinator–worker
// partition — must leave the job in exactly the state of a fault-free
// oracle run. Each subtest also asserts those two faults actually fired,
// so a seed that happens to dodge them cannot pass vacuously.
func TestChaosSoakExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs full workloads")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := Run(Config{Seed: seed, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Match {
				t.Fatalf("exactly-once violated: chaos counts %v != oracle %v\nschedule:\n%s\nevents: %v",
					rep.Counts, rep.Oracle, rep.Schedule, rep.Events)
			}
			fired := map[chaos.Kind]int{}
			for _, e := range rep.Events {
				fired[e.Kind]++
			}
			if fired[chaos.CrashPreCommit] == 0 {
				t.Errorf("seed %d never fired the mid-checkpoint crash; events: %v", seed, rep.Events)
			}
			if fired[chaos.DropAck] == 0 {
				t.Errorf("seed %d never fired the coordinator–worker partition; events: %v", seed, rep.Events)
			}
			if fired[chaos.ShedSubscriber] == 0 {
				t.Errorf("seed %d never froze the standing-query subscriber; events: %v", seed, rep.Events)
			}
			if rep.SubShed == 0 {
				t.Errorf("seed %d froze the subscriber but shed no frames (queue never overflowed)", seed)
			}
			if rep.SubResyncs == 0 {
				t.Errorf("seed %d shed subscriber frames but issued no resync snapshot", seed)
			}
			if !rep.SubMatch {
				t.Errorf("shed subscriber failed to re-converge: folded view %v != live counts %v",
					rep.SubCounts, rep.Counts)
			}
			if rep.Aborts == 0 {
				t.Errorf("seed %d caused no checkpoint aborts despite crash + partition", seed)
			}
			if rep.Snapshots == 0 {
				t.Errorf("seed %d committed no snapshot", seed)
			}
			t.Logf("seed %d: %d events, %d aborts, latest snapshot %d, %d queries (%d degraded), subscriber %d delivered / %d shed / %d resyncs",
				seed, len(rep.Events), rep.Aborts, rep.Snapshots, rep.Queries, rep.Degraded,
				rep.SubDelivered, rep.SubShed, rep.SubResyncs)
		})
	}
}

// TestChaosSoakSameSeedSameState: running the harness twice with one seed
// must produce the identical fault schedule and the identical recovered
// state — determinism end to end, not just at the schedule level.
func TestChaosSoakSameSeedSameState(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs full workloads")
	}
	a, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule != b.Schedule {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a.Schedule, b.Schedule)
	}
	if !a.Match || !b.Match {
		t.Fatalf("exactly-once violated: run A match=%v run B match=%v", a.Match, b.Match)
	}
	if !equalCounts(a.Counts, b.Counts) {
		t.Fatalf("same seed, different recovered state: %v vs %v", a.Counts, b.Counts)
	}
}
