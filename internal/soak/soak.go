// Package soak is the chaos soak harness: it runs a deterministic counting
// workload twice — once fault-free (the oracle) and once under the
// seed-derived fault schedule of chaos.SoakSchedule — and verifies
// exactly-once processing by eventual equality of the two runs' final
// per-key counts. Lost records can never reach the oracle counts;
// duplicated records overshoot them; only exactly-once converges.
//
// The harness also re-derives the schedule from the seed before running
// and fails if the two renderings differ, making the reproducibility
// contract (same seed ⇒ same fault schedule ⇒ same recovered state) an
// executed check rather than a comment.
//
// It is used by `squery-soak -chaos` and by the package's own tests.
package soak

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery"
	"squery/internal/chaos"
	"squery/internal/obshttp"
	"squery/internal/trace"
)

// Config tunes one chaos soak run.
type Config struct {
	// Seed derives the fault schedule (chaos.SoakSchedule).
	Seed int64
	// Nodes and Partitions size the cluster (defaults 3 / 27).
	Nodes, Partitions int
	// Records is the workload size per source instance (two instances;
	// default 2500). Keys is the key-space width (default 10).
	Records int64
	Keys    int
	// Rate is the per-instance emit rate in records/second (default 5000)
	// — throttling keeps the job alive across enough checkpoints for the
	// scheduled ssid windows to actually occur.
	Rate float64
	// Interval is the checkpoint period (default 10ms).
	Interval time.Duration
	// Deadline bounds how long the chaos run may take to converge to the
	// oracle counts (default 30s).
	Deadline time.Duration
	// ObsAddr, when set, serves the HTTP observability plane over the
	// chaos run's engine on this address for the duration of the run.
	ObsAddr string
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Nodes < 2 {
		c.Nodes = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 27
	}
	if c.Records <= 0 {
		c.Records = 2500
	}
	if c.Keys <= 0 {
		c.Keys = 10
	}
	if c.Rate <= 0 {
		c.Rate = 5000
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Report is the outcome of one chaos soak run.
type Report struct {
	// Schedule is the canonical rendering of the fault plan.
	Schedule string
	// Events are the faults that actually fired, in order.
	Events []chaos.Event
	// Aborts is the number of checkpoint aborts the chaos run caused.
	Aborts int64
	// Snapshots is the latest committed snapshot id at the end of the run.
	Snapshots int64
	// Queries counts successful guarded queries issued during the run;
	// Degraded counts those answered partially from snapshot replicas.
	Queries, Degraded int64
	// Counts and Oracle are the final per-key live counts of the chaos run
	// and of the fault-free run; Match reports their equality — the
	// exactly-once verdict.
	Counts, Oracle map[int]int64
	Match          bool
	// Spans is the number of completed spans the chaos run's tracer
	// retained; ChaosSpans of those are fault-injection annotations, and
	// FailedCkptTraces counts distinct checkpoint traces containing a
	// failed span (aborted or superseded attempts). The soak runs with
	// aggressive sampling (1-in-16) so a run that fires faults without
	// recording any spans indicates broken tracing, not a quiet run.
	Spans, ChaosSpans, FailedCkptTraces int64
	// Subscriber accounting. The chaos run keeps a small-queue standing
	// query over the counting state whose consumer is frozen by the
	// ShedSubscriber fault: SubShed / SubResyncs count the shed frames and
	// resync snapshots that followed, SubCounts is the subscriber's final
	// folded view, and SubMatch reports whether that view re-converged to
	// the chaos run's polled live counts — the exactly-once verdict for
	// the delta stream through overload, crash recovery and shedding.
	SubShed, SubResyncs, SubDelivered uint64
	SubCounts                         map[int]int64
	SubMatch                          bool
}

// Run executes the oracle run, re-derives and checks the fault schedule,
// executes the chaos run, and returns the comparison.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	oracle, err := runWorkload(cfg, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("soak: oracle run: %w", err)
	}
	cfg.Logf("oracle run done: %d keys, latest snapshot %d", len(oracle.counts), oracle.snapshots)

	profile := chaos.SoakProfile{Nodes: cfg.Nodes, Partitions: cfg.Partitions, StallDelay: 5 * time.Millisecond}
	inj := chaos.SoakSchedule(cfg.Seed, profile)
	if again := chaos.SoakSchedule(cfg.Seed, profile).Schedule(); again != inj.Schedule() {
		return nil, fmt.Errorf("soak: schedule for seed %d not reproducible:\n%s\nvs\n%s",
			cfg.Seed, inj.Schedule(), again)
	}
	cfg.Logf("chaos schedule:\n%s", inj.Schedule())

	st, err := runWorkload(cfg, inj, oracle.counts)
	if err != nil {
		return nil, fmt.Errorf("soak: chaos run: %w", err)
	}
	return &Report{
		Schedule:         inj.Schedule(),
		Events:           inj.Events(),
		Aborts:           st.aborts,
		Snapshots:        st.snapshots,
		Queries:          st.queries,
		Degraded:         st.degraded,
		Counts:           st.counts,
		Oracle:           oracle.counts,
		Match:            equalCounts(st.counts, oracle.counts),
		Spans:            st.spans,
		ChaosSpans:       st.chaosSpans,
		FailedCkptTraces: st.failedCkpts,
		SubShed:          st.subShed,
		SubResyncs:       st.subResyncs,
		SubDelivered:     st.subDelivered,
		SubCounts:        st.subCounts,
		SubMatch:         st.subMatch,
	}, nil
}

type runStats struct {
	counts                         map[int]int64
	aborts, snapshots              int64
	queries, degraded              int64
	spans, chaosSpans, failedCkpts int64
	subShed, subResyncs            uint64
	subDelivered                   uint64
	subCounts                      map[int]int64
	subMatch                       bool
}

// runWorkload runs the counting workload once. With inj == nil it is the
// oracle: no faults, wait for the finite sources to drain. With an
// injector it is the chaos run: the same workload under the fault
// schedule, polled until the live counts converge to target (or Deadline
// passes — loss never converges, duplication overshoots and stays wrong).
func runWorkload(cfg Config, inj *chaos.Injector, target map[int]int64) (*runStats, error) {
	// Aggressive trace sampling (1-in-16) so record traces reliably overlap
	// the fault windows; state-latency sampling is seeded by the chaos seed
	// so both runs sample the same update sequence positions.
	eng := squery.New(squery.Config{
		Nodes:            cfg.Nodes,
		Partitions:       cfg.Partitions,
		ReplicateState:   true,
		TraceSampleEvery: 16,
		TraceCapacity:    1 << 16, // deep ring: keep chaos annotations despite checkpoint/query span churn
	})
	perInstance, keys := cfg.Records, cfg.Keys
	src := squery.GeneratorSource("src", 2, cfg.Rate, func(instance int, seq int64) (squery.Record, bool) {
		if seq >= perInstance {
			return squery.Record{}, false
		}
		return squery.Record{Key: int(seq % int64(keys)), Value: 1}, true
	})
	dag := squery.NewDAG().
		AddVertex(src).
		AddVertex(squery.StatefulMapVertex("chaoscount", 3, func(state any, rec squery.Record) (any, []squery.Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + rec.Value.(int), nil
		})).
		AddVertex(squery.SinkVertex("sink", 1, func(squery.Record) {})).
		Connect("src", "chaoscount", squery.EdgePartitioned).
		Connect("chaoscount", "sink", squery.EdgePartitioned)
	spec := squery.JobSpec{
		Name:              "soak-chaos",
		State:             squery.StateConfig{Live: true, Snapshots: true, LatencySampleSeed: cfg.Seed},
		SnapshotInterval:  cfg.Interval,
		CheckpointTimeout: 40 * time.Millisecond,
		CheckpointRetries: 5,
		CheckpointBackoff: 2 * time.Millisecond,
	}
	if inj != nil {
		spec.Chaos = inj
		eng.SetFaultHook(inj)
		inj.SetTracer(eng.Tracer())
		if cfg.ObsAddr != "" {
			srv, bound, err := obshttp.Serve(cfg.ObsAddr, obshttp.Options{
				Metrics: eng.Metrics(),
				Tracer:  eng.Tracer(),
				Health:  eng.Health,
				Ready:   eng.Ready,
			})
			if err != nil {
				return nil, fmt.Errorf("soak: obs plane: %w", err)
			}
			cfg.Logf("observability plane on http://%s", bound)
			defer srv.Close()
		}
	}
	job, err := eng.SubmitJob(dag, spec)
	if err != nil {
		return nil, err
	}
	defer job.Stop()

	// Guarded query traffic so the schedule's stalled/unreachable
	// partitions are exercised while checkpoints and crashes happen.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, degraded atomic.Int64
	if inj != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fallback := squery.QueryOptions{Policy: squery.PolicyFallback, PartitionTimeout: 10 * time.Millisecond}
			retry := squery.QueryOptions{
				Policy:           squery.PolicyRetry,
				PartitionTimeout: 10 * time.Millisecond,
				RetryBackoff:     time.Millisecond,
				RetryDeadline:    250 * time.Millisecond,
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				o := fallback
				if i%2 == 1 {
					o = retry
				}
				res, err := eng.QueryWithOptions(`SELECT SUM(value) FROM chaoscount`, o)
				if err == nil {
					queries.Add(1)
					if res.IsDegraded() {
						degraded.Add(1)
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Standing-query subscriber with a deliberately tiny queue over the
	// counting state. Its consumer folds frames into a view; the
	// schedule's ShedSubscriber fault freezes the consumer mid-run, the
	// queue overflows, frames are shed and the view must re-converge from
	// the resync snapshot — through the same crashes and rollbacks the
	// polled counts survive.
	var (
		sub     *squery.Subscription
		subMu   sync.Mutex
		subRows = map[string][]any{}
	)
	if inj != nil {
		// The live map appears when the operator's backends come up, which
		// races job submission — retry briefly instead of ordering on it.
		for subBy := time.Now().Add(5 * time.Second); ; {
			sub, err = eng.SubscribeWithOptions(`SUBSCRIBE SELECT partitionKey, value FROM chaoscount`, squery.SubOptions{Queue: 2})
			if err == nil {
				break
			}
			if time.Now().After(subBy) {
				return nil, fmt.Errorf("soak: subscribe: %w", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range sub.Events() {
				if d, ok := inj.SubscriberStall(); ok {
					cfg.Logf("chaos: freezing subscriber for %s", d)
					time.Sleep(d)
				}
				subMu.Lock()
				if ev.Snapshot {
					subRows = map[string][]any{}
				}
				for _, d := range ev.Deltas {
					if d.Delete {
						delete(subRows, d.Key)
					} else {
						subRows[d.Key] = append([]any(nil), d.Vals...)
					}
				}
				subMu.Unlock()
			}
		}()
	}
	subCounts := func() map[int]int64 {
		subMu.Lock()
		defer subMu.Unlock()
		out := make(map[int]int64, len(subRows))
		for _, vals := range subRows {
			if len(vals) != 2 {
				continue
			}
			k, ok1 := asInt(vals[0])
			v, ok2 := asInt(vals[1])
			if ok1 && ok2 {
				out[int(k)] = v
			}
		}
		return out
	}

	readCounts := func() map[int]int64 {
		ks := make([]squery.Key, keys)
		for i := range ks {
			ks[i] = i
		}
		out := make(map[int]int64, keys)
		for i, v := range eng.Object("chaoscount").GetLive(ks...) {
			if v != nil {
				out[i] = int64(v.(int))
			}
		}
		return out
	}

	var counts map[int]int64
	if target == nil {
		job.Wait()
		counts = readCounts()
	} else {
		deadline := time.Now().Add(cfg.Deadline)
		for {
			counts = readCounts()
			if equalCounts(counts, target) {
				break
			}
			if overshoots(counts, target) {
				// Live counts only grow between rollbacks and are bounded
				// by the true totals: exceeding the oracle means a record
				// was processed twice. No point waiting further.
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	var subStats squery.SubStats
	if sub != nil {
		// The delta stream lags the polled state by whatever is in flight;
		// give the subscriber's view time to fold the tail before judging.
		subDeadline := time.Now().Add(cfg.Deadline)
		for !equalCounts(subCounts(), counts) && time.Now().Before(subDeadline) {
			time.Sleep(5 * time.Millisecond)
		}
		subStats = sub.Stats()
		sub.Close()
	}
	wg.Wait()
	st := &runStats{
		counts:    counts,
		aborts:    job.CheckpointAborts(),
		snapshots: job.LatestSnapshotID(),
		queries:   queries.Load(),
		degraded:  degraded.Load(),
	}
	if sub != nil {
		st.subShed = subStats.Shed
		st.subResyncs = subStats.Resyncs
		st.subDelivered = subStats.Delivered
		st.subCounts = subCounts()
		st.subMatch = equalCounts(st.subCounts, counts)
	}
	if tr := eng.Tracer(); tr != nil {
		failedCkpts := map[uint64]bool{}
		for _, d := range tr.Spans() {
			st.spans++
			switch d.Kind {
			case trace.KindChaos:
				st.chaosSpans++
			case trace.KindCheckpoint:
				if d.Failed {
					failedCkpts[d.TraceID] = true
				}
			}
		}
		st.failedCkpts = int64(len(failedCkpts))
	}
	return st, nil
}

func equalCounts(a, b map[int]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// asInt widens the subscriber's delta values (ints from the live state,
// int64s from SQL evaluation) for count comparison.
func asInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int64:
		return n, true
	case uint64:
		return int64(n), true
	case float64:
		return int64(n), true
	}
	return 0, false
}

func overshoots(got, want map[int]int64) bool {
	for k, v := range got {
		if v > want[k] {
			return true
		}
	}
	return false
}
