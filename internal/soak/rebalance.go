package soak

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery"
	"squery/internal/chaos"
	"squery/internal/cluster"
	"squery/internal/kv"
	"squery/internal/transport"
)

// The rebalance soak exercises elastic membership under chaos: the same
// deterministic counting workload runs once on a static cluster (the
// oracle) and once while nodes join and leave mid-run — with seed-derived
// migration faults killing a source mid-handoff, killing a target before
// its ack, and dropping an epoch-bump broadcast. Exactly-once is verified
// the same way as the checkpoint chaos soak: the live counts of the
// elastic run must converge to the oracle's, and any overshoot is a
// duplicated record. The run also asserts the liveness backstop stayed
// cold (no fenced write was ever forced through) and that the membership
// tables answered queries while rebalances were in flight.

// RebalanceConfig tunes one rebalance soak run.
type RebalanceConfig struct {
	// Seed derives the migration fault schedule (chaos.RebalanceSchedule).
	Seed int64
	// Nodes and Partitions size the starting cluster (defaults 3 / 27).
	Nodes, Partitions int
	// Records is the workload size per source instance (two instances;
	// default 2500). Keys is the key-space width (default 10).
	Records int64
	Keys    int
	// Rate is the per-instance emit rate in records/second (default 5000).
	Rate float64
	// Interval is the checkpoint period (default 10ms).
	Interval time.Duration
	// Deadline bounds convergence of the elastic run (default 30s).
	Deadline time.Duration
	// Changes is how many membership changes the driver performs,
	// alternating join and leave (default 5 — enough rebalances for every
	// scheduled fault window to occur).
	Changes int
	// Wire selects the transport: "sim" (default) or "tcp" (loopback TCP).
	Wire string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Nodes < 2 {
		c.Nodes = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 27
	}
	if c.Records <= 0 {
		c.Records = 2500
	}
	if c.Keys <= 0 {
		c.Keys = 10
	}
	if c.Rate <= 0 {
		c.Rate = 5000
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Changes <= 0 {
		c.Changes = 5
	}
	if c.Wire == "" {
		c.Wire = "sim"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RebalanceReport is the outcome of one rebalance soak run.
type RebalanceReport struct {
	// Schedule is the canonical rendering of the migration fault plan.
	Schedule string
	// Events are the migration faults that actually fired, in order.
	Events []chaos.Event
	// Joins and Leaves count membership changes that completed; MemErrors
	// counts those cut short by a chaos kill (tolerated, the cluster keeps
	// serving).
	Joins, Leaves, MemErrors int
	// Rebalances is how many rebalances ran; AbortedMoves how many
	// individual migrations a kill rolled back.
	Rebalances, AbortedMoves int
	// Fence is the store's cumulative fencing tally. Rejects > 0 proves
	// stale-epoch writes were actually fenced; Forced must be 0.
	Fence kv.FenceStats
	// Reschedules is how many times the job restarted over a new topology.
	Reschedules int64
	// Epoch is the final partition-table epoch.
	Epoch int64
	// SysQueries counts successful sys.membership / sys.rebalances queries
	// issued while the driver was changing membership.
	SysQueries int64
	// Counts and Oracle are the final per-key live counts; Match is the
	// exactly-once verdict.
	Counts, Oracle map[int]int64
	Match          bool
}

// RunRebalance executes the static oracle run, re-derives and checks the
// migration fault schedule, executes the elastic chaos run, and returns
// the comparison.
func RunRebalance(cfg RebalanceConfig) (*RebalanceReport, error) {
	cfg = cfg.withDefaults()

	oracle, err := runElastic(cfg, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("soak: oracle run: %w", err)
	}
	cfg.Logf("oracle run done: %d keys", len(oracle.counts))

	profile := chaos.RebalanceProfile{Stall: 5 * time.Millisecond}
	inj := chaos.RebalanceSchedule(cfg.Seed, profile)
	if again := chaos.RebalanceSchedule(cfg.Seed, profile).Schedule(); again != inj.Schedule() {
		return nil, fmt.Errorf("soak: rebalance schedule for seed %d not reproducible", cfg.Seed)
	}
	cfg.Logf("migration fault schedule:\n%s", inj.Schedule())

	st, err := runElastic(cfg, inj, oracle.counts)
	if err != nil {
		return nil, fmt.Errorf("soak: elastic run: %w", err)
	}
	return &RebalanceReport{
		Schedule:     inj.Schedule(),
		Events:       inj.Events(),
		Joins:        st.joins,
		Leaves:       st.leaves,
		MemErrors:    st.memErrors,
		Rebalances:   st.rebalances,
		AbortedMoves: st.abortedMoves,
		Fence:        st.fence,
		Reschedules:  st.reschedules,
		Epoch:        st.epoch,
		SysQueries:   st.sysQueries,
		Counts:       st.counts,
		Oracle:       oracle.counts,
		Match:        equalCounts(st.counts, oracle.counts),
	}, nil
}

type elasticStats struct {
	counts                   map[int]int64
	joins, leaves, memErrors int
	rebalances, abortedMoves int
	fence                    kv.FenceStats
	reschedules              int64
	epoch                    int64
	sysQueries               int64
}

// runElastic runs the counting workload once. With inj == nil it is the
// static oracle; with an injector the membership driver joins and removes
// nodes mid-run under the migration fault schedule, and the run is polled
// until the live counts converge to target.
func runElastic(cfg RebalanceConfig, inj *chaos.Injector, target map[int]int64) (*elasticStats, error) {
	ecfg := squery.Config{
		Nodes:          cfg.Nodes,
		Partitions:     cfg.Partitions,
		ReplicateState: true,
	}
	switch cfg.Wire {
	case "sim":
	case "tcp":
		lb, err := transport.NewLoopback()
		if err != nil {
			return nil, err
		}
		ecfg.Transport = lb
	default:
		return nil, fmt.Errorf("soak: unknown wire %q (want sim or tcp)", cfg.Wire)
	}
	eng := squery.New(ecfg)
	defer eng.Close()
	if inj != nil {
		eng.SetMigrationHook(inj)
		inj.SetTracer(eng.Tracer())
	}

	perInstance, keys := cfg.Records, cfg.Keys
	src := squery.GeneratorSource("src", 2, cfg.Rate, func(instance int, seq int64) (squery.Record, bool) {
		if seq >= perInstance {
			return squery.Record{}, false
		}
		return squery.Record{Key: int(seq % int64(keys)), Value: 1}, true
	})
	dag := squery.NewDAG().
		AddVertex(src).
		AddVertex(squery.StatefulMapVertex("rebalcount", 3, func(state any, rec squery.Record) (any, []squery.Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + rec.Value.(int), nil
		})).
		AddVertex(squery.SinkVertex("sink", 1, func(squery.Record) {})).
		Connect("src", "rebalcount", squery.EdgePartitioned).
		Connect("rebalcount", "sink", squery.EdgePartitioned)
	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:              "soak-rebalance",
		State:             squery.StateConfig{Live: true, Snapshots: true, LatencySampleSeed: cfg.Seed},
		SnapshotInterval:  cfg.Interval,
		CheckpointTimeout: 40 * time.Millisecond,
		CheckpointRetries: 5,
		CheckpointBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer job.Stop()

	st := &elasticStats{}
	var sysQueries atomic.Int64
	var wg sync.WaitGroup
	if inj != nil {
		// Membership driver: alternate joins and leaves while the workload
		// runs, observing the rebalances through the sys tables as it goes.
		// Every completed change makes the job reschedule over the new
		// topology; a chaos kill aborting a Join/Leave surfaces as an error
		// here and is tolerated — the cluster keeps serving either way.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.Changes; i++ {
				time.Sleep(25 * time.Millisecond)
				if i%2 == 0 {
					node, err := eng.JoinNode()
					if err != nil {
						st.memErrors++
						cfg.Logf("join: %v", err)
					} else {
						st.joins++
						cfg.Logf("node %d joined (epoch %d)", node, eng.TableEpoch())
					}
				} else {
					node := leavable(eng)
					if node < 0 {
						continue
					}
					if err := eng.LeaveNode(node); err != nil {
						st.memErrors++
						cfg.Logf("leave %d: %v", node, err)
					} else {
						st.leaves++
						cfg.Logf("node %d left (epoch %d)", node, eng.TableEpoch())
					}
				}
				// The membership tables must answer while a rebalance may
				// be running; failures here mean the visibility plane broke.
				if _, err := eng.Query(`SELECT COUNT(*) FROM "sys.membership" WHERE live = true`); err == nil {
					sysQueries.Add(1)
				}
				if _, err := eng.Query(`SELECT COUNT(*) FROM "sys.rebalances"`); err == nil {
					sysQueries.Add(1)
				}
			}
		}()
	}

	readCounts := func() map[int]int64 {
		ks := make([]squery.Key, keys)
		for i := range ks {
			ks[i] = i
		}
		out := make(map[int]int64, keys)
		for i, v := range eng.Object("rebalcount").GetLive(ks...) {
			if v != nil {
				out[i] = int64(v.(int))
			}
		}
		return out
	}

	var counts map[int]int64
	if target == nil {
		job.Wait()
		counts = readCounts()
	} else {
		deadline := time.Now().Add(cfg.Deadline)
		for {
			counts = readCounts()
			if equalCounts(counts, target) {
				// The driver may still be mid-change; a pending reschedule
				// replays deterministically to the same totals, so the
				// verdict stands.
				break
			}
			if overshoots(counts, target) {
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	wg.Wait()
	if target != nil && !equalCounts(counts, target) {
		// The last membership change may have rescheduled the job after the
		// poll broke off; give the replay one more window to converge.
		deadline := time.Now().Add(cfg.Deadline / 2)
		for time.Now().Before(deadline) {
			counts = readCounts()
			if equalCounts(counts, target) || overshoots(counts, target) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	st.counts = counts
	st.fence = eng.FenceStats()
	st.reschedules = job.Reschedules()
	st.epoch = eng.TableEpoch()
	st.sysQueries = sysQueries.Load()
	for _, r := range eng.Rebalances() {
		st.rebalances++
		for _, mv := range r.Moves {
			if mv.Aborted {
				st.abortedMoves++
			}
		}
	}
	return st, nil
}

// leavable picks the node the driver retires next: the highest-id live
// node other than 0, and only while at least three nodes are live (so a
// concurrent chaos kill can never empty the cluster).
func leavable(eng *squery.Engine) int {
	live := []int{}
	for _, m := range eng.Members() {
		if m.State == cluster.NodeLive {
			live = append(live, m.Node)
		}
	}
	if len(live) < 3 {
		return -1
	}
	for i := len(live) - 1; i >= 0; i-- {
		if live[i] != 0 {
			return live[i]
		}
	}
	return -1
}
