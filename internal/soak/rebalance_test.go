package soak

import "testing"

// The rebalance soak is the acceptance check for elastic membership: a
// counting workload runs while nodes join and leave, chaos kills a
// migration source mid-handoff and a target pre-ack, and one epoch-bump
// broadcast is dropped — and the final counts must still converge to the
// static oracle's, exactly once, with the forced-write backstop cold.

func TestRebalanceSoakSim(t *testing.T) { runRebalanceSoak(t, "sim", 1) }

func TestRebalanceSoakTCP(t *testing.T) { runRebalanceSoak(t, "tcp", 2) }

func runRebalanceSoak(t *testing.T, wire string, seed int64) {
	rep, err := RunRebalance(RebalanceConfig{Seed: seed, Wire: wire, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("joins=%d leaves=%d memErrs=%d rebalances=%d abortedMoves=%d fence=%+v reschedules=%d epoch=%d sysQueries=%d",
		rep.Joins, rep.Leaves, rep.MemErrors, rep.Rebalances, rep.AbortedMoves,
		rep.Fence, rep.Reschedules, rep.Epoch, rep.SysQueries)
	for _, e := range rep.Events {
		t.Logf("fired: %s", e)
	}
	if !rep.Match {
		t.Fatalf("exactly-once violated: counts %v != oracle %v", rep.Counts, rep.Oracle)
	}
	if rep.Fence.Forced != 0 {
		t.Fatalf("liveness backstop fired: %d fenced writes were forced through", rep.Fence.Forced)
	}
	if rep.Joins == 0 {
		t.Fatal("no node ever joined — the driver did not run")
	}
	if rep.Rebalances == 0 {
		t.Fatal("no rebalance ran")
	}
	if rep.SysQueries == 0 {
		t.Fatal("sys.membership/sys.rebalances never answered during the run")
	}
	if len(rep.Events) == 0 {
		t.Fatal("no migration fault fired — the schedule missed every rebalance")
	}
}
