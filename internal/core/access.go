package core

import (
	"fmt"
	"strings"

	"squery/internal/kv"
)

// The access-path abstraction: one description of *how* a partition scan
// finds its rows, shared by the planner (which chooses it), the catalog
// (which routes it to the kv layer) and EXPLAIN (which renders it). A
// full scan iterates the entries map; an index path probes a secondary
// index maintained inline on the state-update path, converting
// rows_scanned from O(table) to O(selectivity) while the pushed filter
// keeps exact semantics (the index yields a candidate superset, never a
// subset — see internal/kv/index.go).

// IndexKind re-exports the kv index structure kinds.
type IndexKind = kv.IndexKind

const (
	IndexHash  = kv.IndexHash
	IndexBTree = kv.IndexBTree
)

// PathKind discriminates the access paths a scan can take.
type PathKind int

const (
	// FullScan iterates every entry of the partition (the zero value —
	// a spec without a Path full-scans).
	FullScan PathKind = iota
	// IndexEq probes a secondary index for one value.
	IndexEq
	// IndexRange walks a B-tree index over an inclusive range.
	IndexRange
)

// AccessPath describes how partition scans of one table source find
// candidate rows. Eq/Lo/Hi are literal values from the query; bounds are
// inclusive and nil means unbounded (index-level candidates only — the
// pushed filter enforces exact and strict semantics).
type AccessPath struct {
	Kind   PathKind
	Column string
	Eq     any
	Lo, Hi any
}

// String renders the path for EXPLAIN ("index eq(zone)",
// "index range(lat)", "full scan").
func (a *AccessPath) String() string {
	if a == nil || a.Kind == FullScan {
		return "full scan"
	}
	var b strings.Builder
	if a.Kind == IndexEq {
		fmt.Fprintf(&b, "index eq(%s = %v)", a.Column, a.Eq)
	} else {
		fmt.Fprintf(&b, "index range(%s", a.Column)
		if a.Lo != nil {
			fmt.Fprintf(&b, " >= %v", a.Lo)
		}
		if a.Lo != nil && a.Hi != nil {
			b.WriteString(" and")
			fmt.Fprintf(&b, " %s", a.Column)
		}
		if a.Hi != nil {
			fmt.Fprintf(&b, " <= %v", a.Hi)
		}
		b.WriteString(")")
	}
	return b.String()
}

// lookup converts the path to a kv probe; ok is false for full scans.
func (a *AccessPath) lookup() (kv.IndexLookup, bool) {
	if a == nil {
		return kv.IndexLookup{}, false
	}
	switch a.Kind {
	case IndexEq:
		return kv.IndexLookup{Col: a.Column, Eq: a.Eq}, true
	case IndexRange:
		return kv.IndexLookup{Col: a.Column, Range: true, Lo: a.Lo, Hi: a.Hi}, true
	default:
		return kv.IndexLookup{}, false
	}
}

// ChainValueIndexer extracts a column from every live version of a
// snapshot map's version chain — the multi-valued extractor that makes
// one index serve *all* snapshot ids: the candidate set for any probe is
// the union over versions, a superset of the rows resolvable at any
// particular SSID (the At() re-resolution and the pushed filter narrow it
// back down). Chains whose versions are all tombstones index nowhere —
// a full scan never examines them either.
func ChainValueIndexer(value any, col string) (vals []any, complete bool) {
	ch, ok := value.(*Chain)
	if !ok {
		return nil, false
	}
	complete = true
	for _, v := range ch.items {
		if v.Tombstone {
			continue
		}
		f, ok := kv.AsRow(v.Value).Field(col)
		if !ok || f == nil {
			complete = false
			continue
		}
		vals = append(vals, f)
	}
	return vals, complete
}

// CreateIndex builds a secondary index on one column of a state table and
// registers it for inline maintenance on the update path. The table name
// follows the catalog convention: <op> indexes live state,
// snapshot_<op> indexes the snapshot version chains (via
// ChainValueIndexer, so the index stays valid for every queryable SSID).
// Virtual (sys.*) tables cannot be indexed. Creating an index twice is
// idempotent; the operator does not need to be registered yet — indexes
// are usually created right after job registration, before data flows.
func (c *Catalog) CreateIndex(table, column string, kind IndexKind) error {
	name := sanitize(table)
	c.mu.RLock()
	_, virt := c.virtuals[name]
	c.mu.RUnlock()
	if virt {
		return fmt.Errorf("core: cannot index virtual table %q", table)
	}
	if column == ColPartitionKey || column == ColSSID {
		return fmt.Errorf("core: cannot index pseudo-column %q (partition pruning and snapshot pinning already serve it)", column)
	}
	var extract kv.ValueIndexer
	if strings.HasPrefix(name, "snapshot_") {
		extract = ChainValueIndexer
	}
	_, err := c.store.GetMap(name).CreateIndex(column, kind, extract)
	return err
}

// HasIndex reports whether the table has a ready index on column that can
// serve equality (needRange false) or range (needRange true) probes.
func (t *TableRef) HasIndex(column string, needRange bool) bool {
	if t.virtual != nil {
		return false
	}
	return t.mapRef().HasIndex(column, needRange)
}

// EstimatePath returns the expected number of candidate rows the path
// would examine across the whole table, and whether an index can serve
// it. Full scans estimate the table size. The planner compares these to
// pick the cheapest path.
func (t *TableRef) EstimatePath(path *AccessPath) (int64, bool) {
	if t.virtual != nil {
		return 0, false
	}
	m := t.mapRef()
	lk, ok := path.lookup()
	if !ok {
		return int64(m.Size()), true
	}
	return m.EstimateLookup(lk)
}

// mapRef resolves the kv map backing this (non-virtual) table.
func (t *TableRef) mapRef() *kv.Map {
	if t.snapshot {
		return t.store.GetMap(SnapshotMapName(t.op))
	}
	return t.store.GetMap(LiveMapName(t.op))
}
