package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChainNilSafe(t *testing.T) {
	var c *Chain
	if c.Len() != 0 {
		t.Fatal("nil chain Len != 0")
	}
	if _, ok := c.At(5); ok {
		t.Fatal("nil chain At returned ok")
	}
	if _, ok := c.Newest(); ok {
		t.Fatal("nil chain Newest returned ok")
	}
	if c.Prune(1) != nil {
		t.Fatal("pruning nil chain should stay nil")
	}
	c2 := c.With(Versioned{SSID: 1, Value: "a"})
	if c2.Len() != 1 {
		t.Fatal("With on nil chain failed")
	}
}

func TestChainAtResolvesLatestLE(t *testing.T) {
	c := NewChain(
		Versioned{SSID: 2, Value: "v2"},
		Versioned{SSID: 5, Value: "v5"},
		Versioned{SSID: 9, Value: "v9"},
	)
	cases := []struct {
		target int64
		want   string
		ok     bool
	}{
		{1, "", false},
		{2, "v2", true},
		{3, "v2", true},
		{5, "v5", true},
		{8, "v5", true},
		{9, "v9", true},
		{100, "v9", true},
	}
	for _, tc := range cases {
		v, ok := c.At(tc.target)
		if ok != tc.ok || (ok && v.Value != tc.want) {
			t.Errorf("At(%d) = %v, %v; want %q, %v", tc.target, v.Value, ok, tc.want, tc.ok)
		}
	}
}

func TestChainTombstoneHidesKey(t *testing.T) {
	c := NewChain(
		Versioned{SSID: 1, Value: "alive"},
		Versioned{SSID: 3, Tombstone: true},
		Versioned{SSID: 5, Value: "back"},
	)
	if _, ok := c.At(1); !ok {
		t.Error("At(1) should see the key")
	}
	if _, ok := c.At(3); ok {
		t.Error("At(3) should hide the deleted key")
	}
	if _, ok := c.At(4); ok {
		t.Error("At(4) should still hide the key")
	}
	if v, ok := c.At(5); !ok || v.Value != "back" {
		t.Error("At(5) should see the re-created key")
	}
}

func TestChainWithImmutable(t *testing.T) {
	c1 := NewChain(Versioned{SSID: 1, Value: "a"})
	c2 := c1.With(Versioned{SSID: 2, Value: "b"})
	if c1.Len() != 1 || c2.Len() != 2 {
		t.Fatalf("lens = %d, %d", c1.Len(), c2.Len())
	}
	if v, _ := c1.At(10); v.Value != "a" {
		t.Error("original chain mutated by With")
	}
}

func TestChainWithSameSSIDReplaces(t *testing.T) {
	c := NewChain(Versioned{SSID: 1, Value: "a"}).With(Versioned{SSID: 1, Value: "b"})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.At(1); v.Value != "b" {
		t.Errorf("At(1) = %v, want b", v.Value)
	}
}

func TestChainWithOutOfOrder(t *testing.T) {
	c := NewChain(Versioned{SSID: 5, Value: "v5"}).With(Versioned{SSID: 3, Value: "v3"})
	if v, _ := c.At(4); v.Value != "v3" {
		t.Errorf("At(4) = %v, want v3", v.Value)
	}
	if v, _ := c.At(5); v.Value != "v5" {
		t.Errorf("At(5) = %v, want v5", v.Value)
	}
}

func TestChainPrune(t *testing.T) {
	c := NewChain(
		Versioned{SSID: 1, Value: "v1"},
		Versioned{SSID: 2, Value: "v2"},
		Versioned{SSID: 4, Value: "v4"},
		Versioned{SSID: 6, Value: "v6"},
	)
	p := c.Prune(4)
	// v2 becomes the base (newest < 4), v1 is dropped.
	if p.Len() != 3 {
		t.Fatalf("pruned Len = %d, want 3", p.Len())
	}
	if _, ok := p.At(1); ok {
		t.Error("pruned chain still answers below base")
	}
	// At the oldest retained id, the base must still answer for keys
	// unchanged since before it.
	if v, ok := p.At(3); !ok || v.Value != "v2" {
		t.Errorf("At(3) after prune = %v, %v; want v2", v.Value, ok)
	}
	if v, ok := p.At(6); !ok || v.Value != "v6" {
		t.Errorf("At(6) after prune = %v, %v", v.Value, ok)
	}
}

func TestChainPruneNoOpReturnsSame(t *testing.T) {
	c := NewChain(Versioned{SSID: 5, Value: "x"})
	if c.Prune(3) != c {
		t.Error("prune below all versions should return the same chain")
	}
}

func TestChainPruneTombstoneBaseDropped(t *testing.T) {
	c := NewChain(
		Versioned{SSID: 1, Value: "v1"},
		Versioned{SSID: 2, Tombstone: true},
	)
	if got := c.Prune(5); got != nil {
		t.Errorf("chain ending in pre-oldest tombstone should prune to nil, got %d versions", got.Len())
	}
	// Tombstone base followed by a retained live version: only the
	// tombstone and its predecessors go.
	c = NewChain(
		Versioned{SSID: 1, Value: "v1"},
		Versioned{SSID: 2, Tombstone: true},
		Versioned{SSID: 7, Value: "v7"},
	)
	p := c.Prune(5)
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	if _, ok := p.At(5); ok {
		t.Error("key should be absent at 5 (deleted before oldest)")
	}
	if v, ok := p.At(7); !ok || v.Value != "v7" {
		t.Error("retained version lost by prune")
	}
}

// Property: for any random version set and any target ≥ oldest retained,
// pruning never changes the result of At.
func TestChainPrunePreservesReads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChain()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			c = c.With(Versioned{
				SSID:      int64(1 + rng.Intn(20)),
				Value:     rng.Intn(100),
				Tombstone: rng.Intn(5) == 0,
			})
		}
		oldest := int64(1 + rng.Intn(20))
		p := c.Prune(oldest)
		for target := oldest; target <= 21; target++ {
			v1, ok1 := c.At(target)
			v2, ok2 := p.At(target)
			if ok1 != ok2 || (ok1 && v1.Value != v2.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: versions are always sorted ascending after any insert order.
func TestChainAlwaysSorted(t *testing.T) {
	f := func(ssids []uint8) bool {
		c := NewChain()
		for _, s := range ssids {
			c = c.With(Versioned{SSID: int64(s), Value: int(s)})
		}
		vs := c.Versions()
		for i := 1; i < len(vs); i++ {
			if vs[i].SSID < vs[i-1].SSID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
