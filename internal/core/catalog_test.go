package core

import (
	"testing"

	"squery/internal/kv"
)

// specFixture builds a catalog with a live+snapshot operator holding n
// keyed map rows, checkpointed once (ssid 1).
func specFixture(t *testing.T, n int) (*Catalog, *Manager) {
	t.Helper()
	store := newTestStore()
	m := NewManager(store, 2)
	cfg := Config{Live: true, Snapshots: true}
	if err := m.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	b := NewBackend("op", 0, store.View(0), cfg)
	for i := 0; i < n; i++ {
		b.Update(i, map[string]any{"val": i, "extra": "x"})
	}
	checkpoint(t, m, b)
	cat := NewCatalog(store)
	if err := cat.RegisterJob(m.Registry(), "op"); err != nil {
		t.Fatal(err)
	}
	return cat, m
}

func scanAllSpec(t *testing.T, ref *TableRef, spec ScanSpec) []TableRow {
	t.Helper()
	var out []TableRow
	for p := 0; p < ref.Partitions(); p++ {
		ref.ScanPartitionSpec(p, spec, func(r TableRow) bool {
			out = append(out, r)
			return true
		})
	}
	return out
}

func TestScanPartitionSpecFilterAndProjection(t *testing.T) {
	cat, _ := specFixture(t, 40)
	for _, table := range []string{"op", "snapshot_op"} {
		ref, err := cat.Table(table)
		if err != nil {
			t.Fatal(err)
		}
		ssid, err := ref.ResolveSSID(0)
		if err != nil {
			t.Fatal(err)
		}
		rows := scanAllSpec(t, ref, ScanSpec{
			SSID: ssid,
			Filter: func(r TableRow) bool {
				v, _ := r.Field("val")
				return v.(int) < 10
			},
			Cols: []string{"val"},
		})
		if len(rows) != 10 {
			t.Fatalf("%s: filtered scan returned %d rows, want 10", table, len(rows))
		}
		for _, r := range rows {
			if v, ok := r.Field("val"); !ok || v.(int) >= 10 {
				t.Fatalf("%s: filter leaked row val=%v ok=%v", table, v, ok)
			}
			// Projection dropped the other column and the raw object.
			if _, ok := r.Field("extra"); ok {
				t.Fatalf("%s: projected row still resolves dropped column", table)
			}
			if r.Raw != nil {
				t.Fatalf("%s: projected row kept Raw", table)
			}
			// Pseudo-columns survive projection: they live on TableRow.
			if _, ok := r.Field(ColPartitionKey); !ok {
				t.Fatalf("%s: projected row lost partitionKey", table)
			}
		}
	}
}

func TestScanPartitionSpecNilColsShipsAll(t *testing.T) {
	cat, _ := specFixture(t, 8)
	ref, err := cat.Table("op")
	if err != nil {
		t.Fatal(err)
	}
	rows := scanAllSpec(t, ref, ScanSpec{})
	if len(rows) != 8 {
		t.Fatalf("unfiltered scan returned %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Field("extra"); !ok {
			t.Fatal("nil Cols dropped a column")
		}
		if r.Raw == nil {
			t.Fatal("nil Cols dropped Raw")
		}
	}
}

func TestScanPartitionSpecDoneCancels(t *testing.T) {
	cat, _ := specFixture(t, 200)
	ref, err := cat.Table("op")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	rows := scanAllSpec(t, ref, ScanSpec{Done: done})
	if len(rows) != 0 {
		t.Fatalf("cancelled scan still produced %d rows", len(rows))
	}
}

func TestScanPartitionSpecVirtual(t *testing.T) {
	cat, _ := specFixture(t, 1)
	cat.RegisterVirtual("sys.things", func() []TableRow {
		var out []TableRow
		for i := 0; i < 6; i++ {
			out = append(out, TableRow{Key: i, Value: kv.AsRow(map[string]any{"n": i, "pad": "p"})})
		}
		return out
	})
	ref, err := cat.Table("sys.things")
	if err != nil {
		t.Fatal(err)
	}
	var got []TableRow
	ref.ScanPartitionSpec(0, ScanSpec{
		Filter: func(r TableRow) bool { v, _ := r.Field("n"); return v.(int)%2 == 0 },
		Cols:   []string{"n"},
	}, func(r TableRow) bool {
		got = append(got, r)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("virtual spec scan returned %d rows, want 3", len(got))
	}
	if _, ok := got[0].Field("pad"); ok {
		t.Fatal("virtual projection kept dropped column")
	}
}
