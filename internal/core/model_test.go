package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIncrementalMatchesModel is the central invariant of incremental
// snapshots: for ANY random sequence of updates, deletes and checkpoints,
// reconstructing the state at every retained snapshot id through the
// version chains must produce exactly the state a model map held when
// that checkpoint was taken — including after pruning evicts old
// versions. This exercises the full differential-read path of §VI.A.
func TestIncrementalMatchesModel(t *testing.T) {
	run := func(seed int64, incremental bool) error {
		rng := rand.New(rand.NewSource(seed))
		store := newTestStore()
		mgr := NewManager(store, 1+rng.Intn(3))
		cfg := Config{Snapshots: true, Incremental: incremental}
		if err := mgr.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg}); err != nil {
			return err
		}
		b := NewBackend("op", 0, store.View(0), cfg)

		model := map[int]int{}              // current state
		recorded := map[int64]map[int]int{} // ssid -> state at checkpoint
		keySpace := 1 + rng.Intn(30)

		steps := 20 + rng.Intn(60)
		for s := 0; s < steps; s++ {
			switch rng.Intn(10) {
			case 0: // checkpoint
				ssid, err := mgr.Begin()
				if err != nil {
					return err
				}
				if _, err := b.SnapshotPrepare(ssid); err != nil {
					return err
				}
				mgr.Commit(ssid)
				snap := make(map[int]int, len(model))
				for k, v := range model {
					snap[k] = v
				}
				recorded[ssid] = snap
			case 1, 2: // delete
				k := rng.Intn(keySpace)
				delete(model, k)
				b.Delete(k)
			default: // update
				k := rng.Intn(keySpace)
				v := rng.Int()
				model[k] = v
				b.Update(k, v)
			}
		}

		// Verify every still-queryable snapshot against the model.
		for _, ssid := range mgr.Registry().Committed() {
			want := recorded[ssid]
			got := map[int]int{}
			// Use the catalog path (the one queries take).
			cat := NewCatalog(store)
			if err := cat.RegisterJob(mgr.Registry(), "op"); err != nil {
				return err
			}
			tab, err := cat.Table("snapshot_op")
			if err != nil {
				return err
			}
			target, err := tab.ResolveSSID(ssid)
			if err != nil {
				return err
			}
			tab.Scan(target, func(r TableRow) bool {
				got[r.Key.(int)] = r.Raw.(int)
				return true
			})
			if len(got) != len(want) {
				return fmt.Errorf("seed %d inc=%v ssid %d: %d keys, want %d", seed, incremental, ssid, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					return fmt.Errorf("seed %d inc=%v ssid %d key %d: got %d want %d", seed, incremental, ssid, k, got[k], v)
				}
			}
			cat.UnregisterJob("op")
		}
		return nil
	}

	f := func(seed int64, incremental bool) bool {
		if err := run(seed, incremental); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
