package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/snapshot"
)

// Pseudo-column names every S-QUERY table exposes in addition to the
// state object's own fields (Figure 4 of the paper).
const (
	// ColPartitionKey is the operator's state key — the join column of
	// the paper's queries (JOIN ... USING(partitionKey)).
	ColPartitionKey = "partitionKey"
	// ColSSID is the snapshot id of a snapshot-table row.
	ColSSID = "ssid"
)

// TableRow is one row of a live or snapshot table: the state key, the
// snapshot version it came from (0 for live rows) and the state object's
// columns.
type TableRow struct {
	Key   partition.Key
	SSID  int64
	Value kv.Row
	// Raw is the state object itself, before Row adaptation — the direct
	// object interface hands it back unwrapped.
	Raw any
}

// Field implements kv.Row, layering the pseudo-columns over the state
// object's fields.
func (r TableRow) Field(name string) (any, bool) {
	switch name {
	case ColPartitionKey:
		return r.Key, true
	case ColSSID:
		return r.SSID, true
	}
	return r.Value.Field(name)
}

// Columns implements kv.Row.
func (r TableRow) Columns() []string {
	return append(r.Value.Columns(), ColPartitionKey, ColSSID)
}

// Catalog resolves SQL table names to scannable state tables. A table
// name is either an operator name (live state) or snapshot_<operator>
// (snapshot state); the catalog knows which snapshot registry governs
// each operator so that unpinned snapshot queries resolve to the latest
// committed id atomically (§VI.A).
type Catalog struct {
	store *kv.Store

	mu       sync.RWMutex
	regs     map[string]*snapshot.Registry // sanitized op name -> registry
	virtuals map[string]func() []TableRow  // sanitized name -> row provider
}

// NewCatalog creates an empty catalog over the store.
func NewCatalog(store *kv.Store) *Catalog {
	return &Catalog{
		store:    store,
		regs:     make(map[string]*snapshot.Registry),
		virtuals: make(map[string]func() []TableRow),
	}
}

// Partitions returns the partition count of the underlying store.
func (c *Catalog) Partitions() int { return c.store.Partitioner().Count() }

// RegisterVirtual registers a virtual table: a name (conventionally
// sys.<something>) whose rows are produced on demand by the provider
// instead of read from partitioned state. Virtual tables are how the
// engine's own telemetry (sys.operators, sys.partitions, sys.checkpoints,
// sys.queries) becomes queryable through the normal SQL path. The provider
// must be safe for concurrent calls and returns a point-in-time row set.
func (c *Catalog) RegisterVirtual(name string, rows func() []TableRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.virtuals[sanitize(name)] = rows
}

// Virtuals returns the names of all registered virtual tables, sorted.
func (c *Catalog) Virtuals() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.virtuals))
	for n := range c.virtuals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterJob associates the stateful operators of a job with its
// snapshot registry. Operator names must be unique across jobs.
func (c *Catalog) RegisterJob(reg *snapshot.Registry, operators ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, op := range operators {
		key := sanitize(op)
		if _, dup := c.regs[key]; dup {
			return fmt.Errorf("core: operator %q already registered in catalog", op)
		}
		c.regs[key] = reg
	}
	return nil
}

// UnregisterJob removes a job's operators (on job cancellation).
func (c *Catalog) UnregisterJob(operators ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, op := range operators {
		delete(c.regs, sanitize(op))
	}
}

// Operators returns the names of all registered stateful operators.
func (c *Catalog) Operators() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.regs))
	for op := range c.regs {
		out = append(out, op)
	}
	return out
}

// Table resolves a SQL table name. The returned TableRef is bound to the
// client view (remote to all nodes) — queries come from outside.
func (c *Catalog) Table(name string) (*TableRef, error) {
	op := sanitize(name)
	c.mu.RLock()
	virt := c.virtuals[op]
	c.mu.RUnlock()
	if virt != nil {
		return &TableRef{name: name, op: op, virtual: virt}, nil
	}
	isSnap := false
	if rest, ok := strings.CutPrefix(op, "snapshot_"); ok {
		isSnap = true
		op = rest
	}
	c.mu.RLock()
	reg, known := c.regs[op]
	c.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("core: unknown table %q: no stateful operator %q", name, op)
	}
	return &TableRef{
		name:     name,
		op:       op,
		snapshot: isSnap,
		reg:      reg,
		store:    c.store,
		view:     c.store.View(kv.ClientNode),
	}, nil
}

// TableRef is a resolved, scannable state table.
type TableRef struct {
	name     string
	op       string
	snapshot bool
	reg      *snapshot.Registry
	store    *kv.Store
	view     kv.NodeView
	// virtual, when set, makes this a provider-backed table: a single
	// pseudo-partition on node 0, no snapshots, no network hops, no
	// fault surface. All scan paths iterate the provider's row set.
	virtual func() []TableRow
}

// IsVirtual reports whether this is a provider-backed sys.* table.
func (t *TableRef) IsVirtual() bool { return t.virtual != nil }

// Name returns the table name as written in the query.
func (t *TableRef) Name() string { return t.name }

// IsSnapshot reports whether this is a snapshot_<op> table.
func (t *TableRef) IsSnapshot() bool { return t.snapshot }

// Partitions returns the number of state partitions, for scatter-gather
// execution. Virtual tables have a single pseudo-partition.
func (t *TableRef) Partitions() int {
	if t.virtual != nil {
		return 1
	}
	return t.store.Partitioner().Count()
}

// PartitionOwner returns the node owning partition p.
func (t *TableRef) PartitionOwner(p int) int {
	if t.virtual != nil {
		return 0
	}
	return t.store.Assignment().Owner(p)
}

// PartitionOf returns the partition that would own the given state key —
// the basis of the executor's partition pruning for `partitionKey = <lit>`
// predicates. Only key types whose hash is consistent with SQL equality
// are accepted: strings, the int family (Hash normalizes them to one
// representation) and bools. Everything else reports false and the caller
// must scan all partitions.
func (t *TableRef) PartitionOf(key any) (int, bool) {
	if t.virtual != nil {
		return 0, true
	}
	switch key.(type) {
	case string, int, int32, int64, uint64, bool:
		return t.store.Partitioner().Of(key), true
	}
	return 0, false
}

// ResolveSSID validates and defaults the snapshot id a query targets.
// pinned == 0 means "latest committed" (the paper's default). For live
// tables it always returns 0.
func (t *TableRef) ResolveSSID(pinned int64) (int64, error) {
	if t.virtual != nil || !t.snapshot {
		return 0, nil
	}
	if pinned == 0 {
		latest := t.reg.LatestCommitted()
		if latest == snapshot.NoSnapshot {
			return 0, fmt.Errorf("core: no committed snapshot for table %q yet", t.name)
		}
		return latest, nil
	}
	if !t.reg.IsQueryable(pinned) {
		return 0, fmt.Errorf("core: snapshot %d of %q is not queryable (not committed or already pruned)", pinned, t.name)
	}
	return pinned, nil
}

// ScanSpec pushes query-side work into a partition scan: the predicate
// and the projected column set run on the node owning the partition, and
// only surviving, narrowed rows pay the client hop. This is the pushdown
// contract between the SQL planner and the state layer.
type ScanSpec struct {
	// SSID is the snapshot id to read (from ResolveSSID; ignored live).
	SSID int64
	// Filter, when non-nil, is evaluated node-side against every decoded
	// row; only accepted rows reach fn.
	Filter func(TableRow) bool
	// Cols, when non-nil, narrows each shipped row's Value to these
	// columns (pseudo-columns stay available via TableRow itself). The
	// filter always sees the full row. nil ships all columns.
	Cols []string
	// Path, when non-nil, asks the scan to find its candidate rows
	// through a secondary index instead of iterating the partition. It is
	// an optimisation only — the Filter remains the truth, and a scan
	// silently falls back to full iteration when no ready index serves
	// the path (e.g. after DisableIndexes compiled it away, or on the
	// backup fallback read, which is never indexed).
	Path *AccessPath
	// Done, when non-nil, cancels the scan once closed.
	Done <-chan struct{}
}

// ScanPartition streams the rows of one partition as of snapshot ssid
// (which the caller obtained from ResolveSSID; ignored for live tables).
// The charge for reaching the partition's node is paid by the view.
func (t *TableRef) ScanPartition(ssid int64, p int, fn func(TableRow) bool) {
	t.ScanPartitionSpec(p, ScanSpec{SSID: ssid}, fn)
}

// ScanPartitionSpec is ScanPartition with the spec's filter, projection
// and cancellation applied where the partition lives.
func (t *TableRef) ScanPartitionSpec(p int, spec ScanSpec, fn func(TableRow) bool) {
	if t.virtual != nil {
		rows := t.virtual()
		for i, r := range rows {
			if spec.Done != nil && i%32 == 0 {
				select {
				case <-spec.Done:
					return
				default:
				}
			}
			if spec.Filter != nil && !spec.Filter(r) {
				continue
			}
			if !fn(projectRow(r, spec.Cols)) {
				return
			}
		}
		return
	}
	if t.snapshot {
		m := t.store.GetMap(SnapshotMapName(t.op))
		decode := func(e kv.Entry) bool {
			v, ok := e.Value.(*Chain).At(spec.SSID)
			if !ok {
				return true
			}
			r := TableRow{Key: e.Key, SSID: v.SSID, Value: kv.AsRow(v.Value), Raw: v.Value}
			if spec.Filter != nil && !spec.Filter(r) {
				return true
			}
			return fn(projectRow(r, spec.Cols))
		}
		// Index-served snapshot scan: the chain-union index yields every
		// key whose *any* version could match — a superset for any SSID —
		// and decode re-resolves At(SSID) exactly like the full scan.
		if lk, ok := spec.Path.lookup(); ok {
			if m.ScanPartitionIndexed(p, lk, kv.ScanOpts{Done: spec.Done}, decode) {
				return
			}
		}
		m.ScanPartitionWith(p, kv.ScanOpts{Done: spec.Done}, decode)
		return
	}
	m := t.store.GetMap(LiveMapName(t.op))
	opts := kv.ScanOpts{Done: spec.Done}
	if spec.Filter != nil {
		// Adapt the filter to kv entries so that rejected rows never
		// leave the kv layer's iteration.
		opts.Filter = func(e kv.Entry) bool {
			return spec.Filter(TableRow{Key: e.Key, Value: kv.AsRow(e.Value), Raw: e.Value})
		}
	}
	emit := func(e kv.Entry) bool {
		return fn(projectRow(TableRow{Key: e.Key, Value: kv.AsRow(e.Value), Raw: e.Value}, spec.Cols))
	}
	if lk, ok := spec.Path.lookup(); ok {
		if m.ScanPartitionIndexed(p, lk, opts, emit) {
			return
		}
	}
	m.ScanPartitionWith(p, opts, emit)
}

// projectedRow is a Row narrowed to the columns a query ships. Lookups
// are a linear probe over a handful of names — cheaper than a map for
// the column counts real queries project.
type projectedRow struct {
	cols []string
	vals []any
}

// Field implements kv.Row.
func (r projectedRow) Field(name string) (any, bool) {
	for i, c := range r.cols {
		if c == name {
			return r.vals[i], true
		}
	}
	return nil, false
}

// Columns implements kv.Row.
func (r projectedRow) Columns() []string { return append([]string(nil), r.cols...) }

// projectRow narrows a row's Value to cols (nil = no projection).
// Columns the underlying row does not have are simply absent from the
// projection, so an unknown-column reference still fails at evaluation
// exactly as it would against the full row. Raw is dropped: a projected
// row is a query-shaped wire row, not the state object.
func projectRow(r TableRow, cols []string) TableRow {
	if cols == nil {
		return r
	}
	pr := projectedRow{cols: make([]string, 0, len(cols)), vals: make([]any, 0, len(cols))}
	for _, c := range cols {
		if v, ok := r.Value.Field(c); ok {
			pr.cols = append(pr.cols, c)
			pr.vals = append(pr.vals, v)
		}
	}
	r.Value = pr
	r.Raw = nil
	return r
}

// ScanNode streams the rows of every partition owned by node, as of
// snapshot ssid, charging one client→node network hop. The SQL executor
// fans one ScanNode goroutine out per node — the scatter half of its
// scatter-gather plan.
func (t *TableRef) ScanNode(ssid int64, node int, fn func(TableRow) bool) {
	if t.virtual != nil {
		if node == 0 {
			t.ScanPartition(ssid, 0, fn)
		}
		return
	}
	t.view.ChargeHop(node)
	for _, p := range t.store.Assignment().OwnedBy(node) {
		stop := false
		t.ScanPartition(ssid, p, func(r TableRow) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ChargeClientHop charges one client→node network hop, for executors
// that drive ScanPartition directly (e.g. partition-wise joins).
func (t *TableRef) ChargeClientHop(node int) {
	if t.virtual != nil {
		return
	}
	t.view.ChargeHop(node)
}

// CheckPartition verifies that the owner node of partition p is reachable
// from the query client, consulting the store's fault hook. Fault-tolerant
// executors call it before each partition scan; a plain scan never does
// (the fault hook only intercepts fallible query paths, never the data
// plane).
func (t *TableRef) CheckPartition(p int) error {
	if t.virtual != nil {
		return nil
	}
	return t.store.CheckAccess(kv.ClientNode, p)
}

// CheckBackupPartition is CheckPartition against the partition's backup
// node — the replica PolicyFallback degrades to when the primary is
// unreachable. On a healthy layout primary and backup live on different
// nodes, so a fault severing the owner leaves the backup reachable.
func (t *TableRef) CheckBackupPartition(p int) error {
	if t.virtual != nil {
		return nil
	}
	return t.store.CheckBackupAccess(kv.ClientNode, p)
}

// LatestCommittedSSID returns the operator's latest committed snapshot id,
// or 0 when no checkpoint has committed yet — the version a degraded query
// falls back to when live state is unreachable.
func (t *TableRef) LatestCommittedSSID() int64 {
	if t.virtual != nil {
		return 0
	}
	latest := t.reg.LatestCommitted()
	if latest == snapshot.NoSnapshot {
		return 0
	}
	return latest
}

// ScanPartitionFallback streams the rows of partition p as of snapshot
// ssid from the partition's backup replica instead of its primary copy.
// This is the degraded read behind PolicyFallback: the primary owner is
// unreachable, but the synchronously replicated backup on another node
// still holds every committed snapshot version. Yields nothing when the
// store is not replicated.
func (t *TableRef) ScanPartitionFallback(ssid int64, p int, fn func(TableRow) bool) {
	t.ScanPartitionFallbackSpec(p, ScanSpec{SSID: ssid}, fn)
}

// ScanPartitionFallbackSpec is ScanPartitionFallback with the spec's
// filter, projection and cancellation applied — a degraded read is still
// a pushdown read.
func (t *TableRef) ScanPartitionFallbackSpec(p int, spec ScanSpec, fn func(TableRow) bool) {
	if t.virtual != nil {
		t.ScanPartitionSpec(p, spec, fn)
		return
	}
	t.store.GetMap(SnapshotMapName(t.op)).ScanPartitionBackupWith(p, kv.ScanOpts{Done: spec.Done}, func(e kv.Entry) bool {
		v, ok := e.Value.(*Chain).At(spec.SSID)
		if !ok {
			return true
		}
		r := TableRow{Key: e.Key, SSID: v.SSID, Value: kv.AsRow(v.Value), Raw: v.Value}
		if spec.Filter != nil && !spec.Filter(r) {
			return true
		}
		return fn(projectRow(r, spec.Cols))
	})
}

// Scan streams all rows of the table as of snapshot ssid, charging one
// network hop per remote node like any client-side full scan.
func (t *TableRef) Scan(ssid int64, fn func(TableRow) bool) {
	if t.virtual != nil {
		t.ScanPartition(ssid, 0, fn)
		return
	}
	mapName := LiveMapName(t.op)
	if t.snapshot {
		mapName = SnapshotMapName(t.op)
	}
	// Charge hops through the view by scanning via it, but decode
	// chains ourselves for snapshot tables.
	stop := false
	t.view.Scan(mapName, func(e kv.Entry) bool {
		if stop {
			return false
		}
		if t.snapshot {
			v, ok := e.Value.(*Chain).At(ssid)
			if !ok {
				return true
			}
			if !fn(TableRow{Key: e.Key, SSID: v.SSID, Value: kv.AsRow(v.Value), Raw: v.Value}) {
				stop = true
				return false
			}
			return true
		}
		if !fn(TableRow{Key: e.Key, Value: kv.AsRow(e.Value), Raw: e.Value}) {
			stop = true
			return false
		}
		return true
	})
}
