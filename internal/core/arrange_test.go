package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"squery/internal/kv"
	"squery/internal/partition"
)

// arrSink buffers listener deltas — the only thing a listener is allowed
// to do, since it runs on the applier with the arrangement lock held.
type arrSink struct {
	mu sync.Mutex
	ds []ArrDelta
}

func (s *arrSink) listen(ds []ArrDelta) {
	s.mu.Lock()
	s.ds = append(s.ds, ds...)
	s.mu.Unlock()
}

func (s *arrSink) deltas() []ArrDelta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ArrDelta(nil), s.ds...)
}

// fold applies the sink's deltas over a base snapshot, returning the
// resulting key -> raw value view.
func (s *arrSink) fold(base []TableRow) map[string]any {
	view := map[string]any{}
	for _, r := range base {
		view[partition.KeyString(r.Key)] = r.Raw
	}
	for _, d := range s.deltas() {
		if d.Tombstone {
			delete(view, d.KeyS)
		} else {
			view[d.KeyS] = d.Row.Raw
		}
	}
	return view
}

func arrWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// storeContent reads the live map's current entries directly.
func storeContent(s *kv.Store, op string) map[string]any {
	out := map[string]any{}
	m := s.GetMap(LiveMapName(op))
	for p := 0; p < s.Partitioner().Count(); p++ {
		entries, _ := m.SnapshotPartition(p)
		for _, e := range entries {
			out[partition.KeyString(e.Key)] = e.Value
		}
	}
	return out
}

func sameView(a, b map[string]any) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestArrangementSnapshotPlusDeltas: the first reader sees the pre-attach
// rows as its snapshot and every later mutation as a delta, tombstones
// included, converging to exactly the store's content.
func TestArrangementSnapshotPlusDeltas(t *testing.T) {
	store := newTestStore()
	v := store.View(0)
	name := LiveMapName("orders")
	for i := 0; i < 10; i++ {
		v.Put(name, fmt.Sprintf("o%d", i), i)
	}
	reg := NewArrangeRegistry(store)
	a, err := reg.Acquire("orders")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()

	sink := &arrSink{}
	base, wm, id := a.Attach(sink.listen)
	defer a.Detach(id)
	if len(base) != 10 {
		t.Fatalf("attach snapshot has %d rows, want 10", len(base))
	}
	if wm != a.Watermark() {
		t.Fatalf("attach watermark %d != arrangement watermark %d", wm, a.Watermark())
	}

	v.Put(name, "o3", 333)  // upsert
	v.Put(name, "o99", 99)  // insert
	v.Delete(name, "o0")    // tombstone
	v.Delete(name, "gone")  // no-op: never existed
	v.Put(name, "o99", 100) // second upsert of the same key

	arrWaitFor(t, "deltas to apply", func() bool {
		return sameView(sink.fold(base), storeContent(store, "orders"))
	})
	var tombs int
	for _, d := range sink.deltas() {
		if d.Tombstone {
			tombs++
			if d.KeyS != partition.KeyString("o0") {
				t.Errorf("unexpected tombstone for %q", d.KeyS)
			}
		}
	}
	if tombs != 1 {
		t.Fatalf("saw %d tombstones, want 1 (missing-key delete must not surface)", tombs)
	}
}

// TestArrangementSharing: N readers share one maintained view — same
// pointer, one tap on the map, refcounted teardown at zero readers.
func TestArrangementSharing(t *testing.T) {
	store := newTestStore()
	v := store.View(0)
	name := LiveMapName("orders")
	v.Put(name, "k", 1)

	reg := NewArrangeRegistry(store)
	a1, err := reg.Acquire("orders")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := reg.Acquire("orders")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("two readers got distinct arrangements — no sharing")
	}
	if got := store.GetMap(name).TapCount(); got != 1 {
		t.Fatalf("TapCount = %d, want 1 shared tap for 2 readers", got)
	}
	infos := reg.Infos()
	if len(infos) != 1 || infos[0].Refs != 2 || infos[0].Rows != 1 {
		t.Fatalf("Infos = %+v, want one arrangement with refs=2 rows=1", infos)
	}

	a1.Release()
	if infos := reg.Infos(); len(infos) != 1 || infos[0].Refs != 1 {
		t.Fatalf("after one release Infos = %+v, want refs=1", infos)
	}
	// The view is still maintained for the surviving reader.
	v.Put(name, "k2", 2)
	arrWaitFor(t, "surviving reader to apply", func() bool { return len(a2.Rows()) == 2 })

	a2.Release()
	if infos := reg.Infos(); len(infos) != 0 {
		t.Fatalf("after last release Infos = %+v, want empty", infos)
	}
	if got := store.GetMap(name).TapCount(); got != 0 {
		t.Fatalf("TapCount after teardown = %d, want 0 (tap leaked)", got)
	}
	// A fresh Acquire rebuilds from scratch and sees everything.
	a3, err := reg.Acquire("orders")
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Release()
	if got := len(a3.Rows()); got != 2 {
		t.Fatalf("rebuilt arrangement has %d rows, want 2", got)
	}
}

// TestArrangementResetDiff: a wholesale partition replace makes the
// arrangement re-derive from a fresh snapshot and emit only genuine
// differences — a contents-preserving reset (the migration-flip shape)
// emits nothing, an emptying reset emits exactly the tombstones.
func TestArrangementResetDiff(t *testing.T) {
	store := newTestStore()
	v := store.View(0)
	name := LiveMapName("orders")
	for i := 0; i < 8; i++ {
		v.Put(name, fmt.Sprintf("o%d", i), i)
	}
	reg := NewArrangeRegistry(store)
	a, err := reg.Acquire("orders")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	sink := &arrSink{}
	base, _, id := a.Attach(sink.listen)
	defer a.Detach(id)

	// Contents-preserving resets: index rebuilds replace nothing.
	for p := 0; p < store.Partitioner().Count(); p++ {
		store.RebuildPartitionIndexes(p)
	}
	arrWaitFor(t, "resets to be re-derived", func() bool {
		infos := reg.Infos()
		return len(infos) == 1 && infos[0].Resets >= int64(store.Partitioner().Count())
	})
	if got := len(sink.deltas()); got != 0 {
		t.Fatalf("no-op resets emitted %d deltas, want 0: %+v", got, sink.deltas())
	}

	// An emptying reset diffs down to tombstones, one per live row.
	store.ClearMap(name)
	arrWaitFor(t, "clear to diff through", func() bool { return len(sink.fold(base)) == 0 })
	var tombs int
	for _, d := range sink.deltas() {
		if d.Tombstone {
			tombs++
		}
	}
	if tombs != 8 {
		t.Fatalf("emptying reset emitted %d tombstones, want 8", tombs)
	}
}

// TestArrangementAttachCleanCut: attaching while writes race never loses
// or duplicates a delta — the snapshot plus the delta stream fold to
// exactly the final store content, and no (partition, seq) stamp is
// delivered twice. Run with -race.
func TestArrangementAttachCleanCut(t *testing.T) {
	store := newTestStore()
	v := store.View(0)
	name := LiveMapName("orders")
	v.Put(name, "seed", -1)

	reg := NewArrangeRegistry(store)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			v.Put(name, fmt.Sprintf("k%d", i%100), i)
			if i%17 == 0 {
				v.Delete(name, fmt.Sprintf("k%d", (i+3)%100))
			}
		}
	}()

	a, err := reg.Acquire("orders")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	sink := &arrSink{}
	base, _, id := a.Attach(sink.listen)
	defer a.Detach(id)
	<-done

	arrWaitFor(t, "racing writes to settle", func() bool {
		return sameView(sink.fold(base), storeContent(store, "orders"))
	})
	seen := map[[2]uint64]bool{}
	for _, d := range sink.deltas() {
		stamp := [2]uint64{uint64(d.Part), d.Seq}
		if seen[stamp] {
			t.Fatalf("delta stamp part=%d seq=%d delivered twice", d.Part, d.Seq)
		}
		seen[stamp] = true
	}
}
