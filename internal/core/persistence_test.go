package core

import (
	"testing"

	"squery/internal/persist"
)

func TestPersistedCommitAndColdStart(t *testing.T) {
	dir := t.TempDir()
	p, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First lifetime: run checkpoints with persistence attached.
	store := newTestStore()
	mgr := NewManager(store, 2)
	cfg := Config{Snapshots: true}
	if err := mgr.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	mgr.SetPersister(p)
	b := NewBackend("op", 0, store.View(0), cfg)
	for i := 0; i < 40; i++ {
		b.Update(i, i*i)
	}
	checkpoint(t, mgr, b)
	for i := 0; i < 10; i++ {
		b.Update(i, -i)
	}
	checkpoint(t, mgr, b)

	latest, err := p.Latest()
	if err != nil || latest != 2 {
		t.Fatalf("persisted latest = %d, %v", latest, err)
	}
	entries, err := p.ReadSegment(2, "op")
	if err != nil || len(entries) != 40 {
		t.Fatalf("segment = %d entries, %v", len(entries), err)
	}

	// Second lifetime: brand-new store + manager cold-start from disk.
	store2 := newTestStore()
	mgr2 := NewManager(store2, 2)
	if err := mgr2.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	p2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := mgr2.ImportPersisted(p2)
	if err != nil {
		t.Fatal(err)
	}
	if imported != 2 {
		t.Fatalf("imported ssid = %d, want 2", imported)
	}
	if mgr2.Registry().LatestCommitted() != 2 {
		t.Fatalf("registry latest = %d", mgr2.Registry().LatestCommitted())
	}

	// Snapshot queries against the imported state see the second
	// checkpoint's values.
	cat := NewCatalog(store2)
	if err := cat.RegisterJob(mgr2.Registry(), "op"); err != nil {
		t.Fatal(err)
	}
	tab, err := cat.Table("snapshot_op")
	if err != nil {
		t.Fatal(err)
	}
	target, err := tab.ResolveSSID(0)
	if err != nil || target != 2 {
		t.Fatalf("ResolveSSID = %d, %v", target, err)
	}
	got := map[int]int{}
	tab.Scan(target, func(r TableRow) bool {
		got[r.Key.(int)] = r.Raw.(int)
		return true
	})
	if len(got) != 40 {
		t.Fatalf("imported rows = %d, want 40", len(got))
	}
	if got[3] != -3 || got[20] != 400 {
		t.Fatalf("imported values wrong: %v, %v", got[3], got[20])
	}

	// Restored state can also repopulate an operator backend.
	b2 := NewBackend("op", 0, store2.View(0), cfg)
	if err := b2.Restore(2, ownsAll); err != nil {
		t.Fatal(err)
	}
	if b2.Size() != 40 {
		t.Fatalf("backend restored %d keys", b2.Size())
	}

	// New checkpoints continue after the imported id.
	ssid := checkpoint(t, mgr2, b2)
	if ssid != 3 {
		t.Fatalf("next checkpoint = %d, want 3", ssid)
	}
	if latest, _ := p2.Latest(); latest != 2 {
		t.Fatalf("second lifetime persisted without a persister: latest = %d", latest)
	}
}

func TestImportPersistedEmptyStore(t *testing.T) {
	p, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(newTestStore(), 2)
	got, err := mgr.ImportPersisted(p)
	if err != nil || got != 0 {
		t.Fatalf("ImportPersisted on empty = %d, %v", got, err)
	}
}

func TestPersistPrunesWithRetention(t *testing.T) {
	p, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := newTestStore()
	mgr := NewManager(store, 2)
	cfg := Config{Snapshots: true}
	mgr.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg})
	mgr.SetPersister(p)
	b := NewBackend("op", 0, store.View(0), cfg)
	b.Update("k", 1)
	for i := 0; i < 5; i++ {
		checkpoint(t, mgr, b)
	}
	ids, err := p.Committed()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("persisted ids = %v, want [4 5]", ids)
	}
}
