package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"
	"time"

	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/wire"
)

// Config selects which state representations S-QUERY maintains for an
// operator. The paper evaluates all combinations in Figure 8: live+snap,
// live only, snap only, and neither (plain Jet).
type Config struct {
	// Live mirrors every state update into the live map <op>.
	Live bool
	// Snapshots writes queryable per-key snapshot entries into
	// snapshot_<op> at every checkpoint.
	Snapshots bool
	// Incremental writes only the keys changed since the previous
	// checkpoint instead of the full state (§VI.A, incremental
	// snapshots). Only meaningful when Snapshots is true.
	Incremental bool
	// JetBlob is the baseline: checkpoints serialize each instance's
	// whole state as one opaque blob, the way Jet snapshots state
	// without S-QUERY. Mutually exclusive with Snapshots.
	JetBlob bool
	// LatencySampleEvery samples 1-in-N state-update latencies into the
	// update-latency histogram (the update counter stays exact). 0
	// selects the default of 8; 1 times every update. Lowering it buys
	// finer tail visibility for stopwatch cost on the hot path.
	LatencySampleEvery int
	// LatencySampleSeed offsets the deterministic sampling sequence.
	// Sampling is a pure function of (seed, update index), so two runs
	// with the same seed and workload sample the same updates — what
	// keeps chaos-soak latency output reproducible run to run.
	LatencySampleSeed int64
	// ActiveStandby maintains a synchronously updated replica of every
	// instance's state (§VII, read committed): on failure the replica is
	// promoted instead of rolling back to the last checkpoint, so live
	// queries never observe state regressing — the high-availability
	// setup the paper describes for raising live queries to the read
	// committed isolation level.
	ActiveStandby bool
	// MirrorBatch caps how many live-map mirror operations buffer before
	// an automatic flush to the KV store (one partition-grouped batch
	// instead of one message per record). 0 selects the default of 32;
	// 1 mirrors per record. The owning worker flushes at inbox
	// quiescence and checkpoint boundaries regardless, so live queries
	// see up-to-date state whenever the operator is idle.
	MirrorBatch int
	// Unbatched restores the pre-batching wire behaviour — live-state
	// mirroring per record and snapshot version writes as a Get+Put
	// round trip per key. It exists as the A/B baseline for
	// `squery-bench -exp wire`; production paths never set it.
	Unbatched bool
}

// LiveMapName returns the KV map holding the operator's live state. The
// convention is the paper's: the map is named after the operator, with
// spaces removed ("stateful map" -> "statefulmap", §V.B).
func LiveMapName(op string) string { return sanitize(op) }

// SnapshotMapName returns the KV map holding the operator's snapshot
// state: snapshot_<operator>.
func SnapshotMapName(op string) string { return "snapshot_" + sanitize(op) }

// blobMapName is the internal (unqueryable) map for Jet-style blob
// snapshots.
func blobMapName(op string) string { return "__jetsnap_" + sanitize(op) }

// standbyMapName is the internal map holding the active-standby replica.
func standbyMapName(op string) string { return "__standby_" + sanitize(op) }

func sanitize(op string) string {
	return strings.ToLower(strings.ReplaceAll(op, " ", ""))
}

// entry is one key's live state inside a Backend.
type entry struct {
	key   partition.Key
	value any
}

// Backend is the state store of one parallel instance of a stateful
// operator. The instance owns a disjoint set of keys (its partitions), so
// the backend is single-writer by construction; reads from the query side
// never touch it — they go to the KV maps it mirrors into.
type Backend struct {
	op       string
	instance int
	view     kv.NodeView
	cfg      Config

	data  map[string]entry
	dirty map[string]partition.Key // keys touched since the last checkpoint

	// pending buffers live-map mirror operations between flushes (order
	// preserved: a batch applies exactly like the same puts/deletes one
	// by one). mirrorBatch is the flush threshold; 1 disables buffering.
	pending     []kv.Op
	mirrorBatch int

	// Optional instruments (nil = disabled): update/delete count and
	// latency, including the mirrored KV writes and their simulated
	// network cost. The latency histogram is sampled 1-in-8 (the counter
	// stays exact) to keep the per-record stopwatch cost off the hot
	// path; updateSeq drives the sampling from the single processing
	// goroutine. The rate comes from Config.LatencySampleEvery and the
	// sequence's phase from Config.LatencySampleSeed.
	updates     *metrics.Counter
	updateLat   *metrics.Histogram
	updateSeq   uint64
	sampleEvery uint64

	// onChange, when set, is told about every snapshot-chain write (see
	// SetChangeNotifier); the manager's changed-key index hangs off it.
	onChange func(op string, keys []partition.Key)
}

// NewBackend creates the state backend for instance `instance` of
// operator `op`, issuing KV operations from the node of view.
func NewBackend(op string, instance int, view kv.NodeView, cfg Config) *Backend {
	if cfg.JetBlob && cfg.Snapshots {
		panic("core: JetBlob and Snapshots are mutually exclusive")
	}
	every := uint64(8)
	if cfg.LatencySampleEvery > 0 {
		every = uint64(cfg.LatencySampleEvery)
	}
	mb := cfg.MirrorBatch
	if mb <= 0 {
		mb = 32
	}
	if cfg.Unbatched {
		mb = 1
	}
	return &Backend{
		op:          op,
		instance:    instance,
		view:        view,
		cfg:         cfg,
		data:        make(map[string]entry),
		dirty:       make(map[string]partition.Key),
		mirrorBatch: mb,
		// Seeding offsets the sampling phase deterministically: which
		// updates get timed depends only on (seed, update index).
		updateSeq:   uint64(cfg.LatencySampleSeed) % every,
		sampleEvery: every,
	}
}

// SetInstruments installs the backend's state-update counter and latency
// histogram (both may be nil to disable). Call before the owning worker
// starts; the instruments are read from the single processing goroutine.
func (b *Backend) SetInstruments(updates *metrics.Counter, updateLat *metrics.Histogram) {
	b.updates = updates
	b.updateLat = updateLat
}

// SetChangeNotifier installs a callback told about every snapshot-chain
// write this backend performs (typically Manager.NoteChanged): the keys
// written at each checkpoint feed the manager's changed-key index, which
// keeps persisted-delta collection and chain pruning O(delta). Call
// before the owning worker starts; writes come from the worker or its
// drainer, never both at once.
func (b *Backend) SetChangeNotifier(fn func(op string, keys []partition.Key)) {
	b.onChange = fn
}

// Op returns the operator name.
func (b *Backend) Op() string { return b.op }

// Instance returns the instance index.
func (b *Backend) Instance() int { return b.instance }

// Get returns the instance-local state for key.
func (b *Backend) Get(key partition.Key) (any, bool) {
	e, ok := b.data[partition.KeyString(key)]
	if !ok {
		return nil, false
	}
	return e.value, true
}

// Update sets the state for key and, when live state is enabled, mirrors
// it into the live map under key-level locking (the KV store's striped
// key locks synchronise this write against concurrent query reads).
func (b *Backend) Update(key partition.Key, value any) {
	if b.updateLat == nil {
		b.update(key, value)
		return
	}
	b.updates.Inc()
	b.updateSeq++
	if b.updateSeq%b.sampleEvery != 0 {
		b.update(key, value)
		return
	}
	sw := metrics.StartStopwatch()
	b.update(key, value)
	b.updateLat.Record(sw.Elapsed())
}

func (b *Backend) update(key partition.Key, value any) {
	ks := partition.KeyString(key)
	b.data[ks] = entry{key: key, value: value}
	b.dirty[ks] = key
	if b.cfg.Live {
		b.mirror(kv.Op{Key: key, Value: value})
	}
	if b.cfg.ActiveStandby {
		// The standby replica stays synchronous per record: promotion
		// must see exactly the primary's state at the instant of failure,
		// with no buffered tail (§VII's read-committed failover).
		b.view.Put(standbyMapName(b.op), key, value)
	}
}

// Delete removes the state for key.
func (b *Backend) Delete(key partition.Key) {
	if b.updateLat == nil {
		b.del(key)
		return
	}
	b.updates.Inc()
	b.updateSeq++
	if b.updateSeq%b.sampleEvery != 0 {
		b.del(key)
		return
	}
	sw := metrics.StartStopwatch()
	b.del(key)
	b.updateLat.Record(sw.Elapsed())
}

func (b *Backend) del(key partition.Key) {
	ks := partition.KeyString(key)
	delete(b.data, ks)
	b.dirty[ks] = key
	if b.cfg.Live {
		b.mirror(kv.Op{Key: key, Delete: true})
	}
	if b.cfg.ActiveStandby {
		b.view.Delete(standbyMapName(b.op), key)
	}
}

// mirror queues one live-map operation, flushing when the batch fills.
// With MirrorBatch 1 (or Unbatched) the operation goes out immediately —
// the pre-refactor per-record behaviour.
func (b *Backend) mirror(op kv.Op) {
	if b.mirrorBatch <= 1 {
		if op.Delete {
			b.view.Delete(LiveMapName(b.op), op.Key)
		} else {
			b.view.Put(LiveMapName(b.op), op.Key, op.Value)
		}
		return
	}
	b.pending = append(b.pending, op)
	if len(b.pending) >= b.mirrorBatch {
		b.Flush()
	}
}

// Flush writes any buffered live-map mirror operations as one
// partition-grouped batch. The owning worker calls it when its inbox
// drains and before every checkpoint prepare; Restore and PromoteStandby
// discard the buffer instead (resetLive rewrites the map wholesale).
func (b *Backend) Flush() {
	if len(b.pending) == 0 {
		return
	}
	b.view.PutBatch(LiveMapName(b.op), b.pending)
	b.pending = b.pending[:0]
}

// Size returns the number of keys held by this instance.
func (b *Backend) Size() int { return len(b.data) }

// ForEach visits every key-value pair of the instance's state.
func (b *Backend) ForEach(fn func(key partition.Key, value any) bool) {
	for _, e := range b.data {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// SnapshotPrepare is phase 1 of the checkpoint for this instance: it
// records the instance's state at snapshot id ssid into the state store.
// Full mode writes every key; incremental mode writes only keys dirtied
// since the previous checkpoint (including deletions, as tombstones); blob
// mode serializes the whole state into one opaque entry. It returns the
// number of entries written.
func (b *Backend) SnapshotPrepare(ssid int64) (written int, err error) {
	// The snapshot must include every mirrored update, and a query at
	// this ssid must not see the live map lag it: flush first.
	b.Flush()
	switch {
	case b.cfg.JetBlob:
		return b.prepareBlob(ssid)
	case !b.cfg.Snapshots:
		return 0, nil
	case b.cfg.Incremental:
		written = b.writeVersions(ssid, b.dirtyEntries())
	default:
		// A full snapshot rewrites every live key — but keys deleted
		// since the previous checkpoint still need tombstones, or a
		// query at this ssid would resolve them through their stale
		// older version.
		written = b.writeVersions(ssid, append(b.allEntries(), b.deletedEntries()...))
	}
	b.dirty = make(map[string]partition.Key)
	return written, nil
}

type keyedVersion struct {
	key       partition.Key
	value     any
	tombstone bool
}

// SnapshotPin is the cheap half of an asynchronous phase 1 (Carbone et
// al.'s lightweight snapshots): the version set an instance pinned at
// the barrier, captured without serializing or shipping anything. A
// drainer later writes it into the snapshot store via DrainPin, off the
// barrier path. Values referenced by a pin are treated as immutable —
// the same convention that makes version chains safe to share with
// concurrent queries.
type SnapshotPin struct {
	SSID    int64
	entries []keyedVersion
	pinned  time.Time
}

// Len returns how many key versions the pin holds.
func (p *SnapshotPin) Len() int { return len(p.entries) }

// PinnedAt returns when the pin was taken; drain lag is measured from
// it.
func (p *SnapshotPin) PinnedAt() time.Time { return p.pinned }

// SnapshotPin captures phase 1 for this instance without shipping the
// state: mirrors are flushed, the dirty set (or full state) is pinned as
// a version set, and the dirty tracking resets — all O(delta) map work,
// no KV writes. The returned pin must later be drained via DrainPin
// before the checkpoint commits. A nil pin with no error means nothing
// needs draining: snapshots are off, or the instance runs the JetBlob
// baseline, whose blob is written synchronously here (measuring that
// stall is the baseline's purpose).
func (b *Backend) SnapshotPin(ssid int64) (*SnapshotPin, error) {
	b.Flush()
	switch {
	case b.cfg.JetBlob:
		_, err := b.prepareBlob(ssid)
		return nil, err
	case !b.cfg.Snapshots:
		return nil, nil
	}
	var entries []keyedVersion
	if b.cfg.Incremental {
		entries = b.dirtyEntries()
	} else {
		entries = append(b.allEntries(), b.deletedEntries()...)
	}
	b.dirty = make(map[string]partition.Key)
	return &SnapshotPin{SSID: ssid, entries: entries, pinned: time.Now()}, nil
}

// DrainPin serializes and ships a pinned version set into the snapshot
// store — the deferred half of SnapshotPrepare. Safe to call from a
// drainer goroutine concurrent with the owning worker: the KV store's
// striped key locks order the writes, pinned values are immutable, and
// the pin's entries are no longer referenced by the backend.
func (b *Backend) DrainPin(pin *SnapshotPin) int {
	return b.writeVersions(pin.SSID, pin.entries)
}

// FoldPins merges an abandoned pin (its checkpoint round aborted before
// the drain ran) into a newer round's pin. The carried entries were
// already cleared from the backend's dirty tracking when they were
// pinned, so dropping them would lose every pre-barrier update from the
// next committed snapshot — they must ride the next drain instead,
// re-stamped at its snapshot id. Where both pins touch a key, the newer
// version wins.
func FoldPins(carry, next *SnapshotPin) *SnapshotPin {
	if carry == nil {
		return next
	}
	if next == nil {
		return carry
	}
	seen := make(map[string]bool, len(next.entries))
	for _, e := range next.entries {
		seen[partition.KeyString(e.key)] = true
	}
	merged := make([]keyedVersion, 0, len(carry.entries)+len(next.entries))
	for _, e := range carry.entries {
		if !seen[partition.KeyString(e.key)] {
			merged = append(merged, e)
		}
	}
	merged = append(merged, next.entries...)
	return &SnapshotPin{SSID: next.SSID, entries: merged, pinned: next.pinned}
}

func (b *Backend) allEntries() []keyedVersion {
	out := make([]keyedVersion, 0, len(b.data))
	for _, e := range b.data {
		out = append(out, keyedVersion{key: e.key, value: e.value})
	}
	return out
}

func (b *Backend) dirtyEntries() []keyedVersion {
	out := make([]keyedVersion, 0, len(b.dirty))
	for ks, key := range b.dirty {
		if e, ok := b.data[ks]; ok {
			out = append(out, keyedVersion{key: e.key, value: e.value})
		} else {
			// Key was deleted since the last checkpoint; the tombstone
			// must live under the original key so it lands in (and
			// shadows) the same chain as earlier versions.
			out = append(out, keyedVersion{key: key, tombstone: true})
		}
	}
	return out
}

// deletedEntries returns tombstones for keys deleted since the last
// checkpoint.
func (b *Backend) deletedEntries() []keyedVersion {
	var out []keyedVersion
	for ks, key := range b.dirty {
		if _, ok := b.data[ks]; !ok {
			out = append(out, keyedVersion{key: key, tombstone: true})
		}
	}
	return out
}

func (b *Backend) writeVersions(ssid int64, kvs []keyedVersion) int {
	if len(kvs) == 0 {
		return 0
	}
	name := SnapshotMapName(b.op)
	keys := make([]partition.Key, len(kvs))
	for i := range kvs {
		keys[i] = kvs[i].key
	}
	if b.cfg.Unbatched {
		// Legacy wire shape: one Get and one Put per key — two messages
		// per remote key per checkpoint. Kept only as the A/B baseline
		// for `squery-bench -exp wire`.
		for _, e := range kvs {
			var chain *Chain
			if cur, ok := b.view.Get(name, e.key); ok {
				chain = cur.(*Chain)
			}
			chain = chain.With(Versioned{SSID: ssid, Value: e.value, Tombstone: e.tombstone})
			b.view.Put(name, e.key, chain)
		}
	} else {
		// Batched apply: the chain extension runs where the partition
		// lives, one round trip per remote partition group instead of two
		// messages per key.
		b.view.ApplyBatch(name, keys, func(i int, _ partition.Key, cur any, ok bool) (any, bool) {
			var chain *Chain
			if ok {
				chain = cur.(*Chain)
			}
			e := kvs[i]
			return chain.With(Versioned{SSID: ssid, Value: e.value, Tombstone: e.tombstone}), true
		})
	}
	if b.onChange != nil {
		b.onChange(b.op, keys)
	}
	return len(kvs)
}

// blobKey addresses one instance's blob for one snapshot. Append-based:
// the single allocation is the final string conversion, not fmt's boxing
// and formatting — this key is built once per instance per checkpoint.
func blobKey(instance int, ssid int64) string {
	buf := make([]byte, 0, 32)
	buf = append(buf, "inst-"...)
	buf = strconv.AppendInt(buf, int64(instance), 10)
	buf = append(buf, '@')
	buf = strconv.AppendInt(buf, ssid, 10)
	return string(buf)
}

// blobState is the gob payload of a Jet-style snapshot blob. Keys keep
// their original dynamic type: restore routes keys by partition, and the
// partition of a key depends on its type, not just its string form.
type blobState struct {
	Keys   []partition.Key
	Values []any
}

func init() {
	// Scalar key/value types that may travel inside interface slots of a
	// blob snapshot. Workload packages register their own state structs.
	gob.Register(int(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register(map[string]any{})
}

// blobMagic prefixes wire-encoded blob snapshots. Payloads without it
// are pre-refactor gob blobs; restoreBlob still decodes those, so
// snapshots taken before the codec swap remain restorable.
var blobMagic = []byte("SQWB\x01")

func (b *Backend) prepareBlob(ssid int64) (int, error) {
	buf := make([]byte, 0, 64+24*len(b.data))
	buf = append(buf, blobMagic...)
	buf = wire.AppendUvarint(buf, uint64(len(b.data)))
	var err error
	for _, e := range b.data {
		if buf, err = wire.AppendValue(buf, e.key); err != nil {
			return 0, fmt.Errorf("core: encoding blob snapshot of %s/%d: %w", b.op, b.instance, err)
		}
		if buf, err = wire.AppendValue(buf, e.value); err != nil {
			return 0, fmt.Errorf("core: encoding blob snapshot of %s/%d: %w", b.op, b.instance, err)
		}
	}
	b.view.Put(blobMapName(b.op), blobKey(b.instance, ssid), buf)
	b.dirty = make(map[string]partition.Key)
	return 1, nil
}

// Restore rebuilds the instance's state from snapshot ssid, keeping only
// keys this instance owns according to ownsKey (recovery may reshuffle
// instances, so ownership is decided by the router, not by what the
// instance held before the failure). Live state is re-mirrored so queries
// do not observe rolled-back keys as still live.
func (b *Backend) Restore(ssid int64, ownsKey func(partition.Key) bool) error {
	b.data = make(map[string]entry)
	b.dirty = make(map[string]partition.Key)
	// Mirror operations buffered before the failure belong to rolled-back
	// state; resetLive rewrites the live map from the restored data.
	b.pending = b.pending[:0]
	if b.cfg.JetBlob {
		if err := b.restoreBlob(ssid, ownsKey); err != nil {
			return err
		}
	} else {
		b.view.Scan(SnapshotMapName(b.op), func(e kv.Entry) bool {
			if !ownsKey(e.Key) {
				return true
			}
			if v, ok := e.Value.(*Chain).At(ssid); ok {
				b.data[partition.KeyString(e.Key)] = entry{key: e.Key, value: v.Value}
			}
			return true
		})
	}
	if b.cfg.Live {
		b.resetLive(ownsKey)
	}
	return nil
}

func (b *Backend) restoreBlob(ssid int64, ownsKey func(partition.Key) bool) error {
	raw, ok := b.view.Get(blobMapName(b.op), blobKey(b.instance, ssid))
	if !ok {
		// No blob means the instance had no state at that snapshot.
		return nil
	}
	bs := raw.([]byte)
	if !bytes.HasPrefix(bs, blobMagic) {
		return b.restoreGobBlob(bs, ownsKey)
	}
	bs = bs[len(blobMagic):]
	n, used := binary.Uvarint(bs)
	if used <= 0 {
		return fmt.Errorf("core: decoding blob snapshot of %s/%d: truncated entry count", b.op, b.instance)
	}
	bs = bs[used:]
	var err error
	for i := uint64(0); i < n; i++ {
		var k, v any
		if k, bs, err = wire.DecodeValue(bs); err != nil {
			return fmt.Errorf("core: decoding blob snapshot of %s/%d: %w", b.op, b.instance, err)
		}
		if v, bs, err = wire.DecodeValue(bs); err != nil {
			return fmt.Errorf("core: decoding blob snapshot of %s/%d: %w", b.op, b.instance, err)
		}
		if ownsKey(k) {
			b.data[partition.KeyString(k)] = entry{key: k, value: v}
		}
	}
	return nil
}

// restoreGobBlob decodes a pre-refactor gob blob — the migration path
// for snapshots persisted before the wire codec existed.
func (b *Backend) restoreGobBlob(bs []byte, ownsKey func(partition.Key) bool) error {
	var st blobState
	if err := gob.NewDecoder(bytes.NewReader(bs)).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding blob snapshot of %s/%d: %w", b.op, b.instance, err)
	}
	for i, k := range st.Keys {
		if ownsKey(k) {
			b.data[partition.KeyString(k)] = entry{key: k, value: st.Values[i]}
		}
	}
	return nil
}

// PromoteStandby rebuilds the instance's state from the active-standby
// replica — the failover path of §VII's read-committed setup. Unlike
// Restore there is no rollback: the replica was updated synchronously
// with the primary, so the promoted state is exactly the primary's state
// at the moment of failure. Live state is re-mirrored for consistency.
func (b *Backend) PromoteStandby(ownsKey func(partition.Key) bool) error {
	if !b.cfg.ActiveStandby {
		return fmt.Errorf("core: operator %q has no active standby", b.op)
	}
	b.data = make(map[string]entry)
	b.dirty = make(map[string]partition.Key)
	b.pending = b.pending[:0]
	b.view.Scan(standbyMapName(b.op), func(e kv.Entry) bool {
		if ownsKey(e.Key) {
			b.data[partition.KeyString(e.Key)] = entry{key: e.Key, value: e.Value}
		}
		return true
	})
	if b.cfg.Live {
		b.resetLive(ownsKey)
	}
	return nil
}

// resetLive replaces this instance's keys in the live map with the
// restored state. Keys that existed live but not in the snapshot must be
// removed — they are the dirty reads of Figure 5. Only keys this instance
// owns are touched; sibling instances reset theirs.
func (b *Backend) resetLive(ownsKey func(partition.Key) bool) {
	name := LiveMapName(b.op)
	ops := make([]kv.Op, 0, len(b.data))
	b.view.Scan(name, func(e kv.Entry) bool {
		ks := partition.KeyString(e.Key)
		if _, ok := b.data[ks]; !ok && ownsKey(e.Key) {
			ops = append(ops, kv.Op{Key: e.Key, Delete: true})
		}
		return true
	})
	for _, e := range b.data {
		ops = append(ops, kv.Op{Key: e.key, Value: e.value})
	}
	b.view.PutBatch(name, ops)
}
