package core

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"squery/internal/kv"
	"squery/internal/partition"
)

// Shared arrangements (McSherry et al., "Shared Arrangements"): a
// refcounted, incrementally-maintained keyed view of one live state table
// that N standing queries attach to. The first reader builds it from a
// per-partition snapshot bracketed by a kv change-stream tap (so no delta
// is lost or double-applied); every subsequent reader shares the same
// maintained copy; the last reader's release tears it down. Rebalance and
// failover flow through the tap's OnReset: the arrangement re-snapshots
// the affected partition and emits only the genuine differences, so a
// mid-subscription migration produces no duplicate deltas downstream.

// ArrDelta is one maintained-view change an arrangement delivers to its
// listeners: an upsert carrying the new row, or a tombstone for a removed
// key. Seq/Epoch carry the kv tap stamps (synthetic reset-diff deltas
// carry the post-reset snapshot floor).
type ArrDelta struct {
	Row       TableRow // Key/Value/Raw set on upserts; Key only on tombstones
	KeyS      string
	Part      int
	Seq       uint64
	Epoch     int64
	Tombstone bool
}

// ArrListener receives ordered arrangement delta groups. Listeners run on
// the arrangement's applier goroutine with its state lock held: they must
// enqueue and return — never block, never call back into the arrangement.
type ArrListener func(ds []ArrDelta)

// tapEvent is one buffered tap callback: a delta group or a reset marker,
// kept in arrival order (which is per-partition mutation order).
type tapEvent struct {
	ds    []kv.Delta
	reset bool
	part  int
}

// arrRow is one maintained row plus the partition it lives in (needed to
// scope reset diffs to the partition that was replaced).
type arrRow struct {
	row  TableRow
	part int
}

// Arrangement is one shared maintained view. It implements kv.Tap; the
// tap callbacks only buffer, and a dedicated applier goroutine folds
// buffered events into the keyed view and fans deltas out to listeners.
type Arrangement struct {
	reg   *ArrangeRegistry
	table string
	m     *kv.Map

	// mu serializes view application against listener attach/detach, so a
	// new reader's snapshot and its subsequent delta stream are a clean
	// cut: every delta applied before the copy is in the snapshot, every
	// one after is delivered.
	mu         sync.Mutex
	rows       map[string]arrRow
	appliedSeq []uint64 // per-partition floor: deltas at or below are in the view
	listeners  map[int]ArrListener
	nextLis    int
	refs       int

	// pending is the tap-side buffer: appended under the emitting
	// segment's write lock, drained by the applier. pendMu is a leaf lock.
	pendMu  sync.Mutex
	pending []tapEvent
	wake    chan struct{}
	done    chan struct{}
	stopped chan struct{}

	deltasIn  atomic.Int64  // raw tap deltas buffered
	applied   atomic.Int64  // deltas folded into the view (post-dedup)
	resets    atomic.Int64  // partition resets re-derived
	watermark atomic.Uint64 // cumulative applied deltas: the subscription watermark
}

// OnDeltas implements kv.Tap: called under the segment write lock, it
// buffers and signals the applier.
func (a *Arrangement) OnDeltas(ds []kv.Delta) {
	a.deltasIn.Add(int64(len(ds)))
	a.pendMu.Lock()
	a.pending = append(a.pending, tapEvent{ds: ds})
	a.pendMu.Unlock()
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// OnReset implements kv.Tap: partition p was replaced wholesale; queue a
// re-derive marker in stream order.
func (a *Arrangement) OnReset(p int) {
	a.pendMu.Lock()
	a.pending = append(a.pending, tapEvent{reset: true, part: p})
	a.pendMu.Unlock()
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// run is the applier goroutine: drain buffered tap events, fold them into
// the view, deliver to listeners.
func (a *Arrangement) run() {
	defer close(a.stopped)
	for {
		select {
		case <-a.done:
			return
		case <-a.wake:
		}
		for {
			a.pendMu.Lock()
			evs := a.pending
			a.pending = nil
			a.pendMu.Unlock()
			if len(evs) == 0 {
				break
			}
			a.applyEvents(evs)
		}
	}
}

// applyEvents folds one drained batch into the view and fans out the
// resulting arrangement deltas.
func (a *Arrangement) applyEvents(evs []tapEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []ArrDelta
	for _, ev := range evs {
		if ev.reset {
			out = append(out, a.resetDiffLocked(ev.part)...)
			continue
		}
		for _, d := range ev.ds {
			if d.Seq <= a.appliedSeq[d.Part] {
				continue // already covered by a snapshot or reset re-derive
			}
			a.appliedSeq[d.Part] = d.Seq
			ad := ArrDelta{KeyS: d.KeyS, Part: d.Part, Seq: d.Seq, Epoch: d.Epoch}
			if d.Tombstone {
				if _, ok := a.rows[d.KeyS]; !ok {
					continue
				}
				delete(a.rows, d.KeyS)
				ad.Tombstone = true
				ad.Row = TableRow{Key: d.Key}
			} else {
				ad.Row = TableRow{Key: d.Key, Value: kv.AsRow(d.Value), Raw: d.Value}
				a.rows[d.KeyS] = arrRow{row: ad.Row, part: d.Part}
			}
			out = append(out, ad)
			a.applied.Add(1)
			a.watermark.Add(1)
		}
	}
	if len(out) == 0 {
		return
	}
	for _, fn := range a.listeners {
		fn(out)
	}
}

// resetDiffLocked re-snapshots partition p and reconciles the view
// against it, emitting only genuine differences — an unchanged partition
// (the common case for a migration flip, which moves ownership but not
// contents) emits nothing, which is what makes deltas exactly-once across
// a mid-subscription rebalance.
func (a *Arrangement) resetDiffLocked(p int) []ArrDelta {
	a.resets.Add(1)
	entries, seq := a.m.SnapshotPartition(p)
	if seq > a.appliedSeq[p] {
		a.appliedSeq[p] = seq
	}
	epoch := a.m.Store().Assignment().PartitionEpoch(p)
	cur := make(map[string]kv.Entry, len(entries))
	for _, e := range entries {
		cur[partition.KeyString(e.Key)] = e
	}
	var out []ArrDelta
	for ks, ar := range a.rows {
		if ar.part != p {
			continue
		}
		if _, ok := cur[ks]; !ok {
			delete(a.rows, ks)
			out = append(out, ArrDelta{
				Row: TableRow{Key: ar.row.Key}, KeyS: ks, Part: p,
				Seq: a.appliedSeq[p], Epoch: epoch, Tombstone: true,
			})
			a.applied.Add(1)
			a.watermark.Add(1)
		}
	}
	for ks, e := range cur {
		if old, ok := a.rows[ks]; ok && reflect.DeepEqual(old.row.Raw, e.Value) {
			continue
		}
		row := TableRow{Key: e.Key, Value: kv.AsRow(e.Value), Raw: e.Value}
		a.rows[ks] = arrRow{row: row, part: p}
		out = append(out, ArrDelta{
			Row: row, KeyS: ks, Part: p, Seq: a.appliedSeq[p], Epoch: epoch,
		})
		a.applied.Add(1)
		a.watermark.Add(1)
	}
	return out
}

// Attach registers a listener and returns a consistent snapshot of the
// maintained view plus the watermark it reflects: every delta applied
// before the snapshot is in the returned rows, every later one will reach
// the listener, with nothing delivered twice. Detach with the returned id.
func (a *Arrangement) Attach(fn ArrListener) (rows []TableRow, watermark uint64, id int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows = make([]TableRow, 0, len(a.rows))
	for _, ar := range a.rows {
		rows = append(rows, ar.row)
	}
	id = a.nextLis
	a.nextLis++
	a.listeners[id] = fn
	return rows, a.watermark.Load(), id
}

// Detach removes a listener registered by Attach. No new delta groups are
// delivered after Detach returns.
func (a *Arrangement) Detach(id int) {
	a.mu.Lock()
	delete(a.listeners, id)
	a.mu.Unlock()
}

// Rows returns a point-in-time copy of the maintained view (tests and the
// degenerate run-to-watermark path).
func (a *Arrangement) Rows() []TableRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TableRow, 0, len(a.rows))
	for _, ar := range a.rows {
		out = append(out, ar.row)
	}
	return out
}

// Table returns the live table this arrangement maintains.
func (a *Arrangement) Table() string { return a.table }

// Watermark returns the cumulative count of deltas folded into the view.
func (a *Arrangement) Watermark() uint64 { return a.watermark.Load() }

// Release drops one reference. The last release detaches the tap, stops
// the applier and removes the arrangement from its registry.
func (a *Arrangement) Release() { a.reg.release(a) }

// ArrangementInfo is the observable state of one arrangement — the rows
// behind sys.arrangements.
type ArrangementInfo struct {
	Table     string
	Refs      int
	Rows      int
	DeltasIn  int64
	Applied   int64
	Resets    int64
	Watermark uint64
}

// ArrangeRegistry shares arrangements by table: Acquire returns the
// existing maintained view when one exists (bumping its refcount) and
// builds it on first demand.
type ArrangeRegistry struct {
	store *kv.Store
	mu    sync.Mutex
	arrs  map[string]*Arrangement
}

// NewArrangeRegistry creates an empty registry over the store.
func NewArrangeRegistry(store *kv.Store) *ArrangeRegistry {
	return &ArrangeRegistry{store: store, arrs: make(map[string]*Arrangement)}
}

// Acquire returns the shared arrangement for the named live table,
// building and populating it if this is the first reader. The table name
// is the operator (= live kv map) name. Callers must Release.
func (r *ArrangeRegistry) Acquire(table string) (*Arrangement, error) {
	name := LiveMapName(table)
	r.mu.Lock()
	defer r.mu.Unlock()
	if a := r.arrs[name]; a != nil {
		a.mu.Lock()
		a.refs++
		a.mu.Unlock()
		return a, nil
	}
	if !r.store.HasMap(name) {
		return nil, fmt.Errorf("core: no live state table %q to arrange", table)
	}
	m := r.store.GetMap(name)
	nparts := r.store.Partitioner().Count()
	a := &Arrangement{
		reg:        r,
		table:      name,
		m:          m,
		rows:       make(map[string]arrRow),
		appliedSeq: make([]uint64, nparts),
		listeners:  make(map[int]ArrListener),
		refs:       1,
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	// Attach-then-snapshot: the tap buffers concurrent writes while each
	// partition is copied with its sequence floor; the applier later skips
	// anything the floors already cover. No write is stalled, nothing is
	// missed, nothing applies twice.
	m.AttachTap(a)
	for p := 0; p < nparts; p++ {
		entries, seq := m.SnapshotPartition(p)
		for _, e := range entries {
			ks := partition.KeyString(e.Key)
			a.rows[ks] = arrRow{
				row:  TableRow{Key: e.Key, Value: kv.AsRow(e.Value), Raw: e.Value},
				part: p,
			}
		}
		a.appliedSeq[p] = seq
	}
	go a.run()
	r.arrs[name] = a
	return a, nil
}

// release drops a reference, tearing the arrangement down at zero.
func (r *ArrangeRegistry) release(a *Arrangement) {
	r.mu.Lock()
	a.mu.Lock()
	a.refs--
	last := a.refs == 0
	if last {
		delete(r.arrs, a.table)
	}
	a.mu.Unlock()
	r.mu.Unlock()
	if !last {
		return
	}
	a.m.DetachTap(a)
	close(a.done)
	<-a.stopped
}

// Infos returns accounting for every live arrangement, sorted by table —
// the programmatic twin of sys.arrangements.
func (r *ArrangeRegistry) Infos() []ArrangementInfo {
	r.mu.Lock()
	arrs := make([]*Arrangement, 0, len(r.arrs))
	for _, a := range r.arrs {
		arrs = append(arrs, a)
	}
	r.mu.Unlock()
	out := make([]ArrangementInfo, 0, len(arrs))
	for _, a := range arrs {
		a.mu.Lock()
		out = append(out, ArrangementInfo{
			Table:     a.table,
			Refs:      a.refs,
			Rows:      len(a.rows),
			DeltasIn:  a.deltasIn.Load(),
			Applied:   a.applied.Load(),
			Resets:    a.resets.Load(),
			Watermark: a.watermark.Load(),
		})
		a.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}
