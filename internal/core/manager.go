package core

import (
	"fmt"
	"sync"

	"squery/internal/kv"
	"squery/internal/persist"
	"squery/internal/snapshot"
)

// OperatorMeta describes one stateful operator whose state S-QUERY manages.
type OperatorMeta struct {
	Name        string
	Parallelism int
	Config      Config
}

// Manager owns the snapshot lifecycle of one job: the version registry,
// the atomic publication of the latest committed id, and the pruning of
// evicted versions from the state store. The dataflow checkpoint
// coordinator drives it: Begin → (operators prepare) → Commit.
type Manager struct {
	store *kv.Store
	reg   *snapshot.Registry

	mu        sync.Mutex
	ops       map[string]OperatorMeta
	persister *persist.Store
}

// NewManager creates a manager over the store retaining `retention`
// committed snapshot versions (<1 selects the paper's default of 2).
func NewManager(store *kv.Store, retention int) *Manager {
	return &Manager{
		store: store,
		reg:   snapshot.NewRegistry(retention),
		ops:   make(map[string]OperatorMeta),
	}
}

// Registry exposes the snapshot version registry.
func (m *Manager) Registry() *snapshot.Registry { return m.reg }

// RegisterOperator records a stateful operator. Names must be unique: the
// operator name is the SQL table name (§V.B).
func (m *Manager) RegisterOperator(meta OperatorMeta) error {
	if meta.Name == "" {
		return fmt.Errorf("core: operator name must not be empty")
	}
	if meta.Parallelism < 1 {
		return fmt.Errorf("core: operator %q has parallelism %d", meta.Name, meta.Parallelism)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := sanitize(meta.Name)
	if _, dup := m.ops[key]; dup {
		return fmt.Errorf("core: duplicate stateful operator name %q", meta.Name)
	}
	m.ops[key] = meta
	return nil
}

// Operators returns the registered operators.
func (m *Manager) Operators() []OperatorMeta {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]OperatorMeta, 0, len(m.ops))
	for _, meta := range m.ops {
		out = append(out, meta)
	}
	return out
}

// Begin starts a checkpoint, returning its snapshot id.
func (m *Manager) Begin() (int64, error) { return m.reg.Begin() }

// Abort cancels an in-flight checkpoint after a failure.
func (m *Manager) Abort(ssid int64) { m.reg.Abort(ssid) }

// Commit atomically publishes ssid as the latest committed snapshot
// (phase 2 of the paper's 2PC) and prunes versions evicted by the
// retention policy from every registered operator's snapshot state. It
// returns the evicted ids.
func (m *Manager) Commit(ssid int64) []int64 {
	// Stable storage first: once the registry publishes the id, queries
	// may rely on it, so the durable copy must already exist.
	if err := m.persistCommitted(ssid); err != nil {
		panic(fmt.Sprintf("core: persisting snapshot %d: %v", ssid, err))
	}
	evicted := m.reg.Commit(ssid)
	if len(evicted) > 0 {
		m.prune(evicted)
		m.mu.Lock()
		p := m.persister
		m.mu.Unlock()
		if p != nil {
			if err := p.Prune(evicted); err != nil {
				panic(fmt.Sprintf("core: pruning persisted snapshots: %v", err))
			}
		}
	}
	return evicted
}

// prune removes evicted snapshot versions. Chains are compacted against
// the oldest retained id (keeping one base version per key); blob
// snapshots are deleted outright. All writes are issued from the owning
// node — pruning, like snapshotting, is local work.
func (m *Manager) prune(evicted []int64) {
	oldest := m.reg.OldestRetained()
	m.mu.Lock()
	ops := make([]OperatorMeta, 0, len(m.ops))
	for _, meta := range m.ops {
		ops = append(ops, meta)
	}
	m.mu.Unlock()

	assign := m.store.Assignment()
	for _, meta := range ops {
		if meta.Config.JetBlob {
			for inst := 0; inst < meta.Parallelism; inst++ {
				for _, ev := range evicted {
					key := blobKey(inst, ev)
					owner := assign.Owner(m.store.Partitioner().Of(key))
					m.store.View(owner).Delete(blobMapName(meta.Name), key)
				}
			}
			continue
		}
		if !meta.Config.Snapshots {
			continue
		}
		name := SnapshotMapName(meta.Name)
		if !m.store.HasMap(name) {
			continue
		}
		snapMap := m.store.GetMap(name)
		for p := 0; p < m.store.Partitioner().Count(); p++ {
			view := m.store.View(assign.Owner(p))
			type rewrite struct {
				key   any
				chain *Chain
			}
			var changes []rewrite
			snapMap.ScanPartition(p, func(e kv.Entry) bool {
				chain := e.Value.(*Chain)
				pruned := chain.Prune(oldest)
				if pruned != chain {
					changes = append(changes, rewrite{key: e.Key, chain: pruned})
				}
				return true
			})
			for _, ch := range changes {
				if ch.chain.Len() == 0 {
					view.Delete(name, ch.key)
				} else {
					view.Put(name, ch.key, ch.chain)
				}
			}
		}
	}
}
