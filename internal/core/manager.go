package core

import (
	"fmt"
	"sync"

	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/persist"
	"squery/internal/snapshot"
)

// OperatorMeta describes one stateful operator whose state S-QUERY manages.
type OperatorMeta struct {
	Name        string
	Parallelism int
	Config      Config
}

// Manager owns the snapshot lifecycle of one job: the version registry,
// the atomic publication of the latest committed id, and the pruning of
// evicted versions from the state store. The dataflow checkpoint
// coordinator drives it: Begin → (operators prepare) → Commit.
type Manager struct {
	store *kv.Store
	reg   *snapshot.Registry

	mu            sync.Mutex
	ops           map[string]OperatorMeta
	persister     *persist.Store
	persistPolicy PersistPolicy
	lastPersist   PersistInfo

	// Changed-key index: every snapshot-chain write a wired backend
	// performs is reported here (see NoteChanged), so commit-time work —
	// collecting the persisted delta and compacting version chains — can
	// walk just the keys that changed instead of scanning whole maps.
	// `changed` holds keys not yet persisted durably; `pruneDue` holds
	// keys whose chains may still compact further. Operators that never
	// report (backends created outside the dataflow layer) keep the
	// original full-scan behaviour via the `indexed` flag.
	changeMu sync.Mutex
	indexed  map[string]bool
	changed  map[string]map[string]partition.Key
	pruneDue map[string]map[string]partition.Key
}

// NewManager creates a manager over the store retaining `retention`
// committed snapshot versions (<1 selects the paper's default of 2).
func NewManager(store *kv.Store, retention int) *Manager {
	return &Manager{
		store:    store,
		reg:      snapshot.NewRegistry(retention),
		ops:      make(map[string]OperatorMeta),
		indexed:  make(map[string]bool),
		changed:  make(map[string]map[string]partition.Key),
		pruneDue: make(map[string]map[string]partition.Key),
	}
}

// NoteChanged records that snapshot-chain versions were written for keys
// of op. Backends wired through SetChangeNotifier call it on every
// version write; once an operator reports here, persisted-delta
// collection and chain pruning visit only reported keys — the commit-side
// half of O(delta) checkpoints.
func (m *Manager) NoteChanged(op string, keys []partition.Key) {
	if len(keys) == 0 {
		return
	}
	so := sanitize(op)
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	m.indexed[so] = true
	cm := m.changed[so]
	if cm == nil {
		cm = make(map[string]partition.Key, len(keys))
		m.changed[so] = cm
	}
	pm := m.pruneDue[so]
	if pm == nil {
		pm = make(map[string]partition.Key, len(keys))
		m.pruneDue[so] = pm
	}
	for _, k := range keys {
		ks := partition.KeyString(k)
		cm[ks] = k
		pm[ks] = k
	}
}

// opIndexed reports whether op's backends report chain writes to the
// changed-key index.
func (m *Manager) opIndexed(op string) bool {
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	return m.indexed[op]
}

// takeChanged removes and returns op's not-yet-durable key set.
func (m *Manager) takeChanged(op string) map[string]partition.Key {
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	out := m.changed[op]
	delete(m.changed, op)
	return out
}

// mergeChanged re-files keys whose chains were not fully covered by the
// snapshot just persisted (versions beyond the cut). Writes noted since
// takeChanged win.
func (m *Manager) mergeChanged(op string, keys map[string]partition.Key) {
	if len(keys) == 0 {
		return
	}
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	cm := m.changed[op]
	if cm == nil {
		m.changed[op] = keys
		return
	}
	for ks, k := range keys {
		if _, ok := cm[ks]; !ok {
			cm[ks] = k
		}
	}
}

// takePruneDue removes and returns op's may-compact-further key set.
func (m *Manager) takePruneDue(op string) map[string]partition.Key {
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	out := m.pruneDue[op]
	delete(m.pruneDue, op)
	return out
}

// mergePruneDue re-files keys whose chains still hold more than their
// stable base version.
func (m *Manager) mergePruneDue(op string, keys map[string]partition.Key) {
	if len(keys) == 0 {
		return
	}
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	pm := m.pruneDue[op]
	if pm == nil {
		m.pruneDue[op] = keys
		return
	}
	for ks, k := range keys {
		if _, ok := pm[ks]; !ok {
			pm[ks] = k
		}
	}
}

// dropChanged empties the whole not-yet-durable index — called when no
// persister is attached, so the index cannot grow without a consumer.
func (m *Manager) dropChanged() {
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	for op := range m.changed {
		delete(m.changed, op)
	}
}

// Registry exposes the snapshot version registry.
func (m *Manager) Registry() *snapshot.Registry { return m.reg }

// RegisterOperator records a stateful operator. Names must be unique: the
// operator name is the SQL table name (§V.B).
func (m *Manager) RegisterOperator(meta OperatorMeta) error {
	if meta.Name == "" {
		return fmt.Errorf("core: operator name must not be empty")
	}
	if meta.Parallelism < 1 {
		return fmt.Errorf("core: operator %q has parallelism %d", meta.Name, meta.Parallelism)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := sanitize(meta.Name)
	if _, dup := m.ops[key]; dup {
		return fmt.Errorf("core: duplicate stateful operator name %q", meta.Name)
	}
	m.ops[key] = meta
	return nil
}

// Operators returns the registered operators.
func (m *Manager) Operators() []OperatorMeta {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]OperatorMeta, 0, len(m.ops))
	for _, meta := range m.ops {
		out = append(out, meta)
	}
	return out
}

// Begin starts a checkpoint, returning its snapshot id.
func (m *Manager) Begin() (int64, error) { return m.reg.Begin() }

// Abort cancels an in-flight checkpoint after a failure.
func (m *Manager) Abort(ssid int64) { m.reg.Abort(ssid) }

// Commit atomically publishes ssid as the latest committed snapshot
// (phase 2 of the paper's 2PC) and prunes versions evicted by the
// retention policy from every registered operator's snapshot state. It
// returns the evicted ids.
func (m *Manager) Commit(ssid int64) []int64 {
	// Stable storage first: once the registry publishes the id, queries
	// may rely on it, so the durable copy must already exist.
	if err := m.persistCommitted(ssid); err != nil {
		panic(fmt.Sprintf("core: persisting snapshot %d: %v", ssid, err))
	}
	evicted := m.reg.Commit(ssid)
	if len(evicted) > 0 {
		m.prune(evicted)
		m.mu.Lock()
		p := m.persister
		m.mu.Unlock()
		if p != nil {
			if err := p.Prune(evicted); err != nil {
				panic(fmt.Sprintf("core: pruning persisted snapshots: %v", err))
			}
		}
	}
	return evicted
}

// prune removes evicted snapshot versions. Chains are compacted against
// the oldest retained id (keeping one base version per key); blob
// snapshots are deleted outright. All writes are issued from the owning
// node — pruning, like snapshotting, is local work.
func (m *Manager) prune(evicted []int64) {
	oldest := m.reg.OldestRetained()
	m.mu.Lock()
	ops := make([]OperatorMeta, 0, len(m.ops))
	for _, meta := range m.ops {
		ops = append(ops, meta)
	}
	m.mu.Unlock()

	assign := m.store.Assignment()
	for _, meta := range ops {
		if meta.Config.JetBlob {
			for inst := 0; inst < meta.Parallelism; inst++ {
				for _, ev := range evicted {
					key := blobKey(inst, ev)
					owner := assign.Owner(m.store.Partitioner().Of(key))
					m.store.View(owner).Delete(blobMapName(meta.Name), key)
				}
			}
			continue
		}
		if !meta.Config.Snapshots {
			continue
		}
		name := SnapshotMapName(meta.Name)
		if !m.store.HasMap(name) {
			continue
		}
		op := sanitize(meta.Name)
		if m.opIndexed(op) {
			// O(delta) path: only chains written since the last prune can
			// have anything left to compact — untouched chains were already
			// reduced to a stable base (or hold a single version pruning
			// would keep anyway).
			idx := m.takePruneDue(op)
			keep := make(map[string]partition.Key)
			for ks, key := range idx {
				view := m.store.View(assign.Owner(m.store.Partitioner().Of(key)))
				cur, ok := view.Get(name, key)
				if !ok {
					continue
				}
				chain := cur.(*Chain)
				if pruned := chain.Prune(oldest); pruned != chain {
					if pruned.Len() == 0 {
						view.Delete(name, key)
					} else {
						view.Put(name, key, pruned)
					}
					chain = pruned
				}
				// A chain is stable — no future prune changes it — once it
				// holds just one version at or below the horizon; everything
				// else stays filed for the next pass.
				if chain.Len() > 1 {
					keep[ks] = key
				} else if nw, ok := chain.Newest(); ok && nw.SSID > oldest {
					keep[ks] = key
				}
			}
			m.mergePruneDue(op, keep)
			continue
		}
		snapMap := m.store.GetMap(name)
		for p := 0; p < m.store.Partitioner().Count(); p++ {
			view := m.store.View(assign.Owner(p))
			type rewrite struct {
				key   any
				chain *Chain
			}
			var changes []rewrite
			snapMap.ScanPartition(p, func(e kv.Entry) bool {
				chain := e.Value.(*Chain)
				pruned := chain.Prune(oldest)
				if pruned != chain {
					changes = append(changes, rewrite{key: e.Key, chain: pruned})
				}
				return true
			})
			for _, ch := range changes {
				if ch.chain.Len() == 0 {
					view.Delete(name, ch.key)
				} else {
					view.Put(name, ch.key, ch.chain)
				}
			}
		}
	}
}
