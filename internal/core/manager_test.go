package core

import (
	"testing"

	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/snapshot"
)

func checkpoint(t *testing.T, m *Manager, backends ...*Backend) int64 {
	t.Helper()
	ssid, err := m.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for _, b := range backends {
		if _, err := b.SnapshotPrepare(ssid); err != nil {
			t.Fatalf("prepare: %v", err)
		}
	}
	m.Commit(ssid)
	return ssid
}

func TestManagerRegisterValidation(t *testing.T) {
	m := NewManager(newTestStore(), 2)
	if err := m.RegisterOperator(OperatorMeta{Name: "", Parallelism: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if err := m.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 0}); err == nil {
		t.Error("zero parallelism accepted")
	}
	if err := m.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1}); err != nil {
		t.Errorf("valid operator rejected: %v", err)
	}
	if err := m.RegisterOperator(OperatorMeta{Name: "OP", Parallelism: 1}); err == nil {
		t.Error("duplicate (case-folded) name accepted")
	}
	if len(m.Operators()) != 1 {
		t.Errorf("Operators() = %d entries", len(m.Operators()))
	}
}

func TestManagerCommitPrunesChains(t *testing.T) {
	store := newTestStore()
	m := NewManager(store, 2)
	cfg := Config{Snapshots: true}
	if err := m.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	b := NewBackend("op", 0, store.View(0), cfg)
	for i := 0; i < 50; i++ {
		b.Update(i, i)
	}
	for i := 0; i < 5; i++ {
		checkpoint(t, m, b)
	}
	// Retention 2 of 5 snapshots: chains must hold at most base+2 versions.
	store.View(0).Scan(SnapshotMapName("op"), func(e kv.Entry) bool {
		c := e.Value.(*Chain)
		if c.Len() > 3 {
			t.Errorf("key %v chain has %d versions after pruning", e.Key, c.Len())
			return false
		}
		return true
	})
	if got := m.Registry().LatestCommitted(); got != 5 {
		t.Fatalf("latest = %d, want 5", got)
	}
	if m.Registry().IsQueryable(3) || !m.Registry().IsQueryable(4) {
		t.Fatal("retention window wrong")
	}
}

func TestManagerPruneDropsDeletedKeys(t *testing.T) {
	store := newTestStore()
	m := NewManager(store, 1)
	cfg := Config{Snapshots: true, Incremental: true}
	m.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 1, Config: cfg})
	b := NewBackend("op", 0, store.View(0), cfg)
	b.Update("k", 1)
	checkpoint(t, m, b) // ssid 1: k=1
	b.Delete("k")
	checkpoint(t, m, b) // ssid 2: tombstone; ssid 1 evicted
	checkpoint(t, m, b) // ssid 3: nothing dirty; ssid 2 evicted
	// After the tombstone's version is the only retained history, the
	// entry must disappear from the snapshot map entirely.
	if n := store.GetMap(SnapshotMapName("op")).Size(); n != 0 {
		t.Fatalf("snapshot map still holds %d entries, want 0", n)
	}
}

func TestManagerPrunesBlobSnapshots(t *testing.T) {
	store := newTestStore()
	m := NewManager(store, 2)
	cfg := Config{JetBlob: true}
	m.RegisterOperator(OperatorMeta{Name: "op", Parallelism: 2, Config: cfg})
	b0 := NewBackend("op", 0, store.View(0), cfg)
	b1 := NewBackend("op", 1, store.View(0), cfg)
	b0.Update("a", 1)
	b1.Update("b", 2)
	for i := 0; i < 4; i++ {
		checkpoint(t, m, b0, b1)
	}
	// 4 snapshots, retention 2 → blobs for ssids 3,4 remain: 2 insts × 2.
	if n := store.GetMap(blobMapName("op")).Size(); n != 4 {
		t.Fatalf("blob map has %d entries, want 4", n)
	}
}

func TestManagerAbort(t *testing.T) {
	m := NewManager(newTestStore(), 2)
	ssid, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	m.Abort(ssid)
	if m.Registry().LatestCommitted() != snapshot.NoSnapshot {
		t.Fatal("aborted checkpoint committed")
	}
	if _, err := m.Begin(); err != nil {
		t.Fatalf("Begin after abort: %v", err)
	}
}

func TestCatalogResolution(t *testing.T) {
	store := newTestStore()
	cat := NewCatalog(store)
	reg := snapshot.NewRegistry(2)
	if err := cat.RegisterJob(reg, "average", "orderinfo"); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterJob(reg, "average"); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	live, err := cat.Table("average")
	if err != nil || live.IsSnapshot() {
		t.Fatalf("live table: %v, snapshot=%v", err, live.IsSnapshot())
	}
	snap, err := cat.Table("snapshot_average")
	if err != nil || !snap.IsSnapshot() {
		t.Fatalf("snapshot table: %v", err)
	}
	if _, err := cat.Table("nosuch"); err == nil {
		t.Fatal("unknown table resolved")
	}

	// No committed snapshot yet: unpinned snapshot queries must fail.
	if _, err := snap.ResolveSSID(0); err == nil {
		t.Fatal("ResolveSSID(0) with no committed snapshot succeeded")
	}
	id, _ := reg.Begin()
	reg.Commit(id)
	got, err := snap.ResolveSSID(0)
	if err != nil || got != id {
		t.Fatalf("ResolveSSID(0) = %d, %v; want %d", got, err, id)
	}
	if _, err := snap.ResolveSSID(99); err == nil {
		t.Fatal("ResolveSSID of uncommitted id succeeded")
	}
	// Live tables ignore pinning.
	if got, err := live.ResolveSSID(42); err != nil || got != 0 {
		t.Fatalf("live ResolveSSID = %d, %v", got, err)
	}

	cat.UnregisterJob("average", "orderinfo")
	if _, err := cat.Table("average"); err == nil {
		t.Fatal("table resolvable after unregister")
	}
}

func TestTableScanLiveAndSnapshot(t *testing.T) {
	store := newTestStore()
	cat := NewCatalog(store)
	reg := snapshot.NewRegistry(2)
	cat.RegisterJob(reg, "op")

	cfg := Config{Live: true, Snapshots: true}
	b := NewBackend("op", 0, store.View(0), cfg)
	b.Update(1, avgState{Count: 3, Total: 45})
	b.Update(2, avgState{Count: 1, Total: 5})
	ssid, _ := reg.Begin()
	b.SnapshotPrepare(ssid)
	reg.Commit(ssid)
	b.Update(2, avgState{Count: 2, Total: 20}) // live-only update
	b.Flush()                                  // mirroring is batched; workers flush at quiescence

	live, _ := cat.Table("op")
	t.Run("live sees the uncommitted update", func(t *testing.T) {
		var got int
		live.Scan(0, func(r TableRow) bool {
			if partition.KeyString(r.Key) == "2" {
				v, _ := r.Field("count")
				got = v.(int)
			}
			return true
		})
		if got != 2 {
			t.Fatalf("live count for key 2 = %d, want 2", got)
		}
	})
	t.Run("snapshot sees the committed version", func(t *testing.T) {
		snapTab, _ := cat.Table("snapshot_op")
		target, err := snapTab.ResolveSSID(0)
		if err != nil {
			t.Fatal(err)
		}
		var got int
		var gotSSID int64
		snapTab.Scan(target, func(r TableRow) bool {
			if partition.KeyString(r.Key) == "2" {
				v, _ := r.Field("count")
				got = v.(int)
				s, _ := r.Field(ColSSID)
				gotSSID = s.(int64)
			}
			return true
		})
		if got != 1 || gotSSID != ssid {
			t.Fatalf("snapshot count for key 2 = %d (ssid %d), want 1 (ssid %d)", got, gotSSID, ssid)
		}
	})
	t.Run("pseudo columns present", func(t *testing.T) {
		live.Scan(0, func(r TableRow) bool {
			if _, ok := r.Field(ColPartitionKey); !ok {
				t.Error("partitionKey missing")
			}
			cols := r.Columns()
			found := false
			for _, c := range cols {
				if c == ColPartitionKey {
					found = true
				}
			}
			if !found {
				t.Error("partitionKey not in Columns()")
			}
			return false
		})
	})
}

// TableRowValue is a test helper fetching a named field.
func TableRowValue(name string, r TableRow) any {
	v, _ := r.Field(name)
	return v
}
