package core

import (
	"fmt"

	"squery/internal/kv"
	"squery/internal/persist"
)

// Persistence integration: when a persister is attached, every committed
// checkpoint is also written to stable storage (one segment per queryable
// operator), and a fresh manager can cold-start from the latest durable
// snapshot — the paper's stable-storage requirement (§IV) implemented on
// top of internal/persist.

// SetPersister attaches stable storage. Subsequent Commit calls write
// every queryable operator's state at the committed snapshot id to disk
// before pruning; evicted ids are pruned from disk as well. Attaching a
// persister makes commits O(total state) — it is an opt-in durability
// level, not the default.
func (m *Manager) SetPersister(p *persist.Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persister = p
}

// persistCommitted writes the state of every queryable operator at ssid
// to stable storage and durably commits the id.
func (m *Manager) persistCommitted(ssid int64) error {
	m.mu.Lock()
	p := m.persister
	ops := make([]OperatorMeta, 0, len(m.ops))
	for _, meta := range m.ops {
		ops = append(ops, meta)
	}
	m.mu.Unlock()
	if p == nil {
		return nil
	}
	for _, meta := range ops {
		if !meta.Config.Snapshots {
			continue
		}
		var entries []persist.Entry
		name := SnapshotMapName(meta.Name)
		if !m.store.HasMap(name) {
			continue
		}
		snapMap := m.store.GetMap(name)
		for part := 0; part < m.store.Partitioner().Count(); part++ {
			snapMap.ScanPartition(part, func(e kv.Entry) bool {
				if v, ok := e.Value.(*Chain).At(ssid); ok {
					entries = append(entries, persist.Entry{Key: e.Key, Value: v.Value})
				}
				return true
			})
		}
		if err := p.WriteSegment(ssid, sanitize(meta.Name), entries); err != nil {
			return err
		}
	}
	return p.Commit(ssid)
}

// ImportPersisted cold-starts the manager's registry and snapshot maps
// from the latest snapshot in stable storage. It must be called on a
// fresh manager, with the target operators already registered, before
// any checkpoint runs. It returns the imported snapshot id (0 when the
// store is empty).
func (m *Manager) ImportPersisted(p *persist.Store) (int64, error) {
	latest, err := p.Latest()
	if err != nil {
		return 0, err
	}
	if latest == 0 {
		return 0, nil
	}
	ops, err := p.Operators(latest)
	if err != nil {
		return 0, err
	}
	assign := m.store.Assignment()
	for _, op := range ops {
		entries, err := p.ReadSegment(latest, op)
		if err != nil {
			return 0, err
		}
		name := SnapshotMapName(op)
		for _, e := range entries {
			owner := assign.Owner(m.store.Partitioner().Of(e.Key))
			view := m.store.View(owner)
			var chain *Chain
			if cur, ok := view.Get(name, e.Key); ok {
				chain = cur.(*Chain)
			}
			view.Put(name, e.Key, chain.With(Versioned{SSID: latest, Value: e.Value}))
		}
	}
	if err := m.reg.Seed([]int64{latest}); err != nil {
		return 0, fmt.Errorf("core: importing persisted snapshot: %w", err)
	}
	return latest, nil
}
