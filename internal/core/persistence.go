package core

import (
	"fmt"

	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/persist"
)

// Persistence integration: when a persister is attached, every committed
// checkpoint is also written to stable storage, and a fresh manager can
// cold-start from the latest durable snapshot — the paper's stable-
// storage requirement (§IV) implemented on top of internal/persist.
//
// Snapshots persist incrementally: each commit writes, per operator, a
// delta segment holding only the versions minted since the last durable
// snapshot (upserts and tombstones), chained to that snapshot as its
// base. The delta window is computed from the version chains, not the
// backends' in-memory dirty sets — chains survive aborted checkpoint
// rounds (a version written at an aborted id still governs later reads),
// so the durable delta never loses a key to an abort between commits.
// PersistPolicy bounds the chains: when one would grow past MaxChainLen,
// or the delta stops being small relative to the live state, the commit
// folds everything into a fresh full segment instead (compaction) and
// the chain restarts.

// PersistPolicy tunes the full-vs-delta decision of persisted commits.
type PersistPolicy struct {
	// MaxChainLen caps how many delta segments may chain off a full base
	// before a commit folds them into a new full segment. <1 selects the
	// default of 8.
	MaxChainLen int
	// CompactFraction folds to a full segment when the delta holds at
	// least this fraction of the operator's live keys — at that size the
	// delta stops being cheaper than a compacting full write. <=0 selects
	// the default of 0.5.
	CompactFraction float64
	// FullOnly disables delta segments entirely: every persisted commit
	// writes full segments, the pre-delta behaviour. The A/B baseline for
	// `squery-bench -exp ckpt-scale`.
	FullOnly bool
}

func (p PersistPolicy) withDefaults() PersistPolicy {
	if p.MaxChainLen < 1 {
		p.MaxChainLen = 8
	}
	if p.CompactFraction <= 0 {
		p.CompactFraction = 0.5
	}
	return p
}

// PersistInfo describes what the most recent persisted commit wrote —
// the coordinator surfaces it through sys.checkpoints and the metrics
// registry.
type PersistInfo struct {
	SSID        int64
	Mode        string // "delta", "full", "mixed", or "none"
	Entries     int    // entries written across all segments
	Bytes       int64  // bytes written by this commit
	DeltaSegs   int    // delta segments written by this commit
	FullSegs    int    // full segments written by this commit
	MaxChainLen int    // longest delta chain after this commit
	Compactions int    // chains folded into a full segment by policy
}

// SetPersister attaches stable storage. Subsequent Commit calls write
// every queryable operator's changes at the committed snapshot id to
// disk before pruning; unreachable snapshot directories are garbage-
// collected as ids are evicted. Commits are O(delta): only versions
// minted since the last durable snapshot are written (full segments only
// at the chain base and at compaction points).
func (m *Manager) SetPersister(p *persist.Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persister = p
}

// SetPersistPolicy overrides the full-vs-delta policy for persisted
// commits. Call before the first commit.
func (m *Manager) SetPersistPolicy(pol PersistPolicy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistPolicy = pol
}

// Persister returns the attached stable store (nil when persistence is
// off).
func (m *Manager) Persister() *persist.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.persister
}

// LastPersist returns what the most recent persisted commit wrote. The
// zero value means no commit has persisted yet (or persistence is off).
func (m *Manager) LastPersist() PersistInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastPersist
}

// persistCommitted writes the state of every queryable operator at ssid
// to stable storage — as delta segments where the policy allows — and
// durably commits the id.
func (m *Manager) persistCommitted(ssid int64) error {
	m.mu.Lock()
	p := m.persister
	pol := m.persistPolicy.withDefaults()
	ops := make([]OperatorMeta, 0, len(m.ops))
	for _, meta := range m.ops {
		ops = append(ops, meta)
	}
	m.mu.Unlock()
	if p == nil {
		// No consumer for the not-yet-durable index: drop it, or it would
		// accumulate every key ever snapshotted.
		m.dropChanged()
		return nil
	}
	statsBefore := p.Stats()
	lastDurable, err := p.Latest()
	if err != nil {
		return err
	}
	// Operators present at the base snapshot: a delta can only chain to a
	// base that actually holds a segment for the operator.
	baseOps := map[string]bool{}
	if lastDurable > 0 {
		names, err := p.Operators(lastDurable)
		if err != nil {
			return err
		}
		for _, n := range names {
			baseOps[n] = true
		}
	}
	info := PersistInfo{SSID: ssid, Mode: "none"}
	for _, meta := range ops {
		if !meta.Config.Snapshots {
			continue
		}
		name := SnapshotMapName(meta.Name)
		if !m.store.HasMap(name) {
			continue
		}
		op := sanitize(meta.Name)
		snapMap := m.store.GetMap(name)

		// Collect the delta window (lastDurable, ssid] — every version
		// minted since the last durable snapshot, tombstones included —
		// plus a live count for the compaction ratio. With a changed-key
		// index this walks only the keys written since the last durable
		// commit; unindexed operators fall back to the full chain scan.
		var deltas []persist.DeltaEntry
		live := 0
		if m.opIndexed(op) {
			idx := m.takeChanged(op)
			carry := make(map[string]partition.Key)
			assign := m.store.Assignment()
			for ks, key := range idx {
				cur, ok := m.store.View(assign.Owner(m.store.Partitioner().Of(key))).Get(name, key)
				if !ok {
					continue
				}
				chain := cur.(*Chain)
				// Versions beyond this cut are not made durable here; the
				// key stays filed for the next commit.
				if nw, ok := chain.Newest(); ok && nw.SSID > ssid {
					carry[ks] = key
				}
				v, ok := chain.Governing(ssid)
				if !ok || v.SSID <= lastDurable {
					continue
				}
				deltas = append(deltas, persist.DeltaEntry{Key: key, Value: v.Value, Tombstone: v.Tombstone})
			}
			m.mergeChanged(op, carry)
			// Size counts chains, including pure-tombstone ones — a slight
			// overcount of the live set that only delays the compaction
			// trigger marginally.
			live = snapMap.Size()
		} else {
			for part := 0; part < m.store.Partitioner().Count(); part++ {
				snapMap.ScanPartition(part, func(e kv.Entry) bool {
					v, ok := e.Value.(*Chain).Governing(ssid)
					if !ok {
						return true
					}
					if !v.Tombstone {
						live++
					}
					if v.SSID > lastDurable {
						deltas = append(deltas, persist.DeltaEntry{Key: e.Key, Value: v.Value, Tombstone: v.Tombstone})
					}
					return true
				})
			}
		}

		full := pol.FullOnly || lastDurable == 0 || !baseOps[op]
		chainLen := 0
		if !full {
			chainLen, err = p.ChainLen(lastDurable, op)
			if err != nil {
				return err
			}
			// Compaction triggers: the chain is at its length cap, or the
			// delta is no longer small relative to the live state.
			if chainLen >= pol.MaxChainLen || float64(len(deltas)) >= pol.CompactFraction*float64(live) {
				full = true
				info.Compactions++
			}
		}
		if full {
			var entries []persist.Entry
			for part := 0; part < m.store.Partitioner().Count(); part++ {
				snapMap.ScanPartition(part, func(e kv.Entry) bool {
					if v, ok := e.Value.(*Chain).At(ssid); ok {
						entries = append(entries, persist.Entry{Key: e.Key, Value: v.Value})
					}
					return true
				})
			}
			if err := p.WriteSegment(ssid, op, entries); err != nil {
				return err
			}
			info.FullSegs++
			info.Entries += len(entries)
		} else {
			if err := p.WriteDeltaSegment(ssid, op, lastDurable, deltas); err != nil {
				return err
			}
			info.DeltaSegs++
			info.Entries += len(deltas)
			if chainLen+1 > info.MaxChainLen {
				info.MaxChainLen = chainLen + 1
			}
		}
	}
	if err := p.Commit(ssid); err != nil {
		return err
	}
	switch {
	case info.DeltaSegs > 0 && info.FullSegs > 0:
		info.Mode = "mixed"
	case info.DeltaSegs > 0:
		info.Mode = "delta"
	case info.FullSegs > 0:
		info.Mode = "full"
	}
	info.Bytes = p.Stats().BytesWritten - statsBefore.BytesWritten
	m.mu.Lock()
	m.lastPersist = info
	m.mu.Unlock()
	return nil
}

// ImportPersisted cold-starts the manager's registry and snapshot maps
// from the latest snapshot in stable storage, replaying base + delta
// chain when the snapshot was persisted incrementally. It must be called
// on a fresh manager, with the target operators already registered,
// before any checkpoint runs. It returns the imported snapshot id (0
// when the store is empty).
func (m *Manager) ImportPersisted(p *persist.Store) (int64, error) {
	latest, err := p.Latest()
	if err != nil {
		return 0, err
	}
	if latest == 0 {
		return 0, nil
	}
	ops, err := p.Operators(latest)
	if err != nil {
		return 0, err
	}
	assign := m.store.Assignment()
	for _, op := range ops {
		entries, err := p.ReadState(latest, op)
		if err != nil {
			return 0, err
		}
		name := SnapshotMapName(op)
		for _, e := range entries {
			owner := assign.Owner(m.store.Partitioner().Of(e.Key))
			view := m.store.View(owner)
			var chain *Chain
			if cur, ok := view.Get(name, e.Key); ok {
				chain = cur.(*Chain)
			}
			view.Put(name, e.Key, chain.With(Versioned{SSID: latest, Value: e.Value}))
		}
	}
	if err := m.reg.Seed([]int64{latest}); err != nil {
		return 0, fmt.Errorf("core: importing persisted snapshot: %w", err)
	}
	return latest, nil
}
