package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/transport"
)

type avgState struct {
	Count int
	Total int
}

func init() { gob.Register(avgState{}) }

func newTestStore() *kv.Store {
	p := partition.New(16)
	return kv.NewStore(p, partition.Assign(16, 1), nil)
}

func ownsAll(partition.Key) bool { return true }

func TestBackendLiveMirroring(t *testing.T) {
	store := newTestStore()
	b := NewBackend("average", 0, store.View(0), Config{Live: true})
	b.Update(1, avgState{Count: 3, Total: 45})
	b.Update(2, avgState{Count: 2, Total: 20})
	// Mirroring is batched; the owning worker flushes at quiescence.
	b.Flush()

	v := store.View(0)
	got, ok := v.Get(LiveMapName("average"), 1)
	if !ok || got.(avgState).Total != 45 {
		t.Fatalf("live map entry = %v, %v", got, ok)
	}
	b.Delete(1)
	b.Flush()
	if _, ok := v.Get(LiveMapName("average"), 1); ok {
		t.Fatal("deleted key still live")
	}
	if got, _ := b.Get(2); got.(avgState).Count != 2 {
		t.Fatal("backend lost local state")
	}
	if b.Size() != 1 {
		t.Fatalf("Size = %d, want 1", b.Size())
	}
}

// TestBackendMirrorBatchFlushes pins the batching contract: updates
// buffer until MirrorBatch is reached (or Flush is called), then land as
// one partition-grouped batch; Unbatched restores per-record mirroring.
func TestBackendMirrorBatchFlushes(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{Live: true, MirrorBatch: 4})
	name := LiveMapName("op")
	for i := 0; i < 3; i++ {
		b.Update(i, i)
	}
	if store.HasMap(name) && store.GetMap(name).Size() > 0 {
		t.Fatal("live map written before the batch filled")
	}
	b.Update(3, 3) // fills the batch of 4 — auto-flush
	if got := store.GetMap(name).Size(); got != 4 {
		t.Fatalf("live map has %d entries after auto-flush, want 4", got)
	}

	un := NewBackend("op2", 0, store.View(0), Config{Live: true, Unbatched: true})
	un.Update("k", 1)
	if got, ok := store.View(0).Get(LiveMapName("op2"), "k"); !ok || got != 1 {
		t.Fatalf("unbatched mirror = %v, %v; want immediate visibility", got, ok)
	}
}

func TestBackendLiveDisabled(t *testing.T) {
	store := newTestStore()
	b := NewBackend("average", 0, store.View(0), Config{Snapshots: true})
	b.Update(1, avgState{Count: 1, Total: 10})
	if store.HasMap(LiveMapName("average")) && store.GetMap(LiveMapName("average")).Size() > 0 {
		t.Fatal("live map written with Live disabled")
	}
}

func TestFullSnapshotWritesAllKeys(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{Snapshots: true})
	for i := 0; i < 10; i++ {
		b.Update(i, i*10)
	}
	n, err := b.SnapshotPrepare(1)
	if err != nil || n != 10 {
		t.Fatalf("SnapshotPrepare = %d, %v; want 10", n, err)
	}
	// Untouched state: the next full snapshot still writes everything.
	n, _ = b.SnapshotPrepare(2)
	if n != 10 {
		t.Fatalf("second full snapshot wrote %d, want 10", n)
	}
	// Each key's chain now has two versions.
	v, ok := store.View(0).Get(SnapshotMapName("op"), 3)
	if !ok {
		t.Fatal("snapshot entry missing")
	}
	if c := v.(*Chain); c.Len() != 2 {
		t.Fatalf("chain Len = %d, want 2", c.Len())
	}
}

func TestIncrementalSnapshotWritesOnlyDirty(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{Snapshots: true, Incremental: true})
	for i := 0; i < 100; i++ {
		b.Update(i, i)
	}
	if n, _ := b.SnapshotPrepare(1); n != 100 {
		t.Fatalf("first incremental wrote %d, want 100", n)
	}
	// Touch 7 keys; only they are written at ssid 2.
	for i := 0; i < 7; i++ {
		b.Update(i, i+1000)
	}
	if n, _ := b.SnapshotPrepare(2); n != 7 {
		t.Fatalf("second incremental wrote %d, want 7", n)
	}
	// An unchanged key resolves at ssid 2 through its ssid-1 version.
	v, _ := store.View(0).Get(SnapshotMapName("op"), 50)
	got, ok := v.(*Chain).At(2)
	if !ok || got.Value != 50 || got.SSID != 1 {
		t.Fatalf("At(2) for unchanged key = %+v, %v", got, ok)
	}
	// A changed key resolves to its new version.
	v, _ = store.View(0).Get(SnapshotMapName("op"), 3)
	got, _ = v.(*Chain).At(2)
	if got.Value != 1003 || got.SSID != 2 {
		t.Fatalf("At(2) for changed key = %+v", got)
	}
}

func TestIncrementalSnapshotTombstone(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{Snapshots: true, Incremental: true})
	b.Update("gone", 1)
	b.SnapshotPrepare(1)
	b.Delete("gone")
	if n, _ := b.SnapshotPrepare(2); n != 1 {
		t.Fatalf("tombstone snapshot wrote %d entries, want 1", n)
	}
	v, _ := store.View(0).Get(SnapshotMapName("op"), "gone")
	if _, ok := v.(*Chain).At(2); ok {
		t.Fatal("deleted key visible at ssid 2")
	}
	if got, ok := v.(*Chain).At(1); !ok || got.Value != 1 {
		t.Fatal("key missing at ssid 1")
	}
}

func TestSnapshotsDisabledWritesNothing(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{Live: true})
	b.Update(1, 1)
	if n, err := b.SnapshotPrepare(1); n != 0 || err != nil {
		t.Fatalf("SnapshotPrepare = %d, %v; want 0, nil", n, err)
	}
	if store.HasMap(SnapshotMapName("op")) && store.GetMap(SnapshotMapName("op")).Size() > 0 {
		t.Fatal("snapshot map written with Snapshots disabled")
	}
}

func TestBlobSnapshotAndRestore(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{JetBlob: true})
	for i := 0; i < 20; i++ {
		b.Update(i, avgState{Count: i, Total: i * 2})
	}
	if n, err := b.SnapshotPrepare(1); n != 1 || err != nil {
		t.Fatalf("blob prepare = %d, %v; want 1 blob", n, err)
	}
	// Blob snapshots are NOT queryable: no snapshot_<op> map appears.
	if store.HasMap(SnapshotMapName("op")) {
		t.Fatal("blob mode created a queryable snapshot map")
	}

	restored := NewBackend("op", 0, store.View(0), Config{JetBlob: true})
	if err := restored.Restore(1, ownsAll); err != nil {
		t.Fatal(err)
	}
	if restored.Size() != 20 {
		t.Fatalf("restored %d keys, want 20", restored.Size())
	}
	got, ok := restored.Get(7)
	if !ok || got.(avgState).Total != 14 {
		t.Fatalf("restored value = %v, %v", got, ok)
	}
}

func TestBlobRestoreMissingSnapshotIsEmpty(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{JetBlob: true})
	if err := b.Restore(99, ownsAll); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 0 {
		t.Fatal("restore of missing blob produced state")
	}
}

func TestRestoreFromChains(t *testing.T) {
	store := newTestStore()
	cfg := Config{Live: true, Snapshots: true}
	b := NewBackend("op", 0, store.View(0), cfg)
	for i := 0; i < 10; i++ {
		b.Update(i, i)
	}
	b.SnapshotPrepare(1)
	// Post-checkpoint updates are uncommitted.
	b.Update(3, 999)
	b.Update(50, 50) // a brand-new uncommitted key

	restored := NewBackend("op", 0, store.View(0), cfg)
	if err := restored.Restore(1, ownsAll); err != nil {
		t.Fatal(err)
	}
	if got, _ := restored.Get(3); got != 3 {
		t.Fatalf("restored key 3 = %v, want the committed 3", got)
	}
	if _, ok := restored.Get(50); ok {
		t.Fatal("uncommitted key survived restore")
	}
	// Live state must reflect the rollback (Figure 5c).
	if got, _ := store.View(0).Get(LiveMapName("op"), 3); got != 3 {
		t.Fatalf("live key 3 after restore = %v, want 3", got)
	}
	if _, ok := store.View(0).Get(LiveMapName("op"), 50); ok {
		t.Fatal("uncommitted live key still visible after restore — dirty state leaked")
	}
}

func TestRestoreRespectsOwnership(t *testing.T) {
	store := newTestStore()
	cfg := Config{Snapshots: true}
	b := NewBackend("op", 0, store.View(0), cfg)
	for i := 0; i < 10; i++ {
		b.Update(i, i)
	}
	b.SnapshotPrepare(1)

	even := NewBackend("op", 0, store.View(0), cfg)
	even.Restore(1, func(k partition.Key) bool { return k.(int)%2 == 0 })
	if even.Size() != 5 {
		t.Fatalf("even instance restored %d keys, want 5", even.Size())
	}
	if _, ok := even.Get(3); ok {
		t.Fatal("even instance restored an odd key")
	}
}

func TestBackendPanicsOnConflictingConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("JetBlob+Snapshots did not panic")
		}
	}()
	NewBackend("op", 0, newTestStore().View(0), Config{JetBlob: true, Snapshots: true})
}

func TestMapNames(t *testing.T) {
	if got := LiveMapName("stateful map"); got != "statefulmap" {
		t.Errorf("LiveMapName = %q", got)
	}
	if got := SnapshotMapName("stateful map"); got != "snapshot_statefulmap" {
		t.Errorf("SnapshotMapName = %q", got)
	}
}

func TestMultipleInstancesShareSnapshotMap(t *testing.T) {
	store := newTestStore()
	cfg := Config{Snapshots: true}
	b0 := NewBackend("op", 0, store.View(0), cfg)
	b1 := NewBackend("op", 1, store.View(0), cfg)
	b0.Update("a", 1)
	b1.Update("b", 2)
	b0.SnapshotPrepare(1)
	b1.SnapshotPrepare(1)
	if n := store.GetMap(SnapshotMapName("op")).Size(); n != 2 {
		t.Fatalf("shared snapshot map has %d keys, want 2", n)
	}
}

func TestBackendForEach(t *testing.T) {
	b := NewBackend("op", 0, newTestStore().View(0), Config{})
	for i := 0; i < 5; i++ {
		b.Update(fmt.Sprintf("k%d", i), i)
	}
	n := 0
	b.ForEach(func(partition.Key, any) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("ForEach early stop visited %d", n)
	}
}

func TestFullSnapshotTombstonesDeletedKeys(t *testing.T) {
	store := newTestStore()
	b := NewBackend("op", 0, store.View(0), Config{Snapshots: true})
	b.Update("gone", 1)
	b.Update("kept", 2)
	b.SnapshotPrepare(1)
	b.Delete("gone")
	b.SnapshotPrepare(2)

	v, _ := store.View(0).Get(SnapshotMapName("op"), "gone")
	if _, ok := v.(*Chain).At(2); ok {
		t.Fatal("deleted key visible at ssid 2 in full mode")
	}
	if got, ok := v.(*Chain).At(1); !ok || got.Value != 1 {
		t.Fatal("key missing at ssid 1")
	}
	v, _ = store.View(0).Get(SnapshotMapName("op"), "kept")
	if got, ok := v.(*Chain).At(2); !ok || got.Value != 2 {
		t.Fatal("kept key wrong at ssid 2")
	}
}

// TestLatencySamplingConfigurable checks the 1-in-N update-latency
// sampling rate follows Config.LatencySampleEvery (default 8), that
// sampling is a pure function of (seed, update index), and that the
// update counter stays exact regardless of the rate.
func TestLatencySamplingConfigurable(t *testing.T) {
	sampled := func(every int, seed int64, updates int) (int64, int64) {
		store := newTestStore()
		b := NewBackend("op", 0, store.View(0), Config{
			Live: true, LatencySampleEvery: every, LatencySampleSeed: seed,
		})
		count := metrics.NewRegistry().Counter("s", "s", "updates")
		hist := metrics.NewRegistry().Histogram("s", "s", "lat")
		b.SetInstruments(count, hist)
		for i := 0; i < updates; i++ {
			b.Update(partition.Key(fmt.Sprintf("k%d", i)), i)
		}
		return count.Value(), int64(hist.Count())
	}

	if n, h := sampled(0, 0, 800); n != 800 || h != 100 {
		t.Fatalf("default rate: count=%d hist=%d, want 800 and 1-in-8 = 100", n, h)
	}
	if n, h := sampled(4, 0, 800); n != 800 || h != 200 {
		t.Fatalf("every=4: count=%d hist=%d, want 800 and 200", n, h)
	}
	if n, h := sampled(1, 0, 800); n != 800 || h != 800 {
		t.Fatalf("every=1: count=%d hist=%d, want 800 and 800", n, h)
	}
	// Determinism: the same seed samples the same number of updates on
	// repeat runs; a different seed shifts the phase but not the rate.
	_, a := sampled(8, 42, 801)
	_, b := sampled(8, 42, 801)
	if a != b {
		t.Fatalf("same seed sampled differently: %d vs %d", a, b)
	}
}

// TestBlobGobMigrationRestore proves snapshots persisted before the wire
// codec existed still restore: a blob hand-encoded in the legacy gob
// blobState format (no magic prefix) round-trips through Restore, and
// the next checkpoint re-encodes it in the wire format.
func TestBlobGobMigrationRestore(t *testing.T) {
	store := newTestStore()
	cfg := Config{JetBlob: true}
	st := blobState{
		Keys:   []partition.Key{1, "user-7"},
		Values: []any{avgState{Count: 2, Total: 10}, avgState{Count: 5, Total: 50}},
	}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(st); err != nil {
		t.Fatal(err)
	}
	store.View(0).Put(blobMapName("op"), blobKey(0, 7), legacy.Bytes())

	b := NewBackend("op", 0, store.View(0), cfg)
	if err := b.Restore(7, ownsAll); err != nil {
		t.Fatalf("restoring legacy gob blob: %v", err)
	}
	if got, ok := b.Get(1); !ok || got.(avgState).Total != 10 {
		t.Fatalf("key 1 = %v, %v after legacy restore", got, ok)
	}
	if got, ok := b.Get("user-7"); !ok || got.(avgState).Count != 5 {
		t.Fatalf("key user-7 = %v, %v after legacy restore", got, ok)
	}

	// The next checkpoint of the migrated state is wire-encoded...
	if _, err := b.SnapshotPrepare(8); err != nil {
		t.Fatal(err)
	}
	raw, ok := store.View(0).Get(blobMapName("op"), blobKey(0, 8))
	if !ok || !bytes.HasPrefix(raw.([]byte), blobMagic) {
		t.Fatal("re-snapshot of migrated state is not wire-encoded")
	}
	// ...and restores identically.
	b2 := NewBackend("op", 0, store.View(0), cfg)
	if err := b2.Restore(8, ownsAll); err != nil {
		t.Fatal(err)
	}
	if got, ok := b2.Get("user-7"); !ok || got.(avgState).Total != 50 {
		t.Fatalf("key user-7 = %v, %v after wire restore", got, ok)
	}
	if b2.Size() != 2 {
		t.Fatalf("Size = %d after wire restore, want 2", b2.Size())
	}
}

// TestBlobKeyAllocs guards the append-based blobKey: one allocation (the
// final string conversion), not fmt.Sprintf's boxing and formatting.
func TestBlobKeyAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		_ = blobKey(3, 1234567890123)
	})
	if allocs > 1 {
		t.Fatalf("blobKey allocates %v times per call, want <= 1", allocs)
	}
}

// TestWriteVersionsHopCount pins the checkpoint wire cost via the
// transport's message counter: the legacy Get+Put loop pays two messages
// per remote key, the batched apply one message per remote partition
// group — the regression test for the writeVersions double hop.
func TestWriteVersionsHopCount(t *testing.T) {
	const parts, nodes, keys = 16, 4, 64
	run := func(unbatched bool) (msgs uint64, remoteKeys, remoteParts int) {
		p := partition.New(parts)
		a := partition.Assign(parts, nodes)
		tr := transport.NewSim(transport.SimConfig{})
		store := kv.NewStore(p, a, tr)
		b := NewBackend("op", 0, store.View(0), Config{Snapshots: true, Unbatched: unbatched})
		seen := make(map[int]bool)
		for k := 0; k < keys; k++ {
			b.Update(k, k)
			if pt := p.Of(k); a.Owner(pt) != 0 {
				remoteKeys++
				if !seen[pt] {
					seen[pt] = true
					remoteParts++
				}
			}
		}
		before := tr.Stats().Messages
		if _, err := b.SnapshotPrepare(1); err != nil {
			t.Fatal(err)
		}
		return tr.Stats().Messages - before, remoteKeys, remoteParts
	}
	slow, remoteKeys, _ := run(true)
	fast, _, remoteParts := run(false)
	if want := uint64(2 * remoteKeys); slow != want {
		t.Fatalf("unbatched checkpoint sent %d messages, want %d (Get+Put per remote key)", slow, want)
	}
	if want := uint64(remoteParts); fast != want {
		t.Fatalf("batched checkpoint sent %d messages, want %d (one per remote partition group)", fast, want)
	}
	if fast*4 > slow {
		t.Fatalf("batched checkpoint not >=4x cheaper: %d vs %d messages", fast, slow)
	}
}
