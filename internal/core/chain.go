// Package core implements the paper's primary contribution: representing
// the live and snapshot state of every stateful stream operator as
// first-class, queryable key-value structures (Tables I and II of the
// paper), with full and incremental snapshot modes, version retention and
// pruning, and the catalog that SQL and direct-object queries resolve
// against.
//
// Layout in the KV store, per stateful operator named <op>:
//
//	<op>           live state:     key -> state object
//	snapshot_<op>  snapshot state: key -> *Chain (version chain of the
//	               state object, one version per snapshot id that touched
//	               the key; all versions of a key stay in the key's
//	               partition, preserving co-location)
//
// In the Jet-baseline mode ("blob"), snapshots are written the way Jet
// writes them without S-QUERY: one opaque serialized blob per operator
// instance, unqueryable — the delta between the two modes is exactly the
// overhead the paper's Figures 8–10 measure.
package core

import (
	"sort"
)

// Versioned is one version of a key's state: the snapshot id that produced
// it and the state object as of that snapshot. A Tombstone version records
// that the key was deleted as of that snapshot.
type Versioned struct {
	SSID      int64
	Value     any
	Tombstone bool
}

// Chain is the immutable version chain stored as the value of each key in
// a snapshot_<op> map, ascending by snapshot id. Immutability is what
// makes snapshot queries safe against concurrent checkpoints: a query that
// obtained a chain pointer sees a frozen history while the next checkpoint
// replaces the map entry with an extended copy.
type Chain struct {
	items []Versioned
}

// NewChain builds a chain from versions (they will be sorted by SSID).
// Duplicate SSIDs are a programming error; the later one wins.
func NewChain(items ...Versioned) *Chain {
	c := &Chain{items: append([]Versioned(nil), items...)}
	sort.SliceStable(c.items, func(i, j int) bool { return c.items[i].SSID < c.items[j].SSID })
	return c
}

// Len returns the number of versions in the chain.
func (c *Chain) Len() int {
	if c == nil {
		return 0
	}
	return len(c.items)
}

// Versions returns a copy of the chain's versions, ascending by SSID.
func (c *Chain) Versions() []Versioned {
	if c == nil {
		return nil
	}
	return append([]Versioned(nil), c.items...)
}

// With returns a new chain extended with the given version. Appending an
// SSID lower than the newest existing version re-sorts; the normal path
// (monotonically increasing snapshot ids) is a plain append.
func (c *Chain) With(v Versioned) *Chain {
	if c == nil || len(c.items) == 0 {
		return &Chain{items: []Versioned{v}}
	}
	last := c.items[len(c.items)-1]
	if v.SSID == last.SSID {
		// Same checkpoint writing the key twice: replace.
		items := make([]Versioned, len(c.items))
		copy(items, c.items)
		items[len(items)-1] = v
		return &Chain{items: items}
	}
	items := make([]Versioned, len(c.items), len(c.items)+1)
	copy(items, c.items)
	items = append(items, v)
	if v.SSID < last.SSID {
		sort.SliceStable(items, func(i, j int) bool { return items[i].SSID < items[j].SSID })
	}
	return &Chain{items: items}
}

// At resolves the key's state as of snapshot target: the version with the
// largest SSID ≤ target. ok is false if the key did not exist at target
// (no version yet, or the governing version is a tombstone). This walk
// backwards over deltas is the paper's differential query process for
// incremental snapshots (§VI.A).
func (c *Chain) At(target int64) (v Versioned, ok bool) {
	if c == nil || len(c.items) == 0 {
		return Versioned{}, false
	}
	// Binary search for the first item with SSID > target.
	i := sort.Search(len(c.items), func(i int) bool { return c.items[i].SSID > target })
	if i == 0 {
		return Versioned{}, false
	}
	got := c.items[i-1]
	if got.Tombstone {
		return Versioned{}, false
	}
	return got, true
}

// Governing returns the version that governs the key's state as of
// snapshot target — the version with the largest SSID ≤ target —
// *including* tombstones, which At folds into "not found". The delta
// persister needs the distinction: a key deleted since the last durable
// snapshot must emit a tombstone delta, not silently vanish.
func (c *Chain) Governing(target int64) (v Versioned, ok bool) {
	if c == nil || len(c.items) == 0 {
		return Versioned{}, false
	}
	i := sort.Search(len(c.items), func(i int) bool { return c.items[i].SSID > target })
	if i == 0 {
		return Versioned{}, false
	}
	return c.items[i-1], true
}

// Newest returns the most recent version in the chain.
func (c *Chain) Newest() (Versioned, bool) {
	if c == nil || len(c.items) == 0 {
		return Versioned{}, false
	}
	return c.items[len(c.items)-1], true
}

// Prune returns a chain with obsolete versions removed, given the oldest
// retained snapshot id: all versions with SSID ≥ oldest are kept, plus the
// newest version with SSID < oldest, which becomes the base that queries
// at ssid == oldest fall back to for keys unchanged since. A tombstone
// base is dropped (absence already means deleted). Prune returns nil when
// nothing remains — the caller deletes the map entry. This is the
// compaction the paper applies to incremental snapshots to bound the
// differential-read overhead.
func (c *Chain) Prune(oldest int64) *Chain {
	if c == nil || len(c.items) == 0 {
		return nil
	}
	// First index with SSID >= oldest.
	i := sort.Search(len(c.items), func(i int) bool { return c.items[i].SSID >= oldest })
	start := i
	if i > 0 {
		// Keep the newest pre-oldest version as base unless tombstone.
		if !c.items[i-1].Tombstone {
			start = i - 1
		}
	}
	if start == 0 {
		return c
	}
	if start >= len(c.items) {
		return nil
	}
	items := make([]Versioned, len(c.items)-start)
	copy(items, c.items[start:])
	return &Chain{items: items}
}
