package core

import (
	"fmt"
	"testing"

	"squery/internal/kv"
	"squery/internal/snapshot"
)

// scanWithPath collects an indexed (or full) partition-sweep of the table.
func scanWithPath(t *TableRef, ssid int64, path *AccessPath, filter func(TableRow) bool) map[string]int64 {
	out := map[string]int64{}
	for p := 0; p < t.Partitions(); p++ {
		t.ScanPartitionSpec(p, ScanSpec{SSID: ssid, Filter: filter, Path: path}, func(r TableRow) bool {
			out[fmt.Sprint(r.Key)] = r.SSID
			return true
		})
	}
	return out
}

func eqZone(want string) func(TableRow) bool {
	return func(r TableRow) bool {
		f, ok := r.Field("zone")
		if !ok {
			return false
		}
		s, ok := f.(string)
		return ok && s == want
	}
}

// TestLiveIndexPathParity: an index-served live scan returns exactly what
// the full scan returns for the same filter.
func TestLiveIndexPathParity(t *testing.T) {
	store := newTestStore()
	cat := NewCatalog(store)
	reg := snapshot.NewRegistry(4)
	if err := cat.RegisterJob(reg, "orders"); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateIndex("orders", "zone", IndexHash); err != nil {
		t.Fatal(err)
	}
	b := NewBackend("orders", 0, store.View(0), Config{Live: true, Unbatched: true})
	for i := 0; i < 300; i++ {
		b.Update(i, map[string]any{"zone": fmt.Sprintf("z%d", i%3), "amount": i})
	}
	ref, err := cat.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if !ref.HasIndex("zone", false) {
		t.Fatal("HasIndex(zone) = false after CreateIndex")
	}
	if ref.HasIndex("zone", true) {
		t.Fatal("hash index claimed to serve ranges")
	}
	path := &AccessPath{Kind: IndexEq, Column: "zone", Eq: "z1"}
	idx := scanWithPath(ref, 0, path, eqZone("z1"))
	full := scanWithPath(ref, 0, nil, eqZone("z1"))
	if len(idx) != 100 || len(idx) != len(full) {
		t.Fatalf("indexed scan %d rows, full scan %d, want 100", len(idx), len(full))
	}
	if n, ok := ref.EstimatePath(path); !ok || n != 100 {
		t.Fatalf("EstimatePath = %d, %v; want 100, true", n, ok)
	}
	if n, ok := ref.EstimatePath(nil); !ok || n != 300 {
		t.Fatalf("EstimatePath(full) = %d, %v; want 300, true", n, ok)
	}
}

// TestSnapshotIndexPathParity: the chain-union index must answer at every
// queryable SSID — older pins included — with exactly the rows the full
// snapshot scan resolves, including keys whose match exists only at an
// older version and keys tombstoned at the target.
func TestSnapshotIndexPathParity(t *testing.T) {
	store := newTestStore()
	cat := NewCatalog(store)
	reg := snapshot.NewRegistry(8)
	if err := cat.RegisterJob(reg, "op"); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateIndex("snapshot_op", "zone", IndexHash); err != nil {
		t.Fatal(err)
	}
	b := NewBackend("op", 0, store.View(0), Config{Snapshots: true})
	for i := 0; i < 60; i++ {
		b.Update(i, map[string]any{"zone": "old"})
	}
	commit := func() int64 {
		ssid, err := reg.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.SnapshotPrepare(ssid); err != nil {
			t.Fatal(err)
		}
		reg.Commit(ssid)
		return ssid
	}
	s1 := commit()
	// Move half the keys to a new zone, delete a few, snapshot again.
	for i := 0; i < 30; i++ {
		b.Update(i, map[string]any{"zone": "new"})
	}
	for i := 55; i < 60; i++ {
		b.Delete(i)
	}
	s2 := commit()

	ref, err := cat.Table("snapshot_op")
	if err != nil {
		t.Fatal(err)
	}
	pathOld := &AccessPath{Kind: IndexEq, Column: "zone", Eq: "old"}
	for _, ssid := range []int64{s1, s2} {
		idx := scanWithPath(ref, ssid, pathOld, eqZone("old"))
		full := scanWithPath(ref, ssid, nil, eqZone("old"))
		if len(idx) != len(full) {
			t.Fatalf("ssid %d: indexed %d rows, full %d", ssid, len(idx), len(full))
		}
	}
	// At s1 every key is "old"; at s2 only the untouched survivors are.
	if got := len(scanWithPath(ref, s1, pathOld, eqZone("old"))); got != 60 {
		t.Fatalf("ssid %d zone=old: %d rows, want 60", s1, got)
	}
	if got := len(scanWithPath(ref, s2, pathOld, eqZone("old"))); got != 25 {
		t.Fatalf("ssid %d zone=old: %d rows, want 25 (30 moved, 5 deleted)", s2, got)
	}
	// "new" exists only at s2.
	pathNew := &AccessPath{Kind: IndexEq, Column: "zone", Eq: "new"}
	if got := len(scanWithPath(ref, s1, pathNew, eqZone("new"))); got != 0 {
		t.Fatalf("ssid %d zone=new: %d rows, want 0", s1, got)
	}
	if got := len(scanWithPath(ref, s2, pathNew, eqZone("new"))); got != 30 {
		t.Fatalf("ssid %d zone=new: %d rows, want 30", s2, got)
	}
}

// TestChainValueIndexer pins the extractor contract directly.
func TestChainValueIndexer(t *testing.T) {
	ch := NewChain(
		Versioned{SSID: 1, Value: map[string]any{"zone": "a"}},
		Versioned{SSID: 2, Value: map[string]any{"zone": "b"}},
		Versioned{SSID: 3, Tombstone: true},
	)
	vals, complete := ChainValueIndexer(ch, "zone")
	if !complete || len(vals) != 2 {
		t.Fatalf("ChainValueIndexer = %v, %v; want [a b], true", vals, complete)
	}
	// A version missing the column makes extraction incomplete.
	ch2 := NewChain(
		Versioned{SSID: 1, Value: map[string]any{"zone": "a"}},
		Versioned{SSID: 2, Value: map[string]any{"other": 1}},
	)
	if _, complete := ChainValueIndexer(ch2, "zone"); complete {
		t.Fatal("missing column did not mark extraction incomplete")
	}
	// Non-chain values (should never happen in a snapshot map) are odd.
	if _, complete := ChainValueIndexer(42, "zone"); complete {
		t.Fatal("non-chain value claimed complete extraction")
	}
}

// TestAccessPathMisc covers rendering and guard rails.
func TestAccessPathMisc(t *testing.T) {
	if got := (&AccessPath{Kind: IndexEq, Column: "zone", Eq: "z1"}).String(); got != "index eq(zone = z1)" {
		t.Fatalf("String() = %q", got)
	}
	r := &AccessPath{Kind: IndexRange, Column: "lat", Lo: 10, Hi: 20}
	if got := r.String(); got != "index range(lat >= 10 and lat <= 20)" {
		t.Fatalf("String() = %q", got)
	}
	var nilPath *AccessPath
	if got := nilPath.String(); got != "full scan" {
		t.Fatalf("nil path String() = %q", got)
	}
	cat := NewCatalog(newTestStore())
	cat.RegisterVirtual("sys.things", func() []TableRow { return nil })
	if err := cat.CreateIndex("sys.things", "x", IndexHash); err == nil {
		t.Fatal("indexed a virtual table")
	}
	if err := cat.CreateIndex("op", ColPartitionKey, IndexHash); err == nil {
		t.Fatal("indexed a pseudo-column")
	}
	// kv-level guard: a scan with a path nobody indexed falls back.
	store := newTestStore()
	cat2 := NewCatalog(store)
	if err := cat2.RegisterJob(snapshot.NewRegistry(4), "op"); err != nil {
		t.Fatal(err)
	}
	b := NewBackend("op", 0, store.View(0), Config{Live: true, Unbatched: true})
	b.Update(1, map[string]any{"zone": "z"})
	ref, _ := cat2.Table("op")
	rows := scanWithPath(ref, 0, &AccessPath{Kind: IndexEq, Column: "zone", Eq: "z"}, eqZone("z"))
	if len(rows) != 1 {
		t.Fatalf("unserved path did not fall back to full scan: %d rows", len(rows))
	}
	_ = kv.IndexHash // keep the kv import honest if constants change
}
