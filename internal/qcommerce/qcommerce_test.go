package qcommerce

import (
	"testing"
	"testing/quick"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/sql"
)

func TestEventGeneratorDeterministicKeys(t *testing.T) {
	cfg := Config{Orders: 100, Riders: 10, SourceParallelism: 2}
	f := func(rawSeq uint16, rawInst uint8) bool {
		seq := int64(rawSeq)
		inst := int(rawInst) % 2
		e1 := EventAt(cfg, inst, seq)
		e2 := EventAt(cfg, inst, seq)
		// Keys and payload kind must be deterministic (timestamps are
		// generated at emit time and may differ).
		if e1.OrderKey != e2.OrderKey || e1.RiderKey != e2.RiderKey {
			return false
		}
		if (e1.Info != nil) != (e2.Info != nil) || (e1.Status != nil) != (e2.Status != nil) {
			return false
		}
		// Exactly one payload set, and the matching key with it.
		n := 0
		if e1.Info != nil {
			n++
		}
		if e1.Status != nil {
			n++
		}
		if e1.Rider != nil {
			n++
		}
		if n != 1 {
			return false
		}
		if e1.Rider != nil {
			return e1.RiderKey != "" && e1.OrderKey == ""
		}
		return e1.OrderKey != "" && e1.RiderKey == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorCoversStatesAndZones(t *testing.T) {
	cfg := Config{Orders: 20, Riders: 5, SourceParallelism: 1}.withDefaults()
	states := map[string]bool{}
	zones := map[string]bool{}
	cats := map[string]bool{}
	for seq := int64(0); seq < 20*2*int64(len(OrderStates))*2; seq++ {
		ev := EventAt(cfg, 0, seq)
		if ev.Status != nil {
			states[ev.Status.OrderState] = true
		}
		if ev.Info != nil {
			zones[ev.Info.DeliveryZone] = true
			cats[ev.Info.VendorCategory] = true
		}
	}
	if len(states) != len(OrderStates) {
		t.Errorf("states covered = %d/%d: %v", len(states), len(OrderStates), states)
	}
	if len(zones) < 3 || len(cats) < 3 {
		t.Errorf("zones=%d cats=%d, want coverage", len(zones), len(cats))
	}
}

func TestQCommerceJobAndPaperQueries(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 3, Partitions: 27})
	cfg := Config{
		Orders:              60,
		Riders:              12,
		SourceParallelism:   2,
		OperatorParallelism: 2,
		Events:              4000,
	}
	hist := metrics.NewHistogram()
	dag := DAG(cfg, dataflow.LatencySinkVertex("sink", 2, hist))
	job, err := dataflow.Run(dag, dataflow.Config{
		Cluster: clu,
		State:   core.Config{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	// Let state build, then checkpoint mid-stream.
	waitUntil(t, func() bool { return job.SourceMeter().Count() >= 2000 }, "records flowing")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	cat := core.NewCatalog(clu.Store())
	if err := cat.RegisterJob(job.Manager().Registry(), "orderinfo", "orderstate", "riderlocation"); err != nil {
		t.Fatal(err)
	}
	// State maps exist and have the expected shapes.
	view := clu.ClientView()
	infoKeys := 0
	view.Scan(core.LiveMapName("orderinfo"), func(e kv.Entry) bool {
		if _, ok := e.Value.(OrderInfo); !ok {
			t.Fatalf("orderinfo value type %T", e.Value)
		}
		infoKeys++
		return true
	})
	if infoKeys == 0 {
		t.Fatal("no orderinfo state")
	}
	stateKeys := 0
	view.Scan(core.LiveMapName("orderstate"), func(e kv.Entry) bool {
		st := e.Value.(OrderStatus)
		found := false
		for _, s := range OrderStates {
			if st.OrderState == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown order state %q", st.OrderState)
		}
		stateKeys++
		return true
	})
	if stateKeys == 0 {
		t.Fatal("no orderstate state")
	}
	riderKeys := 0
	view.Scan(core.LiveMapName("riderlocation"), func(e kv.Entry) bool {
		riderKeys++
		return true
	})
	if riderKeys == 0 {
		t.Fatal("no rider state")
	}

	// All four production queries run against the snapshot and return
	// grouped counts.
	ex := sql.NewExecutor(cat, clu.Nodes())
	for i, q := range Queries {
		res, err := ex.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
		for _, row := range res.Rows {
			if row[0].(int64) < 0 {
				t.Fatalf("query %d: negative count", i+1)
			}
			if row[1] == nil {
				t.Fatalf("query %d: nil group", i+1)
			}
		}
	}
	job.Wait()
}

func waitUntil(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestIsLateFraction(t *testing.T) {
	cfg := Config{Orders: 1000, LateFraction: 0.25}.withDefaults()
	late := 0
	for o := int64(0); o < 1000; o++ {
		if isLate(cfg, o) {
			late++
		}
	}
	if late != 250 {
		t.Errorf("late = %d/1000, want 250", late)
	}
	cfgOff := Config{Orders: 10, LateFraction: -1}
	if isLate(cfgOff, 0) {
		t.Error("LateFraction<0 should disable lateness")
	}
}

func TestQueriesAreNonEmptyAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i, q := range Queries {
		if q == "" {
			t.Fatalf("query %d empty", i+1)
		}
		if seen[q] {
			t.Fatalf("query %d duplicates another", i+1)
		}
		seen[q] = true
	}
}
