// Package qcommerce implements the Delivery Hero order-delivery workload
// of §VIII: a stream of rider-location, order-status and order-info events
// feeding three stateful operators whose state answers the paper's four
// real-time business queries (Queries 1–4). The production data is
// proprietary; this generator synthesizes events with the same schema,
// state machine and joinable shape (see DESIGN.md, substitutions).
package qcommerce

import (
	"encoding/gob"
	"fmt"
	"time"

	"squery/internal/dataflow"
)

// Order states, in lifecycle order (§VIII lists RECEIVED → PICKED_UP →
// DELIVERED "and several other states omitted for space"; the queries
// reference the intermediate ones reproduced here).
var OrderStates = []string{
	"ORDER_RECEIVED",
	"NOTIFIED",
	"ACCEPTED",
	"VENDOR_ACCEPTED",
	"PICKED_UP",
	"LEFT_PICKUP",
	"NEAR_CUSTOMER",
	"DELIVERED",
}

// Zones and vendor categories used by the generator; Queries 1, 3 and 4
// group by zone, Query 2 by category.
var (
	Zones      = []string{"centrum", "noord", "zuid", "oost", "west", "haven"}
	Categories = []string{"restaurant", "groceries", "pharmacy", "flowers", "electronics"}
)

// RiderLocation is the rider-location event and state: coordinates plus
// the latest update timestamp (two doubles and a time — the state the
// direct-object experiment of Figure 14 reads).
type RiderLocation struct {
	Lat       float64
	Lon       float64
	UpdatedAt time.Time
}

// OrderStatus is the order-status event and state: the order's current
// lifecycle state and the deadline by which it should have transitioned.
type OrderStatus struct {
	OrderState    string
	LateTimestamp time.Time
}

// OrderInfo is the one-time order-info event and state: customer and
// vendor locations, vendor category, delivery zone.
type OrderInfo struct {
	CustomerLat    float64
	CustomerLon    float64
	VendorLat      float64
	VendorLon      float64
	VendorCategory string
	DeliveryZone   string
}

func init() {
	gob.Register(RiderLocation{})
	gob.Register(OrderStatus{})
	gob.Register(OrderInfo{})
}

// Event is one generated record, exactly one of whose payload fields is
// set.
type Event struct {
	OrderKey string
	RiderKey string
	Info     *OrderInfo
	Status   *OrderStatus
	Rider    *RiderLocation
}

// Config parameterizes the generator.
type Config struct {
	// Orders is the number of unique orders (1K/10K/100K in §IX.C).
	Orders int64
	// Riders is the number of unique riders.
	Riders int64
	// Rate is the per-source-instance offered load (0 = unthrottled).
	Rate float64
	// SourceParallelism, OperatorParallelism size the job.
	SourceParallelism   int
	OperatorParallelism int
	// Events bounds the stream per source instance (0 = unbounded).
	Events int64
	// LateFraction of orders get a LateTimestamp in the past, making
	// them "late" for Query 1. Default 0.25.
	LateFraction float64
}

func (c Config) withDefaults() Config {
	if c.Orders == 0 {
		c.Orders = 10_000
	}
	if c.Riders == 0 {
		c.Riders = c.Orders / 10
		if c.Riders == 0 {
			c.Riders = 1
		}
	}
	if c.SourceParallelism == 0 {
		c.SourceParallelism = 2
	}
	if c.OperatorParallelism == 0 {
		c.OperatorParallelism = 2
	}
	if c.LateFraction == 0 {
		c.LateFraction = 0.25
	}
	return c
}

// OrderKey returns the canonical key of order i.
func OrderKey(i int64) string { return fmt.Sprintf("order-%d", i) }

// RiderKey returns the canonical key of rider i.
func RiderKey(i int64) string { return fmt.Sprintf("rider-%d", i) }

// EventAt deterministically generates the seq-th event of a source
// instance. The stream interleaves: order-info for new orders, status
// transitions walking the lifecycle, and rider location pings.
func EventAt(cfg Config, instance int, seq int64) Event {
	cfg = cfg.withDefaults()
	g := seq*int64(cfg.SourceParallelism) + int64(instance)
	switch g % 4 {
	case 0: // order info (idempotent per order)
		order := (g / 4) % cfg.Orders
		return Event{OrderKey: OrderKey(order), Info: infoFor(cfg, order)}
	case 1, 2: // status transition
		order := (g / 2) % cfg.Orders
		// Stagger lifecycles so that at any instant the population
		// spreads over all states (as a production order book does) —
		// each order starts at a phase derived from its id.
		step := (g/(2*cfg.Orders) + order) % int64(len(OrderStates))
		late := isLate(cfg, order)
		ts := time.Now().Add(30 * time.Minute)
		if late {
			ts = time.Now().Add(-30 * time.Minute)
		}
		return Event{OrderKey: OrderKey(order), Status: &OrderStatus{
			OrderState:    OrderStates[step],
			LateTimestamp: ts,
		}}
	default: // rider ping
		rider := g % cfg.Riders
		return Event{RiderKey: RiderKey(rider), Rider: &RiderLocation{
			Lat:       52.0 + float64(rider%100)/1000,
			Lon:       4.3 + float64(g%100)/1000,
			UpdatedAt: time.Now(),
		}}
	}
}

func infoFor(cfg Config, order int64) *OrderInfo {
	return &OrderInfo{
		CustomerLat:    52.0 + float64(order%97)/100,
		CustomerLon:    4.3 + float64(order%89)/100,
		VendorLat:      52.0 + float64(order%83)/100,
		VendorLon:      4.3 + float64(order%79)/100,
		VendorCategory: Categories[order%int64(len(Categories))],
		DeliveryZone:   Zones[order%int64(len(Zones))],
	}
}

func isLate(cfg Config, order int64) bool {
	if cfg.LateFraction <= 0 {
		return false
	}
	period := int64(1 / cfg.LateFraction)
	if period < 1 {
		period = 1
	}
	return order%period == 0
}

// replace is the stateful-map function for operators whose state is the
// latest event payload (all three Q-commerce operators).
func replace(field func(Event) (any, bool)) func(any, dataflow.Record) (any, []dataflow.Record) {
	return func(state any, rec dataflow.Record) (any, []dataflow.Record) {
		ev := rec.Value.(Event)
		if v, ok := field(ev); ok {
			return v, []dataflow.Record{{Key: rec.Key, Value: v, EventTime: rec.EventTime}}
		}
		return state, nil
	}
}

// DAG builds the Q-commerce job: one source fanning out to the three
// stateful operators of §VIII — riderlocation, orderstate, orderinfo —
// each followed into a shared sink. Operator names match the tables the
// paper's Queries 1–4 reference.
func DAG(cfg Config, sink *dataflow.Vertex) *dataflow.DAG {
	cfg = cfg.withDefaults()
	src := dataflow.GeneratorSource("orders", cfg.SourceParallelism, cfg.Rate,
		func(instance int, seq int64) (dataflow.Record, bool) {
			if cfg.Events > 0 && seq >= cfg.Events {
				return dataflow.Record{}, false
			}
			ev := EventAt(cfg, instance, seq)
			key := ev.OrderKey
			if key == "" {
				key = ev.RiderKey
			}
			return dataflow.Record{Key: key, Value: ev}, true
		})
	// Emit event-time watermarks so sys.watermarks tracks the workload's
	// progress (records carry source-stamped event times); a frozen
	// watermark with growing lag is the health plane's stall signal.
	src.Watermarks = &dataflow.WatermarkPolicy{Every: 64}
	return dataflow.NewDAG().
		AddVertex(src).
		AddVertex(dataflow.StatefulMapVertex("orderinfo", cfg.OperatorParallelism,
			replace(func(e Event) (any, bool) {
				if e.Info != nil {
					return *e.Info, true
				}
				return nil, false
			}))).
		AddVertex(dataflow.StatefulMapVertex("orderstate", cfg.OperatorParallelism,
			replace(func(e Event) (any, bool) {
				if e.Status != nil {
					return *e.Status, true
				}
				return nil, false
			}))).
		AddVertex(dataflow.StatefulMapVertex("riderlocation", cfg.OperatorParallelism,
			replace(func(e Event) (any, bool) {
				if e.Rider != nil {
					return *e.Rider, true
				}
				return nil, false
			}))).
		AddVertex(sink).
		Connect("orders", "orderinfo", dataflow.EdgePartitioned).
		Connect("orders", "orderstate", dataflow.EdgePartitioned).
		Connect("orders", "riderlocation", dataflow.EdgePartitioned).
		Connect("orderinfo", sink.Name, dataflow.EdgePartitioned).
		Connect("orderstate", sink.Name, dataflow.EdgePartitioned).
		Connect("riderlocation", sink.Name, dataflow.EdgePartitioned)
}

// The paper's four production queries, verbatim (§VIII, Queries 1-4).
const (
	// Query1 — how many orders are late (in preparation by the vendor
	// for too long) per area?
	Query1 = `SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP) GROUP BY deliveryZone;`
	// Query2 — how many deliveries are ready for pickup per shop
	// category?
	Query2 = `SELECT COUNT(*), vendorCategory FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='NOTIFIED' OR orderState='ACCEPTED') GROUP BY vendorCategory;`
	// Query3 — how many deliveries are being prepared per area?
	Query3 = `SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='VENDOR_ACCEPTED') GROUP BY deliveryZone;`
	// Query4 — how many deliveries are in transit per area?
	Query4 = `SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE orderState='PICKED_UP' OR orderState='LEFT_PICKUP' OR orderState='NEAR_CUSTOMER' GROUP BY deliveryZone;`
)

// Queries lists the four production queries in order.
var Queries = []string{Query1, Query2, Query3, Query4}
