// Package nexmark implements the NEXMark workload the paper's overhead and
// scalability experiments run on (§IX.A-B, Figures 8, 9 and 15): an
// auction/bid stream feeding query 6 — the average selling price of each
// seller's last 10 closed auctions. The job has two stateful operators:
//
//	auctionwinner  keyed by auction id: tracks the highest bid until the
//	               auction closes, then emits (seller, price)
//	selleravg      keyed by seller id: ring buffer of the seller's last 10
//	               selling prices and their running average
//
// Both operators' state is live- and snapshot-queryable; the scalability
// experiment's concurrent SQL workload selects sellers' latest prices from
// selleravg.
package nexmark

import (
	"encoding/gob"
	"strconv"

	"squery/internal/dataflow"
	"squery/internal/metrics"
)

// Event kinds on the auction stream.
const (
	// EventAuctionOpen opens an auction for a seller.
	EventAuctionOpen = iota
	// EventBid places a bid on an auction.
	EventBid
	// EventAuctionClose closes an auction; the highest bid wins.
	EventAuctionClose
)

// Event is one record of the generated auction/bid stream.
type Event struct {
	Kind    int
	Auction int64
	Seller  int64
	Price   int64 // bid amount; meaningful for EventBid
}

// AuctionState is the auctionwinner operator's per-auction state.
type AuctionState struct {
	Seller int64
	MaxBid int64
	Bids   int64
	Closed bool
}

// Window is the number of closed auctions query 6 averages over.
const Window = 10

// SellerState is the selleravg operator's per-seller state: the last
// Window selling prices and their running average — the state the paper's
// queries select.
type SellerState struct {
	Prices  []int64 // most recent last
	Sold    int64
	Average float64
}

func init() {
	gob.Register(Event{})
	gob.Register(AuctionState{})
	gob.Register(SellerState{})
}

// Config parameterizes the workload.
type Config struct {
	// Sellers is the number of unique sellers (the paper uses 10K).
	Sellers int64
	// BidsPerAuction is the number of bids before each auction closes.
	BidsPerAuction int64
	// Rate is the per-source-instance offered load in events/s
	// (0 = unthrottled).
	Rate float64
	// SourceParallelism, OperatorParallelism size the job's vertices.
	SourceParallelism   int
	OperatorParallelism int
	// Events bounds the stream per source instance (0 = unbounded).
	Events int64
}

func (c Config) withDefaults() Config {
	if c.Sellers == 0 {
		c.Sellers = 10_000
	}
	if c.BidsPerAuction == 0 {
		c.BidsPerAuction = 3
	}
	if c.SourceParallelism == 0 {
		c.SourceParallelism = 2
	}
	if c.OperatorParallelism == 0 {
		c.OperatorParallelism = 2
	}
	return c
}

// eventAt deterministically generates the seq-th event of a source
// instance. Each auction occupies a block of BidsPerAuction+2 events:
// open, bids, close. Determinism is what makes recovery exactly-once.
func eventAt(cfg Config, instance int, seq int64) Event {
	block := cfg.BidsPerAuction + 2
	auction := (seq/block)*int64(cfg.SourceParallelism) + int64(instance)
	seller := auction % cfg.Sellers
	pos := seq % block
	switch pos {
	case 0:
		return Event{Kind: EventAuctionOpen, Auction: auction, Seller: seller}
	case block - 1:
		return Event{Kind: EventAuctionClose, Auction: auction, Seller: seller}
	default:
		// Bid prices grow with position so the winner is the last bid;
		// a multiplicative hash spreads absolute prices across auctions.
		price := 100 + (auction*2654435761)%900 + pos*10
		return Event{Kind: EventBid, Auction: auction, Seller: seller, Price: price}
	}
}

// WinningPrice returns the price the generator's auction will close at —
// tests use it to verify end-to-end correctness.
func WinningPrice(cfg Config, auction int64) int64 {
	return 100 + (auction*2654435761)%900 + cfg.BidsPerAuction*10
}

// auctionWinnerFn folds auction events into AuctionState and emits the
// (seller, winning price) pair at close.
func auctionWinnerFn(state any, rec dataflow.Record) (any, []dataflow.Record) {
	ev := rec.Value.(Event)
	st := AuctionState{Seller: ev.Seller}
	if state != nil {
		st = state.(AuctionState)
	}
	switch ev.Kind {
	case EventAuctionOpen:
		st.Seller = ev.Seller
	case EventBid:
		st.Bids++
		if ev.Price > st.MaxBid {
			st.MaxBid = ev.Price
		}
	case EventAuctionClose:
		// The auction is finished: emit the winning price and drop the
		// auction's state, keeping the operator's footprint bounded by
		// the number of *open* auctions (the paper's job accumulates
		// state for the 10K sellers, not for every auction ever run).
		if st.MaxBid > 0 {
			return nil, []dataflow.Record{{
				Key:       st.Seller,
				Value:     st.MaxBid,
				EventTime: rec.EventTime,
			}}
		}
		return nil, nil
	}
	return st, nil
}

// sellerAvgFn maintains the last-Window selling prices per seller.
func sellerAvgFn(state any, rec dataflow.Record) (any, []dataflow.Record) {
	price := rec.Value.(int64)
	st := SellerState{}
	if state != nil {
		st = state.(SellerState)
	}
	st.Prices = append(append([]int64(nil), st.Prices...), price)
	if len(st.Prices) > Window {
		st.Prices = st.Prices[len(st.Prices)-Window:]
	}
	st.Sold++
	var sum int64
	for _, p := range st.Prices {
		sum += p
	}
	st.Average = float64(sum) / float64(len(st.Prices))
	return st, []dataflow.Record{{Key: rec.Key, Value: st.Average, EventTime: rec.EventTime}}
}

// Query6DAG builds the NEXMark query-6 job: source → auctionwinner →
// selleravg → latency sink. The sink records source→sink latency into
// hist, reproducing the measurement of Figures 8 and 9.
func Query6DAG(cfg Config, hist *metrics.Histogram) *dataflow.DAG {
	cfg = cfg.withDefaults()
	src := dataflow.GeneratorSource("auctions", cfg.SourceParallelism, cfg.Rate,
		func(instance int, seq int64) (dataflow.Record, bool) {
			if cfg.Events > 0 && seq >= cfg.Events {
				return dataflow.Record{}, false
			}
			ev := eventAt(cfg, instance, seq)
			return dataflow.Record{Key: ev.Auction, Value: ev}, true
		})
	return dataflow.NewDAG().
		AddVertex(src).
		AddVertex(dataflow.StatefulMapVertex("auctionwinner", cfg.OperatorParallelism, auctionWinnerFn)).
		AddVertex(dataflow.StatefulMapVertex("selleravg", cfg.OperatorParallelism, sellerAvgFn)).
		AddVertex(dataflow.LatencySinkVertex("sink", cfg.OperatorParallelism, hist)).
		Connect("auctions", "auctionwinner", dataflow.EdgePartitioned).
		Connect("auctionwinner", "selleravg", dataflow.EdgePartitioned).
		Connect("selleravg", "sink", dataflow.EdgePartitioned)
}

// SellerPricesQuery is the SQL query the scalability experiment issues 10
// times per second: the latest prices of one seller (§IX.E).
func SellerPricesQuery(seller int64) string {
	return `SELECT prices, average FROM "snapshot_selleravg" WHERE partitionKey = ` + strconv.FormatInt(seller, 10)
}

// SellerJoinQuery joins the two operators' snapshot state — the "JOIN
// queries on the state of the job's operators" of §IX.E. It relates each
// seller's average to the auctions they ran.
func SellerJoinQuery() string {
	return `SELECT COUNT(*), AVG(average) FROM "snapshot_selleravg" JOIN "snapshot_auctionwinner" ON snapshot_selleravg.partitionKey = snapshot_auctionwinner.seller`
}
