package nexmark

import (
	"testing"
	"testing/quick"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/kv"
	"squery/internal/metrics"
)

func TestEventGeneratorStructure(t *testing.T) {
	cfg := Config{Sellers: 100, BidsPerAuction: 3, SourceParallelism: 2}.withDefaults()
	block := cfg.BidsPerAuction + 2
	// Every auction block is open, bids..., close, all for one auction.
	for inst := 0; inst < 2; inst++ {
		for a := int64(0); a < 5; a++ {
			base := a * block
			open := eventAt(cfg, inst, base)
			if open.Kind != EventAuctionOpen {
				t.Fatalf("block start kind = %d", open.Kind)
			}
			for i := int64(1); i <= cfg.BidsPerAuction; i++ {
				ev := eventAt(cfg, inst, base+i)
				if ev.Kind != EventBid || ev.Auction != open.Auction {
					t.Fatalf("bid event = %+v", ev)
				}
			}
			cl := eventAt(cfg, inst, base+block-1)
			if cl.Kind != EventAuctionClose || cl.Auction != open.Auction {
				t.Fatalf("close event = %+v", cl)
			}
			if open.Seller != open.Auction%cfg.Sellers {
				t.Fatalf("seller = %d", open.Seller)
			}
		}
	}
}

// Property: auction ids are unique across instances and the generator is
// deterministic.
func TestEventGeneratorDeterministicAndDisjoint(t *testing.T) {
	cfg := Config{Sellers: 50, BidsPerAuction: 2, SourceParallelism: 3}.withDefaults()
	f := func(rawSeq uint16, rawInst uint8) bool {
		seq := int64(rawSeq)
		inst := int(rawInst) % 3
		e1 := eventAt(cfg, inst, seq)
		e2 := eventAt(cfg, inst, seq)
		if e1 != e2 {
			return false
		}
		// Auction id mod SourceParallelism identifies the instance.
		return e1.Auction%3 == int64(inst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuery6EndToEnd(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 3, Partitions: 27})
	hist := metrics.NewHistogram()
	cfg := Config{
		Sellers:             10,
		BidsPerAuction:      3,
		SourceParallelism:   2,
		OperatorParallelism: 2,
		Events:              200, // 40 auctions per instance
	}
	dag := Query6DAG(cfg, hist)
	job, err := dataflow.Run(dag, dataflow.Config{
		Cluster: clu,
		State:   core.Config{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()

	// 200 events / block 5 = 40 auctions per instance, 80 total.
	if hist.Count() != 80 {
		t.Fatalf("sink saw %d averages, want 80 (one per closed auction)", hist.Count())
	}

	// Closed auctions drop their state: with every auction closed, the
	// auctionwinner operator's footprint is empty.
	view := clu.ClientView()
	leftovers := 0
	view.Scan(core.LiveMapName("auctionwinner"), func(e kv.Entry) bool {
		leftovers++
		return true
	})
	if leftovers != 0 {
		t.Fatalf("auctionwinner still holds %d closed auctions", leftovers)
	}

	// Seller state: 80 auctions over 10 sellers = 8 sales each; the ring
	// keeps at most Window prices, and the ring contents match the
	// generator's winning prices for that seller's auctions.
	sellers := 0
	view.Scan(core.LiveMapName("selleravg"), func(e kv.Entry) bool {
		st := e.Value.(SellerState)
		if st.Sold != 8 {
			t.Errorf("seller %v sold = %d, want 8", e.Key, st.Sold)
		}
		if len(st.Prices) > Window {
			t.Errorf("seller %v holds %d prices", e.Key, len(st.Prices))
		}
		want := map[int64]bool{}
		for a := int64(0); a < 80; a++ {
			if a%cfg.Sellers == e.Key.(int64) {
				want[WinningPrice(cfg, a)] = true
			}
		}
		for _, p := range st.Prices {
			if !want[p] {
				t.Errorf("seller %v has unexpected price %d", e.Key, p)
			}
		}
		if st.Average <= 0 {
			t.Errorf("seller %v average = %v", e.Key, st.Average)
		}
		sellers++
		return true
	})
	if sellers != 10 {
		t.Fatalf("sellers in state = %d, want 10", sellers)
	}
}

func TestSellerWindowKeepsLastTen(t *testing.T) {
	var st any
	for p := int64(1); p <= 25; p++ {
		st, _ = sellerAvgFn(st, dataflow.Record{Key: int64(1), Value: p})
	}
	got := st.(SellerState)
	if got.Sold != 25 || len(got.Prices) != Window {
		t.Fatalf("sold=%d window=%d", got.Sold, len(got.Prices))
	}
	if got.Prices[0] != 16 || got.Prices[Window-1] != 25 {
		t.Fatalf("window = %v", got.Prices)
	}
	// Average of 16..25 = 20.5.
	if got.Average != 20.5 {
		t.Fatalf("average = %v", got.Average)
	}
}

func TestQueryTemplates(t *testing.T) {
	if q := SellerPricesQuery(42); q == "" || q[len(q)-2:] != "42" {
		t.Errorf("SellerPricesQuery = %q", q)
	}
	if SellerJoinQuery() == "" {
		t.Error("SellerJoinQuery empty")
	}
}
