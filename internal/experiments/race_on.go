//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector. Instrumentation multiplies memory-access costs unevenly
// across code paths, so throughput *comparisons* between systems are
// not meaningful under race — tests keyed to a winner downgrade to
// shape-only checks.
const raceEnabled = true
