package experiments

import (
	"fmt"
	"strings"
	"time"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/sql"
)

// PushdownRow is one measured configuration of the pushdown experiment:
// a query executed with the streaming pipeline's scan pushdown on or
// off, with mean latency and the per-execution row movement counters.
type PushdownRow struct {
	Query       string
	Mode        string // "pushdown" or "ship-all"
	Mean        time.Duration
	RowsShipped int64 // rows that crossed the client hop, per execution
	RowsScanned int64 // rows examined on the owning nodes, per execution
	Parts       int64 // partitions scanned, per execution
}

// Pushdown measures what the streaming physical pipeline saves over the
// ship-everything execution model: a selective WHERE (~2% match) and a
// LIMIT 10 run with predicates/projection pushed into the partition
// scans and LIMIT early-stop enabled, then again with DisablePushdown
// (every row ships to the client, filtering runs there). A
// co-partitioned join with a selective pushed predicate shows the win
// compounding with co-location.
func Pushdown(o Options) []PushdownRow {
	const (
		nodes = 3
		parts = 128
	)
	keys := 40_000
	iters := 20
	if o.Quick {
		keys = 4_000
		iters = 5
	}

	store := kv.NewStore(partition.New(parts), partition.Assign(parts, nodes), nil)
	mgr := core.NewManager(store, 2)
	cfg := core.Config{Live: true}
	for _, op := range []string{"orders", "orderstate"} {
		if err := mgr.RegisterOperator(core.OperatorMeta{Name: op, Parallelism: 1, Config: cfg}); err != nil {
			panic(err)
		}
	}
	orders := core.NewBackend("orders", 0, store.View(0), cfg)
	state := core.NewBackend("orderstate", 0, store.View(0), cfg)
	zones := []string{"north", "south", "east", "west"}
	states := []string{"VENDOR_ACCEPTED", "NOTIFIED", "PICKED_UP"}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("order-%d", i)
		orders.Update(key, map[string]any{
			"deliveryZone": zones[i%len(zones)],
			"customerLat":  50.0 + float64(i%1000)/10.0, // 50.0 .. 149.9
		})
		state.Update(key, map[string]any{"orderState": states[i%len(states)]})
	}
	cat := core.NewCatalog(store)
	if err := cat.RegisterJob(mgr.Registry(), "orders", "orderstate"); err != nil {
		panic(err)
	}
	ex := sql.NewExecutor(cat, nodes)
	reg := metrics.NewRegistry()
	ex.SetMetrics(reg)

	queries := []struct{ label, q string }{
		{"selective WHERE (~2% match)", `SELECT deliveryZone FROM orders WHERE customerLat > 148`},
		{"LIMIT 10", `SELECT deliveryZone FROM orders LIMIT 10`},
		{"co-partitioned join + WHERE", `SELECT COUNT(*) FROM orders JOIN orderstate USING(partitionKey) WHERE orders.customerLat > 148`},
	}
	modes := []struct {
		label string
		opts  sql.ExecOpts
	}{
		{"pushdown", sql.ExecOpts{}},
		{"ship-all", sql.ExecOpts{DisablePushdown: true}},
	}

	shipped := reg.Counter("sql", "exec", "rows_shipped")
	scanned := reg.Counter("sql", "exec", "rows_scanned")
	partsC := reg.Counter("sql", "exec", "partitions_scanned")

	var out []PushdownRow
	for _, qc := range queries {
		for _, m := range modes {
			// Warm once outside the measurement.
			if _, err := ex.QueryWithOptions(qc.q, m.opts); err != nil {
				panic(fmt.Sprintf("experiments: pushdown %q: %v", qc.q, err))
			}
			s0, x0, p0 := shipped.Value(), scanned.Value(), partsC.Value()
			sw := metrics.StartStopwatch()
			for i := 0; i < iters; i++ {
				if _, err := ex.QueryWithOptions(qc.q, m.opts); err != nil {
					panic(fmt.Sprintf("experiments: pushdown %q: %v", qc.q, err))
				}
			}
			wall := sw.Elapsed()
			n := int64(iters)
			out = append(out, PushdownRow{
				Query:       qc.label,
				Mode:        m.label,
				Mean:        wall / time.Duration(iters),
				RowsShipped: (shipped.Value() - s0) / n,
				RowsScanned: (scanned.Value() - x0) / n,
				Parts:       (partsC.Value() - p0) / n,
			})
		}
	}
	return out
}

// PushdownTable renders the pushdown experiment as an aligned text table.
func PushdownTable(title string, rows []PushdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-30s %-9s %10s %14s %14s %8s\n",
		"query", "mode", "mean", "rows shipped", "rows scanned", "parts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-9s %10s %14d %14d %8d\n",
			r.Query, r.Mode, roundDur(r.Mean), r.RowsShipped, r.RowsScanned, r.Parts)
	}
	return b.String()
}
