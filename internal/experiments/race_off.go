//go:build !race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector. See race_on.go.
const raceEnabled = false
