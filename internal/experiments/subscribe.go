package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/sql"
)

// SubscribeResult compares the steady-state cost of keeping a fleet of
// clients fresh over operator state two ways: N standing queries sharing
// one arrangement (deltas pushed on change) versus the same N clients
// re-executing their query against live state (polling). One "round" is
// one fleet refresh: for subscriptions, the wall time from an update
// burst landing in the store until every affected subscriber has applied
// its deltas; for polling, the wall time for all N clients to re-execute
// once, measured at fixed concurrency.
type SubscribeResult struct {
	Clients int // N: standing queries, and polling clients
	Keys    int // table cardinality
	Zones   int // each client watches one zone (Keys/Zones rows)
	Updates int // updates per round (distinct keys, distinct zones)
	Rounds  int // measured subscription rounds

	Arrangements int   // shared arrangements backing all N subscriptions
	ArrRefs      int64 // readers on the shared arrangement (should be N)
	AttachTime   time.Duration

	SubRoundMean time.Duration // refresh whole fleet after one burst
	SubRoundMax  time.Duration
	SubRowsRound int64 // delta rows shipped per round, fleet-wide

	PollQPS       float64       // aggregate polled queries/s
	PollQueryMean time.Duration // one client's re-execution
	PollRound     time.Duration // Clients / PollQPS: one fleet refresh
	PollRowsRound int64         // rows scanned per fleet refresh
	PollScanPerQ  int64         // rows scanned by one polled query

	WallSpeedup float64 // PollRound / SubRoundMean
	RowSpeedup  float64 // PollRowsRound / SubRowsRound
}

// Subscribe measures push vs poll at fleet scale. The workload is the
// paper's operational shape: a live operator table partitioned into
// delivery zones, one dashboard client per courier watching its zone.
// Both fleets see the same store; the subscription fleet attaches first,
// is driven through measured update rounds, then detaches before the
// polling fleet is timed, so neither measurement pays for the other.
func Subscribe(o Options) SubscribeResult {
	const (
		nodes = 3
		parts = 128
	)
	clients, keys, zones, burst, rounds := 10_000, 2_000, 100, 40, 8
	if o.Quick {
		clients, keys, zones, burst, rounds = 500, 1_000, 50, 25, 4
	}

	store := kv.NewStore(partition.New(parts), partition.Assign(parts, nodes), nil)
	mgr := core.NewManager(store, 2)
	cfg := core.Config{Live: true}
	if err := mgr.RegisterOperator(core.OperatorMeta{Name: "orders", Parallelism: 1, Config: cfg}); err != nil {
		panic(err)
	}
	cat := core.NewCatalog(store)
	if err := cat.RegisterJob(mgr.Registry(), "orders"); err != nil {
		panic(err)
	}
	orders := core.NewBackend("orders", 0, store.View(0), cfg)
	for i := 0; i < keys; i++ {
		orders.Update(fmt.Sprintf("order-%d", i), map[string]any{
			"deliveryZone": fmt.Sprintf("z%d", i%zones),
			"amount":       int64(i),
		})
	}
	orders.Flush()

	reg := core.NewArrangeRegistry(store)
	ex := sql.NewExecutor(cat, nodes)
	ex.SetArrangements(reg)
	mreg := metrics.NewRegistry()
	ex.SetMetrics(mreg)

	// Subscription fleet: client i watches zone i%zones. Sinks only
	// count — the cost under test is the engine's, not the client's.
	var delivered atomic.Int64
	sink := func(ev sql.SubEvent) {
		delivered.Add(int64(len(ev.Deltas)))
	}
	subs := make([]*sql.StandingQuery, 0, clients)
	sw := metrics.StartStopwatch()
	for i := 0; i < clients; i++ {
		q := fmt.Sprintf(`SELECT partitionKey, amount FROM orders WHERE deliveryZone = 'z%d'`, i%zones)
		sq, err := ex.SubscribeQuery(q, sink)
		if err != nil {
			panic(fmt.Sprintf("experiments: subscribe: %v", err))
		}
		subs = append(subs, sq)
	}
	// Every client's initial snapshot is part of the attach cost.
	snapRows := int64(clients) * int64(keys/zones)
	waitDelivered(&delivered, snapRows, "initial snapshots")
	attach := sw.Elapsed()

	res := SubscribeResult{
		Clients: clients, Keys: keys, Zones: zones,
		Updates: burst, Rounds: rounds, AttachTime: attach,
	}
	for _, info := range reg.Infos() {
		res.Arrangements++
		res.ArrRefs += int64(info.Refs)
	}

	// Steady state: each round updates `burst` distinct keys in distinct
	// zones, then waits for every watching subscriber to apply the delta.
	// burst <= zones keeps consecutive key ids in distinct zones, so the
	// expected fan-out is exact: burst updates x clients/zones watchers.
	perRound := int64(burst) * int64(clients/zones)
	var roundSum, roundMax time.Duration
	for r := 0; r < rounds; r++ {
		base := delivered.Load()
		rsw := metrics.StartStopwatch()
		for u := 0; u < burst; u++ {
			id := (r*burst + u) % keys
			orders.Update(fmt.Sprintf("order-%d", id), map[string]any{
				"deliveryZone": fmt.Sprintf("z%d", id%zones),
				"amount":       int64((r+1)*keys + id),
			})
		}
		orders.Flush()
		waitDelivered(&delivered, base+perRound, "round deltas")
		d := rsw.Elapsed()
		roundSum += d
		if d > roundMax {
			roundMax = d
		}
	}
	res.SubRoundMean = roundSum / time.Duration(rounds)
	res.SubRoundMax = roundMax
	res.SubRowsRound = perRound
	for _, sq := range subs {
		sq.Close()
	}

	// Polling fleet: the same clients re-execute their zone query against
	// live state. Timed at fixed concurrency; one fleet refresh is then
	// Clients/QPS. No secondary index exists — a polling client pays the
	// scan its query costs on the operator's own schema.
	pollers := 32
	if pollers > clients {
		pollers = clients
	}
	scanned := mreg.Counter("sql", "exec", "rows_scanned")
	scan0 := scanned.Value()
	var qdone atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	psw := metrics.StartStopwatch()
	for p := 0; p < pollers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			q := fmt.Sprintf(`SELECT partitionKey, amount FROM orders WHERE deliveryZone = 'z%d'`, p%zones)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ex.Query(q); err != nil {
					panic(fmt.Sprintf("experiments: poll: %v", err))
				}
				qdone.Add(1)
			}
		}(p)
	}
	time.Sleep(o.measure())
	close(stop)
	wg.Wait()
	window := psw.Elapsed()

	n := qdone.Load()
	res.PollQPS = float64(n) / window.Seconds()
	res.PollQueryMean = time.Duration(int64(window) * int64(pollers) / n)
	res.PollRound = time.Duration(float64(res.Clients) / res.PollQPS * float64(time.Second))
	res.PollScanPerQ = (scanned.Value() - scan0) / n
	res.PollRowsRound = res.PollScanPerQ * int64(res.Clients)

	res.WallSpeedup = float64(res.PollRound) / float64(res.SubRoundMean)
	res.RowSpeedup = float64(res.PollRowsRound) / float64(res.SubRowsRound)
	return res
}

func waitDelivered(c *atomic.Int64, target int64, what string) {
	deadline := time.Now().Add(60 * time.Second)
	for c.Load() < target {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("experiments: subscribe: timed out waiting for %s (%d/%d)",
				what, c.Load(), target))
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// SubscribeTable renders the push-vs-poll comparison.
func SubscribeTable(title string, r SubscribeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "fleet: %d clients over %d keys in %d zones; %d arrangement(s), %d reader refs; attach+snapshot %s\n",
		r.Clients, r.Keys, r.Zones, r.Arrangements, r.ArrRefs, roundDur(r.AttachTime))
	fmt.Fprintf(&b, "  %-28s %14s %16s\n", "mode", "fleet refresh", "rows per refresh")
	fmt.Fprintf(&b, "  %-28s %14s %16d\n",
		fmt.Sprintf("subscribe (%d-key burst)", r.Updates), roundDur(r.SubRoundMean), r.SubRowsRound)
	fmt.Fprintf(&b, "  %-28s %14s %16d\n", "poll (re-execute)", roundDur(r.PollRound), r.PollRowsRound)
	fmt.Fprintf(&b, "subscribe: max round %s over %d rounds; poll: %.0f q/s aggregate, %s/query, %d rows scanned/query\n",
		roundDur(r.SubRoundMax), r.Rounds, r.PollQPS, roundDur(r.PollQueryMean), r.PollScanPerQ)
	fmt.Fprintf(&b, "steady-state advantage: %.1fx wall, %.0fx rows\n", r.WallSpeedup, r.RowSpeedup)
	return b.String()
}
