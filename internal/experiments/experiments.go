// Package experiments regenerates every table and figure of the paper's
// evaluation (§IX): each Fig* function reproduces one experiment at a
// laptop-friendly scale and returns the same series the paper plots. The
// cmd/squery-bench binary and the root-level Go benchmarks are thin
// wrappers around this package; EXPERIMENTS.md records paper-reported vs
// measured numbers.
//
// Absolute numbers differ from the paper's 7-node AWS cluster by design —
// the substrate here is a simulated cluster in one process — but the
// comparisons the paper draws (which configuration wins, by roughly what
// factor, and where behaviour crosses over) are reproduced.
package experiments

import (
	"fmt"

	"strings"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/metrics"
	"squery/internal/nexmark"
	"squery/internal/qcommerce"
	"squery/internal/sql"
)

// Options scales experiments. The zero value runs the full (still
// laptop-sized) configuration; Quick shrinks durations and key counts for
// use inside `go test -bench`.
type Options struct {
	Quick bool
}

func (o Options) measure() time.Duration {
	if o.Quick {
		return 800 * time.Millisecond
	}
	return 3 * time.Second
}

func (o Options) warmup() time.Duration {
	if o.Quick {
		return 200 * time.Millisecond
	}
	return time.Second
}

// interval scales the paper's 1-second checkpoint interval to the
// experiment duration used here.
func (o Options) interval() time.Duration {
	if o.Quick {
		return 50 * time.Millisecond
	}
	return 200 * time.Millisecond
}

func (o Options) keySweeps() []int {
	if o.Quick {
		return []int{1_000, 5_000}
	}
	return []int{1_000, 10_000, 100_000}
}

// Series is one labelled latency distribution of a figure.
type Series struct {
	Label   string
	Summary metrics.Summary
}

// Table renders series as the aligned text table squery-bench prints.
func Table(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	qs := metrics.PaperPercentiles
	fmt.Fprintf(&b, "%-28s %10s", "series", "count")
	for _, q := range qs {
		fmt.Fprintf(&b, " %11s", fmt.Sprintf("p%g", q*100))
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-28s %10d", s.Label, s.Summary.Count)
		for _, q := range qs {
			fmt.Fprintf(&b, " %11s", roundDur(s.Summary.Quantiles[q]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
}

// nexmarkRun holds the artifacts of one NEXMark job execution.
type nexmarkRun struct {
	Latency  metrics.Summary
	Phase1   metrics.Summary
	Total2PC metrics.Summary
	Events   uint64
	Rate     float64
}

// runNexmark executes NEXMark query 6 for warmup+measure under the given
// state configuration and offered per-instance rate (0 = unthrottled).
func runNexmark(o Options, nodes int, state core.Config, rate float64, queryLoad func(*cluster.Cluster, *dataflow.Job) func()) nexmarkRun {
	clu := cluster.New(cluster.Config{Nodes: nodes})
	hist := metrics.NewHistogram()
	cfg := nexmark.Config{
		Sellers:             10_000,
		Rate:                rate,
		SourceParallelism:   nodes,
		OperatorParallelism: nodes * 2,
	}
	if o.Quick {
		cfg.Sellers = 1_000
	}
	dag := nexmark.Query6DAG(cfg, hist)
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "nexmark-q6",
		Cluster:          clu,
		State:            state,
		SnapshotInterval: o.interval(),
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	var stopLoad func()
	if queryLoad != nil {
		stopLoad = queryLoad(clu, job)
	}

	time.Sleep(o.warmup())
	hist.Reset()
	job.SnapshotPhase1().Reset()
	job.SnapshotTotal().Reset()
	meter := job.SourceMeter()
	meter.Reset()
	time.Sleep(o.measure())

	run := nexmarkRun{
		Latency:  hist.Snapshot(),
		Phase1:   job.SnapshotPhase1().Snapshot(),
		Total2PC: job.SnapshotTotal().Snapshot(),
		Events:   meter.Count(),
		Rate:     meter.Rate(),
	}
	if stopLoad != nil {
		stopLoad()
	}
	return run
}

// qcommerceRun holds the artifacts of one Q-commerce job execution.
type qcommerceRun struct {
	Phase1   metrics.Summary
	Total2PC metrics.Summary
	Query    metrics.Summary
	Events   uint64
}

// runQCommerce executes the Delivery Hero workload with `keys` unique
// orders. When queryThreads > 0, that many goroutines issue `query`
// back-to-back against the snapshot state during the measurement window
// (the paper's two full-speed query threads, §IX.A); their latency lands
// in the returned Query summary.
func runQCommerce(o Options, nodes, keys int, state core.Config, queryThreads int, query string) qcommerceRun {
	clu := cluster.New(cluster.Config{Nodes: nodes})
	cfg := qcommerce.Config{
		Orders:              int64(keys),
		Rate:                8_000, // below saturation: 2PC latency, not queueing
		SourceParallelism:   nodes,
		OperatorParallelism: nodes * 2,
	}
	hist := metrics.NewHistogram()
	dag := qcommerce.DAG(cfg, dataflow.LatencySinkVertex("sink", nodes*2, hist))
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "qcommerce",
		Cluster:          clu,
		State:            state,
		SnapshotInterval: o.interval(),
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	cat := core.NewCatalog(clu.Store())
	if err := cat.RegisterJob(job.Manager().Registry(), job.StatefulOperators()...); err != nil {
		panic(err)
	}
	ex := sql.NewExecutor(cat, nodes)

	// Wait until state is populated and the first snapshot committed.
	deadline := time.Now().Add(30 * time.Second)
	for job.Manager().Registry().LatestCommitted() == 0 ||
		job.SourceMeter().Count() < uint64(keys) {
		if time.Now().After(deadline) {
			panic("experiments: workload did not warm up")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(o.warmup())

	// Larger key counts need more wall time per checkpoint for the 2PC
	// histograms to collect a meaningful sample.
	measure := o.measure()
	if keys >= 50_000 {
		measure *= 3
	}

	job.SnapshotPhase1().Reset()
	job.SnapshotTotal().Reset()
	qHist := metrics.NewHistogram()
	stop := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < queryThreads; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sw := metrics.StartStopwatch()
				if _, err := ex.Query(query); err != nil {
					panic(fmt.Sprintf("experiments: query load failed: %v", err))
				}
				qHist.Record(sw.Elapsed())
			}
		}()
	}
	time.Sleep(measure)
	// On a loaded host (notably under the race detector) a single 2PC
	// round can outlast the whole measure window; keep measuring until at
	// least one sample lands so the histograms are never empty.
	sampleDeadline := time.Now().Add(30 * time.Second)
	for job.SnapshotTotal().Count() == 0 && time.Now().Before(sampleDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	for i := 0; i < queryThreads; i++ {
		<-done
	}
	return qcommerceRun{
		Phase1:   job.SnapshotPhase1().Snapshot(),
		Total2PC: job.SnapshotTotal().Snapshot(),
		Query:    qHist.Snapshot(),
		Events:   job.SourceMeter().Count(),
	}
}
