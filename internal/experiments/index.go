package experiments

import (
	"fmt"
	"strings"
	"time"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/sql"
)

// IndexReadRow is one measured configuration of the index experiment's
// read side: a selective query executed with secondary indexes available
// to the planner, then again forced onto the full-scan access path.
type IndexReadRow struct {
	Query       string
	Mode        string // "indexed" or "full-scan"
	Mean        time.Duration
	RowsShipped int64 // rows that crossed the client hop, per execution
	RowsScanned int64 // rows examined on the owning nodes, per execution
	Parts       int64 // partitions scanned, per execution
}

// IndexWriteRow is one measured configuration of the write side: loading
// the same key set into a store with and without inline index
// maintenance. OverheadPct is relative to the unindexed baseline (zero on
// the baseline row).
type IndexWriteRow struct {
	Mode        string // "unindexed" or "2 indexes"
	Keys        int
	PerPut      time.Duration
	OverheadPct float64
}

// IndexResult bundles both sides of the experiment.
type IndexResult struct {
	Keys   int
	Reads  []IndexReadRow
	Writes []IndexWriteRow
}

// Index measures what secondary indexes buy and cost on a large state
// table: selective point (hash index) and range (B-tree index) queries
// run with index selection on and off — rows_scanned should drop from the
// table size to roughly the query's selectivity — and the same bulk load
// timed with and without inline index maintenance, which is the price of
// keeping the indexes transactionally current with the stream.
func Index(o Options) IndexResult {
	const (
		nodes = 3
		parts = 128
		zones = 64 // point-query selectivity: 1/64 ≈ 1.6%
	)
	keys := 1_000_000
	iters := 5
	if o.Quick {
		keys = 40_000
		iters = 3
	}

	// Write side: one bulk load per mode, indexes (when present) created
	// before any data flows so every put pays the maintenance inline.
	load := func(indexed bool) (*kv.Store, *core.Catalog, time.Duration) {
		store := kv.NewStore(partition.New(parts), partition.Assign(parts, nodes), nil)
		mgr := core.NewManager(store, 2)
		cfg := core.Config{Live: true}
		if err := mgr.RegisterOperator(core.OperatorMeta{Name: "orders", Parallelism: 1, Config: cfg}); err != nil {
			panic(err)
		}
		cat := core.NewCatalog(store)
		if err := cat.RegisterJob(mgr.Registry(), "orders"); err != nil {
			panic(err)
		}
		if indexed {
			if err := cat.CreateIndex("orders", "deliveryZone", core.IndexHash); err != nil {
				panic(err)
			}
			if err := cat.CreateIndex("orders", "amount", core.IndexBTree); err != nil {
				panic(err)
			}
		}
		orders := core.NewBackend("orders", 0, store.View(0), cfg)
		sw := metrics.StartStopwatch()
		for i := 0; i < keys; i++ {
			orders.Update(fmt.Sprintf("order-%d", i), map[string]any{
				"deliveryZone": fmt.Sprintf("z%d", i%zones),
				"amount":       int64(i % 100_000),
			})
		}
		return store, cat, sw.Elapsed()
	}

	_, _, plainLoad := load(false)
	_, cat, indexedLoad := load(true)

	res := IndexResult{Keys: keys}
	res.Writes = append(res.Writes,
		IndexWriteRow{Mode: "unindexed", Keys: keys, PerPut: plainLoad / time.Duration(keys)},
		IndexWriteRow{
			Mode: "2 indexes", Keys: keys,
			PerPut:      indexedLoad / time.Duration(keys),
			OverheadPct: 100 * (indexedLoad.Seconds() - plainLoad.Seconds()) / plainLoad.Seconds(),
		})

	// Read side: A/B the planner's chosen access path on the indexed
	// store. DisableIndexes keeps pushdown on, so the comparison isolates
	// the access path — both modes push the same filter.
	ex := sql.NewExecutor(cat, nodes)
	reg := metrics.NewRegistry()
	ex.SetMetrics(reg)

	queries := []struct{ label, q string }{
		{"point (1 of 64 zones)", `SELECT partitionKey FROM orders WHERE deliveryZone = 'z17'`},
		{"range (1% of domain)", `SELECT COUNT(*) FROM orders WHERE amount >= 99000`},
		{"point + residual filter", `SELECT partitionKey FROM orders WHERE deliveryZone = 'z3' AND amount < 50000`},
	}
	modes := []struct {
		label string
		opts  sql.ExecOpts
	}{
		{"indexed", sql.ExecOpts{}},
		{"full-scan", sql.ExecOpts{DisableIndexes: true}},
	}

	shipped := reg.Counter("sql", "exec", "rows_shipped")
	scanned := reg.Counter("sql", "exec", "rows_scanned")
	partsC := reg.Counter("sql", "exec", "partitions_scanned")

	for _, qc := range queries {
		for _, m := range modes {
			// Warm once outside the measurement.
			if _, err := ex.QueryWithOptions(qc.q, m.opts); err != nil {
				panic(fmt.Sprintf("experiments: index %q: %v", qc.q, err))
			}
			s0, x0, p0 := shipped.Value(), scanned.Value(), partsC.Value()
			sw := metrics.StartStopwatch()
			for i := 0; i < iters; i++ {
				if _, err := ex.QueryWithOptions(qc.q, m.opts); err != nil {
					panic(fmt.Sprintf("experiments: index %q: %v", qc.q, err))
				}
			}
			wall := sw.Elapsed()
			n := int64(iters)
			res.Reads = append(res.Reads, IndexReadRow{
				Query:       qc.label,
				Mode:        m.label,
				Mean:        wall / time.Duration(iters),
				RowsShipped: (shipped.Value() - s0) / n,
				RowsScanned: (scanned.Value() - x0) / n,
				Parts:       (partsC.Value() - p0) / n,
			})
		}
	}
	return res
}

// IndexTable renders the index experiment as aligned text tables.
func IndexTable(title string, res IndexResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "reads (%d keys):\n", res.Keys)
	fmt.Fprintf(&b, "  %-26s %-10s %10s %14s %14s %8s\n",
		"query", "mode", "mean", "rows shipped", "rows scanned", "parts")
	for _, r := range res.Reads {
		fmt.Fprintf(&b, "  %-26s %-10s %10s %14d %14d %8d\n",
			r.Query, r.Mode, roundDur(r.Mean), r.RowsShipped, r.RowsScanned, r.Parts)
	}
	fmt.Fprintf(&b, "writes (inline maintenance):\n")
	fmt.Fprintf(&b, "  %-12s %10s %12s %10s\n", "mode", "keys", "ns/put", "overhead")
	for _, w := range res.Writes {
		over := "—"
		if w.Mode != "unindexed" {
			over = fmt.Sprintf("%+.1f%%", w.OverheadPct)
		}
		fmt.Fprintf(&b, "  %-12s %10d %12d %10s\n", w.Mode, w.Keys, w.PerPut.Nanoseconds(), over)
	}
	return b.String()
}
