package experiments

import (
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/metrics"
	"squery/internal/trace"
)

// Obs measures the source→sink latency cost of span tracing on a keyed
// counting pipeline at a fixed offered rate: tracing disabled (the
// baseline), the default 1-in-256 head sampling, and the worst case of
// tracing every record. The latency clock is coordinated-omission-safe
// (GeneratorSource stamps each record's scheduled emission time), so any
// tracing-induced stall surfaces as tail latency. The acceptance bar in
// EXPERIMENTS.md is ≤5% added latency at the default sampling rate.
func Obs(o Options) []Series {
	rate := fig89Rate(o)
	configs := []struct {
		label       string
		sampleEvery int // 0 = tracing off
	}{
		{"tracing off", 0},
		{"tracing 1-in-256", 256},
		{"tracing every record", 1},
	}
	out := make([]Series, 0, len(configs))
	for _, c := range configs {
		var tr *trace.Tracer
		if c.sampleEvery > 0 {
			tr = trace.New(trace.Config{SampleEvery: c.sampleEvery, Capacity: 1 << 14})
		}
		out = append(out, Series{Label: c.label, Summary: runObsWorkload(o, rate, tr)})
	}
	return out
}

// runObsWorkload runs source → keyed count → latency sink for
// warmup+measure with the given tracer (nil = tracing off) and returns
// the measured latency distribution.
func runObsWorkload(o Options, rate float64, tr *trace.Tracer) metrics.Summary {
	clu := cluster.New(cluster.Config{Nodes: 3})
	hist := metrics.NewHistogram()
	src := dataflow.GeneratorSource("src", 3, rate, func(instance int, seq int64) (dataflow.Record, bool) {
		return dataflow.Record{Key: int(seq % 1000), Value: 1}, true
	})
	dag := dataflow.NewDAG().
		AddVertex(src).
		AddVertex(dataflow.StatefulMapVertex("obscount", 6, func(state any, rec dataflow.Record) (any, []dataflow.Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + 1, []dataflow.Record{rec}
		})).
		AddVertex(dataflow.LatencySinkVertex("sink", 6, hist)).
		Connect("src", "obscount", dataflow.EdgePartitioned).
		Connect("obscount", "sink", dataflow.EdgePartitioned)
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "obs",
		Cluster:          clu,
		State:            core.Config{Snapshots: true},
		SnapshotInterval: o.interval(),
		Tracer:           tr,
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	time.Sleep(o.warmup())
	hist.Reset()
	time.Sleep(o.measure())
	return hist.Snapshot()
}
