package experiments

import (
	"strings"
	"testing"
	"time"
)

// ultraQuick shrinks options beyond Quick for unit testing: these tests
// verify the harness runs and its outputs have the right shape, not the
// measured values.
var ultraQuick = Options{Quick: true}

func TestFig8ProducesFourSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	series := Fig8(ultraQuick)
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	for _, s := range series {
		if s.Summary.Count == 0 {
			t.Errorf("%s recorded nothing", s.Label)
		}
	}
	tbl := Table("fig8", series)
	if !strings.Contains(tbl, "S-Query live+snap") || !strings.Contains(tbl, "Jet") {
		t.Errorf("table missing labels:\n%s", tbl)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	series := Fig10(ultraQuick)
	// 2 key counts (quick) × 2 systems.
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	for _, s := range series {
		if s.Summary.Count == 0 {
			t.Errorf("%s has no 2PC samples", s.Label)
		}
	}
}

func TestFig12DeltaOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	series := Fig12(ultraQuick)
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	byLabel := map[string]time.Duration{}
	for _, s := range series {
		byLabel[s.Label] = s.Summary.Quantiles[0.5]
	}
	// The headline trade-off: a 1% delta snapshot must be cheaper than a
	// full snapshot.
	if byLabel["1% delta"] >= byLabel["Full snapshot"] {
		t.Errorf("1%% delta (%v) not cheaper than full (%v)", byLabel["1% delta"], byLabel["Full snapshot"])
	}
}

func TestFig14ShapeAndWinner(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	rows := Fig14(ultraQuick)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	get := func(system string, sel int) float64 {
		for _, r := range rows {
			if r.System == system && r.KeysSelected == sel {
				return r.QueriesPerS
			}
		}
		t.Fatalf("missing row %s/%d", system, sel)
		return 0
	}
	// Power-law: more keys selected, lower throughput (each system).
	for _, sys := range []string{"S-Query", "TSpoon"} {
		if !(get(sys, 1) > get(sys, 100) && get(sys, 100) > get(sys, 1000)) {
			t.Errorf("%s throughput not decreasing with selection size", sys)
		}
	}
	// S-QUERY leads at single-key selection. Race instrumentation skews
	// the two systems' memory-access costs differently, so the winner is
	// not meaningful under -race — the shape checks above still are.
	if raceEnabled {
		t.Log("race detector enabled: skipping winner assertion, shape-only")
		return
	}
	if get("S-Query", 1) <= get("TSpoon", 1) {
		t.Errorf("S-Query (%0.f q/s) did not beat TSpoon (%0.f q/s) at 1 key",
			get("S-Query", 1), get("TSpoon", 1))
	}
}

func TestCkptScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	rows := CkptScale(ultraQuick)
	// 2 modes × 3 sizes.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byMode := map[string][]CkptScaleRow{}
	for _, r := range rows {
		if r.Ckpts < 1 || r.BytesPer <= 0 {
			t.Errorf("%s/%d measured nothing: %+v", r.Mode, r.Keys, r)
		}
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	// The delta-async runs must actually exercise the delta path, and the
	// full-sync baseline must not.
	for _, r := range byMode["delta-async"] {
		if r.DeltaSegs == 0 {
			t.Errorf("delta-async/%d wrote no delta segments", r.Keys)
		}
	}
	for _, r := range byMode["full-sync"] {
		if r.DeltaSegs != 0 {
			t.Errorf("full-sync/%d wrote %d delta segments, want 0", r.Keys, r.DeltaSegs)
		}
	}
	// The headline claim: at 10x state, delta-async bytes/ckpt track the
	// fixed hot set, so they must not grow with total keys the way the
	// full baseline's do. Allow generous slack — this is a shape check,
	// not a benchmark.
	da := byMode["delta-async"]
	fs := byMode["full-sync"]
	if len(da) == 3 && len(fs) == 3 {
		if da[2].BytesPer > fs[2].BytesPer/2 {
			t.Errorf("delta-async bytes/ckpt at 10x = %d, not well under full-sync's %d",
				da[2].BytesPer, fs[2].BytesPer)
		}
	}
	tbl := CkptScaleTable("ckpt-scale", rows)
	if !strings.Contains(tbl, "delta-async") || !strings.Contains(tbl, "full-sync") {
		t.Errorf("table missing modes:\n%s", tbl)
	}
}

func TestIndexExpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	res := Index(ultraQuick)
	// 3 queries × 2 modes.
	if len(res.Reads) != 6 {
		t.Fatalf("read rows = %d, want 6", len(res.Reads))
	}
	byQuery := map[string]map[string]IndexReadRow{}
	for _, r := range res.Reads {
		if byQuery[r.Query] == nil {
			byQuery[r.Query] = map[string]IndexReadRow{}
		}
		byQuery[r.Query][r.Mode] = r
	}
	for q, m := range byQuery {
		on, off := m["indexed"], m["full-scan"]
		// Parity of results is covered by TestIndexParity; here the claim
		// is the access path itself: the index must examine a small
		// fraction of what the full scan does (each query selects ≤ 2% of
		// the table; 4x slack keeps this a shape check, not a benchmark).
		if on.RowsScanned*4 >= off.RowsScanned {
			t.Errorf("%s: indexed examined %d rows vs full scan's %d — no pruning",
				q, on.RowsScanned, off.RowsScanned)
		}
		// Both modes ship the same result rows: the filter is the truth.
		if on.RowsShipped != off.RowsShipped {
			t.Errorf("%s: shipped %d indexed vs %d full scan", q, on.RowsShipped, off.RowsShipped)
		}
	}
	if len(res.Writes) != 2 {
		t.Fatalf("write rows = %d, want 2", len(res.Writes))
	}
	for _, w := range res.Writes {
		if w.PerPut <= 0 {
			t.Errorf("%s: per-put %v not measured", w.Mode, w.PerPut)
		}
	}
	tbl := IndexTable("index", res)
	if !strings.Contains(tbl, "indexed") || !strings.Contains(tbl, "overhead") {
		t.Errorf("table missing sections:\n%s", tbl)
	}
}

func TestPaperQueriesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	reports := PaperQueries(ultraQuick)
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.Latency <= 0 || r.Result == "" {
			t.Errorf("%s: latency=%v result=%q", r.Name, r.Latency, r.Result)
		}
	}
}

func TestSubscribeExpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness, -short")
	}
	res := Subscribe(ultraQuick)
	// Sharing is the mechanism under test: every client must ride ONE
	// arrangement, so engine-side cost is independent of client count.
	if res.Arrangements != 1 || res.ArrRefs != int64(res.Clients) {
		t.Fatalf("arrangements=%d refs=%d, want 1 arrangement carrying all %d clients",
			res.Arrangements, res.ArrRefs, res.Clients)
	}
	// The row economics are structural, not timing-dependent: a poll
	// rescans the table per client, a subscription ships only the
	// burst's fan-out.
	if want := int64(res.Updates) * int64(res.Clients/res.Zones); res.SubRowsRound != want {
		t.Fatalf("SubRowsRound = %d, want %d", res.SubRowsRound, want)
	}
	if res.PollScanPerQ != int64(res.Keys) {
		t.Fatalf("PollScanPerQ = %d, want the full table (%d)", res.PollScanPerQ, res.Keys)
	}
	if res.RowSpeedup < 100 {
		t.Fatalf("RowSpeedup = %.0f, want the structural >=100x", res.RowSpeedup)
	}
	// Wall clock is load-dependent; only the direction is asserted.
	if res.WallSpeedup <= 1 {
		t.Errorf("WallSpeedup = %.2f — polling beat subscriptions", res.WallSpeedup)
	}
	tbl := SubscribeTable("t", res)
	if !strings.Contains(tbl, "subscribe") || !strings.Contains(tbl, "poll") {
		t.Errorf("table missing sections:\n%s", tbl)
	}
}
