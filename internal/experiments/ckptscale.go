package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/metrics"
)

// The checkpoint-scaling experiment demonstrates the point of incremental
// + asynchronous checkpoints: as total state grows ~10x while the
// per-interval update set stays fixed, the cost of a checkpoint must
// track the delta, not the state. Two configurations run over the same
// workload:
//
//   - "full-sync": full snapshots serialized on the barrier path and
//     persisted as full segments — every checkpoint is O(state).
//   - "delta-async": incremental in-memory snapshots pinned at the
//     barrier and drained off the barrier path, persisted as delta
//     segments with policy-driven compaction — every checkpoint is
//     O(delta).
//
// Expected shape: full-sync wall time and bytes/checkpoint grow roughly
// with the key count; delta-async stays near flat (bytes track the fixed
// hot set) and its barrier stall stays small.

// CkptScaleRow is one (mode, state size) point of the sweep.
type CkptScaleRow struct {
	Mode      string
	Keys      int
	Ckpts     int64         // committed checkpoints measured
	Wall      time.Duration // mean 2PC wall time (inject -> committed)
	Stall     time.Duration // mean barrier-path stall (phase 1)
	BytesPer  int64         // persisted bytes per checkpoint
	DeltaSegs int64         // delta segments written during measurement
	FullSegs  int64         // full segments written during measurement
}

// ckptScaleSizes returns the swept total key counts: 1x, 3x and 10x the
// base size, with a fixed hot set so the per-checkpoint delta is constant
// across the sweep.
func (o Options) ckptScaleSizes() (sizes []int, hot int) {
	base := 10_000
	if o.Quick {
		base = 2_000
	}
	return []int{base, 3 * base, 10 * base}, base / 10
}

// CkptScale runs the sweep and returns one row per (mode, size) point.
func CkptScale(o Options) []CkptScaleRow {
	sizes, hot := o.ckptScaleSizes()
	modes := []struct {
		label string
		state core.Config
		sync  bool
		pol   core.PersistPolicy
	}{
		{"full-sync", core.Config{Snapshots: true}, true, core.PersistPolicy{FullOnly: true}},
		{"delta-async", core.Config{Snapshots: true, Incremental: true}, false, core.PersistPolicy{}},
	}
	var out []CkptScaleRow
	for _, m := range modes {
		for _, keys := range sizes {
			out = append(out, runCkptScale(o, m.label, keys, hot, m.state, m.sync, m.pol))
		}
	}
	return out
}

// runCkptScale populates `keys` keys, then keeps updating a fixed hot set
// of `hot` keys while periodic checkpoints run, and measures the
// steady-state per-checkpoint cost.
func runCkptScale(o Options, label string, keys, hot int, state core.Config, sync bool, pol core.PersistPolicy) CkptScaleRow {
	nodes := 3
	clu := cluster.New(cluster.Config{Nodes: nodes})
	dir, err := os.MkdirTemp("", "squery-ckptscale-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	total := int64(keys)
	hotKeys := int64(hot)
	par := nodes
	src := dataflow.GeneratorSource("updates", par, 50_000, func(instance int, seq int64) (dataflow.Record, bool) {
		g := seq*int64(par) + int64(instance)
		var key int64
		if g < total {
			key = g // initial population covers every key
		} else {
			key = g % hotKeys // steady state touches only the fixed hot set
		}
		return dataflow.Record{Key: key, Value: g}, true
	})
	dag := dataflow.NewDAG().
		AddVertex(src).
		AddVertex(dataflow.StatefulMapVertex("scalestate", nodes*2,
			func(st any, rec dataflow.Record) (any, []dataflow.Record) {
				return rec.Value, []dataflow.Record{rec}
			})).
		AddVertex(dataflow.LatencySinkVertex("sink", nodes, metrics.NewHistogram())).
		Connect("updates", "scalestate", dataflow.EdgePartitioned).
		Connect("scalestate", "sink", dataflow.EdgePartitioned)
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "ckptscale",
		Cluster:          clu,
		State:            state,
		SnapshotInterval: o.interval(),
		PersistDir:       dir,
		Persist:          pol,
		SyncPhase1:       sync,
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	// Warm up: full population plus at least two committed checkpoints, so
	// the measured interval sees only steady-state (hot set) deltas.
	deadline := time.Now().Add(120 * time.Second)
	for job.SourceMeter().Count() < uint64(total) || job.Manager().Registry().LatestCommitted() < 2 {
		if time.Now().After(deadline) {
			panic("experiments: ckpt-scale workload did not warm up")
		}
		time.Sleep(time.Millisecond)
	}
	job.SnapshotPhase1().Reset()
	job.SnapshotTotal().Reset()
	stats0 := job.Manager().Persister().Stats()
	c0 := job.Manager().Registry().LatestCommitted()
	time.Sleep(o.deltaMeasure())
	// The window must hold whole checkpoints: when instrumentation (e.g.
	// the race detector) slows commits past the nominal measure time,
	// keep waiting until at least two landed, or bytes/ckpt would divide
	// partial write activity by a clamped count.
	deadline = time.Now().Add(120 * time.Second)
	for job.Manager().Registry().LatestCommitted() < c0+2 {
		if time.Now().After(deadline) {
			panic("experiments: ckpt-scale measured no checkpoints")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats1 := job.Manager().Persister().Stats()
	ckpts := job.Manager().Registry().LatestCommitted() - c0
	if ckpts < 1 {
		ckpts = 1
	}
	return CkptScaleRow{
		Mode:      label,
		Keys:      keys,
		Ckpts:     ckpts,
		Wall:      job.SnapshotTotal().Snapshot().Quantiles[0.5],
		Stall:     job.SnapshotPhase1().Snapshot().Quantiles[0.5],
		BytesPer:  (stats1.BytesWritten - stats0.BytesWritten) / ckpts,
		DeltaSegs: stats1.DeltaSegments - stats0.DeltaSegments,
		FullSegs:  stats1.FullSegments - stats0.FullSegments,
	}
}

// CkptScaleTable renders the sweep as the aligned table squery-bench
// prints.
func CkptScaleTable(title string, rows []CkptScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %8s %6s %10s %10s %12s %6s %6s\n",
		"mode", "keys", "ckpts", "wall p50", "stall p50", "bytes/ckpt", "dsegs", "fsegs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %6d %10s %10s %12d %6d %6d\n",
			r.Mode, r.Keys, r.Ckpts, roundDur(r.Wall), roundDur(r.Stall),
			r.BytesPer, r.DeltaSegs, r.FullSegs)
	}
	return b.String()
}
