package experiments

import (
	"fmt"
	"strings"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/metrics"
	"squery/internal/qcommerce"
	"squery/internal/sql"
)

// QueryReport is the result of running one of the paper's production
// queries: the rendered result set and its end-to-end latency.
type QueryReport struct {
	Name    string
	Query   string
	Latency time.Duration
	Result  string
	Rows    int
}

// PaperQueries runs the four Delivery Hero queries (§VIII) against a live
// Q-commerce job's snapshot state and reports results and latencies.
func PaperQueries(o Options) []QueryReport {
	nodes := 7
	keys := 10_000
	if o.Quick {
		keys = 1_000
	}
	clu := cluster.New(cluster.Config{Nodes: nodes})
	cfg := qcommerce.Config{
		Orders:              int64(keys),
		SourceParallelism:   nodes,
		OperatorParallelism: nodes * 2,
	}
	dag := qcommerce.DAG(cfg, dataflow.LatencySinkVertex("sink", nodes, metrics.NewHistogram()))
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "qcommerce-queries",
		Cluster:          clu,
		State:            core.Config{Snapshots: true},
		SnapshotInterval: o.interval(),
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	cat := core.NewCatalog(clu.Store())
	if err := cat.RegisterJob(job.Manager().Registry(), job.StatefulOperators()...); err != nil {
		panic(err)
	}
	ex := sql.NewExecutor(cat, nodes)

	deadline := time.Now().Add(30 * time.Second)
	for job.Manager().Registry().LatestCommitted() == 0 ||
		job.SourceMeter().Count() < uint64(keys*2) {
		if time.Now().After(deadline) {
			panic("experiments: query workload did not warm up")
		}
		time.Sleep(time.Millisecond)
	}

	out := make([]QueryReport, 0, len(qcommerce.Queries))
	for i, q := range qcommerce.Queries {
		sw := metrics.StartStopwatch()
		res, err := ex.Query(q)
		if err != nil {
			panic(fmt.Sprintf("experiments: query %d: %v", i+1, err))
		}
		out = append(out, QueryReport{
			Name:    fmt.Sprintf("Query %d", i+1),
			Query:   strings.Join(strings.Fields(q), " "),
			Latency: sw.Elapsed(),
			Result:  res.String(),
			Rows:    len(res.Rows),
		})
	}
	return out
}
