package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/wire"
)

// WireRow is one configuration of the wire experiment: the measured
// inter-node cost of state maintenance under the legacy per-record /
// per-key message shape versus the batched transport.
type WireRow struct {
	Label string
	// Checkpoint cost, averaged over the measured rounds.
	MsgsPerCkpt float64
	OpsPerCkpt  float64
	KBPerCkpt   float64
	CkptMs      float64
	// Data-plane cost: live-state mirroring messages per 1000 updates and
	// the mean wall cost of one Update (including its share of mirroring).
	MirrorMsgsPer1K float64
	UpdateNs        float64
}

// Wire measures what the explicit transport layer, the binary codec and
// batched state mirroring buy, on a replicated 3-node cluster: inter-node
// messages, operation counts and payload bytes per checkpoint, mirroring
// messages per 1000 updates, and per-update overhead. The "legacy" row
// reproduces the pre-refactor wire shape (one message per mirrored
// record, one Get plus one Put per snapshotted key); the "batched" row is
// the default path (partition-grouped batches end to end). EXPERIMENTS.md
// records the measured ratios; the acceptance bar is >=4x fewer messages
// per checkpoint.
func Wire(o Options) []WireRow {
	keys, rounds := 20_000, 5
	if o.Quick {
		keys, rounds = 4_000, 3
	}
	return []WireRow{
		runWireConfig("legacy per-key wire", keys, rounds, true),
		runWireConfig("batched wire", keys, rounds, false),
	}
}

func runWireConfig(label string, keys, rounds int, unbatched bool) WireRow {
	// 128 partitions (the pushdown experiment's configuration) and a
	// record-batch of 256: batching pays off in proportion to operations
	// per partition group, so the batch must be sized against the
	// partition count — with a batch far below it every group degenerates
	// to a single operation.
	clu := cluster.New(cluster.Config{Nodes: 3, Partitions: 128, ReplicateState: true})
	defer clu.Close()
	nodes := clu.Nodes()
	cfg := core.Config{Live: true, Snapshots: true, Unbatched: unbatched, MirrorBatch: 256}
	backends := make([]*core.Backend, nodes)
	for n := 0; n < nodes; n++ {
		backends[n] = core.NewBackend("wireexp", n, clu.NodeView(n), cfg)
	}

	var updDur, ckptDur time.Duration
	var mirrorMsgs, ckptMsgs, ckptOps, ckptBytes uint64
	updates := 0
	for r := 0; r < rounds; r++ {
		before := clu.Transport().Stats()
		start := time.Now()
		for k := 0; k < keys; k++ {
			backends[k%nodes].Update(k, k*31+r)
			updates++
		}
		// Quiescence flush, as the worker does when its inbox drains.
		for _, b := range backends {
			b.Flush()
		}
		updDur += time.Since(start)
		mid := clu.Transport().Stats()
		mirrorMsgs += mid.Messages - before.Messages

		start = time.Now()
		for _, b := range backends {
			if _, err := b.SnapshotPrepare(int64(r + 1)); err != nil {
				panic(err)
			}
		}
		ckptDur += time.Since(start)
		after := clu.Transport().Stats()
		ckptMsgs += after.Messages - mid.Messages
		ckptOps += after.Ops - mid.Ops
		ckptBytes += after.Bytes - mid.Bytes
	}

	fr := float64(rounds)
	return WireRow{
		Label:           label,
		MsgsPerCkpt:     float64(ckptMsgs) / fr,
		OpsPerCkpt:      float64(ckptOps) / fr,
		KBPerCkpt:       float64(ckptBytes) / fr / 1024,
		CkptMs:          float64(ckptDur.Milliseconds()) / fr,
		MirrorMsgsPer1K: float64(mirrorMsgs) / float64(updates) * 1000,
		UpdateNs:        float64(updDur.Nanoseconds()) / float64(updates),
	}
}

// WireTable renders the wire experiment, appending the codec size
// comparison (wire vs gob bytes per encoded value).
func WireTable(title string, rows []WireRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %12s %12s %12s %10s %16s %12s\n",
		"series", "msgs/ckpt", "ops/ckpt", "KB/ckpt", "ckpt ms", "mirror msgs/1K", "update ns")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12.0f %12.0f %12.1f %10.2f %16.1f %12.0f\n",
			r.Label, r.MsgsPerCkpt, r.OpsPerCkpt, r.KBPerCkpt, r.CkptMs, r.MirrorMsgsPer1K, r.UpdateNs)
	}
	if len(rows) == 2 && rows[1].MsgsPerCkpt > 0 {
		fmt.Fprintf(&b, "message reduction per checkpoint: %.1fx\n",
			rows[0].MsgsPerCkpt/rows[1].MsgsPerCkpt)
	}
	b.WriteString(codecSizes())
	return b.String()
}

// codecSizes compares the wire codec's encoded size against gob for
// representative state values.
func codecSizes() string {
	samples := []struct {
		label string
		v     any
	}{
		{"int 42", 42},
		{"int 1e9", 1_000_000_000},
		{"string(12)", "rider-000042"},
		{"row map(3)", map[string]any{"count": 7, "total": 1234, "zone": "centrum"}},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "codec size (bytes): %-14s %6s %6s\n", "value", "wire", "gob")
	for _, s := range samples {
		enc, err := wire.AppendValue(nil, s.v)
		if err != nil {
			continue
		}
		var gb bytes.Buffer
		v := s.v
		if err := gob.NewEncoder(&gb).Encode(&v); err != nil {
			continue
		}
		fmt.Fprintf(&b, "                    %-14s %6d %6d\n", s.label, len(enc), gb.Len())
	}
	return b.String()
}
