package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/dataflow"
	"squery/internal/metrics"
	"squery/internal/nexmark"
	"squery/internal/partition"
	"squery/internal/qcommerce"
	"squery/internal/sql"
	"squery/internal/tspoon"
)

// Fig8 — source→sink latency distribution of the four state
// configurations on NEXMark query 6, 3 nodes (paper: Figure 8). Expected
// shape: live state costs the most (every update crosses to the KV
// store); the snapshot-only configuration tracks plain Jet closely.
func Fig8(o Options) []Series {
	rate := fig89Rate(o)
	configs := []struct {
		label string
		state core.Config
	}{
		// Every configuration checkpoints (Jet always does); they
		// differ in which *queryable* representations S-QUERY
		// maintains: both, live only (snapshots stay opaque blobs, as
		// in plain Jet), snapshots only, or neither.
		{"S-Query live+snap", core.Config{Live: true, Snapshots: true}},
		{"S-Query live", core.Config{Live: true, JetBlob: true}},
		{"S-Query snap", core.Config{Snapshots: true}},
		{"Jet", core.Config{JetBlob: true}},
	}
	out := make([]Series, 0, len(configs))
	for _, c := range configs {
		run := runNexmark(o, 3, c.state, rate, nil)
		out = append(out, Series{Label: c.label, Summary: run.Latency})
	}
	return out
}

// fig89Rate is the base offered load per source instance for the latency
// experiments: high enough to stress the pipeline, low enough that the
// 1× configuration is comfortably below saturation, with 9× approaching
// it — mirroring the paper's 1M/5M/9M events/s ladder relative to its
// hardware. (This repository's simulated cluster runs inside one process;
// its capacity is a few hundred thousand events/s on a small host.)
func fig89Rate(o Options) float64 {
	if o.Quick {
		return 8_000
	}
	return 15_000
}

// Fig9 — snapshot configuration vs Jet at 1×/5×/9× offered load
// (paper: 1M/5M/9M events/s, Figure 9). Expected shape: nearly identical
// distributions at low load; a single-digit-millisecond gap confined to
// the extreme percentiles at the highest load.
func Fig9(o Options) []Series {
	base := fig89Rate(o)
	var out []Series
	for _, mult := range []float64{1, 5, 9} {
		for _, c := range []struct {
			label string
			state core.Config
		}{
			{"S-Query", core.Config{Snapshots: true}},
			{"Jet", core.Config{JetBlob: true}},
		} {
			run := runNexmark(o, 3, c.state, base*mult, nil)
			out = append(out, Series{
				Label:   fmt.Sprintf("%s %.0fx", c.label, mult),
				Summary: run.Latency,
			})
		}
	}
	return out
}

// Fig10 — snapshot 2PC latency, S-QUERY vs Jet, for 1K/10K/100K unique
// keys on the Q-commerce workload, 7 nodes (Figure 10). Expected shape:
// indistinguishable at 1K keys, a small constant gap at 10K, a larger
// (but bounded) gap at 100K — the cost of writing per-key queryable
// entries instead of one blob.
func Fig10(o Options) []Series {
	var out []Series
	for _, keys := range o.keySweeps() {
		for _, c := range []struct {
			label string
			state core.Config
		}{
			{"S-Query", core.Config{Snapshots: true}},
			{"Jet", core.Config{JetBlob: true}},
		} {
			run := runQCommerce(o, 7, keys, c.state, 0, "")
			out = append(out, Series{
				Label:   fmt.Sprintf("%s %dk", c.label, keys/1000),
				Summary: run.Total2PC,
			})
		}
	}
	return out
}

// Fig11 — snapshot 2PC latency with vs without two concurrent full-speed
// Query-1 threads (Figure 11). Expected shape: negligible difference at
// small key counts, up to a bounded extra latency at 100K keys.
func Fig11(o Options) []Series {
	var out []Series
	for _, keys := range o.keySweeps() {
		for _, c := range []struct {
			label   string
			threads int
		}{
			{"No Query", 0},
			{"Query", 2},
		} {
			run := runQCommerce(o, 7, keys, core.Config{Snapshots: true}, c.threads, qcommerce.Query1)
			out = append(out, Series{
				Label:   fmt.Sprintf("%s %dk", c.label, keys/1000),
				Summary: run.Total2PC,
			})
		}
	}
	return out
}

// deltaKeys returns the number of keys Fig12/Fig13 sweeps use.
func (o Options) deltaTotalKeys() int {
	if o.Quick {
		return 5_000
	}
	return 50_000
}

// deltaInterval is the checkpoint interval of the delta-ratio experiment:
// long enough that offered_rate × interval covers the whole key set, so a
// nominal 100% delta really dirties ~100% of keys per checkpoint.
func (o Options) deltaInterval() time.Duration {
	if o.Quick {
		return 150 * time.Millisecond
	}
	return time.Second
}

// deltaMeasure gives the delta experiment enough wall time for several
// checkpoints at the longer interval.
func (o Options) deltaMeasure() time.Duration {
	if o.Quick {
		return 700 * time.Millisecond
	}
	return 6 * time.Second
}

// Fig12 — 2PC latency of incremental snapshots at 1%/10%/100% delta
// ratios vs full snapshots (Figure 12). Expected shape: small deltas are
// much cheaper than full snapshots; at 100% delta the per-key chain
// housekeeping makes incremental comparable to (or more expensive than) a
// full snapshot. The key count and interval are chosen so the offered
// update rate actually touches the whole hot set between checkpoints —
// otherwise the nominal delta ratio would overstate the real one.
func Fig12(o Options) []Series {
	keys := o.deltaTotalKeys()
	var out []Series
	for _, delta := range []float64{0.01, 0.10, 1.00} {
		run := runDeltaWorkload(o, keys, delta, core.Config{Snapshots: true, Incremental: true})
		out = append(out, Series{
			Label:   fmt.Sprintf("%.0f%% delta", delta*100),
			Summary: run.Total2PC,
		})
	}
	full := runDeltaWorkload(o, keys, 1.0, core.Config{Snapshots: true})
	out = append(out, Series{Label: "Full snapshot", Summary: full.Total2PC})
	return out
}

// runDeltaWorkload drives a synthetic stateful job over `keys` keys where,
// after an initial full population, only the first delta*keys keys keep
// being updated — giving precise control over the per-checkpoint change
// ratio (the knob of Figures 12 and 13).
func runDeltaWorkload(o Options, keys int, delta float64, state core.Config) qcommerceRun {
	nodes := 7
	clu := cluster.New(cluster.Config{Nodes: nodes})
	hot := int64(float64(keys) * delta)
	if hot < 1 {
		hot = 1
	}
	total := int64(keys)
	par := nodes
	src := dataflow.GeneratorSource("updates", par, 25_000, func(instance int, seq int64) (dataflow.Record, bool) {
		g := seq*int64(par) + int64(instance)
		var key int64
		if g < total {
			key = g // initial population covers every key
		} else {
			key = g % hot // steady state touches only the hot set
		}
		return dataflow.Record{Key: key, Value: g}, true
	})
	dag := dataflow.NewDAG().
		AddVertex(src).
		AddVertex(dataflow.StatefulMapVertex("deltastate", nodes*2,
			func(st any, rec dataflow.Record) (any, []dataflow.Record) {
				return rec.Value, []dataflow.Record{rec}
			})).
		AddVertex(dataflow.LatencySinkVertex("sink", nodes, metrics.NewHistogram())).
		Connect("updates", "deltastate", dataflow.EdgePartitioned).
		Connect("deltastate", "sink", dataflow.EdgePartitioned)
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "delta",
		Cluster:          clu,
		State:            state,
		SnapshotInterval: o.deltaInterval(),
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	deadline := time.Now().Add(60 * time.Second)
	for job.SourceMeter().Count() < uint64(total) || job.Manager().Registry().LatestCommitted() < 2 {
		if time.Now().After(deadline) {
			panic("experiments: delta workload did not warm up")
		}
		time.Sleep(time.Millisecond)
	}
	job.SnapshotPhase1().Reset()
	job.SnapshotTotal().Reset()
	c0 := job.Manager().Registry().LatestCommitted()
	time.Sleep(o.deltaMeasure())
	// Hold the window open until whole checkpoints landed in it: under
	// heavy instrumentation (the race detector) a commit can outlast the
	// nominal measure time, which would leave the histograms empty.
	deadline = time.Now().Add(60 * time.Second)
	for job.Manager().Registry().LatestCommitted() < c0+2 {
		if time.Now().After(deadline) {
			panic("experiments: delta workload measured no checkpoints")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return qcommerceRun{
		Phase1:   job.SnapshotPhase1().Snapshot(),
		Total2PC: job.SnapshotTotal().Snapshot(),
		Events:   job.SourceMeter().Count(),
	}
}

// Fig13 — Query-1 execution latency on full vs incremental snapshots for
// the key sweep (Figure 13). Expected shape: identical at small key
// counts; incremental pays a multiple at the largest count because the
// differential read walks version chains.
func Fig13(o Options) []Series {
	var out []Series
	for _, keys := range o.keySweeps() {
		for _, c := range []struct {
			label string
			state core.Config
		}{
			{"Incremental", core.Config{Snapshots: true, Incremental: true}},
			{"Full", core.Config{Snapshots: true}},
		} {
			run := runQCommerce(o, 7, keys, c.state, 1, qcommerce.Query1)
			out = append(out, Series{
				Label:   fmt.Sprintf("%s %dk", c.label, keys/1000),
				Summary: run.Query,
			})
		}
	}
	return out
}

// Fig14Row is one point of the direct-object throughput comparison.
type Fig14Row struct {
	System       string
	KeysSelected int
	QueriesPerS  float64
}

// Fig14 — direct-object query throughput vs number of keys selected
// (1/10/100/1000 of 100K rider locations), S-QUERY vs the TSpoon baseline
// (Figure 14). Expected shape: both follow a power law; S-QUERY leads by
// ~2× at 1 key and the two converge as the per-key work dominates.
func Fig14(o Options) []Fig14Row {
	const totalKeys = 100_000
	keys := totalKeys
	if o.Quick {
		keys = 20_000
	}
	threads := 16
	dur := o.measure()

	// S-QUERY side: rider-location state in the KV store.
	clu := cluster.New(cluster.Config{Nodes: 3})
	view := clu.NodeView(0)
	for i := 0; i < keys; i++ {
		view.Put(core.LiveMapName("riderlocation"), qcommerce.RiderKey(int64(i)), qcommerce.RiderLocation{
			Lat: 52.1, Lon: 4.4, UpdatedAt: time.Now(),
		})
	}
	// TSpoon side: the same state behind read-only transactions.
	tsp := tspoon.New(clu.Partitioner(), 3)
	for i := 0; i < keys; i++ {
		tsp.Apply(qcommerce.RiderKey(int64(i)), qcommerce.RiderLocation{
			Lat: 52.1, Lon: 4.4, UpdatedAt: time.Now(),
		})
	}

	var out []Fig14Row
	client := clu.ClientView()
	for _, sel := range []int{1, 10, 100, 1000} {
		keySets := selectionKeys(keys, sel)
		sq := measureQPS(threads, dur, func(worker, i int) {
			ks := keySets[(worker+i)%len(keySets)]
			client.GetAll(core.LiveMapName("riderlocation"), ks)
		})
		ts := measureQPS(threads, dur, func(worker, i int) {
			ks := keySets[(worker+i)%len(keySets)]
			tsp.Query(ks)
		})
		out = append(out,
			Fig14Row{System: "S-Query", KeysSelected: sel, QueriesPerS: sq},
			Fig14Row{System: "TSpoon", KeysSelected: sel, QueriesPerS: ts},
		)
	}
	return out
}

// selectionKeys builds a few rotating key sets of the given size.
func selectionKeys(total, sel int) [][]partition.Key {
	const sets = 8
	out := make([][]partition.Key, sets)
	for s := 0; s < sets; s++ {
		ks := make([]partition.Key, sel)
		for i := 0; i < sel; i++ {
			ks[i] = qcommerce.RiderKey(int64((s*7919 + i*104729) % total))
		}
		out[s] = ks
	}
	return out
}

// measureQPS runs fn from `threads` goroutines for dur and returns
// queries/second.
func measureQPS(threads int, dur time.Duration, fn func(worker, i int)) float64 {
	var count atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fn(worker, i)
				count.Add(1)
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return float64(count.Load()) / time.Since(start).Seconds()
}

// Fig15Row is one point of the scalability experiment.
type Fig15Row struct {
	Nodes          int
	DOP            int
	Interval       time.Duration
	MaxThroughput  float64 // events/s
	NormalizedKEPS float64 // k events/s per DOP
}

// Fig15 — maximum sustainable throughput vs degrees of parallelism for
// 0.5×/1×/2× snapshot intervals, with 10 SQL queries/s running against
// the job's state (Figure 15). Expected shape: throughput scales linearly
// with DOP; shorter snapshot intervals shave a few percent off.
func Fig15(o Options) []Fig15Row {
	nodesSweep := []int{3, 5, 7}
	if o.Quick {
		nodesSweep = []int{3, 5}
	}
	base := o.interval()
	var out []Fig15Row
	for _, nodes := range nodesSweep {
		for _, mult := range []float64{0.5, 1, 2} {
			interval := time.Duration(float64(base) * mult)
			run := runScalability(o, nodes, interval)
			dop := nodes * 4
			out = append(out, Fig15Row{
				Nodes:          nodes,
				DOP:            dop,
				Interval:       interval,
				MaxThroughput:  run,
				NormalizedKEPS: run / float64(dop) / 1000,
			})
		}
	}
	return out
}

// runScalability measures achieved (sustainable) throughput of NEXMark q6
// running unthrottled with 10 snapshot-state SQL queries per second.
//
// Caveat (also in EXPERIMENTS.md): the simulated nodes share the host's
// real cores, so wall-clock throughput only scales with DOP while DOP ≤
// GOMAXPROCS. On smaller hosts the measurable effect that remains is the
// paper's secondary finding — shorter snapshot intervals cost a few
// percent of sustainable throughput.
func runScalability(o Options, nodes int, interval time.Duration) float64 {
	clu := cluster.New(cluster.Config{Nodes: nodes})
	hist := metrics.NewHistogram()
	cfg := nexmark.Config{
		Sellers:             10_000,
		SourceParallelism:   nodes,
		OperatorParallelism: nodes * 3,
	}
	if o.Quick {
		cfg.Sellers = 1_000
	}
	dag := nexmark.Query6DAG(cfg, hist)
	job, err := dataflow.Run(dag, dataflow.Config{
		Name:             "scalability",
		Cluster:          clu,
		State:            core.Config{Snapshots: true},
		SnapshotInterval: interval,
	})
	if err != nil {
		panic(err)
	}
	defer job.Stop()

	cat := core.NewCatalog(clu.Store())
	if err := cat.RegisterJob(job.Manager().Registry(), job.StatefulOperators()...); err != nil {
		panic(err)
	}
	ex := sql.NewExecutor(cat, nodes)

	// 10 queries/s against the job's snapshot state.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		seller := int64(0)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if job.Manager().Registry().LatestCommitted() == 0 {
					continue
				}
				seller++
				// Errors only mean the snapshot raced a prune; the
				// load matters, not the result.
				_, _ = ex.Query(nexmark.SellerPricesQuery(seller % cfg.Sellers))
			}
		}
	}()

	time.Sleep(o.warmup())
	meter := job.SourceMeter()
	meter.Reset()
	time.Sleep(o.measure())
	rate := meter.Rate()
	close(stop)
	qwg.Wait()
	return rate
}
