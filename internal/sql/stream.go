package sql

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/core"
	"squery/internal/metrics"
)

// The streaming physical pipeline. A compiled physPlan executes as a
// chain of goroutine stages connected by bounded channels of row
// batches: partition scans fan out per node and stream batches as they
// fill, joins and the residual filter transform batches in flight, and
// the output stage (project or aggregate) consumes them. Nothing
// materializes the whole working set — a LIMIT that fills, or the first
// error, cancels the shared done channel and every upstream scan stops
// at its next batch boundary.

// scanBatchRows is the flush threshold for streamed scan batches: small
// enough that a LIMIT query stops scans after a handful of rows, large
// enough that channel traffic stays off the per-row path.
const scanBatchRows = 128

// scanBatch is one shipment of scanned rows from a node goroutine. bytes
// is its estimated footprint, accounted in the run's memAccount from send
// to consumption.
type scanBatch struct {
	rows  []core.TableRow
	bytes int64
	err   error
}

// rowBatch is one shipment of working-set rows between pipeline stages.
type rowBatch struct {
	rows  []joinedRow
	bytes int64
	err   error
}

// runCtx is the per-execution state every pipeline stage shares.
type runCtx struct {
	ctx  *evalCtx // read-only, safe across goroutines
	opts ExecOpts
	deg  *degrades
	// Resource accounting: estimated bytes shipped across the client hop
	// and the in-flight batch memory high-water mark (sys.queries).
	shippedBytes atomic.Int64
	mem          memAccount
	// done, once closed, tells every stage and partition scan to stop:
	// the limit filled, an error surfaced, or the consumer is finished.
	done chan struct{}
	once sync.Once
}

func newRunCtx(opts ExecOpts) *runCtx {
	return &runCtx{
		ctx:  &evalCtx{now: time.Now()},
		opts: opts,
		deg:  &degrades{},
		done: make(chan struct{}),
	}
}

// cancel stops the pipeline (idempotent).
func (rc *runCtx) cancel() { rc.once.Do(func() { close(rc.done) }) }

// streamScan fans source si out over the cluster, one goroutine per node
// that owns at least one selected partition, and streams scanBatches as
// they fill. The pushed predicate and column projection run inside
// ScanPartitionSpec on the owning node — only surviving, projected rows
// cross the client hop. Pruned/unowned nodes get no goroutine and no hop.
func (ex *Executor) streamScan(pp *physPlan, si int, rc *runCtx) <-chan scanBatch {
	nodes := ex.clusterNodes()
	ch := make(chan scanBatch, nodes)
	s := &pp.srcs[si]
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		parts := ex.ownedPartitions(*s, n)
		if len(parts) == 0 {
			continue
		}
		wg.Add(1)
		go func(node int, parts []int) {
			defer wg.Done()
			s.ref.ChargeClientHop(node)
			var (
				examined int64
				evalErr  error
				buf      []core.TableRow
			)
			// send gives cancellation priority: once done closes, a
			// blocked sender must not win the send race against the
			// final drain and go on to scan further partitions.
			send := func(b scanBatch) bool {
				select {
				case <-rc.done:
					return false
				default:
				}
				select {
				case ch <- b:
					return true
				case <-rc.done:
					return false
				}
			}
			flush := func() bool {
				if len(buf) == 0 {
					return true
				}
				b := scanBatch{rows: buf, bytes: estimateBatchBytes(buf)}
				buf = nil
				rc.shippedBytes.Add(b.bytes)
				rc.mem.grab(b.bytes)
				if !send(b) {
					rc.mem.release(b.bytes)
					return false
				}
				return true
			}
			for _, p := range parts {
				select {
				case <-rc.done:
					return
				default:
				}
				sw := metrics.StartStopwatch()
				exBefore := examined
				var emitted int64
				if rc.opts.Policy == PolicyNone {
					spec := pp.spec(si, rc.ctx, rc.done, &examined, &evalErr)
					stopped := false
					s.ref.ScanPartitionSpec(p, spec, func(r core.TableRow) bool {
						buf = append(buf, r)
						emitted++
						if len(buf) >= scanBatchRows && !flush() {
							stopped = true
							return false
						}
						return true
					})
					if pp.pushed[si] == nil {
						examined += emitted
					}
					ex.recordPartScan(s, p, examined-exBefore, emitted, sw.Elapsed())
					if evalErr != nil {
						send(scanBatch{err: evalErr})
						return
					}
					if stopped {
						return
					}
				} else {
					rows, err := ex.gatherPartition(pp, si, p, &examined, rc)
					emitted = int64(len(rows))
					if pp.pushed[si] == nil {
						examined += emitted
					}
					ex.recordPartScan(s, p, examined-exBefore, emitted, sw.Elapsed())
					if err != nil {
						send(scanBatch{err: err})
						return
					}
					buf = append(buf, rows...)
				}
				// Flush at partition boundaries too, so short partitions
				// don't sit in the buffer while the limit stage waits.
				if !flush() {
					return
				}
			}
			flush()
		}(n, parts)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// drain empties a channel until the upstream closes it. Every stage
// defers close(out) FIRST and drain(in) SECOND, so on return the drain
// runs before the close: when a stage's output closes, every upstream
// goroutine has already exited — the final consumer joins the whole
// pipeline just by draining one channel.
func drain[T any](in <-chan T) {
	for range in {
	}
}

// streamBase adapts the base table's scanBatches into single-source
// joinedRow batches.
func streamBase(pp *physPlan, in <-chan scanBatch, rc *runCtx) <-chan rowBatch {
	out := make(chan rowBatch, cap(in))
	go func() {
		defer close(out)
		defer drain(in)
		for sb := range in {
			// The joined rows reference the scan batch's backing rows, so
			// the footprint transfers downstream rather than re-accruing.
			b := rowBatch{err: sb.err, bytes: sb.bytes}
			if sb.err == nil {
				b.rows = make([]joinedRow, len(sb.rows))
				for i := range sb.rows {
					tabs := make([]*core.TableRow, len(pp.srcs))
					tabs[0] = &sb.rows[i]
					b.rows[i] = joinedRow{srcs: pp.srcs, tabs: tabs}
				}
			}
			select {
			case out <- b:
			case <-rc.done:
				rc.mem.release(b.bytes)
				return
			}
			if sb.err != nil {
				rc.cancel()
				return
			}
		}
	}()
	return out
}

// streamCoJoin runs the co-partitioned USING(partitionKey) join: one
// goroutine per node, each joining only the partitions it owns — both
// sides of a partition live on the same node (§II co-location), so there
// is no shuffle and no cross-partition hash table. Each partition's join
// output ships as one batch.
func (ex *Executor) streamCoJoin(pp *physPlan, rc *runCtx) <-chan rowBatch {
	nodes := ex.clusterNodes()
	out := make(chan rowBatch, nodes)
	left := &pp.srcs[0]
	jst := pp.join.Stat()
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		parts := ex.ownedPartitions(*left, n)
		if len(parts) == 0 {
			continue
		}
		wg.Add(1)
		go func(node int, parts []int) {
			defer wg.Done()
			left.ref.ChargeClientHop(node)
			send := func(b rowBatch) bool {
				select {
				case <-rc.done:
					return false
				default:
				}
				select {
				case out <- b:
					return true
				case <-rc.done:
					return false
				}
			}
			for _, p := range parts {
				select {
				case <-rc.done:
					return
				default:
				}
				rrows, err := ex.gatherSide(pp, 1, p, rc)
				if err != nil {
					send(rowBatch{err: err})
					return
				}
				lrows, err := ex.gatherSide(pp, 0, p, rc)
				if err != nil {
					send(rowBatch{err: err})
					return
				}
				sw := metrics.StartStopwatch()
				idx := make(map[joinKey][]*core.TableRow, len(rrows))
				for i := range rrows {
					k := makeJoinKey(rrows[i].Key)
					idx[k] = append(idx[k], &rrows[i])
				}
				var b rowBatch
				for i := range lrows {
					for _, m := range idx[makeJoinKey(lrows[i].Key)] {
						b.rows = append(b.rows, joinedRow{
							srcs: pp.srcs,
							tabs: []*core.TableRow{&lrows[i], m},
						})
					}
				}
				jst.Rows.Add(int64(len(b.rows)))
				jst.WallNs.Add(int64(sw.Elapsed()))
				if len(b.rows) == 0 {
					continue
				}
				b.bytes = estimateJoinedBatchBytes(b.rows)
				rc.mem.grab(b.bytes)
				if !send(b) {
					rc.mem.release(b.bytes)
					return
				}
			}
		}(n, parts)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// gatherSide materializes one partition of one source (policy-guarded
// when requested), with the pushed filter and projection applied
// node-side, and records the partition scan.
func (ex *Executor) gatherSide(pp *physPlan, si, p int, rc *runCtx) ([]core.TableRow, error) {
	s := &pp.srcs[si]
	sw := metrics.StartStopwatch()
	var examined int64
	rows, err := ex.gatherPartition(pp, si, p, &examined, rc)
	if pp.pushed[si] == nil {
		examined = int64(len(rows))
	}
	ex.recordPartScan(s, p, examined, int64(len(rows)), sw.Elapsed())
	rc.shippedBytes.Add(estimateBatchBytes(rows))
	return rows, err
}

// hashJoinStage is the general equi-join stage: it materializes the
// right (joined) side into a hash table, then probes with the incoming
// left batches as they arrive. Only the build side materializes; the
// probe side streams through.
func (ex *Executor) hashJoinStage(pp *physPlan, ji int, in <-chan rowBatch, rc *runCtx) <-chan rowBatch {
	out := make(chan rowBatch, cap(in))
	go func() {
		defer close(out)
		defer drain(in)
		j := pp.stmt.Joins[ji]
		si := ji + 1
		hst := pp.hjoins[ji].Stat()
		fail := func(err error) {
			select {
			case out <- rowBatch{err: err}:
			case <-rc.done:
			}
			rc.cancel()
		}
		leftKey, rightKey, err := joinKeys(j, pp.srcs, si)
		if err != nil {
			fail(err)
			return
		}
		// Build side: gather the joined table via its own scatter scan.
		// Its batches are retained in the hash table for the stage's whole
		// life, so their footprint stays accounted until the stage exits.
		var right []core.TableRow
		var buildBytes int64
		defer func() { rc.mem.release(buildBytes) }()
		for sb := range ex.streamScan(pp, si, rc) {
			if sb.err != nil {
				fail(sb.err)
				return
			}
			right = append(right, sb.rows...)
			buildBytes += sb.bytes
		}
		sw := metrics.StartStopwatch()
		idx := make(map[joinKey][]*core.TableRow, len(right))
		for i := range right {
			v, ok := right[i].Field(rightKey)
			if !ok {
				fail(fmt.Errorf("sql: join column %q not found in %s", rightKey, pp.srcs[si].name))
				return
			}
			k := makeJoinKey(v)
			idx[k] = append(idx[k], &right[i])
		}
		hst.WallNs.Add(int64(sw.Elapsed()))
		for b := range in {
			if b.err != nil {
				select {
				case out <- b:
				case <-rc.done:
				}
				rc.cancel()
				return
			}
			sw := metrics.StartStopwatch()
			var ob rowBatch
			for _, lr := range b.rows {
				v, ok := lr.Resolve("", leftKey)
				if !ok {
					fail(fmt.Errorf("sql: join column %q not found on left side", leftKey))
					return
				}
				matches := idx[makeJoinKey(v)]
				if len(matches) == 0 {
					if j.Left {
						ob.rows = append(ob.rows, lr) // right side stays nil
					}
					continue
				}
				for _, m := range matches {
					tabs := make([]*core.TableRow, len(pp.srcs))
					copy(tabs, lr.tabs)
					tabs[si] = m
					ob.rows = append(ob.rows, joinedRow{srcs: pp.srcs, tabs: tabs})
				}
			}
			hst.Rows.Add(int64(len(ob.rows)))
			hst.WallNs.Add(int64(sw.Elapsed()))
			rc.mem.release(b.bytes)
			if len(ob.rows) == 0 {
				continue
			}
			ob.bytes = estimateJoinedBatchBytes(ob.rows)
			rc.mem.grab(ob.bytes)
			select {
			case out <- ob:
			case <-rc.done:
				rc.mem.release(ob.bytes)
				return
			}
		}
	}()
	return out
}

// run executes a compiled plan: assemble the stage chain, consume it
// through the output stage, then cancel and drain so every pipeline
// goroutine has exited before the result returns (queries never leak
// scans, and metrics are settled when the caller reads them).
func (ex *Executor) run(pp *physPlan, rc *runCtx) (*Result, error) {
	var stream <-chan rowBatch
	switch {
	case pp.coPart:
		stream = ex.streamCoJoin(pp, rc)
	default:
		stream = streamBase(pp, ex.streamScan(pp, 0, rc), rc)
		if !pp.coPart && len(pp.srcs) > 1 {
			for ji := range pp.stmt.Joins {
				stream = ex.hashJoinStage(pp, ji, stream, rc)
			}
		}
	}
	var res *Result
	var err error
	if pp.agg != nil {
		res, err = ex.aggregateStream(pp, stream, rc)
	} else {
		res, err = ex.projectStream(pp, stream, rc)
	}
	rc.cancel()
	drain(stream)
	return res, err
}

// applyResidual runs the client-side residual filter over a batch in
// place. No-op (and no Filter node) when everything was pushed down.
func (ex *Executor) applyResidual(pp *physPlan, rc *runCtx, b *rowBatch) error {
	if pp.filter == nil {
		return nil
	}
	st := pp.filter.Stat()
	sw := metrics.StartStopwatch()
	kept := b.rows[:0]
	for _, r := range b.rows {
		v, err := rc.ctx.eval(pp.residual, r)
		if err != nil {
			return err
		}
		if keep, ok := truthy(v); ok && keep {
			kept = append(kept, r)
		}
	}
	st.In.Add(int64(len(b.rows)))
	st.Rows.Add(int64(len(kept)))
	st.WallNs.Add(int64(sw.Elapsed()))
	b.rows = kept
	return nil
}

// projectStream is the non-aggregate output stage: evaluate the select
// list per row as batches arrive. Unsorted LIMIT queries stop consuming
// the moment the limit fills and — when the plan allows early stop —
// cancel every in-flight scan. ORDER BY materializes the projected rows
// (not the working set) before sorting.
func (ex *Executor) projectStream(pp *physPlan, in <-chan rowBatch, rc *runCtx) (*Result, error) {
	stmt := pp.stmt
	res := &Result{}
	pst := pp.proj.Stat()

	hasStar := false
	for _, it := range stmt.Items {
		if it.Star {
			hasStar = true
		}
	}
	// Expand * lazily from the first row's schema; an empty result keeps
	// just the concrete columns.
	var starCols [][2]string // (qualifier, column)
	headerDone := false
	buildHeader := func(first *joinedRow) {
		if hasStar && first != nil {
			for i, t := range first.tabs {
				if t == nil {
					continue
				}
				for _, c := range t.Columns() {
					starCols = append(starCols, [2]string{pp.srcs[i].alias, c})
				}
			}
		}
		for _, it := range stmt.Items {
			if it.Star {
				for _, sc := range starCols {
					res.Columns = append(res.Columns, sc[1])
				}
				continue
			}
			res.Columns = append(res.Columns, it.OutputName())
		}
		headerDone = true
	}
	if !hasStar {
		buildHeader(nil)
	}

	type outRow struct {
		vals    []any
		sortKey []any
	}
	evalRow := func(r joinedRow) (outRow, error) {
		var o outRow
		for _, it := range stmt.Items {
			if it.Star {
				for _, sc := range starCols {
					v, _ := r.Resolve(sc[0], sc[1])
					o.vals = append(o.vals, v)
				}
				continue
			}
			v, err := rc.ctx.eval(it.Expr, r)
			if err != nil {
				return o, err
			}
			o.vals = append(o.vals, v)
		}
		for _, oi := range stmt.OrderBy {
			v, err := rc.ctx.eval(oi.Expr, r)
			if err != nil {
				return o, err
			}
			o.sortKey = append(o.sortKey, v)
		}
		return o, nil
	}

	ordered := len(stmt.OrderBy) > 0
	limit := stmt.Limit
	if pp.earlyStop && limit == 0 {
		rc.cancel() // LIMIT 0: nothing to scan at all
	}
	var outs []outRow
	filled := false
	for b := range in {
		if b.err != nil {
			return nil, b.err
		}
		if err := ex.applyResidual(pp, rc, &b); err != nil {
			rc.cancel()
			return nil, err
		}
		if filled {
			rc.mem.release(b.bytes)
			continue // only reachable without early stop (e.g. DisablePushdown)
		}
		sw := metrics.StartStopwatch()
		for _, r := range b.rows {
			if !headerDone {
				buildHeader(&r)
			}
			if !ordered && limit >= 0 && len(res.Rows) >= limit {
				filled = true
				break
			}
			o, err := evalRow(r)
			if err != nil {
				rc.cancel()
				return nil, err
			}
			if ordered {
				outs = append(outs, o)
			} else {
				res.Rows = append(res.Rows, o.vals)
			}
		}
		pst.WallNs.Add(int64(sw.Elapsed()))
		rc.mem.release(b.bytes)
		if filled && pp.earlyStop {
			rc.cancel()
			break
		}
	}
	if !headerDone {
		buildHeader(nil)
	}
	if ordered {
		sw := metrics.StartStopwatch()
		sortOutRows(stmt, outs, func(o outRow) []any { return o.sortKey })
		for _, o := range outs {
			if limit >= 0 && len(res.Rows) >= limit {
				break
			}
			res.Rows = append(res.Rows, o.vals)
		}
		pst.WallNs.Add(int64(sw.Elapsed()))
	}
	pst.Rows.Store(int64(len(res.Rows)))
	return res, nil
}

// aggregateStream is the aggregate output stage: group rows as batches
// arrive (GROUP BY keys encode via the self-delimiting binary form, no
// per-key string building), then evaluate HAVING and the select list per
// group. Aggregation consumes the whole stream by nature — there is no
// early stop.
func (ex *Executor) aggregateStream(pp *physPlan, in <-chan rowBatch, rc *runCtx) (*Result, error) {
	stmt := pp.stmt
	for _, it := range stmt.Items {
		if it.Star {
			rc.cancel()
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
	}
	ast := pp.agg.Stat()
	type group struct {
		rows []joinedRow
	}
	groups := map[string]*group{}
	var order []string
	var keyBuf []byte
	for b := range in {
		if b.err != nil {
			return nil, b.err
		}
		if err := ex.applyResidual(pp, rc, &b); err != nil {
			rc.cancel()
			return nil, err
		}
		sw := metrics.StartStopwatch()
		for _, r := range b.rows {
			keyBuf = keyBuf[:0]
			for _, ge := range stmt.GroupBy {
				v, err := rc.ctx.eval(ge, r)
				if err != nil {
					rc.cancel()
					return nil, err
				}
				keyBuf = appendGroupKey(keyBuf, v)
			}
			k := string(keyBuf)
			g, ok := groups[k]
			if !ok {
				g = &group{}
				groups[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, r)
		}
		ast.In.Add(int64(len(b.rows)))
		ast.WallNs.Add(int64(sw.Elapsed()))
	}
	// A query with aggregates but no GROUP BY aggregates over all rows,
	// producing exactly one row even when the input is empty.
	if len(stmt.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	res := &Result{}
	for _, it := range stmt.Items {
		res.Columns = append(res.Columns, it.OutputName())
	}
	type outRow struct {
		vals    []any
		sortKey []any
	}
	sw := metrics.StartStopwatch()
	outs := make([]outRow, 0, len(order))
	for _, k := range order {
		g := groups[k]
		if stmt.Having != nil {
			hv, err := ex.evalWithAggs(rc.ctx, stmt.Having, g.rows)
			if err != nil {
				return nil, err
			}
			if keep, ok := truthy(hv); !ok || !keep {
				continue
			}
		}
		vals := make([]any, len(stmt.Items))
		for i, it := range stmt.Items {
			v, err := ex.evalWithAggs(rc.ctx, it.Expr, g.rows)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		var sortKey []any
		for _, oi := range stmt.OrderBy {
			v, err := ex.evalWithAggs(rc.ctx, oi.Expr, g.rows)
			if err != nil {
				return nil, err
			}
			sortKey = append(sortKey, v)
		}
		outs = append(outs, outRow{vals: vals, sortKey: sortKey})
	}
	sortOutRows(stmt, outs, func(o outRow) []any { return o.sortKey })
	for _, o := range outs {
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
		res.Rows = append(res.Rows, o.vals)
	}
	ast.WallNs.Add(int64(sw.Elapsed()))
	ast.Rows.Store(int64(len(res.Rows)))
	return res, nil
}
