package sql

import (
	"testing"
	"time"

	"squery/internal/core"
)

// TestSubscribeSeedFailureReturns: a standing query whose evaluation
// fails during the snapshot seed — before the applier goroutine exists —
// must return the error instead of deadlocking in its own teardown
// (Close waits for an applier that was never started). Regression: this
// hung the REPL's \watch forever on a GROUP BY over a column the table
// doesn't carry.
func TestSubscribeSeedFailureReturns(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	f.ex.SetArrangements(core.NewArrangeRegistry(f.store))

	type res struct {
		sq  *StandingQuery
		err error
	}
	done := make(chan res, 1)
	go func() {
		sq, err := f.ex.SubscribeQuery(
			`SELECT COUNT(*), deliveryZone FROM orderstate GROUP BY deliveryZone`,
			func(SubEvent) {})
		done <- res{sq, err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			// The dialect may legally evaluate a missing column as null;
			// then the subscription must simply work and tear down.
			r.sq.Close()
			t.Skip("seed did not fail; nothing to regress")
		}
		t.Logf("seed failure surfaced as: %v", r.err)
	case <-time.After(10 * time.Second):
		t.Fatal("SubscribeQuery deadlocked on a seed-time failure")
	}

	// The failed attach must not leak its arrangement: a fresh reader
	// starts from refs 0 (Infos drops torn-down arrangements).
	if infos := f.ex.arr.Infos(); len(infos) != 0 {
		t.Fatalf("failed subscribe leaked arrangements: %+v", infos)
	}
}
