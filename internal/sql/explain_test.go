package sql

import (
	"strings"
	"testing"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/partition"
)

func TestExplainSingleTable(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	plan, err := f.ex.Explain(`SELECT deliveryZone FROM orderinfo WHERE customerLat > 50 ORDER BY deliveryZone LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"scan orderinfo",
		"live (read uncommitted)",
		"filter (customerLat > 50)",
		"sort deliveryZone ASC",
		"limit 3",
		"project deliveryZone",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainCoPartitionedJoin(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	plan, err := f.ex.Explain(`SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE orderState='NOTIFIED' GROUP BY deliveryZone`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"snapshot @ ssid 1 (latest committed)",
		"co-partitioned per-partition hash join",
		"aggregate GROUP BY deliveryZone",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainGlobalJoinAndPinnedSSID(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	plan, err := f.ex.Explain(`SELECT COUNT(*) FROM "snapshot_orderinfo" AS a JOIN "snapshot_orderstate" AS b ON a.partitionKey = b.partitionKey WHERE a.ssid = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "global hash join") {
		t.Errorf("plan missing global join:\n%s", plan)
	}
	if !strings.Contains(plan, "(pinned)") {
		t.Errorf("plan missing pinned ssid note:\n%s", plan)
	}
	if !strings.Contains(plan, "aggregate (single group)") {
		t.Errorf("plan missing single-group aggregate:\n%s", plan)
	}
}

func TestExplainErrors(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	if _, err := f.ex.Explain(`SELECT FROM`); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := f.ex.Explain(`SELECT x FROM nosuchtable`); err == nil {
		t.Error("unknown table not surfaced")
	}
	// Unresolvable snapshot (none committed) still explains, with a note.
	p := partition.New(8)
	store := kv.NewStore(p, partition.Assign(8, 1), nil)
	mgr := core.NewManager(store, 2)
	cat := core.NewCatalog(store)
	if err := cat.RegisterJob(mgr.Registry(), "bare"); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cat, 1)
	plan, err := ex.Explain(`SELECT count FROM snapshot_bare`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "unresolvable now") {
		t.Errorf("plan missing unresolvable note:\n%s", plan)
	}
}
