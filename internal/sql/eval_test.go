package sql

import (
	"testing"
	"testing/quick"
	"time"
)

type mapResolver map[string]any

func (m mapResolver) Resolve(table, col string) (any, bool) {
	v, ok := m[col]
	return v, ok
}

func evalWhere(t *testing.T, where string, row mapResolver) any {
	t.Helper()
	stmt := mustParse(t, `SELECT a FROM t WHERE `+where)
	ctx := &evalCtx{now: time.Now()}
	v, err := ctx.eval(stmt.Where, row)
	if err != nil {
		t.Fatalf("eval(%q): %v", where, err)
	}
	return v
}

func TestEvalComparisons(t *testing.T) {
	row := mapResolver{"x": 5, "s": "abc", "f": 2.5, "b": true}
	cases := []struct {
		where string
		want  any
	}{
		{`x = 5`, true},
		{`x != 5`, false},
		{`x < 6`, true},
		{`x <= 5`, true},
		{`x > 5`, false},
		{`x >= 6`, false},
		{`x <> 4`, true},
		{`s = 'abc'`, true},
		{`s < 'abd'`, true},
		{`f > 2`, true},
		{`f = 2.5`, true},
		{`b = TRUE`, true},
		{`x = 5 AND s = 'abc'`, true},
		{`x = 4 OR s = 'abc'`, true},
		{`NOT x = 4`, true},
		{`x + 1 = 6`, true},
		{`x * 2 = 10`, true},
		{`x - 7 = -2`, true},
		{`x / 2 = 2.5`, true},
		{`x % 2 = 1`, true},
		{`-x = -5`, true},
	}
	for _, c := range cases {
		if got := evalWhere(t, c.where, row); got != c.want {
			t.Errorf("eval(%q) = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestEvalIntFloatCoercion(t *testing.T) {
	row := mapResolver{"i": int64(3), "i32": int32(3), "u": uint64(3), "f": 3.0}
	for _, w := range []string{`i = f`, `i32 = 3`, `u = 3`, `i = i32`, `f = u`} {
		if got := evalWhere(t, w, row); got != true {
			t.Errorf("eval(%q) = %v, want true", w, got)
		}
	}
}

func TestEvalNullSemantics(t *testing.T) {
	row := mapResolver{"n": nil, "x": 1}
	cases := []struct {
		where string
		want  any
	}{
		{`n IS NULL`, true},
		{`n IS NOT NULL`, false},
		{`x IS NULL`, false},
		{`n = 1`, nil}, // comparisons with NULL are NULL
		{`n = 1 AND x = 1`, nil},
		{`n = 1 OR x = 1`, true},   // TRUE OR NULL = TRUE
		{`n = 1 AND x = 2`, false}, // FALSE AND NULL = FALSE
	}
	for _, c := range cases {
		if got := evalWhere(t, c.where, row); got != c.want {
			t.Errorf("eval(%q) = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestEvalInBetweenLike(t *testing.T) {
	row := mapResolver{"s": "VENDOR_ACCEPTED", "x": 5}
	cases := []struct {
		where string
		want  any
	}{
		{`s IN ('NOTIFIED', 'VENDOR_ACCEPTED')`, true},
		{`s NOT IN ('NOTIFIED', 'ACCEPTED')`, true},
		{`x IN (1, 2, 3)`, false},
		{`x BETWEEN 1 AND 5`, true},
		{`x BETWEEN 6 AND 9`, false},
		{`x NOT BETWEEN 6 AND 9`, true},
		{`s LIKE 'VENDOR%'`, true},
		{`s LIKE '%ACCEPTED'`, true},
		{`s LIKE '%DOR_ACC%'`, true},
		{`s LIKE 'V_NDOR%'`, true},
		{`s LIKE 'X%'`, false},
		{`s NOT LIKE 'X%'`, true},
	}
	for _, c := range cases {
		if got := evalWhere(t, c.where, row); got != c.want {
			t.Errorf("eval(%q) = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestEvalTimestamps(t *testing.T) {
	past := time.Now().Add(-time.Hour)
	future := time.Now().Add(time.Hour)
	row := mapResolver{"past": past, "future": future}
	if got := evalWhere(t, `past < LOCALTIMESTAMP`, row); got != true {
		t.Errorf("past < now = %v", got)
	}
	if got := evalWhere(t, `future < LOCALTIMESTAMP`, row); got != false {
		t.Errorf("future < now = %v", got)
	}
	if got := evalWhere(t, `past < future`, row); got != true {
		t.Errorf("past < future = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	ctx := &evalCtx{now: time.Now()}
	row := mapResolver{"s": "str", "x": 1}
	bad := []string{
		`nosuchcol = 1`,
		`s < 5`,
		`s + 1 = 2`,
		`x / 0 = 1`,
		`x % 0 = 1`,
	}
	for _, w := range bad {
		stmt := mustParse(t, `SELECT a FROM t WHERE `+w)
		if _, err := ctx.eval(stmt.Where, row); err == nil {
			t.Errorf("eval(%q) succeeded, want error", w)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%%", true},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ppx", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

// Property: compare is antisymmetric and consistent with equality for
// integers.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int32) bool {
		c1, err1 := compare(int(a), int64(b))
		c2, err2 := compare(int64(b), int(a))
		if err1 != nil || err2 != nil {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (a == b) == (c1 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: likeMatch with pattern == the string itself (no wildcards in
// it) is true, and prefix% matches.
func TestLikeProperties(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' {
				clean += string(r)
			}
		}
		if !likeMatch(clean, clean) {
			return false
		}
		if len(clean) > 0 && !likeMatch(clean, clean[:1]+"%") && clean[0] != '%' {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
