package sql

import (
	"fmt"
	"testing"
	"time"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/partition"
)

// orderInfo / orderState mirror the Delivery Hero schema of §VIII.
type orderInfo struct {
	DeliveryZone   string
	VendorCategory string
	CustomerLat    float64
}

type orderState struct {
	OrderState    string
	LateTimestamp time.Time
}

// fixture builds a 3-node store with the two Delivery Hero operators,
// snapshots their state at ssid 1, applies some live-only updates, and
// returns an executor.
type fixture struct {
	store *kv.Store
	cat   *core.Catalog
	mgr   *core.Manager
	ex    *Executor
	info  *core.Backend
	state *core.Backend
}

func newFixture(t testing.TB, n int, cfg core.Config) *fixture {
	t.Helper()
	p := partition.New(32)
	store := kv.NewStore(p, partition.Assign(32, 3), nil)
	mgr := core.NewManager(store, 2)
	cat := core.NewCatalog(store)
	if err := cat.RegisterJob(mgr.Registry(), "orderinfo", "orderstate"); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"orderinfo", "orderstate"} {
		if err := mgr.RegisterOperator(core.OperatorMeta{Name: op, Parallelism: 1, Config: cfg}); err != nil {
			t.Fatal(err)
		}
	}
	f := &fixture{
		store: store,
		cat:   cat,
		mgr:   mgr,
		ex:    NewExecutor(cat, 3),
		info:  core.NewBackend("orderinfo", 0, store.View(0), cfg),
		state: core.NewBackend("orderstate", 0, store.View(0), cfg),
	}

	zones := []string{"north", "south"}
	cats := []string{"food", "pharmacy"}
	states := []string{"VENDOR_ACCEPTED", "NOTIFIED", "PICKED_UP"}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("order-%d", i)
		f.info.Update(key, orderInfo{
			DeliveryZone:   zones[i%2],
			VendorCategory: cats[i%2],
			CustomerLat:    52.0 + float64(i),
		})
		f.state.Update(key, orderState{
			OrderState:    states[i%3],
			LateTimestamp: time.Now().Add(-time.Minute),
		})
	}
	f.checkpoint(t)
	return f
}

func (f *fixture) checkpoint(t testing.TB) int64 {
	t.Helper()
	ssid, err := f.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.info.SnapshotPrepare(ssid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.state.SnapshotPrepare(ssid); err != nil {
		t.Fatal(err)
	}
	f.mgr.Commit(ssid)
	return ssid
}

func liveSnapCfg() core.Config { return core.Config{Live: true, Snapshots: true} }

func TestQueryLiveSimple(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	res, err := f.ex.Query(`SELECT deliveryZone, customerLat FROM orderinfo WHERE partitionKey = 'order-2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0] != "north" || res.Rows[0][1] != 54.0 {
		t.Fatalf("row = %v", res.Rows[0])
	}
	if res.ColumnIndex("customerLat") != 1 {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestQuerySnapshotDefaultsToLatestCommitted(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	// Mutate live state after the checkpoint: snapshot queries must not
	// see it.
	f.info.Update("order-0", orderInfo{DeliveryZone: "CHANGED"})
	f.info.Flush() // mirroring is batched; workers flush at quiescence

	res, err := f.ex.Query(`SELECT deliveryZone FROM "snapshot_orderinfo" WHERE partitionKey = 'order-0'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "north" {
		t.Fatalf("snapshot rows = %v", res.Rows)
	}
	// The live table does see it.
	res, err = f.ex.Query(`SELECT deliveryZone FROM orderinfo WHERE partitionKey = 'order-0'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "CHANGED" {
		t.Fatalf("live rows = %v", res.Rows)
	}
}

func TestQuerySnapshotPinnedSSID(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	f.info.Update("order-0", orderInfo{DeliveryZone: "v2"})
	ssid2 := f.checkpoint(t)

	q := `SELECT deliveryZone FROM "snapshot_orderinfo" WHERE ssid=%d AND partitionKey = 'order-0'`
	res, err := f.ex.Query(fmt.Sprintf(q, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "north" {
		t.Fatalf("ssid 1 row = %v", res.Rows)
	}
	res, err = f.ex.Query(fmt.Sprintf(q, ssid2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "v2" {
		t.Fatalf("ssid 2 row = %v", res.Rows)
	}
	// Pinning an unknown snapshot id errors.
	if _, err := f.ex.Query(fmt.Sprintf(q, 99)); err == nil {
		t.Fatal("query of unknown ssid succeeded")
	}
}

func TestQueryNoCommittedSnapshotFails(t *testing.T) {
	p := partition.New(8)
	store := kv.NewStore(p, partition.Assign(8, 1), nil)
	mgr := core.NewManager(store, 2)
	cat := core.NewCatalog(store)
	cat.RegisterJob(mgr.Registry(), "op")
	ex := NewExecutor(cat, 1)
	if _, err := ex.Query(`SELECT * FROM snapshot_op`); err == nil {
		t.Fatal("snapshot query before first checkpoint succeeded")
	}
}

func TestPaperQuery1Shape(t *testing.T) {
	f := newFixture(t, 30, liveSnapCfg())
	res, err := f.ex.Query(`SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP) GROUP BY deliveryZone;`)
	if err != nil {
		t.Fatal(err)
	}
	// states cycle V,N,P; zones cycle north,south. VENDOR_ACCEPTED =
	// indices ≡ 0 mod 3 → 10 orders, zones split by parity of i.
	total := int64(0)
	for _, row := range res.Rows {
		total += row[0].(int64)
	}
	if total != 10 {
		t.Fatalf("total VENDOR_ACCEPTED = %d, want 10; rows=%v", total, res.Rows)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("zones = %d, want 2", len(res.Rows))
	}
}

func TestJoinProducesBothSidesColumns(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	res, err := f.ex.Query(`SELECT partitionKey, deliveryZone, orderState FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) ORDER BY partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	if res.Rows[0][0] != "order-0" || res.Rows[0][2] != "VENDOR_ACCEPTED" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

func TestJoinOnClause(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	res, err := f.ex.Query(`SELECT COUNT(*) FROM orderinfo AS a JOIN orderstate AS b ON a.partitionKey = b.partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(4) {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestLeftJoinKeepsMisses(t *testing.T) {
	f := newFixture(t, 3, liveSnapCfg())
	// Remove one order's state so the left join has a miss.
	f.state.Delete("order-1")
	f.state.Flush() // mirroring is batched; workers flush at quiescence
	res, err := f.ex.Query(`SELECT partitionKey, orderState FROM orderinfo LEFT JOIN orderstate USING(partitionKey) ORDER BY partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[1][1] != nil {
		t.Fatalf("miss row = %v, want NULL orderState", res.Rows[1])
	}
}

func TestAggregatesAll(t *testing.T) {
	f := newFixture(t, 10, liveSnapCfg())
	res, err := f.ex.Query(`SELECT COUNT(*), MIN(customerLat), MAX(customerLat), AVG(customerLat), SUM(customerLat) FROM orderinfo`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0] != int64(10) || row[1] != 52.0 || row[2] != 61.0 {
		t.Fatalf("count/min/max = %v", row)
	}
	if avg := row[3].(float64); avg != 56.5 {
		t.Fatalf("avg = %v", avg)
	}
	if sum := row[4].(float64); sum != 565.0 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	f := newFixture(t, 5, liveSnapCfg())
	res, err := f.ex.Query(`SELECT COUNT(*), SUM(customerLat) FROM orderinfo WHERE deliveryZone = 'nowhere'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(0) || res.Rows[0][1] != nil {
		t.Fatalf("empty aggregate = %v", res.Rows)
	}
}

func TestGroupByWithExpression(t *testing.T) {
	f := newFixture(t, 12, liveSnapCfg())
	res, err := f.ex.Query(`SELECT vendorCategory, COUNT(*) * 2 AS doubled FROM orderinfo GROUP BY vendorCategory ORDER BY vendorCategory`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0] != "food" || res.Rows[0][1] != int64(12) {
		t.Fatalf("row = %v", res.Rows[0])
	}
	if res.Columns[1] != "doubled" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	f := newFixture(t, 8, liveSnapCfg())
	res, err := f.ex.Query(`SELECT customerLat FROM orderinfo ORDER BY customerLat DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0] != 59.0 || res.Rows[2][0] != 57.0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	res, err := f.ex.Query(`SELECT * FROM orderinfo LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColumnIndex(core.ColPartitionKey) < 0 || res.ColumnIndex("deliveryZone") < 0 {
		t.Fatalf("star columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestStarWithAggregateRejected(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	if _, err := f.ex.Query(`SELECT *, COUNT(*) FROM orderinfo GROUP BY deliveryZone`); err == nil {
		t.Fatal("star with aggregation succeeded")
	}
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	if _, err := f.ex.Query(`SELECT a FROM nosuchtable`); err == nil {
		t.Fatal("unknown table succeeded")
	}
	if _, err := f.ex.Query(`SELECT nosuchcolumn FROM orderinfo`); err == nil {
		t.Fatal("unknown column succeeded")
	}
}

func TestSnapshotRowsExposeSSIDColumn(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	res, err := f.ex.Query(`SELECT ssid, partitionKey FROM "snapshot_orderinfo" ORDER BY partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0] != int64(1) {
			t.Fatalf("ssid column = %v, want 1", row[0])
		}
	}
}

func TestIncrementalSnapshotQueryMergesVersions(t *testing.T) {
	cfg := core.Config{Live: true, Snapshots: true, Incremental: true}
	f := newFixture(t, 6, cfg)
	// Change two orders, checkpoint: ssid 2 holds only the delta.
	f.info.Update("order-0", orderInfo{DeliveryZone: "moved", VendorCategory: "food"})
	f.info.Update("order-1", orderInfo{DeliveryZone: "moved", VendorCategory: "pharmacy"})
	f.checkpoint(t)

	res, err := f.ex.Query(`SELECT partitionKey, deliveryZone, ssid FROM "snapshot_orderinfo" ORDER BY partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (deltas must merge with base)", len(res.Rows))
	}
	// order-0 is from the delta (ssid 2), order-2 from the base (ssid 1).
	byKey := map[string][]any{}
	for _, row := range res.Rows {
		byKey[row[0].(string)] = row
	}
	if byKey["order-0"][1] != "moved" || byKey["order-0"][2] != int64(2) {
		t.Fatalf("order-0 = %v", byKey["order-0"])
	}
	if byKey["order-2"][1] != "north" || byKey["order-2"][2] != int64(1) {
		t.Fatalf("order-2 = %v", byKey["order-2"])
	}
}

func TestCountDistinct(t *testing.T) {
	f := newFixture(t, 10, liveSnapCfg())
	res, err := f.ex.Query(`SELECT COUNT(DISTINCT deliveryZone) FROM orderinfo`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(2) {
		t.Fatalf("distinct zones = %v", res.Rows[0][0])
	}
}

func TestResultString(t *testing.T) {
	f := newFixture(t, 2, liveSnapCfg())
	res, err := f.ex.Query(`SELECT partitionKey FROM orderinfo ORDER BY partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if s == "" || res.ColumnIndex("nope") != -1 {
		t.Fatal("String()/ColumnIndex misbehave")
	}
}
