package sql

import (
	"fmt"
	"strings"
	"testing"

	"squery/internal/core"
)

// planOf runs an EXPLAIN [ANALYZE] statement through the public query path
// and reassembles the single-column plan result into text.
func planOf(t *testing.T, ex *Executor, query string) string {
	t.Helper()
	res, err := ex.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("explain result columns = %v, want [plan]", res.Columns)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%v\n", r[0])
	}
	return b.String()
}

func wantContains(t *testing.T, plan string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(plan, w) {
			t.Errorf("plan missing %q:\n%s", w, plan)
		}
	}
}

func TestExplainAnalyzeScan(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	plan := planOf(t, f.ex, `EXPLAIN ANALYZE SELECT deliveryZone FROM orderinfo`)
	wantContains(t, plan,
		"scan orderinfo",
		"live (read uncommitted)",
		"[analyze: scanned 32/32 partitions (0 pruned), 6 rows",
		"project deliveryZone [analyze: 6 row(s)",
		"analyzed: total",
		"6 row(s) returned, 0 degraded partition(s)",
	)
}

func TestExplainAnalyzePrunedScan(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	plan := planOf(t, f.ex,
		`EXPLAIN ANALYZE SELECT deliveryZone FROM orderinfo WHERE partitionKey = 'order-2'`)
	wantContains(t, plan,
		"pruned to partition",
		"[analyze: scanned 1/32 partitions (31 pruned), 1 rows",
		"filter",
		"1 row(s) returned",
	)
	// Pruning is an optimisation, not a semantic change: the pruned query
	// returns exactly the rows the predicate selects.
	res, err := f.ex.Query(`SELECT deliveryZone FROM orderinfo WHERE partitionKey = 'order-2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "north" {
		t.Fatalf("pruned query rows = %v", res.Rows)
	}
}

func TestExplainAnalyzeCoPartitionedJoinPrunesBothSides(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	plan := planOf(t, f.ex,
		`EXPLAIN ANALYZE SELECT COUNT(*) FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE partitionKey = 'order-1'`)
	wantContains(t, plan,
		"co-partitioned per-partition hash join",
		"[analyze: 1 rows",
		"aggregate (single group) [analyze: 1 group(s)",
	)
	// The USING(partitionKey) join key is the partition key on both sides,
	// so the unqualified pin prunes both scans.
	if n := strings.Count(plan, "scanned 1/32 partitions (31 pruned)"); n != 2 {
		t.Errorf("pruned-scan annotations = %d, want 2 (both join sides):\n%s", n, plan)
	}
	res, err := f.ex.Query(`SELECT COUNT(*) FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE partitionKey = 'order-1'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(1) {
		t.Fatalf("join count = %v, want 1", res.Rows[0][0])
	}
}

func TestExplainAnalyzeAggregate(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	plan := planOf(t, f.ex,
		`EXPLAIN ANALYZE SELECT COUNT(*), deliveryZone FROM orderinfo GROUP BY deliveryZone`)
	wantContains(t, plan,
		"aggregate GROUP BY deliveryZone [analyze: 2 group(s)",
		"2 row(s) returned",
	)
}

func TestExplainAnalyzePinnedSnapshot(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	f.checkpoint(t) // ssid 2, so pinning to 1 is a real choice
	plan := planOf(t, f.ex,
		`EXPLAIN ANALYZE SELECT deliveryZone FROM "snapshot_orderinfo" WHERE ssid = 1 AND partitionKey = 'order-0'`)
	wantContains(t, plan,
		"snapshot @ ssid 1 (pinned)",
		"scanned 1/32 partitions (31 pruned)",
	)
}

func TestFloatLiteralDoesNotPrune(t *testing.T) {
	// SQL equality coerces int and float, but the partition hash does not:
	// Hash(5.0) != Hash(5). A float pin could prune to the wrong partition,
	// so it must fall back to a full scan.
	f := newFixture(t, 4, liveSnapCfg())
	if err := f.cat.RegisterJob(f.mgr.Registry(), "intorders"); err != nil {
		t.Fatal(err)
	}
	ib := core.NewBackend("intorders", 0, f.store.View(0), liveSnapCfg())
	ib.Update(5, orderInfo{DeliveryZone: "intkey"})
	ib.Update(7, orderInfo{DeliveryZone: "other"})
	ib.Flush() // mirroring is batched; workers flush at quiescence

	plan := planOf(t, f.ex,
		`EXPLAIN ANALYZE SELECT deliveryZone FROM intorders WHERE partitionKey = 5.0`)
	if strings.Contains(plan, "pruned to partition") {
		t.Errorf("float partitionKey literal must not prune:\n%s", plan)
	}
	wantContains(t, plan, "scanned 32/32 partitions (0 pruned)")
	// The full scan finds the int-keyed row SQL equality matches; an int
	// literal, by contrast, prunes safely to the same row.
	res, err := f.ex.Query(`SELECT deliveryZone FROM intorders WHERE partitionKey = 5.0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "intkey" {
		t.Fatalf("float-literal query rows = %v, want [[intkey]]", res.Rows)
	}
	plan = planOf(t, f.ex,
		`EXPLAIN ANALYZE SELECT deliveryZone FROM intorders WHERE partitionKey = 5`)
	wantContains(t, plan, "pruned to partition", "scanned 1/32 partitions (31 pruned), 1 rows")
}

func TestExplainPlanOnlyPrefix(t *testing.T) {
	// Plain EXPLAIN through the query path: plan text, no [analyze:]
	// annotations, and the statement is not executed (no result rows
	// beyond the plan's own lines).
	f := newFixture(t, 4, liveSnapCfg())
	plan := planOf(t, f.ex, `EXPLAIN SELECT deliveryZone FROM orderinfo`)
	wantContains(t, plan, "scan orderinfo", "live (read uncommitted)")
	if strings.Contains(plan, "[analyze:") || strings.Contains(plan, "analyzed:") {
		t.Errorf("plain EXPLAIN must not carry analyze annotations:\n%s", plan)
	}
}

// TestOwnedPartitions pins the scan-routing contract every scan path
// shares: no hint fans out to exactly the node's owned partitions, an
// owned hint narrows to that single partition, an unowned hint empties the
// node (no goroutine, no hop), and virtual tables live wholly on node 0.
func TestOwnedPartitions(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	ref, err := f.cat.Table("orderinfo")
	if err != nil {
		t.Fatal(err)
	}
	ownedBy := func(node int) []int {
		var out []int
		for p := 0; p < ref.Partitions(); p++ {
			if ref.PartitionOwner(p) == node {
				out = append(out, p)
			}
		}
		return out
	}
	hint := 7
	owner := ref.PartitionOwner(hint)
	other := (owner + 1) % 3

	cases := []struct {
		name string
		src  tableSrc
		node int
		want []int
	}{
		{"all-nodes fan-out node 0", tableSrc{ref: ref, partHint: -1}, 0, ownedBy(0)},
		{"all-nodes fan-out node 2", tableSrc{ref: ref, partHint: -1}, 2, ownedBy(2)},
		{"hint on owner", tableSrc{ref: ref, partHint: hint}, owner, []int{hint}},
		{"hint on other node (empty)", tableSrc{ref: ref, partHint: hint}, other, nil},
	}
	for _, c := range cases {
		got := f.ex.ownedPartitions(c.src, c.node)
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
	}

	// Virtual tables: one pseudo-partition on node 0.
	f.cat.RegisterVirtual("sys.test", func() []core.TableRow { return nil })
	vref, err := f.cat.Table("sys.test")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ex.ownedPartitions(tableSrc{ref: vref, partHint: -1}, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("virtual node 0 partitions = %v, want [0]", got)
	}
	if got := f.ex.ownedPartitions(tableSrc{ref: vref, partHint: -1}, 1); got != nil {
		t.Fatalf("virtual node 1 partitions = %v, want none", got)
	}
}
