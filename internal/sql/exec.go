package sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"squery/internal/core"
	"squery/internal/metrics"
	"squery/internal/sql/plan"
	"squery/internal/trace"
)

// Executor runs SELECT statements against the state tables of a catalog.
// It is safe for concurrent use; every query resolves its snapshot id
// atomically at start (§VI.A), so concurrent checkpoints never tear a
// result set.
//
// Execution is two-phase: compile lowers the parsed statement into a
// physPlan (planner.go) — pushdown decisions, pruning, the plan.Node
// tree — and run (stream.go) executes that plan as a streaming pipeline.
// EXPLAIN renders the same compiled plan; EXPLAIN ANALYZE renders the
// exact plan instance an execution ran.
type Executor struct {
	cat *core.Catalog
	// nodes is the scatter-gather fan-out: the cluster's node count. It
	// is atomic because elastic membership can grow the cluster while
	// queries run (see SetClusterNodes).
	nodes  atomic.Int32
	m      execInstruments
	tracer *trace.Tracer
	// arr is the shared arrangement registry standing queries attach to;
	// nil means SUBSCRIBE is disabled (see SetArrangements).
	arr *core.ArrangeRegistry
}

// clusterNodes returns the current scatter-gather fan-out.
func (ex *Executor) clusterNodes() int { return int(ex.nodes.Load()) }

// SetClusterNodes updates the scatter-gather fan-out after the cluster
// changes size (a joined node owns partitions that scans must now visit).
// Safe against concurrent queries: an execution reads the count once.
func (ex *Executor) SetClusterNodes(n int) {
	if n < 1 {
		n = 1
	}
	ex.nodes.Store(int32(n))
}

// execInstruments holds the executor's resolved registry instruments. The
// zero value (nil fields) is fully functional: every instrument method is
// a no-op on nil, so an executor without SetMetrics pays nothing.
type execInstruments struct {
	reg          *metrics.Registry
	queries      *metrics.Counter
	errors       *metrics.Counter
	rowsScanned  *metrics.Counter
	rowsShipped  *metrics.Counter
	rowsReturned *metrics.Counter
	partsScanned *metrics.Counter
	partsPruned  *metrics.Counter
	indexScans   *metrics.Counter
	degraded     *metrics.Counter
	bytesShipped *metrics.Counter
	latency      *metrics.Histogram
	log          *metrics.EventLog
	// Slow-query accounting: executions whose wall time reaches
	// slowThreshold are counted and mirrored into the bounded slowLog
	// (sys.slow_queries). slowThreshold <= 0 disables the mirror.
	slowQueries   *metrics.Counter
	slowLog       *metrics.EventLog
	slowThreshold time.Duration
	// planRows/planWall aggregate per-stage rows and wall time by plan
	// node kind under ("sql", "plan"), fed from each query's plan tree.
	planRows map[string]*metrics.Counter
	planWall map[string]*metrics.Counter
	// part caches the ("sql", "p<N>") scan instruments by partition index
	// so the per-scan hot path never touches the registry's lock.
	part []partScanIns
}

// partScanIns holds one partition's pre-resolved scan instruments.
type partScanIns struct {
	scans *metrics.Counter
	rows  *metrics.Counter
	scan  *metrics.Histogram
}

// SetMetrics wires the executor into a metrics registry: query-level
// counters and latency under ("sql", "exec"), per-plan-stage totals under
// ("sql", "plan"), per-partition scan stats under ("sql", "p<N>"), and
// the "queries" event log behind sys.queries. rows_scanned counts rows
// examined on the owning nodes; rows_shipped counts the (possibly
// filter-reduced) rows that crossed the client hop. Call before serving
// queries; a nil registry leaves metrics disabled. Log bounds and the
// slow-query threshold take the MetricsLimits defaults — use
// SetMetricsLimits to configure them.
func (ex *Executor) SetMetrics(reg *metrics.Registry) {
	ex.setMetrics(reg, MetricsLimits{}.WithDefaults())
}

func (ex *Executor) setMetrics(reg *metrics.Registry, lim MetricsLimits) {
	ex.m = execInstruments{
		reg:          reg,
		queries:      reg.Counter("sql", "exec", "queries"),
		errors:       reg.Counter("sql", "exec", "errors"),
		rowsScanned:  reg.Counter("sql", "exec", "rows_scanned"),
		rowsShipped:  reg.Counter("sql", "exec", "rows_shipped"),
		rowsReturned: reg.Counter("sql", "exec", "rows_returned"),
		partsScanned: reg.Counter("sql", "exec", "partitions_scanned"),
		partsPruned:  reg.Counter("sql", "exec", "partitions_pruned"),
		indexScans:   reg.Counter("sql", "exec", "index_scans"),
		degraded:     reg.Counter("sql", "exec", "degraded_partitions"),
		bytesShipped: reg.Counter("sql", "exec", "bytes_shipped"),
		latency:      reg.Histogram("sql", "exec", "latency"),
		log:          reg.Log("queries", lim.QueryLogCapacity),

		slowQueries:   reg.Counter("sql", "exec", "slow_queries"),
		slowLog:       reg.Log("slow_queries", lim.SlowQueryLogCapacity),
		slowThreshold: lim.SlowQueryThreshold,
	}
	if reg != nil {
		ex.m.planRows = make(map[string]*metrics.Counter, len(plan.Kinds))
		ex.m.planWall = make(map[string]*metrics.Counter, len(plan.Kinds))
		for _, k := range plan.Kinds {
			ex.m.planRows[k] = reg.Counter("sql", "plan", k+"_rows")
			ex.m.planWall[k] = reg.Counter("sql", "plan", k+"_wall_ns")
		}
		part := make([]partScanIns, ex.cat.Partitions())
		for p := range part {
			id := "p" + strconv.Itoa(p)
			part[p] = partScanIns{
				scans: reg.Counter("sql", id, "scans"),
				rows:  reg.Counter("sql", id, "rows"),
				scan:  reg.Histogram("sql", id, "scan"),
			}
		}
		ex.m.part = part
	}
}

// SetTracer wires the executor into a span tracer: every execution gets a
// "query" root span with one child per plan stage (wall time and row count
// from the stage's own statistics), and the sys.queries event carries the
// trace id so the two system tables join. Nil disables query tracing.
func (ex *Executor) SetTracer(tr *trace.Tracer) { ex.tracer = tr }

// NewExecutor creates an executor over the catalog, fanning scans out
// over the given number of nodes (pass the cluster's node count).
func NewExecutor(cat *core.Catalog, nodes int) *Executor {
	ex := &Executor{cat: cat}
	ex.SetClusterNodes(nodes)
	return ex
}

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Degraded is non-empty when PolicyFallback served some partitions
	// from a committed snapshot's backup replica instead of the requested
	// table: the result mixes live and snapshot rows, i.e. its isolation
	// was downgraded. Empty for healthy or unguarded executions.
	Degraded []Degradation
}

// IsDegraded reports whether any partition of the result was served from
// a fallback snapshot replica (downgraded isolation).
func (r *Result) IsDegraded() bool { return len(r.Degraded) > 0 }

// ColumnIndex returns the index of the named output column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// String renders the result as an aligned text table (for the CLI and
// examples).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, len(r.Rows))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := fmt.Sprintf("%v", v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// tableSrc is one resolved table participating in a query.
type tableSrc struct {
	ref   *core.TableRef
	name  string // name as written
	alias string // qualifier used in expressions
	ssid  int64  // resolved snapshot id (0 for live)
	// partHint, when >= 0, is the only partition that can hold rows
	// satisfying the query's `partitionKey = <literal>` predicate; every
	// other partition is pruned from the scan.
	partHint int
	// path is the planner-chosen access path (nil = full scan). It is an
	// optimisation hint carried into every partition ScanSpec; the pushed
	// filter remains the truth, so an unserveable path silently full-scans.
	path *core.AccessPath
	// scan is this source's leaf in the plan tree; its Stats accumulate
	// the scan counters (shared across the scan goroutines).
	scan *plan.Scan
}

// joinedRow is one row of the (possibly joined) working set: one TableRow
// per source, aligned with the sources slice. A nil entry means the source
// contributed no row (LEFT JOIN miss).
type joinedRow struct {
	srcs []tableSrc
	tabs []*core.TableRow
}

// Resolve implements Resolver over the joined row.
func (r joinedRow) Resolve(table, column string) (any, bool) {
	if table != "" {
		for i, s := range r.srcs {
			if strings.EqualFold(s.alias, table) || strings.EqualFold(s.name, table) {
				if r.tabs[i] == nil {
					return nil, true // LEFT JOIN miss: columns are NULL
				}
				return r.tabs[i].Field(column)
			}
		}
		return nil, false
	}
	hadMiss := false
	for i := range r.srcs {
		if r.tabs[i] == nil {
			hadMiss = true
			continue
		}
		if v, ok := r.tabs[i].Field(column); ok {
			return v, true
		}
	}
	// With a LEFT JOIN miss the column may belong to the absent side,
	// whose schema we cannot see — resolve it as NULL. (The cost is that
	// a typo in such a query yields NULLs instead of an error.)
	if hadMiss {
		return nil, true
	}
	return nil, false
}

// Query parses and executes a SELECT statement. EXPLAIN <select> returns
// the plan without executing; EXPLAIN ANALYZE <select> executes and
// returns the plan annotated with per-stage wall time, row counts and
// partitions pruned. Both render as a single-column "plan" result.
func (ex *Executor) Query(query string) (*Result, error) {
	return ex.QueryWithOptions(query, ExecOpts{})
}

// QueryWithOptions parses and executes a SELECT statement under the given
// fault-handling options. EXPLAIN / EXPLAIN ANALYZE prefixes are routed to
// the planner (see Query).
func (ex *Executor) QueryWithOptions(query string, opts ExecOpts) (*Result, error) {
	switch mode, rest := splitExplain(query); mode {
	case explainPlanOnly:
		text, err := ex.Explain(rest)
		if err != nil {
			return nil, err
		}
		return planResult(text), nil
	case explainAnalyze:
		return ex.explainAnalyze(rest, opts)
	}
	if ok, _ := splitSubscribe(query); ok {
		return nil, fmt.Errorf("sql: SUBSCRIBE is a standing query — issue it through Engine.Subscribe (REPL: SUBSCRIBE ..., HTTP: /subscribe)")
	}
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	res, _, err := ex.execTraced(stmt, opts, query)
	return res, err
}

// Exec executes a parsed SELECT statement unguarded (PolicyNone).
func (ex *Executor) Exec(stmt *Select) (*Result, error) {
	return ex.ExecWithOptions(stmt, ExecOpts{})
}

// ExecWithOptions executes a parsed SELECT statement under the given
// fault-handling options.
func (ex *Executor) ExecWithOptions(stmt *Select, opts ExecOpts) (*Result, error) {
	res, _, err := ex.execTraced(stmt, opts, "")
	return res, err
}

// execTraced is the execution core: compile the statement to a physPlan,
// run it through the streaming pipeline, and return the result together
// with the plan instance EXPLAIN ANALYZE renders. query is the original
// text for the sys.queries event log ("" for pre-parsed statements).
func (ex *Executor) execTraced(stmt *Select, opts ExecOpts, query string) (*Result, *physPlan, error) {
	if opts.Policy != PolicyNone {
		opts = opts.withDefaults()
	}
	stmt = resolveOrderByAliases(stmt)
	// Query traces bypass head sampling (queries are rare next to
	// records); the root span links sys.queries to sys.spans.
	qsp := ex.tracer.StartTrace("query", trace.KindQuery)
	sw := metrics.StartStopwatch()
	pp, err := ex.compile(stmt, opts, false)
	if err != nil {
		ex.finishQuery(query, nil, sw.Elapsed(), err, qsp)
		return nil, nil, err
	}
	rc := newRunCtx(opts)
	res, err := ex.run(pp, rc)
	pp.total = sw.Elapsed()
	pp.degraded = len(rc.deg.list)
	pp.bytesShipped = rc.shippedBytes.Load()
	pp.peakMemBytes = rc.mem.peak.Load()
	if err == nil {
		pp.returned = len(res.Rows)
	}
	ex.finishQuery(query, pp, pp.total, err, qsp)
	if err != nil {
		return nil, pp, err
	}
	res.Degraded = rc.deg.list
	return res, pp, nil
}

// finishQuery records the query-level registry metrics, the sys.queries
// event, and the query trace (root + one child span per plan stage) for
// one execution. pp is nil when compilation failed; qsp is nil when
// tracing is off.
func (ex *Executor) finishQuery(query string, pp *physPlan, total time.Duration, err error, qsp *trace.Span) {
	ex.m.queries.Inc()
	ex.m.latency.Record(total)
	var scanned, pruned, indexed, examined, shipped, returned, degraded int64
	var bytes, peakMem int64
	var stages string
	if pp != nil {
		bytes = pp.bytesShipped
		peakMem = pp.peakMemBytes
		stages = stageWallSummary(pp.root)
		for _, sc := range pp.scans {
			st := sc.Stat()
			scanned += st.Parts.Load()
			pruned += sc.PrunedParts
			if sc.Access != "" {
				indexed += st.Parts.Load()
			}
			examined += st.Examined.Load()
			shipped += st.Rows.Load()
		}
		returned = int64(pp.returned)
		degraded = int64(pp.degraded)
		if ex.m.planRows != nil {
			plan.Walk(pp.root, func(n plan.Node) {
				st := n.Stat()
				ex.m.planRows[n.Kind()].Add(st.Rows.Load())
				ex.m.planWall[n.Kind()].Add(st.WallNs.Load())
			})
		}
	}
	ex.m.partsScanned.Add(scanned)
	ex.m.partsPruned.Add(pruned)
	ex.m.indexScans.Add(indexed)
	ex.m.rowsScanned.Add(examined)
	ex.m.rowsShipped.Add(shipped)
	ex.m.bytesShipped.Add(bytes)
	ex.m.degraded.Add(degraded)
	if err != nil {
		ex.m.errors.Inc()
	} else {
		ex.m.rowsReturned.Add(returned)
	}
	if len(query) > 200 {
		query = query[:200] + "…"
	}
	if qsp != nil {
		// Per-stage child spans, synthesized from the plan tree the
		// execution just ran. Stages of the streaming pipeline overlap in
		// wall time, so each child starts at the root and Dur is the
		// stage's own accumulated wall clock.
		ctx := qsp.Context()
		if pp != nil {
			plan.Walk(pp.root, func(n plan.Node) {
				st := n.Stat()
				name := n.Kind()
				note := fmt.Sprintf("rows=%d", st.Rows.Load())
				if sc, ok := n.(*plan.Scan); ok {
					name = "scan:" + sc.Table
					if sc.Access != "" {
						note += " access=" + sc.Access
					}
				}
				ex.tracer.Emit(trace.SpanData{
					TraceID: ctx.TraceID, SpanID: ex.tracer.NewID(),
					ParentID: ctx.SpanID,
					Name:     name, Kind: trace.KindQuery,
					Vertex: name, Instance: -1, SSID: scanSSID(n),
					Start: time.Now().Add(-time.Duration(st.WallNs.Load())),
					Dur:   time.Duration(st.WallNs.Load()),
					Note:  note,
				})
			})
		}
		qsp.SetNote(query)
		if err != nil {
			qsp.Fail(err.Error())
		} else {
			qsp.End()
		}
	}
	if ex.m.log != nil {
		ev := &queryEvent{
			query:    query,
			wallUs:   total.Microseconds(),
			scanned:  examined,
			shipped:  shipped,
			returned: returned,
			parts:    scanned,
			pruned:   pruned,
			degraded: degraded,
			bytes:    bytes,
			peakMem:  peakMem,
			stages:   stages,
			failed:   err != nil,
			traceID:  qsp.Context().TraceID,
		}
		ex.m.log.AppendFielder(ev)
		// A slow execution is mirrored — not moved — into the bounded slow
		// log, so it survives sys.queries churn long enough to diagnose.
		if ex.m.slowThreshold > 0 && total >= ex.m.slowThreshold {
			ex.m.slowQueries.Inc()
			ex.m.slowLog.AppendFielder(ev)
		}
	}
}

// scanSSID returns the resolved snapshot id of a Scan node (0 otherwise),
// so snapshot-pinned query stages join sys.checkpoints like checkpoint
// spans do.
func scanSSID(n plan.Node) int64 {
	if sc, ok := n.(*plan.Scan); ok {
		return sc.SSID
	}
	return 0
}

// queryEvent is the sys.queries entry for one execution: a flat struct on
// the hot path, expanded to a field map only when the log is read.
type queryEvent struct {
	query    string
	wallUs   int64
	scanned  int64
	shipped  int64
	returned int64
	parts    int64
	pruned   int64
	degraded int64
	bytes    int64  // estimated bytes shipped across the client hop
	peakMem  int64  // peak estimated bytes in in-flight pipeline batches
	stages   string // per-stage wall breakdown ("scan=1.2ms project=80µs")
	failed   bool
	traceID  uint64 // joins sys.queries to sys.spans; 0 when untraced
}

func (q *queryEvent) EventFields() map[string]any {
	return map[string]any{
		"query":              q.query,
		"wallUs":             q.wallUs,
		"rowsScanned":        q.scanned,
		"rowsShipped":        q.shipped,
		"rowsReturned":       q.returned,
		"partitionsScanned":  q.parts,
		"partitionsPruned":   q.pruned,
		"degradedPartitions": q.degraded,
		"bytesShipped":       q.bytes,
		"peakMemBytes":       q.peakMem,
		"stages":             q.stages,
		"failed":             q.failed,
		"traceId":            int64(q.traceID),
	}
}

// resolveOrderByAliases rewrites ORDER BY entries that name a select-list
// alias (ORDER BY sold when the list says `SUM(x) AS sold`) to the aliased
// expression, per standard SQL. The statement is copied, not mutated.
func resolveOrderByAliases(stmt *Select) *Select {
	if len(stmt.OrderBy) == 0 {
		return stmt
	}
	byAlias := map[string]Expr{}
	for _, it := range stmt.Items {
		if !it.Star && it.Alias != "" {
			byAlias[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	if len(byAlias) == 0 {
		return stmt
	}
	out := *stmt
	out.OrderBy = append([]OrderItem(nil), stmt.OrderBy...)
	for i, oi := range out.OrderBy {
		if id, ok := oi.Expr.(Ident); ok && id.Table == "" {
			if e, hit := byAlias[strings.ToLower(id.Name)]; hit {
				out.OrderBy[i].Expr = e
			}
		}
	}
	return &out
}

// pinSet holds ssid pins extracted from WHERE.
type pinSet map[string]int64 // lower-cased qualifier ("" = all snapshot tables)

func (p pinSet) forTable(alias, name string) int64 {
	if v, ok := p[strings.ToLower(alias)]; ok {
		return v
	}
	if v, ok := p[strings.ToLower(name)]; ok {
		return v
	}
	return p[""]
}

// extractPins removes top-level `ssid = <literal>` conjuncts from the
// WHERE clause and returns them as pins. The predicate selects which
// snapshot to reconstruct, not which stored versions to keep — with
// incremental snapshots a row's recorded ssid may legitimately be older
// than the queried one (§VI.A), so the pin must bind the planner rather
// than filter rows.
func extractPins(where Expr) (Expr, pinSet, error) {
	pins := pinSet{}
	rest, err := stripPins(where, pins)
	if err != nil {
		return nil, nil, err
	}
	return rest, pins, nil
}

func stripPins(e Expr, pins pinSet) (Expr, error) {
	b, ok := e.(Binary)
	if !ok {
		return e, nil
	}
	switch b.Op {
	case "AND":
		l, err := stripPins(b.L, pins)
		if err != nil {
			return nil, err
		}
		r, err := stripPins(b.R, pins)
		if err != nil {
			return nil, err
		}
		switch {
		case l == nil && r == nil:
			return nil, nil
		case l == nil:
			return r, nil
		case r == nil:
			return l, nil
		default:
			return Binary{Op: "AND", L: l, R: r}, nil
		}
	case "=":
		if id, lit, ok := ssidEquality(b); ok {
			n, isInt := lit.Val.(int64)
			if !isInt || n <= 0 {
				return nil, fmt.Errorf("sql: ssid must be a positive integer literal, got %v", lit.Val)
			}
			pins[strings.ToLower(id.Table)] = n
			return nil, nil
		}
	}
	return e, nil
}

func ssidEquality(b Binary) (Ident, Lit, bool) {
	if id, ok := b.L.(Ident); ok && strings.EqualFold(id.Name, core.ColSSID) {
		if lit, ok := b.R.(Lit); ok {
			return id, lit, true
		}
	}
	if id, ok := b.R.(Ident); ok && strings.EqualFold(id.Name, core.ColSSID) {
		if lit, ok := b.L.(Lit); ok {
			return id, lit, true
		}
	}
	return Ident{}, Lit{}, false
}

// keyPins maps a lower-cased table qualifier ("" = unqualified) to the
// partitionKey literal a top-level equality conjunct pins it to.
type keyPins map[string]any

// extractKeyPins collects `partitionKey = <literal>` conjuncts from the
// residual WHERE clause. Unlike ssid pins they are NOT stripped: the
// predicate still runs against every scanned row (pruning is an
// optimisation, the filter is the truth).
func extractKeyPins(where Expr) keyPins {
	pins := keyPins{}
	collectKeyPins(where, pins)
	return pins
}

func collectKeyPins(e Expr, pins keyPins) {
	b, ok := e.(Binary)
	if !ok {
		return
	}
	switch b.Op {
	case "AND":
		collectKeyPins(b.L, pins)
		collectKeyPins(b.R, pins)
	case "=":
		if id, lit, ok := keyEquality(b); ok {
			pins[strings.ToLower(id.Table)] = lit.Val
		}
	}
}

func keyEquality(b Binary) (Ident, Lit, bool) {
	if id, ok := b.L.(Ident); ok && strings.EqualFold(id.Name, core.ColPartitionKey) {
		if lit, ok := b.R.(Lit); ok {
			return id, lit, true
		}
	}
	if id, ok := b.R.(Ident); ok && strings.EqualFold(id.Name, core.ColPartitionKey) {
		if lit, ok := b.L.(Lit); ok {
			return id, lit, true
		}
	}
	return Ident{}, Lit{}, false
}

// applyKeyHints turns partitionKey pins into per-source partition hints —
// the single partition-pruning implementation; the compile step copies
// the hints onto the plan's Scan nodes, so EXPLAIN's pruned counts and
// execution's skipped partitions come from the same decision. A qualified
// pin (t.partitionKey = x) prunes only that table. An unqualified pin
// prunes the FROM table — and, for a co-partitioned USING(partitionKey)
// join, the joined table too, since the join key IS the partition key on
// both sides. Pruning is skipped for literal types whose hash is not
// provably consistent with SQL equality (floats, which equality-coerces
// across int/float while the partitioner does not).
func applyKeyHints(stmt *Select, srcs []tableSrc, where Expr) {
	pins := extractKeyPins(where)
	if len(pins) == 0 {
		return
	}
	coPart := len(srcs) == 2 && len(stmt.Joins) == 1 &&
		stmt.Joins[0].Using == core.ColPartitionKey && !stmt.Joins[0].Left
	for i := range srcs {
		s := &srcs[i]
		key, found := pins[strings.ToLower(s.alias)]
		if !found {
			key, found = pins[strings.ToLower(s.name)]
		}
		if !found {
			if v, ok := pins[""]; ok && (i == 0 || coPart) {
				key, found = v, true
			}
		}
		if !found {
			continue
		}
		if p, ok := s.ref.PartitionOf(key); ok {
			s.partHint = p
		}
	}
}

// ownedPartitions returns the partitions of s that node must scan: the
// node's owned partitions, narrowed to the partition-key hint when the
// query pinned one. Every scan path routes through here, so pruning
// applies uniformly to plain scans, guarded scans and partitioned joins.
func (ex *Executor) ownedPartitions(s tableSrc, node int) []int {
	if s.partHint >= 0 {
		if s.ref.PartitionOwner(s.partHint) == node {
			return []int{s.partHint}
		}
		return nil
	}
	var out []int
	for p := 0; p < s.ref.Partitions(); p++ {
		if s.ref.PartitionOwner(p) == node {
			out = append(out, p)
		}
	}
	return out
}

// recordPartScan accounts one partition scan on the source's plan leaf
// and the per-partition registry instruments. examined counts rows the
// pushed filter inspected node-side; emitted counts rows that crossed
// the client hop.
func (ex *Executor) recordPartScan(s *tableSrc, p int, examined, emitted int64, d time.Duration) {
	if s.scan != nil {
		st := s.scan.Stat()
		st.Parts.Add(1)
		st.Examined.Add(examined)
		st.Rows.Add(emitted)
		st.WallNs.Add(int64(d))
	}
	if p < len(ex.m.part) && !s.ref.IsVirtual() {
		ins := ex.m.part[p]
		ins.scans.Inc()
		ins.rows.Add(emitted)
		ins.scan.Record(d)
	}
}

func joinKeys(j Join, srcs []tableSrc, si int) (string, string, error) {
	if j.Using != "" {
		return j.Using, j.Using, nil
	}
	// ON a.x = b.y: decide which side belongs to the joined table.
	matches := func(id Ident) bool {
		return strings.EqualFold(id.Table, srcs[si].alias) || strings.EqualFold(id.Table, srcs[si].name)
	}
	switch {
	case matches(j.OnR):
		return j.OnL.Name, j.OnR.Name, nil
	case matches(j.OnL):
		return j.OnR.Name, j.OnL.Name, nil
	default:
		return "", "", fmt.Errorf("sql: ON clause must reference the joined table %q", srcs[si].name)
	}
}

// evalWithAggs evaluates an expression that may contain aggregates, over
// the rows of one group. Non-aggregate subexpressions are evaluated
// against the group's first row (SQL's bare-column-in-GROUP-BY rule).
func (ex *Executor) evalWithAggs(ctx *evalCtx, e Expr, rows []joinedRow) (any, error) {
	switch x := e.(type) {
	case Agg:
		return ex.evalAggregate(ctx, x, rows)
	case Binary:
		if containsAgg(x.L) || containsAgg(x.R) {
			l, err := ex.evalWithAggs(ctx, x.L, rows)
			if err != nil {
				return nil, err
			}
			r, err := ex.evalWithAggs(ctx, x.R, rows)
			if err != nil {
				return nil, err
			}
			return ctx.evalBinary(Binary{Op: x.Op, L: Lit{Val: l}, R: Lit{Val: r}}, nil)
		}
	case Func:
		if containsAgg(x) {
			args := make([]Expr, len(x.Args))
			for i, a := range x.Args {
				v, err := ex.evalWithAggs(ctx, a, rows)
				if err != nil {
					return nil, err
				}
				args[i] = Lit{Val: v}
			}
			return ctx.evalFunc(Func{Name: x.Name, Args: args}, nil)
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return ctx.eval(e, rows[0])
}

func (ex *Executor) evalAggregate(ctx *evalCtx, a Agg, rows []joinedRow) (any, error) {
	if a.Star {
		return int64(len(rows)), nil
	}
	var (
		count   int64
		sum     float64
		sumI    int64
		allInts = true
		minV    any
		maxV    any
		seen    map[joinKey]struct{}
	)
	if a.Distinct {
		seen = map[joinKey]struct{}{}
	}
	for _, r := range rows {
		v, err := ctx.eval(a.Arg, r)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if a.Distinct {
			k := makeJoinKey(v)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		count++
		switch a.Func {
		case AggSum, AggAvg:
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("sql: %s over non-numeric %T", a.Func, v)
			}
			sum += f
			if i, ok := toInt(v); ok {
				sumI += i
			} else {
				allInts = false
			}
		case AggMin:
			if minV == nil {
				minV = v
			} else if c, err := compare(v, minV); err != nil {
				return nil, err
			} else if c < 0 {
				minV = v
			}
		case AggMax:
			if maxV == nil {
				maxV = v
			} else if c, err := compare(v, maxV); err != nil {
				return nil, err
			} else if c > 0 {
				maxV = v
			}
		}
	}
	switch a.Func {
	case AggCount:
		return count, nil
	case AggSum:
		if count == 0 {
			return nil, nil
		}
		if allInts {
			return sumI, nil
		}
		return sum, nil
	case AggAvg:
		if count == 0 {
			return nil, nil
		}
		return sum / float64(count), nil
	case AggMin:
		return minV, nil
	case AggMax:
		return maxV, nil
	}
	return nil, fmt.Errorf("sql: unknown aggregate %q", a.Func)
}

// sortOutRows sorts rows by the pre-computed ORDER BY keys. NULLs sort
// last; incomparable values keep their relative order.
func sortOutRows[T any](stmt *Select, rows []T, key func(T) []any) {
	if len(stmt.OrderBy) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ki, kj := key(rows[i]), key(rows[j])
		for n, oi := range stmt.OrderBy {
			a, b := ki[n], kj[n]
			if a == nil && b == nil {
				continue
			}
			if a == nil {
				return false
			}
			if b == nil {
				return true
			}
			c, err := compare(a, b)
			if err != nil || c == 0 {
				continue
			}
			if oi.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}
