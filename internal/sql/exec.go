package sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"squery/internal/core"
	"squery/internal/metrics"
)

// Executor runs SELECT statements against the state tables of a catalog.
// It is safe for concurrent use; every query resolves its snapshot id
// atomically at start (§VI.A), so concurrent checkpoints never tear a
// result set.
type Executor struct {
	cat   *core.Catalog
	nodes int
	m     execInstruments
}

// execInstruments holds the executor's resolved registry instruments. The
// zero value (nil fields) is fully functional: every instrument method is
// a no-op on nil, so an executor without SetMetrics pays nothing.
type execInstruments struct {
	reg          *metrics.Registry
	queries      *metrics.Counter
	errors       *metrics.Counter
	rowsScanned  *metrics.Counter
	rowsReturned *metrics.Counter
	partsScanned *metrics.Counter
	partsPruned  *metrics.Counter
	degraded     *metrics.Counter
	latency      *metrics.Histogram
	log          *metrics.EventLog
	// part caches the ("sql", "p<N>") scan instruments by partition index
	// so the per-scan hot path never touches the registry's lock.
	part []partScanIns
}

// partScanIns holds one partition's pre-resolved scan instruments.
type partScanIns struct {
	scans *metrics.Counter
	rows  *metrics.Counter
	scan  *metrics.Histogram
}

// SetMetrics wires the executor into a metrics registry: query-level
// counters and latency under ("sql", "exec"), per-partition scan stats
// under ("sql", "p<N>"), and the "queries" event log behind sys.queries.
// Call before serving queries; a nil registry leaves metrics disabled.
func (ex *Executor) SetMetrics(reg *metrics.Registry) {
	ex.m = execInstruments{
		reg:          reg,
		queries:      reg.Counter("sql", "exec", "queries"),
		errors:       reg.Counter("sql", "exec", "errors"),
		rowsScanned:  reg.Counter("sql", "exec", "rows_scanned"),
		rowsReturned: reg.Counter("sql", "exec", "rows_returned"),
		partsScanned: reg.Counter("sql", "exec", "partitions_scanned"),
		partsPruned:  reg.Counter("sql", "exec", "partitions_pruned"),
		degraded:     reg.Counter("sql", "exec", "degraded_partitions"),
		latency:      reg.Histogram("sql", "exec", "latency"),
		log:          reg.Log("queries", 256),
	}
	if reg != nil {
		part := make([]partScanIns, ex.cat.Partitions())
		for p := range part {
			id := "p" + strconv.Itoa(p)
			part[p] = partScanIns{
				scans: reg.Counter("sql", id, "scans"),
				rows:  reg.Counter("sql", id, "rows"),
				scan:  reg.Histogram("sql", id, "scan"),
			}
		}
		ex.m.part = part
	}
}

// NewExecutor creates an executor over the catalog, fanning scans out
// over the given number of nodes (pass the cluster's node count).
func NewExecutor(cat *core.Catalog, nodes int) *Executor {
	if nodes < 1 {
		nodes = 1
	}
	return &Executor{cat: cat, nodes: nodes}
}

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Degraded is non-empty when PolicyFallback served some partitions
	// from a committed snapshot's backup replica instead of the requested
	// table: the result mixes live and snapshot rows, i.e. its isolation
	// was downgraded. Empty for healthy or unguarded executions.
	Degraded []Degradation
}

// IsDegraded reports whether any partition of the result was served from
// a fallback snapshot replica (downgraded isolation).
func (r *Result) IsDegraded() bool { return len(r.Degraded) > 0 }

// ColumnIndex returns the index of the named output column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// String renders the result as an aligned text table (for the CLI and
// examples).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, len(r.Rows))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := fmt.Sprintf("%v", v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// tableSrc is one resolved table participating in a query.
type tableSrc struct {
	ref   *core.TableRef
	name  string // name as written
	alias string // qualifier used in expressions
	ssid  int64  // resolved snapshot id (0 for live)
	// partHint, when >= 0, is the only partition that can hold rows
	// satisfying the query's `partitionKey = <literal>` predicate; every
	// other partition is pruned from the scan.
	partHint int
	// tr accumulates this source's scan statistics (shared across the
	// scan goroutines; always non-nil for executor-built sources).
	tr *scanTrace
}

// joinedRow is one row of the (possibly joined) working set: one TableRow
// per source, aligned with the sources slice. A nil entry means the source
// contributed no row (LEFT JOIN miss).
type joinedRow struct {
	srcs []tableSrc
	tabs []*core.TableRow
}

// Resolve implements Resolver over the joined row.
func (r joinedRow) Resolve(table, column string) (any, bool) {
	if table != "" {
		for i, s := range r.srcs {
			if strings.EqualFold(s.alias, table) || strings.EqualFold(s.name, table) {
				if r.tabs[i] == nil {
					return nil, true // LEFT JOIN miss: columns are NULL
				}
				return r.tabs[i].Field(column)
			}
		}
		return nil, false
	}
	hadMiss := false
	for i := range r.srcs {
		if r.tabs[i] == nil {
			hadMiss = true
			continue
		}
		if v, ok := r.tabs[i].Field(column); ok {
			return v, true
		}
	}
	// With a LEFT JOIN miss the column may belong to the absent side,
	// whose schema we cannot see — resolve it as NULL. (The cost is that
	// a typo in such a query yields NULLs instead of an error.)
	if hadMiss {
		return nil, true
	}
	return nil, false
}

// Query parses and executes a SELECT statement. EXPLAIN <select> returns
// the plan without executing; EXPLAIN ANALYZE <select> executes and
// returns the plan annotated with per-stage wall time, row counts and
// partitions pruned. Both render as a single-column "plan" result.
func (ex *Executor) Query(query string) (*Result, error) {
	return ex.QueryWithOptions(query, ExecOpts{})
}

// QueryWithOptions parses and executes a SELECT statement under the given
// fault-handling options. EXPLAIN / EXPLAIN ANALYZE prefixes are routed to
// the planner (see Query).
func (ex *Executor) QueryWithOptions(query string, opts ExecOpts) (*Result, error) {
	switch mode, rest := splitExplain(query); mode {
	case explainPlanOnly:
		plan, err := ex.Explain(rest)
		if err != nil {
			return nil, err
		}
		return planResult(plan), nil
	case explainAnalyze:
		return ex.explainAnalyze(rest, opts)
	}
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	res, _, err := ex.execTraced(stmt, opts, query)
	return res, err
}

// Exec executes a parsed SELECT statement unguarded (PolicyNone).
func (ex *Executor) Exec(stmt *Select) (*Result, error) {
	return ex.ExecWithOptions(stmt, ExecOpts{})
}

// ExecWithOptions executes a parsed SELECT statement under the given
// fault-handling options.
func (ex *Executor) ExecWithOptions(stmt *Select, opts ExecOpts) (*Result, error) {
	res, _, err := ex.execTraced(stmt, opts, "")
	return res, err
}

// resolveSources resolves the statement's tables, extracts ssid pins and
// partition-key hints from WHERE, and resolves each source's snapshot id.
// It returns the sources, the residual WHERE clause, and the ssid pins.
func (ex *Executor) resolveSources(stmt *Select) ([]tableSrc, Expr, pinSet, error) {
	srcs := make([]tableSrc, 0, 1+len(stmt.Joins))
	addSrc := func(t TableName) error {
		ref, err := ex.cat.Table(t.Name)
		if err != nil {
			return err
		}
		srcs = append(srcs, tableSrc{ref: ref, name: t.Name, alias: t.Ref(), partHint: -1, tr: &scanTrace{}})
		return nil
	}
	if err := addSrc(stmt.From); err != nil {
		return nil, nil, nil, err
	}
	for _, j := range stmt.Joins {
		if err := addSrc(j.Table); err != nil {
			return nil, nil, nil, err
		}
	}
	where, pins, err := extractPins(stmt.Where)
	if err != nil {
		return nil, nil, nil, err
	}
	applyKeyHints(stmt, srcs, where)
	return srcs, where, pins, nil
}

// execTraced is the execution core: it runs the statement and returns the
// result together with the trace EXPLAIN ANALYZE renders. query is the
// original text for the sys.queries event log ("" for pre-parsed
// statements).
func (ex *Executor) execTraced(stmt *Select, opts ExecOpts, query string) (*Result, *execTrace, error) {
	if opts.Policy != PolicyNone {
		opts = opts.withDefaults()
	}
	ctx := &evalCtx{now: time.Now()}
	stmt = resolveOrderByAliases(stmt)
	tr := &execTrace{}
	sw := metrics.StartStopwatch()
	res, deg, err := ex.execStages(ctx, stmt, opts, tr)
	tr.total = sw.Elapsed()
	if deg != nil {
		tr.degraded = len(deg.list)
	}
	ex.finishQuery(query, tr, res, err)
	if err != nil {
		return nil, tr, err
	}
	res.Degraded = deg.list
	return res, tr, nil
}

func (ex *Executor) execStages(ctx *evalCtx, stmt *Select, opts ExecOpts, tr *execTrace) (*Result, *degrades, error) {
	srcs, where, pins, err := ex.resolveSources(stmt)
	if err != nil {
		return nil, nil, err
	}
	tr.srcs = srcs
	for i := range srcs {
		pinned := pins.forTable(srcs[i].alias, srcs[i].name)
		ssid, err := srcs[i].ref.ResolveSSID(pinned)
		if err != nil {
			return nil, nil, err
		}
		srcs[i].ssid = ssid
	}

	// Scan + join.
	deg := &degrades{}
	sw := metrics.StartStopwatch()
	rows, err := ex.scanAndJoin(stmt, srcs, opts, deg)
	tr.scanJoinWall = sw.Elapsed()
	tr.joinedRows = len(rows)
	if err != nil {
		return nil, deg, err
	}

	// Filter.
	if where != nil {
		sw = metrics.StartStopwatch()
		kept := rows[:0]
		for _, r := range rows {
			v, err := ctx.eval(where, r)
			if err != nil {
				return nil, deg, err
			}
			if b, ok := truthy(v); ok && b {
				kept = append(kept, r)
			}
		}
		rows = kept
		tr.filterWall = sw.Elapsed()
		tr.filtered = true
	}
	tr.filteredRows = len(rows)

	// Aggregate or project.
	sw = metrics.StartStopwatch()
	var res *Result
	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		res, err = ex.aggregate(ctx, stmt, srcs, rows)
		tr.aggregated = true
	} else {
		res, err = ex.project(ctx, stmt, srcs, rows)
	}
	tr.outputWall = sw.Elapsed()
	if err != nil {
		return nil, deg, err
	}
	tr.returnedRows = len(res.Rows)
	return res, deg, nil
}

// finishQuery records the query-level registry metrics and the sys.queries
// event for one execution.
func (ex *Executor) finishQuery(query string, tr *execTrace, res *Result, err error) {
	ex.m.queries.Inc()
	ex.m.latency.Record(tr.total)
	var scanned, pruned, rows int64
	for _, s := range tr.srcs {
		scanned += s.tr.parts.Load()
		pruned += s.tr.pruned
		rows += s.tr.rows.Load()
	}
	ex.m.partsScanned.Add(scanned)
	ex.m.partsPruned.Add(pruned)
	ex.m.rowsScanned.Add(rows)
	ex.m.degraded.Add(int64(tr.degraded))
	if err != nil {
		ex.m.errors.Inc()
	} else {
		ex.m.rowsReturned.Add(int64(tr.returnedRows))
	}
	if ex.m.log != nil {
		if len(query) > 200 {
			query = query[:200] + "…"
		}
		ex.m.log.AppendFielder(&queryEvent{
			query:    query,
			wallUs:   tr.total.Microseconds(),
			scanned:  rows,
			returned: int64(tr.returnedRows),
			parts:    scanned,
			pruned:   pruned,
			degraded: int64(tr.degraded),
			failed:   err != nil,
		})
	}
}

// queryEvent is the sys.queries entry for one execution: a flat struct on
// the hot path, expanded to a field map only when the log is read.
type queryEvent struct {
	query    string
	wallUs   int64
	scanned  int64
	returned int64
	parts    int64
	pruned   int64
	degraded int64
	failed   bool
}

func (q *queryEvent) EventFields() map[string]any {
	return map[string]any{
		"query":              q.query,
		"wallUs":             q.wallUs,
		"rowsScanned":        q.scanned,
		"rowsReturned":       q.returned,
		"partitionsScanned":  q.parts,
		"partitionsPruned":   q.pruned,
		"degradedPartitions": q.degraded,
		"failed":             q.failed,
	}
}

// resolveOrderByAliases rewrites ORDER BY entries that name a select-list
// alias (ORDER BY sold when the list says `SUM(x) AS sold`) to the aliased
// expression, per standard SQL. The statement is copied, not mutated.
func resolveOrderByAliases(stmt *Select) *Select {
	if len(stmt.OrderBy) == 0 {
		return stmt
	}
	byAlias := map[string]Expr{}
	for _, it := range stmt.Items {
		if !it.Star && it.Alias != "" {
			byAlias[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	if len(byAlias) == 0 {
		return stmt
	}
	out := *stmt
	out.OrderBy = append([]OrderItem(nil), stmt.OrderBy...)
	for i, oi := range out.OrderBy {
		if id, ok := oi.Expr.(Ident); ok && id.Table == "" {
			if e, hit := byAlias[strings.ToLower(id.Name)]; hit {
				out.OrderBy[i].Expr = e
			}
		}
	}
	return &out
}

// pinSet holds ssid pins extracted from WHERE.
type pinSet map[string]int64 // lower-cased qualifier ("" = all snapshot tables)

func (p pinSet) forTable(alias, name string) int64 {
	if v, ok := p[strings.ToLower(alias)]; ok {
		return v
	}
	if v, ok := p[strings.ToLower(name)]; ok {
		return v
	}
	return p[""]
}

// extractPins removes top-level `ssid = <literal>` conjuncts from the
// WHERE clause and returns them as pins. The predicate selects which
// snapshot to reconstruct, not which stored versions to keep — with
// incremental snapshots a row's recorded ssid may legitimately be older
// than the queried one (§VI.A), so the pin must bind the planner rather
// than filter rows.
func extractPins(where Expr) (Expr, pinSet, error) {
	pins := pinSet{}
	rest, err := stripPins(where, pins)
	if err != nil {
		return nil, nil, err
	}
	return rest, pins, nil
}

func stripPins(e Expr, pins pinSet) (Expr, error) {
	b, ok := e.(Binary)
	if !ok {
		return e, nil
	}
	switch b.Op {
	case "AND":
		l, err := stripPins(b.L, pins)
		if err != nil {
			return nil, err
		}
		r, err := stripPins(b.R, pins)
		if err != nil {
			return nil, err
		}
		switch {
		case l == nil && r == nil:
			return nil, nil
		case l == nil:
			return r, nil
		case r == nil:
			return l, nil
		default:
			return Binary{Op: "AND", L: l, R: r}, nil
		}
	case "=":
		if id, lit, ok := ssidEquality(b); ok {
			n, isInt := lit.Val.(int64)
			if !isInt || n <= 0 {
				return nil, fmt.Errorf("sql: ssid must be a positive integer literal, got %v", lit.Val)
			}
			pins[strings.ToLower(id.Table)] = n
			return nil, nil
		}
	}
	return e, nil
}

func ssidEquality(b Binary) (Ident, Lit, bool) {
	if id, ok := b.L.(Ident); ok && strings.EqualFold(id.Name, core.ColSSID) {
		if lit, ok := b.R.(Lit); ok {
			return id, lit, true
		}
	}
	if id, ok := b.R.(Ident); ok && strings.EqualFold(id.Name, core.ColSSID) {
		if lit, ok := b.L.(Lit); ok {
			return id, lit, true
		}
	}
	return Ident{}, Lit{}, false
}

// keyPins maps a lower-cased table qualifier ("" = unqualified) to the
// partitionKey literal a top-level equality conjunct pins it to.
type keyPins map[string]any

// extractKeyPins collects `partitionKey = <literal>` conjuncts from the
// residual WHERE clause. Unlike ssid pins they are NOT stripped: the
// predicate still runs against every scanned row (pruning is an
// optimisation, the filter is the truth).
func extractKeyPins(where Expr) keyPins {
	pins := keyPins{}
	collectKeyPins(where, pins)
	return pins
}

func collectKeyPins(e Expr, pins keyPins) {
	b, ok := e.(Binary)
	if !ok {
		return
	}
	switch b.Op {
	case "AND":
		collectKeyPins(b.L, pins)
		collectKeyPins(b.R, pins)
	case "=":
		if id, lit, ok := keyEquality(b); ok {
			pins[strings.ToLower(id.Table)] = lit.Val
		}
	}
}

func keyEquality(b Binary) (Ident, Lit, bool) {
	if id, ok := b.L.(Ident); ok && strings.EqualFold(id.Name, core.ColPartitionKey) {
		if lit, ok := b.R.(Lit); ok {
			return id, lit, true
		}
	}
	if id, ok := b.R.(Ident); ok && strings.EqualFold(id.Name, core.ColPartitionKey) {
		if lit, ok := b.L.(Lit); ok {
			return id, lit, true
		}
	}
	return Ident{}, Lit{}, false
}

// applyKeyHints turns partitionKey pins into per-source partition hints.
// A qualified pin (t.partitionKey = x) prunes only that table. An
// unqualified pin prunes the FROM table — and, for a co-partitioned
// USING(partitionKey) join, the joined table too, since the join key IS
// the partition key on both sides. Pruning is skipped for literal types
// whose hash is not provably consistent with SQL equality (floats, which
// equality-coerces across int/float while the partitioner does not).
func applyKeyHints(stmt *Select, srcs []tableSrc, where Expr) {
	pins := extractKeyPins(where)
	if len(pins) == 0 {
		return
	}
	coPart := len(srcs) == 2 && len(stmt.Joins) == 1 &&
		stmt.Joins[0].Using == core.ColPartitionKey && !stmt.Joins[0].Left
	for i := range srcs {
		s := &srcs[i]
		key, found := pins[strings.ToLower(s.alias)]
		if !found {
			key, found = pins[strings.ToLower(s.name)]
		}
		if !found {
			if v, ok := pins[""]; ok && (i == 0 || coPart) {
				key, found = v, true
			}
		}
		if !found {
			continue
		}
		if p, ok := s.ref.PartitionOf(key); ok {
			s.partHint = p
			s.tr.pruned = int64(s.ref.Partitions() - 1)
		}
	}
}

// scanAndJoin materializes the working set. Single-table queries scan
// scatter-gather per node. Joins on partitionKey run per-partition — the
// co-location optimisation: both sides of each partition's join live on
// the same node. Other equi-joins build a global hash table.
func (ex *Executor) scanAndJoin(stmt *Select, srcs []tableSrc, opts ExecOpts, deg *degrades) ([]joinedRow, error) {
	if len(srcs) == 1 {
		rows, err := ex.scanAllGuarded(srcs[0], opts, deg)
		if err != nil {
			return nil, err
		}
		out := make([]joinedRow, len(rows))
		for i := range rows {
			out[i] = joinedRow{srcs: srcs, tabs: []*core.TableRow{&rows[i]}}
		}
		return out, nil
	}

	// Two tables joined USING(partitionKey): both sides of the join key
	// are co-partitioned by construction (the shared partitioner), so
	// the join runs independently per partition on the owning node —
	// the co-location optimisation of §II.
	if len(srcs) == 2 && stmt.Joins[0].Using == core.ColPartitionKey && !stmt.Joins[0].Left {
		return ex.partitionedJoin(srcs, opts, deg)
	}

	// Start from the FROM table, fold joins in order.
	left := make([]joinedRow, 0)
	first, err := ex.scanAllGuarded(srcs[0], opts, deg)
	if err != nil {
		return nil, err
	}
	for _, r := range first {
		r := r
		tabs := make([]*core.TableRow, len(srcs))
		tabs[0] = &r
		left = append(left, joinedRow{srcs: srcs, tabs: tabs})
	}
	for ji, j := range stmt.Joins {
		si := ji + 1
		leftKey, rightKey, err := joinKeys(j, srcs, si)
		if err != nil {
			return nil, err
		}
		right, err := ex.scanAllGuarded(srcs[si], opts, deg)
		if err != nil {
			return nil, err
		}
		// Build hash on the right side.
		idx := make(map[string][]*core.TableRow, len(right))
		for i := range right {
			v, ok := right[i].Field(rightKey)
			if !ok {
				return nil, fmt.Errorf("sql: join column %q not found in %s", rightKey, srcs[si].name)
			}
			idx[hashKey(v)] = append(idx[hashKey(v)], &right[i])
		}
		var out []joinedRow
		for _, lr := range left {
			v, ok := lr.Resolve("", leftKey)
			if !ok {
				return nil, fmt.Errorf("sql: join column %q not found on left side", leftKey)
			}
			matches := idx[hashKey(v)]
			if len(matches) == 0 {
				if j.Left {
					out = append(out, lr) // right side stays nil
				}
				continue
			}
			for _, m := range matches {
				tabs := make([]*core.TableRow, len(srcs))
				copy(tabs, lr.tabs)
				tabs[si] = m
				out = append(out, joinedRow{srcs: srcs, tabs: tabs})
			}
		}
		left = out
	}
	return left, nil
}

// partitionedJoin joins two co-partitioned tables partition by partition,
// one goroutine per node, each joining only the partitions that node owns.
// Under a non-default policy each side of each partition is read through
// the guarded path, so either side can independently time out, retry or
// degrade to its snapshot replica.
func (ex *Executor) partitionedJoin(srcs []tableSrc, opts ExecOpts, deg *degrades) ([]joinedRow, error) {
	type batch struct {
		rows []joinedRow
		err  error
	}
	ch := make(chan batch, ex.nodes)
	var wg sync.WaitGroup
	for n := 0; n < ex.nodes; n++ {
		parts := ex.ownedPartitions(srcs[0], n)
		if len(parts) == 0 {
			continue // pruned or unowned: no goroutine, no hop
		}
		wg.Add(1)
		go func(node int, parts []int) {
			defer wg.Done()
			var b batch
			// One hop to ship the node's portion of the result back.
			srcs[0].ref.ChargeClientHop(node)
			for _, p := range parts {
				sw := metrics.StartStopwatch()
				right, err := ex.gatherPartition(srcs[1], p, opts, deg)
				ex.recordPartScan(srcs[1], p, len(right), sw.Elapsed())
				if err != nil {
					b.err = err
					break
				}
				sw = metrics.StartStopwatch()
				left, err := ex.gatherPartition(srcs[0], p, opts, deg)
				ex.recordPartScan(srcs[0], p, len(left), sw.Elapsed())
				if err != nil {
					b.err = err
					break
				}
				// Build on the right side of this partition.
				idx := map[string][]*core.TableRow{}
				for i := range right {
					idx[hashKey(right[i].Key)] = append(idx[hashKey(right[i].Key)], &right[i])
				}
				for i := range left {
					for _, m := range idx[hashKey(left[i].Key)] {
						b.rows = append(b.rows, joinedRow{
							srcs: srcs,
							tabs: []*core.TableRow{&left[i], m},
						})
					}
				}
			}
			ch <- b
		}(n, parts)
	}
	wg.Wait()
	close(ch)
	var out []joinedRow
	var firstErr error
	for b := range ch {
		if b.err != nil && firstErr == nil {
			firstErr = b.err
		}
		out = append(out, b.rows...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ownedPartitions returns the partitions of s that node must scan: the
// node's owned partitions, narrowed to the partition-key hint when the
// query pinned one. Every scan path routes through here, so pruning
// applies uniformly to plain scans, guarded scans and partitioned joins.
func (ex *Executor) ownedPartitions(s tableSrc, node int) []int {
	if s.partHint >= 0 {
		if s.ref.PartitionOwner(s.partHint) == node {
			return []int{s.partHint}
		}
		return nil
	}
	var out []int
	for p := 0; p < s.ref.Partitions(); p++ {
		if s.ref.PartitionOwner(p) == node {
			out = append(out, p)
		}
	}
	return out
}

// recordPartScan accounts one partition scan in the source's trace and the
// per-partition registry instruments.
func (ex *Executor) recordPartScan(s tableSrc, p int, rows int, d time.Duration) {
	if s.tr != nil {
		s.tr.wall.Add(int64(d))
		s.tr.rows.Add(int64(rows))
		s.tr.parts.Add(1)
	}
	if p < len(ex.m.part) && !s.ref.IsVirtual() {
		ins := ex.m.part[p]
		ins.scans.Inc()
		ins.rows.Add(int64(rows))
		ins.scan.Record(d)
	}
}

func joinKeys(j Join, srcs []tableSrc, si int) (string, string, error) {
	if j.Using != "" {
		return j.Using, j.Using, nil
	}
	// ON a.x = b.y: decide which side belongs to the joined table.
	matches := func(id Ident) bool {
		return strings.EqualFold(id.Table, srcs[si].alias) || strings.EqualFold(id.Table, srcs[si].name)
	}
	switch {
	case matches(j.OnR):
		return j.OnL.Name, j.OnR.Name, nil
	case matches(j.OnL):
		return j.OnR.Name, j.OnL.Name, nil
	default:
		return "", "", fmt.Errorf("sql: ON clause must reference the joined table %q", srcs[si].name)
	}
}

// hashKey normalizes a join value to a map key, coalescing numeric types
// the way compare() does.
func hashKey(v any) string {
	if i, ok := toInt(v); ok {
		return fmt.Sprintf("i%d", i)
	}
	if f, ok := toFloat(v); ok {
		return fmt.Sprintf("f%g", f)
	}
	return fmt.Sprintf("%T:%v", v, v)
}

// scanAll gathers every row of a source, one goroutine per node that owns
// at least one selected partition. Nodes left empty by partition pruning
// are skipped entirely — no goroutine and no client→node network hop.
func (ex *Executor) scanAll(s tableSrc) []core.TableRow {
	type batch struct {
		rows []core.TableRow
	}
	ch := make(chan batch, ex.nodes)
	launched := 0
	for n := 0; n < ex.nodes; n++ {
		parts := ex.ownedPartitions(s, n)
		if len(parts) == 0 {
			continue
		}
		launched++
		go func(node int, parts []int) {
			var b batch
			s.ref.ChargeClientHop(node)
			for _, p := range parts {
				sw := metrics.StartStopwatch()
				before := len(b.rows)
				s.ref.ScanPartition(s.ssid, p, func(r core.TableRow) bool {
					b.rows = append(b.rows, r)
					return true
				})
				ex.recordPartScan(s, p, len(b.rows)-before, sw.Elapsed())
			}
			ch <- b
		}(n, parts)
	}
	var out []core.TableRow
	for i := 0; i < launched; i++ {
		b := <-ch
		out = append(out, b.rows...)
	}
	return out
}

// aggregate groups rows and evaluates aggregate select items per group.
func (ex *Executor) aggregate(ctx *evalCtx, stmt *Select, srcs []tableSrc, rows []joinedRow) (*Result, error) {
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
	}
	type group struct {
		rows []joinedRow
	}
	groups := map[string]*group{}
	var order []string
	for _, r := range rows {
		var kb strings.Builder
		for _, ge := range stmt.GroupBy {
			v, err := ctx.eval(ge, r)
			if err != nil {
				return nil, err
			}
			kb.WriteString(hashKey(v))
			kb.WriteByte('|')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	// A query with aggregates but no GROUP BY aggregates over all rows,
	// producing exactly one row even when the input is empty.
	if len(stmt.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	res := &Result{}
	for _, it := range stmt.Items {
		res.Columns = append(res.Columns, it.OutputName())
	}
	type outRow struct {
		vals    []any
		sortKey []any
	}
	outs := make([]outRow, 0, len(order))
	for _, k := range order {
		g := groups[k]
		if stmt.Having != nil {
			hv, err := ex.evalWithAggs(ctx, stmt.Having, g.rows)
			if err != nil {
				return nil, err
			}
			if keep, ok := truthy(hv); !ok || !keep {
				continue
			}
		}
		vals := make([]any, len(stmt.Items))
		for i, it := range stmt.Items {
			v, err := ex.evalWithAggs(ctx, it.Expr, g.rows)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		var sortKey []any
		for _, oi := range stmt.OrderBy {
			v, err := ex.evalWithAggs(ctx, oi.Expr, g.rows)
			if err != nil {
				return nil, err
			}
			sortKey = append(sortKey, v)
		}
		outs = append(outs, outRow{vals: vals, sortKey: sortKey})
	}
	sortOutRows(stmt, outs, func(o outRow) []any { return o.sortKey })
	for _, o := range outs {
		res.Rows = append(res.Rows, o.vals)
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
	}
	return res, nil
}

// evalWithAggs evaluates an expression that may contain aggregates, over
// the rows of one group. Non-aggregate subexpressions are evaluated
// against the group's first row (SQL's bare-column-in-GROUP-BY rule).
func (ex *Executor) evalWithAggs(ctx *evalCtx, e Expr, rows []joinedRow) (any, error) {
	switch x := e.(type) {
	case Agg:
		return ex.evalAggregate(ctx, x, rows)
	case Binary:
		if containsAgg(x.L) || containsAgg(x.R) {
			l, err := ex.evalWithAggs(ctx, x.L, rows)
			if err != nil {
				return nil, err
			}
			r, err := ex.evalWithAggs(ctx, x.R, rows)
			if err != nil {
				return nil, err
			}
			return ctx.evalBinary(Binary{Op: x.Op, L: Lit{Val: l}, R: Lit{Val: r}}, nil)
		}
	case Func:
		if containsAgg(x) {
			args := make([]Expr, len(x.Args))
			for i, a := range x.Args {
				v, err := ex.evalWithAggs(ctx, a, rows)
				if err != nil {
					return nil, err
				}
				args[i] = Lit{Val: v}
			}
			return ctx.evalFunc(Func{Name: x.Name, Args: args}, nil)
		}
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return ctx.eval(e, rows[0])
}

func (ex *Executor) evalAggregate(ctx *evalCtx, a Agg, rows []joinedRow) (any, error) {
	if a.Star {
		return int64(len(rows)), nil
	}
	var (
		count   int64
		sum     float64
		sumI    int64
		allInts = true
		minV    any
		maxV    any
		seen    map[string]bool
	)
	if a.Distinct {
		seen = map[string]bool{}
	}
	for _, r := range rows {
		v, err := ctx.eval(a.Arg, r)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if a.Distinct {
			k := hashKey(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		count++
		switch a.Func {
		case AggSum, AggAvg:
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("sql: %s over non-numeric %T", a.Func, v)
			}
			sum += f
			if i, ok := toInt(v); ok {
				sumI += i
			} else {
				allInts = false
			}
		case AggMin:
			if minV == nil {
				minV = v
			} else if c, err := compare(v, minV); err != nil {
				return nil, err
			} else if c < 0 {
				minV = v
			}
		case AggMax:
			if maxV == nil {
				maxV = v
			} else if c, err := compare(v, maxV); err != nil {
				return nil, err
			} else if c > 0 {
				maxV = v
			}
		}
	}
	switch a.Func {
	case AggCount:
		return count, nil
	case AggSum:
		if count == 0 {
			return nil, nil
		}
		if allInts {
			return sumI, nil
		}
		return sum, nil
	case AggAvg:
		if count == 0 {
			return nil, nil
		}
		return sum / float64(count), nil
	case AggMin:
		return minV, nil
	case AggMax:
		return maxV, nil
	}
	return nil, fmt.Errorf("sql: unknown aggregate %q", a.Func)
}

// project evaluates the select list per row for non-aggregate queries.
func (ex *Executor) project(ctx *evalCtx, stmt *Select, srcs []tableSrc, rows []joinedRow) (*Result, error) {
	res := &Result{}
	// Expand * into concrete columns using the first row's schema; an
	// empty working set yields just the pseudo-columns-free header.
	var starCols [][2]string // (qualifier, column)
	hasStar := false
	for _, it := range stmt.Items {
		if it.Star {
			hasStar = true
		}
	}
	if hasStar && len(rows) > 0 {
		for i, t := range rows[0].tabs {
			if t == nil {
				continue
			}
			for _, c := range t.Columns() {
				starCols = append(starCols, [2]string{srcs[i].alias, c})
			}
		}
	}
	for _, it := range stmt.Items {
		if it.Star {
			for _, sc := range starCols {
				res.Columns = append(res.Columns, sc[1])
			}
			continue
		}
		res.Columns = append(res.Columns, it.OutputName())
	}

	type outRow struct {
		vals    []any
		sortKey []any
	}
	outs := make([]outRow, 0, len(rows))
	for _, r := range rows {
		var vals []any
		for _, it := range stmt.Items {
			if it.Star {
				for _, sc := range starCols {
					v, _ := r.Resolve(sc[0], sc[1])
					vals = append(vals, v)
				}
				continue
			}
			v, err := ctx.eval(it.Expr, r)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		var sortKey []any
		for _, oi := range stmt.OrderBy {
			v, err := ctx.eval(oi.Expr, r)
			if err != nil {
				return nil, err
			}
			sortKey = append(sortKey, v)
		}
		outs = append(outs, outRow{vals: vals, sortKey: sortKey})
	}
	sortOutRows(stmt, outs, func(o outRow) []any { return o.sortKey })
	for _, o := range outs {
		res.Rows = append(res.Rows, o.vals)
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
	}
	return res, nil
}

// sortOutRows sorts rows by the pre-computed ORDER BY keys. NULLs sort
// last; incomparable values keep their relative order.
func sortOutRows[T any](stmt *Select, rows []T, key func(T) []any) {
	if len(stmt.OrderBy) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ki, kj := key(rows[i]), key(rows[j])
		for n, oi := range stmt.OrderBy {
			a, b := ki[n], kj[n]
			if a == nil && b == nil {
				continue
			}
			if a == nil {
				return false
			}
			if b == nil {
				return true
			}
			c, err := compare(a, b)
			if err != nil || c == 0 {
				continue
			}
			if oi.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}
