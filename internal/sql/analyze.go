package sql

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"squery/internal/core"
)

// EXPLAIN ANALYZE: the executor always threads an execTrace through a
// query's stages (the bookkeeping is a handful of atomic adds, paid only
// per partition and per stage), so any query can be re-rendered as its
// plan annotated with measured wall time, row counts and partitions
// pruned. EXPLAIN and EXPLAIN ANALYZE are recognised as query prefixes by
// Query/QueryWithOptions and return the plan text as a single-column
// "plan" result — they flow through the public query path like any SELECT.

// scanTrace accumulates one source's scan statistics across the scatter
// goroutines.
type scanTrace struct {
	wall  atomic.Int64 // summed per-partition scan nanoseconds
	rows  atomic.Int64 // rows produced by the scans
	parts atomic.Int64 // partitions actually scanned
	// pruned is set once, before the scan fans out: partitions excluded
	// by the partition-key hint.
	pruned int64
}

// execTrace is the per-stage record of one execution.
type execTrace struct {
	srcs         []tableSrc
	scanJoinWall time.Duration
	joinedRows   int // working-set rows after scan+join
	filtered     bool
	filterWall   time.Duration
	filteredRows int // rows surviving the WHERE filter
	aggregated   bool
	outputWall   time.Duration // aggregate/project + sort + limit
	returnedRows int
	degraded     int
	total        time.Duration
}

// Explain-prefix detection.
const (
	noExplain = iota
	explainPlanOnly
	explainAnalyze
)

// splitExplain strips a leading EXPLAIN [ANALYZE] keyword pair, reporting
// which mode (if any) the query requested and the statement that follows.
func splitExplain(query string) (int, string) {
	rest, ok := cutKeyword(strings.TrimSpace(query), "EXPLAIN")
	if !ok {
		return noExplain, query
	}
	if rest2, ok := cutKeyword(rest, "ANALYZE"); ok {
		return explainAnalyze, rest2
	}
	return explainPlanOnly, rest
}

// cutKeyword removes a leading case-insensitive keyword followed by a
// word boundary.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return s, false
	}
	rest := s[len(kw):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n' && rest[0] != '\r' {
		return s, false
	}
	return strings.TrimSpace(rest), true
}

// planResult wraps rendered plan text as a query result, one row per line.
func planResult(plan string) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		res.Rows = append(res.Rows, []any{line})
	}
	return res
}

// explainAnalyze executes the statement and renders its plan annotated
// with the measured trace.
func (ex *Executor) explainAnalyze(query string, opts ExecOpts) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	res, tr, err := ex.execTraced(stmt, opts, query)
	if err != nil {
		return nil, err
	}
	stmtR := resolveOrderByAliases(stmt)
	where, pins, err := extractPins(stmtR.Where)
	if err != nil {
		return nil, err
	}
	out := planResult(ex.renderPlan(stmtR, tr.srcs, where, pins, tr))
	out.Degraded = res.Degraded
	return out, nil
}

// renderPlan renders the plan for stmt over the resolved sources. With a
// nil trace it produces the plain EXPLAIN output; with a trace it appends
// per-stage [analyze: ...] annotations and a closing totals line.
func (ex *Executor) renderPlan(stmt *Select, srcs []tableSrc, where Expr, pins pinSet, tr *execTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan (%d nodes, %d partitions):\n", ex.nodes, srcs[0].ref.Partitions())
	for i := range srcs {
		s := &srcs[i]
		pinned := pins.forTable(s.alias, s.name)
		switch {
		case s.ref.IsVirtual():
			fmt.Fprintf(&b, "  scan %-24s virtual system table, single partition", s.name)
		case s.ref.IsSnapshot():
			ssid := s.ssid
			if tr == nil {
				resolved, err := s.ref.ResolveSSID(pinned)
				if err != nil {
					fmt.Fprintf(&b, "  scan %-24s snapshot (unresolvable now: %v)\n", s.name, err)
					continue
				}
				ssid = resolved
			}
			how := "latest committed"
			if pinned != 0 {
				how = "pinned"
			}
			fmt.Fprintf(&b, "  scan %-24s snapshot @ ssid %d (%s), scatter-gather over %d nodes",
				s.name, ssid, how, ex.nodes)
		default:
			fmt.Fprintf(&b, "  scan %-24s live (read uncommitted), scatter-gather over %d nodes",
				s.name, ex.nodes)
		}
		if s.partHint >= 0 && !s.ref.IsVirtual() {
			fmt.Fprintf(&b, ", pruned to partition %d by partitionKey", s.partHint)
		}
		if tr != nil {
			fmt.Fprintf(&b, " [analyze: scanned %d/%d partitions (%d pruned), %d rows, %s]",
				s.tr.parts.Load(), s.ref.Partitions(), s.tr.pruned, s.tr.rows.Load(),
				roundDur(time.Duration(s.tr.wall.Load())))
		}
		b.WriteByte('\n')
	}
	for i, j := range stmt.Joins {
		switch {
		case len(srcs) == 2 && i == 0 && j.Using == core.ColPartitionKey && !j.Left:
			fmt.Fprintf(&b, "  join %-24s co-partitioned per-partition hash join (co-location, no shuffle)",
				"USING(partitionKey)")
		case j.Using != "":
			fmt.Fprintf(&b, "  join %-24s global hash join (build right, probe left)",
				"USING("+j.Using+")")
		default:
			fmt.Fprintf(&b, "  join %-24s global hash join (build right, probe left)",
				fmt.Sprintf("ON %s = %s", j.OnL, j.OnR))
		}
		if tr != nil && i == 0 {
			fmt.Fprintf(&b, " [analyze: %d rows, scan+join %s]", tr.joinedRows, roundDur(tr.scanJoinWall))
		}
		b.WriteByte('\n')
	}
	if where != nil {
		fmt.Fprintf(&b, "  filter %s", where)
		if tr != nil && tr.filtered {
			fmt.Fprintf(&b, " [analyze: kept %d/%d rows, %s]", tr.filteredRows, tr.joinedRows, roundDur(tr.filterWall))
		}
		b.WriteByte('\n')
	}
	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		keys := make([]string, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			keys[i] = g.String()
		}
		if len(keys) == 0 {
			fmt.Fprintf(&b, "  aggregate (single group)")
		} else {
			fmt.Fprintf(&b, "  aggregate GROUP BY %s", strings.Join(keys, ", "))
		}
		if tr != nil {
			fmt.Fprintf(&b, " [analyze: %d group(s), %s]", tr.returnedRows, roundDur(tr.outputWall))
		}
		b.WriteByte('\n')
		if stmt.Having != nil {
			fmt.Fprintf(&b, "  having %s\n", stmt.Having)
		}
	}
	if len(stmt.OrderBy) > 0 {
		parts := make([]string, len(stmt.OrderBy))
		for i, oi := range stmt.OrderBy {
			dir := "ASC"
			if oi.Desc {
				dir = "DESC"
			}
			parts[i] = oi.Expr.String() + " " + dir
		}
		fmt.Fprintf(&b, "  sort %s\n", strings.Join(parts, ", "))
	}
	if stmt.Limit >= 0 {
		fmt.Fprintf(&b, "  limit %d\n", stmt.Limit)
	}
	items := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		items[i] = it.String()
	}
	fmt.Fprintf(&b, "  project %s", strings.Join(items, ", "))
	if tr != nil && !tr.aggregated {
		fmt.Fprintf(&b, " [analyze: %d row(s), %s]", tr.returnedRows, roundDur(tr.outputWall))
	}
	b.WriteByte('\n')
	if tr != nil {
		fmt.Fprintf(&b, "analyzed: total %s, %d row(s) returned, %d degraded partition(s)\n",
			roundDur(tr.total), tr.returnedRows, tr.degraded)
	}
	return b.String()
}

// roundDur trims a duration for plan display.
func roundDur(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
