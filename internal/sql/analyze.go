package sql

import "strings"

// EXPLAIN ANALYZE: every execution runs a compiled plan tree whose nodes
// self-report rows and wall time (the bookkeeping is a handful of atomic
// adds, paid per batch and per partition), so any query can be
// re-rendered as the exact plan instance it ran, annotated with the
// measured stats. EXPLAIN and EXPLAIN ANALYZE are recognised as query
// prefixes by Query/QueryWithOptions and return the plan text as a
// single-column "plan" result — they flow through the public query path
// like any SELECT.

// Explain-prefix detection.
const (
	noExplain = iota
	explainPlanOnly
	explainAnalyze
)

// splitExplain strips a leading EXPLAIN [ANALYZE] keyword pair, reporting
// which mode (if any) the query requested and the statement that follows.
func splitExplain(query string) (int, string) {
	rest, ok := cutKeyword(strings.TrimSpace(query), "EXPLAIN")
	if !ok {
		return noExplain, query
	}
	if rest2, ok := cutKeyword(rest, "ANALYZE"); ok {
		return explainAnalyze, rest2
	}
	return explainPlanOnly, rest
}

// cutKeyword removes a leading case-insensitive keyword followed by a
// word boundary.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return s, false
	}
	rest := s[len(kw):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n' && rest[0] != '\r' {
		return s, false
	}
	return strings.TrimSpace(rest), true
}

// planResult wraps rendered plan text as a query result, one row per line.
func planResult(plan string) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		res.Rows = append(res.Rows, []any{line})
	}
	return res
}

// explainAnalyze executes the statement and renders the plan instance it
// ran, annotated with the stats the execution recorded.
func (ex *Executor) explainAnalyze(query string, opts ExecOpts) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	res, pp, err := ex.execTraced(stmt, opts, query)
	if err != nil {
		return nil, err
	}
	out := planResult(pp.render(ex.clusterNodes(), true))
	out.Degraded = res.Degraded
	return out, nil
}
