package sql

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"time"

	"squery/internal/core"
	"squery/internal/partition"
)

// SUBSCRIBE <select>: standing queries over live operator state. Where the
// one-shot path compiles a statement into a pipeline that scans, filters,
// joins and aggregates once and exits, a standing query keeps the same
// logical stages alive and drives them in two modes: an initial snapshot
// scan over a shared arrangement's maintained view, then incremental delta
// application as the arrangement streams changes. The one-shot execution
// is the degenerate case — run the snapshot phase to the current
// watermark, detach (see QueryStanding). There is one implementation of
// the filter/project/join/agg logic for both drive modes: the snapshot
// phase replays the arrangement's rows through exactly the delta-insert
// path the live phase uses.
//
// The supported dialect is the incremental-maintainable core of the
// engine's SELECT: single live tables or one inner equi-join, WHERE,
// projections, GROUP BY / aggregates / HAVING. ORDER BY and LIMIT are
// rejected (a standing result set has no stable order to page), as are
// snapshot_ and sys.* tables (snapshots are immutable and virtual tables
// have no change stream — poll those).

// splitSubscribe strips a leading SUBSCRIBE keyword, reporting whether the
// query requested a standing subscription and the statement that follows.
func splitSubscribe(query string) (bool, string) {
	rest, ok := cutKeyword(strings.TrimSpace(query), "SUBSCRIBE")
	if !ok {
		return false, query
	}
	return true, rest
}

// SetArrangements wires the executor to a shared arrangement registry,
// enabling SUBSCRIBE. Without it every subscription attempt fails.
func (ex *Executor) SetArrangements(r *core.ArrangeRegistry) { ex.arr = r }

// SubDelta is one output-row change of a standing query. Key identifies
// the output row the delta applies to: the source row's partition-key
// string for plain standing queries, "left|right" for join rows, the
// rendered grouping key (or "*" for a global aggregate) for aggregates.
type SubDelta struct {
	Key    string
	Vals   []any // output column values; nil on Delete
	Delete bool
}

// SubEvent is one ordered delivery to a subscriber.
type SubEvent struct {
	Deltas []SubDelta
	// Watermark is the cumulative count of source deltas folded into the
	// standing query's state when the event was emitted.
	Watermark uint64
	// Snapshot marks a full-state frame: the initial result at attach
	// time, or a resync after the subscriber's queue overflowed and shed.
	// Appliers must replace their view rather than merge.
	Snapshot bool
	// Err reports a standing-query evaluation failure; it is the final
	// event, the standing query stops applying deltas after emitting it.
	Err error
}

// matchedRow is one currently-matching output row of a non-aggregate
// standing query: its display key and projected values.
type matchedRow struct {
	disp string
	vals []any
}

// subGroup is one live group of an aggregate standing query: its rendered
// key and the source rows of every joined row currently in the group.
type subGroup struct {
	disp string
	rows map[string][]core.TableRow // joined-row id -> per-source rows
}

// pendDeltas is one buffered arrangement delivery, tagged with the source
// it came from.
type pendDeltas struct {
	side int
	ds   []core.ArrDelta
}

// batchEff accumulates the output effects of one delta batch so an
// update (tombstone + upsert of the same key, or a value change) emits
// one coalesced delta instead of a delete/insert pair.
type batchEff struct {
	// before records, per touched non-aggregate output id, the matched row
	// at first touch (nil = was not matched).
	before map[string]*matchedRow
	// dirty records the aggregate groups needing recomputation.
	dirty map[string]bool
}

func newBatchEff() *batchEff {
	return &batchEff{before: map[string]*matchedRow{}, dirty: map[string]bool{}}
}

// StandingQuery is one compiled incrementally-maintained query: N of them
// attach to the same shared arrangement per source table. Events reach the
// sink in order — the initial snapshot frame synchronously during
// subscription, delta frames from the standing query's applier goroutine.
type StandingQuery struct {
	ex    *Executor
	stmt  *Select
	query string
	cols  []string
	ctx   *evalCtx // LOCALTIMESTAMP is fixed at subscribe time
	sink  func(SubEvent)

	srcs    []tableSrc // name/alias only; the expression resolver's view
	arrs    []*core.Arrangement
	lisIDs  []int
	aggMode bool
	// joinCols[i] is source i's equi-join column (join mode only).
	joinCols [2]string

	// pending buffers arrangement deliveries (which run under the
	// arrangement's state lock and must not block) for the applier.
	pendMu  sync.Mutex
	pending []pendDeltas
	wake    chan struct{}
	done    chan struct{}
	stopped chan struct{}
	closing sync.Once

	mu        sync.Mutex
	failed    error
	watermark uint64
	// sides mirrors each source's current rows (keyed by partition-key
	// string); joins probe the opposite mirror through jindex.
	sides  []map[string]core.TableRow
	jindex []map[joinKey]map[string]bool
	// matched is the non-aggregate output state; groups/rowGroup/emitted
	// the aggregate one.
	matched  map[string]*matchedRow
	groups   map[string]*subGroup
	rowGroup map[string]string
	emitted  map[string]*matchedRow
}

// SubscribeQuery compiles a statement (with or without the SUBSCRIBE
// prefix) into a standing query attached to shared arrangements. The sink
// receives the initial snapshot frame synchronously before SubscribeQuery
// returns, then ordered delta frames; it must not block (enqueue and
// return) and must tolerate being called from another goroutine. Close
// detaches and releases the arrangements.
func (ex *Executor) SubscribeQuery(query string, sink func(SubEvent)) (*StandingQuery, error) {
	if _, rest := splitSubscribe(query); true {
		query = rest
	}
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ex.subscribeStmt(stmt, query, sink)
}

// subscribeStmt validates, acquires arrangements, seeds the standing
// state through the delta-insert path, emits the snapshot frame and
// starts the applier.
func (ex *Executor) subscribeStmt(stmt *Select, query string, sink func(SubEvent)) (*StandingQuery, error) {
	if ex.arr == nil {
		return nil, fmt.Errorf("sql: subscriptions are not enabled (no arrangement registry)")
	}
	sq := &StandingQuery{
		ex:    ex,
		stmt:  stmt,
		query: query,
		ctx:   &evalCtx{now: time.Now()},
		sink:  sink,

		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),

		matched:  map[string]*matchedRow{},
		groups:   map[string]*subGroup{},
		rowGroup: map[string]string{},
		emitted:  map[string]*matchedRow{},
	}
	if err := sq.validate(); err != nil {
		return nil, err
	}
	sq.sides = make([]map[string]core.TableRow, len(sq.srcs))
	sq.jindex = make([]map[joinKey]map[string]bool, len(sq.srcs))
	for i := range sq.srcs {
		sq.sides[i] = map[string]core.TableRow{}
		sq.jindex[i] = map[joinKey]map[string]bool{}
	}

	// Acquire one shared arrangement per source and attach buffering
	// listeners. Attach's clean cut plus the pending buffer means deltas
	// racing the seed below are applied after it, never lost or doubled.
	type seed struct {
		rows []core.TableRow
	}
	seeds := make([]seed, len(sq.srcs))
	for i := range sq.srcs {
		a, err := ex.arr.Acquire(sq.srcs[i].name)
		if err != nil {
			for _, prev := range sq.arrs {
				prev.Release()
			}
			return nil, err
		}
		sq.arrs = append(sq.arrs, a)
		side := i
		rows, _, id := a.Attach(func(ds []core.ArrDelta) { sq.enqueue(side, ds) })
		sq.lisIDs = append(sq.lisIDs, id)
		seeds[i].rows = rows
	}

	// Drive mode 1, the snapshot scan: replay the arrangements' current
	// rows through the same insert path live deltas take.
	sq.mu.Lock()
	eff := newBatchEff()
	if sq.aggMode && len(sq.stmt.GroupBy) == 0 {
		// A global aggregate emits one row even over an empty input; the
		// "*" group always exists and the snapshot frame always carries it.
		sq.globalGroupLocked()
		eff.dirty[""] = true
	}
	for i := range seeds {
		for _, r := range seeds[i].rows {
			if sq.failed != nil {
				break
			}
			ks := partition.KeyString(r.Key)
			sq.sides[i][ks] = r
			sq.addSrcRow(i, ks, r, eff)
		}
	}
	deltas := sq.settleLocked(eff)
	failed := sq.failed
	wm := sq.watermark
	sq.mu.Unlock()
	if failed != nil {
		// The applier goroutine hasn't started, so nothing will ever
		// close stopped — satisfy Close's handshake first or it blocks
		// forever on a seed-time evaluation failure.
		close(sq.stopped)
		sq.Close()
		return nil, failed
	}
	sink(SubEvent{Deltas: deltas, Watermark: wm, Snapshot: true})
	go sq.run()
	return sq, nil
}

// validate checks the statement against the incremental dialect and
// resolves sources and join columns.
func (sq *StandingQuery) validate() error {
	stmt := sq.stmt
	if len(stmt.OrderBy) > 0 {
		return fmt.Errorf("sql: SUBSCRIBE does not support ORDER BY (standing results have no stable order)")
	}
	if stmt.Limit >= 0 {
		return fmt.Errorf("sql: SUBSCRIBE does not support LIMIT")
	}
	for _, it := range stmt.Items {
		if it.Star {
			return fmt.Errorf("sql: SUBSCRIBE does not support SELECT * — name the output columns")
		}
	}
	if len(stmt.Joins) > 1 {
		return fmt.Errorf("sql: SUBSCRIBE supports at most one join")
	}
	if len(stmt.Joins) == 1 && stmt.Joins[0].Left {
		return fmt.Errorf("sql: SUBSCRIBE does not support LEFT JOIN")
	}
	tables := []TableName{stmt.From}
	if len(stmt.Joins) == 1 {
		tables = append(tables, stmt.Joins[0].Table)
	}
	for _, t := range tables {
		ref, err := sq.ex.cat.Table(t.Name)
		if err != nil {
			return err
		}
		if ref.IsVirtual() {
			return fmt.Errorf("sql: cannot SUBSCRIBE to virtual table %q (no change stream — poll it)", t.Name)
		}
		if ref.IsSnapshot() {
			return fmt.Errorf("sql: cannot SUBSCRIBE to snapshot table %q (snapshots are immutable — query it once)", t.Name)
		}
		sq.srcs = append(sq.srcs, tableSrc{name: t.Name, alias: t.Ref(), partHint: -1})
	}
	sq.aggMode = stmt.HasAggregates() || len(stmt.GroupBy) > 0
	if stmt.Having != nil && !sq.aggMode {
		return fmt.Errorf("sql: HAVING requires aggregation")
	}
	if len(sq.srcs) == 2 {
		lk, rk, err := joinKeys(stmt.Joins[0], sq.srcs, 1)
		if err != nil {
			return err
		}
		sq.joinCols[0], sq.joinCols[1] = lk, rk
	}
	for _, it := range stmt.Items {
		sq.cols = append(sq.cols, it.OutputName())
	}
	return nil
}

// Columns returns the output column names, aligned with SubDelta.Vals.
func (sq *StandingQuery) Columns() []string { return append([]string(nil), sq.cols...) }

// Query returns the statement text the subscription was created from.
func (sq *StandingQuery) Query() string { return sq.query }

// Tables returns the source table names, FROM first.
func (sq *StandingQuery) Tables() []string {
	out := make([]string, len(sq.srcs))
	for i, s := range sq.srcs {
		out[i] = s.name
	}
	return out
}

// Watermark returns the cumulative count of source deltas folded in.
func (sq *StandingQuery) Watermark() uint64 {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return sq.watermark
}

// Snapshot returns the standing query's full current output as a snapshot
// frame — the resync a shed subscriber re-converges from.
func (sq *StandingQuery) Snapshot() SubEvent {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	out := sq.matched
	if sq.aggMode {
		out = sq.emitted
	}
	ds := make([]SubDelta, 0, len(out))
	for _, m := range out {
		ds = append(ds, SubDelta{Key: m.disp, Vals: m.vals})
	}
	return SubEvent{Deltas: ds, Watermark: sq.watermark, Snapshot: true}
}

// Close detaches from the arrangements (dropping them at zero readers)
// and stops the applier. Idempotent; no events are delivered after it
// returns.
func (sq *StandingQuery) Close() {
	sq.closing.Do(func() {
		for i, a := range sq.arrs {
			a.Detach(sq.lisIDs[i])
		}
		close(sq.done)
		<-sq.stopped
		for _, a := range sq.arrs {
			a.Release()
		}
	})
}

// enqueue is the arrangement listener: called with the arrangement's state
// lock held, it buffers and wakes the applier.
func (sq *StandingQuery) enqueue(side int, ds []core.ArrDelta) {
	sq.pendMu.Lock()
	sq.pending = append(sq.pending, pendDeltas{side: side, ds: ds})
	sq.pendMu.Unlock()
	select {
	case sq.wake <- struct{}{}:
	default:
	}
}

// run is drive mode 2, the delta applier: fold buffered arrangement
// deltas through the standing stages and emit the resulting output deltas.
func (sq *StandingQuery) run() {
	defer close(sq.stopped)
	for {
		select {
		case <-sq.done:
			return
		case <-sq.wake:
		}
		for {
			sq.pendMu.Lock()
			batches := sq.pending
			sq.pending = nil
			sq.pendMu.Unlock()
			if len(batches) == 0 {
				break
			}
			for _, b := range batches {
				sq.mu.Lock()
				if sq.failed != nil {
					sq.mu.Unlock()
					return
				}
				eff := newBatchEff()
				for _, d := range b.ds {
					sq.applyDelta(b.side, d, eff)
				}
				deltas := sq.settleLocked(eff)
				failed := sq.failed
				wm := sq.watermark
				sq.mu.Unlock()
				if failed != nil {
					sq.sink(SubEvent{Err: failed, Watermark: wm})
					return
				}
				if len(deltas) > 0 {
					sq.sink(SubEvent{Deltas: deltas, Watermark: wm})
				}
			}
		}
	}
}

// applyDelta folds one arrangement delta into the mirrors and the derived
// state. An upsert of an existing key is a remove + insert; batchEff
// coalesces the pair back into one output delta.
func (sq *StandingQuery) applyDelta(side int, d core.ArrDelta, eff *batchEff) {
	sq.watermark++
	old, had := sq.sides[side][d.KeyS]
	if had {
		sq.removeSrcRow(side, d.KeyS, old, eff)
		delete(sq.sides[side], d.KeyS)
	}
	if d.Tombstone {
		return
	}
	sq.sides[side][d.KeyS] = d.Row
	sq.addSrcRow(side, d.KeyS, d.Row, eff)
}

// addSrcRow enumerates the joined rows a new source row creates and
// inserts each into the standing result.
func (sq *StandingQuery) addSrcRow(side int, ks string, row core.TableRow, eff *batchEff) {
	if len(sq.srcs) == 1 {
		sq.insertJR(ks, ks, []core.TableRow{row}, eff)
		return
	}
	jk, ok := sq.joinKeyOf(side, row)
	if !ok {
		return
	}
	set := sq.jindex[side][jk]
	if set == nil {
		set = map[string]bool{}
		sq.jindex[side][jk] = set
	}
	set[ks] = true
	other := 1 - side
	for pks := range sq.jindex[other][jk] {
		prow, ok := sq.sides[other][pks]
		if !ok {
			continue
		}
		lks, rks, lrow, rrow := ks, pks, row, prow
		if side == 1 {
			lks, rks, lrow, rrow = pks, ks, prow, row
		}
		sq.insertJR(pairID(lks, rks), lks+"|"+rks, []core.TableRow{lrow, rrow}, eff)
	}
}

// removeSrcRow removes every joined row a departing source row was part of.
func (sq *StandingQuery) removeSrcRow(side int, ks string, row core.TableRow, eff *batchEff) {
	if len(sq.srcs) == 1 {
		sq.removeJR(ks, ks, eff)
		return
	}
	jk, ok := sq.joinKeyOf(side, row)
	if !ok {
		return
	}
	if set := sq.jindex[side][jk]; set != nil {
		delete(set, ks)
		if len(set) == 0 {
			delete(sq.jindex[side], jk)
		}
	}
	other := 1 - side
	for pks := range sq.jindex[other][jk] {
		lks, rks := ks, pks
		if side == 1 {
			lks, rks = pks, ks
		}
		sq.removeJR(pairID(lks, rks), lks+"|"+rks, eff)
	}
}

// joinKeyOf extracts a source row's equi-join key. A row missing the join
// column fails the standing query — the same contract the one-shot hash
// join enforces.
func (sq *StandingQuery) joinKeyOf(side int, row core.TableRow) (joinKey, bool) {
	v, ok := row.Field(sq.joinCols[side])
	if !ok {
		sq.fail(fmt.Errorf("sql: join column %q not found in %s", sq.joinCols[side], sq.srcs[side].name))
		return joinKey{}, false
	}
	return makeJoinKey(v), true
}

// pairID encodes a join row's identity collision-free (display keys use
// the readable "l|r" form, which may collide and is display-only).
func pairID(lks, rks string) string {
	return string(appendGroupKey(appendGroupKey(nil, lks), rks))
}

// insertJR runs one joined row through the standing WHERE and into the
// output (non-aggregate) or group (aggregate) state.
func (sq *StandingQuery) insertJR(id, disp string, rows []core.TableRow, eff *batchEff) {
	if sq.failed != nil {
		return
	}
	jr := sq.joined(rows)
	if sq.stmt.Where != nil {
		v, err := sq.ctx.eval(sq.stmt.Where, jr)
		if err != nil {
			sq.fail(err)
			return
		}
		if keep, ok := truthy(v); !ok || !keep {
			if !sq.aggMode {
				sq.touch(id, eff) // an update may revoke a previous match
			}
			return
		}
	}
	if sq.aggMode {
		sq.insertGroupRow(id, jr, rows, eff)
		return
	}
	sq.touch(id, eff)
	vals := make([]any, len(sq.stmt.Items))
	for i, it := range sq.stmt.Items {
		v, err := sq.ctx.eval(it.Expr, jr)
		if err != nil {
			sq.fail(err)
			return
		}
		vals[i] = v
	}
	sq.matched[id] = &matchedRow{disp: disp, vals: vals}
}

// removeJR removes one joined row from the output or its group.
func (sq *StandingQuery) removeJR(id, disp string, eff *batchEff) {
	if sq.failed != nil {
		return
	}
	if sq.aggMode {
		gk, ok := sq.rowGroup[id]
		if !ok {
			return
		}
		delete(sq.rowGroup, id)
		if g := sq.groups[gk]; g != nil {
			delete(g.rows, id)
		}
		eff.dirty[gk] = true
		return
	}
	if _, ok := sq.matched[id]; !ok {
		return
	}
	sq.touch(id, eff)
	delete(sq.matched, id)
}

// touch records the pre-batch matched state of one non-aggregate output id.
func (sq *StandingQuery) touch(id string, eff *batchEff) {
	if _, seen := eff.before[id]; seen {
		return
	}
	eff.before[id] = sq.matched[id]
}

// insertGroupRow files one matching joined row under its group and marks
// the group dirty.
func (sq *StandingQuery) insertGroupRow(id string, jr joinedRow, rows []core.TableRow, eff *batchEff) {
	var gk string
	var disp string
	if len(sq.stmt.GroupBy) == 0 {
		gk, disp = "", "*"
	} else {
		var keyBuf []byte
		var parts []string
		for _, ge := range sq.stmt.GroupBy {
			v, err := sq.ctx.eval(ge, jr)
			if err != nil {
				sq.fail(err)
				return
			}
			keyBuf = appendGroupKey(keyBuf, v)
			parts = append(parts, fmt.Sprintf("%v", v))
		}
		gk, disp = string(keyBuf), strings.Join(parts, "|")
	}
	g := sq.groups[gk]
	if g == nil {
		g = &subGroup{disp: disp, rows: map[string][]core.TableRow{}}
		sq.groups[gk] = g
	}
	g.rows[id] = rows
	sq.rowGroup[id] = gk
	eff.dirty[gk] = true
}

// globalGroupLocked ensures the "*" group of a global aggregate exists.
func (sq *StandingQuery) globalGroupLocked() {
	if sq.groups[""] == nil {
		sq.groups[""] = &subGroup{disp: "*", rows: map[string][]core.TableRow{}}
	}
}

// settleLocked turns a batch's accumulated effects into output deltas:
// touched non-aggregate rows diff their before/after matched state, dirty
// groups recompute their aggregates (suppressing no-op upserts).
func (sq *StandingQuery) settleLocked(eff *batchEff) []SubDelta {
	if sq.failed != nil {
		return nil
	}
	var out []SubDelta
	for id, prev := range eff.before {
		cur := sq.matched[id]
		switch {
		case cur != nil:
			if prev != nil && reflect.DeepEqual(prev.vals, cur.vals) {
				continue
			}
			out = append(out, SubDelta{Key: cur.disp, Vals: cur.vals})
		case prev != nil:
			out = append(out, SubDelta{Key: prev.disp, Delete: true})
		}
	}
	for gk := range eff.dirty {
		d, ok := sq.settleGroup(gk)
		if sq.failed != nil {
			return nil
		}
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// settleGroup recomputes one dirty group through HAVING and the select
// list, returning the delta it produces (if any).
func (sq *StandingQuery) settleGroup(gk string) (SubDelta, bool) {
	g := sq.groups[gk]
	global := len(sq.stmt.GroupBy) == 0
	if g == nil || (len(g.rows) == 0 && !global) {
		if g != nil {
			delete(sq.groups, gk)
		}
		if prev, ok := sq.emitted[gk]; ok {
			delete(sq.emitted, gk)
			return SubDelta{Key: prev.disp, Delete: true}, true
		}
		return SubDelta{}, false
	}
	rows := make([]joinedRow, 0, len(g.rows))
	for _, rs := range g.rows {
		rows = append(rows, sq.joined(rs))
	}
	if sq.stmt.Having != nil {
		hv, err := sq.ex.evalWithAggs(sq.ctx, sq.stmt.Having, rows)
		if err != nil {
			sq.fail(err)
			return SubDelta{}, false
		}
		if keep, ok := truthy(hv); !ok || !keep {
			if prev, ok := sq.emitted[gk]; ok {
				delete(sq.emitted, gk)
				return SubDelta{Key: prev.disp, Delete: true}, true
			}
			return SubDelta{}, false
		}
	}
	vals := make([]any, len(sq.stmt.Items))
	for i, it := range sq.stmt.Items {
		v, err := sq.ex.evalWithAggs(sq.ctx, it.Expr, rows)
		if err != nil {
			sq.fail(err)
			return SubDelta{}, false
		}
		vals[i] = v
	}
	if prev, ok := sq.emitted[gk]; ok && reflect.DeepEqual(prev.vals, vals) {
		return SubDelta{}, false
	}
	sq.emitted[gk] = &matchedRow{disp: g.disp, vals: vals}
	return SubDelta{Key: g.disp, Vals: vals}, true
}

// joined builds the evaluation view of one joined row. The source rows
// are copied onto the heap once per insertion; group recomputation reuses
// the stored copies.
func (sq *StandingQuery) joined(rows []core.TableRow) joinedRow {
	tabs := make([]*core.TableRow, len(rows))
	for i := range rows {
		r := rows[i]
		tabs[i] = &r
	}
	return joinedRow{srcs: sq.srcs, tabs: tabs}
}

// fail records the first evaluation error; the standing query stops
// producing deltas after it (the applier delivers it as the final event).
func (sq *StandingQuery) fail(err error) {
	if sq.failed == nil {
		sq.failed = err
	}
}

// QueryStanding runs a statement through the standing-query pipeline in
// its degenerate one-shot mode: attach, take the initial snapshot frame at
// the current watermark, detach. Row order is unspecified. It exists to
// make "one stage implementation, two drive modes" checkable — the result
// must equal the streaming executor's (unordered) result for the same
// statement.
func (ex *Executor) QueryStanding(query string) (*Result, error) {
	var first *SubEvent
	sq, err := ex.SubscribeQuery(query, func(ev SubEvent) {
		if first == nil {
			evCopy := ev
			first = &evCopy
		}
	})
	if err != nil {
		return nil, err
	}
	defer sq.Close()
	res := &Result{Columns: sq.Columns()}
	if first != nil {
		for _, d := range first.Deltas {
			res.Rows = append(res.Rows, d.Vals)
		}
	}
	return res, nil
}
