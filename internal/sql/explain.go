package sql

import (
	"fmt"
	"strings"

	"squery/internal/core"
)

// Explain parses and plans a query without executing it, returning a
// human-readable plan description: which state tables it reads (live or
// snapshot, and at which resolved snapshot id), the join strategy
// (co-partitioned vs global hash), the residual filter, and the
// post-processing stages. The snapshot ids shown are the ones the query
// would use if executed now.
func (ex *Executor) Explain(query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	stmt = resolveOrderByAliases(stmt)

	srcs := make([]tableSrc, 0, 1+len(stmt.Joins))
	addSrc := func(t TableName) error {
		ref, err := ex.cat.Table(t.Name)
		if err != nil {
			return err
		}
		srcs = append(srcs, tableSrc{ref: ref, name: t.Name, alias: t.Ref()})
		return nil
	}
	if err := addSrc(stmt.From); err != nil {
		return "", err
	}
	for _, j := range stmt.Joins {
		if err := addSrc(j.Table); err != nil {
			return "", err
		}
	}
	where, pins, err := extractPins(stmt.Where)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "plan (%d nodes, %d partitions):\n", ex.nodes, srcs[0].ref.Partitions())
	for i := range srcs {
		s := &srcs[i]
		pinned := pins.forTable(s.alias, s.name)
		if s.ref.IsSnapshot() {
			ssid, err := s.ref.ResolveSSID(pinned)
			if err != nil {
				fmt.Fprintf(&b, "  scan %-24s snapshot (unresolvable now: %v)\n", s.name, err)
				continue
			}
			how := "latest committed"
			if pinned != 0 {
				how = "pinned"
			}
			fmt.Fprintf(&b, "  scan %-24s snapshot @ ssid %d (%s), scatter-gather over %d nodes\n",
				s.name, ssid, how, ex.nodes)
		} else {
			fmt.Fprintf(&b, "  scan %-24s live (read uncommitted), scatter-gather over %d nodes\n",
				s.name, ex.nodes)
		}
	}
	for i, j := range stmt.Joins {
		switch {
		case len(srcs) == 2 && i == 0 && j.Using == core.ColPartitionKey && !j.Left:
			fmt.Fprintf(&b, "  join %-24s co-partitioned per-partition hash join (co-location, no shuffle)\n",
				"USING(partitionKey)")
		case j.Using != "":
			fmt.Fprintf(&b, "  join %-24s global hash join (build right, probe left)\n",
				"USING("+j.Using+")")
		default:
			fmt.Fprintf(&b, "  join %-24s global hash join (build right, probe left)\n",
				fmt.Sprintf("ON %s = %s", j.OnL, j.OnR))
		}
	}
	if where != nil {
		fmt.Fprintf(&b, "  filter %s\n", where)
	}
	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		keys := make([]string, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			keys[i] = g.String()
		}
		if len(keys) == 0 {
			fmt.Fprintf(&b, "  aggregate (single group)\n")
		} else {
			fmt.Fprintf(&b, "  aggregate GROUP BY %s\n", strings.Join(keys, ", "))
		}
		if stmt.Having != nil {
			fmt.Fprintf(&b, "  having %s\n", stmt.Having)
		}
	}
	if len(stmt.OrderBy) > 0 {
		parts := make([]string, len(stmt.OrderBy))
		for i, oi := range stmt.OrderBy {
			dir := "ASC"
			if oi.Desc {
				dir = "DESC"
			}
			parts[i] = oi.Expr.String() + " " + dir
		}
		fmt.Fprintf(&b, "  sort %s\n", strings.Join(parts, ", "))
	}
	if stmt.Limit >= 0 {
		fmt.Fprintf(&b, "  limit %d\n", stmt.Limit)
	}
	items := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		items[i] = it.String()
	}
	fmt.Fprintf(&b, "  project %s\n", strings.Join(items, ", "))
	return b.String(), nil
}
