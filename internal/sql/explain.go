package sql

// Explain parses and compiles a query without executing it, returning a
// human-readable rendering of the plan tree the executor would run:
// which state tables it reads (live or snapshot, and at which resolved
// snapshot id), the predicate and column set pushed into each scan,
// partition pruning, the join strategy (co-partitioned vs global hash),
// the residual filter, and the post-processing stages. The snapshot ids
// shown are the ones the query would use if executed now. There is no
// separate explain path: this is the same compile step execution uses,
// and the same tree EXPLAIN ANALYZE (analyze.go) renders with per-stage
// measurements after running it.
func (ex *Executor) Explain(query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	stmt = resolveOrderByAliases(stmt)
	pp, err := ex.compile(stmt, ExecOpts{}, true)
	if err != nil {
		return "", err
	}
	return pp.render(ex.clusterNodes(), false), nil
}
