package sql

// Explain parses and plans a query without executing it, returning a
// human-readable plan description: which state tables it reads (live or
// snapshot, and at which resolved snapshot id), the join strategy
// (co-partitioned vs global hash), partition pruning, the residual filter,
// and the post-processing stages. The snapshot ids shown are the ones the
// query would use if executed now. The rendering is shared with EXPLAIN
// ANALYZE (analyze.go), which additionally annotates each stage with its
// measured wall time and row counts.
func (ex *Executor) Explain(query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	stmt = resolveOrderByAliases(stmt)
	srcs, where, pins, err := ex.resolveSources(stmt)
	if err != nil {
		return "", err
	}
	return ex.renderPlan(stmt, srcs, where, pins, nil), nil
}
