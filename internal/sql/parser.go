package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Tables parses a query and returns the table names it references, FROM
// first, then joined tables in order.
func Tables(input string) ([]string, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	out := []string{stmt.From.Name}
	for _, j := range stmt.Joins {
		out = append(out, j.Table.Name)
	}
	return out, nil
}

// Parse parses one SELECT statement.
func Parse(input string) (*Select, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks  []token
	i     int
	depth int
}

// maxExprDepth bounds expression-nesting recursion (parenthesised
// sub-expressions, chained NOT, chained unary minus) so hostile inputs —
// the fuzzer's favourite is half a megabyte of "(" — fail with a parse
// error instead of exhausting the goroutine stack. 200 levels is far
// beyond any query a human or a generator writes.
const maxExprDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxExprDepth {
		return fmt.Errorf("sql: expression nesting exceeds %d levels", maxExprDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sql: expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %s", p.peek())
	}
	return p.next().text, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Select{Limit: -1}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	// JOIN clauses.
	for {
		left := false
		if p.acceptKeyword("LEFT") {
			p.acceptKeyword("OUTER")
			left = true
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		j, err := p.parseJoin(left)
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, j)
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if len(stmt.GroupBy) == 0 && !stmt.HasAggregates() {
			return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
		}
		stmt.Having = h
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		if p.peek().kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT, found %s", p.peek())
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: invalid LIMIT %v", n)
		}
		stmt.Limit = n
	}

	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		// Bare alias: SELECT count c ...
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableName() (TableName, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableName{}, err
	}
	// Dotted names (sys.operators, sys.partitions, ...) are single table
	// names here — the catalog namespaces virtual tables with a "sys."
	// prefix rather than a real schema hierarchy.
	for p.acceptSymbol(".") {
		part, err := p.expectIdent()
		if err != nil {
			return TableName{}, err
		}
		name += "." + part
	}
	t := TableName{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableName{}, err
		}
		t.Alias = alias
	} else if p.peek().kind == tokIdent {
		t.Alias = p.next().text
	}
	return t, nil
}

func (p *parser) parseJoin(left bool) (Join, error) {
	tbl, err := p.parseTableName()
	if err != nil {
		return Join{}, err
	}
	j := Join{Table: tbl, Left: left}
	switch {
	case p.acceptKeyword("USING"):
		if err := p.expectSymbol("("); err != nil {
			return Join{}, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return Join{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return Join{}, err
		}
		j.Using = col
	case p.acceptKeyword("ON"):
		l, err := p.parseQualifiedIdent()
		if err != nil {
			return Join{}, err
		}
		if err := p.expectSymbol("="); err != nil {
			return Join{}, err
		}
		r, err := p.parseQualifiedIdent()
		if err != nil {
			return Join{}, err
		}
		j.OnL, j.OnR = l, r
	default:
		return Join{}, fmt.Errorf("sql: JOIN requires USING(col) or ON a = b, found %s", p.peek())
	}
	return j, nil
}

func (p *parser) parseQualifiedIdent() (Ident, error) {
	name, err := p.expectIdent()
	if err != nil {
		return Ident{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return Ident{}, err
		}
		return Ident{Table: name, Name: col}, nil
	}
	return Ident{Name: name}, nil
}

// Expression grammar, loosest first:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr (cmpOp addExpr | IS [NOT] NULL | [NOT] IN (...) |
//	             [NOT] BETWEEN addExpr AND addExpr | [NOT] LIKE 'pat')?
//	addExpr := mulExpr (('+'|'-') mulExpr)*
//	mulExpr := unary (('*'|'/'|'%') unary)*
//	unary   := '-' unary | primary
func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		p.leave()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if p.peek().kind == tokSymbol {
		switch p.peek().text {
		case "=", "<", ">", "<=", ">=", "<>", "!=":
			op := p.next().text
			if op == "<>" {
				op = "!="
			}
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	// IS [NOT] NULL.
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return IsNull{E: l, Not: not}, nil
	}
	// [NOT] IN / BETWEEN / LIKE.
	not := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		nxt := p.toks[p.i+1]
		if nxt.kind == tokKeyword && (nxt.text == "IN" || nxt.text == "BETWEEN" || nxt.text == "LIKE") {
			p.next()
			not = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InList{E: l, List: list, Not: not}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Between{E: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		if p.peek().kind != tokString {
			return nil, fmt.Errorf("sql: LIKE requires a string literal, found %s", p.peek())
		}
		return Like{E: l, Pattern: p.next().text, Not: not}, nil
	}
	if not {
		return nil, fmt.Errorf("sql: dangling NOT before %s", p.peek())
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokSymbol && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		p.leave()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(Lit); ok {
			switch v := lit.Val.(type) {
			case int64:
				return Lit{Val: -v}, nil
			case float64:
				return Lit{Val: -v}, nil
			}
		}
		return Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return Lit{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Lit{Val: n}, nil
	case tokString:
		p.next()
		return Lit{Val: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.next()
			return Lit{Val: true}, nil
		case "FALSE":
			p.next()
			return Lit{Val: false}, nil
		case "NULL":
			p.next()
			return Lit{Val: nil}, nil
		case "LOCALTIMESTAMP":
			p.next()
			return LocalTimestamp{}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			// Only a call when followed by "(": `count` is also a
			// legitimate column name (Figure 4 of the paper).
			if nxt := p.toks[p.i+1]; nxt.kind == tokSymbol && nxt.text == "(" {
				p.next()
				return p.parseAggCall(AggFunc(t.text))
			}
			p.next()
			return Ident{Name: strings.ToLower(t.text)}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t)
	case tokIdent:
		return p.parseQualifiedIdentExpr()
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}

func (p *parser) parseQualifiedIdentExpr() (Expr, error) {
	// An identifier directly followed by "(" is a scalar function call.
	if nxt := p.toks[p.i+1]; p.peek().kind == tokIdent && nxt.kind == tokSymbol && nxt.text == "(" {
		name := strings.ToUpper(p.next().text)
		p.next() // consume "("
		var args []Expr
		if !p.acceptSymbol(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		return Func{Name: name, Args: args}, nil
	}
	id, err := p.parseQualifiedIdent()
	if err != nil {
		return nil, err
	}
	return id, nil
}

func (p *parser) parseAggCall(fn AggFunc) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if fn == AggCount && p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return Agg{Func: fn, Star: true}, nil
	}
	distinct := p.acceptKeyword("DISTINCT")
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return Agg{Func: fn, Arg: arg, Distinct: distinct}, nil
}
