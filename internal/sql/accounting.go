package sql

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"squery/internal/core"
	"squery/internal/metrics"
	"squery/internal/sql/plan"
)

// Per-query resource accounting. Every execution tracks, beyond the row
// counters the executor always kept: the estimated bytes its scans
// shipped across the client hop, the peak estimated memory held in
// in-flight pipeline batches, and the per-stage wall breakdown — all
// recorded into the sys.queries event and, past a configurable wall-time
// threshold, into the bounded sys.slow_queries log. This is the cost
// signal ROADMAP item 5's admission control will gate on.

// MetricsLimits bounds the executor's event logs and defines the
// slow-query threshold. The zero value selects the defaults.
type MetricsLimits struct {
	// QueryLogCapacity caps the sys.queries ring (default 256). The
	// capacity binds when the log is first created, so wire limits before
	// the first query executes.
	QueryLogCapacity int
	// SlowQueryLogCapacity caps the sys.slow_queries ring (default 64).
	SlowQueryLogCapacity int
	// SlowQueryThreshold is the wall time at or above which an execution
	// is also recorded in sys.slow_queries (default 100ms; negative
	// disables the slow log).
	SlowQueryThreshold time.Duration
}

// WithDefaults returns the limits with every unset field replaced by its
// default. The engine resolves its Config through this before wiring
// SetMetricsLimits, so the sys.* table providers and the executor agree
// on the effective capacities.
func (l MetricsLimits) WithDefaults() MetricsLimits {
	if l.QueryLogCapacity <= 0 {
		l.QueryLogCapacity = 256
	}
	if l.SlowQueryLogCapacity <= 0 {
		l.SlowQueryLogCapacity = 64
	}
	if l.SlowQueryThreshold == 0 {
		l.SlowQueryThreshold = 100 * time.Millisecond
	}
	return l
}

// SetMetricsLimits is SetMetrics with explicit log bounds and slow-query
// policy. Call before serving queries; the event-log capacities apply on
// log creation (first caller wins), which is why the engine routes its
// retention config through here rather than patching logs after the fact.
func (ex *Executor) SetMetricsLimits(reg *metrics.Registry, lim MetricsLimits) {
	lim = lim.WithDefaults()
	ex.setMetrics(reg, lim)
}

// memAccount tracks the estimated bytes currently held in in-flight
// pipeline batches of one execution, and the high-water mark.
type memAccount struct {
	inflight atomic.Int64
	peak     atomic.Int64
}

// grab accounts bytes entering flight (a batch produced).
func (m *memAccount) grab(n int64) {
	if n <= 0 {
		return
	}
	cur := m.inflight.Add(n)
	for {
		p := m.peak.Load()
		if cur <= p || m.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// release accounts bytes leaving flight (a batch consumed).
func (m *memAccount) release(n int64) {
	if n > 0 {
		m.inflight.Add(-n)
	}
}

// estimateRowBytes approximates the wire/heap footprint of one table row
// by walking its visible columns. It is an estimate by design: accounting
// must not cost more than the work it measures, so batches sample one row
// and extrapolate (see estimateBatchBytes).
func estimateRowBytes(r *core.TableRow) int64 {
	if r == nil {
		return 0
	}
	n := int64(16) + estimateValueBytes(r.Key) // struct header + key
	if r.Value == nil {
		return n
	}
	for _, c := range r.Value.Columns() {
		n += int64(len(c))
		if v, ok := r.Value.Field(c); ok {
			n += estimateValueBytes(v)
		}
	}
	return n
}

func estimateValueBytes(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case string:
		return int64(len(x)) + 16
	case []byte:
		return int64(len(x)) + 24
	case bool:
		return 1
	case int, int64, int32, uint64, float64, float32, time.Duration:
		return 8
	case time.Time:
		return 24
	default:
		return 32 // boxed something: a defensible guess beats reflection
	}
}

// estimateBatchBytes extrapolates a batch's footprint from its first row.
func estimateBatchBytes(rows []core.TableRow) int64 {
	if len(rows) == 0 {
		return 0
	}
	return estimateRowBytes(&rows[0]) * int64(len(rows))
}

// estimateJoinedBatchBytes extrapolates a joined-row batch's footprint
// from the first row's populated sides.
func estimateJoinedBatchBytes(rows []joinedRow) int64 {
	if len(rows) == 0 {
		return 0
	}
	var per int64
	for _, t := range rows[0].tabs {
		per += estimateRowBytes(t)
	}
	return (per + 24) * int64(len(rows))
}

// stageWallSummary renders the per-stage wall breakdown of an executed
// plan as a compact string ("scan=1.2ms hashjoin=340µs project=80µs"),
// aggregated by node kind. It reads the same plan.Stats EXPLAIN ANALYZE
// renders, so the sys.queries column and the analyze footer agree.
func stageWallSummary(root plan.Node) string {
	if root == nil {
		return ""
	}
	wall := map[string]int64{}
	var order []string
	plan.Walk(root, func(n plan.Node) {
		k := n.Kind()
		if _, seen := wall[k]; !seen {
			order = append(order, k)
		}
		wall[k] += n.Stat().WallNs.Load()
	})
	var b strings.Builder
	for _, k := range order {
		if wall[k] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, time.Duration(wall[k]).Round(time.Microsecond))
	}
	return b.String()
}
