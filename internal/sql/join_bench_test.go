package sql

import (
	"fmt"
	"testing"
	"time"
)

// legacySprintfKey is the fmt.Sprintf-built string key the join hash
// tables used before joinKey — kept here as the benchmark baseline so
// the allocation win stays measured.
func legacySprintfKey(v any) string {
	if i, ok := toInt(v); ok {
		return fmt.Sprintf("i%d", i)
	}
	if f, ok := toFloat(v); ok {
		return fmt.Sprintf("f%g", f)
	}
	return fmt.Sprintf("%T:%v", v, v)
}

var joinKeyInputs = []any{
	"order-12345", int64(987654321), 52.52, true, int(7),
	time.Unix(1700000000, 0), "zone-north",
}

func BenchmarkJoinKeyLegacySprintf(b *testing.B) {
	b.ReportAllocs()
	m := make(map[string]int, len(joinKeyInputs))
	for i := 0; i < b.N; i++ {
		v := joinKeyInputs[i%len(joinKeyInputs)]
		m[legacySprintfKey(v)]++
	}
}

func BenchmarkJoinKeyTyped(b *testing.B) {
	b.ReportAllocs()
	m := make(map[joinKey]int, len(joinKeyInputs))
	for i := 0; i < b.N; i++ {
		v := joinKeyInputs[i%len(joinKeyInputs)]
		m[makeJoinKey(v)]++
	}
}

// TestJoinKeyEqualityClasses pins the equality semantics the typed key
// must preserve from the string form: the int family coalesces, floats
// do NOT coalesce with ints, and distinct values stay distinct.
func TestJoinKeyEqualityClasses(t *testing.T) {
	if makeJoinKey(int(5)) != makeJoinKey(int64(5)) {
		t.Error("int and int64 of same value must share a key")
	}
	if makeJoinKey(int64(5)) == makeJoinKey(float64(5)) {
		t.Error("int 5 and float 5.0 must NOT share a key (partitioner semantics)")
	}
	if makeJoinKey("5") == makeJoinKey(int64(5)) {
		t.Error("string \"5\" and int 5 must not collide")
	}
	if makeJoinKey(nil) != makeJoinKey(nil) {
		t.Error("nil key must be stable")
	}
	ts := time.Unix(42, 0)
	if makeJoinKey(ts) != makeJoinKey(ts) {
		t.Error("time key must be stable")
	}
}

// TestGroupKeyEncodingIsSelfDelimiting pins the composite GROUP BY
// encoding: adjacent string values must not collide across boundaries.
func TestGroupKeyEncodingIsSelfDelimiting(t *testing.T) {
	a := appendGroupKey(appendGroupKey(nil, "ab"), "c")
	b := appendGroupKey(appendGroupKey(nil, "a"), "bc")
	if string(a) == string(b) {
		t.Fatalf("(\"ab\",\"c\") and (\"a\",\"bc\") collide: %q", a)
	}
}

// BenchmarkCoPartitionedJoin measures the end-to-end co-partitioned join
// the typed key sits under.
func BenchmarkCoPartitionedJoin(b *testing.B) {
	f := newFixture(b, 512, liveSnapCfg())
	stmt, err := Parse(`SELECT COUNT(*) FROM orderinfo JOIN orderstate USING(partitionKey)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalHashJoin measures the general ON-clause hash join path.
func BenchmarkGlobalHashJoin(b *testing.B) {
	f := newFixture(b, 512, liveSnapCfg())
	stmt, err := Parse(`SELECT COUNT(*) FROM orderinfo a JOIN orderstate b ON a.partitionKey = b.partitionKey`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}
