package sql

import (
	"strings"
	"sync"
	"testing"
	"time"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/partition"
)

// fuzzSeeds doubles as the shared seed corpus for both fuzz targets: a
// cross-section of every syntactic feature the test suite exercises, plus
// inputs that must be rejected without panicking.
var fuzzSeeds = []string{
	`SELECT deliveryZone, customerLat FROM orderinfo WHERE partitionKey = 'order-2'`,
	`SELECT deliveryZone FROM "snapshot_orderinfo" WHERE ssid = 1 AND partitionKey = 'order-0'`,
	`SELECT COUNT(*), deliveryZone FROM orderinfo GROUP BY deliveryZone`,
	`SELECT COUNT(*) FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE partitionKey = 'order-1'`,
	`SELECT a.deliveryZone, b.orderState FROM orderinfo a JOIN orderstate b USING(partitionKey)`,
	`SELECT SUM(customerLat), AVG(customerLat), MIN(customerLat), MAX(customerLat) FROM orderinfo`,
	`SELECT deliveryZone FROM orderinfo WHERE customerLat > 52.5 AND NOT (deliveryZone = 'south' OR vendorCategory = 'food')`,
	`SELECT deliveryZone FROM orderinfo WHERE customerLat + 1 * 2 >= -3.5`,
	`EXPLAIN SELECT deliveryZone FROM orderinfo`,
	`EXPLAIN ANALYZE SELECT deliveryZone FROM orderinfo WHERE partitionKey = 5.0`,
	`SELECT * FROM sys.partitions WHERE sets > 0`,
	`SELECT deliveryZone FROM orderinfo LIMIT 3`,
	`SELECT deliveryZone FROM orderinfo WHERE customerLat > 53 LIMIT 0`,
	`SELECT COUNT(DISTINCT deliveryZone) FROM orderinfo`,
	`SELECT a.deliveryZone FROM orderinfo a LEFT JOIN orderstate b USING(partitionKey) WHERE b.orderState = 'NOTIFIED'`,
	`SELECT a.deliveryZone, b.orderState FROM orderinfo a JOIN orderstate b ON a.partitionKey = b.partitionKey WHERE a.customerLat > 52 AND b.orderState = 'NOTIFIED'`,
	`SELECT deliveryZone FROM "snapshot_orderinfo" WHERE snapshot_orderinfo.ssid = 1 AND orderinfo.partitionKey = 'order-3'`,
	`SELECT deliveryZone, COUNT(*) AS c FROM orderinfo GROUP BY deliveryZone HAVING COUNT(*) > 1 ORDER BY c DESC LIMIT 5`,
	`SELECT partitionKey FROM orderinfo WHERE deliveryZone = 'north'`,
	`SELECT partitionKey FROM orderinfo WHERE customerLat BETWEEN 52 AND 60`,
	`SELECT partitionKey FROM orderinfo WHERE customerLat > 50 AND customerLat <= 60 AND deliveryZone = 'north'`,
	`SELECT partitionKey FROM orderinfo WHERE 52.5 >= customerLat`,
	`EXPLAIN SELECT partitionKey FROM orderinfo WHERE deliveryZone = 'north' AND customerLat < 53`,
	`SELECT * FROM "sys.indexes" WHERE lookups >= 0`,
	`SUBSCRIBE SELECT partitionKey, customerLat FROM orderinfo WHERE deliveryZone = 'north'`,
	`SUBSCRIBE SELECT COUNT(*), deliveryZone FROM orderinfo GROUP BY deliveryZone`,
	`SUBSCRIBE SELECT a.deliveryZone, b.orderState FROM orderinfo a JOIN orderstate b USING(partitionKey)`,
	`SUBSCRIBE SELECT deliveryZone FROM orderinfo ORDER BY deliveryZone`,
	`SUBSCRIBE SELECT deliveryZone FROM "snapshot_orderinfo" WHERE ssid = 1`,
	`SUBSCRIBE SELECT * FROM sys.partitions`,
	`SUBSCRIBE`,
	`SUBSCRIBE SUBSCRIBE SELECT 1`,
	`SELECT 'unterminated`,
	`SELECT ((((((((((1))))))))))`,
	`SELECT FROM WHERE`,
	``,
	`;;;`,
	"SELECT \x00 FROM t",
}

var (
	fuzzExOnce sync.Once
	fuzzEx     *Executor
)

// fuzzExecutor builds one fixture-equivalent executor for the whole fuzz
// run (the corpus only reads it, so sharing is safe).
func fuzzExecutor() *Executor {
	fuzzExOnce.Do(func() {
		p := partition.New(32)
		store := kv.NewStore(p, partition.Assign(32, 3), nil)
		mgr := core.NewManager(store, 2)
		cat := core.NewCatalog(store)
		cfg := core.Config{Live: true, Snapshots: true}
		if err := cat.RegisterJob(mgr.Registry(), "orderinfo", "orderstate"); err != nil {
			panic(err)
		}
		for _, op := range []string{"orderinfo", "orderstate"} {
			if err := mgr.RegisterOperator(core.OperatorMeta{Name: op, Parallelism: 1, Config: cfg}); err != nil {
				panic(err)
			}
		}
		// Indexes make the fuzz corpus exercise the planner's index
		// selection (the sargable-atom walk and path costing).
		if err := cat.CreateIndex("orderinfo", "deliveryZone", core.IndexHash); err != nil {
			panic(err)
		}
		if err := cat.CreateIndex("orderinfo", "customerLat", core.IndexBTree); err != nil {
			panic(err)
		}
		info := core.NewBackend("orderinfo", 0, store.View(0), cfg)
		state := core.NewBackend("orderstate", 0, store.View(0), cfg)
		info.Update("order-0", orderInfo{DeliveryZone: "north", VendorCategory: "food", CustomerLat: 52})
		state.Update("order-0", orderState{OrderState: "NOTIFIED", LateTimestamp: time.Now()})
		ssid, err := mgr.Begin()
		if err != nil {
			panic(err)
		}
		if _, err := info.SnapshotPrepare(ssid); err != nil {
			panic(err)
		}
		if _, err := state.SnapshotPrepare(ssid); err != nil {
			panic(err)
		}
		mgr.Commit(ssid)
		fuzzEx = NewExecutor(cat, 3)
		// Arrangements make SUBSCRIBE-prefixed corpus entries exercise
		// the standing-query validate/attach path instead of failing at
		// the registry check.
		fuzzEx.SetArrangements(core.NewArrangeRegistry(store))
	})
	return fuzzEx
}

// FuzzParse asserts the parser is total: any input either parses or
// returns an error — never a panic or a hang. On parseable input, plan
// rendering (EXPLAIN) must be panic-free too, even when table or column
// resolution fails.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip("oversized input")
		}
		stmt, err := Parse(stripExplainPrefix(input))
		if err != nil || stmt == nil {
			return
		}
		// Parseable: the plan path must hold up against arbitrary ASTs.
		ex := fuzzExecutor()
		_, _ = ex.Explain(stripExplainPrefix(input))
	})
}

// FuzzPlan asserts the planner is total over parser-accepted input: any
// statement Parse accepts must compile to a plan tree or return an error
// — never panic — and the compiled plan must render. planOnly compilation
// is used so unresolvable snapshots exercise the EXPLAIN path instead of
// failing early.
func FuzzPlan(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip("oversized input")
		}
		// SUBSCRIBE routes to the standing-query path: validate/attach
		// must be total too — reject or subscribe, never panic. A
		// successful subscription is torn down immediately; the fuzz
		// executor's arrangement registry refcounts back to zero.
		if isSub, rest := splitSubscribe(input); isSub {
			ex := fuzzExecutor()
			if sq, err := ex.SubscribeQuery(rest, func(SubEvent) {}); err == nil {
				sq.Close()
			}
			return
		}
		stmt, err := Parse(stripExplainPrefix(input))
		if err != nil || stmt == nil {
			return
		}
		ex := fuzzExecutor()
		pp, err := ex.compile(resolveOrderByAliases(stmt), ExecOpts{}, true)
		if err != nil {
			return
		}
		_ = pp.render(ex.clusterNodes(), false)
	})
}

// FuzzLexer asserts the tokenizer is total over arbitrary byte soup,
// including invalid UTF-8 and NUL bytes.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add(string([]byte{0xff, 0xfe, '\'', '"', '-'}))
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip("oversized input")
		}
		toks, err := lex(input)
		if err != nil {
			return
		}
		// On success the stream must be well-formed enough to print.
		for _, tok := range toks {
			_ = tok.String()
		}
	})
}

// stripExplainPrefix drops EXPLAIN [ANALYZE] so fuzz inputs that carry
// the prefix exercise Parse on the underlying statement, matching what
// QueryWithOptions does.
func stripExplainPrefix(q string) string {
	mode, rest := splitExplain(q)
	if mode == noExplain {
		return q
	}
	return rest
}

// TestFuzzSeedsDoNotPanic runs the seed corpus through both targets in a
// normal `go test` invocation, so regressions surface without -fuzz.
func TestFuzzSeedsDoNotPanic(t *testing.T) {
	ex := fuzzExecutor()
	for _, s := range fuzzSeeds {
		if _, err := lex(s); err != nil {
			continue
		}
		if _, err := Parse(stripExplainPrefix(s)); err != nil {
			continue
		}
		if _, err := ex.Explain(stripExplainPrefix(s)); err != nil {
			// Resolution errors are fine; panics are not.
			if !strings.Contains(err.Error(), "sql") && err.Error() == "" {
				t.Fatalf("unexpected empty error for %q", s)
			}
		}
	}
}
