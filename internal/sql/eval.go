package sql

import (
	"fmt"
	"strings"
	"time"
)

// Resolver supplies column values during evaluation. ok must be false for
// unknown columns; a nil value with ok true is SQL NULL.
type Resolver interface {
	Resolve(table, column string) (any, bool)
}

// evalCtx carries per-query evaluation state.
type evalCtx struct {
	now time.Time // LOCALTIMESTAMP, fixed at query start
}

// eval evaluates an expression against a row. Aggregates must have been
// rewritten away before eval is called on post-aggregation expressions;
// encountering one here is a planner bug surfaced as an error.
func (c *evalCtx) eval(e Expr, row Resolver) (any, error) {
	switch x := e.(type) {
	case Lit:
		return x.Val, nil
	case LocalTimestamp:
		return c.now, nil
	case Ident:
		v, ok := row.Resolve(x.Table, x.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown column %s", x)
		}
		return v, nil
	case Unary:
		v, err := c.eval(x.E, row)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			b, ok := truthy(v)
			if !ok {
				return nil, nil // NOT NULL-ish input stays NULL
			}
			return !b, nil
		}
		f, ok := toFloat(v)
		if !ok {
			return nil, fmt.Errorf("sql: cannot negate %T", v)
		}
		if i, isInt := toInt(v); isInt {
			return -i, nil
		}
		return -f, nil
	case IsNull:
		v, err := c.eval(x.E, row)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Not, nil
	case InList:
		v, err := c.eval(x.E, row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		for _, le := range x.List {
			lv, err := c.eval(le, row)
			if err != nil {
				return nil, err
			}
			cmp, err := compare(v, lv)
			if err == nil && cmp == 0 {
				return !x.Not, nil
			}
		}
		return x.Not, nil
	case Between:
		v, err := c.eval(x.E, row)
		if err != nil {
			return nil, err
		}
		lo, err := c.eval(x.Lo, row)
		if err != nil {
			return nil, err
		}
		hi, err := c.eval(x.Hi, row)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		cl, err := compare(v, lo)
		if err != nil {
			return nil, err
		}
		ch, err := compare(v, hi)
		if err != nil {
			return nil, err
		}
		return (cl >= 0 && ch <= 0) != x.Not, nil
	case Like:
		v, err := c.eval(x.E, row)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("sql: LIKE applied to %T", v)
		}
		return likeMatch(s, x.Pattern) != x.Not, nil
	case Binary:
		return c.evalBinary(x, row)
	case Func:
		return c.evalFunc(x, row)
	case Agg:
		return nil, fmt.Errorf("sql: aggregate %s used outside an aggregating context", x)
	}
	return nil, fmt.Errorf("sql: unhandled expression %T", e)
}

// evalFunc evaluates the scalar functions of the dialect. Except for
// COALESCE, a NULL argument yields NULL.
func (c *evalCtx) evalFunc(x Func, row Resolver) (any, error) {
	args := make([]any, len(x.Args))
	for i, a := range x.Args {
		v, err := c.eval(a, row)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s takes %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "COALESCE":
		if len(args) == 0 {
			return nil, fmt.Errorf("sql: COALESCE needs at least one argument")
		}
		for _, v := range args {
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case "ABS":
		if err := argc(1); err != nil {
			return nil, err
		}
		if args[0] == nil {
			return nil, nil
		}
		if i, ok := toInt(args[0]); ok {
			if i < 0 {
				return -i, nil
			}
			return i, nil
		}
		f, ok := toFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("sql: ABS of %T", args[0])
		}
		if f < 0 {
			return -f, nil
		}
		return f, nil
	case "ROUND":
		if err := argc(1); err != nil {
			return nil, err
		}
		if args[0] == nil {
			return nil, nil
		}
		if i, ok := toInt(args[0]); ok {
			return i, nil
		}
		f, ok := toFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("sql: ROUND of %T", args[0])
		}
		if f >= 0 {
			return int64(f + 0.5), nil
		}
		return int64(f - 0.5), nil
	case "UPPER", "LOWER", "LENGTH", "TRIM":
		if err := argc(1); err != nil {
			return nil, err
		}
		if args[0] == nil {
			return nil, nil
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sql: %s of %T", x.Name, args[0])
		}
		switch x.Name {
		case "UPPER":
			return strings.ToUpper(s), nil
		case "LOWER":
			return strings.ToLower(s), nil
		case "TRIM":
			return strings.TrimSpace(s), nil
		default:
			return int64(len(s)), nil
		}
	case "CONCAT":
		var b strings.Builder
		for _, v := range args {
			if v == nil {
				continue
			}
			fmt.Fprintf(&b, "%v", v)
		}
		return b.String(), nil
	}
	return nil, fmt.Errorf("sql: unknown function %s", x.Name)
}

func (c *evalCtx) evalBinary(x Binary, row Resolver) (any, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := c.eval(x.L, row)
		if err != nil {
			return nil, err
		}
		lb, lok := truthy(l)
		// Short-circuit where three-valued logic allows.
		if x.Op == "AND" && lok && !lb {
			return false, nil
		}
		if x.Op == "OR" && lok && lb {
			return true, nil
		}
		r, err := c.eval(x.R, row)
		if err != nil {
			return nil, err
		}
		rb, rok := truthy(r)
		// Three-valued logic: FALSE AND NULL = FALSE, TRUE OR NULL =
		// TRUE, otherwise a NULL operand makes the result NULL.
		if x.Op == "AND" {
			if rok && !rb {
				return false, nil
			}
			if !lok || !rok {
				return nil, nil
			}
			return true, nil
		}
		if rok && rb {
			return true, nil
		}
		if !lok || !rok {
			return nil, nil
		}
		return false, nil
	}

	l, err := c.eval(x.L, row)
	if err != nil {
		return nil, err
	}
	r, err := c.eval(x.R, row)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l == nil || r == nil {
			return nil, nil // comparisons with NULL are NULL
		}
		cmp, err := compare(l, r)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return cmp == 0, nil
		case "!=":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r)
	}
	return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
}

// truthy interprets a value as a boolean; ok is false for NULL/non-bool.
func truthy(v any) (val, ok bool) {
	b, isB := v.(bool)
	return b, isB
}

// toInt reports integer-typed values as int64.
func toInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	case uint64:
		return int64(n), true
	}
	return 0, false
}

// toFloat widens any numeric value to float64.
func toFloat(v any) (float64, bool) {
	if i, ok := toInt(v); ok {
		return float64(i), true
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	}
	return 0, false
}

// compare orders two values: numerics by value, strings
// lexicographically, times chronologically, bools false<true. Comparing
// incompatible types is an error, matching strict SQL engines.
func compare(a, b any) (int, error) {
	if ta, ok := a.(time.Time); ok {
		tb, ok := b.(time.Time)
		if !ok {
			return 0, fmt.Errorf("sql: cannot compare timestamp with %T", b)
		}
		switch {
		case ta.Before(tb):
			return -1, nil
		case ta.After(tb):
			return 1, nil
		default:
			return 0, nil
		}
	}
	if sa, ok := a.(string); ok {
		sb, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("sql: cannot compare string with %T", b)
		}
		return strings.Compare(sa, sb), nil
	}
	if ba, ok := a.(bool); ok {
		bb, ok := b.(bool)
		if !ok {
			return 0, fmt.Errorf("sql: cannot compare bool with %T", b)
		}
		switch {
		case ba == bb:
			return 0, nil
		case bb:
			return -1, nil
		default:
			return 1, nil
		}
	}
	fa, aok := toFloat(a)
	fb, bok := toFloat(b)
	if aok && bok {
		switch {
		case fa < fb:
			return -1, nil
		case fa > fb:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("sql: cannot compare %T with %T", a, b)
}

// arith evaluates arithmetic with integer preservation: int op int stays
// int64 (except /, which divides exactly when possible).
func arith(op string, l, r any) (any, error) {
	if l == nil || r == nil {
		return nil, nil
	}
	li, lInt := toInt(l)
	ri, rInt := toInt(r)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("sql: modulo by zero")
			}
			return li % ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("sql: division by zero")
			}
			if li%ri == 0 {
				return li / ri, nil
			}
			return float64(li) / float64(ri), nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("sql: arithmetic on %T and %T", l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("sql: division by zero")
		}
		return lf / rf, nil
	case "%":
		return nil, fmt.Errorf("sql: modulo on floating point")
	}
	return nil, fmt.Errorf("sql: unknown arithmetic operator %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over the pattern, iterative two-pointer with
	// backtracking on the last %.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		if pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(pattern) && pattern[pi] == '%' {
			star = pi
			sBack = si
			pi++
		} else if star >= 0 {
			pi = star + 1
			sBack++
			si = sBack
		} else {
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
