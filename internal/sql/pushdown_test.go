package sql

import (
	"fmt"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"squery/internal/metrics"
)

// Streaming-semantics tests: the pipeline must push single-table
// predicates into the partition scans (never run them client-side), stop
// scans early when a LIMIT fills, report the same pruning in EXPLAIN
// ANALYZE that execution performed, and behave identically under the
// degradation policies.

// metered attaches a registry to the fixture's executor and returns it.
func metered(f *fixture) *metrics.Registry {
	reg := metrics.NewRegistry()
	f.ex.SetMetrics(reg)
	return reg
}

func counterVal(t *testing.T, reg *metrics.Registry, sub, id, metric string) int64 {
	t.Helper()
	return reg.Counter(sub, id, metric).Value()
}

func TestPushdownFilterRunsNodeSide(t *testing.T) {
	f := newFixture(t, 40, liveSnapCfg())
	reg := metered(f)

	// White box: a single-table WHERE must compile to a pushed scan
	// filter with no residual Filter node.
	stmt, err := Parse(`SELECT deliveryZone FROM orderinfo WHERE customerLat > 90`)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := f.ex.compile(stmt, ExecOpts{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if pp.residual != nil || pp.filter != nil {
		t.Fatalf("single-table predicate left a client-side residual: %v", pp.residual)
	}
	if pp.scans[0].Filter == "" {
		t.Fatal("scan carries no pushed filter")
	}
	// customerLat appears only in the pushed predicate, which runs before
	// projection on the owning node — so only deliveryZone need ship.
	if got := pp.scans[0].Cols; len(got) != 1 || got[0] != "deliveryZone" {
		t.Fatalf("projected cols = %v, want [deliveryZone]", got)
	}

	// Black box: customerLat runs 52..91, so > 90 matches 1 of 40 rows.
	// All 40 must be examined node-side but only the match may ship.
	res, err := f.ex.Query(`SELECT deliveryZone FROM orderinfo WHERE customerLat > 90`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	scanned := counterVal(t, reg, "sql", "exec", "rows_scanned")
	shipped := counterVal(t, reg, "sql", "exec", "rows_shipped")
	if scanned != 40 {
		t.Fatalf("rows_scanned = %d, want 40 (every row examined node-side)", scanned)
	}
	if shipped != 1 {
		t.Fatalf("rows_shipped = %d, want 1 (only the match crosses the client hop)", shipped)
	}
}

func TestPushdownParityWithDisabled(t *testing.T) {
	f := newFixture(t, 30, liveSnapCfg())
	queries := []string{
		`SELECT deliveryZone, customerLat FROM orderinfo WHERE customerLat > 70 ORDER BY customerLat`,
		`SELECT deliveryZone FROM orderinfo WHERE partitionKey = 'order-7'`,
		`SELECT COUNT(*), deliveryZone FROM orderinfo GROUP BY deliveryZone ORDER BY deliveryZone`,
		`SELECT a.deliveryZone, b.orderState FROM orderinfo a JOIN orderstate b USING(partitionKey) WHERE a.customerLat > 75 ORDER BY a.customerLat`,
		`SELECT a.deliveryZone FROM orderinfo a LEFT JOIN orderstate b USING(partitionKey) WHERE b.orderState = 'NOTIFIED' ORDER BY a.customerLat`,
		`SELECT deliveryZone FROM orderinfo WHERE customerLat > 60 ORDER BY customerLat LIMIT 5`,
		`SELECT COUNT(DISTINCT deliveryZone) FROM orderinfo WHERE customerLat > 55`,
	}
	for _, q := range queries {
		want, err := f.ex.QueryWithOptions(q, ExecOpts{DisablePushdown: true})
		if err != nil {
			t.Fatalf("%s (no pushdown): %v", q, err)
		}
		got, err := f.ex.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s:\npushdown:    %v %v\nno pushdown: %v %v", q, got.Columns, got.Rows, want.Columns, want.Rows)
		}
	}
}

func TestLimitEarlyTerminationStopsScans(t *testing.T) {
	f := newFixture(t, 2000, liveSnapCfg())
	reg := metered(f)

	res, err := f.ex.Query(`SELECT deliveryZone FROM orderinfo LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	parts := counterVal(t, reg, "sql", "exec", "partitions_scanned")
	shipped := counterVal(t, reg, "sql", "exec", "rows_shipped")
	// Early stop is racy by design (scans cancel at batch boundaries),
	// but with 2000 rows over 32 partitions a filled LIMIT 10 must leave
	// most of the table unread.
	if parts > 16 {
		t.Fatalf("partitions_scanned = %d, want <= 16 of 32 (early stop)", parts)
	}
	if shipped > 1000 {
		t.Fatalf("rows_shipped = %d, want <= 1000 of 2000 (early stop)", shipped)
	}

	// Without pushdown the same query must ship everything.
	if _, err := f.ex.QueryWithOptions(`SELECT deliveryZone FROM orderinfo LIMIT 10`, ExecOpts{DisablePushdown: true}); err != nil {
		t.Fatal(err)
	}
	fullShipped := counterVal(t, reg, "sql", "exec", "rows_shipped") - shipped
	if fullShipped != 2000 {
		t.Fatalf("rows_shipped without pushdown = %d, want 2000", fullShipped)
	}
}

func TestLimitZeroReturnsNoRows(t *testing.T) {
	f := newFixture(t, 12, liveSnapCfg())
	res, err := f.ex.Query(`SELECT deliveryZone FROM orderinfo LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

// scanAnnotation matches "scanned X/Y partitions (Z pruned)".
var scanAnnotation = regexp.MustCompile(`scanned (\d+)/(\d+) partitions \((\d+) pruned\)`)

func TestExplainAnalyzePrunedCountsMatchExecution(t *testing.T) {
	f := newFixture(t, 20, liveSnapCfg())
	reg := metered(f)

	res, err := f.ex.Query(`EXPLAIN ANALYZE SELECT deliveryZone FROM orderinfo WHERE partitionKey = 'order-3'`)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, row := range res.Rows {
		fmt.Fprintln(&text, row[0])
	}
	m := scanAnnotation.FindStringSubmatch(text.String())
	if m == nil {
		t.Fatalf("no scan annotation in plan:\n%s", text.String())
	}
	planScanned, _ := strconv.ParseInt(m[1], 10, 64)
	planTotal, _ := strconv.ParseInt(m[2], 10, 64)
	planPruned, _ := strconv.ParseInt(m[3], 10, 64)

	regScanned := counterVal(t, reg, "sql", "exec", "partitions_scanned")
	regPruned := counterVal(t, reg, "sql", "exec", "partitions_pruned")
	if planScanned != regScanned {
		t.Errorf("plan says scanned %d, registry counted %d", planScanned, regScanned)
	}
	if planPruned != regPruned {
		t.Errorf("plan says pruned %d, registry counted %d", planPruned, regPruned)
	}
	if planScanned != 1 || planPruned != planTotal-1 {
		t.Errorf("pin should scan exactly 1 partition and prune the rest, got %d/%d (%d pruned)",
			planScanned, planTotal, planPruned)
	}
}

func TestExplainAnalyzeRendersExecutedPlanTree(t *testing.T) {
	// EXPLAIN ANALYZE must render from the same plan tree the executor
	// ran: the annotated row counts are execution facts (row survival
	// through filter, shipped counts), not re-derived estimates.
	f := newFixture(t, 24, liveSnapCfg())
	res, err := f.ex.Query(`EXPLAIN ANALYZE SELECT deliveryZone FROM orderinfo WHERE customerLat > 70`)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, row := range res.Rows {
		fmt.Fprintln(&text, row[0])
	}
	plan := text.String()
	// customerLat runs 52..75 over 24 rows: 5 rows match (71..75).
	if !strings.Contains(plan, "5 rows shipped (of 24 examined)") {
		t.Fatalf("plan missing executed scan stats:\n%s", plan)
	}
	if !strings.Contains(plan, "pushed filter (customerLat > 70)") {
		t.Fatalf("plan missing pushed filter:\n%s", plan)
	}
	if !strings.Contains(plan, "5 row(s) returned") {
		t.Fatalf("plan missing returned-rows total:\n%s", plan)
	}
}

func TestGuardedPoliciesStreamWithPushdown(t *testing.T) {
	// The guarded scan paths (per-partition timeout goroutines) must
	// apply the same pushdown and produce the same results as the
	// unguarded fast path on a healthy cluster.
	f := newFixture(t, 30, liveSnapCfg())
	reg := metered(f)
	want, err := f.ex.Query(`SELECT deliveryZone, customerLat FROM orderinfo WHERE customerLat > 70 ORDER BY customerLat`)
	if err != nil {
		t.Fatal(err)
	}
	base := counterVal(t, reg, "sql", "exec", "rows_shipped")
	for _, policy := range []Policy{PolicyRetry, PolicyFallback, PolicyFailFast} {
		got, err := f.ex.QueryWithOptions(
			`SELECT deliveryZone, customerLat FROM orderinfo WHERE customerLat > 70 ORDER BY customerLat`,
			ExecOpts{Policy: policy})
		if err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("policy %s rows = %v, want %v", policy, got.Rows, want.Rows)
		}
		shipped := counterVal(t, reg, "sql", "exec", "rows_shipped") - base
		base += shipped
		if shipped != int64(len(want.Rows)) {
			t.Errorf("policy %s shipped %d rows, want %d (pushdown must apply on guarded path)",
				policy, shipped, len(want.Rows))
		}
	}
}
