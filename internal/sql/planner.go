package sql

import (
	"fmt"
	"strings"
	"time"

	"squery/internal/core"
	"squery/internal/sql/plan"
)

// physPlan is the compiled form of one SELECT: the resolved sources, the
// per-source pushed predicates, the residual filter, and the plan.Node
// tree. Execution runs the tree, EXPLAIN renders it, EXPLAIN ANALYZE
// renders the very instance an execution ran — one derivation, three
// consumers.
type physPlan struct {
	stmt *Select
	opts ExecOpts
	srcs []tableSrc
	// pushed holds, per source, the AND of the WHERE conjuncts that run
	// inside that source's partition scans (nil = nothing pushed).
	pushed []Expr
	// residual is what remains of WHERE for the client-side Filter node.
	residual Expr
	// cols is the projected column set shipped from every scan (nil =
	// all columns; SELECT * or DisablePushdown).
	cols []string

	root   plan.Node
	scans  []*plan.Scan
	filter *plan.Filter
	// join is the topmost join node (nil for single-table queries).
	join plan.Node
	// hjoins holds the HashJoin nodes in join order (general joins only).
	hjoins []*plan.HashJoin
	agg    *plan.Aggregate
	proj   *plan.Project
	coPart bool
	// earlyStop: filling LIMIT cancels all in-flight scans.
	earlyStop bool

	// Execution summary, filled by execTraced for the analyze footer.
	total    time.Duration
	degraded int
	returned int
	// Resource accounting, filled by execTraced from the run's memAccount:
	// estimated bytes shipped across the client hop and peak estimated
	// bytes held in in-flight pipeline batches.
	bytesShipped int64
	peakMemBytes int64
}

// render renders the plan tree (shared by EXPLAIN and EXPLAIN ANALYZE).
func (pp *physPlan) render(nodes int, analyzed bool) string {
	parts := 0
	if len(pp.srcs) > 0 {
		parts = pp.srcs[0].ref.Partitions()
	}
	return plan.Render(pp.root, plan.RenderOpts{
		ClusterNodes: nodes,
		Partitions:   parts,
		Analyzed:     analyzed,
		Total:        pp.total,
		Returned:     pp.returned,
		Degraded:     pp.degraded,
	})
}

// compile lowers a parsed SELECT into a physPlan: resolve tables, strip
// ssid pins, derive partition pruning hints, resolve snapshot ids, split
// the WHERE clause into pushed and residual parts, compute the shipped
// column set, and build the plan tree. With planOnly (EXPLAIN) an
// unresolvable snapshot id is reported on the scan node instead of
// failing the whole plan.
func (ex *Executor) compile(stmt *Select, opts ExecOpts, planOnly bool) (*physPlan, error) {
	pp := &physPlan{stmt: stmt, opts: opts}

	pp.srcs = make([]tableSrc, 0, 1+len(stmt.Joins))
	addSrc := func(t TableName) error {
		ref, err := ex.cat.Table(t.Name)
		if err != nil {
			return err
		}
		pp.srcs = append(pp.srcs, tableSrc{ref: ref, name: t.Name, alias: t.Ref(), partHint: -1})
		return nil
	}
	if err := addSrc(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := addSrc(j.Table); err != nil {
			return nil, err
		}
	}

	where, pins, err := extractPins(stmt.Where)
	if err != nil {
		return nil, err
	}
	applyKeyHints(stmt, pp.srcs, where)
	pp.coPart = len(pp.srcs) == 2 && len(stmt.Joins) == 1 &&
		stmt.Joins[0].Using == core.ColPartitionKey && !stmt.Joins[0].Left

	// One Scan leaf per source, snapshot ids resolved atomically now
	// (§VI.A): concurrent checkpoints never tear a result set.
	pp.scans = make([]*plan.Scan, len(pp.srcs))
	for i := range pp.srcs {
		s := &pp.srcs[i]
		sc := &plan.Scan{
			Table:        s.name,
			ClusterNodes: ex.clusterNodes(),
			Partitions:   s.ref.Partitions(),
			PartHint:     -1,
		}
		switch {
		case s.ref.IsVirtual():
			sc.Mode = plan.Virtual
		case s.ref.IsSnapshot():
			sc.Mode = plan.Snapshot
		default:
			sc.Mode = plan.Live
		}
		pinned := pins.forTable(s.alias, s.name)
		sc.Pinned = pinned != 0
		ssid, err := s.ref.ResolveSSID(pinned)
		if err != nil {
			if !planOnly {
				return nil, err
			}
			sc.Unresolved = err.Error()
		}
		s.ssid = ssid
		sc.SSID = ssid
		if s.partHint >= 0 && !s.ref.IsVirtual() {
			sc.PartHint = s.partHint
			sc.PrunedParts = int64(s.ref.Partitions() - 1)
		}
		// Full-scan cardinality estimate: every non-virtual scan carries
		// one, so EXPLAIN shows what the chosen path was weighed against
		// even when no index wins (chooseAccessPath overrides EstRows with
		// the winner's selectivity).
		if !s.ref.IsVirtual() {
			if est, ok := s.ref.EstimatePath(nil); ok {
				sc.EstRows, sc.EstValid = est, true
			}
		}
		s.scan = sc
		pp.scans[i] = sc
	}

	// Pushdown: move single-source conjuncts into their scans, project
	// the shipped rows to the columns the rest of the query can touch.
	pp.pushed = make([]Expr, len(pp.srcs))
	pp.residual = where
	if !opts.DisablePushdown {
		pp.residual = pp.splitPushdown(where)
		for i, e := range pp.pushed {
			if e != nil {
				pp.scans[i].Filter = e.String()
			}
		}
		pp.cols = pp.neededColumns()
		for _, sc := range pp.scans {
			sc.Cols = pp.cols
		}
		// Index selection runs over the pushed conjuncts only: a conjunct
		// that could not be pushed cannot bound a scan either.
		if !opts.DisableIndexes {
			for i := range pp.srcs {
				pp.chooseAccessPath(i)
			}
		}
	}

	// Assemble the tree bottom-up: scans → joins → filter →
	// aggregate/project → sort → limit.
	var node plan.Node
	switch {
	case len(pp.srcs) == 1:
		node = pp.scans[0]
	case pp.coPart:
		cj := &plan.CoJoin{Left: pp.scans[0], Right: pp.scans[1]}
		node, pp.join = cj, cj
	default:
		node = pp.scans[0]
		for ji, j := range stmt.Joins {
			hj := &plan.HashJoin{Left: node, Right: pp.scans[ji+1], Cond: joinCond(j), LeftOuter: j.Left}
			pp.hjoins = append(pp.hjoins, hj)
			node = hj
		}
		pp.join = node
	}
	if pp.residual != nil {
		pp.filter = &plan.Filter{Input: node, Pred: pp.residual.String()}
		node = pp.filter
	}
	aggregated := stmt.HasAggregates() || len(stmt.GroupBy) > 0
	if aggregated {
		groups := make([]string, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			groups[i] = g.String()
		}
		pp.agg = &plan.Aggregate{Input: node, GroupBy: groups}
		if stmt.Having != nil {
			pp.agg.Having = stmt.Having.String()
		}
		node = pp.agg
	} else {
		items := make([]string, len(stmt.Items))
		for i, it := range stmt.Items {
			items[i] = it.String()
		}
		pp.proj = &plan.Project{Input: node, Items: items}
		node = pp.proj
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, oi := range stmt.OrderBy {
			dir := "ASC"
			if oi.Desc {
				dir = "DESC"
			}
			keys[i] = oi.Expr.String() + " " + dir
		}
		node = &plan.Sort{Input: node, Keys: keys}
	}
	if stmt.Limit >= 0 {
		pp.earlyStop = !aggregated && len(stmt.OrderBy) == 0 && !opts.DisablePushdown
		node = &plan.Limit{Input: node, N: stmt.Limit, EarlyStop: pp.earlyStop}
	}
	pp.root = node
	return pp, nil
}

// joinCond pre-renders a join condition for the plan tree.
func joinCond(j Join) string {
	if j.Using != "" {
		return "USING(" + j.Using + ")"
	}
	return fmt.Sprintf("ON %s = %s", j.OnL, j.OnR)
}

// splitPushdown walks the WHERE clause's AND-conjuncts, moving every
// conjunct that provably references exactly one source into that
// source's pushed predicate, and returns the residual. Pushing is an
// optimisation with one soundness rule baked into pushTarget: the right
// side of a LEFT JOIN is never pre-filtered (that would turn matching
// rows into NULL-extended misses).
func (pp *physPlan) splitPushdown(where Expr) Expr {
	if where == nil {
		return nil
	}
	andTo := func(dst, e Expr) Expr {
		if dst == nil {
			return e
		}
		return Binary{Op: "AND", L: dst, R: e}
	}
	var residual Expr
	var walk func(e Expr)
	walk = func(e Expr) {
		if b, ok := e.(Binary); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		if si, ok := pp.pushTarget(e); ok {
			pp.pushed[si] = andTo(pp.pushed[si], e)
			return
		}
		residual = andTo(residual, e)
	}
	walk(where)
	return residual
}

// pushTarget decides whether one conjunct may run inside a source's
// partition scans, and which source. Single-source queries push every
// non-aggregate conjunct. Multi-source queries push a conjunct only when
// every identifier in it is qualified and names the same source — and
// that source is not the right side of a LEFT JOIN.
func (pp *physPlan) pushTarget(e Expr) (int, bool) {
	if containsAgg(e) {
		// Aggregates in WHERE are an error; leave it for the client-side
		// evaluator to report as such.
		return 0, false
	}
	if len(pp.srcs) == 1 {
		return 0, true
	}
	target := -1
	attributable := true
	walkIdents(e, func(id Ident) {
		if !attributable {
			return
		}
		if id.Table == "" {
			attributable = false
			return
		}
		found := -1
		for i := range pp.srcs {
			if strings.EqualFold(id.Table, pp.srcs[i].alias) || strings.EqualFold(id.Table, pp.srcs[i].name) {
				found = i
				break
			}
		}
		if found < 0 || (target >= 0 && target != found) {
			attributable = false
			return
		}
		target = found
	})
	if !attributable || target < 0 {
		return 0, false
	}
	if target > 0 && pp.stmt.Joins[target-1].Left {
		return 0, false
	}
	return target, true
}

// chooseAccessPath picks source si's access path from its pushed
// predicate: walk the AND-conjuncts for sargable atoms (`col = lit` →
// equality probe; `col < | <= | > | >= lit` and `col BETWEEN lo AND hi` →
// merged range), ask the catalog what each candidate would cost, and take
// the cheapest path that beats the full scan. The choice is purely an
// optimisation: the pushed filter still evaluates against every candidate
// row, index probes return supersets (type coercion, strict bounds), and
// an unserveable path silently degrades to the full scan at the kv layer.
func (pp *physPlan) chooseAccessPath(si int) {
	s := &pp.srcs[si]
	pushed := pp.pushed[si]
	if pushed == nil || s.ref.IsVirtual() {
		return
	}
	type rng struct{ lo, hi any }
	ranges := map[string]*rng{}
	var cands []*core.AccessPath
	bound := func(col string, v any, isLo bool) {
		r := ranges[col]
		if r == nil {
			r = &rng{}
			ranges[col] = r
		}
		// Tighten when the new bound is comparably stricter; keep the old
		// one otherwise — either bound alone yields a candidate superset,
		// the filter settles the intersection.
		if isLo {
			if r.lo == nil {
				r.lo = v
			} else if c, err := compare(v, r.lo); err == nil && c > 0 {
				r.lo = v
			}
		} else {
			if r.hi == nil {
				r.hi = v
			} else if c, err := compare(v, r.hi); err == nil && c < 0 {
				r.hi = v
			}
		}
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Binary:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			col, v, flipped, ok := sargableAtom(x)
			if !ok {
				return
			}
			op := x.Op
			if flipped {
				op = flipCmp(op)
			}
			switch op {
			case "=":
				cands = append(cands, &core.AccessPath{Kind: core.IndexEq, Column: col, Eq: v})
			case "<", "<=":
				bound(col, v, false)
			case ">", ">=":
				bound(col, v, true)
			}
		case Between:
			if x.Not {
				return
			}
			id, okI := x.E.(Ident)
			lo, okL := litScalar(x.Lo)
			hi, okH := litScalar(x.Hi)
			if okI && okL && okH && indexableCol(id) {
				bound(id.Name, lo, true)
				bound(id.Name, hi, false)
			}
		}
	}
	walk(pushed)
	for col, r := range ranges {
		if r.lo != nil || r.hi != nil {
			cands = append(cands, &core.AccessPath{Kind: core.IndexRange, Column: col, Lo: r.lo, Hi: r.hi})
		}
	}
	fullEst, _ := s.ref.EstimatePath(nil)
	best, bestEst := (*core.AccessPath)(nil), fullEst
	for _, c := range cands {
		if est, ok := s.ref.EstimatePath(c); ok && est < bestEst {
			best, bestEst = c, est
		}
	}
	if best != nil {
		s.path = best
		s.scan.Access = best.String()
		s.scan.EstRows = bestEst
	}
}

// sargableAtom decomposes `col op lit` / `lit op col` comparisons; flipped
// reports the literal was on the left (the caller mirrors the operator).
func sargableAtom(b Binary) (col string, v any, flipped, ok bool) {
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return "", nil, false, false
	}
	if id, isID := b.L.(Ident); isID && indexableCol(id) {
		if v, okV := litScalar(b.R); okV {
			return id.Name, v, false, true
		}
	}
	if id, isID := b.R.(Ident); isID && indexableCol(id) {
		if v, okV := litScalar(b.L); okV {
			return id.Name, v, true, true
		}
	}
	return "", nil, false, false
}

// flipCmp mirrors a comparison operator for a literal-on-the-left atom.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// indexableCol rejects the pseudo-columns (partition pruning and snapshot
// pinning already serve those; no index ever exists on them).
func indexableCol(id Ident) bool {
	return !strings.EqualFold(id.Name, core.ColPartitionKey) && !strings.EqualFold(id.Name, core.ColSSID)
}

// litScalar unwraps a non-NULL literal operand.
func litScalar(e Expr) (any, bool) {
	l, ok := e.(Lit)
	if !ok || l.Val == nil {
		return nil, false
	}
	return l.Val, true
}

// neededColumns computes the union of column names any client-side stage
// can touch: select items, the residual filter, grouping, having, order
// keys and join keys. Pushed predicates are excluded — they run before
// projection on the owning node. Returns nil (ship everything) when the
// select list has a star.
func (pp *physPlan) neededColumns() []string {
	stmt := pp.stmt
	for _, it := range stmt.Items {
		if it.Star {
			return nil
		}
	}
	seen := map[string]bool{}
	cols := []string{}
	add := func(id Ident) {
		if !seen[id.Name] {
			seen[id.Name] = true
			cols = append(cols, id.Name)
		}
	}
	for _, it := range stmt.Items {
		walkIdents(it.Expr, add)
	}
	if pp.residual != nil {
		walkIdents(pp.residual, add)
	}
	for _, g := range stmt.GroupBy {
		walkIdents(g, add)
	}
	if stmt.Having != nil {
		walkIdents(stmt.Having, add)
	}
	for _, oi := range stmt.OrderBy {
		walkIdents(oi.Expr, add)
	}
	for _, j := range stmt.Joins {
		if j.Using != "" {
			add(Ident{Name: j.Using})
		} else {
			add(Ident{Name: j.OnL.Name})
			add(Ident{Name: j.OnR.Name})
		}
	}
	return cols
}

// walkIdents visits every identifier in an expression.
func walkIdents(e Expr, fn func(Ident)) {
	switch x := e.(type) {
	case Ident:
		fn(x)
	case Binary:
		walkIdents(x.L, fn)
		walkIdents(x.R, fn)
	case Unary:
		walkIdents(x.E, fn)
	case IsNull:
		walkIdents(x.E, fn)
	case Between:
		walkIdents(x.E, fn)
		walkIdents(x.Lo, fn)
		walkIdents(x.Hi, fn)
	case InList:
		walkIdents(x.E, fn)
		for _, v := range x.List {
			walkIdents(v, fn)
		}
	case Like:
		walkIdents(x.E, fn)
	case Func:
		for _, a := range x.Args {
			walkIdents(a, fn)
		}
	case Agg:
		if x.Arg != nil {
			walkIdents(x.Arg, fn)
		}
	}
}

// srcRow adapts one source's TableRow to the Resolver a pushed predicate
// evaluates against: qualified references must name this source.
type srcRow struct {
	alias, name string
	row         core.TableRow
}

// Resolve implements Resolver.
func (r srcRow) Resolve(table, column string) (any, bool) {
	if table != "" && !strings.EqualFold(table, r.alias) && !strings.EqualFold(table, r.name) {
		return nil, false
	}
	return r.row.Field(column)
}

// spec compiles source si's slice of the plan into a core.ScanSpec for
// one partition attempt. examined counts rows the pushed filter
// inspected; errp records the first evaluation error (the scan keeps
// draining its partition copy but drops rows after an error). Both must
// be owned by the goroutine running the scan.
func (pp *physPlan) spec(si int, ctx *evalCtx, done <-chan struct{}, examined *int64, errp *error) core.ScanSpec {
	s := &pp.srcs[si]
	spec := core.ScanSpec{SSID: s.ssid, Cols: pp.cols, Done: done, Path: s.path}
	if pushed := pp.pushed[si]; pushed != nil {
		alias, name := s.alias, s.name
		spec.Filter = func(r core.TableRow) bool {
			*examined++
			if *errp != nil {
				return false
			}
			v, err := ctx.eval(pushed, srcRow{alias: alias, name: name, row: r})
			if err != nil {
				*errp = err
				return false
			}
			b, ok := truthy(v)
			return ok && b
		}
	}
	return spec
}
