package sql

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"squery/internal/core"
)

// Queries against a partially failed cluster must not hang: a stalled or
// unreachable partition would otherwise block the scatter-gather scan
// forever. This file adds per-partition timeouts and a caller-chosen
// degradation policy to the executor. The default policy (PolicyNone)
// keeps the fast path: no access checks, no per-partition goroutines.

// Policy selects how a query handles an unreachable or stalled partition.
type Policy int

// Degradation policies.
const (
	// PolicyNone runs the query unguarded (the default): a faulted
	// partition is not detected and the scan blocks on it.
	PolicyNone Policy = iota
	// PolicyRetry retries the partition with backoff until RetryDeadline,
	// then fails with PartitionUnavailableError. Right for transient
	// faults (a stalled node, a healing partition).
	PolicyRetry
	// PolicyFallback serves the faulted partition's rows from the latest
	// committed snapshot's backup replica instead of the unreachable
	// primary, reporting the isolation downgrade in Result.Degraded.
	// Requires state replication; right when availability beats freshness.
	PolicyFallback
	// PolicyFailFast fails the whole query immediately with
	// PartitionUnavailableError. Right when the caller has its own
	// fallback (or must never serve stale data silently).
	PolicyFailFast
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyRetry:
		return "retry"
	case PolicyFallback:
		return "fallback"
	case PolicyFailFast:
		return "fail-fast"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ExecOpts tunes fault handling and planning for one query execution.
type ExecOpts struct {
	// Policy is the degradation policy (default PolicyNone).
	Policy Policy
	// PartitionTimeout bounds one partition access+scan attempt; a scan
	// exceeding it counts as a fault under the policy. Default 100ms
	// (only applied when Policy != PolicyNone).
	PartitionTimeout time.Duration
	// RetryDeadline is PolicyRetry's total per-partition budget across
	// attempts. Default 1s.
	RetryDeadline time.Duration
	// RetryBackoff is the pause between PolicyRetry attempts. Default 10ms.
	RetryBackoff time.Duration
	// DisablePushdown keeps predicates, column projection and LIMIT early
	// stop out of the partition scans: every row ships to the client and
	// filtering runs there. For benchmarking the pushdown win (and as an
	// escape hatch); results are identical either way.
	DisablePushdown bool
	// DisableIndexes keeps secondary indexes out of planning: every scan
	// takes the full-scan access path even when an index could serve its
	// pushed predicate. For benchmarking the index win A/B against the
	// same query (and as an escape hatch); results are identical either
	// way. Implied by DisablePushdown — index selection only considers
	// pushed conjuncts.
	DisableIndexes bool
}

func (o ExecOpts) withDefaults() ExecOpts {
	if o.PartitionTimeout <= 0 {
		o.PartitionTimeout = 100 * time.Millisecond
	}
	if o.RetryDeadline <= 0 {
		o.RetryDeadline = time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	return o
}

// PartitionUnavailableError is the typed failure of a guarded query: one
// partition could not be read under the chosen policy.
type PartitionUnavailableError struct {
	Table     string
	Partition int
	Node      int
	Err       error
}

// Error implements error.
func (e *PartitionUnavailableError) Error() string {
	return fmt.Sprintf("sql: table %q partition %d (node %d) unavailable: %v",
		e.Table, e.Partition, e.Node, e.Err)
}

// Unwrap exposes the underlying fault (e.g. chaos.UnreachableError).
func (e *PartitionUnavailableError) Unwrap() error { return e.Err }

// errScanTimeout marks a partition attempt that exceeded PartitionTimeout.
var errScanTimeout = errors.New("partition scan timed out")

// Degradation reports that one partition of the result was served from a
// committed snapshot's backup replica instead of the requested table — an
// isolation downgrade (live rows elsewhere, snapshot rows here) the caller
// must be able to see.
type Degradation struct {
	// Table is the table name as written in the query.
	Table string
	// Partition is the partition served from the backup replica.
	Partition int
	// FallbackSSID is the committed snapshot id the rows came from.
	FallbackSSID int64
}

// String implements fmt.Stringer.
func (d Degradation) String() string {
	return fmt.Sprintf("%s[p%d]→snapshot %d", d.Table, d.Partition, d.FallbackSSID)
}

// degrades collects Degradation records across the scan goroutines.
type degrades struct {
	mu   sync.Mutex
	list []Degradation
}

func (d *degrades) add(g Degradation) {
	d.mu.Lock()
	d.list = append(d.list, g)
	d.mu.Unlock()
}

// gatherPartition reads one partition of source si under the execution's
// policy, with the plan's pushed predicate and column projection applied
// inside the scan. examined accumulates the rows the pushed filter
// inspected (callers own the pointer; a timed-out attempt's abandoned
// goroutine writes only its own locals). Predicate evaluation errors are
// query bugs, not faults: they return unwrapped and are never retried or
// degraded around.
func (ex *Executor) gatherPartition(pp *physPlan, si, p int, examined *int64, rc *runCtx) ([]core.TableRow, error) {
	s := &pp.srcs[si]
	fail := func(err error) error {
		return &PartitionUnavailableError{
			Table: s.name, Partition: p, Node: s.ref.PartitionOwner(p), Err: err,
		}
	}
	switch rc.opts.Policy {
	case PolicyFailFast:
		rows, evalErr, availErr := ex.attemptPartition(pp, si, p, examined, rc)
		if evalErr != nil {
			return nil, evalErr
		}
		if availErr != nil {
			return nil, fail(availErr)
		}
		return rows, nil

	case PolicyRetry:
		deadline := time.Now().Add(rc.opts.RetryDeadline)
		for {
			rows, evalErr, availErr := ex.attemptPartition(pp, si, p, examined, rc)
			if evalErr != nil {
				return nil, evalErr
			}
			if availErr == nil {
				return rows, nil
			}
			if time.Now().After(deadline) {
				return nil, fail(fmt.Errorf("retry deadline %s exhausted: %w", rc.opts.RetryDeadline, availErr))
			}
			time.Sleep(rc.opts.RetryBackoff)
		}

	case PolicyFallback:
		rows, evalErr, availErr := ex.attemptPartition(pp, si, p, examined, rc)
		if evalErr != nil {
			return nil, evalErr
		}
		if availErr == nil {
			return rows, nil
		}
		// Degrade: serve the latest committed snapshot (or, for a snapshot
		// table, the queried id) from the partition's backup replica. The
		// pushed filter and projection apply to the fallback scan too.
		fssid := s.ssid
		if !s.ref.IsSnapshot() {
			fssid = s.ref.LatestCommittedSSID()
		}
		if fssid == 0 {
			return nil, fail(fmt.Errorf("no committed snapshot to fall back to: %w", availErr))
		}
		if berr := s.ref.CheckBackupPartition(p); berr != nil {
			return nil, fail(fmt.Errorf("backup replica also unavailable: %w", berr))
		}
		var out []core.TableRow
		var fEvalErr error
		spec := pp.spec(si, rc.ctx, rc.done, examined, &fEvalErr)
		spec.SSID = fssid
		s.ref.ScanPartitionFallbackSpec(p, spec, func(r core.TableRow) bool {
			out = append(out, r)
			return true
		})
		if fEvalErr != nil {
			return nil, fEvalErr
		}
		rc.deg.add(Degradation{Table: s.name, Partition: p, FallbackSSID: fssid})
		return out, nil

	default: // PolicyNone — unguarded
		var out []core.TableRow
		var evalErr error
		spec := pp.spec(si, rc.ctx, rc.done, examined, &evalErr)
		s.ref.ScanPartitionSpec(p, spec, func(r core.TableRow) bool {
			out = append(out, r)
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return out, nil
	}
}

// attemptPartition makes one timeout-bounded access check + scan of a
// partition. The scan runs in a goroutine so a stalled access check cannot
// block the query past PartitionTimeout; an abandoned attempt finishes
// harmlessly against the immutable partition copy, writing only its own
// result struct (never the caller's examined counter).
func (ex *Executor) attemptPartition(pp *physPlan, si, p int, examined *int64, rc *runCtx) ([]core.TableRow, error, error) {
	s := &pp.srcs[si]
	type res struct {
		rows     []core.TableRow
		examined int64
		evalErr  error
		err      error
	}
	ch := make(chan res, 1)
	go func() {
		var r res
		if err := s.ref.CheckPartition(p); err != nil {
			r.err = err
			ch <- r
			return
		}
		spec := pp.spec(si, rc.ctx, rc.done, &r.examined, &r.evalErr)
		s.ref.ScanPartitionSpec(p, spec, func(row core.TableRow) bool {
			r.rows = append(r.rows, row)
			return true
		})
		ch <- r
	}()
	tm := time.NewTimer(rc.opts.PartitionTimeout)
	defer tm.Stop()
	select {
	case r := <-ch:
		*examined += r.examined
		return r.rows, r.evalErr, r.err
	case <-tm.C:
		return nil, nil, fmt.Errorf("%w after %s", errScanTimeout, rc.opts.PartitionTimeout)
	}
}
