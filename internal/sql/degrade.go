package sql

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"squery/internal/core"
	"squery/internal/metrics"
)

// Queries against a partially failed cluster must not hang: a stalled or
// unreachable partition would otherwise block the scatter-gather scan
// forever. This file adds per-partition timeouts and a caller-chosen
// degradation policy to the executor. The default policy (PolicyNone)
// keeps the fast path: no access checks, no per-partition goroutines.

// Policy selects how a query handles an unreachable or stalled partition.
type Policy int

// Degradation policies.
const (
	// PolicyNone runs the query unguarded (the default): a faulted
	// partition is not detected and the scan blocks on it.
	PolicyNone Policy = iota
	// PolicyRetry retries the partition with backoff until RetryDeadline,
	// then fails with PartitionUnavailableError. Right for transient
	// faults (a stalled node, a healing partition).
	PolicyRetry
	// PolicyFallback serves the faulted partition's rows from the latest
	// committed snapshot's backup replica instead of the unreachable
	// primary, reporting the isolation downgrade in Result.Degraded.
	// Requires state replication; right when availability beats freshness.
	PolicyFallback
	// PolicyFailFast fails the whole query immediately with
	// PartitionUnavailableError. Right when the caller has its own
	// fallback (or must never serve stale data silently).
	PolicyFailFast
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyRetry:
		return "retry"
	case PolicyFallback:
		return "fallback"
	case PolicyFailFast:
		return "fail-fast"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ExecOpts tunes fault handling for one query execution.
type ExecOpts struct {
	// Policy is the degradation policy (default PolicyNone).
	Policy Policy
	// PartitionTimeout bounds one partition access+scan attempt; a scan
	// exceeding it counts as a fault under the policy. Default 100ms
	// (only applied when Policy != PolicyNone).
	PartitionTimeout time.Duration
	// RetryDeadline is PolicyRetry's total per-partition budget across
	// attempts. Default 1s.
	RetryDeadline time.Duration
	// RetryBackoff is the pause between PolicyRetry attempts. Default 10ms.
	RetryBackoff time.Duration
}

func (o ExecOpts) withDefaults() ExecOpts {
	if o.PartitionTimeout <= 0 {
		o.PartitionTimeout = 100 * time.Millisecond
	}
	if o.RetryDeadline <= 0 {
		o.RetryDeadline = time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	return o
}

// PartitionUnavailableError is the typed failure of a guarded query: one
// partition could not be read under the chosen policy.
type PartitionUnavailableError struct {
	Table     string
	Partition int
	Node      int
	Err       error
}

// Error implements error.
func (e *PartitionUnavailableError) Error() string {
	return fmt.Sprintf("sql: table %q partition %d (node %d) unavailable: %v",
		e.Table, e.Partition, e.Node, e.Err)
}

// Unwrap exposes the underlying fault (e.g. chaos.UnreachableError).
func (e *PartitionUnavailableError) Unwrap() error { return e.Err }

// errScanTimeout marks a partition attempt that exceeded PartitionTimeout.
var errScanTimeout = errors.New("partition scan timed out")

// Degradation reports that one partition of the result was served from a
// committed snapshot's backup replica instead of the requested table — an
// isolation downgrade (live rows elsewhere, snapshot rows here) the caller
// must be able to see.
type Degradation struct {
	// Table is the table name as written in the query.
	Table string
	// Partition is the partition served from the backup replica.
	Partition int
	// FallbackSSID is the committed snapshot id the rows came from.
	FallbackSSID int64
}

// String implements fmt.Stringer.
func (d Degradation) String() string {
	return fmt.Sprintf("%s[p%d]→snapshot %d", d.Table, d.Partition, d.FallbackSSID)
}

// degrades collects Degradation records across the scan goroutines.
type degrades struct {
	mu   sync.Mutex
	list []Degradation
}

func (d *degrades) add(g Degradation) {
	d.mu.Lock()
	d.list = append(d.list, g)
	d.mu.Unlock()
}

// gatherPartition reads one partition under the options' policy.
func (ex *Executor) gatherPartition(s tableSrc, p int, opts ExecOpts, deg *degrades) ([]core.TableRow, error) {
	fail := func(err error) error {
		return &PartitionUnavailableError{
			Table: s.name, Partition: p, Node: s.ref.PartitionOwner(p), Err: err,
		}
	}
	switch opts.Policy {
	case PolicyFailFast:
		rows, err := ex.attemptPartition(s, p, opts)
		if err != nil {
			return nil, fail(err)
		}
		return rows, nil

	case PolicyRetry:
		deadline := time.Now().Add(opts.RetryDeadline)
		for {
			rows, err := ex.attemptPartition(s, p, opts)
			if err == nil {
				return rows, nil
			}
			if time.Now().After(deadline) {
				return nil, fail(fmt.Errorf("retry deadline %s exhausted: %w", opts.RetryDeadline, err))
			}
			time.Sleep(opts.RetryBackoff)
		}

	case PolicyFallback:
		rows, err := ex.attemptPartition(s, p, opts)
		if err == nil {
			return rows, nil
		}
		// Degrade: serve the latest committed snapshot (or, for a snapshot
		// table, the queried id) from the partition's backup replica.
		fssid := s.ssid
		if !s.ref.IsSnapshot() {
			fssid = s.ref.LatestCommittedSSID()
		}
		if fssid == 0 {
			return nil, fail(fmt.Errorf("no committed snapshot to fall back to: %w", err))
		}
		if berr := s.ref.CheckBackupPartition(p); berr != nil {
			return nil, fail(fmt.Errorf("backup replica also unavailable: %w", berr))
		}
		var out []core.TableRow
		s.ref.ScanPartitionFallback(fssid, p, func(r core.TableRow) bool {
			out = append(out, r)
			return true
		})
		deg.add(Degradation{Table: s.name, Partition: p, FallbackSSID: fssid})
		return out, nil

	default: // PolicyNone — unguarded
		var out []core.TableRow
		s.ref.ScanPartition(s.ssid, p, func(r core.TableRow) bool {
			out = append(out, r)
			return true
		})
		return out, nil
	}
}

// attemptPartition makes one timeout-bounded access check + scan of a
// partition. The scan runs in a goroutine so a stalled access check cannot
// block the query past PartitionTimeout; an abandoned attempt finishes
// harmlessly against the immutable partition copy.
func (ex *Executor) attemptPartition(s tableSrc, p int, opts ExecOpts) ([]core.TableRow, error) {
	type res struct {
		rows []core.TableRow
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		if err := s.ref.CheckPartition(p); err != nil {
			ch <- res{err: err}
			return
		}
		var rows []core.TableRow
		s.ref.ScanPartition(s.ssid, p, func(r core.TableRow) bool {
			rows = append(rows, r)
			return true
		})
		ch <- res{rows: rows}
	}()
	tm := time.NewTimer(opts.PartitionTimeout)
	defer tm.Stop()
	select {
	case r := <-ch:
		return r.rows, r.err
	case <-tm.C:
		return nil, fmt.Errorf("%w after %s", errScanTimeout, opts.PartitionTimeout)
	}
}

// scanAllGuarded is scanAll with per-partition fault handling: one
// goroutine per node, each reading its owned partitions under the policy.
// The first partition error cancels nothing in flight (scans are cheap and
// memory-local) but fails the query.
func (ex *Executor) scanAllGuarded(s tableSrc, opts ExecOpts, deg *degrades) ([]core.TableRow, error) {
	if opts.Policy == PolicyNone {
		return ex.scanAll(s), nil
	}
	type batch struct {
		rows []core.TableRow
		err  error
	}
	ch := make(chan batch, ex.nodes)
	var wg sync.WaitGroup
	for n := 0; n < ex.nodes; n++ {
		parts := ex.ownedPartitions(s, n)
		if len(parts) == 0 {
			continue // pruned or unowned: no goroutine, no hop
		}
		wg.Add(1)
		go func(node int, parts []int) {
			defer wg.Done()
			var b batch
			s.ref.ChargeClientHop(node)
			for _, p := range parts {
				sw := metrics.StartStopwatch()
				rows, err := ex.gatherPartition(s, p, opts, deg)
				ex.recordPartScan(s, p, len(rows), sw.Elapsed())
				if err != nil {
					b.err = err
					break
				}
				b.rows = append(b.rows, rows...)
			}
			ch <- b
		}(n, parts)
	}
	wg.Wait()
	close(ch)
	var out []core.TableRow
	var firstErr error
	for b := range ch {
		if b.err != nil && firstErr == nil {
			firstErr = b.err
		}
		out = append(out, b.rows...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
