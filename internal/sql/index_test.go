package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"squery/internal/core"
)

// indexFixture is newFixture plus secondary indexes on both operators:
// hash on the string columns, B-tree on the numeric one, covering live
// and snapshot tables.
func indexFixture(t testing.TB, n int) *fixture {
	t.Helper()
	f := newFixture(t, n, liveSnapCfg())
	for _, ix := range []struct {
		table, col string
		kind       core.IndexKind
	}{
		{"orderinfo", "deliveryZone", core.IndexHash},
		{"orderinfo", "customerLat", core.IndexBTree},
		{"orderstate", "orderState", core.IndexHash},
		{"snapshot_orderinfo", "deliveryZone", core.IndexHash},
	} {
		if err := f.cat.CreateIndex(ix.table, ix.col, ix.kind); err != nil {
			t.Fatalf("CreateIndex(%s.%s): %v", ix.table, ix.col, err)
		}
	}
	return f
}

// sortedRows renders a result set order-independently.
func sortedRows(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprint(r)
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

// runAB executes the query with indexes enabled and disabled and fails on
// any difference — the core parity contract: an index changes how rows are
// found, never which rows are found.
func runAB(t *testing.T, f *fixture, q string, opts ExecOpts) (*Result, *Result) {
	t.Helper()
	on, err := f.ex.QueryWithOptions(q, opts)
	if err != nil {
		t.Fatalf("indexed %s: %v", q, err)
	}
	optsOff := opts
	optsOff.DisableIndexes = true
	off, err := f.ex.QueryWithOptions(q, optsOff)
	if err != nil {
		t.Fatalf("full-scan %s: %v", q, err)
	}
	if got, want := sortedRows(on), sortedRows(off); got != want {
		t.Fatalf("index/full-scan mismatch for %s:\n index %s\n full  %s", q, got, want)
	}
	return on, off
}

// explainHas asserts the plan for q renders (or does not render) an index
// access path.
func explainHas(t *testing.T, f *fixture, q string, wantIndex bool) string {
	t.Helper()
	text, err := f.ex.Explain(q)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", q, err)
	}
	if got := strings.Contains(text, "access index"); got != wantIndex {
		t.Fatalf("EXPLAIN %s: index path rendered = %v, want %v\n%s", q, got, wantIndex, text)
	}
	return text
}

// TestIndexParity: every query shape the planner can route through an
// index returns exactly the full-scan result — point and range probes,
// aggregates with DISTINCT, joins, LIMIT, and guarded (degradation-policy)
// executions.
func TestIndexParity(t *testing.T) {
	f := indexFixture(t, 120)

	point := `SELECT partitionKey, customerLat FROM orderinfo WHERE deliveryZone = 'north'`
	res, _ := runAB(t, f, point, ExecOpts{})
	if len(res.Rows) != 60 {
		t.Fatalf("point query rows = %d, want 60", len(res.Rows))
	}
	explainHas(t, f, point, true)

	rng := `SELECT partitionKey FROM orderinfo WHERE customerLat >= 60 AND customerLat < 100`
	res, _ = runAB(t, f, rng, ExecOpts{})
	if len(res.Rows) != 40 {
		t.Fatalf("range query rows = %d, want 40", len(res.Rows))
	}
	explainHas(t, f, rng, true)

	runAB(t, f, `SELECT partitionKey FROM orderinfo WHERE customerLat BETWEEN 55 AND 60.5`, ExecOpts{})
	runAB(t, f, `SELECT partitionKey FROM orderinfo WHERE 57 > customerLat`, ExecOpts{})
	// Mixed conjuncts: equality and range on different columns — the
	// planner picks the cheaper path, the other conjunct stays in the
	// pushed filter.
	runAB(t, f, `SELECT partitionKey FROM orderinfo WHERE deliveryZone = 'south' AND customerLat < 70`, ExecOpts{})

	// DISTINCT aggregate over an index-served scan.
	runAB(t, f, `SELECT COUNT(DISTINCT vendorCategory) FROM orderinfo WHERE deliveryZone = 'north'`, ExecOpts{})

	// Joins: index-served sides on both the co-partitioned and the
	// general hash join.
	runAB(t, f, `SELECT a.partitionKey FROM orderinfo a JOIN orderstate b USING(partitionKey) `+
		`WHERE a.deliveryZone = 'north' AND b.orderState = 'NOTIFIED'`, ExecOpts{})
	runAB(t, f, `SELECT a.partitionKey, b.orderState FROM orderinfo a JOIN orderstate b ON a.partitionKey = b.partitionKey `+
		`WHERE a.customerLat > 100 AND b.orderState = 'PICKED_UP'`, ExecOpts{})

	// LIMIT: early-stop makes the kept subset nondeterministic, so parity
	// here is count + predicate, not row identity.
	for _, disable := range []bool{false, true} {
		res, err := f.ex.QueryWithOptions(
			`SELECT deliveryZone FROM orderinfo WHERE deliveryZone = 'south' LIMIT 5`,
			ExecOpts{DisableIndexes: disable})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("LIMIT rows = %d, want 5 (DisableIndexes=%v)", len(res.Rows), disable)
		}
		for _, r := range res.Rows {
			if r[0] != "south" {
				t.Fatalf("LIMIT row violates predicate: %v", r)
			}
		}
	}

	// Snapshot table: the chain-union index answers the pinned ssid.
	snap := `SELECT partitionKey FROM "snapshot_orderinfo" WHERE ssid = 1 AND deliveryZone = 'south'`
	res, _ = runAB(t, f, snap, ExecOpts{})
	if len(res.Rows) != 60 {
		t.Fatalf("snapshot point query rows = %d, want 60", len(res.Rows))
	}

	// Degradation policies on a healthy cluster: guarded executions take
	// the same index path and the same rows.
	for _, pol := range []Policy{PolicyRetry, PolicyFailFast, PolicyFallback} {
		runAB(t, f, point, ExecOpts{Policy: pol})
	}

	// No index on vendorCategory: the planner must not fabricate a path.
	explainHas(t, f, `SELECT partitionKey FROM orderinfo WHERE vendorCategory = 'food'`, false)
	// DisablePushdown implies no index selection (nothing is pushed).
	res, err := f.ex.QueryWithOptions(point, ExecOpts{DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 60 {
		t.Fatalf("DisablePushdown rows = %d, want 60", len(res.Rows))
	}
}

// TestIndexScanStatsAndAnalyze: the chosen path shows up in EXPLAIN
// ANALYZE with estimated and actual candidate counts, and rows_scanned
// drops to the selectivity of the probe instead of the table size.
func TestIndexScanStatsAndAnalyze(t *testing.T) {
	f := indexFixture(t, 120)

	q := `SELECT partitionKey FROM orderinfo WHERE deliveryZone = 'north'`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	res, pp, err := f.ex.execTraced(stmt, ExecOpts{}, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 60 {
		t.Fatalf("rows = %d, want 60", len(res.Rows))
	}
	sc := pp.scans[0]
	if sc.Access == "" || sc.EstRows != 60 {
		t.Fatalf("scan access = %q est %d, want index path with est 60", sc.Access, sc.EstRows)
	}
	// The index probe hands the pushed filter only the matching zone's
	// candidates: examined == selectivity, not the 120-row table.
	if got := sc.Stat().Examined.Load(); got != 60 {
		t.Fatalf("examined = %d, want 60 (index should skip the other zone)", got)
	}
	// Full scan baseline examines everything.
	stmt2, _ := Parse(q)
	_, pp2, err := f.ex.execTraced(stmt2, ExecOpts{DisableIndexes: true}, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := pp2.scans[0].Stat().Examined.Load(); got != 120 {
		t.Fatalf("full-scan examined = %d, want 120", got)
	}
	if pp2.scans[0].Access != "" {
		t.Fatalf("DisableIndexes still chose %q", pp2.scans[0].Access)
	}

	// EXPLAIN ANALYZE renders estimated vs actual.
	out, err := f.ex.QueryWithOptions(`EXPLAIN ANALYZE `+q, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, r := range out.Rows {
		lines = append(lines, fmt.Sprint(r[0]))
	}
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "access index eq(deliveryZone = north)") {
		t.Fatalf("EXPLAIN ANALYZE missing access path:\n%s", text)
	}
	if !strings.Contains(text, "est≈60") || !strings.Contains(text, "60 examined") {
		t.Fatalf("EXPLAIN ANALYZE missing est/actual counts:\n%s", text)
	}
}

// TestIndexRangeBoundsMerge: multiple range conjuncts merge into one
// B-tree probe with the tightest bounds.
func TestIndexRangeBoundsMerge(t *testing.T) {
	f := indexFixture(t, 120)
	q := `SELECT partitionKey FROM orderinfo WHERE customerLat >= 52 AND customerLat >= 60 AND customerLat <= 80 AND customerLat < 200`
	text := explainHas(t, f, q, true)
	if !strings.Contains(text, "index range(customerLat >= 60 and customerLat <= 80)") {
		t.Fatalf("bounds not merged tightest-first:\n%s", text)
	}
	runAB(t, f, q, ExecOpts{})
}
