package sql

import (
	"fmt"
	"strings"
)

// Expr is a SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Ident references a column, optionally qualified by a table name:
// orderState, or snapshot_orderinfo.ssid.
type Ident struct {
	Table string // empty when unqualified
	Name  string
}

func (Ident) exprNode() {}
func (e Ident) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// Lit is a literal: string, float64/int64 number, bool, or nil (NULL).
type Lit struct {
	Val any
}

func (Lit) exprNode() {}
func (e Lit) String() string {
	switch v := e.Val.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// LocalTimestamp is the LOCALTIMESTAMP keyword, evaluated once per query.
type LocalTimestamp struct{}

func (LocalTimestamp) exprNode()      {}
func (LocalTimestamp) String() string { return "LOCALTIMESTAMP" }

// Binary is a binary operation. Op is one of
// = != < <= > >= + - * / % AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

func (Binary) exprNode() {}
func (e Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// Unary is NOT <expr> or - <expr>.
type Unary struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (Unary) exprNode() {}
func (e Unary) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.E.String() + ")"
	}
	return "(-" + e.E.String() + ")"
}

// IsNull is <expr> IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Not bool
}

func (IsNull) exprNode() {}
func (e IsNull) String() string {
	if e.Not {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}

// InList is <expr> [NOT] IN (v1, v2, ...).
type InList struct {
	E    Expr
	List []Expr
	Not  bool
}

func (InList) exprNode() {}
func (e InList) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := "IN"
	if e.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.E, op, strings.Join(parts, ", "))
}

// Between is <expr> BETWEEN lo AND hi.
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

func (Between) exprNode() {}
func (e Between) String() string {
	op := "BETWEEN"
	if e.Not {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", e.E, op, e.Lo, e.Hi)
}

// Like is <expr> [NOT] LIKE 'pattern' with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
	Not     bool
}

func (Like) exprNode() {}
func (e Like) String() string {
	op := "LIKE"
	if e.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", e.E, op, e.Pattern)
}

// Func is a scalar function call: ABS(x), UPPER(s), COALESCE(a, b), ...
type Func struct {
	Name string // upper-cased
	Args []Expr
}

func (Func) exprNode() {}
func (e Func) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// AggFunc names an aggregate function.
type AggFunc string

// Aggregate functions supported in SELECT lists.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// Agg is an aggregate call: COUNT(*), COUNT(expr), SUM(expr), ...
type Agg struct {
	Func     AggFunc
	Arg      Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
}

func (Agg) exprNode() {}
func (e Agg) String() string {
	if e.Star {
		return string(e.Func) + "(*)"
	}
	if e.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", e.Func, e.Arg)
	}
	return fmt.Sprintf("%s(%s)", e.Func, e.Arg)
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	Expr  Expr   // nil when Star
	Alias string // AS name, optional
	Star  bool   // SELECT *
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// OutputName is the column name this item produces in the result set.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if id, ok := s.Expr.(Ident); ok {
		return id.Name
	}
	return s.Expr.String()
}

// TableName is a FROM or JOIN table with an optional alias.
type TableName struct {
	Name  string
	Alias string
}

// Ref returns the name expressions should use to qualify columns of this
// table: the alias when present, the table name otherwise.
func (t TableName) Ref() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Join is one JOIN clause. The dialect supports equi-joins via
// USING(col) — the paper's queries join on partitionKey — or ON a = b.
type Join struct {
	Table TableName
	Using string // USING(col); empty when ON is used
	OnL   Ident  // ON left = right
	OnR   Ident
	Left  bool // LEFT [OUTER] JOIN
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a parsed SELECT statement.
type Select struct {
	Items   []SelectItem
	From    TableName
	Joins   []Join
	Where   Expr // nil when absent
	GroupBy []Expr
	Having  Expr // nil when absent
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// HasAggregates reports whether any select item contains an aggregate.
func (s *Select) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Star {
			continue
		}
		if containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case Agg:
		return true
	case Binary:
		return containsAgg(x.L) || containsAgg(x.R)
	case Unary:
		return containsAgg(x.E)
	case IsNull:
		return containsAgg(x.E)
	case Between:
		return containsAgg(x.E) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case InList:
		if containsAgg(x.E) {
			return true
		}
		for _, v := range x.List {
			if containsAgg(v) {
				return true
			}
		}
	case Like:
		return containsAgg(x.E)
	case Func:
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
	}
	return false
}
