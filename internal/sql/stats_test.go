package sql

import (
	"fmt"
	"strings"
	"testing"

	"squery/internal/core"
)

// TestPlannerStatsSkew pins the planner's statistics on a skewed fixture:
// 200 orders, 180 in the hot zone and 20 in the rare one. The full scan
// must carry the table-cardinality estimate (est≈ is no longer reserved
// for index wins), and the equality probes must track the actual skew —
// est≈20 for the rare zone, est≈180 for the hot one — rather than an
// assumed-uniform 100. A wrong estimate here silently flips plan choices
// once costs are close, so the exact numbers are the regression.
func TestPlannerStatsSkew(t *testing.T) {
	f := newFixture(t, 0, liveSnapCfg())
	for i := 0; i < 200; i++ {
		zone := "hot"
		if i%10 == 0 {
			zone = "rare"
		}
		f.info.Update(fmt.Sprintf("order-%d", i), orderInfo{DeliveryZone: zone, CustomerLat: 52.0 + float64(i)})
	}
	f.info.Flush() // live-map mirror batches, so size stats see all 200 rows
	if err := f.cat.CreateIndex("orderinfo", "deliveryZone", core.IndexHash); err != nil {
		t.Fatal(err)
	}
	explain := func(q string) string {
		t.Helper()
		text, err := f.ex.Explain(q)
		if err != nil {
			t.Fatalf("EXPLAIN %s: %v", q, err)
		}
		return text
	}

	// No sargable predicate: the full scan shows what any alternative
	// would have been weighed against.
	if text := explain(`SELECT partitionKey FROM orderinfo`); !strings.Contains(text, "full scan (est≈200 rows)") {
		t.Fatalf("full scan missing cardinality estimate:\n%s", text)
	}

	// Rare-zone probe: the index wins with the rare selectivity, not a
	// uniform len/ndv guess.
	rare := `SELECT partitionKey FROM orderinfo WHERE deliveryZone = 'rare'`
	if text := explain(rare); !strings.Contains(text, "access index eq(deliveryZone = rare) (est≈20 rows)") {
		t.Fatalf("rare probe estimate does not track skew:\n%s", text)
	}

	// Hot-zone probe: still cheaper than the full scan, but the estimate
	// must say 180, not 100.
	hot := `SELECT partitionKey FROM orderinfo WHERE deliveryZone = 'hot'`
	if text := explain(hot); !strings.Contains(text, "access index eq(deliveryZone = hot) (est≈180 rows)") {
		t.Fatalf("hot probe estimate does not track skew:\n%s", text)
	}

	// A predicate the index cannot serve falls back to the full scan and
	// keeps the cardinality estimate alongside the pushed filter.
	nosarg := `SELECT partitionKey FROM orderinfo WHERE customerLat > 100`
	if text := explain(nosarg); !strings.Contains(text, "full scan (est≈200 rows)") {
		t.Fatalf("unservable predicate lost the full-scan estimate:\n%s", text)
	}

	// Virtual tables carry no statistics — no est≈ at all.
	f.cat.RegisterVirtual("sys.test", func() []core.TableRow { return nil })
	if text := explain(`SELECT * FROM "sys.test"`); strings.Contains(text, "est≈") {
		t.Fatalf("virtual scan rendered a bogus estimate:\n%s", text)
	}

	// Estimates are advice, not semantics: indexed and full-scan
	// executions agree on the skewed data.
	runAB(t, f, rare, ExecOpts{})
	runAB(t, f, hot, ExecOpts{})
}
