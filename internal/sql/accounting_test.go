package sql

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"squery/internal/metrics"
)

// logEvents reads one of the executor's event logs.
func logEvents(reg *metrics.Registry, name string) []metrics.Event {
	return reg.Log(name, 0).Events()
}

func TestQueryEventCarriesResourceAccounting(t *testing.T) {
	f := newFixture(t, 40, liveSnapCfg())
	reg := metered(f)
	if _, err := f.ex.Query(`SELECT * FROM orderinfo`); err != nil {
		t.Fatal(err)
	}
	evs := logEvents(reg, "queries")
	if len(evs) != 1 {
		t.Fatalf("queries log has %d events, want 1", len(evs))
	}
	ev := evs[0].Fields
	if b, _ := ev["bytesShipped"].(int64); b <= 0 {
		t.Fatalf("bytesShipped = %v, want > 0", ev["bytesShipped"])
	}
	if m, _ := ev["peakMemBytes"].(int64); m <= 0 {
		t.Fatalf("peakMemBytes = %v, want > 0", ev["peakMemBytes"])
	}
	if s, _ := ev["stages"].(string); s == "" {
		t.Fatal("stages breakdown is empty")
	}
	if counterVal(t, reg, "sql", "exec", "bytes_shipped") <= 0 {
		t.Fatal("bytes_shipped counter did not accumulate")
	}
}

func TestSlowQueryLogThresholdAndMirror(t *testing.T) {
	f := newFixture(t, 20, liveSnapCfg())
	reg := metrics.NewRegistry()
	// Threshold 0ns is mapped to the default; use 1ns so every execution
	// qualifies as slow.
	f.ex.SetMetricsLimits(reg, MetricsLimits{SlowQueryThreshold: time.Nanosecond})
	if _, err := f.ex.Query(`SELECT COUNT(*) FROM orderinfo`); err != nil {
		t.Fatal(err)
	}
	if got := logEvents(reg, "slow_queries"); len(got) != 1 {
		t.Fatalf("slow_queries has %d events, want 1", len(got))
	}
	// Mirrored, not moved: the event must also be in sys.queries' log.
	if got := logEvents(reg, "queries"); len(got) != 1 {
		t.Fatalf("queries has %d events, want 1", len(got))
	}
	if counterVal(t, reg, "sql", "exec", "slow_queries") != 1 {
		t.Fatal("slow_queries counter != 1")
	}

	// A negative threshold disables the slow log entirely.
	f2 := newFixture(t, 20, liveSnapCfg())
	reg2 := metrics.NewRegistry()
	f2.ex.SetMetricsLimits(reg2, MetricsLimits{SlowQueryThreshold: -1})
	if _, err := f2.ex.Query(`SELECT COUNT(*) FROM orderinfo`); err != nil {
		t.Fatal(err)
	}
	if got := logEvents(reg2, "slow_queries"); len(got) != 0 {
		t.Fatalf("disabled slow log recorded %d events", len(got))
	}
}

func TestQueryLogEvictionHonorsConfiguredCaps(t *testing.T) {
	f := newFixture(t, 10, liveSnapCfg())
	reg := metrics.NewRegistry()
	f.ex.SetMetricsLimits(reg, MetricsLimits{
		QueryLogCapacity:     4,
		SlowQueryLogCapacity: 2,
		SlowQueryThreshold:   time.Nanosecond,
	})
	for i := 0; i < 9; i++ {
		q := fmt.Sprintf(`SELECT COUNT(*) FROM orderinfo WHERE customerLat > %d`, i)
		if _, err := f.ex.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	evs := logEvents(reg, "queries")
	if len(evs) != 4 {
		t.Fatalf("queries retained %d events, want cap 4", len(evs))
	}
	// Oldest evicted: the survivors are the last four queries, in order.
	for i, ev := range evs {
		want := fmt.Sprintf("customerLat > %d", 5+i)
		if q, _ := ev.Fields["query"].(string); q == "" || !strings.Contains(q, want) {
			t.Fatalf("event %d query %q, want suffix %q", i, ev.Fields["query"], want)
		}
	}
	if got := logEvents(reg, "slow_queries"); len(got) != 2 {
		t.Fatalf("slow_queries retained %d events, want cap 2", len(got))
	}
}
