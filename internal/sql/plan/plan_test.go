package plan

import (
	"strings"
	"testing"
	"time"
)

// tree builds the representative pipeline: limit(sort(project(filter(
// hashjoin(scan, scan))))), with stats filled as if it had executed.
func tree() Node {
	left := &Scan{Table: "orders", Mode: Live, ClusterNodes: 3, Partitions: 32,
		PartHint: -1, Filter: "(total > 5)", Cols: []string{"total", "zone"}}
	right := &Scan{Table: "snapshot_state", Mode: Snapshot, SSID: 7, Pinned: true,
		ClusterNodes: 3, Partitions: 32, PartHint: 4, PrunedParts: 31}
	left.Stat().Parts.Store(32)
	left.Stat().Examined.Store(1000)
	left.Stat().Rows.Store(40)
	left.Stat().WallNs.Store(int64(2 * time.Millisecond))
	right.Stat().Parts.Store(1)
	right.Stat().Rows.Store(3)
	j := &HashJoin{Left: left, Right: right, Cond: "USING(partitionKey)"}
	j.Stat().Rows.Store(12)
	f := &Filter{Input: j, Pred: "(zone = 'north')"}
	f.Stat().In.Store(12)
	f.Stat().Rows.Store(5)
	p := &Project{Input: f, Items: []string{"zone", "total"}}
	p.Stat().Rows.Store(5)
	s := &Sort{Input: p, Keys: []string{"total DESC"}}
	return &Limit{Input: s, N: 3, EarlyStop: false}
}

func TestRenderPlanOnly(t *testing.T) {
	out := Render(tree(), RenderOpts{ClusterNodes: 3, Partitions: 32})
	for _, want := range []string{
		"plan (3 nodes, 32 partitions):",
		"limit 3",
		"sort total DESC",
		"project zone, total",
		"filter (zone = 'north')",
		"join USING(partitionKey) global hash join (build right, probe left)",
		"scan orders live (read uncommitted), scatter-gather over 3 nodes, pushed filter (total > 5), ship cols (total, zone)",
		"scan snapshot_state snapshot @ ssid 7 (pinned), scatter-gather over 3 nodes, pruned to partition 4 by partitionKey",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[analyze:") || strings.Contains(out, "analyzed:") {
		t.Fatalf("plan-only render leaked analyze annotations:\n%s", out)
	}
	// Indentation: each level two spaces deeper, root at one level.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[1], "  limit") {
		t.Fatalf("root not at depth 1: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    sort") {
		t.Fatalf("child not at depth 2: %q", lines[2])
	}
}

func TestRenderAnalyzed(t *testing.T) {
	out := Render(tree(), RenderOpts{
		ClusterNodes: 3, Partitions: 32, Analyzed: true,
		Total: 5 * time.Millisecond, Returned: 3, Degraded: 1,
	})
	for _, want := range []string{
		"scanned 32/32 partitions (0 pruned), 40 rows shipped (of 1000 examined)",
		"scanned 1/32 partitions (31 pruned), 3 rows",
		"[analyze: 12 rows",
		"[analyze: kept 5/12 rows",
		"[analyze: 5 row(s)",
		"analyzed: total 5ms, 3 row(s) returned, 1 degraded partition(s)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyzed plan missing %q:\n%s", want, out)
		}
	}
	// Sort and limit carry no stats and must not render empty brackets.
	if strings.Contains(out, "[analyze: ]") {
		t.Fatalf("empty analyze annotation rendered:\n%s", out)
	}
}

func TestScanDescribeModes(t *testing.T) {
	v := &Scan{Table: "sys.queries", Mode: Virtual, PartHint: -1, Partitions: 1}
	if got := v.Describe(); !strings.Contains(got, "virtual system table, single partition") {
		t.Fatalf("virtual scan: %q", got)
	}
	u := &Scan{Table: "snapshot_x", Mode: Snapshot, Unresolved: "no committed snapshot", PartHint: -1}
	if got := u.Describe(); !strings.Contains(got, "snapshot (unresolvable now: no committed snapshot)") {
		t.Fatalf("unresolved scan: %q", got)
	}
	lo := &HashJoin{Cond: "ON a = b", LeftOuter: true}
	if got := lo.Describe(); !strings.Contains(got, "left outer") {
		t.Fatalf("left outer join: %q", got)
	}
	es := &Limit{N: 10, EarlyStop: true}
	if got := es.Describe(); !strings.Contains(got, "early-stop") {
		t.Fatalf("early-stop limit: %q", got)
	}
	ag := &Aggregate{GroupBy: []string{"zone"}, Having: "(COUNT(*) > 1)"}
	if got := ag.Describe(); got != "aggregate GROUP BY zone, having (COUNT(*) > 1)" {
		t.Fatalf("aggregate describe: %q", got)
	}
}

func TestWalkOrder(t *testing.T) {
	var kinds []string
	Walk(tree(), func(n Node) { kinds = append(kinds, n.Kind()) })
	want := "limit sort project filter hashjoin scan scan"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("walk order = %q, want %q", got, want)
	}
}
