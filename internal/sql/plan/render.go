package plan

import (
	"fmt"
	"strings"
	"time"
)

// RenderOpts parameterizes one rendering of a plan tree.
type RenderOpts struct {
	// ClusterNodes and Partitions fill the "plan (N nodes, M partitions)"
	// header.
	ClusterNodes int
	Partitions   int
	// Analyzed appends per-node [analyze: ...] annotations and the
	// closing totals line (EXPLAIN ANALYZE); false renders the plain
	// EXPLAIN form.
	Analyzed bool
	// Total, Returned and Degraded fill the totals line (Analyzed only).
	Total    time.Duration
	Returned int
	Degraded int
}

// Render renders the tree as indented text, root first: the outermost
// stage (limit/sort) at the top, scans as the leaves. Because EXPLAIN
// ANALYZE passes the very tree the executor ran, what this prints is by
// construction what executed — there is no second plan derivation.
func Render(root Node, o RenderOpts) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan (%d nodes, %d partitions):\n", o.ClusterNodes, o.Partitions)
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(n.Describe())
		if o.Analyzed {
			if a := n.Annotate(); a != "" {
				fmt.Fprintf(&b, " [analyze: %s]", a)
			}
		}
		b.WriteByte('\n')
		for _, in := range n.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(root, 0)
	if o.Analyzed {
		fmt.Fprintf(&b, "analyzed: total %s, %d row(s) returned, %d degraded partition(s)\n",
			roundDur(o.Total.Nanoseconds()), o.Returned, o.Degraded)
	}
	return b.String()
}

// roundDur trims a nanosecond count for plan display.
func roundDur(ns int64) time.Duration {
	d := time.Duration(ns)
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
