// Package plan defines the typed plan tree the SQL layer lowers a parsed
// SELECT into. One tree is the single source of truth for three
// consumers: the streaming executor walks it to run the query (each node
// self-reports rows and wall time into its Stats), EXPLAIN renders it
// without executing, and EXPLAIN ANALYZE renders the exact tree an
// execution ran, annotated with the stats that execution recorded.
//
// The package is pure data plus rendering: it knows nothing about the
// SQL AST, the catalog or the executor. Expressions arrive pre-rendered
// as strings; pushdown decisions arrive as fields on Scan. That keeps
// the dependency arrow pointing one way (sql -> plan) and makes the tree
// trivially inspectable from tests.
package plan

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Stats is one node's execution record, written concurrently by the scan
// and pipeline goroutines and read once at render/metrics time.
type Stats struct {
	// In counts rows entering the node (recorded by Filter).
	In atomic.Int64
	// Rows counts rows the node emitted. For Scan this is the rows that
	// crossed the client hop — after the pushed filter ran node-side.
	Rows atomic.Int64
	// Examined counts rows a Scan's pushed filter inspected on the owning
	// node (equals Rows when nothing was pushed).
	Examined atomic.Int64
	// Parts counts partitions a Scan actually read.
	Parts atomic.Int64
	// WallNs is the summed wall time spent in this node, nanoseconds.
	WallNs atomic.Int64
}

// Node is one operator of the plan tree.
type Node interface {
	// Kind is a stable lower-case label ("scan", "filter", ...) used to
	// key per-node-kind metrics.
	Kind() string
	// Describe renders the node's static plan line (no stats).
	Describe() string
	// Annotate renders the node's [analyze: ...] payload from its Stats;
	// "" suppresses the annotation.
	Annotate() string
	// Inputs returns the node's children, build side last.
	Inputs() []Node
	// Stat returns the node's mutable execution record.
	Stat() *Stats
}

// Kinds lists every node kind, for pre-resolving per-kind instruments.
var Kinds = []string{"scan", "cojoin", "hashjoin", "filter", "aggregate", "project", "sort", "limit"}

// ScanMode says which state a Scan reads.
type ScanMode int

// Scan modes.
const (
	// Live reads the operator's live map (read uncommitted).
	Live ScanMode = iota
	// Snapshot reads a committed snapshot version chain.
	Snapshot
	// Virtual reads a provider-backed sys.* table.
	Virtual
)

// Scan is a leaf: the scatter-gather read of one table. Pushdown lives
// here — the pushed predicate and the projected column set both run
// inside the partition scan on the owning node, before the client hop.
type Scan struct {
	stats Stats

	// Table is the table name as written in the query.
	Table string
	// Mode is the state being read.
	Mode ScanMode
	// SSID is the resolved snapshot id (0 for live/virtual).
	SSID int64
	// Pinned reports whether the query pinned the ssid explicitly.
	Pinned bool
	// Unresolved carries the ssid-resolution error when a plan-only
	// EXPLAIN could not resolve a snapshot (the scan is still shown).
	Unresolved string
	// ClusterNodes is the node count the scan fans out over.
	ClusterNodes int
	// Partitions is the table's total partition count.
	Partitions int
	// PartHint, when >= 0, is the single partition a
	// `partitionKey = <lit>` predicate pruned the scan to.
	PartHint int
	// PrunedParts is the number of partitions pruning excluded.
	PrunedParts int64
	// Filter is the pushed predicate, pre-rendered ("" = none).
	Filter string
	// Cols is the projected column set shipped back (nil = all columns).
	Cols []string
	// Access is the chosen non-default access path, pre-rendered
	// ("index eq(zone = 'z1')"); "" means full scan.
	Access string
	// EstRows is the planner's candidate-row estimate for the chosen
	// path: index selectivity when Access != "", table cardinality for
	// the full scan. Meaningful only when EstValid is set (virtual tables
	// carry no statistics).
	EstRows  int64
	EstValid bool
}

// Kind implements Node.
func (s *Scan) Kind() string { return "scan" }

// Inputs implements Node.
func (s *Scan) Inputs() []Node { return nil }

// Stat implements Node.
func (s *Scan) Stat() *Stats { return &s.stats }

// Describe implements Node.
func (s *Scan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan %s ", s.Table)
	switch {
	case s.Mode == Virtual:
		b.WriteString("virtual system table, single partition")
	case s.Unresolved != "":
		fmt.Fprintf(&b, "snapshot (unresolvable now: %s)", s.Unresolved)
	case s.Mode == Snapshot:
		how := "latest committed"
		if s.Pinned {
			how = "pinned"
		}
		fmt.Fprintf(&b, "snapshot @ ssid %d (%s), scatter-gather over %d nodes", s.SSID, how, s.ClusterNodes)
	default:
		fmt.Fprintf(&b, "live (read uncommitted), scatter-gather over %d nodes", s.ClusterNodes)
	}
	if s.PartHint >= 0 && s.Mode != Virtual {
		fmt.Fprintf(&b, ", pruned to partition %d by partitionKey", s.PartHint)
	}
	if s.Filter != "" {
		fmt.Fprintf(&b, ", pushed filter %s", s.Filter)
	}
	switch {
	case s.Access != "":
		fmt.Fprintf(&b, ", access %s (est≈%d rows)", s.Access, s.EstRows)
	case s.EstValid:
		fmt.Fprintf(&b, ", full scan (est≈%d rows)", s.EstRows)
	}
	if s.Cols != nil {
		fmt.Fprintf(&b, ", ship cols (%s)", strings.Join(s.Cols, ", "))
	}
	return b.String()
}

// Annotate implements Node.
func (s *Scan) Annotate() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scanned %d/%d partitions (%d pruned), %d rows",
		s.stats.Parts.Load(), s.Partitions, s.PrunedParts, s.stats.Rows.Load())
	if s.Filter != "" {
		if s.Access != "" {
			fmt.Fprintf(&b, " shipped (of %d examined via %s, est≈%d)",
				s.stats.Examined.Load(), s.Access, s.EstRows)
		} else {
			fmt.Fprintf(&b, " shipped (of %d examined)", s.stats.Examined.Load())
		}
	}
	fmt.Fprintf(&b, ", %s", roundDur(s.stats.WallNs.Load()))
	return b.String()
}

// CoJoin is the co-partitioned USING(partitionKey) join: both sides of
// every partition live on the same node, so the join runs per partition
// with no shuffle.
type CoJoin struct {
	stats Stats

	Left, Right Node
}

// Kind implements Node.
func (j *CoJoin) Kind() string { return "cojoin" }

// Inputs implements Node.
func (j *CoJoin) Inputs() []Node { return []Node{j.Left, j.Right} }

// Stat implements Node.
func (j *CoJoin) Stat() *Stats { return &j.stats }

// Describe implements Node.
func (j *CoJoin) Describe() string {
	return "join USING(partitionKey) co-partitioned per-partition hash join (co-location, no shuffle)"
}

// Annotate implements Node.
func (j *CoJoin) Annotate() string {
	return fmt.Sprintf("%d rows, %s", j.stats.Rows.Load(), roundDur(j.stats.WallNs.Load()))
}

// HashJoin is the general equi-join: build a hash table on the right
// (joined) side, probe with the left stream.
type HashJoin struct {
	stats Stats

	Left, Right Node
	// Cond is the join condition, pre-rendered ("USING(x)", "ON a = b").
	Cond string
	// LeftOuter marks a LEFT JOIN (probe misses survive as NULL rows).
	LeftOuter bool
}

// Kind implements Node.
func (j *HashJoin) Kind() string { return "hashjoin" }

// Inputs implements Node.
func (j *HashJoin) Inputs() []Node { return []Node{j.Left, j.Right} }

// Stat implements Node.
func (j *HashJoin) Stat() *Stats { return &j.stats }

// Describe implements Node.
func (j *HashJoin) Describe() string {
	s := fmt.Sprintf("join %s global hash join (build right, probe left)", j.Cond)
	if j.LeftOuter {
		s += ", left outer"
	}
	return s
}

// Annotate implements Node.
func (j *HashJoin) Annotate() string {
	return fmt.Sprintf("%d rows, %s", j.stats.Rows.Load(), roundDur(j.stats.WallNs.Load()))
}

// Filter is the residual client-side predicate — the conjuncts that
// could not be pushed into a single scan (multi-table, aggregate-bearing
// or unattributable). Fully pushed queries have no Filter node at all.
type Filter struct {
	stats Stats

	Input Node
	// Pred is the residual predicate, pre-rendered.
	Pred string
}

// Kind implements Node.
func (f *Filter) Kind() string { return "filter" }

// Inputs implements Node.
func (f *Filter) Inputs() []Node { return []Node{f.Input} }

// Stat implements Node.
func (f *Filter) Stat() *Stats { return &f.stats }

// Describe implements Node.
func (f *Filter) Describe() string { return "filter " + f.Pred }

// Annotate implements Node.
func (f *Filter) Annotate() string {
	return fmt.Sprintf("kept %d/%d rows, %s",
		f.stats.Rows.Load(), f.stats.In.Load(), roundDur(f.stats.WallNs.Load()))
}

// Aggregate groups the stream and evaluates aggregate expressions per
// group (one global group without GROUP BY).
type Aggregate struct {
	stats Stats

	Input Node
	// GroupBy holds the grouping expressions, pre-rendered.
	GroupBy []string
	// Having is the post-grouping predicate, pre-rendered ("" = none).
	Having string
}

// Kind implements Node.
func (a *Aggregate) Kind() string { return "aggregate" }

// Inputs implements Node.
func (a *Aggregate) Inputs() []Node { return []Node{a.Input} }

// Stat implements Node.
func (a *Aggregate) Stat() *Stats { return &a.stats }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	var b strings.Builder
	if len(a.GroupBy) == 0 {
		b.WriteString("aggregate (single group)")
	} else {
		fmt.Fprintf(&b, "aggregate GROUP BY %s", strings.Join(a.GroupBy, ", "))
	}
	if a.Having != "" {
		fmt.Fprintf(&b, ", having %s", a.Having)
	}
	return b.String()
}

// Annotate implements Node.
func (a *Aggregate) Annotate() string {
	return fmt.Sprintf("%d group(s), %s", a.stats.Rows.Load(), roundDur(a.stats.WallNs.Load()))
}

// Project evaluates the select list per row.
type Project struct {
	stats Stats

	Input Node
	// Items holds the select-list items, pre-rendered.
	Items []string
}

// Kind implements Node.
func (p *Project) Kind() string { return "project" }

// Inputs implements Node.
func (p *Project) Inputs() []Node { return []Node{p.Input} }

// Stat implements Node.
func (p *Project) Stat() *Stats { return &p.stats }

// Describe implements Node.
func (p *Project) Describe() string { return "project " + strings.Join(p.Items, ", ") }

// Annotate implements Node.
func (p *Project) Annotate() string {
	return fmt.Sprintf("%d row(s), %s", p.stats.Rows.Load(), roundDur(p.stats.WallNs.Load()))
}

// Sort orders the materialized output rows.
type Sort struct {
	stats Stats

	Input Node
	// Keys holds "expr ASC|DESC" items, pre-rendered.
	Keys []string
}

// Kind implements Node.
func (s *Sort) Kind() string { return "sort" }

// Inputs implements Node.
func (s *Sort) Inputs() []Node { return []Node{s.Input} }

// Stat implements Node.
func (s *Sort) Stat() *Stats { return &s.stats }

// Describe implements Node.
func (s *Sort) Describe() string { return "sort " + strings.Join(s.Keys, ", ") }

// Annotate implements Node.
func (s *Sort) Annotate() string { return "" }

// Limit truncates the output. With EarlyStop the executor cancels every
// in-flight partition scan the moment the limit fills — the streaming
// pipeline's point: a LIMIT 10 over a million rows ships ~10.
type Limit struct {
	stats Stats

	Input Node
	N     int
	// EarlyStop reports whether filling the limit cancels upstream scans
	// (true unless the query sorts, aggregates, or disabled pushdown).
	EarlyStop bool
}

// Kind implements Node.
func (l *Limit) Kind() string { return "limit" }

// Inputs implements Node.
func (l *Limit) Inputs() []Node { return []Node{l.Input} }

// Stat implements Node.
func (l *Limit) Stat() *Stats { return &l.stats }

// Describe implements Node.
func (l *Limit) Describe() string {
	s := fmt.Sprintf("limit %d", l.N)
	if l.EarlyStop {
		s += " (early-stop: cancels scans when filled)"
	}
	return s
}

// Annotate implements Node.
func (l *Limit) Annotate() string { return "" }

// Walk visits the tree depth-first, parents before children.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, in := range n.Inputs() {
		Walk(in, fn)
	}
}
