// Package sql implements the query interface S-QUERY layers over the state
// store: a SQL dialect covering the paper's workload — SELECT with
// projections and aggregates, JOIN ... USING (the join support S-QUERY adds
// on top of the IMDG SQL engine, §VI.A), WHERE, GROUP BY, ORDER BY and
// LIMIT — plus a planner that resolves live and snapshot tables through the
// core catalog and executes scans scatter-gather across the cluster's
// partitions.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString // 'single quoted'
	tokNumber
	tokSymbol // ( ) , * . = < > <= >= <> !=
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; quoted identifiers unquoted
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognised by the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "INNER": true, "HAVING": true,
	"LEFT": true, "OUTER": true, "ON": true, "USING": true, "GROUP": true,
	"BY": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "LOCALTIMESTAMP": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true, "BETWEEN": true, "IN": true, "LIKE": true,
}

// lex tokenizes the input. Errors carry the byte offset of the offending
// character.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'': // string literal with '' escaping
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c == '"': // quoted identifier
			j := i + 1
			for j < len(input) && input[j] != '"' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at offset %d", i)
			}
			toks = append(toks, token{kind: tokIdent, text: input[i+1 : j], pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < len(input) && (isDigit(input[j]) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			switch c {
			case '<':
				if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
					toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
					i += 2
				} else {
					toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
					i++
				}
			case '>':
				if i+1 < len(input) && input[i+1] == '=' {
					toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
					i += 2
				} else {
					toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
					i++
				}
			case '!':
				if i+1 < len(input) && input[i+1] == '=' {
					toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
					i += 2
				} else {
					return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
				}
			case '(', ')', ',', '*', '.', '=', '+', '-', '/', '%', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
