package sql

import (
	"testing"
)

func TestScalarFunctions(t *testing.T) {
	row := mapResolver{"s": "  Hello  ", "n": -7, "f": 2.6, "nul": nil, "z": "zone-1"}
	cases := []struct {
		expr string
		want any
	}{
		{`UPPER(z) = 'ZONE-1'`, true},
		{`LOWER('ABC') = 'abc'`, true},
		{`LENGTH(z) = 6`, true},
		{`TRIM(s) = 'Hello'`, true},
		{`ABS(n) = 7`, true},
		{`ABS(2.5) = 2.5`, true},
		{`ROUND(f) = 3`, true},
		{`ROUND(-2.6) = -3`, true},
		{`ROUND(n) = -7`, true},
		{`COALESCE(nul, 'fallback') = 'fallback'`, true},
		{`COALESCE(z, 'fallback') = 'zone-1'`, true},
		{`CONCAT('a', 1, 'b') = 'a1b'`, true},
		{`UPPER(nul) IS NULL`, true},
		{`ABS(nul) IS NULL`, true},
	}
	for _, c := range cases {
		if got := evalWhere(t, c.expr, row); got != c.want {
			t.Errorf("eval(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	row := mapResolver{"s": "x", "n": 1}
	bad := []string{
		`NOSUCHFUNC(s) = 1`,
		`UPPER(n) = 'X'`,
		`ABS(s) = 1`,
		`UPPER(s, s) = 'X'`,
		`COALESCE() IS NULL`,
	}
	ctx := evalCtxNow(t)
	for _, w := range bad {
		stmt := mustParse(t, `SELECT a FROM t WHERE `+w)
		if _, err := ctx.eval(stmt.Where, row); err == nil {
			t.Errorf("eval(%q) succeeded, want error", w)
		}
	}
}

func evalCtxNow(t *testing.T) *evalCtx {
	t.Helper()
	return &evalCtx{}
}

func TestParseHaving(t *testing.T) {
	stmt := mustParse(t, `SELECT deliveryZone, COUNT(*) FROM t GROUP BY deliveryZone HAVING COUNT(*) > 5 ORDER BY deliveryZone`)
	if stmt.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	if _, err := Parse(`SELECT a FROM t HAVING a > 1`); err == nil {
		t.Fatal("HAVING without GROUP BY/aggregates accepted")
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	f := newFixture(t, 30, liveSnapCfg())
	// zones north/south alternate; both have 15 rows. HAVING cuts on a
	// group-level aggregate.
	res, err := f.ex.Query(`SELECT deliveryZone, COUNT(*) AS n FROM orderinfo GROUP BY deliveryZone HAVING COUNT(*) > 20`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want none (no zone exceeds 20)", res.Rows)
	}
	res, err = f.ex.Query(`SELECT deliveryZone FROM orderinfo GROUP BY deliveryZone HAVING COUNT(*) = 15 ORDER BY deliveryZone`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "north" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFunctionsInQueries(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	res, err := f.ex.Query(`SELECT UPPER(deliveryZone) AS zone, ROUND(AVG(customerLat)) AS lat FROM orderinfo GROUP BY deliveryZone ORDER BY zone`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "NORTH" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, ok := res.Rows[0][1].(int64); !ok {
		t.Fatalf("ROUND over AVG returned %T", res.Rows[0][1])
	}
}
