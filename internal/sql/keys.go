package sql

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// joinKey is a comparable, allocation-free key for join hash tables,
// DISTINCT sets and GROUP BY encoding. It replaces the fmt.Sprintf-built
// string key the join path used to allocate per probe, while preserving
// its equality classes: the int family coalesces to one representation
// (as compare() does), floats key by bit pattern and do NOT coalesce
// with ints (the old "i5" vs "f5" behaved the same way — pruning and
// hashing stay conservative where SQL equality coerces), and everything
// unrecognised falls back to the old %T:%v string form.
type joinKey struct {
	kind byte // 'i' int, 'f' float, 's' string, 'b' bool, 't' time, 'n' nil, 'o' other
	num  int64
	str  string
}

// makeJoinKey builds the key for one join/grouping value.
func makeJoinKey(v any) joinKey {
	if v == nil {
		return joinKey{kind: 'n'}
	}
	if i, ok := toInt(v); ok {
		return joinKey{kind: 'i', num: i}
	}
	switch x := v.(type) {
	case float64:
		return joinKey{kind: 'f', num: int64(math.Float64bits(x))}
	case float32:
		return joinKey{kind: 'f', num: int64(math.Float64bits(float64(x)))}
	case string:
		return joinKey{kind: 's', str: x}
	case bool:
		var n int64
		if x {
			n = 1
		}
		return joinKey{kind: 'b', num: n}
	case time.Time:
		return joinKey{kind: 't', num: x.UnixNano()}
	}
	return joinKey{kind: 'o', str: fmt.Sprintf("%T:%v", v, v)}
}

// appendGroupKey appends a self-delimiting binary encoding of v to dst —
// the GROUP BY composite-key builder. Strings are length-prefixed so a
// composite key can never collide across boundaries, unlike the old
// separator-joined string form.
func appendGroupKey(dst []byte, v any) []byte {
	k := makeJoinKey(v)
	dst = append(dst, k.kind)
	switch k.kind {
	case 's', 'o':
		var lb [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lb[:], uint64(len(k.str)))
		dst = append(dst, lb[:n]...)
		dst = append(dst, k.str...)
	case 'n':
	default:
		var nb [8]byte
		binary.LittleEndian.PutUint64(nb[:], uint64(k.num))
		dst = append(dst, nb[:]...)
	}
	return dst
}
