package sql

import (
	"fmt"
	"testing"
)

// TestThreeTableJoin folds two joins: orderinfo ⋈ orderstate ⋈ riderinfo.
func TestThreeTableJoin(t *testing.T) {
	f := newFixture(t, 8, liveSnapCfg())
	// A third operator keyed by the same partitionKey.
	rider := newBackend(t, f, "riderassign")
	for i := 0; i < 8; i++ {
		rider.Update(fmt.Sprintf("order-%d", i), map[string]any{"rider": fmt.Sprintf("r%d", i%3)})
	}
	res, err := f.ex.Query(`SELECT COUNT(*) FROM orderinfo JOIN orderstate USING(partitionKey) JOIN riderassign USING(partitionKey)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(8) {
		t.Fatalf("three-way join count = %v", res.Rows[0][0])
	}
	// Columns from all three sides resolve.
	res, err = f.ex.Query(`SELECT partitionKey, deliveryZone, orderState, rider FROM orderinfo JOIN orderstate USING(partitionKey) JOIN riderassign USING(partitionKey) WHERE partitionKey = 'order-2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][3] != "r2" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// newBackend registers an extra live-state operator in the fixture's
// catalog and returns its backend.
func newBackend(t *testing.T, f *fixture, op string) *backendHandle {
	t.Helper()
	if err := f.cat.RegisterJob(f.mgr.Registry(), op); err != nil {
		t.Fatal(err)
	}
	return &backendHandle{f: f, op: op}
}

type backendHandle struct {
	f  *fixture
	op string
}

func (b *backendHandle) Update(key string, value any) {
	b.f.store.View(0).Put(b.op, key, value)
}

// Property-flavoured check: the co-partitioned USING(partitionKey) plan
// and the general ON plan must produce identical aggregates.
func TestPartitionedJoinAgreesWithGeneralPlan(t *testing.T) {
	f := newFixture(t, 40, liveSnapCfg())
	usingQ := `SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) GROUP BY deliveryZone ORDER BY deliveryZone`
	onQ := `SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" AS a JOIN "snapshot_orderstate" AS b ON a.partitionKey = b.partitionKey GROUP BY deliveryZone ORDER BY deliveryZone`
	r1, err := f.ex.Query(usingQ)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.ex.Query(onQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("plans disagree on group count: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i][0] != r2.Rows[i][0] || r1.Rows[i][1] != r2.Rows[i][1] {
			t.Fatalf("row %d: %v vs %v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

// Per-table ssid pins: each snapshot table can be pinned to a different
// version in one query.
func TestPerTableSSIDPins(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	f.info.Update("order-0", orderInfo{DeliveryZone: "v2zone"})
	f.state.Update("order-0", orderState{OrderState: "DELIVERED"})
	f.checkpoint(t)

	res, err := f.ex.Query(`SELECT deliveryZone, orderState FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE snapshot_orderinfo.ssid = 1 AND snapshot_orderstate.ssid = 2 AND partitionKey = 'order-0'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "north" || res.Rows[0][1] != "DELIVERED" {
		t.Fatalf("mixed-version join = %v", res.Rows)
	}
}

// An unqualified ssid pin applies to all snapshot tables in the query.
func TestUnqualifiedPinAppliesToAll(t *testing.T) {
	f := newFixture(t, 4, liveSnapCfg())
	f.info.Update("order-0", orderInfo{DeliveryZone: "v2zone"})
	f.state.Update("order-0", orderState{OrderState: "DELIVERED"})
	f.checkpoint(t)

	res, err := f.ex.Query(`SELECT deliveryZone, orderState FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE ssid = 1 AND partitionKey = 'order-0'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "north" || res.Rows[0][1] != "VENDOR_ACCEPTED" {
		t.Fatalf("pinned rows = %v", res.Rows)
	}
}

func TestJoinLiveWithSnapshot(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	// Update live info after the checkpoint; join live info against the
	// snapshotted state: live columns show the update, snapshot side is
	// frozen.
	f.info.Update("order-0", orderInfo{DeliveryZone: "LIVEZONE"})
	f.info.Flush() // mirroring is batched; workers flush at quiescence
	res, err := f.ex.Query(`SELECT deliveryZone, orderState FROM orderinfo JOIN "snapshot_orderstate" USING(partitionKey) WHERE partitionKey = 'order-0'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "LIVEZONE" || res.Rows[0][1] != "VENDOR_ACCEPTED" {
		t.Fatalf("mixed live/snapshot join = %v", res.Rows)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	f := newFixture(t, 6, liveSnapCfg())
	res, err := f.ex.Query(`SELECT COUNT(*) FROM orderinfo AS a JOIN orderinfo AS b ON a.partitionKey = b.partitionKey`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(6) {
		t.Fatalf("self join = %v", res.Rows[0][0])
	}
}
