package sql

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, q string) *Select {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, `SELECT count, total FROM average WHERE key=1`)
	if len(stmt.Items) != 2 || stmt.Items[0].OutputName() != "count" {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if stmt.From.Name != "average" {
		t.Fatalf("from = %+v", stmt.From)
	}
	w, ok := stmt.Where.(Binary)
	if !ok || w.Op != "=" {
		t.Fatalf("where = %#v", stmt.Where)
	}
	if stmt.Limit != -1 {
		t.Fatalf("limit = %d", stmt.Limit)
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	stmt := mustParse(t, `SELECT count, total FROM "snapshot_average" WHERE ssid=9 AND key=2`)
	if stmt.From.Name != "snapshot_average" {
		t.Fatalf("from = %q", stmt.From.Name)
	}
}

// The four Delivery Hero queries from the paper must parse verbatim.
func TestParsePaperQueries(t *testing.T) {
	queries := []string{
		`SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP) GROUP BY deliveryZone;`,
		`SELECT COUNT(*), vendorCategory FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='NOTIFIED' OR orderState='ACCEPTED') GROUP BY vendorCategory;`,
		`SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE (orderState='VENDOR_ACCEPTED') GROUP BY deliveryZone;`,
		`SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE orderState='PICKED_UP' OR orderState='LEFT_PICKUP' OR orderState='NEAR_CUSTOMER' GROUP BY deliveryZone;`,
	}
	for i, q := range queries {
		stmt := mustParse(t, q)
		if len(stmt.Joins) != 1 || stmt.Joins[0].Using != "partitionKey" {
			t.Errorf("query %d: join = %+v", i+1, stmt.Joins)
		}
		if len(stmt.GroupBy) != 1 {
			t.Errorf("query %d: group by = %+v", i+1, stmt.GroupBy)
		}
		if !stmt.HasAggregates() {
			t.Errorf("query %d: no aggregates detected", i+1)
		}
	}
}

func TestParseJoinOn(t *testing.T) {
	stmt := mustParse(t, `SELECT a.x FROM t1 AS a JOIN t2 AS b ON a.id = b.ref`)
	j := stmt.Joins[0]
	if j.OnL.Table != "a" || j.OnR.Table != "b" || j.Using != "" {
		t.Fatalf("join = %+v", j)
	}
	if stmt.From.Alias != "a" || stmt.From.Ref() != "a" {
		t.Fatalf("alias = %+v", stmt.From)
	}
}

func TestParseLeftJoin(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t1 LEFT OUTER JOIN t2 USING(partitionKey)`)
	if !stmt.Joins[0].Left {
		t.Fatal("LEFT not detected")
	}
	stmt = mustParse(t, `SELECT * FROM t1 INNER JOIN t2 USING(k)`)
	if stmt.Joins[0].Left {
		t.Fatal("INNER flagged as LEFT")
	}
}

func TestParseOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10`)
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Fatalf("limit = %d", stmt.Limit)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE x=1 OR y=2 AND z=3`)
	// OR binds loosest: (x=1) OR ((y=2) AND (z=3))
	or, ok := stmt.Where.(Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", stmt.Where)
	}
	and, ok := or.R.(Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a + b * c FROM t`)
	add, ok := stmt.Items[0].Expr.(Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %v", stmt.Items[0].Expr)
	}
	if mul, ok := add.R.(Binary); !ok || mul.Op != "*" {
		t.Fatalf("right = %v", add.R)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(w), COUNT(DISTINCT v) FROM t`)
	if len(stmt.Items) != 6 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if a := stmt.Items[0].Expr.(Agg); !a.Star || a.Func != AggCount {
		t.Fatalf("COUNT(*) = %+v", a)
	}
	if a := stmt.Items[5].Expr.(Agg); !a.Distinct {
		t.Fatalf("DISTINCT not parsed: %+v", a)
	}
}

func TestParsePredicates(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT BETWEEN 1 AND 5 AND c LIKE 'x%' AND d IS NOT NULL`)
	s := stmt.Where.String()
	for _, want := range []string{"IN", "NOT BETWEEN", "LIKE", "IS NOT NULL"} {
		if !strings.Contains(s, want) {
			t.Errorf("where %q missing %q", s, want)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE x = -5 AND y = -2.5`)
	s := stmt.Where.String()
	if !strings.Contains(s, "-5") || !strings.Contains(s, "-2.5") {
		t.Fatalf("where = %q", s)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE s = 'it''s'`)
	eq := stmt.Where.(Binary)
	if lit := eq.R.(Lit); lit.Val != "it's" {
		t.Fatalf("literal = %q", lit.Val)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t LIMIT x`,
		`SELECT a FROM t JOIN`,
		`SELECT a FROM t JOIN u`,
		`SELECT a FROM t JOIN u USING x`,
		`SELECT a FROM t WHERE x = 'unterminated`,
		`SELECT a FROM "unterminated`,
		`SELECT a FROM t WHERE x ! 1`,
		`SELECT a FROM t extra garbage tokens ^`,
		`UPDATE t SET x = 1`,
		`SELECT a FROM t WHERE NOT`,
		`SELECT COUNT( FROM t`,
		`SELECT a FROM t WHERE x LIKE 5`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

// Property: the String() rendering of any parsed WHERE clause reparses to
// the same rendering (parse→print→parse fixpoint).
func TestParsePrintRoundTrip(t *testing.T) {
	exprs := []string{
		`x = 1`,
		`x = 1 AND y = 2`,
		`NOT (a < 5 OR b >= 2.5)`,
		`name LIKE 'ab%' AND v IN (1, 2)`,
		`ts < LOCALTIMESTAMP`,
		`a + b * 2 - -c > 0`,
		`flag = TRUE AND other IS NULL`,
	}
	for _, e := range exprs {
		q := `SELECT a FROM t WHERE ` + e
		s1 := mustParse(t, q).Where.String()
		s2 := mustParse(t, `SELECT a FROM t WHERE `+s1).Where.String()
		if s1 != s2 {
			t.Errorf("round trip changed: %q -> %q", s1, s2)
		}
	}
}

// Property: the lexer never panics and either errors or reaches EOF on
// arbitrary input.
func TestLexerTotal(t *testing.T) {
	f := func(s string) bool {
		toks, err := lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
