package wire

import (
	"bytes"
	"testing"
)

// FuzzWire is the codec's round-trip invariant: any byte string the
// decoder accepts must re-encode byte-identically (canonical form), and
// the decoder must never panic on arbitrary input. Gob-fallback values
// are exempt from byte-identity (gob streams are not canonical) but must
// still decode-encode-decode to a stable value.
func FuzzWire(f *testing.F) {
	seeds := []any{
		nil, true, false, 0, -1, 1 << 40, int32(7), int64(-9), uint64(1 << 63),
		2.75, "hello", []byte{0, 1, 2},
		[]any{1, "two", nil},
		map[string]any{"a": 1, "b": []any{true, 2.5}},
	}
	for _, v := range seeds {
		buf, err := AppendValue(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{TGob, 0x00})
	f.Add([]byte{0xff, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		consumed := data[:len(data)-len(rest)]
		if hasGob(consumed) {
			return // gob streams are not canonical; identity not required
		}
		re, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("re-encode of decoded value %#v failed: %v", v, err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("round trip not byte-identical:\nin:  %x\nout: %x\nvalue: %#v", consumed, re, v)
		}
	})
}

// hasGob reports whether an accepted encoding contains a gob-fallback
// value anywhere (including nested in maps/slices). Conservative: scans
// for the tag byte at any position, which can only over-exempt.
func hasGob(b []byte) bool {
	return bytes.IndexByte(b, TGob) >= 0
}
