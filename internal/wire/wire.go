// Package wire is the compact self-describing binary codec of the state
// plane: the representation in which partition keys, row values and
// versioned snapshot state cross the wire and land on disk. It replaces
// encoding/gob on the paths the paper's overhead story lives on — blob
// snapshots (core.prepareBlob/restoreBlob) and stable-storage segments
// (internal/persist) — and provides the byte accounting the transport
// layer charges per message.
//
// Design constraints, in order:
//
//  1. Zero-alloc encode for the scalar types the workloads actually key
//     and store by (ints, strings, floats, bools): AppendValue writes
//     into a caller-provided buffer and allocates nothing itself.
//  2. Self-describing: every value carries a one-byte tag, so a decoder
//     needs no schema and unknown data fails loudly instead of silently
//     misparsing.
//  3. Total compatibility: arbitrary state structs (the complex objects
//     the paper stores in the IMDG) fall back to an embedded gob blob —
//     the same registrations workloads already perform keep working, and
//     pre-refactor gob snapshots remain restorable (see the migration
//     tests in core and persist).
//
// Format, one value:
//
//	value  := tag payload
//	tag    := one of the T* constants below
//	varint := unsigned LEB128; signed integers are zigzag-encoded
//	string := varint(len) bytes
//	map    := varint(n) n*(string value)   keys sorted (canonical form)
//	slice  := varint(n) n*value
//	gob    := varint(len) gob-stream bytes
//
// Canonical form matters: encode(decode(b)) == b for every b the decoder
// accepts without a gob fallback — the FuzzWire round-trip invariant.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
)

// Value tags. The numeric values are the on-disk/on-wire format: never
// reorder or reuse them, only append.
const (
	TNil     byte = 0x00
	TFalse   byte = 0x01
	TTrue    byte = 0x02
	TInt     byte = 0x03 // Go int, zigzag varint
	TInt32   byte = 0x04
	TInt64   byte = 0x05
	TUint64  byte = 0x06 // plain varint
	TFloat64 byte = 0x07 // 8 bytes little-endian IEEE 754 bits
	TString  byte = 0x08
	TBytes   byte = 0x09 // []byte
	TMap     byte = 0x0a // map[string]any, keys sorted
	TSlice   byte = 0x0b // []any
	TGob     byte = 0x0c // fallback: embedded gob stream of an interface value
)

// zigzag maps signed to unsigned so small negatives stay small.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends the LEB128 encoding of u.
func AppendUvarint(buf []byte, u uint64) []byte {
	return binary.AppendUvarint(buf, u)
}

// AppendValue appends the wire encoding of v. Scalars (nil, bool, the int
// family, float64, string, []byte) encode without allocating; maps,
// slices and fallback structs may allocate for recursion or gob. The
// error is non-nil only when a gob fallback fails (unregistered type).
func AppendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, TNil), nil
	case bool:
		if x {
			return append(buf, TTrue), nil
		}
		return append(buf, TFalse), nil
	case int:
		buf = append(buf, TInt)
		return binary.AppendUvarint(buf, zigzag(int64(x))), nil
	case int32:
		buf = append(buf, TInt32)
		return binary.AppendUvarint(buf, zigzag(int64(x))), nil
	case int64:
		buf = append(buf, TInt64)
		return binary.AppendUvarint(buf, zigzag(x)), nil
	case uint64:
		buf = append(buf, TUint64)
		return binary.AppendUvarint(buf, x), nil
	case float64:
		buf = append(buf, TFloat64)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		buf = append(buf, TString)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		return append(buf, x...), nil
	case []byte:
		buf = append(buf, TBytes)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		return append(buf, x...), nil
	case map[string]any:
		buf = append(buf, TMap)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var err error
		for _, k := range keys {
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			if buf, err = AppendValue(buf, x[k]); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case []any:
		buf = append(buf, TSlice)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		var err error
		for _, e := range x {
			if buf, err = AppendValue(buf, e); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		// Fallback: arbitrary structs travel as an embedded gob stream.
		// The value is wrapped in an interface slot so gob records the
		// concrete type name — the same registration contract workloads
		// already fulfil for blob snapshots.
		// Copy into a branch-local before taking the address: &v on the
		// parameter itself would move it to the heap and cost the scalar
		// fast paths an allocation per call.
		vv := v
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(&vv); err != nil {
			return nil, fmt.Errorf("wire: encoding %T: %w", v, err)
		}
		buf = append(buf, TGob)
		buf = binary.AppendUvarint(buf, uint64(gb.Len()))
		return append(buf, gb.Bytes()...), nil
	}
}

// Size returns the exact encoded size of a fast-path scalar and a cheap
// estimate for everything else. It allocates nothing — the transport
// layer uses it for per-message byte accounting on hot paths where
// actually encoding would cost more than the message.
func Size(v any) int {
	switch x := v.(type) {
	case nil, bool:
		return 1
	case int:
		return 1 + uvarintLen(zigzag(int64(x)))
	case int32:
		return 1 + uvarintLen(zigzag(int64(x)))
	case int64:
		return 1 + uvarintLen(zigzag(x))
	case uint64:
		return 1 + uvarintLen(x)
	case float64:
		return 9
	case string:
		return 1 + uvarintLen(uint64(len(x))) + len(x)
	case []byte:
		return 1 + uvarintLen(uint64(len(x))) + len(x)
	case map[string]any:
		n := 1 + uvarintLen(uint64(len(x)))
		for k, e := range x {
			n += uvarintLen(uint64(len(k))) + len(k) + Size(e)
		}
		return n
	case []any:
		n := 1 + uvarintLen(uint64(len(x)))
		for _, e := range x {
			n += Size(e)
		}
		return n
	default:
		// Structs gob-encode to tens of bytes typically; the estimate only
		// feeds accounting, never framing.
		return 32
	}
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// DecodeValue decodes one value from the front of buf and returns it with
// the remaining bytes. Inputs that are not a valid encoding error out;
// the decoder never panics (FuzzWire's contract).
func DecodeValue(buf []byte) (v any, rest []byte, err error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("wire: empty buffer")
	}
	tag, body := buf[0], buf[1:]
	switch tag {
	case TNil:
		return nil, body, nil
	case TFalse:
		return false, body, nil
	case TTrue:
		return true, body, nil
	case TInt, TInt32, TInt64:
		u, n, err := decodeUvarint(body)
		if err != nil {
			return nil, nil, err
		}
		s := unzigzag(u)
		switch tag {
		case TInt:
			if int64(int(s)) != s {
				return nil, nil, fmt.Errorf("wire: int overflow")
			}
			return int(s), body[n:], nil
		case TInt32:
			if int64(int32(s)) != s {
				return nil, nil, fmt.Errorf("wire: int32 overflow")
			}
			return int32(s), body[n:], nil
		default:
			return s, body[n:], nil
		}
	case TUint64:
		u, n, err := decodeUvarint(body)
		if err != nil {
			return nil, nil, err
		}
		return u, body[n:], nil
	case TFloat64:
		if len(body) < 8 {
			return nil, nil, fmt.Errorf("wire: truncated float64")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(body)), body[8:], nil
	case TString:
		b, rest, err := decodeLenBytes(body)
		if err != nil {
			return nil, nil, err
		}
		return string(b), rest, nil
	case TBytes:
		b, rest, err := decodeLenBytes(body)
		if err != nil {
			return nil, nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, rest, nil
	case TMap:
		u, n, err := decodeUvarint(body)
		if err != nil {
			return nil, nil, err
		}
		body = body[n:]
		if u > uint64(len(body)) {
			return nil, nil, fmt.Errorf("wire: map length %d exceeds input", u)
		}
		m := make(map[string]any, u)
		prev := ""
		for i := uint64(0); i < u; i++ {
			kb, rest, err := decodeLenBytes(body)
			if err != nil {
				return nil, nil, err
			}
			k := string(kb)
			// Canonical form: keys strictly ascending. Rejecting unsorted
			// or duplicate keys keeps encode(decode(b)) == b.
			if i > 0 && k <= prev {
				return nil, nil, fmt.Errorf("wire: map keys not strictly ascending")
			}
			prev = k
			var val any
			val, body, err = DecodeValue(rest)
			if err != nil {
				return nil, nil, err
			}
			m[k] = val
		}
		return m, body, nil
	case TSlice:
		u, n, err := decodeUvarint(body)
		if err != nil {
			return nil, nil, err
		}
		body = body[n:]
		if u > uint64(len(body)) {
			return nil, nil, fmt.Errorf("wire: slice length %d exceeds input", u)
		}
		s := make([]any, 0, u)
		for i := uint64(0); i < u; i++ {
			var val any
			val, body, err = DecodeValue(body)
			if err != nil {
				return nil, nil, err
			}
			s = append(s, val)
		}
		return s, body, nil
	case TGob:
		b, rest, err := decodeLenBytes(body)
		if err != nil {
			return nil, nil, err
		}
		var out any
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&out); err != nil {
			return nil, nil, fmt.Errorf("wire: gob fallback: %w", err)
		}
		return out, rest, nil
	default:
		return nil, nil, fmt.Errorf("wire: unknown tag 0x%02x", tag)
	}
}

func decodeUvarint(b []byte) (uint64, int, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: bad varint")
	}
	// Reject non-canonical encodings (e.g. 0x80 0x00 for zero): canonical
	// form is what makes encode(decode(b)) == b.
	if n > 1 && b[n-1] == 0 {
		return 0, 0, fmt.Errorf("wire: non-canonical varint")
	}
	return u, n, nil
}

func decodeLenBytes(b []byte) (data, rest []byte, err error) {
	u, n, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	b = b[n:]
	if u > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wire: length %d exceeds input", u)
	}
	return b[:u], b[u:], nil
}

// AppendVersion appends one version of a key's snapshot state: the
// snapshot id, the tombstone flag, and the value. This is the on-wire
// shape of one core.Versioned link; a chain is a count followed by its
// versions ascending by ssid.
func AppendVersion(buf []byte, ssid int64, tombstone bool, value any) ([]byte, error) {
	buf = binary.AppendUvarint(buf, zigzag(ssid))
	if tombstone {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return AppendValue(buf, value)
}

// DecodeVersion decodes one version appended by AppendVersion.
func DecodeVersion(buf []byte) (ssid int64, tombstone bool, value any, rest []byte, err error) {
	u, n, err := decodeUvarint(buf)
	if err != nil {
		return 0, false, nil, nil, err
	}
	buf = buf[n:]
	if len(buf) == 0 {
		return 0, false, nil, nil, fmt.Errorf("wire: truncated version")
	}
	switch buf[0] {
	case 0:
	case 1:
		tombstone = true
	default:
		return 0, false, nil, nil, fmt.Errorf("wire: bad tombstone byte 0x%02x", buf[0])
	}
	value, rest, err = DecodeValue(buf[1:])
	if err != nil {
		return 0, false, nil, nil, err
	}
	return unzigzag(u), tombstone, value, rest, nil
}
