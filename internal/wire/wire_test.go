package wire

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"
)

type fuzzStruct struct {
	A int
	B string
}

func init() { gob.Register(fuzzStruct{}) }

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	buf, err := AppendValue(nil, v)
	if err != nil {
		t.Fatalf("encode %#v: %v", v, err)
	}
	got, rest, err := DecodeValue(buf)
	if err != nil {
		t.Fatalf("decode %#v: %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode %#v: %d trailing bytes", v, len(rest))
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	cases := []any{
		nil, true, false,
		0, 1, -1, 63, 64, -64, -65, math.MaxInt64, math.MinInt64,
		int32(0), int32(-7), int32(math.MaxInt32),
		int64(42), int64(math.MinInt64),
		uint64(0), uint64(math.MaxUint64),
		0.0, 1.5, -2.25, math.Inf(1), math.SmallestNonzeroFloat64,
		"", "hello", "snapshot_orderinfo", string([]byte{0, 0xff, 0x80}),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, normalizeInt(v)) {
			t.Errorf("round trip %#v (%T) = %#v (%T)", v, v, got, got)
		}
	}
}

// normalizeInt maps untyped-constant ints in the test table to int (they
// already are); present for symmetry if the table grows.
func normalizeInt(v any) any { return v }

func TestRoundTripComposite(t *testing.T) {
	cases := []any{
		[]byte{},
		[]byte{1, 2, 3},
		[]any{},
		[]any{1, "two", 3.0, nil, true},
		map[string]any{},
		map[string]any{"count": 7, "zone": "berlin", "nested": []any{int64(1)}},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v = %#v", v, got)
		}
	}
}

func TestRoundTripGobFallback(t *testing.T) {
	v := fuzzStruct{A: 9, B: "state"}
	got := roundTrip(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Errorf("round trip %#v = %#v", v, got)
	}
}

func TestEncodeUnregisteredFails(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := AppendValue(nil, unregistered{1}); err == nil {
		t.Fatal("expected error encoding unregistered struct")
	}
}

// TestCanonicalMap checks map encoding is key-order independent: two maps
// built in different insertion orders encode byte-identically.
func TestCanonicalMap(t *testing.T) {
	a := map[string]any{"x": 1, "y": 2, "z": 3}
	b := map[string]any{"z": 3, "x": 1, "y": 2}
	ea, _ := AppendValue(nil, a)
	eb, _ := AppendValue(nil, b)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("map encoding not canonical:\n%x\n%x", ea, eb)
	}
}

func TestSizeExactForScalars(t *testing.T) {
	cases := []any{nil, true, false, 0, -1, 1 << 20, int32(5), int64(-9), uint64(300), 3.14, "abcdef", []byte{1, 2}}
	for _, v := range cases {
		buf, err := AppendValue(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := Size(v); got != len(buf) {
			t.Errorf("Size(%#v) = %d, encoded %d bytes", v, got, len(buf))
		}
	}
}

func TestVersionRoundTrip(t *testing.T) {
	buf, err := AppendVersion(nil, 17, false, "picked_up")
	if err != nil {
		t.Fatal(err)
	}
	buf, err = AppendVersion(buf, 18, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	ssid, tomb, v, rest, err := DecodeVersion(buf)
	if err != nil || ssid != 17 || tomb || v != "picked_up" {
		t.Fatalf("version 1: ssid=%d tomb=%v v=%#v err=%v", ssid, tomb, v, err)
	}
	ssid, tomb, v, rest, err = DecodeVersion(rest)
	if err != nil || ssid != 18 || !tomb || v != nil || len(rest) != 0 {
		t.Fatalf("version 2: ssid=%d tomb=%v v=%#v rest=%d err=%v", ssid, tomb, v, len(rest), err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{0xff},
		{TInt},                   // missing varint
		{TString, 0x05, 'a'},     // short string
		{TFloat64, 1, 2, 3},      // short float
		{TMap, 0xff, 0xff, 0x7f}, // absurd count
		{TInt, 0x80, 0x00},       // non-canonical varint
		{TGob, 0x02, 0x00, 0x00}, // invalid gob
	}
	for _, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(%x) accepted garbage", b)
		}
	}
}

// TestZeroAllocScalarEncode is the alloc-regression gate for the codec
// fast path (satellite: bench-smoke alloc gate). Encoding a scalar into a
// pre-sized buffer must not allocate.
func TestZeroAllocScalarEncode(t *testing.T) {
	buf := make([]byte, 0, 64)
	// Box the values once: interface conversion at the call site is the
	// caller's cost; the guard is that the codec itself stays alloc-free.
	vals := []any{123456, "order-state", 3.5, true}
	var err error
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		for _, v := range vals {
			buf, err = AppendValue(buf, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("scalar encode allocated %v times per run, want 0", allocs)
	}
}

func BenchmarkAppendValueInt(b *testing.B) {
	buf := make([]byte, 0, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendValue(buf[:0], i)
	}
}

func BenchmarkAppendValueString(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendValue(buf[:0], "snapshot_orderinfo")
	}
}

func BenchmarkDecodeValueInt(b *testing.B) {
	buf, _ := AppendValue(nil, 123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeValue(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobValueInt(b *testing.B) {
	// Baseline for EXPERIMENTS.md: what the old gob path costs per value.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var gb bytes.Buffer
		v := any(123456789)
		if err := gob.NewEncoder(&gb).Encode(&v); err != nil {
			b.Fatal(err)
		}
	}
}
