// Package chaos is a deterministic fault-injection layer for the simulated
// cluster: seeded, schedulable faults against the checkpoint control plane
// (dropped / duplicated / delayed barrier and ack messages, a coordinator
// that dies between phase 1 and commit) and against the KV access paths the
// query layer uses (stalled and unreachable partitions).
//
// Determinism is the point. Every decision is a pure function of the
// injector's rule list, and the rule list is either written explicitly by a
// test or derived from a single seed (SoakSchedule). Control-plane rules
// are keyed by snapshot id, vertex, instance and node — quantities that do
// not depend on goroutine scheduling — so the same seed produces the same
// fault schedule on every run, which is what lets the soak harness compare
// a chaos run against a fault-free oracle run.
//
// The injector only *injects*; surviving what it injects is the job of the
// checkpoint coordinator (per-phase deadlines with abort-and-retry, see
// internal/dataflow) and of the query layer (per-partition timeouts with
// retry, snapshot fallback, or fail-fast; see internal/sql).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/trace"
)

// Kind classifies one injectable fault.
type Kind int

// Fault kinds.
const (
	// DropAck swallows a phase-1 ack on its way to the coordinator: the
	// checkpoint can only complete via the coordinator's deadline + retry.
	DropAck Kind = iota
	// DupAck delivers a phase-1 ack twice; the coordinator must dedup.
	DupAck
	// DelayAck delivers a phase-1 ack after Delay.
	DelayAck
	// DropBarrier swallows the coordinator's barrier injection into one
	// source instance: downstream alignment for that checkpoint can never
	// complete and the retry must supersede it.
	DropBarrier
	// CrashPreCommit kills the job after every phase-1 ack arrived but
	// before commit — the classic 2PC coordinator death. When CrashNode is
	// >= 0 that cluster node fails first (a mid-checkpoint node crash).
	CrashPreCommit
	// StallPartition blocks KV access to a partition for Delay per access,
	// modelling a slow or overloaded owner node.
	StallPartition
	// Unreachable fails KV access to a partition (or to every partition of
	// a node), modelling a network partition between the query client and
	// the owner.
	Unreachable
	// KillSourceMidHandoff crashes a migration's source node after the
	// partition froze but before the handoff completes: the move aborts
	// and the partition fails over from its last committed owner, never
	// landing half-seeded on the target. Node scopes the source node.
	KillSourceMidHandoff
	// KillTargetPreAck crashes a migration's target node before it
	// acknowledges the handoff: the shipped copy dies with it and the move
	// aborts without an ownership flip. Node scopes the target node.
	KillTargetPreAck
	// DropEpochBump suppresses the membership-change broadcast of the
	// rebalance the matched migration belongs to; stale writers then learn
	// of the new partition table only through epoch-fencing rejections.
	DropEpochBump
	// StallMigration delays one migration by Delay while its partition is
	// frozen — long enough to observe the rebalance in flight through
	// sys.rebalances.
	StallMigration
	// StallStage delays an operator instance by Delay per record — a
	// data-plane fault, unlike StallPartition's query-path stall. The
	// stage's inbox fills, its upstream blocks on sends, and its watermark
	// freezes: the exact signature the health plane (sys.backpressure,
	// sys.watermarks) must attribute to the stalled stage.
	StallStage
	// ShedSubscriber stalls a standing-query consumer for Delay: the
	// subscriber stops draining its bounded event queue while deltas keep
	// arriving, forcing the shed-on-overload path (queued frames dropped,
	// one resync snapshot enqueued). The soak harness then asserts the
	// subscriber's folded view re-converges to the polling oracle —
	// exactly-once delivery through overload, not just through crashes.
	ShedSubscriber
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DropAck:
		return "drop-ack"
	case DupAck:
		return "dup-ack"
	case DelayAck:
		return "delay-ack"
	case DropBarrier:
		return "drop-barrier"
	case CrashPreCommit:
		return "crash-pre-commit"
	case StallPartition:
		return "stall-partition"
	case Unreachable:
		return "unreachable"
	case KillSourceMidHandoff:
		return "kill-source-mid-handoff"
	case KillTargetPreAck:
		return "kill-target-pre-ack"
	case DropEpochBump:
		return "drop-epoch-bump"
	case StallMigration:
		return "stall-migration"
	case StallStage:
		return "stall-stage"
	case ShedSubscriber:
		return "shed-subscriber"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Any is the wildcard for integer rule fields.
const Any = -1

// Rule is one scheduled fault. Zero-valued scoping fields mean "any"
// (SSIDFrom/SSIDTo == 0, Vertex == ""); integer identity fields use Any.
type Rule struct {
	Kind Kind
	// SSIDFrom..SSIDTo bounds the checkpoints the rule applies to,
	// inclusive. 0/0 means every checkpoint; SSIDTo == 0 with SSIDFrom set
	// means exactly SSIDFrom.
	SSIDFrom, SSIDTo int64
	// Vertex/Instance scope control-plane rules to one operator instance
	// ("" / Any = all).
	Vertex   string
	Instance int
	// Node scopes a rule to instances scheduled on (or partitions owned
	// by) one node — DropAck with a Node is a coordinator–worker
	// partition; Unreachable with a Node severs the client from that node.
	Node int
	// Partition scopes KV rules to one partition.
	Partition int
	// Delay is the injected latency for DelayAck and StallPartition.
	Delay time.Duration
	// CrashNode is the cluster node CrashPreCommit fails before the job
	// crash; Any crashes the job only.
	CrashNode int
	// MaxFires bounds how many times the rule triggers (0 = unlimited).
	MaxFires int
}

// matchSSID reports whether the rule covers checkpoint ssid.
func (r *Rule) matchSSID(ssid int64) bool {
	if r.SSIDFrom == 0 && r.SSIDTo == 0 {
		return true
	}
	to := r.SSIDTo
	if to == 0 {
		to = r.SSIDFrom
	}
	return ssid >= r.SSIDFrom && ssid <= to
}

func matchInt(want, got int) bool { return want == Any || want == got }

func matchStr(want, got string) bool { return want == "" || want == got }

// describe renders the rule compactly for schedule comparison.
func (r *Rule) describe() string {
	return fmt.Sprintf("%s ssid=%d..%d vertex=%q inst=%d node=%d part=%d delay=%s crash=%d max=%d",
		r.Kind, r.SSIDFrom, r.SSIDTo, r.Vertex, r.Instance, r.Node, r.Partition, r.Delay, r.CrashNode, r.MaxFires)
}

// Fate is the verdict for one control-plane message.
type Fate struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// Event records one fault that actually fired.
type Event struct {
	Kind     Kind
	SSID     int64
	Vertex   string
	Instance int
	Node     int
	Part     int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s ssid=%d %s/%d node=%d part=%d", e.Kind, e.SSID, e.Vertex, e.Instance, e.Node, e.Part)
}

// UnreachableError is returned from KV access checks for a severed
// partition; the query layer wraps it into its own typed error.
type UnreachableError struct {
	From, Node, Partition int
}

// Error implements error.
func (e *UnreachableError) Error() string {
	return fmt.Sprintf("chaos: partition %d on node %d unreachable from node %d", e.Partition, e.Node, e.From)
}

// Injector holds a fault schedule and answers the hook calls of the
// dataflow coordinator and the KV store. Safe for concurrent use.
type Injector struct {
	seed   int64
	tracer *trace.Tracer

	// stageRules counts StallStage rules in the schedule. It is the fast
	// path of StageDelay, which workers consult per record: a schedule
	// without stage stalls pays one atomic load, never the mutex.
	stageRules atomic.Int32

	mu     sync.Mutex
	rules  []*rule
	events []Event
}

// rule pairs a Rule with its fire counter.
type rule struct {
	Rule
	fires int
}

// New creates an empty injector; record the seed its schedule derives from
// so harnesses can report it.
func New(seed int64) *Injector { return &Injector{seed: seed} }

// Seed returns the seed the injector was created with.
func (in *Injector) Seed() int64 { return in.seed }

// SetTracer makes every fired fault leave an annotation span in the
// tracer's ring (kind "chaos", failed, named after the fault, carrying the
// checkpoint id where applicable) — injected faults then show up on
// /tracez and join sys.checkpoints via the ssid column. Nil disables the
// annotations. Call before the schedule starts firing.
func (in *Injector) SetTracer(tr *trace.Tracer) { in.tracer = tr }

// Add appends a rule to the schedule and returns the injector for
// chaining. Scoping integers left at their zero value are normalized: a
// zero Instance/Node/Partition/CrashNode on a freshly literal-constructed
// Rule is taken literally, so use chaos.Any explicitly for wildcards.
func (in *Injector) Add(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &rule{Rule: r})
	if r.Kind == StallStage {
		in.stageRules.Add(1)
	}
	return in
}

// Schedule renders the rule list as a canonical string — two injectors
// built from the same seed must render identically, which is the
// reproducibility check the soak harness performs.
func (in *Injector) Schedule() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", in.seed)
	for _, r := range in.rules {
		b.WriteString(r.describe())
		b.WriteByte('\n')
	}
	return b.String()
}

// Events returns the faults that fired so far, in firing order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Fired reports how many events of the given kind fired so far.
func (in *Injector) Fired(k Kind) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, e := range in.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// fire matches the first applicable rule of one of the given kinds,
// consumes one of its fires and logs the event. Must be called with
// in.mu NOT held; returns the matched rule copy.
func (in *Injector) fire(kinds []Kind, ssid int64, vertex string, instance, node, part int) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		kindOK := false
		for _, k := range kinds {
			if r.Kind == k {
				kindOK = true
				break
			}
		}
		if !kindOK || !r.matchSSID(ssid) {
			continue
		}
		if !matchStr(r.Vertex, vertex) || !matchInt(r.Instance, instance) || !matchInt(r.Node, node) || !matchInt(r.Partition, part) {
			continue
		}
		if r.MaxFires > 0 && r.fires >= r.MaxFires {
			continue
		}
		r.fires++
		ev := Event{Kind: r.Kind, SSID: ssid, Vertex: vertex, Instance: instance, Node: node, Part: part}
		in.events = append(in.events, ev)
		in.annotate(ev)
		return r.Rule, true
	}
	return Rule{}, false
}

// annotate emits one instantaneous failed span for a fired fault. Each
// annotation is its own single-span trace; correlation with the affected
// checkpoint happens relationally, on the ssid column.
func (in *Injector) annotate(ev Event) {
	tr := in.tracer
	if tr == nil {
		return
	}
	id := tr.NewID()
	tr.Emit(trace.SpanData{
		TraceID: id, SpanID: id,
		Name: "chaos:" + ev.Kind.String(), Kind: trace.KindChaos,
		Vertex: ev.Vertex, Instance: ev.Instance, SSID: ev.SSID,
		Start: time.Now(), Failed: true,
		Note: ev.String(),
	})
}

// ackKinds and barrier kinds, in rule-priority order.
var (
	ackKinds     = []Kind{DropAck, DupAck, DelayAck}
	barrierKinds = []Kind{DropBarrier}
	accessKinds  = []Kind{Unreachable, StallPartition}
)

// AckFate decides the fate of one phase-1 ack (dataflow.ChaosHook).
func (in *Injector) AckFate(ssid int64, vertex string, instance, node int) Fate {
	r, ok := in.fire(ackKinds, ssid, vertex, instance, node, Any)
	if !ok {
		return Fate{}
	}
	switch r.Kind {
	case DropAck:
		return Fate{Drop: true}
	case DupAck:
		return Fate{Duplicate: true}
	default:
		return Fate{Delay: r.Delay}
	}
}

// BarrierFate decides the fate of one coordinator→source barrier
// injection (dataflow.ChaosHook).
func (in *Injector) BarrierFate(ssid int64, vertex string, instance, node int) Fate {
	if _, ok := in.fire(barrierKinds, ssid, vertex, instance, node, Any); ok {
		return Fate{Drop: true}
	}
	return Fate{}
}

// CrashPreCommit reports whether the coordinator must die between phase 1
// and commit of checkpoint ssid, and which cluster node (if any, else
// chaos.Any) fails with it (dataflow.ChaosHook).
func (in *Injector) CrashPreCommit(ssid int64) (bool, int) {
	r, ok := in.fire([]Kind{CrashPreCommit}, ssid, "", Any, Any, Any)
	if !ok {
		return false, Any
	}
	return true, r.CrashNode
}

// StageDelay reports how long the given operator instance must stall
// before processing its next record (dataflow.ChaosHook). It fires like
// any rule but records only the rule's *first* firing as an event and
// span — a stage stall fires per record, and flooding the event log with
// thousands of identical entries would bury the signal the health plane
// exists to surface. MaxFires still bounds the stall's total duration in
// records.
func (in *Injector) StageDelay(vertex string, instance, node int) time.Duration {
	if in.stageRules.Load() == 0 {
		return 0
	}
	in.mu.Lock()
	for _, r := range in.rules {
		if r.Kind != StallStage {
			continue
		}
		if !matchStr(r.Vertex, vertex) || !matchInt(r.Instance, instance) || !matchInt(r.Node, node) {
			continue
		}
		if r.MaxFires > 0 && r.fires >= r.MaxFires {
			continue
		}
		r.fires++
		d := r.Delay
		first := r.fires == 1
		var ev Event
		if first {
			ev = Event{Kind: StallStage, Vertex: vertex, Instance: instance, Node: node, Part: Any}
			in.events = append(in.events, ev)
		}
		in.mu.Unlock()
		if first {
			in.annotate(ev)
		}
		return d
	}
	in.mu.Unlock()
	return 0
}

// SubscriberStall reports how long a standing-query consumer must stop
// draining its event queue (the soak harness's subscriber consults it
// each receive loop). Like every hook it fires a rule — the firing shows
// up in Events and as a chaos annotation span — so the harness can prove
// the shed path was actually exercised.
func (in *Injector) SubscriberStall() (time.Duration, bool) {
	r, ok := in.fire([]Kind{ShedSubscriber}, 0, "", Any, Any, Any)
	if !ok {
		return 0, false
	}
	return r.Delay, true
}

// Access intercepts one KV access of partition part (owned by node) from
// node from (kv.FaultHook). A stall sleeps outside the injector lock; an
// unreachable partition returns a typed error.
func (in *Injector) Access(from, node, part int) error {
	r, ok := in.fire(accessKinds, 0, "", Any, node, part)
	if !ok {
		return nil
	}
	if r.Kind == StallPartition {
		time.Sleep(r.Delay)
		return nil
	}
	return &UnreachableError{From: from, Node: node, Partition: part}
}

// SoakProfile tunes the seed-derived schedule.
type SoakProfile struct {
	// Nodes and Partitions describe the cluster the schedule targets.
	Nodes, Partitions int
	// StallDelay is the per-access latency of the stalled partition
	// (default 50ms).
	StallDelay time.Duration
	// SubscriberStall is how long the ShedSubscriber fault freezes the
	// standing-query consumer (default 150ms — long enough at soak rates
	// to overflow any small queue several times over).
	SubscriberStall time.Duration
}

// SoakSchedule derives a complete soak fault plan from a seed. Every
// schedule contains, with seed-dependent placement:
//
//   - a mid-checkpoint node crash: CrashPreCommit at one checkpoint,
//     failing one non-zero cluster node first;
//   - a coordinator–worker partition: every ack from instances on one node
//     is dropped for a window of two consecutive checkpoints;
//   - one dropped barrier (a source the coordinator cannot reach);
//   - one stalled and one unreachable partition for query traffic, each
//     bounded by MaxFires so retries eventually succeed.
//
// The same seed always yields the same schedule (compare with Schedule()).
func SoakSchedule(seed int64, p SoakProfile) *Injector {
	if p.Nodes < 2 {
		p.Nodes = 3
	}
	if p.Partitions < 1 {
		p.Partitions = 271
	}
	if p.StallDelay <= 0 {
		p.StallDelay = 50 * time.Millisecond
	}
	if p.SubscriberStall <= 0 {
		p.SubscriberStall = 150 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(seed))
	in := New(seed)

	// Mid-checkpoint node crash. Checkpoint 1 is left alone so recovery
	// has a committed snapshot to land on; the crashed node is never 0 so
	// the offsets map written from node 0's view keeps its primary.
	crashAt := 2 + rng.Int63n(3)
	crashNode := 1 + rng.Intn(p.Nodes-1)
	in.Add(Rule{Kind: CrashPreCommit, SSIDFrom: crashAt, Instance: Any, Node: Any, Partition: Any, CrashNode: crashNode, MaxFires: 1})

	// Coordinator–worker partition: acks from one node vanish for two
	// checkpoints; the coordinator must abort on deadline and retry past
	// the window. The partitioned node is drawn from the nodes that survive
	// the crash, so the window is guaranteed to see live instances.
	isoFrom := crashAt + 2 + rng.Int63n(3)
	isoNode := rng.Intn(p.Nodes - 1)
	if isoNode >= crashNode {
		isoNode++
	}
	in.Add(Rule{Kind: DropAck, SSIDFrom: isoFrom, SSIDTo: isoFrom + 1, Vertex: "", Instance: Any, Node: isoNode, Partition: Any, CrashNode: Any})

	// One barrier the coordinator fails to deliver.
	dropAt := isoFrom + 2 + rng.Int63n(2)
	in.Add(Rule{Kind: DropBarrier, SSIDFrom: dropAt, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, MaxFires: 1})

	// A duplicated ack somewhere in between, to exercise coordinator dedup.
	in.Add(Rule{Kind: DupAck, SSIDFrom: crashAt + 1, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, MaxFires: 1})

	// Query-side faults: one stalled and one unreachable partition.
	stallPart := rng.Intn(p.Partitions)
	deadPart := rng.Intn(p.Partitions)
	in.Add(Rule{Kind: StallPartition, Instance: Any, Node: Any, Partition: stallPart, CrashNode: Any, Delay: p.StallDelay, MaxFires: 4})
	in.Add(Rule{Kind: Unreachable, Instance: Any, Node: Any, Partition: deadPart, CrashNode: Any, MaxFires: 4})

	// A stalled standing-query consumer: the subscriber freezes once,
	// overflows its queue, gets shed and must re-converge from the resync
	// snapshot.
	in.Add(Rule{Kind: ShedSubscriber, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, Delay: p.SubscriberStall, MaxFires: 1})
	return in
}

// Kinds returns the distinct fault kinds present in the schedule, sorted —
// harness-side sanity checks use it to prove a seed exercises the faults
// the acceptance criteria name.
func (in *Injector) Kinds() []Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	seen := map[Kind]bool{}
	for _, r := range in.rules {
		seen[r.Kind] = true
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
