package chaos

import (
	"errors"
	"testing"
	"time"
)

// TestSoakScheduleDeterministic is the reproducibility contract: the same
// seed must always derive the same fault schedule, and the schedule must
// drive identical decisions for identical inputs.
func TestSoakScheduleDeterministic(t *testing.T) {
	p := SoakProfile{Nodes: 3, Partitions: 64}
	for seed := int64(1); seed <= 5; seed++ {
		a := SoakSchedule(seed, p)
		b := SoakSchedule(seed, p)
		if a.Schedule() != b.Schedule() {
			t.Fatalf("seed %d: schedules differ:\n%s\nvs\n%s", seed, a.Schedule(), b.Schedule())
		}
		// Same inputs, same decisions.
		for ssid := int64(1); ssid <= 12; ssid++ {
			ca, na := a.CrashPreCommit(ssid)
			cb, nb := b.CrashPreCommit(ssid)
			if ca != cb || na != nb {
				t.Fatalf("seed %d ssid %d: crash verdicts differ", seed, ssid)
			}
			for inst := 0; inst < 3; inst++ {
				fa := a.AckFate(ssid, "op", inst, inst%3)
				fb := b.AckFate(ssid, "op", inst, inst%3)
				if fa != fb {
					t.Fatalf("seed %d ssid %d inst %d: ack fates differ: %+v vs %+v", seed, ssid, inst, fa, fb)
				}
			}
		}
	}
}

// TestSoakScheduleCoversRequiredFaults: every seed-derived schedule must
// include a mid-checkpoint node crash and a coordinator–worker partition.
func TestSoakScheduleCoversRequiredFaults(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		in := SoakSchedule(seed, SoakProfile{Nodes: 3, Partitions: 32})
		kinds := map[Kind]bool{}
		for _, k := range in.Kinds() {
			kinds[k] = true
		}
		if !kinds[CrashPreCommit] || !kinds[DropAck] {
			t.Fatalf("seed %d: schedule lacks crash or partition: %v", seed, in.Kinds())
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := SoakSchedule(1, SoakProfile{Nodes: 3, Partitions: 64})
	b := SoakSchedule(2, SoakProfile{Nodes: 3, Partitions: 64})
	if a.Schedule() == b.Schedule() {
		t.Fatal("seeds 1 and 2 derived identical schedules")
	}
}

func TestRuleMatchingAndFireLimits(t *testing.T) {
	in := New(0)
	in.Add(Rule{Kind: DropAck, SSIDFrom: 2, SSIDTo: 3, Vertex: "tally", Instance: Any, Node: 1, Partition: Any, CrashNode: Any, MaxFires: 2})

	if f := in.AckFate(1, "tally", 0, 1); f.Drop {
		t.Fatal("ssid 1 outside window matched")
	}
	if f := in.AckFate(2, "other", 0, 1); f.Drop {
		t.Fatal("wrong vertex matched")
	}
	if f := in.AckFate(2, "tally", 0, 2); f.Drop {
		t.Fatal("wrong node matched")
	}
	if f := in.AckFate(2, "tally", 0, 1); !f.Drop {
		t.Fatal("in-window ack not dropped")
	}
	if f := in.AckFate(3, "tally", 1, 1); !f.Drop {
		t.Fatal("second in-window ack not dropped")
	}
	// MaxFires exhausted.
	if f := in.AckFate(3, "tally", 2, 1); f.Drop {
		t.Fatal("rule fired past MaxFires")
	}
	if got := len(in.Events()); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
}

func TestAccessFaults(t *testing.T) {
	in := New(0)
	in.Add(Rule{Kind: Unreachable, Instance: Any, Node: Any, Partition: 7, CrashNode: Any})
	in.Add(Rule{Kind: StallPartition, Instance: Any, Node: Any, Partition: 9, CrashNode: Any, Delay: 10 * time.Millisecond})

	err := in.Access(-1, 2, 7)
	var ue *UnreachableError
	if !errors.As(err, &ue) || ue.Partition != 7 || ue.Node != 2 {
		t.Fatalf("Access(7) = %v, want UnreachableError{part 7, node 2}", err)
	}
	start := time.Now()
	if err := in.Access(-1, 0, 9); err != nil {
		t.Fatalf("stalled access errored: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("stall slept only %s", d)
	}
	if err := in.Access(-1, 0, 3); err != nil {
		t.Fatalf("unfaulted partition errored: %v", err)
	}
}

func TestDupAndDelayFates(t *testing.T) {
	in := New(0)
	in.Add(Rule{Kind: DupAck, SSIDFrom: 1, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, MaxFires: 1})
	in.Add(Rule{Kind: DelayAck, SSIDFrom: 2, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, Delay: 5 * time.Millisecond})
	if f := in.AckFate(1, "v", 0, 0); !f.Duplicate {
		t.Fatalf("fate = %+v, want duplicate", f)
	}
	if f := in.AckFate(2, "v", 0, 0); f.Delay != 5*time.Millisecond {
		t.Fatalf("fate = %+v, want 5ms delay", f)
	}
}
