package chaos

import (
	"math/rand"
	"time"

	"squery/internal/cluster"
)

// This file implements cluster.MigrationHook: the rebalancer consults the
// injector once per ownership migration, at the point of no return between
// freezing the partition and flipping the table. Rules are keyed on
// quantities independent of goroutine scheduling — the rebalance id (via
// the SSID fields), the partition, and the source/target node — so a
// seed-derived schedule fires identically on every run.

// MigrationFate rules on one partition migration of rebalance reb moving
// partition part from node from to node to (cluster.MigrationHook). A
// single migration may match several rules: a stall combines with a kill,
// and a kill-source verdict short-circuits kill-target (the move is dead
// either way, and killing both sides would empty small clusters).
func (in *Injector) MigrationFate(reb int64, part, from, to int) cluster.MigrationFate {
	var f cluster.MigrationFate
	if r, ok := in.fire([]Kind{StallMigration}, reb, "", Any, from, part); ok {
		f.Stall = r.Delay
	}
	if _, ok := in.fire([]Kind{DropEpochBump}, reb, "", Any, from, part); ok {
		f.DropEpochBump = true
	}
	if _, ok := in.fire([]Kind{KillSourceMidHandoff}, reb, "", Any, from, part); ok {
		f.KillSource = true
		return f
	}
	if _, ok := in.fire([]Kind{KillTargetPreAck}, reb, "", Any, to, part); ok {
		f.KillTarget = true
	}
	return f
}

// RebalanceProfile tunes the seed-derived migration fault plan.
type RebalanceProfile struct {
	// Stall is the frozen-partition delay of the stalled migration
	// (default 5ms — long enough to observe, short enough to soak).
	Stall time.Duration
}

// RebalanceSchedule derives a migration fault plan from a seed, to be
// layered onto an injector driving a soak run that joins and removes
// nodes. Every schedule contains, with seed-dependent placement:
//
//   - one killed source: some migration of the second or a later
//     rebalance loses its source node mid-handoff;
//   - one killed target: a later migration loses its target pre-ack;
//   - one dropped epoch-bump broadcast, so at least one rebalance is
//     learned about only through fencing rejections;
//   - one stalled migration, keeping a rebalance observable in flight.
//
// The kills are bounded to one firing each and scoped to rebalances >= 2:
// the first rebalance (the join that grows the cluster) completes clean,
// so later kills always leave enough live nodes to keep the cluster
// serving. The same seed always yields the same schedule.
func RebalanceSchedule(seed int64, p RebalanceProfile) *Injector {
	if p.Stall <= 0 {
		p.Stall = 5 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(seed))
	in := New(seed)

	killSrcAt := 2 + rng.Int63n(2)
	in.Add(Rule{Kind: KillSourceMidHandoff, SSIDFrom: killSrcAt, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, MaxFires: 1})
	killTgtAt := killSrcAt + 1 + rng.Int63n(2)
	in.Add(Rule{Kind: KillTargetPreAck, SSIDFrom: killTgtAt, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, MaxFires: 1})
	in.Add(Rule{Kind: DropEpochBump, SSIDFrom: 1 + rng.Int63n(2), Instance: Any, Node: Any, Partition: Any, CrashNode: Any, MaxFires: 1})
	in.Add(Rule{Kind: StallMigration, Instance: Any, Node: Any, Partition: Any, CrashNode: Any, Delay: p.Stall, MaxFires: 2})
	return in
}
