package persist

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

type payload struct {
	N int
	S string
}

func init() { gob.Register(payload{}) }

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyStore(t *testing.T) {
	s := openTemp(t)
	ids, err := s.Committed()
	if err != nil || len(ids) != 0 {
		t.Fatalf("Committed = %v, %v", ids, err)
	}
	latest, err := s.Latest()
	if err != nil || latest != 0 {
		t.Fatalf("Latest = %d, %v", latest, err)
	}
}

func TestWriteCommitRead(t *testing.T) {
	s := openTemp(t)
	entries := []Entry{
		{Key: "a", Value: payload{N: 1, S: "x"}},
		{Key: 7, Value: payload{N: 2, S: "y"}},
	}
	if err := s.WriteSegment(1, "orders", entries); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSegment(1, "riders", nil); err != nil {
		t.Fatal(err)
	}
	// Not visible before Commit.
	if latest, _ := s.Latest(); latest != 0 {
		t.Fatalf("Latest before commit = %d", latest)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if latest, _ := s.Latest(); latest != 1 {
		t.Fatalf("Latest = %d", latest)
	}
	ops, err := s.Operators(1)
	if err != nil || len(ops) != 2 || ops[0] != "orders" || ops[1] != "riders" {
		t.Fatalf("Operators = %v, %v", ops, err)
	}
	got, err := s.ReadSegment(1, "orders")
	if err != nil || len(got) != 2 {
		t.Fatalf("ReadSegment = %v, %v", got, err)
	}
	if got[0].Key != "a" || got[0].Value.(payload).S != "x" {
		t.Fatalf("entry = %+v", got[0])
	}
	if got[1].Key != 7 {
		t.Fatalf("key type lost: %T", got[1].Key)
	}
}

func TestCommitOrderEnforced(t *testing.T) {
	s := openTemp(t)
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err == nil {
		t.Fatal("duplicate commit accepted")
	}
	if err := s.Commit(1); err == nil {
		t.Fatal("out-of-order commit accepted")
	}
	if err := s.Commit(5); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.Committed()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("Committed = %v", ids)
	}
}

func TestPrune(t *testing.T) {
	s := openTemp(t)
	for i := int64(1); i <= 3; i++ {
		if err := s.WriteSegment(i, "op", []Entry{{Key: i, Value: i}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Prune([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.Committed()
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("Committed = %v", ids)
	}
	if _, err := s.ReadSegment(1, "op"); err == nil {
		t.Fatal("pruned segment still readable")
	}
	if _, err := s.ReadSegment(3, "op"); err != nil {
		t.Fatalf("retained segment unreadable: %v", err)
	}
	// Pruning nothing or unknown ids is fine.
	if err := s.Prune(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Prune([]int64{42}); err != nil {
		t.Fatal(err)
	}
}

func TestReopenSeesCommitted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteSegment(1, "op", []Entry{{Key: "k", Value: payload{N: 9}}})
	s.Commit(1)

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest, err := reopened.Latest()
	if err != nil || latest != 1 {
		t.Fatalf("reopened Latest = %d, %v", latest, err)
	}
	got, err := reopened.ReadSegment(1, "op")
	if err != nil || got[0].Value.(payload).N != 9 {
		t.Fatalf("reopened read = %v, %v", got, err)
	}
}

func TestHalfWrittenSegmentInvisible(t *testing.T) {
	s := openTemp(t)
	s.WriteSegment(1, "op", []Entry{{Key: 1, Value: 1}})
	// Simulate a crash mid-write of a second segment: a stray .tmp file.
	tmp := filepath.Join(s.Dir(), "ss-1", "other.gob.tmp")
	if err := os.WriteFile(tmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Commit(1)
	ops, err := s.Operators(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0] != "op" {
		t.Fatalf("Operators = %v — tmp file leaked into listing", ops)
	}
}

func TestCorruptManifestSurfacesError(t *testing.T) {
	s := openTemp(t)
	if err := os.WriteFile(filepath.Join(s.Dir(), "MANIFEST"), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Committed(); err == nil {
		t.Fatal("corrupt manifest read succeeded")
	}
}

// Property: write/commit/read round-trips arbitrary int-keyed entries.
func TestRoundTripProperty(t *testing.T) {
	f := func(keys []int16, vals []int32) bool {
		s := openTemp(t)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			entries[i] = Entry{Key: int(keys[i]), Value: int(vals[i])}
		}
		if err := s.WriteSegment(1, "op", entries); err != nil {
			return false
		}
		if err := s.Commit(1); err != nil {
			return false
		}
		got, err := s.ReadSegment(1, "op")
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i].Key != entries[i].Key || got[i].Value != entries[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestReadLegacyGobSegment proves a store written before the wire codec
// (segments as <op>.gob) still reads: ReadSegment falls back to the gob
// path, and Operators lists the legacy segment.
func TestReadLegacyGobSegment(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Key: "a", Value: 1}, {Key: "b", Value: 2}}
	dir := s.snapshotDir(5)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "window.gob"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.ReadSegment(5, "window")
	if err != nil {
		t.Fatalf("reading legacy segment: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy segment = %v, want %v", got, want)
	}
	ops, err := s.Operators(5)
	if err != nil || !reflect.DeepEqual(ops, []string{"window"}) {
		t.Fatalf("Operators = %v, %v", ops, err)
	}

	// A rewrite of the same operator upgrades it to the wire format and
	// shadows the legacy file without listing the operator twice.
	if err := s.WriteSegment(5, "window", want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "window.seg"))
	if err != nil || !bytes.HasPrefix(raw, segMagic) {
		t.Fatalf("rewritten segment not wire-encoded: %v", err)
	}
	if ops, _ := s.Operators(5); !reflect.DeepEqual(ops, []string{"window"}) {
		t.Fatalf("Operators after upgrade = %v", ops)
	}
	if got, err := s.ReadSegment(5, "window"); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("wire segment = %v, %v", got, err)
	}
}
