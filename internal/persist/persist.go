// Package persist is the stable-storage substrate for checkpoints: the
// paper assumes operator state snapshots are kept on storage that
// survives process failures (§IV: "the state of operators is typically
// stored in stable storage in order to survive node failures"; §VI.B
// discusses HDFS/S3 for Flink). This package implements that layer as a
// directory of wire-encoded snapshot segments with an atomically updated
// manifest:
//
//	<dir>/
//	  MANIFEST              committed snapshot ids (atomic rename)
//	  ss-<ssid>/<op>.seg    full segment: the operator's complete state
//	  ss-<ssid>/<op>.dseg   delta segment: changes since a base snapshot
//	                        (see delta.go; ReadState replays the chain)
//
// Segments use the compact binary codec from internal/wire. Stores
// written before the codec swap hold <op>.gob segments instead;
// ReadSegment and Operators understand both, so pre-refactor checkpoints
// remain restorable in place.
//
// Writes happen segment by segment; a snapshot id only becomes visible
// once the manifest rename lands, so readers never observe half-written
// checkpoints — the same commit discipline as the in-memory registry.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"squery/internal/wire"
)

// segMagic prefixes wire-encoded segment files. A .gob segment (no
// magic, different suffix) is the legacy format.
var segMagic = []byte("SQWS\x01")

// Entry is one persisted key-value pair of an operator's state.
type Entry struct {
	Key   any
	Value any
}

// Store is a directory-backed snapshot store.
type Store struct {
	dir string

	// Cumulative write accounting (see Stats). Atomic: asynchronous
	// checkpoint drains may write segments while the coordinator reads.
	fullSegs     atomic.Int64
	deltaSegs    atomic.Int64
	bytesWritten atomic.Int64
}

// Open creates (if needed) and opens a snapshot store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) snapshotDir(ssid int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ss-%d", ssid))
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }

// WriteSegment persists one operator's state for one snapshot. Segments
// of the same ssid may be written by concurrent callers for different
// operators; the snapshot becomes durable only at Commit.
func (s *Store) WriteSegment(ssid int64, op string, entries []Entry) error {
	buf := make([]byte, 0, 64+24*len(entries))
	buf = append(buf, segMagic...)
	buf = wire.AppendUvarint(buf, uint64(len(entries)))
	var err error
	for _, e := range entries {
		if buf, err = wire.AppendValue(buf, e.Key); err != nil {
			return fmt.Errorf("persist: encoding segment %s/ss-%d: %w", op, ssid, err)
		}
		if buf, err = wire.AppendValue(buf, e.Value); err != nil {
			return fmt.Errorf("persist: encoding segment %s/ss-%d: %w", op, ssid, err)
		}
	}
	if err := s.publish(ssid, op+".seg", buf); err != nil {
		return err
	}
	s.fullSegs.Add(1)
	s.bytesWritten.Add(int64(len(buf)))
	return nil
}

// publish writes one segment file under its snapshot directory with the
// crash discipline every segment kind shares: the bytes land under a
// temporary name, are fsynced, and only then renamed into place — a
// crash mid-write leaves a .tmp that no read path ever looks at.
func (s *Store) publish(ssid int64, file string, buf []byte) error {
	dir := s.snapshotDir(ssid)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	tmp := filepath.Join(dir, file+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: creating segment: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: writing segment %s/ss-%d: %w", file, ssid, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: syncing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: closing segment: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, file)); err != nil {
		return fmt.Errorf("persist: publishing segment: %w", err)
	}
	return nil
}

// ReadSegment loads one operator's persisted state at ssid. Wire-encoded
// .seg segments are preferred; a .gob segment from a pre-refactor store
// is decoded through the legacy path.
func (s *Store) ReadSegment(ssid int64, op string) ([]Entry, error) {
	raw, err := os.ReadFile(filepath.Join(s.snapshotDir(ssid), op+".seg"))
	if errors.Is(err, fs.ErrNotExist) {
		return s.readGobSegment(ssid, op)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening segment %s/ss-%d: %w", op, ssid, err)
	}
	if !bytes.HasPrefix(raw, segMagic) {
		return nil, fmt.Errorf("persist: segment %s/ss-%d: bad magic", op, ssid)
	}
	raw = raw[len(segMagic):]
	n, used := binary.Uvarint(raw)
	if used <= 0 {
		return nil, fmt.Errorf("persist: segment %s/ss-%d: truncated entry count", op, ssid)
	}
	raw = raw[used:]
	entries := make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e Entry
		if e.Key, raw, err = wire.DecodeValue(raw); err != nil {
			return nil, fmt.Errorf("persist: decoding segment %s/ss-%d: %w", op, ssid, err)
		}
		if e.Value, raw, err = wire.DecodeValue(raw); err != nil {
			return nil, fmt.Errorf("persist: decoding segment %s/ss-%d: %w", op, ssid, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// readGobSegment is the legacy decode path for stores written before the
// wire codec existed.
func (s *Store) readGobSegment(ssid int64, op string) ([]Entry, error) {
	f, err := os.Open(filepath.Join(s.snapshotDir(ssid), op+".gob"))
	if err != nil {
		return nil, fmt.Errorf("persist: opening segment %s/ss-%d: %w", op, ssid, err)
	}
	defer f.Close()
	var entries []Entry
	if err := gob.NewDecoder(f).Decode(&entries); err != nil {
		return nil, fmt.Errorf("persist: decoding segment %s/ss-%d: %w", op, ssid, err)
	}
	return entries, nil
}

// Operators lists the operators with a segment in snapshot ssid —
// wire-encoded full, delta, or legacy gob.
func (s *Store) Operators(ssid int64) ([]string, error) {
	des, err := os.ReadDir(s.snapshotDir(ssid))
	if err != nil {
		return nil, fmt.Errorf("persist: listing snapshot %d: %w", ssid, err)
	}
	seen := make(map[string]bool)
	var out []string
	for _, de := range des {
		name, ok := strings.CutSuffix(de.Name(), ".seg")
		if !ok {
			name, ok = strings.CutSuffix(de.Name(), ".dseg")
		}
		if !ok {
			name, ok = strings.CutSuffix(de.Name(), ".gob")
		}
		if ok && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Commit durably publishes ssid as committed by rewriting the manifest
// atomically. Ids must be committed in increasing order.
func (s *Store) Commit(ssid int64) error {
	ids, err := s.Committed()
	if err != nil {
		return err
	}
	if n := len(ids); n > 0 && ids[n-1] >= ssid {
		return fmt.Errorf("persist: commit of %d after %d", ssid, ids[n-1])
	}
	ids = append(ids, ssid)
	return s.writeManifest(ids)
}

func (s *Store) writeManifest(ids []int64) error {
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d\n", id)
	}
	tmp := s.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("persist: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, s.manifestPath()); err != nil {
		return fmt.Errorf("persist: publishing manifest: %w", err)
	}
	return nil
}

// Committed returns the durably committed snapshot ids, ascending. A
// missing manifest means no snapshot has committed.
func (s *Store) Committed() ([]int64, error) {
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: reading manifest: %w", err)
	}
	var out []int64
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		id, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("persist: corrupt manifest line %q", line)
		}
		out = append(out, id)
	}
	return out, nil
}

// Latest returns the most recent committed id, or 0 if none.
func (s *Store) Latest() (int64, error) {
	ids, err := s.Committed()
	if err != nil || len(ids) == 0 {
		return 0, err
	}
	return ids[len(ids)-1], nil
}

// Prune removes the given snapshot ids from the manifest and garbage-
// collects snapshot directories no longer reachable: a directory
// survives while it is committed *or* while any committed id's delta
// chain passes through it (an evicted id can still be some chain's
// base). Pruning an id that is not committed is a no-op.
func (s *Store) Prune(ssids []int64) error {
	if len(ssids) == 0 {
		return nil
	}
	drop := map[int64]bool{}
	for _, id := range ssids {
		drop[id] = true
	}
	ids, err := s.Committed()
	if err != nil {
		return err
	}
	kept := ids[:0]
	for _, id := range ids {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	if err := s.writeManifest(kept); err != nil {
		return err
	}
	// Directory removal happens after the manifest no longer references
	// the ids, so a crash between the two steps only leaks files.
	reachable, err := s.reachable(kept)
	if err != nil {
		return err
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("persist: listing store: %w", err)
	}
	for _, de := range des {
		rest, ok := strings.CutPrefix(de.Name(), "ss-")
		if !ok {
			continue
		}
		id, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || reachable[id] {
			continue
		}
		if err := os.RemoveAll(s.snapshotDir(id)); err != nil {
			return fmt.Errorf("persist: removing snapshot %d: %w", id, err)
		}
	}
	return nil
}

// reachable returns every snapshot id referenced by the given committed
// ids: the ids themselves plus all bases their delta chains walk
// through.
func (s *Store) reachable(committed []int64) (map[int64]bool, error) {
	keep := make(map[int64]bool, len(committed))
	for _, id := range committed {
		keep[id] = true
		ops, err := s.Operators(id)
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			cur := id
			for hops := 0; ; hops++ {
				base, isDelta, err := s.readDeltaBase(cur, op)
				if err != nil {
					return nil, err
				}
				if !isDelta {
					break
				}
				if hops > maxChainHops {
					return nil, fmt.Errorf("persist: delta chain of %s at ss-%d exceeds %d hops", op, id, maxChainHops)
				}
				keep[base] = true
				cur = base
			}
		}
	}
	return keep, nil
}
