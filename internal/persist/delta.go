package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"squery/internal/partition"
	"squery/internal/wire"
)

// Delta segments make committed checkpoints O(delta) on disk: instead of
// rewriting every key of an operator at every snapshot, a checkpoint may
// write <op>.dseg — the upserts and deletes against an earlier *base*
// snapshot. Reading state at a snapshot id then replays the chain: walk
// back over .dseg headers to the nearest full segment, apply the full
// state, then fold each delta forward (tombstones remove keys).
//
//	ss-<base>/<op>.seg       full segment (chain base)
//	ss-<mid>/<op>.dseg       delta: base=<base>
//	ss-<ssid>/<op>.dseg      delta: base=<mid>
//
// Chains are bounded by the writer's compaction policy (see
// internal/core): when a chain grows past the length cap, or a delta
// stops being small relative to the full state, the writer folds the
// accumulated state into a fresh full segment and the chain restarts.
// Commit semantics are unchanged — segments of either kind become
// durable only at the MANIFEST rename — and the GC in Prune keeps every
// base directory still reachable from a committed id, even after the id
// that wrote it left the manifest.

// dsegMagic prefixes wire-encoded delta segment files.
var dsegMagic = []byte("SQWD\x01")

// maxChainHops bounds a delta-chain walk; a longer chain means a
// corrupted base pointer loop, not a plausible store.
const maxChainHops = 1024

// DeltaEntry is one change recorded by a delta segment: an upsert of
// Key to Value, or — with Tombstone set — a delete of Key.
type DeltaEntry struct {
	Key       any
	Value     any
	Tombstone bool
}

// AppendDeltaSegment encodes a delta segment (header + entries) into
// buf. Split out from WriteDeltaSegment so the encode path can be
// benchmarked and alloc-gated without touching the filesystem.
func AppendDeltaSegment(buf []byte, base int64, entries []DeltaEntry) ([]byte, error) {
	buf = append(buf, dsegMagic...)
	buf = wire.AppendUvarint(buf, uint64(base))
	buf = wire.AppendUvarint(buf, uint64(len(entries)))
	var err error
	for _, e := range entries {
		if e.Tombstone {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		if buf, err = wire.AppendValue(buf, e.Key); err != nil {
			return nil, fmt.Errorf("persist: encoding delta key: %w", err)
		}
		if e.Tombstone {
			continue
		}
		if buf, err = wire.AppendValue(buf, e.Value); err != nil {
			return nil, fmt.Errorf("persist: encoding delta value: %w", err)
		}
	}
	return buf, nil
}

// WriteDeltaSegment persists one operator's changes since snapshot base
// as ss-<ssid>/<op>.dseg. Like full segments it lands under a temporary
// name, is fsynced, then renamed — a crash mid-write leaves nothing
// visible. The snapshot becomes durable only at Commit.
func (s *Store) WriteDeltaSegment(ssid int64, op string, base int64, entries []DeltaEntry) error {
	if base <= 0 || base >= ssid {
		return fmt.Errorf("persist: delta segment %s/ss-%d: invalid base %d", op, ssid, base)
	}
	buf := make([]byte, 0, 64+32*len(entries))
	buf, err := AppendDeltaSegment(buf, base, entries)
	if err != nil {
		return fmt.Errorf("persist: segment %s/ss-%d: %w", op, ssid, err)
	}
	if err := s.publish(ssid, op+".dseg", buf); err != nil {
		return err
	}
	s.deltaSegs.Add(1)
	s.bytesWritten.Add(int64(len(buf)))
	return nil
}

// ReadDeltaSegment loads one delta segment, returning the base snapshot
// id it applies against and the recorded changes.
func (s *Store) ReadDeltaSegment(ssid int64, op string) (base int64, entries []DeltaEntry, err error) {
	raw, err := os.ReadFile(filepath.Join(s.snapshotDir(ssid), op+".dseg"))
	if err != nil {
		return 0, nil, fmt.Errorf("persist: opening delta segment %s/ss-%d: %w", op, ssid, err)
	}
	return decodeDeltaSegment(raw, op, ssid)
}

func decodeDeltaSegment(raw []byte, op string, ssid int64) (base int64, entries []DeltaEntry, err error) {
	if !bytes.HasPrefix(raw, dsegMagic) {
		return 0, nil, fmt.Errorf("persist: delta segment %s/ss-%d: bad magic", op, ssid)
	}
	raw = raw[len(dsegMagic):]
	b, used := binary.Uvarint(raw)
	if used <= 0 {
		return 0, nil, fmt.Errorf("persist: delta segment %s/ss-%d: truncated base", op, ssid)
	}
	raw = raw[used:]
	n, used := binary.Uvarint(raw)
	if used <= 0 {
		return 0, nil, fmt.Errorf("persist: delta segment %s/ss-%d: truncated entry count", op, ssid)
	}
	raw = raw[used:]
	entries = make([]DeltaEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(raw) == 0 {
			return 0, nil, fmt.Errorf("persist: delta segment %s/ss-%d: truncated entry %d", op, ssid, i)
		}
		e := DeltaEntry{Tombstone: raw[0] == 1}
		raw = raw[1:]
		if e.Key, raw, err = wire.DecodeValue(raw); err != nil {
			return 0, nil, fmt.Errorf("persist: decoding delta segment %s/ss-%d: %w", op, ssid, err)
		}
		if !e.Tombstone {
			if e.Value, raw, err = wire.DecodeValue(raw); err != nil {
				return 0, nil, fmt.Errorf("persist: decoding delta segment %s/ss-%d: %w", op, ssid, err)
			}
		}
		entries = append(entries, e)
	}
	return int64(b), entries, nil
}

// readDeltaBase reads only the header of a delta segment: the base
// snapshot id it chains to. ok is false when no .dseg exists for
// (ssid, op) — the chain walk then expects a full segment there.
func (s *Store) readDeltaBase(ssid int64, op string) (base int64, ok bool, err error) {
	f, err := os.Open(filepath.Join(s.snapshotDir(ssid), op+".dseg"))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("persist: opening delta segment %s/ss-%d: %w", op, ssid, err)
	}
	defer f.Close()
	hdr := make([]byte, len(dsegMagic)+binary.MaxVarintLen64)
	n, err := io.ReadAtLeast(f, hdr, len(dsegMagic)+1)
	if err != nil {
		return 0, false, fmt.Errorf("persist: delta segment %s/ss-%d: truncated header", op, ssid)
	}
	hdr = hdr[:n]
	if !bytes.HasPrefix(hdr, dsegMagic) {
		return 0, false, fmt.Errorf("persist: delta segment %s/ss-%d: bad magic", op, ssid)
	}
	b, used := binary.Uvarint(hdr[len(dsegMagic):])
	if used <= 0 {
		return 0, false, fmt.Errorf("persist: delta segment %s/ss-%d: truncated base", op, ssid)
	}
	return int64(b), true, nil
}

// ChainLen reports how many delta segments sit between snapshot ssid and
// its full base for one operator: 0 means ssid holds a full segment. The
// writer's compaction policy keys off it.
func (s *Store) ChainLen(ssid int64, op string) (int, error) {
	hops := 0
	cur := ssid
	for {
		base, isDelta, err := s.readDeltaBase(cur, op)
		if err != nil {
			return 0, err
		}
		if !isDelta {
			return hops, nil
		}
		hops++
		if hops > maxChainHops {
			return 0, fmt.Errorf("persist: delta chain of %s at ss-%d exceeds %d hops", op, ssid, maxChainHops)
		}
		cur = base
	}
}

// ReadState resolves one operator's complete state at snapshot ssid,
// replaying the delta chain over its full base when ssid was persisted
// incrementally. Entries come back sorted by key for deterministic
// restores. A full (or legacy gob) segment at ssid reads directly.
func (s *Store) ReadState(ssid int64, op string) ([]Entry, error) {
	// Walk newest→oldest collecting deltas until a full segment roots the
	// chain.
	var deltas [][]DeltaEntry
	cur := ssid
	for {
		base, isDelta, err := s.readDeltaBase(cur, op)
		if err != nil {
			return nil, err
		}
		if !isDelta {
			break
		}
		_, entries, err := s.ReadDeltaSegment(cur, op)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, entries)
		if len(deltas) > maxChainHops {
			return nil, fmt.Errorf("persist: delta chain of %s at ss-%d exceeds %d hops", op, ssid, maxChainHops)
		}
		cur = base
	}
	full, err := s.ReadSegment(cur, op)
	if err != nil {
		return nil, err
	}
	if len(deltas) == 0 {
		return full, nil
	}
	state := make(map[string]Entry, len(full))
	for _, e := range full {
		state[partition.KeyString(e.Key)] = e
	}
	// Apply deltas oldest→newest (they were collected newest-first).
	for i := len(deltas) - 1; i >= 0; i-- {
		for _, d := range deltas[i] {
			ks := partition.KeyString(d.Key)
			if d.Tombstone {
				delete(state, ks)
			} else {
				state[ks] = Entry{Key: d.Key, Value: d.Value}
			}
		}
	}
	keys := make([]string, 0, len(state))
	for ks := range state {
		keys = append(keys, ks)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, ks := range keys {
		out = append(out, state[ks])
	}
	return out, nil
}

// Stats is the store's cumulative write accounting, for the obs plane
// and the ckpt-scale experiment: how many segments of each kind landed
// and how many bytes they cost.
type Stats struct {
	FullSegments  int64
	DeltaSegments int64
	BytesWritten  int64
}

// Stats returns the store's cumulative write accounting.
func (s *Store) Stats() Stats {
	return Stats{
		FullSegments:  s.fullSegs.Load(),
		DeltaSegments: s.deltaSegs.Load(),
		BytesWritten:  s.bytesWritten.Load(),
	}
}
