package persist

import "testing"

func deltaBenchEntries() []DeltaEntry {
	entries := make([]DeltaEntry, 0, 64)
	for i := 0; i < 64; i++ {
		if i%8 == 7 {
			entries = append(entries, DeltaEntry{Key: i, Tombstone: true})
			continue
		}
		entries = append(entries, DeltaEntry{Key: i, Value: int64(i * 100)})
	}
	return entries
}

// TestDeltaEncodeAllocs is the alloc-regression gate for the delta
// encode path (satellite: bench-smoke alloc gate): with a pre-sized
// buffer, AppendDeltaSegment must not allocate — every checkpoint commit
// runs it once per operator, concurrently with live traffic.
func TestDeltaEncodeAllocs(t *testing.T) {
	entries := deltaBenchEntries()
	buf := make([]byte, 0, 4096)
	var err error
	allocs := testing.AllocsPerRun(100, func() {
		buf, err = AppendDeltaSegment(buf[:0], 7, entries)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("delta encode allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkAppendDeltaSegment measures the delta encode path: 64 entries
// (upserts + tombstones) into a reused buffer. Pairs with the alloc gate
// above in bench-smoke.
func BenchmarkAppendDeltaSegment(b *testing.B) {
	entries := deltaBenchEntries()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendDeltaSegment(buf[:0], 7, entries)
	}
}
