package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Crash-recovery suite: each test drives a store to a known committed
// state, simulates a crash at a specific point of the write protocol by
// leaving exactly the files a real crash would leave, then re-opens the
// directory as a recovering process would and asserts the store still
// restores the last *committed* snapshot, byte for byte. The invariant
// under test is the commit discipline: nothing an uncommitted writer
// does — half-written segments, fully-written segments, even a staged
// manifest — may change what a reader observes.

// reopen simulates process death + restart: a fresh Store over the same
// directory, with none of the old in-memory state.
func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustState reads op's full state at ssid as a key→value map.
func mustState(t *testing.T, s *Store, ssid int64, op string) map[string]any {
	t.Helper()
	entries, err := s.ReadState(ssid, op)
	if err != nil {
		t.Fatalf("ReadState(%d, %s): %v", ssid, op, err)
	}
	out := make(map[string]any, len(entries))
	for _, e := range entries {
		out[e.Key.(string)] = e.Value
	}
	return out
}

func checkState(t *testing.T, got map[string]any, want map[string]any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("state has %d keys, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q = %v, want %v", k, got[k], v)
		}
	}
}

// seedChain commits a full base at 1 and a delta at 2, returning the
// directory and the expected state at snapshot 2.
func seedChain(t *testing.T) (dir string, s *Store, want map[string]any) {
	t.Helper()
	dir = t.TempDir()
	s = reopen(t, dir)
	if err := s.WriteSegment(1, "orders", []Entry{
		{Key: "a", Value: 10}, {Key: "b", Value: 20}, {Key: "c", Value: 30},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDeltaSegment(2, "orders", 1, []DeltaEntry{
		{Key: "b", Value: 21},       // upsert
		{Key: "c", Tombstone: true}, // delete
		{Key: "d", Value: 40},       // insert
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	return dir, s, map[string]any{"a": 10, "b": 21, "d": 40}
}

// Crash while a segment file is being written: the writer dies after
// creating <op>.seg.tmp but before the rename. Recovery must ignore the
// .tmp and restore the previous commit.
func TestCrashMidSegmentWrite(t *testing.T) {
	dir, s, want := seedChain(t)

	// Start snapshot 3 and die mid-write: a truncated tmp file is all
	// that lands.
	ssDir := filepath.Join(dir, "ss-3")
	if err := os.MkdirAll(ssDir, 0o755); err != nil {
		t.Fatal(err)
	}
	full, err := AppendDeltaSegment(nil, 2, []DeltaEntry{{Key: "a", Value: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ssDir, "orders.dseg.tmp"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	latest, err := r.Latest()
	if err != nil || latest != 2 {
		t.Fatalf("Latest = %d, %v, want 2", latest, err)
	}
	checkState(t, mustState(t, r, 2, "orders"), want)
	_ = s
}

// Crash between writing MANIFEST.tmp and renaming it over MANIFEST: the
// new snapshot's segments are fully published but the commit never
// landed. Recovery must restore the previous commit, and the interrupted
// id must remain committable.
func TestCrashPreManifestRename(t *testing.T) {
	dir, s, want := seedChain(t)

	// Snapshot 3's segment publishes fine…
	if err := s.WriteDeltaSegment(3, "orders", 2, []DeltaEntry{{Key: "a", Value: 99}}); err != nil {
		t.Fatal(err)
	}
	// …but the process dies with the new manifest staged, un-renamed.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte("1\n2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	latest, err := r.Latest()
	if err != nil || latest != 2 {
		t.Fatalf("Latest = %d, %v, want 2", latest, err)
	}
	checkState(t, mustState(t, r, 2, "orders"), want)

	// The recovering coordinator re-runs the checkpoint as id 3; the
	// stale staged manifest must not get in the way.
	if err := r.WriteDeltaSegment(3, "orders", 2, []DeltaEntry{{Key: "a", Value: 77}}); err == nil {
		// The segment already exists from the doomed run; a rewrite is
		// also acceptable. Either way commit must succeed.
		_ = err
	}
	if err := r.Commit(3); err != nil {
		t.Fatal(err)
	}
	if latest, _ := r.Latest(); latest != 3 {
		t.Fatalf("Latest after re-commit = %d, want 3", latest)
	}
}

// Crash partway through writing a multi-segment snapshot: one operator's
// delta landed, the other never did, no commit. Recovery must restore
// the previous commit for both operators and never observe the orphan.
func TestCrashMidDeltaChain(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	for _, op := range []string{"orders", "riders"} {
		if err := s.WriteSegment(1, op, []Entry{{Key: "a", Value: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"orders", "riders"} {
		if err := s.WriteDeltaSegment(2, op, 1, []DeltaEntry{{Key: "a", Value: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	// Snapshot 3: orders' delta publishes, riders' never starts, crash.
	if err := s.WriteDeltaSegment(3, "orders", 2, []DeltaEntry{{Key: "a", Value: 3}}); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	latest, err := r.Latest()
	if err != nil || latest != 2 {
		t.Fatalf("Latest = %d, %v, want 2", latest, err)
	}
	for _, op := range []string{"orders", "riders"} {
		checkState(t, mustState(t, r, 2, op), map[string]any{"a": 2})
	}
}

// Crash during compaction: the fold-to-full segment for the new id is
// fully written but uncommitted, and recovery prunes old ids afterwards.
// The delta chain under the last commit must survive the GC — its bases
// are reachable — and restores stay correct before and after.
func TestCrashMidCompaction(t *testing.T) {
	dir, s, want := seedChain(t)

	// Compaction at 3 folds the chain into a full segment… then crash
	// before Commit(3).
	if err := s.WriteSegment(3, "orders", []Entry{
		{Key: "a", Value: 10}, {Key: "b", Value: 21}, {Key: "d", Value: 40},
	}); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	latest, err := r.Latest()
	if err != nil || latest != 2 {
		t.Fatalf("Latest = %d, %v, want 2", latest, err)
	}
	// The last committed snapshot is a delta chained to ss-1; the replay
	// must still work.
	checkState(t, mustState(t, r, 2, "orders"), want)

	// Recovery finishes the job: re-commit 3 and evict 1 and 2. The GC
	// must keep nothing stale, and ss-3 — now a full segment — restores
	// without its former chain.
	if err := r.Commit(3); err != nil {
		t.Fatal(err)
	}
	if err := r.Prune([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	checkState(t, mustState(t, r, 3, "orders"), want)
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "ss-") && de.Name() != "ss-3" {
			t.Errorf("stale snapshot dir %s survived prune", de.Name())
		}
	}
}

// A chain whose base was evicted from the manifest but is still
// referenced by a committed delta must survive pruning — then recovery
// from only the chain still works. (The GC walks chains, not just the
// manifest.)
func TestCrashAfterPruneKeepsChainBases(t *testing.T) {
	dir, s, want := seedChain(t)
	// Another delta extends the chain: 1(full) ← 2(delta) ← 3(delta).
	if err := s.WriteDeltaSegment(3, "orders", 2, []DeltaEntry{{Key: "d", Value: 41}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3); err != nil {
		t.Fatal(err)
	}
	// Retention evicts 1 and 2; both remain reachable from 3.
	if err := s.Prune([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}

	r := reopen(t, dir)
	latest, err := r.Latest()
	if err != nil || latest != 3 {
		t.Fatalf("Latest = %d, %v, want 3", latest, err)
	}
	want["d"] = 41
	checkState(t, mustState(t, r, 3, "orders"), want)
}
