package persist

import (
	"fmt"
	"testing"
)

// FuzzDeltaChain drives a store through a fuzzer-chosen sequence of
// upserts, deletes, delta checkpoints, compactions and prunes, keeping a
// plain map as the oracle of what each committed snapshot should hold.
// The property: ReadState at any committed id equals a full snapshot of
// the oracle taken at that commit — base + delta-chain replay is
// byte-equivalent to the state it encodes, whatever the chain shape.
func FuzzDeltaChain(f *testing.F) {
	f.Add([]byte{10, 20, 240, 30, 210, 240, 250})
	f.Add([]byte{0, 1, 2, 3, 230, 4, 5, 230, 6, 230, 255})
	f.Add([]byte{200, 230, 200, 230, 200, 230})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip("bounded workload")
		}
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		const op = "state"
		oracle := map[string]int{}   // live state right now
		pending := map[string]bool{} // keys touched since the last commit
		commits := map[int64]map[string]int{}
		var committed []int64
		var ssid, lastDurable int64
		chainLen := 0

		checkpoint := func(forceFull bool) {
			ssid++
			full := forceFull || lastDurable == 0 || chainLen >= 4
			if full {
				entries := make([]Entry, 0, len(oracle))
				for k, v := range oracle {
					entries = append(entries, Entry{Key: k, Value: v})
				}
				if err := s.WriteSegment(ssid, op, entries); err != nil {
					t.Fatal(err)
				}
				chainLen = 0
			} else {
				deltas := make([]DeltaEntry, 0, len(pending))
				for k := range pending {
					if v, ok := oracle[k]; ok {
						deltas = append(deltas, DeltaEntry{Key: k, Value: v})
					} else {
						deltas = append(deltas, DeltaEntry{Key: k, Tombstone: true})
					}
				}
				if err := s.WriteDeltaSegment(ssid, op, lastDurable, deltas); err != nil {
					t.Fatal(err)
				}
				chainLen++
			}
			if err := s.Commit(ssid); err != nil {
				t.Fatal(err)
			}
			snap := make(map[string]int, len(oracle))
			for k, v := range oracle {
				snap[k] = v
			}
			commits[ssid] = snap
			committed = append(committed, ssid)
			lastDurable = ssid
			pending = map[string]bool{}
		}

		for i, b := range ops {
			key := fmt.Sprintf("k%d", b%32)
			switch {
			case b < 190: // upsert
				oracle[key] = i
				pending[key] = true
			case b < 225: // delete
				delete(oracle, key)
				pending[key] = true
			case b < 250: // delta checkpoint (full when policy forces it)
				checkpoint(false)
			default: // compaction point: forced full checkpoint
				checkpoint(true)
			}
			// Retention 2, like the engine default: evict beyond the last
			// two commits and make sure chains survive the GC.
			if len(committed) > 2 {
				evict := committed[:len(committed)-2]
				committed = committed[len(committed)-2:]
				if err := s.Prune(evict); err != nil {
					t.Fatal(err)
				}
				for _, id := range evict {
					delete(commits, id)
				}
			}
		}

		for _, id := range committed {
			want := commits[id]
			got, err := s.ReadState(id, op)
			if err != nil {
				t.Fatalf("ReadState(%d): %v", id, err)
			}
			if len(got) != len(want) {
				t.Fatalf("ss-%d: %d keys, want %d", id, len(got), len(want))
			}
			for _, e := range got {
				k := e.Key.(string)
				v, ok := want[k]
				if !ok {
					t.Fatalf("ss-%d: unexpected key %q", id, k)
				}
				if e.Value != v {
					t.Fatalf("ss-%d: key %q = %v, want %d", id, k, e.Value, v)
				}
			}
		}
	})
}
