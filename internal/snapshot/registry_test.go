package snapshot

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyRegistry(t *testing.T) {
	r := NewRegistry(2)
	if r.LatestCommitted() != NoSnapshot {
		t.Errorf("LatestCommitted = %d, want %d", r.LatestCommitted(), NoSnapshot)
	}
	if r.OldestRetained() != NoSnapshot {
		t.Errorf("OldestRetained = %d, want %d", r.OldestRetained(), NoSnapshot)
	}
	if r.InProgress() != 0 {
		t.Errorf("InProgress = %d, want 0", r.InProgress())
	}
	if r.IsQueryable(1) {
		t.Error("IsQueryable(1) on empty registry")
	}
}

func TestBeginCommitCycle(t *testing.T) {
	r := NewRegistry(2)
	id, err := r.Begin()
	if err != nil || id != 1 {
		t.Fatalf("Begin = %d, %v", id, err)
	}
	if r.InProgress() != 1 {
		t.Fatalf("InProgress = %d", r.InProgress())
	}
	// The in-flight snapshot is not yet queryable (Figure 1: snapshot 9
	// in progress, queries go to 8).
	if r.IsQueryable(1) {
		t.Error("in-progress snapshot is queryable")
	}
	if evicted := r.Commit(1); len(evicted) != 0 {
		t.Fatalf("evicted %v on first commit", evicted)
	}
	if r.LatestCommitted() != 1 || !r.IsQueryable(1) {
		t.Fatal("snapshot 1 not committed")
	}
}

func TestConcurrentCheckpointRejected(t *testing.T) {
	r := NewRegistry(2)
	id, _ := r.Begin()
	if _, err := r.Begin(); err == nil {
		t.Fatal("second Begin while in progress did not fail")
	}
	r.Commit(id)
	if _, err := r.Begin(); err != nil {
		t.Fatalf("Begin after commit failed: %v", err)
	}
}

func TestRetentionEvictsOldest(t *testing.T) {
	r := NewRegistry(2)
	var allEvicted []int64
	for i := 0; i < 5; i++ {
		id, err := r.Begin()
		if err != nil {
			t.Fatal(err)
		}
		allEvicted = append(allEvicted, r.Commit(id)...)
	}
	// ids 1..5 committed, retention 2 → 1,2,3 evicted; 4,5 retained.
	want := []int64{1, 2, 3}
	if len(allEvicted) != len(want) {
		t.Fatalf("evicted %v, want %v", allEvicted, want)
	}
	for i := range want {
		if allEvicted[i] != want[i] {
			t.Fatalf("evicted %v, want %v", allEvicted, want)
		}
	}
	got := r.Committed()
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Committed = %v, want [4 5]", got)
	}
	if r.OldestRetained() != 4 || r.LatestCommitted() != 5 {
		t.Fatalf("oldest/latest = %d/%d", r.OldestRetained(), r.LatestCommitted())
	}
	if r.IsQueryable(3) || !r.IsQueryable(4) {
		t.Fatal("queryability does not match retention")
	}
}

func TestAbort(t *testing.T) {
	r := NewRegistry(2)
	id, _ := r.Begin()
	r.Abort(id)
	if r.InProgress() != 0 {
		t.Fatal("abort did not clear in-progress")
	}
	if r.LatestCommitted() != NoSnapshot {
		t.Fatal("aborted snapshot became committed")
	}
	// Ids are not reused after an abort.
	id2, err := r.Begin()
	if err != nil || id2 != id+1 {
		t.Fatalf("Begin after abort = %d, %v; want %d", id2, err, id+1)
	}
	r.Abort(999) // aborting a non-running id is a no-op
	if r.InProgress() != id2 {
		t.Fatal("stray abort cancelled the wrong checkpoint")
	}
}

func TestCommitWrongIDPanics(t *testing.T) {
	r := NewRegistry(2)
	r.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("Commit of wrong id did not panic")
		}
	}()
	r.Commit(99)
}

func TestRetentionDefault(t *testing.T) {
	if NewRegistry(0).Retention() != DefaultRetention {
		t.Error("retention 0 did not default")
	}
	if NewRegistry(-3).Retention() != DefaultRetention {
		t.Error("negative retention did not default")
	}
	if NewRegistry(7).Retention() != 7 {
		t.Error("explicit retention not honoured")
	}
}

// Property: after any number of begin/commit cycles with retention k, the
// registry retains exactly min(cycles, k) ids, they are consecutive, the
// newest equals LatestCommitted, and ids increase monotonically.
func TestRetentionInvariant(t *testing.T) {
	f := func(cyclesRaw, retRaw uint8) bool {
		cycles := int(cyclesRaw%20) + 1
		ret := int(retRaw%5) + 1
		r := NewRegistry(ret)
		for i := 0; i < cycles; i++ {
			id, err := r.Begin()
			if err != nil {
				return false
			}
			r.Commit(id)
		}
		got := r.Committed()
		wantLen := cycles
		if wantLen > ret {
			wantLen = ret
		}
		if len(got) != wantLen {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[i-1]+1 {
				return false
			}
		}
		return got[len(got)-1] == int64(cycles) && r.LatestCommitted() == int64(cycles)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Concurrent readers must always observe a consistent latest id while a
// writer cycles checkpoints — the atomic publication of §VI.A.
func TestConcurrentLatestReads(t *testing.T) {
	r := NewRegistry(2)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			id, err := r.Begin()
			if err != nil {
				t.Errorf("Begin: %v", err)
				return
			}
			r.Commit(id)
		}
		close(done)
	}()
	var lastSeen int64
	for {
		select {
		case <-done:
			wg.Wait()
			return
		default:
		}
		got := r.LatestCommitted()
		if got < lastSeen {
			t.Fatalf("latest committed went backwards: %d after %d", got, lastSeen)
		}
		lastSeen = got
	}
}

func TestSeed(t *testing.T) {
	r := NewRegistry(2)
	if err := r.Seed([]int64{3, 7}); err != nil {
		t.Fatal(err)
	}
	if r.LatestCommitted() != 7 || !r.IsQueryable(3) {
		t.Fatalf("seeded state wrong: latest=%d", r.LatestCommitted())
	}
	id, err := r.Begin()
	if err != nil || id != 8 {
		t.Fatalf("Begin after seed = %d, %v; want 8", id, err)
	}
	r.Commit(id)
	// Seeding twice, or after use, fails.
	if err := r.Seed([]int64{9}); err == nil {
		t.Fatal("re-seed accepted")
	}
	// Retention trims a long seed list.
	r2 := NewRegistry(2)
	if err := r2.Seed([]int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got := r2.Committed()
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("seeded retention = %v", got)
	}
	// Non-ascending ids rejected.
	if err := NewRegistry(2).Seed([]int64{2, 2}); err == nil {
		t.Fatal("non-ascending seed accepted")
	}
	if err := NewRegistry(2).Seed([]int64{0}); err == nil {
		t.Fatal("zero id accepted")
	}
}
