// Package snapshot manages snapshot versions for a streaming job: which
// snapshot ids exist, which one is the latest *committed* one (the id
// queries resolve to by default), which ids are retained, and which must be
// pruned. The paper's default of keeping the two most recent versions —
// constant memory, always one version queryable while the next is in
// flight — is the default here too (§VI.A, "Snapshot Versions").
package snapshot

import (
	"fmt"
	"sync"
)

// NoSnapshot is the id reported before any snapshot has committed.
const NoSnapshot int64 = 0

// DefaultRetention keeps the two most recent committed versions.
const DefaultRetention = 2

// Registry tracks the snapshot lifecycle of one job. All methods are safe
// for concurrent use; LatestCommitted is the hot read path used by every
// snapshot query to resolve "the latest snapshot id" atomically.
type Registry struct {
	mu         sync.RWMutex
	retention  int
	next       int64
	inProgress int64 // 0 when no checkpoint is running
	committed  []int64
}

// NewRegistry creates a registry retaining the given number of committed
// versions; retention < 1 is treated as DefaultRetention.
func NewRegistry(retention int) *Registry {
	if retention < 1 {
		retention = DefaultRetention
	}
	return &Registry{retention: retention, next: 1}
}

// Retention returns the configured number of retained versions.
func (r *Registry) Retention() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.retention
}

// Begin starts a new checkpoint and returns its snapshot id. It fails if a
// checkpoint is already in progress — like Jet, the coordinator skips a
// checkpoint tick rather than running two concurrently.
func (r *Registry) Begin() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inProgress != 0 {
		return 0, fmt.Errorf("snapshot: checkpoint %d still in progress", r.inProgress)
	}
	id := r.next
	r.next++
	r.inProgress = id
	return id, nil
}

// InProgress returns the id of the running checkpoint, or 0 if none.
func (r *Registry) InProgress() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.inProgress
}

// Commit atomically publishes ssid as the latest committed snapshot and
// returns the ids evicted by the retention policy (to be pruned from the
// state store). Committing an id that is not the in-progress checkpoint is
// a programming error and panics.
func (r *Registry) Commit(ssid int64) (evicted []int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inProgress != ssid {
		panic(fmt.Sprintf("snapshot: commit of %d but %d is in progress", ssid, r.inProgress))
	}
	r.inProgress = 0
	r.committed = append(r.committed, ssid)
	for len(r.committed) > r.retention {
		evicted = append(evicted, r.committed[0])
		r.committed = r.committed[1:]
	}
	return evicted
}

// Abort cancels the in-progress checkpoint (e.g. the job failed mid-2PC).
// Aborting when nothing is in progress is a no-op.
func (r *Registry) Abort(ssid int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inProgress == ssid {
		r.inProgress = 0
	}
}

// LatestCommitted returns the id of the latest committed snapshot, or
// NoSnapshot if none has committed yet. This is the id implied when a
// query does not pin an explicit ssid.
func (r *Registry) LatestCommitted() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.committed) == 0 {
		return NoSnapshot
	}
	return r.committed[len(r.committed)-1]
}

// Committed returns the retained committed ids, oldest first.
func (r *Registry) Committed() []int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int64, len(r.committed))
	copy(out, r.committed)
	return out
}

// IsQueryable reports whether ssid is a committed, retained snapshot that a
// query may pin.
func (r *Registry) IsQueryable(ssid int64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.committed {
		if c == ssid {
			return true
		}
	}
	return false
}

// Seed initializes a fresh registry with externally committed snapshot
// ids (ascending) — the cold-start path when snapshots are imported from
// stable storage. Seeding a registry that has already issued ids fails.
func (r *Registry) Seed(ids []int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next != 1 || len(r.committed) != 0 || r.inProgress != 0 {
		return fmt.Errorf("snapshot: Seed on a registry already in use")
	}
	var last int64
	for _, id := range ids {
		if id <= last {
			return fmt.Errorf("snapshot: Seed ids must be ascending and positive, got %v", ids)
		}
		last = id
	}
	if len(ids) > r.retention {
		ids = ids[len(ids)-r.retention:]
	}
	r.committed = append(r.committed, ids...)
	if len(ids) > 0 {
		r.next = ids[len(ids)-1] + 1
	}
	return nil
}

// OldestRetained returns the oldest retained committed id, or NoSnapshot.
func (r *Registry) OldestRetained() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.committed) == 0 {
		return NoSnapshot
	}
	return r.committed[0]
}
