package tspoon

import (
	"sync"
	"testing"
	"testing/quick"

	"squery/internal/partition"
)

func newSystem(par int) *System {
	return New(partition.New(32), par)
}

func TestApplyAndQuery(t *testing.T) {
	s := newSystem(3)
	for i := 0; i < 100; i++ {
		s.Apply(i, i*2)
	}
	if s.Size() != 100 {
		t.Fatalf("Size = %d", s.Size())
	}
	got := s.Query([]partition.Key{5, 999, 42})
	if got[0] != 10 || got[1] != nil || got[2] != 84 {
		t.Fatalf("Query = %v", got)
	}
}

func TestApplyOverwrites(t *testing.T) {
	s := newSystem(2)
	s.Apply("k", 1)
	s.Apply("k", 2)
	if got := s.Query([]partition.Key{"k"}); got[0] != 2 {
		t.Fatalf("Query = %v", got)
	}
	if s.Size() != 1 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestScanAll(t *testing.T) {
	s := newSystem(4)
	for i := 0; i < 50; i++ {
		s.Apply(i, i)
	}
	seen := 0
	s.ScanAll(func(partition.Key, any) bool {
		seen++
		return true
	})
	if seen != 50 {
		t.Fatalf("scan saw %d", seen)
	}
	seen = 0
	s.ScanAll(func(partition.Key, any) bool {
		seen++
		return seen < 7
	})
	if seen != 7 {
		t.Fatalf("early stop at %d", seen)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(p, 0) did not panic")
		}
	}()
	New(partition.New(8), 0)
}

// Property: a query result matches a model map regardless of key set.
func TestQueryMatchesModel(t *testing.T) {
	f := func(keys []uint8) bool {
		s := newSystem(3)
		model := map[string]int{}
		for i, k := range keys {
			s.Apply(int(k), i)
			model[partition.KeyString(int(k))] = i
		}
		qs := make([]partition.Key, 0, len(keys))
		for _, k := range keys {
			qs = append(qs, int(k))
		}
		got := s.Query(qs)
		for i, k := range keys {
			want := model[partition.KeyString(int(k))]
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Queries serialize with updates: concurrent transactions never observe
// torn state within an instance.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	s := newSystem(2)
	s.Apply("a", 0)
	s.Apply("b", 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 5000; i++ {
			s.Apply("a", i)
			s.Apply("b", i)
		}
		close(stop)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastA := -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			got := s.Query([]partition.Key{"a"})
			a := got[0].(int)
			if a < lastA {
				t.Errorf("value went backwards: %d after %d", a, lastA)
				return
			}
			lastA = a
		}
	}()
	wg.Wait()
}
