// Package tspoon implements the comparison baseline of Figure 14: a
// TSpoon-style queryable state mechanism (Margara, Affetti, Cugola:
// "TSpoon: Transactions on a stream processor", JPDC 2020). In TSpoon,
// external queries are read-only transactions over the transactional
// portion of the dataflow graph: they are serialized with state-updating
// processing — a query waits for in-flight transactions, acquires the
// operator's state atomically, and carries version bookkeeping for commit
// validation. That per-query transaction machinery is the fixed cost
// S-QUERY's direct object interface avoids, and the reason S-QUERY wins by
// ~2× on single-key queries while the two systems converge as more keys
// are selected (the scan dominates).
package tspoon

import (
	"fmt"
	"sync"

	"squery/internal/partition"
)

// Store is the transactional state of one operator instance.
type Store struct {
	mu      sync.Mutex
	state   map[string]entry
	version int64 // committed transaction counter
}

type entry struct {
	key   partition.Key
	value any
}

// System is a TSpoon-style transactional operator: parallel instances
// each own a disjoint key range; updates and queries run as transactions.
type System struct {
	part      partition.Partitioner
	instances []*Store
}

// New creates a system with the given parallelism, sharing the
// partitioning discipline of the rest of the repository.
func New(p partition.Partitioner, parallelism int) *System {
	if parallelism < 1 {
		panic(fmt.Sprintf("tspoon: parallelism %d", parallelism))
	}
	s := &System{part: p, instances: make([]*Store, parallelism)}
	for i := range s.instances {
		s.instances[i] = &Store{state: make(map[string]entry)}
	}
	return s
}

// Parallelism returns the number of operator instances.
func (s *System) Parallelism() int { return len(s.instances) }

func (s *System) instanceOf(key partition.Key) *Store {
	return s.instances[s.part.Of(key)%len(s.instances)]
}

// Apply performs one state-updating transaction (the processing path):
// it locks the owning instance, applies the update, and commits by
// bumping the instance's version.
func (s *System) Apply(key partition.Key, value any) {
	st := s.instanceOf(key)
	st.mu.Lock()
	st.state[partition.KeyString(key)] = entry{key: key, value: value}
	st.version++
	st.mu.Unlock()
}

// Query runs a read-only transaction over the given keys: it acquires
// every involved instance in a deterministic order (ensuring sequential
// execution with respect to updates, as TSpoon's transactional subgraph
// does), validates the version bookkeeping, reads, and releases. Missing
// keys yield nil entries in order.
func (s *System) Query(keys []partition.Key) []any {
	// Group keys per instance, preserving result positions.
	type want struct {
		pos int
		key string
	}
	perInst := make([][]want, len(s.instances))
	for i, k := range keys {
		inst := s.part.Of(k) % len(s.instances)
		perInst[inst] = append(perInst[inst], want{pos: i, key: partition.KeyString(k)})
	}
	out := make([]any, len(keys))
	// Transaction begin: snapshot the versions of every involved
	// instance in ascending order (deadlock-free total order), read
	// under the lock, then validate at "commit".
	versions := make([]int64, len(s.instances))
	for inst, wants := range perInst {
		if len(wants) == 0 {
			continue
		}
		st := s.instances[inst]
		st.mu.Lock()
		versions[inst] = st.version
		for _, w := range wants {
			if e, ok := st.state[w.key]; ok {
				out[w.pos] = e.value
			}
		}
		st.mu.Unlock()
	}
	// Commit validation of a read-only transaction always succeeds; the
	// bookkeeping pass itself is the overhead being modelled.
	for inst, wants := range perInst {
		if len(wants) == 0 {
			continue
		}
		st := s.instances[inst]
		st.mu.Lock()
		_ = st.version - versions[inst] // conflict check
		st.mu.Unlock()
	}
	return out
}

// ScanAll runs a read-only transaction over the full state of all
// instances.
func (s *System) ScanAll(fn func(key partition.Key, value any) bool) {
	for _, st := range s.instances {
		st.mu.Lock()
		entries := make([]entry, 0, len(st.state))
		for _, e := range st.state {
			entries = append(entries, e)
		}
		st.mu.Unlock()
		for _, e := range entries {
			if !fn(e.key, e.value) {
				return
			}
		}
	}
}

// Size returns the total number of keys.
func (s *System) Size() int {
	n := 0
	for _, st := range s.instances {
		st.mu.Lock()
		n += len(st.state)
		st.mu.Unlock()
	}
	return n
}
