package kv

import (
	"sync"
	"testing"

	"squery/internal/partition"
)

// recTap records everything a tap observes. Its callbacks run under the
// mutated segment's write lock, so it only appends — exactly the contract
// real consumers follow.
type recTap struct {
	mu     sync.Mutex
	deltas []Delta
	resets []int
}

func (r *recTap) OnDeltas(ds []Delta) {
	r.mu.Lock()
	r.deltas = append(r.deltas, ds...)
	r.mu.Unlock()
}

func (r *recTap) OnReset(p int) {
	r.mu.Lock()
	r.resets = append(r.resets, p)
	r.mu.Unlock()
}

func (r *recTap) snapshot() ([]Delta, []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Delta(nil), r.deltas...), append([]int(nil), r.resets...)
}

// TestTapObservesMutationsInOrder: every put, overwrite and delete reaches
// the tap as a delta with the right payload, and sequence numbers are
// strictly increasing per partition.
func TestTapObservesMutationsInOrder(t *testing.T) {
	s := testStore()
	v := s.View(0)
	v.Put("m", "seed", "before-attach")

	tap := &recTap{}
	s.GetMap("m").AttachTap(tap)
	if got := s.GetMap("m").TapCount(); got != 1 {
		t.Fatalf("TapCount = %d, want 1", got)
	}

	v.Put("m", "a", 1)
	v.Put("m", "a", 2) // overwrite
	v.Put("m", "b", "x")
	v.Delete("m", "a")
	v.Delete("m", "missing") // no-op: nothing was removed

	ds, resets := tap.snapshot()
	if len(resets) != 0 {
		t.Fatalf("unexpected resets %v", resets)
	}
	if len(ds) != 4 {
		t.Fatalf("got %d deltas, want 4 (the missing-key delete is not a mutation): %+v", len(ds), ds)
	}
	want := []struct {
		key       string
		value     any
		tombstone bool
	}{
		{"a", 1, false},
		{"a", 2, false},
		{"b", "x", false},
		{"a", nil, true},
	}
	lastSeq := map[int]uint64{}
	for i, d := range ds {
		if d.Map != "m" {
			t.Errorf("delta %d map = %q, want m", i, d.Map)
		}
		if d.KeyS != partition.KeyString(want[i].key) || d.Key != partition.Key(want[i].key) {
			t.Errorf("delta %d key = %v/%q, want %q", i, d.Key, d.KeyS, want[i].key)
		}
		if d.Value != want[i].value || d.Tombstone != want[i].tombstone {
			t.Errorf("delta %d = value %v tombstone %v, want %v/%v", i, d.Value, d.Tombstone, want[i].value, want[i].tombstone)
		}
		if last := lastSeq[d.Part]; d.Seq <= last {
			t.Errorf("delta %d seq %d not increasing after %d in partition %d", i, d.Seq, last, d.Part)
		}
		lastSeq[d.Part] = d.Seq
	}
}

// TestTapBatchGroups: a PutBatch delivers each partition's slice as one
// ordered group whose sequence numbers continue the partition's stream.
func TestTapBatchGroups(t *testing.T) {
	s := testStore()
	v := s.View(0)
	tap := &recTap{}
	s.GetMap("m") // create before attaching
	s.GetMap("m").AttachTap(tap)

	ops := []Op{
		{Key: "k1", Value: 1},
		{Key: "k2", Value: 2},
		{Key: "k3", Value: 3},
		{Key: "k1", Delete: true},
	}
	v.PutBatch("m", ops)

	ds, _ := tap.snapshot()
	if len(ds) != 4 {
		t.Fatalf("got %d deltas from a 4-op batch, want 4: %+v", len(ds), ds)
	}
	seen := map[string]Delta{}
	lastSeq := map[int]uint64{}
	for _, d := range ds {
		seen[d.KeyS] = d
		if last := lastSeq[d.Part]; d.Seq <= last {
			t.Errorf("batch delta seq %d not increasing after %d in partition %d", d.Seq, last, d.Part)
		}
		lastSeq[d.Part] = d.Seq
	}
	if d := seen[partition.KeyString("k1")]; !d.Tombstone {
		t.Errorf("k1's final batch delta is not the tombstone: %+v", d)
	}
	if d := seen[partition.KeyString("k2")]; d.Value != 2 || d.Tombstone {
		t.Errorf("k2 delta = %+v, want value 2", d)
	}
}

// TestTapSnapshotFloor: SnapshotPartition's sequence floor brackets the
// attach — deltas at or below the floor are already in the snapshot,
// deltas after it continue from the floor. This is the exactly-once
// handshake the arrangement layer builds on.
func TestTapSnapshotFloor(t *testing.T) {
	s := testStore()
	v := s.View(0)
	for i := 0; i < 20; i++ {
		v.Put("m", i, i*i)
	}
	m := s.GetMap("m")
	tap := &recTap{}
	m.AttachTap(tap)

	p := s.Partitioner().Of(7)
	entries, floor := m.SnapshotPartition(p)
	if floor != m.PartitionSeq(p) {
		t.Fatalf("snapshot floor %d != current seq %d", floor, m.PartitionSeq(p))
	}
	before := len(entries)

	v.Put("m", 7, "post-snapshot")
	ds, _ := tap.snapshot()
	var post []Delta
	for _, d := range ds {
		if d.Part == p && d.Seq > floor {
			post = append(post, d)
		}
	}
	if len(post) != 1 || post[0].Value != "post-snapshot" {
		t.Fatalf("deltas beyond floor = %+v, want exactly the post-snapshot write", post)
	}
	if post[0].Seq != floor+1 {
		t.Fatalf("post-snapshot seq = %d, want floor+1 = %d", post[0].Seq, floor+1)
	}
	entries2, _ := m.SnapshotPartition(p)
	if len(entries2) != before {
		t.Fatalf("overwrite changed entry count %d -> %d", before, len(entries2))
	}
}

// TestTapResetOnWholesaleReplace: paths that swap a partition's entries
// without per-key mutations (Clear, ClearMap, index rebuilds) must signal
// OnReset so consumers re-derive instead of trusting incremental history.
func TestTapResetOnWholesaleReplace(t *testing.T) {
	s := testStore()
	v := s.View(0)
	for i := 0; i < 10; i++ {
		v.Put("m", i, i)
	}
	m := s.GetMap("m")
	tap := &recTap{}
	m.AttachTap(tap)

	m.Clear()
	_, resets := tap.snapshot()
	if len(resets) != s.Partitioner().Count() {
		t.Fatalf("Clear signalled %d resets, want one per partition (%d)", len(resets), s.Partitioner().Count())
	}

	tap2 := &recTap{}
	m.AttachTap(tap2)
	s.ClearMap("m")
	_, resets2 := tap2.snapshot()
	if len(resets2) != s.Partitioner().Count() {
		t.Fatalf("ClearMap signalled %d resets, want %d", len(resets2), s.Partitioner().Count())
	}

	tap3 := &recTap{}
	m.AttachTap(tap3)
	s.RebuildPartitionIndexes(3)
	_, resets3 := tap3.snapshot()
	if len(resets3) != 1 || resets3[0] != 3 {
		t.Fatalf("RebuildPartitionIndexes(3) signalled resets %v, want [3]", resets3)
	}
}

// TestDetachTapStopsDelivery: after DetachTap no new deltas arrive, and
// other taps keep receiving.
func TestDetachTapStopsDelivery(t *testing.T) {
	s := testStore()
	v := s.View(0)
	m := s.GetMap("m")
	a, b := &recTap{}, &recTap{}
	m.AttachTap(a)
	m.AttachTap(b)
	if got := m.TapCount(); got != 2 {
		t.Fatalf("TapCount = %d, want 2", got)
	}

	v.Put("m", "k", 1)
	m.DetachTap(a)
	v.Put("m", "k", 2)

	dsA, _ := a.snapshot()
	dsB, _ := b.snapshot()
	if len(dsA) != 1 {
		t.Fatalf("detached tap saw %d deltas, want 1", len(dsA))
	}
	if len(dsB) != 2 {
		t.Fatalf("remaining tap saw %d deltas, want 2", len(dsB))
	}
	if got := m.TapCount(); got != 1 {
		t.Fatalf("TapCount after detach = %d, want 1", got)
	}
}
