package kv

// An in-memory B-tree over index keys of a single kind, used by B-tree
// (range) secondary indexes. One tree holds one kind of ixKey ('N', 's',
// 'b', 't'), so ordering never crosses types — cross-kind comparison
// semantics stay in the lookup layer, which unions foreign kinds into the
// candidate set instead of ordering them.
//
// The tree supports find-or-insert, in-order range iteration with
// inclusive bounds, and full traversal. There is no structural delete:
// postings empty in place and the tree compacts (rebuilds from its live
// items) once empty postings outnumber live ones. State-map workloads are
// upsert-heavy, so compaction is rare and amortised O(1) per removal.

// btMax is the maximum number of items per node; a full node splits at the
// midpoint on the way down (top-down insertion, no parent back-pointers).
const btMax = 31

// btItem is one (key, posting) pair in the tree.
type btItem struct {
	k    ixKey
	post *posting
}

type bnode struct {
	items []btItem
	kids  []*bnode // empty for leaves; otherwise len(items)+1
}

// btree is the per-kind ordered container of one B-tree index partition.
type btree struct {
	kind  byte
	root  *bnode
	live  int // postings with at least one key
	empty int // postings emptied in place, awaiting compaction
}

func (t *btree) less(a, b ixKey) bool {
	if t.kind == 's' {
		return a.str < b.str
	}
	return a.num < b.num
}

// search returns the smallest index i with items[i].k >= k, and whether
// items[i].k == k.
func (t *btree) search(items []btItem, k ixKey) (int, bool) {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(items[mid].k, k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(items) && !t.less(k, items[lo].k) {
		return lo, true
	}
	return lo, false
}

// splitKid splits the full child at position i, promoting its median item
// into n.
func (n *bnode) splitKid(i int) {
	kid := n.kids[i]
	mid := len(kid.items) / 2
	up := kid.items[mid]
	right := &bnode{
		items: append([]btItem(nil), kid.items[mid+1:]...),
	}
	if len(kid.kids) > 0 {
		right.kids = append([]*bnode(nil), kid.kids[mid+1:]...)
		kid.kids = kid.kids[:mid+1]
	}
	kid.items = kid.items[:mid]

	n.items = append(n.items, btItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = up
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = right
}

// get returns the posting under k, or nil.
func (t *btree) get(k ixKey) *posting {
	n := t.root
	for n != nil {
		i, ok := t.search(n.items, k)
		if ok {
			return n.items[i].post
		}
		if len(n.kids) == 0 {
			return nil
		}
		n = n.kids[i]
	}
	return nil
}

// getOrInsert returns the posting under k, creating it if absent; isNew
// reports whether it was created by this call.
func (t *btree) getOrInsert(k ixKey) (p *posting, isNew bool) {
	if t.root == nil {
		t.root = &bnode{}
	}
	if len(t.root.items) >= btMax {
		old := t.root
		t.root = &bnode{kids: []*bnode{old}}
		t.root.splitKid(0)
	}
	n := t.root
	for {
		i, ok := t.search(n.items, k)
		if ok {
			return n.items[i].post, false
		}
		if len(n.kids) == 0 {
			p = &posting{}
			n.items = append(n.items, btItem{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = btItem{k: k, post: p}
			return p, true
		}
		if len(n.kids[i].items) >= btMax {
			n.splitKid(i)
			if t.less(n.items[i].k, k) {
				i++
			} else if !t.less(k, n.items[i].k) {
				return n.items[i].post, false
			}
		}
		n = n.kids[i]
	}
}

// ascendRange calls fn for every item with lo <= k <= hi in key order
// (nil bound = unbounded). fn returning false stops the walk.
func (t *btree) ascendRange(lo, hi *ixKey, fn func(btItem) bool) {
	t.ascend(t.root, lo, hi, fn)
}

// ascend walks n in order within [lo, hi]; returns false to stop.
func (t *btree) ascend(n *bnode, lo, hi *ixKey, fn func(btItem) bool) bool {
	if n == nil {
		return true
	}
	i := 0
	if lo != nil {
		i, _ = t.search(n.items, *lo)
	}
	for ; i < len(n.items); i++ {
		if len(n.kids) > 0 {
			if !t.ascend(n.kids[i], lo, hi, fn) {
				return false
			}
		}
		it := n.items[i]
		if hi != nil && t.less(*hi, it.k) {
			return false
		}
		if !fn(it) {
			return false
		}
	}
	if len(n.kids) > 0 {
		return t.ascend(n.kids[len(n.items)], lo, hi, fn)
	}
	return true
}

// each calls fn for every item in key order.
func (t *btree) each(fn func(btItem) bool) {
	t.ascendRange(nil, nil, fn)
}

// maybeCompact rebuilds the tree from its live items once in-place-emptied
// postings dominate. The rebuild is a median-split over the (already
// sorted) live items — nodes come out underfull, which B-tree search and
// insertion tolerate; only delete rebalancing (which we don't do) needs
// the fill invariant.
func (t *btree) maybeCompact() {
	if t.empty <= 64 || t.empty <= t.live {
		return
	}
	items := make([]btItem, 0, t.live)
	t.each(func(it btItem) bool {
		if len(it.post.keys) > 0 {
			items = append(items, it)
		}
		return true
	})
	t.root = buildBtree(items)
	t.live = len(items)
	t.empty = 0
}

// buildBtree builds a tree over sorted items by median split.
func buildBtree(items []btItem) *bnode {
	if len(items) == 0 {
		return nil
	}
	if len(items) <= btMax {
		return &bnode{items: append([]btItem(nil), items...)}
	}
	mid := len(items) / 2
	return &bnode{
		items: []btItem{items[mid]},
		kids:  []*bnode{buildBtree(items[:mid]), buildBtree(items[mid+1:])},
	}
}
