package kv

import (
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Row is the contract a state object fulfils to be queryable by column
// name. The paper stores arbitrary objects (complex Java objects) whose
// fields the IMDG SQL engine projects; here, objects either implement Row
// directly or are adapted via AsRow (maps and structs work out of the box).
type Row interface {
	// Field returns the named column's value and whether it exists.
	Field(name string) (any, bool)
	// Columns returns the column names, sorted.
	Columns() []string
}

// MapRow adapts a map of column name to value as a Row.
type MapRow map[string]any

// Field implements Row.
func (m MapRow) Field(name string) (any, bool) {
	v, ok := m[name]
	return v, ok
}

// Columns implements Row.
func (m MapRow) Columns() []string {
	cols := make([]string, 0, len(m))
	for c := range m {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// structInfo caches the exported-field layout of a struct type.
type structInfo struct {
	cols    []string
	indexOf map[string]int
}

var structCache sync.Map // reflect.Type -> *structInfo

func infoFor(t reflect.Type) *structInfo {
	if v, ok := structCache.Load(t); ok {
		return v.(*structInfo)
	}
	info := &structInfo{indexOf: make(map[string]int)}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := f.Name
		if tag := f.Tag.Get("col"); tag != "" {
			name = tag
		} else {
			// Lower-case first rune to match SQL convention
			// (OrderState -> orderState), as in the paper's queries.
			name = strings.ToLower(name[:1]) + name[1:]
		}
		info.indexOf[name] = i
		info.cols = append(info.cols, name)
	}
	sort.Strings(info.cols)
	actual, _ := structCache.LoadOrStore(t, info)
	return actual.(*structInfo)
}

// structRow adapts a struct value as a Row using reflection, with the
// per-type layout computed once and cached.
type structRow struct {
	v    reflect.Value
	info *structInfo
}

func (r structRow) Field(name string) (any, bool) {
	i, ok := r.info.indexOf[name]
	if !ok {
		return nil, false
	}
	return r.v.Field(i).Interface(), true
}

func (r structRow) Columns() []string { return r.info.cols }

// scalarRow exposes a bare scalar value as a single column named "value".
type scalarRow struct{ v any }

func (r scalarRow) Field(name string) (any, bool) {
	if name == "value" {
		return r.v, true
	}
	return nil, false
}

func (r scalarRow) Columns() []string { return []string{"value"} }

// AsRow adapts an arbitrary state object to a Row:
//   - values already implementing Row are returned as-is;
//   - map[string]any becomes a MapRow;
//   - structs (and pointers to structs) expose their exported fields as
//     columns, lower-camel-cased, overridable with a `col:"name"` tag;
//   - anything else becomes a single-column row named "value".
func AsRow(v any) Row {
	switch x := v.(type) {
	case Row:
		return x
	case map[string]any:
		return MapRow(x)
	}
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return scalarRow{v: nil}
		}
		rv = rv.Elem()
	}
	if rv.Kind() == reflect.Struct {
		return structRow{v: rv, info: infoFor(rv.Type())}
	}
	return scalarRow{v: v}
}
