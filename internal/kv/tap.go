package kv

import (
	"sync"
	"sync/atomic"

	"squery/internal/partition"
)

// Change stream tap: the first-class form of the PR 7 change-notifier.
// A Tap attached to a map observes every mutation as an ordered stream of
// per-partition deltas — upserts and tombstones — stamped with the
// partition's monotonic sequence number and its current epoch. Deltas are
// emitted inside the same segment-write-lock critical section that
// performs the mutation (exactly where inline index maintenance runs), so
// the stream is totally ordered per partition and can never miss or
// reorder a write relative to what readers of the map observe. Paths that
// replace a partition's entries wholesale (failover promotion, migration
// flip, Clear) instead signal OnReset, and the consumer re-derives from a
// fresh snapshot — the same contract RebuildPartitionIndexes gives the
// secondary indexes.
//
// This is the substrate the arrangement layer (internal/core) builds
// standing queries on: attach a tap, snapshot each partition with its
// sequence floor, then apply only deltas beyond the floor.

// Delta is one observed mutation of a map partition.
type Delta struct {
	// Map is the mutated map's name.
	Map string
	// Part is the partition the key lives in.
	Part int
	// Seq is the partition's mutation sequence number: strictly
	// increasing per (map, partition), never reset — the watermark stamp
	// consumers deduplicate and order by.
	Seq uint64
	// Key is the mutated key; KeyS its canonical string form.
	Key  partition.Key
	KeyS string
	// Value is the new value for an upsert; nil for a tombstone.
	Value any
	// Tombstone marks a delete.
	Tombstone bool
	// Epoch is the partition's seat epoch at emission time — deltas from
	// before and after a rebalance of the partition are distinguishable.
	Epoch int64
}

// Tap observes a map's change stream. Both methods are called with the
// mutated partition's segment write lock held: implementations must be
// non-blocking and must not call back into the store (buffer and hand off
// to a consumer goroutine instead).
type Tap interface {
	// OnDeltas delivers one ordered group of deltas for one partition.
	OnDeltas(ds []Delta)
	// OnReset signals that partition p's entries were replaced wholesale
	// (failover promotion, migration rebuild, clear): sequence numbers
	// continue to grow, but the consumer must re-derive its view from a
	// fresh SnapshotPartition rather than trust incremental history.
	OnReset(p int)
}

// mapTapState holds a map's attached taps, published with the same
// mutex-guarded atomic-pointer pattern as mapIndexState so the no-tap
// fast path costs one atomic load and nothing else.
type mapTapState struct {
	tapMu sync.Mutex
	taps  atomic.Pointer[[]Tap]
}

// tapSet returns the current taps, nil when none are attached.
func (m *Map) tapSet() []Tap {
	ts := m.taps.Load()
	if ts == nil {
		return nil
	}
	return *ts
}

// AttachTap subscribes t to the map's change stream. Mutations committed
// after AttachTap returns are guaranteed to reach t; use SnapshotPartition
// to bracket the attach against a consistent base.
func (m *Map) AttachTap(t Tap) {
	m.tapMu.Lock()
	defer m.tapMu.Unlock()
	cur := m.tapSet()
	next := make([]Tap, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, t)
	m.taps.Store(&next)
}

// DetachTap unsubscribes t. After DetachTap returns no new delta groups
// begin delivery, though a group already in flight may still complete.
func (m *Map) DetachTap(t Tap) {
	m.tapMu.Lock()
	defer m.tapMu.Unlock()
	cur := m.tapSet()
	next := make([]Tap, 0, len(cur))
	for _, x := range cur {
		if x != t {
			next = append(next, x)
		}
	}
	m.taps.Store(&next)
}

// TapCount returns the number of attached taps (diagnostics/tests).
func (m *Map) TapCount() int { return len(m.tapSet()) }

// SnapshotPartition returns a point-in-time copy of partition p's entries
// together with the partition's current mutation sequence number. A
// consumer that attaches a tap first, then snapshots, can discard
// buffered deltas with Seq <= the returned floor and apply the rest —
// yielding an exactly-once consistent view with no write lock stall.
func (m *Map) SnapshotPartition(p int) ([]Entry, uint64) {
	seg := m.segs[p]
	seg.mu.RLock()
	entries := make([]Entry, 0, len(seg.entries))
	for _, e := range seg.entries {
		entries = append(entries, e)
	}
	seq := seg.seq
	seg.mu.RUnlock()
	return entries, seq
}

// PartitionSeq returns partition p's current mutation sequence number.
func (m *Map) PartitionSeq(p int) uint64 {
	seg := m.segs[p]
	seg.mu.RLock()
	seq := seg.seq
	seg.mu.RUnlock()
	return seq
}

// emitDelta builds and delivers a single-mutation delta group to every
// attached tap. Caller holds seg(p)'s write lock; seg.seq has already
// been advanced for this mutation.
func (m *Map) emitDelta(taps []Tap, p int, seq uint64, ks string, key partition.Key, value any, tombstone bool) {
	d := Delta{
		Map:       m.name,
		Part:      p,
		Seq:       seq,
		Key:       key,
		KeyS:      ks,
		Value:     value,
		Tombstone: tombstone,
		Epoch:     m.store.assign.PartitionEpoch(p),
	}
	ds := []Delta{d}
	for _, t := range taps {
		t.OnDeltas(ds)
	}
}

// emitDeltas delivers an ordered multi-mutation group (one batch group's
// worth) to every attached tap. Caller holds seg(p)'s write lock.
func (m *Map) emitDeltas(taps []Tap, ds []Delta) {
	if len(ds) == 0 {
		return
	}
	for _, t := range taps {
		t.OnDeltas(ds)
	}
}

// notifyReset tells every attached tap that partition p was replaced
// wholesale. Caller holds seg(p)'s write lock.
func (m *Map) notifyReset(p int) {
	for _, t := range m.tapSet() {
		t.OnReset(p)
	}
}
